#include "workloads/matmul3d.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace mg::work {

core::TaskGraph make_matmul_3d(const Matmul3DParams& params) {
  MG_CHECK(params.n >= 1);
  core::TaskGraphBuilder builder;

  std::vector<core::DataId> a(static_cast<std::size_t>(params.n) * params.n);
  std::vector<core::DataId> b(static_cast<std::size_t>(params.n) * params.n);
  for (std::uint32_t i = 0; i < params.n; ++i) {
    for (std::uint32_t k = 0; k < params.n; ++k) {
      a[i * params.n + k] = builder.add_data(
          params.data_bytes,
          "A_" + std::to_string(i) + "_" + std::to_string(k));
    }
  }
  for (std::uint32_t k = 0; k < params.n; ++k) {
    for (std::uint32_t j = 0; j < params.n; ++j) {
      b[k * params.n + j] = builder.add_data(
          params.data_bytes,
          "B_" + std::to_string(k) + "_" + std::to_string(j));
    }
  }

  // GEMM of two square single-precision blocks of `data_bytes` bytes:
  // side = sqrt(bytes/4), flops = 2 * side^3.
  const double side = std::sqrt(static_cast<double>(params.data_bytes) / 4.0);
  const double flops = 2.0 * side * side * side;

  // Submission order: i, then j, then k (natural nested-loop order).
  for (std::uint32_t i = 0; i < params.n; ++i) {
    for (std::uint32_t j = 0; j < params.n; ++j) {
      for (std::uint32_t k = 0; k < params.n; ++k) {
        builder.add_task(flops, {a[i * params.n + k], b[k * params.n + j]},
                         "C_" + std::to_string(i) + "_" + std::to_string(j) +
                             "_" + std::to_string(k));
      }
    }
  }
  return builder.build();
}

}  // namespace mg::work
