#include "workloads/layered_dag.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mg::work {

core::TaskGraph make_layered_dag(const LayeredDagParams& params) {
  MG_CHECK(params.num_layers >= 1 && params.tasks_per_layer >= 1);
  MG_CHECK(params.num_data >= 1);
  MG_CHECK(params.min_inputs >= 1 && params.min_inputs <= params.max_inputs);
  MG_CHECK(params.max_inputs <= params.num_data);

  core::TaskGraphBuilder builder;
  for (std::uint32_t d = 0; d < params.num_data; ++d) {
    builder.add_data(params.data_bytes);
  }

  util::Rng rng(params.seed);
  std::vector<core::DataId> inputs;
  std::vector<core::TaskId> previous_layer;
  std::vector<core::TaskId> current_layer;
  std::vector<core::TaskId> preds;
  for (std::uint32_t layer = 0; layer < params.num_layers; ++layer) {
    current_layer.clear();
    for (std::uint32_t slot = 0; slot < params.tasks_per_layer; ++slot) {
      const std::uint32_t degree =
          params.min_inputs +
          static_cast<std::uint32_t>(
              rng.below(params.max_inputs - params.min_inputs + 1));
      inputs.clear();
      while (inputs.size() < degree) {
        const auto data =
            static_cast<core::DataId>(rng.below(params.num_data));
        if (std::find(inputs.begin(), inputs.end(), data) == inputs.end()) {
          inputs.push_back(data);
        }
      }
      const core::TaskId task = builder.add_task(params.task_flops, inputs);
      if (params.with_writes) builder.set_task_writes(task, inputs[0]);

      // Explicit edges from a random subset of the previous layer.
      if (layer > 0 && params.max_preds > 0) {
        const std::uint32_t want = 1 + static_cast<std::uint32_t>(
                                           rng.below(params.max_preds));
        const std::uint32_t count = std::min<std::uint32_t>(
            want, static_cast<std::uint32_t>(previous_layer.size()));
        preds.clear();
        while (preds.size() < count) {
          const core::TaskId pred =
              previous_layer[rng.pick_index(previous_layer)];
          if (std::find(preds.begin(), preds.end(), pred) == preds.end()) {
            preds.push_back(pred);
          }
        }
        for (core::TaskId pred : preds) builder.add_dependency(pred, task);
      }
      current_layer.push_back(task);
    }
    previous_layer = current_layer;
  }
  return builder.build();
}

}  // namespace mg::work
