#include "workloads/matmul2d.hpp"

#include <numeric>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mg::work {

core::TaskGraph make_matmul_2d(const Matmul2DParams& params) {
  MG_CHECK(params.n >= 1);
  core::TaskGraphBuilder builder;

  std::vector<core::DataId> rows(params.n);
  std::vector<core::DataId> cols(params.n);
  for (std::uint32_t i = 0; i < params.n; ++i) {
    rows[i] = builder.add_data(params.data_bytes, "rowA_" + std::to_string(i));
  }
  for (std::uint32_t j = 0; j < params.n; ++j) {
    cols[j] = builder.add_data(params.data_bytes, "colB_" + std::to_string(j));
  }

  // Submission order: row-major, optionally shuffled.
  std::vector<std::uint32_t> order(static_cast<std::size_t>(params.n) *
                                   params.n);
  std::iota(order.begin(), order.end(), 0);
  if (params.randomize_order) {
    util::Rng rng(params.seed);
    rng.shuffle(order);
  }

  const double flops =
      params.flops_per_byte * static_cast<double>(params.data_bytes);
  for (std::uint32_t index : order) {
    const std::uint32_t i = index / params.n;
    const std::uint32_t j = index % params.n;
    const core::TaskId task =
        builder.add_task(flops, {rows[i], cols[j]},
                         "C_" + std::to_string(i) + "_" + std::to_string(j));
    if (params.output_bytes > 0) {
      builder.set_task_output(task, params.output_bytes);
    }
    if (params.derive_warps) {
      builder.set_task_warps(task, matmul_2d_task_warps(params.tile_dim));
    }
  }
  return builder.build();
}

}  // namespace mg::work
