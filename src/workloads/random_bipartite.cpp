#include "workloads/random_bipartite.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mg::work {

core::TaskGraph make_random_bipartite(const RandomBipartiteParams& params) {
  MG_CHECK(params.num_tasks >= 1 && params.num_data >= 1);
  MG_CHECK(params.min_inputs >= 1 && params.min_inputs <= params.max_inputs);
  MG_CHECK(params.max_inputs <= params.num_data);

  core::TaskGraphBuilder builder;
  for (std::uint32_t d = 0; d < params.num_data; ++d) {
    builder.add_data(params.data_bytes);
  }

  util::Rng rng(params.seed);
  std::vector<core::DataId> inputs;
  for (std::uint32_t t = 0; t < params.num_tasks; ++t) {
    const std::uint32_t degree =
        params.min_inputs +
        static_cast<std::uint32_t>(
            rng.below(params.max_inputs - params.min_inputs + 1));
    inputs.clear();
    while (inputs.size() < degree) {
      const auto data = static_cast<core::DataId>(rng.below(params.num_data));
      if (std::find(inputs.begin(), inputs.end(), data) == inputs.end()) {
        inputs.push_back(data);
      }
    }
    builder.add_task(params.task_flops, inputs);
  }
  return builder.build();
}

}  // namespace mg::work
