// Random layered DAG generator for dependency tests and differential
// sweeps: tasks are arranged in layers, each task reads a random subset of
// shared data and depends (explicit edges) on a random subset of the
// previous layer's tasks — every edge crosses exactly one layer boundary,
// so the graph is acyclic by construction and its critical path equals the
// layer count whenever every layer links to the previous one. Optionally
// each task also writes one of its input data, layering RAW/WAR/WAW derived
// edges on top of the explicit ones. Not part of the paper's evaluation;
// exists to exercise the dependency machinery on irregular structure.
#pragma once

#include <cstdint>

#include "core/platform.hpp"
#include "core/task_graph.hpp"

namespace mg::work {

struct LayeredDagParams {
  std::uint32_t num_layers = 4;
  std::uint32_t tasks_per_layer = 16;
  std::uint32_t num_data = 32;
  std::uint32_t min_inputs = 1;
  std::uint32_t max_inputs = 3;
  /// Explicit predecessors drawn per non-root task from the previous layer
  /// (capped at the layer size). 0 = no explicit edges.
  std::uint32_t max_preds = 2;
  /// Each task additionally writes its first input (set_task_writes), so
  /// derived RAW/WAR/WAW edges mix with the explicit layer edges.
  bool with_writes = false;
  std::uint64_t data_bytes = 14 * core::kMB;
  double task_flops = 6.72e9;
  std::uint64_t seed = 0;
};

core::TaskGraph make_layered_dag(const LayeredDagParams& params);

}  // namespace mg::work
