// 2D-blocked matrix multiplication — the paper's main application scenario.
//
// C = A x B is decomposed into tasks T_ij multiplying block-row i of A with
// block-column j of B; the input data are the N block-rows and N
// block-columns (2N data of equal size), and task T_ij reads exactly
// {rowA_i, colB_j}. Tasks are submitted row-major ("row per row"), or in a
// uniformly random order for the randomized variant (Figure 9).
//
// Default constants reproduce the paper's calibration: each data item is a
// 14 MB slab (the paper's 5x5 task grid = 140 MB working set, 300x300 =
// 8400 MB), and a task multiplying a 960-row slab by a 960-column slab
// performs 2*960^2*L flops with L = bytes/(4*960), i.e. 480 flops per input
// byte — 6.72 GFlop per task, about 507 us on a V100.
#pragma once

#include <cstdint>

#include "core/platform.hpp"
#include "core/task_graph.hpp"

namespace mg::work {

struct Matmul2DParams {
  std::uint32_t n = 10;                          ///< N: N^2 tasks, 2N data
  std::uint64_t data_bytes = 14 * core::kMB;     ///< block-row/column size
  bool randomize_order = false;                  ///< Figure 9 variant
  std::uint64_t seed = 0;                        ///< order shuffle seed

  /// flops of one task = flops_per_byte * data_bytes (2D GEMM geometry).
  double flops_per_byte = 480.0;

  /// Output bytes per task (one C tile written back to the host); 0 keeps
  /// the paper's input-only model. A 960x960 single-precision tile is
  /// 3.6864 MB.
  std::uint64_t output_bytes = 0;

  /// GPU sharing: when true every task carries the warp footprint derived
  /// from its tile geometry (matmul_2d_task_warps), so the occupancy
  /// governor can co-schedule tasks under the per-GPU warp budget. False
  /// (the default) leaves footprints unset — exclusive-mode runs stay
  /// byte-identical.
  bool derive_warps = false;

  /// Output-tile dimension the warp derivation assumes (the paper's 960).
  std::uint32_t tile_dim = 960;
};

/// Warp footprint of one 2D-GEMM task: one warp per 32x32 sub-tile of its
/// tile_dim x tile_dim output tile (900 warps for the paper's 960 tiles —
/// under a fifth of a V100's 5120, so several tasks co-run per GPU).
[[nodiscard]] constexpr std::uint32_t matmul_2d_task_warps(
    std::uint32_t tile_dim = 960) {
  const std::uint32_t side = (tile_dim + 31) / 32;
  return side * side;
}

core::TaskGraph make_matmul_2d(const Matmul2DParams& params);

/// Working set in bytes for a given N (x axis of Figures 3-9).
[[nodiscard]] constexpr std::uint64_t matmul_2d_working_set(
    std::uint32_t n, std::uint64_t data_bytes = 14 * core::kMB) {
  return static_cast<std::uint64_t>(2) * n * data_bytes;
}

}  // namespace mg::work
