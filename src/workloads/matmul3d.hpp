// 3D matrix multiplication (Figure 10): C = A x B decomposed into block
// products. Task T_ijk multiplies block A_ik by block B_kj (the final
// summation is not modeled, as in the paper): N^3 tasks over 2N^2 data, so
// each data is shared by N tasks and the reuse pattern is three-dimensional.
#pragma once

#include <cstdint>

#include "core/platform.hpp"
#include "core/task_graph.hpp"

namespace mg::work {

struct Matmul3DParams {
  std::uint32_t n = 4;                        ///< N: N^3 tasks, 2N^2 data
  std::uint64_t data_bytes = 14 * core::kMB;  ///< square block size
};

core::TaskGraph make_matmul_3d(const Matmul3DParams& params);

[[nodiscard]] constexpr std::uint64_t matmul_3d_working_set(
    std::uint32_t n, std::uint64_t data_bytes = 14 * core::kMB) {
  return static_cast<std::uint64_t>(2) * n * n * data_bytes;
}

}  // namespace mg::work
