// Tiled LU decomposition (no pivoting) over a full NxN tile matrix —
// GETRF / TRSM (row and column panels) / GEMM — the second classic dense
// tile DAG next to Cholesky. Unlike the lower-triangular Cholesky set, LU
// touches the full square tile grid, its trailing update is a GEMM for
// *every* (i, j) pair of the remaining submatrix, and its per-step panel is
// twice as wide, so the DAG is denser and the data-reuse pressure higher.
//
// With `with_dependencies`, each kernel declares the tile it writes
// (GETRF(k) -> T(k,k), TRSM_row(k,j) -> T(k,j), TRSM_col(i,k) -> T(i,k),
// GEMM(i,j,k) -> T(i,j)) and the RAW/WAR/WAW derivation over the submission
// order yields the textbook LU task DAG with its O(N) GETRF critical chain;
// without it the task set is dependency-free, mirroring the paper's
// flattened treatment.
#pragma once

#include <cstdint>

#include "core/task_graph.hpp"

namespace mg::work {

struct LuParams {
  std::uint32_t n = 8;  ///< tile matrix dimension (N)

  /// Tile side in (single-precision) elements.
  std::uint32_t tile_elems = 960;

  /// Model each kernel's written tile as output traffic.
  bool with_outputs = false;

  /// Declare each kernel's written tile (set_task_writes), restoring the
  /// factorization's real RAW/WAR/WAW dependency DAG.
  bool with_dependencies = false;
};

core::TaskGraph make_lu_tasks(const LuParams& params);

/// Full square tile count times tile size.
[[nodiscard]] constexpr std::uint64_t lu_working_set(
    std::uint32_t n, std::uint32_t tile_elems = 960) {
  const std::uint64_t tile_bytes =
      static_cast<std::uint64_t>(tile_elems) * tile_elems * 4;
  return static_cast<std::uint64_t>(n) * n * tile_bytes;
}

/// Total task count: N getrf + N(N-1) trsm + N(N-1)(2N-1)/6 gemm.
[[nodiscard]] constexpr std::uint64_t lu_task_count(std::uint32_t n) {
  const std::uint64_t big_n = n;
  return big_n + big_n * (big_n - 1) +
         big_n * (big_n - 1) * (2 * big_n - 1) / 6;
}

}  // namespace mg::work
