#include "workloads/lu.hpp"

#include <string>
#include <vector>

#include "util/check.hpp"

namespace mg::work {

core::TaskGraph make_lu_tasks(const LuParams& params) {
  MG_CHECK(params.n >= 1);
  core::TaskGraphBuilder builder;

  const std::uint32_t n = params.n;
  const std::uint64_t tile_bytes =
      static_cast<std::uint64_t>(params.tile_elems) * params.tile_elems * 4;
  const double t3 = static_cast<double>(params.tile_elems) *
                    params.tile_elems * params.tile_elems;

  // Full square tile grid, row-major.
  std::vector<core::DataId> tiles;
  tiles.reserve(static_cast<std::size_t>(n) * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      tiles.push_back(builder.add_data(
          tile_bytes, "T_" + std::to_string(i) + "_" + std::to_string(j)));
    }
  }
  auto tile = [&](std::uint32_t i, std::uint32_t j) {
    return tiles[static_cast<std::size_t>(i) * n + j];
  };

  auto finish_task = [&](core::TaskId task, core::DataId written_tile) {
    if (params.with_outputs) builder.set_task_output(task, tile_bytes);
    if (params.with_dependencies) builder.set_task_writes(task, written_tile);
  };

  // Right-looking factorization submission order.
  for (std::uint32_t k = 0; k < n; ++k) {
    // GETRF(k): factorize the diagonal tile, ~2t^3/3 flops.
    finish_task(builder.add_task(2.0 * t3 / 3.0, {tile(k, k)},
                                 "getrf_" + std::to_string(k)),
                tile(k, k));
    // TRSM_row(k,j): solve L against the row panel, ~t^3 flops.
    for (std::uint32_t j = k + 1; j < n; ++j) {
      finish_task(
          builder.add_task(
              t3, {tile(k, j), tile(k, k)},
              "trsmr_" + std::to_string(k) + "_" + std::to_string(j)),
          tile(k, j));
    }
    // TRSM_col(i,k): solve U against the column panel, ~t^3 flops.
    for (std::uint32_t i = k + 1; i < n; ++i) {
      finish_task(
          builder.add_task(
              t3, {tile(i, k), tile(k, k)},
              "trsmc_" + std::to_string(i) + "_" + std::to_string(k)),
          tile(i, k));
    }
    // Trailing update: GEMM(i,j,k): A_ij -= L_ik U_kj, 2t^3 flops.
    for (std::uint32_t i = k + 1; i < n; ++i) {
      for (std::uint32_t j = k + 1; j < n; ++j) {
        finish_task(builder.add_task(
                        2.0 * t3, {tile(i, k), tile(k, j), tile(i, j)},
                        "gemm_" + std::to_string(i) + "_" + std::to_string(j) +
                            "_" + std::to_string(k)),
                    tile(i, j));
      }
    }
  }
  return builder.build();
}

}  // namespace mg::work
