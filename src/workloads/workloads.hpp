// Umbrella header for all workload generators.
#pragma once

#include "workloads/cholesky.hpp"       // IWYU pragma: export
#include "workloads/layered_dag.hpp"    // IWYU pragma: export
#include "workloads/lu.hpp"             // IWYU pragma: export
#include "workloads/matmul2d.hpp"       // IWYU pragma: export
#include "workloads/matmul3d.hpp"       // IWYU pragma: export
#include "workloads/random_bipartite.hpp"  // IWYU pragma: export
#include "workloads/sparse_matmul.hpp"  // IWYU pragma: export
