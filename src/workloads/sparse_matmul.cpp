#include "workloads/sparse_matmul.hpp"

#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mg::work {

core::TaskGraph make_sparse_matmul(const SparseMatmulParams& params) {
  MG_CHECK(params.n >= 1);
  MG_CHECK(params.keep_fraction > 0.0 && params.keep_fraction <= 1.0);
  core::TaskGraphBuilder builder;

  std::vector<core::DataId> rows(params.n);
  std::vector<core::DataId> cols(params.n);
  for (std::uint32_t i = 0; i < params.n; ++i) {
    rows[i] = builder.add_data(params.data_bytes, "rowA_" + std::to_string(i));
  }
  for (std::uint32_t j = 0; j < params.n; ++j) {
    cols[j] = builder.add_data(params.data_bytes, "colB_" + std::to_string(j));
  }

  util::Rng rng(params.seed);
  const double flops =
      params.flops_per_byte * static_cast<double>(params.data_bytes);
  std::uint32_t kept = 0;
  for (std::uint32_t i = 0; i < params.n; ++i) {
    for (std::uint32_t j = 0; j < params.n; ++j) {
      if (!rng.chance(params.keep_fraction)) continue;
      builder.add_task(flops, {rows[i], cols[j]},
                       "C_" + std::to_string(i) + "_" + std::to_string(j));
      ++kept;
    }
  }
  // Degenerate draw (tiny n and low fraction): guarantee at least one task
  // so downstream code never sees an empty graph.
  if (kept == 0) {
    builder.add_task(flops, {rows[0], cols[0]}, "C_0_0");
  }
  return builder.build();
}

}  // namespace mg::work
