// Random bipartite workload generator for tests and fuzz-style sweeps: m
// tasks over n data, each task reading a uniform random subset of
// min..max inputs. Not part of the paper's evaluation; exists to exercise
// schedulers on irregular structure.
#pragma once

#include <cstdint>

#include "core/platform.hpp"
#include "core/task_graph.hpp"

namespace mg::work {

struct RandomBipartiteParams {
  std::uint32_t num_tasks = 64;
  std::uint32_t num_data = 32;
  std::uint32_t min_inputs = 1;
  std::uint32_t max_inputs = 3;
  std::uint64_t data_bytes = 14 * core::kMB;
  double task_flops = 6.72e9;
  std::uint64_t seed = 0;
};

core::TaskGraph make_random_bipartite(const RandomBipartiteParams& params);

}  // namespace mg::work
