// Tasks from the tiled Cholesky decomposition with the dependencies removed
// (Figure 11): the task *set* of a right-looking tiled Cholesky of an NxN
// tile matrix — POTRF / TRSM / SYRK / GEMM — each reading its natural input
// tiles, treated as independent tasks. GEMM reads three tiles, which is what
// exercises the paper's "3inputs" DARTS variant; the sheer task count
// (O(N^3/6)) is what motivates the OPTI variant.
//
// `with_dependencies` restores the real factorization DAG: each kernel
// declares the tile it writes (POTRF(k) -> T(k,k), TRSM(i,k) -> T(i,k),
// SYRK(i,k) -> T(i,i), GEMM(i,j,k) -> T(i,j)), and the RAW/WAR/WAW
// derivation over the submission order yields exactly the classic Cholesky
// task DAG with its O(N) critical path of POTRF/TRSM chains.
#pragma once

#include <cstdint>

#include "core/task_graph.hpp"

namespace mg::work {

struct CholeskyParams {
  std::uint32_t n = 8;  ///< tile matrix dimension (N)

  /// Tile side in (single-precision) elements; the paper uses 960x960 tiles,
  /// i.e. 3.6864 MB per tile.
  std::uint32_t tile_elems = 960;

  /// Model each kernel's written tile as output traffic (the paper excludes
  /// outputs; enable for the write-back extension).
  bool with_outputs = false;

  /// Declare each kernel's written tile (set_task_writes), restoring the
  /// factorization's real RAW/WAR/WAW dependency DAG.
  bool with_dependencies = false;
};

core::TaskGraph make_cholesky_tasks(const CholeskyParams& params);

/// Lower-triangular tile count times tile size.
[[nodiscard]] constexpr std::uint64_t cholesky_working_set(
    std::uint32_t n, std::uint32_t tile_elems = 960) {
  const std::uint64_t tile_bytes =
      static_cast<std::uint64_t>(tile_elems) * tile_elems * 4;
  return static_cast<std::uint64_t>(n) * (n + 1) / 2 * tile_bytes;
}

/// Total task count: N potrf + N(N-1)/2 trsm + N(N-1)/2 syrk +
/// N(N-1)(N-2)/6 gemm.
[[nodiscard]] constexpr std::uint64_t cholesky_task_count(std::uint32_t n) {
  const std::uint64_t big_n = n;
  return big_n + big_n * (big_n - 1) / 2 * 2 +
         big_n * (big_n - 1) * (big_n - 2) / 6;
}

}  // namespace mg::work
