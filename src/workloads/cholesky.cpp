#include "workloads/cholesky.hpp"

#include <string>
#include <vector>

#include "util/check.hpp"

namespace mg::work {

core::TaskGraph make_cholesky_tasks(const CholeskyParams& params) {
  MG_CHECK(params.n >= 1);
  core::TaskGraphBuilder builder;

  const std::uint32_t n = params.n;
  const std::uint64_t tile_bytes =
      static_cast<std::uint64_t>(params.tile_elems) * params.tile_elems * 4;
  const double t3 = static_cast<double>(params.tile_elems) *
                    params.tile_elems * params.tile_elems;

  // Lower-triangular tiles (i >= j).
  auto tile_index = [n](std::uint32_t i, std::uint32_t j) {
    // Row-major over the lower triangle: offset of row i is i(i+1)/2.
    (void)n;
    return i * (i + 1) / 2 + j;
  };
  std::vector<core::DataId> tiles;
  tiles.reserve(static_cast<std::size_t>(n) * (n + 1) / 2);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j <= i; ++j) {
      tiles.push_back(builder.add_data(
          tile_bytes, "T_" + std::to_string(i) + "_" + std::to_string(j)));
    }
  }
  auto tile = [&](std::uint32_t i, std::uint32_t j) {
    return tiles[tile_index(i, j)];
  };

  // Every kernel writes back one tile when outputs are modeled; with
  // dependencies, the written tile also versions the data so build() derives
  // the factorization DAG.
  auto finish_task = [&](core::TaskId task, core::DataId written_tile) {
    if (params.with_outputs) builder.set_task_output(task, tile_bytes);
    if (params.with_dependencies) builder.set_task_writes(task, written_tile);
  };

  // Right-looking factorization submission order (dependencies dropped
  // unless params.with_dependencies restores them).
  for (std::uint32_t k = 0; k < n; ++k) {
    // POTRF(k): factorize the diagonal tile, ~t^3/3 flops.
    finish_task(builder.add_task(t3 / 3.0, {tile(k, k)},
                                 "potrf_" + std::to_string(k)),
                tile(k, k));
    // TRSM(i,k): triangular solve against the panel, ~t^3 flops.
    for (std::uint32_t i = k + 1; i < n; ++i) {
      finish_task(builder.add_task(
                      t3, {tile(i, k), tile(k, k)},
                      "trsm_" + std::to_string(i) + "_" + std::to_string(k)),
                  tile(i, k));
    }
    // Trailing update.
    for (std::uint32_t i = k + 1; i < n; ++i) {
      // SYRK(i,k): A_ii -= L_ik L_ik^T, ~t^3 flops.
      finish_task(builder.add_task(
                      t3, {tile(i, k), tile(i, i)},
                      "syrk_" + std::to_string(i) + "_" + std::to_string(k)),
                  tile(i, i));
      // GEMM(i,j,k): A_ij -= L_ik L_jk^T, 2t^3 flops, three input tiles.
      for (std::uint32_t j = k + 1; j < i; ++j) {
        finish_task(builder.add_task(
                        2.0 * t3, {tile(i, k), tile(j, k), tile(i, j)},
                        "gemm_" + std::to_string(i) + "_" + std::to_string(j) +
                            "_" + std::to_string(k)),
                    tile(i, j));
      }
    }
  }
  return builder.build();
}

}  // namespace mg::work
