// Sparse 2D matrix multiplication (Figures 12-13): the 2D-blocked matmul
// with a fraction of the tasks removed at random (the paper removes 98%),
// yielding a much higher communication-to-computation ratio. Data items with
// no remaining consumer are kept in the graph (they contribute to the
// working-set x axis but are never loaded).
#pragma once

#include <cstdint>

#include "core/platform.hpp"
#include "core/task_graph.hpp"

namespace mg::work {

struct SparseMatmulParams {
  std::uint32_t n = 32;                       ///< N of the dense 2D matmul
  std::uint64_t data_bytes = 14 * core::kMB;
  double keep_fraction = 0.02;                ///< paper: 2% of tasks survive
  std::uint64_t seed = 0;
  double flops_per_byte = 480.0;
};

core::TaskGraph make_sparse_matmul(const SparseMatmulParams& params);

}  // namespace mg::work
