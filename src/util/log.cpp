#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mg::util {
namespace {

LogLevel init_level_from_env() {
  const char* env = std::getenv("MG_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogLevel& active_level() {
  static LogLevel level = init_level_from_env();
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "";
  }
  return "";
}

}  // namespace

void set_log_level(LogLevel level) { active_level() = level; }

LogLevel log_level() { return active_level(); }

void logf(LogLevel level, const char* format, ...) {
  if (level < active_level()) return;
  std::fprintf(stderr, "[%s] ", level_tag(level));
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace mg::util
