// Minimal leveled logger. Off by default except warnings/errors; the
// simulator's event-level tracing uses Level::kTrace and is enabled with
// MG_LOG_LEVEL=trace in the environment or set_level() in code.
#pragma once

#include <cstdarg>

namespace mg::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; no-op when `level` is below the active level.
void logf(LogLevel level, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace mg::util

#define MG_TRACE(...) ::mg::util::logf(::mg::util::LogLevel::kTrace, __VA_ARGS__)
#define MG_DEBUG(...) ::mg::util::logf(::mg::util::LogLevel::kDebug, __VA_ARGS__)
#define MG_INFO(...) ::mg::util::logf(::mg::util::LogLevel::kInfo, __VA_ARGS__)
#define MG_WARN(...) ::mg::util::logf(::mg::util::LogLevel::kWarn, __VA_ARGS__)
#define MG_ERROR(...) ::mg::util::logf(::mg::util::LogLevel::kError, __VA_ARGS__)
