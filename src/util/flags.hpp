// Minimal command-line flag parser for the bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags are an error (to catch typos in experiment
// scripts); positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mg::util {

class Flags {
 public:
  Flags(std::string program_description = "");

  // Registration. `help` is printed by --help. Returns *this for chaining.
  Flags& define_int(const std::string& name, std::int64_t default_value,
                    const std::string& help);
  Flags& define_double(const std::string& name, double default_value,
                       const std::string& help);
  Flags& define_bool(const std::string& name, bool default_value,
                     const std::string& help);
  Flags& define_string(const std::string& name,
                       const std::string& default_value,
                       const std::string& help);

  /// Parses argv. On `--help`, prints usage and returns false (caller should
  /// exit 0). On malformed input, prints the problem and returns false.
  [[nodiscard]] bool parse(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  void print_usage(const char* argv0) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };

  struct Entry {
    Kind kind;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
  };

  Entry& require(const std::string& name, Kind kind);
  const Entry& require(const std::string& name, Kind kind) const;
  [[nodiscard]] bool assign(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> positional_;
};

}  // namespace mg::util
