#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/check.hpp"

namespace mg::util {

Flags::Flags(std::string program_description)
    : description_(std::move(program_description)) {}

Flags& Flags::define_int(const std::string& name, std::int64_t default_value,
                         const std::string& help) {
  Entry entry{Kind::kInt, help, 0, 0.0, false, {}};
  entry.int_value = default_value;
  MG_CHECK_MSG(entries_.emplace(name, std::move(entry)).second,
               "duplicate flag definition");
  return *this;
}

Flags& Flags::define_double(const std::string& name, double default_value,
                            const std::string& help) {
  Entry entry{Kind::kDouble, help, 0, 0.0, false, {}};
  entry.double_value = default_value;
  MG_CHECK_MSG(entries_.emplace(name, std::move(entry)).second,
               "duplicate flag definition");
  return *this;
}

Flags& Flags::define_bool(const std::string& name, bool default_value,
                          const std::string& help) {
  Entry entry{Kind::kBool, help, 0, 0.0, false, {}};
  entry.bool_value = default_value;
  MG_CHECK_MSG(entries_.emplace(name, std::move(entry)).second,
               "duplicate flag definition");
  return *this;
}

Flags& Flags::define_string(const std::string& name,
                            const std::string& default_value,
                            const std::string& help) {
  Entry entry{Kind::kString, help, 0, 0.0, false, {}};
  entry.string_value = default_value;
  MG_CHECK_MSG(entries_.emplace(name, std::move(entry)).second,
               "duplicate flag definition");
  return *this;
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }

    auto it = entries_.find(name);
    // `--no-foo` negates boolean flag `foo`.
    if (it == entries_.end() && name.rfind("no-", 0) == 0) {
      auto neg = entries_.find(name.substr(3));
      if (neg != entries_.end() && neg->second.kind == Kind::kBool) {
        neg->second.bool_value = false;
        continue;
      }
    }
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag: --%s (see --help)\n", name.c_str());
      return false;
    }

    if (!has_value) {
      if (it->second.kind == Kind::kBool) {
        it->second.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!assign(name, value)) return false;
  }
  return true;
}

bool Flags::assign(const std::string& name, const std::string& value) {
  Entry& entry = entries_.at(name);
  try {
    switch (entry.kind) {
      case Kind::kInt:
        entry.int_value = std::stoll(value);
        break;
      case Kind::kDouble:
        entry.double_value = std::stod(value);
        break;
      case Kind::kBool:
        if (value == "true" || value == "1") {
          entry.bool_value = true;
        } else if (value == "false" || value == "0") {
          entry.bool_value = false;
        } else {
          throw std::invalid_argument("not a bool");
        }
        break;
      case Kind::kString:
        entry.string_value = value;
        break;
    }
  } catch (const std::exception&) {
    std::fprintf(stderr, "bad value for --%s: '%s'\n", name.c_str(),
                 value.c_str());
    return false;
  }
  return true;
}

void Flags::print_usage(const char* argv0) const {
  std::printf("%s\n", description_.c_str());
  std::printf("usage: %s [flags]\n", argv0);
  for (const auto& [name, entry] : entries_) {
    const char* type = "";
    std::string def;
    switch (entry.kind) {
      case Kind::kInt:
        type = "int";
        def = std::to_string(entry.int_value);
        break;
      case Kind::kDouble:
        type = "double";
        def = std::to_string(entry.double_value);
        break;
      case Kind::kBool:
        type = "bool";
        def = entry.bool_value ? "true" : "false";
        break;
      case Kind::kString:
        type = "string";
        def = entry.string_value;
        break;
    }
    std::printf("  --%-24s %-7s (default: %s)\n      %s\n", name.c_str(), type,
                def.c_str(), entry.help.c_str());
  }
}

Flags::Entry& Flags::require(const std::string& name, Kind kind) {
  auto it = entries_.find(name);
  MG_CHECK_MSG(it != entries_.end(), "flag not defined");
  MG_CHECK_MSG(it->second.kind == kind, "flag accessed with wrong type");
  return it->second;
}

const Flags::Entry& Flags::require(const std::string& name, Kind kind) const {
  auto it = entries_.find(name);
  MG_CHECK_MSG(it != entries_.end(), "flag not defined");
  MG_CHECK_MSG(it->second.kind == kind, "flag accessed with wrong type");
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name) const {
  return require(name, Kind::kInt).int_value;
}

double Flags::get_double(const std::string& name) const {
  return require(name, Kind::kDouble).double_value;
}

bool Flags::get_bool(const std::string& name) const {
  return require(name, Kind::kBool).bool_value;
}

const std::string& Flags::get_string(const std::string& name) const {
  return require(name, Kind::kString).string_value;
}

}  // namespace mg::util
