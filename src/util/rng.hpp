// Deterministic pseudo-random number generation.
//
// All stochastic choices in the library (DARTS tie breaking, sparse task
// dropping, randomized submission orders, partitioner restarts) draw from an
// explicitly seeded Rng so that a (seed, workload, scheduler) triple always
// reproduces the same schedule and the same metrics. The generator is
// xoshiro256**, seeded through splitmix64 — fast, high quality, and not
// dependent on libstdc++'s unspecified distribution implementations.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace mg::util {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with explicit, reproducible seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Debiased via rejection sampling.
  std::uint64_t below(std::uint64_t bound) {
    MG_DCHECK(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& items) {
    const std::size_t n = items.size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <typename Container>
  std::size_t pick_index(const Container& items) {
    MG_DCHECK(!items.empty());
    return static_cast<std::size_t>(below(items.size()));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mg::util
