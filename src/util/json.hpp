// Minimal recursive-descent JSON parser, used by tests to schema-check the
// structured run reports (sim/run_report.hpp) and by nothing on the hot
// path. Parses the full JSON grammar into a tree of json::Value; numbers
// are held as double (adequate for schema checks; exact 64-bit integers are
// not needed there). Not a general-purpose library: errors yield
// std::nullopt; the two-argument parse() overload additionally reports the
// byte offset where parsing stopped, for callers that diagnose hand-written
// input (e.g. fault plan files).
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mg::util::json {

class Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double n) : type_(Type::kNumber), number_(n) {}
  explicit Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& as_array() const { return *array_; }
  [[nodiscard]] const Object& as_object() const { return *object_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    const auto it = object_->find(key);
    return it == object_->end() ? nullptr : &it->second;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> parse() {
    std::optional<Value> value = parse_value();
    skip_ws();
    if (!value.has_value() || pos_ != text_.size()) return std::nullopt;
    return value;
  }

  /// Byte offset reached by the parser; on failure this is where parsing
  /// stopped (the offending character or the start of trailing garbage).
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        std::optional<std::string> s = parse_string();
        if (!s.has_value()) return std::nullopt;
        return Value(std::move(*s));
      }
      case 't':
        return consume_literal("true") ? std::optional<Value>(Value(true))
                                       : std::nullopt;
      case 'f':
        return consume_literal("false") ? std::optional<Value>(Value(false))
                                        : std::nullopt;
      case 'n':
        return consume_literal("null") ? std::optional<Value>(Value())
                                       : std::nullopt;
      default: return parse_number();
    }
  }

  std::optional<Value> parse_object() {
    if (!consume('{')) return std::nullopt;
    Object object;
    skip_ws();
    if (consume('}')) return Value(std::move(object));
    for (;;) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      std::optional<Value> value = parse_value();
      if (!value.has_value()) return std::nullopt;
      object.emplace(std::move(*key), std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Value(std::move(object));
      return std::nullopt;
    }
  }

  std::optional<Value> parse_array() {
    if (!consume('[')) return std::nullopt;
    Array array;
    skip_ws();
    if (consume(']')) return Value(std::move(array));
    for (;;) {
      std::optional<Value> value = parse_value();
      if (!value.has_value()) return std::nullopt;
      array.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Value(std::move(array));
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Keep the escape verbatim: schema checks never need decoding.
            if (pos_ + 4 > text_.size()) return std::nullopt;
            out += "\\u";
            out.append(text_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Value(number);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses `text` as one JSON document; std::nullopt on any syntax error or
/// trailing garbage.
[[nodiscard]] inline std::optional<Value> parse(std::string_view text) {
  return detail::Parser(text).parse();
}

/// As parse(), but on failure reports the byte offset where parsing stopped
/// (the offending character or the start of trailing garbage) through
/// `error_offset`. Untouched on success.
[[nodiscard]] inline std::optional<Value> parse(std::string_view text,
                                                std::size_t* error_offset) {
  detail::Parser parser(text);
  std::optional<Value> value = parser.parse();
  if (!value.has_value() && error_offset != nullptr) {
    *error_offset = parser.pos();
  }
  return value;
}

}  // namespace mg::util::json
