#include "util/csv.hpp"

#include <cinttypes>
#include <cstring>

#include "util/check.hpp"

namespace mg::util {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

CsvWriter::CsvWriter(std::vector<std::string> header, std::string path)
    : columns_(header.size()) {
  if (path.empty()) {
    file_ = stdout;
    owns_file_ = false;
  } else {
    file_ = std::fopen(path.c_str(), "w");
    MG_CHECK_MSG(file_ != nullptr, "cannot open CSV output file");
    owns_file_ = true;
  }
  std::string line;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i != 0) line += ',';
    line += header[i];
  }
  write_line(line);
}

CsvWriter::~CsvWriter() {
  if (owns_file_) std::fclose(file_);
}

void CsvWriter::row(const std::vector<CsvCell>& cells) {
  MG_CHECK_MSG(cells.size() == columns_, "CSV row width mismatch");
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) line += ',';
    std::visit(
        [&line](const auto& cell) {
          using T = std::decay_t<decltype(cell)>;
          if constexpr (std::is_same_v<T, std::string>) {
            line += cell;
          } else if constexpr (std::is_same_v<T, std::int64_t>) {
            char buffer[32];
            std::snprintf(buffer, sizeof buffer, "%" PRId64, cell);
            line += buffer;
          } else {
            line += format_double(cell);
          }
        },
        cells[i]);
  }
  write_line(line);
}

void CsvWriter::comment(const std::string& text) {
  write_line("# " + text);
}

void CsvWriter::write_line(const std::string& line) {
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

}  // namespace mg::util
