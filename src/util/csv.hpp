// Tiny CSV table emitter used by the figure-reproduction harnesses.
//
// Writes a header once and then rows of mixed string/numeric cells, either to
// stdout or to a file. Numeric formatting is locale-independent.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <variant>
#include <vector>

namespace mg::util {

using CsvCell = std::variant<std::string, std::int64_t, double>;

class CsvWriter {
 public:
  /// Writes to `path`, or to stdout when `path` is empty.
  explicit CsvWriter(std::vector<std::string> header, std::string path = "");
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<CsvCell>& cells);

  /// Emits a `# key: value` comment line (reference constants, bounds).
  void comment(const std::string& text);

 private:
  void write_line(const std::string& line);

  std::size_t columns_;
  std::FILE* file_;
  bool owns_file_;
};

/// Formats a double compactly (up to 6 significant digits, no trailing
/// zeros), for CSV cells and log lines.
std::string format_double(double value);

}  // namespace mg::util
