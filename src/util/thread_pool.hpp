// Minimal fixed-size thread pool for embarrassingly parallel sweeps (the
// figure harnesses run independent simulations per point). Submitted jobs
// are indexed so callers can emit results in deterministic order regardless
// of completion order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mg::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; it may start immediately on another thread.
  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_.push(std::move(job));
    }
    wake_.notify_one();
  }

  /// Blocks until every submitted job has finished.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs `count` indexed jobs across the pool and waits for all of them.
  /// `fn(i)` must be safe to call concurrently for distinct i.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) {
    for (std::size_t i = 0; i < count; ++i) {
      submit([&fn, i] { fn(i); });
    }
    wait_idle();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
        if (stopping_ && jobs_.empty()) return;
        job = std::move(jobs_.front());
        jobs_.pop();
        ++active_;
      }
      job();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
        if (jobs_.empty() && active_ == 0) idle_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace mg::util
