// Wall-clock stopwatch used to charge real scheduler decision time into the
// simulated timeline (the paper's "with/without scheduling time" curves).
#pragma once

#include <chrono>

namespace mg::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / restart, in microseconds.
  [[nodiscard]] double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_us() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mg::util
