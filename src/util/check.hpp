// Lightweight runtime checks.
//
// MG_CHECK is always on (cheap invariants on cold paths); MG_DCHECK compiles
// out in release builds and is meant for hot loops. Both print the failing
// expression with source location and abort, so simulator state is never
// silently corrupted.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mg::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "MG_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace mg::util

#define MG_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::mg::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MG_CHECK_MSG(expr, msg)                                      \
  do {                                                               \
    if (!(expr)) ::mg::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define MG_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define MG_DCHECK(expr) MG_CHECK(expr)
#endif
