// Run metrics reported by the simulator — the quantities plotted in the
// paper's figures (GFlop/s, MB transferred) plus diagnostics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/platform.hpp"

namespace mg::core {

struct GpuMetrics {
  std::uint64_t tasks_executed = 0;
  std::uint64_t loads = 0;              ///< host->GPU transfers (count)
  std::uint64_t bytes_loaded = 0;       ///< host->GPU transfers (bytes)
  std::uint64_t peer_loads = 0;         ///< GPU->GPU transfers (count)
  std::uint64_t bytes_from_peers = 0;   ///< GPU->GPU transfers (bytes)
  std::uint64_t bytes_written_back = 0; ///< GPU->host output write-backs
  std::uint64_t evictions = 0;
  double busy_time_us = 0.0;            ///< time spent computing
  double stall_time_us = 0.0;           ///< idle while tasks remained
};

/// Fault-injection outcome of one run (all zero on a fault-free run).
struct FaultMetrics {
  std::uint32_t gpu_losses = 0;
  std::uint32_t capacity_shocks = 0;
  std::uint64_t tasks_reclaimed = 0;       ///< orphans re-dispatched
  std::uint64_t transfer_retries = 0;      ///< failed delivery attempts
  std::uint64_t wasted_transfer_bytes = 0; ///< wire bytes of failed attempts
  std::uint64_t emergency_evictions = 0;   ///< evictions forced by shocks

  // Proactive fault tolerance (checkpointing / replication / replay).
  std::uint64_t checkpoints_taken = 0;       ///< progress snapshots committed
  double checkpoint_overhead_us = 0.0;       ///< bus time of snapshot drains
  std::uint64_t checkpoint_payload_bytes = 0;///< cumulated snapshot bytes
  std::uint64_t tasks_restored = 0;          ///< re-runs that skipped work
  double compute_saved_us = 0.0;             ///< compute skipped by restores
  std::uint64_t replicas_created = 0;        ///< proactive replica fetches
  std::uint64_t replica_bytes = 0;           ///< bytes of created replicas
  std::uint64_t replicas_shed = 0;           ///< replicas dropped to free room
  std::uint64_t replicas_protected = 0;      ///< promotions to sole survivor
  std::uint64_t post_loss_host_loads = 0;    ///< host-bus loads after a loss
  std::uint32_t replay_divergences = 0;      ///< fixed-order replay breaks
  std::uint64_t replay_reassigned_tasks = 0; ///< recorded-suffix tasks stolen

  /// Per-orphan recovery latencies: time from the GPU loss to the orphan's
  /// completed re-run on a survivor, in simulated µs (one entry per orphan).
  std::vector<double> recovery_latency_us;
};

struct RunMetrics {
  std::vector<GpuMetrics> per_gpu;

  FaultMetrics faults;

  /// Simulated completion time of the last task. When scheduler cost was
  /// accounted, per-pop decision time is already charged inside (it gates
  /// task starts); prepare() time is not and is added by wall_makespan_us().
  double makespan_us = 0.0;
  double scheduler_prepare_us = 0.0;  ///< measured wall time of prepare()
  double scheduler_pop_us = 0.0;      ///< cumulated wall time of pop_task()
  double total_flops = 0.0;

  /// True when the run charged scheduler wall time into the timeline.
  bool scheduler_cost_accounted = false;

  [[nodiscard]] std::uint64_t total_loads() const {
    std::uint64_t loads = 0;
    for (const auto& gpu : per_gpu) loads += gpu.loads;
    return loads;
  }

  [[nodiscard]] std::uint64_t total_bytes_loaded() const {
    std::uint64_t bytes = 0;
    for (const auto& gpu : per_gpu) bytes += gpu.bytes_loaded;
    return bytes;
  }

  [[nodiscard]] std::uint64_t total_peer_loads() const {
    std::uint64_t loads = 0;
    for (const auto& gpu : per_gpu) loads += gpu.peer_loads;
    return loads;
  }

  [[nodiscard]] std::uint64_t total_bytes_from_peers() const {
    std::uint64_t bytes = 0;
    for (const auto& gpu : per_gpu) bytes += gpu.bytes_from_peers;
    return bytes;
  }

  [[nodiscard]] std::uint64_t total_bytes_written_back() const {
    std::uint64_t bytes = 0;
    for (const auto& gpu : per_gpu) bytes += gpu.bytes_written_back;
    return bytes;
  }

  [[nodiscard]] std::uint64_t total_evictions() const {
    std::uint64_t evictions = 0;
    for (const auto& gpu : per_gpu) evictions += gpu.evictions;
    return evictions;
  }

  [[nodiscard]] std::uint64_t max_tasks_on_any_gpu() const {
    std::uint64_t worst = 0;
    for (const auto& gpu : per_gpu)
      if (gpu.tasks_executed > worst) worst = gpu.tasks_executed;
    return worst;
  }

  /// Makespan including the blocking static-phase (prepare) cost when
  /// scheduler cost was accounted.
  [[nodiscard]] double wall_makespan_us() const {
    if (!scheduler_cost_accounted) return makespan_us;
    return makespan_us + scheduler_prepare_us;
  }

  /// Achieved throughput in GFlop/s, the y axis of the performance figures.
  [[nodiscard]] double achieved_gflops() const {
    const double us = wall_makespan_us();
    return us > 0.0 ? total_flops / (us * 1e3) : 0.0;
  }

  /// Host-bus traffic in MB (the y axis of the transfer figures). Peer
  /// traffic is reported separately by peer_transfers_mb().
  [[nodiscard]] double transfers_mb() const {
    return static_cast<double>(total_bytes_loaded()) / 1e6;
  }

  [[nodiscard]] double peer_transfers_mb() const {
    return static_cast<double>(total_bytes_from_peers()) / 1e6;
  }
};

}  // namespace mg::core
