// Eviction policy interface.
//
// When a GPU's memory manager must make room for an incoming data, it
// collects the set of evictable candidates (resident, not pinned by a running
// task, not mid-transfer) and asks the policy for a victim. Policies get
// notified of loads / task-start uses / evictions to maintain their state
// (recency lists for LRU, planning info for the paper's LUF).
#pragma once

#include <span>
#include <string_view>

#include "core/ids.hpp"

namespace mg::core {

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called when `data` becomes resident on `gpu`.
  virtual void on_load(GpuId gpu, DataId data) { (void)gpu; (void)data; }

  /// Called when a task starting on `gpu` reads `data`.
  virtual void on_use(GpuId gpu, DataId data) { (void)gpu; (void)data; }

  /// Called after `data` has been evicted from `gpu`.
  virtual void on_evict(GpuId gpu, DataId data) { (void)gpu; (void)data; }

  /// Picks a victim among `candidates` (non-empty, all evictable right now).
  /// Returning kInvalidData refuses the eviction; the pending allocation then
  /// waits until memory pressure changes (a policy should only refuse when it
  /// knows pressure will change, otherwise the run stalls and the engine
  /// aborts on deadlock).
  [[nodiscard]] virtual DataId choose_victim(
      GpuId gpu, std::span<const DataId> candidates) = 0;
};

}  // namespace mg::core
