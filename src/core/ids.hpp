// Strongly-conventioned index types for tasks, data and GPUs.
//
// Plain 32-bit indices (not wrapped structs) keep the hot scheduler loops
// allocation-free and branch-predictable; the `kInvalid*` sentinels mark
// "no task available" / "no victim" answers across the scheduler API.
#pragma once

#include <cstdint>
#include <limits>

namespace mg::core {

using TaskId = std::uint32_t;
using DataId = std::uint32_t;
using GpuId = std::uint32_t;

inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();
inline constexpr DataId kInvalidData = std::numeric_limits<DataId>::max();
inline constexpr GpuId kInvalidGpu = std::numeric_limits<GpuId>::max();

}  // namespace mg::core
