// Platform description (Figure 2 of the paper): K identical GPUs, each with
// its own bounded memory, all attached to host memory through one shared PCI
// bus. The default constants are the paper's experimental setup: Tesla V100
// GEMM throughput of 13 253 GFlop/s (the "GFlop/s max" line of the figures),
// a 16 GB/s PCI express bus, and GPU memory restricted to 500 MB.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.hpp"

namespace mg::core {

/// The paper expresses sizes in MB = 1e6 bytes (140 MB working set for
/// 2x5 data of one 14 MB block-row each).
inline constexpr std::uint64_t kMB = 1'000'000;
inline constexpr std::uint64_t kGB = 1'000'000'000;

struct Platform {
  /// Number of GPUs (K).
  std::uint32_t num_gpus = 1;

  /// Usable bytes of each GPU memory (M, uniform across GPUs).
  std::uint64_t gpu_memory_bytes = 500 * kMB;

  /// Effective GEMM throughput per GPU, in GFlop/s (uniform platforms, as
  /// in the paper's evaluation).
  double gpu_gflops = 13'253.0;

  /// Optional per-device throughput override for *heterogeneous* platforms
  /// (the general StarPU setting). When non-empty it must have one entry
  /// per GPU and takes precedence over gpu_gflops.
  std::vector<double> gpu_gflops_per_device;

  /// Aggregate bandwidth of the shared host<->GPU bus, bytes per second.
  double bus_bandwidth_bytes_per_s = 16.0e9;

  /// Fixed per-transfer latency (DMA setup, driver), microseconds.
  double bus_latency_us = 15.0;

  /// Enable direct GPU-to-GPU transfers (the paper's Section VI future
  /// work): when a requested data is already resident on a peer GPU, it is
  /// pulled over that peer's NVLink egress port instead of the host bus.
  bool nvlink_enabled = false;

  /// Bandwidth of each GPU's NVLink egress port, bytes per second
  /// (V100-generation NVLink2: ~50 GB/s per direction).
  double nvlink_bandwidth_bytes_per_s = 50.0e9;

  /// Fixed per-transfer latency on a peer link, microseconds.
  double nvlink_latency_us = 5.0;

  /// Predicted transfer time for `bytes`, in microseconds. Used both by the
  /// simulator and by model-based schedulers (DMDA's comm_k term).
  [[nodiscard]] double transfer_time_us(std::uint64_t bytes) const {
    return bus_latency_us +
           static_cast<double>(bytes) / bus_bandwidth_bytes_per_s * 1e6;
  }

  /// Predicted transfer time over a peer link, in microseconds.
  [[nodiscard]] double nvlink_transfer_time_us(std::uint64_t bytes) const {
    return nvlink_latency_us +
           static_cast<double>(bytes) / nvlink_bandwidth_bytes_per_s * 1e6;
  }

  /// Throughput of one device in GFlop/s.
  [[nodiscard]] double gflops_of(GpuId gpu) const {
    return gpu_gflops_per_device.empty() ? gpu_gflops
                                         : gpu_gflops_per_device[gpu];
  }

  /// Predicted execution time of a task of `flops` flops, microseconds
  /// (uniform-speed view; prefer the per-GPU overload on heterogeneous
  /// platforms).
  [[nodiscard]] double compute_time_us(double flops) const {
    return flops / (gpu_gflops * 1e9) * 1e6;
  }

  /// Predicted execution time of `flops` on a specific device.
  [[nodiscard]] double compute_time_us(double flops, GpuId gpu) const {
    return flops / (gflops_of(gpu) * 1e9) * 1e6;
  }

  [[nodiscard]] bool is_heterogeneous() const {
    return !gpu_gflops_per_device.empty();
  }

  /// Cumulated GPU memory across the platform; the figures' "fits in
  /// cumulated memory" thresholds compare working sets against this.
  [[nodiscard]] std::uint64_t cumulated_memory_bytes() const {
    return static_cast<std::uint64_t>(num_gpus) * gpu_memory_bytes;
  }

  /// Aggregate peak compute of the platform in GFlop/s.
  [[nodiscard]] double peak_gflops() const {
    if (gpu_gflops_per_device.empty()) {
      return gpu_gflops * static_cast<double>(num_gpus);
    }
    double total = 0.0;
    for (double gflops : gpu_gflops_per_device) total += gflops;
    return total;
  }
};

/// Convenience factory for the paper's Tesla V100 testbed.
inline Platform make_v100_platform(std::uint32_t num_gpus,
                                   std::uint64_t gpu_memory_bytes = 500 * kMB) {
  Platform platform;
  platform.num_gpus = num_gpus;
  platform.gpu_memory_bytes = gpu_memory_bytes;
  return platform;
}

}  // namespace mg::core
