// Platform description (Figure 2 of the paper): K identical GPUs, each with
// its own bounded memory, all attached to host memory through one shared PCI
// bus. The default constants are the paper's experimental setup: Tesla V100
// GEMM throughput of 13 253 GFlop/s (the "GFlop/s max" line of the figures),
// a 16 GB/s PCI express bus, and GPU memory restricted to 500 MB.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.hpp"

namespace mg::core {

/// The paper expresses sizes in MB = 1e6 bytes (140 MB working set for
/// 2x5 data of one 14 MB block-row each).
inline constexpr std::uint64_t kMB = 1'000'000;
inline constexpr std::uint64_t kGB = 1'000'000'000;

/// Identifier of a node (machine) in a multi-node cluster.
using NodeId = std::uint32_t;

struct Platform {
  /// Number of GPUs (K).
  std::uint32_t num_gpus = 1;

  /// Number of nodes the GPUs are spread over. 1 (the default) is the
  /// paper's single-machine setup; with N > 1 the GPUs are split into N
  /// contiguous equally-sized groups, each node with its own host memory,
  /// PCI bus and a network link to every other node.
  std::uint32_t num_nodes = 1;

  /// Per-node host-memory budget for caching *remote* data (bytes);
  /// 0 = unbounded. Data homed on a node is always available from its own
  /// host memory; this bounds only the cache of data fetched over the
  /// network from other nodes.
  std::uint64_t host_memory_bytes = 0;

  /// Bandwidth of each node's network egress link, bytes per second
  /// (default: ~100 Gb/s Ethernet/InfiniBand class).
  double net_bandwidth_bytes_per_s = 12.5e9;

  /// Fixed per-message network latency, microseconds.
  double net_latency_us = 25.0;

  /// Usable bytes of each GPU memory (M, uniform across GPUs).
  std::uint64_t gpu_memory_bytes = 500 * kMB;

  /// Effective GEMM throughput per GPU, in GFlop/s (uniform platforms, as
  /// in the paper's evaluation).
  double gpu_gflops = 13'253.0;

  /// Optional per-device throughput override for *heterogeneous* platforms
  /// (the general StarPU setting). When non-empty it must have one entry
  /// per GPU and takes precedence over gpu_gflops.
  std::vector<double> gpu_gflops_per_device;

  /// Aggregate bandwidth of the shared host<->GPU bus, bytes per second.
  double bus_bandwidth_bytes_per_s = 16.0e9;

  /// Fixed per-transfer latency (DMA setup, driver), microseconds.
  double bus_latency_us = 15.0;

  /// Enable direct GPU-to-GPU transfers (the paper's Section VI future
  /// work): when a requested data is already resident on a peer GPU, it is
  /// pulled over that peer's NVLink egress port instead of the host bus.
  bool nvlink_enabled = false;

  /// Bandwidth of each GPU's NVLink egress port, bytes per second
  /// (V100-generation NVLink2: ~50 GB/s per direction).
  double nvlink_bandwidth_bytes_per_s = 50.0e9;

  /// Fixed per-transfer latency on a peer link, microseconds.
  double nvlink_latency_us = 5.0;

  /// Streaming multiprocessors per GPU and resident warps per SM. The
  /// defaults are the Tesla V100 entry of the BEMPS GPU tables (80 SMs x
  /// 64 warps), matching the paper's testbed; together they bound the warp
  /// budget occupancy-aware co-scheduling admits against. Existing configs
  /// never read these unless sharing is enabled.
  std::uint32_t sm_count = 80;
  std::uint32_t warps_per_sm = 64;

  /// Single source of truth for the serial-link cost model: a transfer of
  /// `bytes` over a link of `bandwidth_bytes_per_s` pays `latency_us` of
  /// fixed setup plus the bandwidth term. Every link in the system — host
  /// PCI bus, NVLink peer ports, inter-node network — prices transfers with
  /// this formula, both in the simulator (sim/bus.hpp) and in the
  /// model-based schedulers' predictions.
  [[nodiscard]] static double link_time_us(std::uint64_t bytes,
                                           double bandwidth_bytes_per_s,
                                           double latency_us) {
    return latency_us +
           static_cast<double>(bytes) / bandwidth_bytes_per_s * 1e6;
  }

  /// Predicted transfer time for `bytes`, in microseconds. Used both by the
  /// simulator and by model-based schedulers (DMDA's comm_k term).
  [[nodiscard]] double transfer_time_us(std::uint64_t bytes) const {
    return link_time_us(bytes, bus_bandwidth_bytes_per_s, bus_latency_us);
  }

  /// Predicted transfer time over a peer link, in microseconds.
  [[nodiscard]] double nvlink_transfer_time_us(std::uint64_t bytes) const {
    return link_time_us(bytes, nvlink_bandwidth_bytes_per_s,
                        nvlink_latency_us);
  }

  /// Predicted transfer time over one inter-node network hop.
  [[nodiscard]] double net_transfer_time_us(std::uint64_t bytes) const {
    return link_time_us(bytes, net_bandwidth_bytes_per_s, net_latency_us);
  }

  /// Predicted cost of moving `bytes` from a remote node's host memory to a
  /// local GPU: PCI out of the remote node, one network hop, PCI into the
  /// destination GPU.
  [[nodiscard]] double internode_transfer_time_us(std::uint64_t bytes) const {
    return 2.0 * transfer_time_us(bytes) + net_transfer_time_us(bytes);
  }

  /// Warp budget of one GPU — the denominator of the occupancy threshold.
  [[nodiscard]] std::uint32_t total_warps() const {
    return sm_count * warps_per_sm;
  }

  /// True when the platform spans more than one node.
  [[nodiscard]] bool is_cluster() const { return num_nodes > 1; }

  /// Node hosting `gpu`: GPUs are split into num_nodes contiguous groups
  /// (GPUs 0..K/N-1 on node 0, and so on).
  [[nodiscard]] NodeId node_of(GpuId gpu) const {
    if (num_nodes <= 1) return 0;
    return static_cast<NodeId>(static_cast<std::uint64_t>(gpu) * num_nodes /
                               num_gpus);
  }

  /// First GPU of `node` (the contiguous block [gpu_begin, gpu_end)).
  [[nodiscard]] GpuId node_gpu_begin(NodeId node) const {
    if (num_nodes <= 1) return 0;
    // Inverse of node_of's block mapping: smallest g with g*N/K == node.
    return static_cast<GpuId>(
        (static_cast<std::uint64_t>(node) * num_gpus + num_nodes - 1) /
        num_nodes);
  }

  /// One past the last GPU of `node`.
  [[nodiscard]] GpuId node_gpu_end(NodeId node) const {
    if (num_nodes <= 1) return num_gpus;
    return node_gpu_begin(node + 1);
  }

  /// Home node of a data item: data are distributed round-robin over the
  /// nodes' host memories (data d lives on node d mod N).
  [[nodiscard]] NodeId home_node_of(DataId data) const {
    if (num_nodes <= 1) return 0;
    return static_cast<NodeId>(data % num_nodes);
  }

  /// Throughput of one device in GFlop/s.
  [[nodiscard]] double gflops_of(GpuId gpu) const {
    return gpu_gflops_per_device.empty() ? gpu_gflops
                                         : gpu_gflops_per_device[gpu];
  }

  /// Predicted execution time of a task of `flops` flops, microseconds
  /// (uniform-speed view; prefer the per-GPU overload on heterogeneous
  /// platforms).
  [[nodiscard]] double compute_time_us(double flops) const {
    return flops / (gpu_gflops * 1e9) * 1e6;
  }

  /// Predicted execution time of `flops` on a specific device.
  [[nodiscard]] double compute_time_us(double flops, GpuId gpu) const {
    return flops / (gflops_of(gpu) * 1e9) * 1e6;
  }

  [[nodiscard]] bool is_heterogeneous() const {
    return !gpu_gflops_per_device.empty();
  }

  /// Cumulated GPU memory across the platform; the figures' "fits in
  /// cumulated memory" thresholds compare working sets against this.
  [[nodiscard]] std::uint64_t cumulated_memory_bytes() const {
    return static_cast<std::uint64_t>(num_gpus) * gpu_memory_bytes;
  }

  /// Aggregate peak compute of the platform in GFlop/s.
  [[nodiscard]] double peak_gflops() const {
    if (gpu_gflops_per_device.empty()) {
      return gpu_gflops * static_cast<double>(num_gpus);
    }
    double total = 0.0;
    for (double gflops : gpu_gflops_per_device) total += gflops;
    return total;
  }
};

/// Convenience factory for the paper's Tesla V100 testbed.
inline Platform make_v100_platform(std::uint32_t num_gpus,
                                   std::uint64_t gpu_memory_bytes = 500 * kMB) {
  Platform platform;
  platform.num_gpus = num_gpus;
  platform.gpu_memory_bytes = gpu_memory_bytes;
  return platform;
}

}  // namespace mg::core
