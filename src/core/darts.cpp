#include "core/darts.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mg::core {

std::string darts_variant_name(const DartsOptions& options) {
  std::string name = "DARTS";
  if (options.use_luf) name += "+LUF";
  if (options.opti) name += "+OPTI";
  if (options.scan_threshold > 0) name += "+threshold";
  if (options.three_inputs) name += "-3inputs";
  if (options.incremental) name += "+incr";
  if (options.tier_boost > 0.0) name += "+tier";
  return name;
}

DartsScheduler::DartsScheduler(DartsOptions options)
    : options_(options), name_(darts_variant_name(options)) {}

void DartsScheduler::ScanList::init(std::uint32_t num_data) {
  next.resize(num_data + 1);
  prev.resize(num_data + 1);
  present.assign(num_data, 1);
  count = num_data;
  // Chain 0,1,...,n-1 with slot n as the sentinel.
  for (std::uint32_t data = 0; data <= num_data; ++data) {
    next[data] = data + 1 <= num_data ? data + 1 : 0;
    prev[data] = data > 0 ? data - 1 : num_data;
  }
  next[num_data] = num_data == 0 ? num_data : 0;
  prev[0] = num_data;
  next[num_data == 0 ? 0 : num_data - 1] = num_data;
  prev[num_data] = num_data == 0 ? num_data : num_data - 1;
}

void DartsScheduler::ScanList::remove(DataId data) {
  if (present[data] == 0) return;
  present[data] = 0;
  next[prev[data]] = next[data];
  prev[next[data]] = prev[data];
  --count;
}

void DartsScheduler::ScanList::push_back(DataId data) {
  if (present[data] != 0) return;
  present[data] = 1;
  const DataId tail = prev[sentinel()];
  next[tail] = data;
  prev[data] = tail;
  next[data] = sentinel();
  prev[sentinel()] = data;
  ++count;
}

void DartsScheduler::prepare(const TaskGraph& graph, const Platform& platform,
                             std::uint64_t seed) {
  MG_CHECK_MSG(!options_.incremental ||
                   (!options_.three_inputs && !options_.opti &&
                    options_.scan_threshold == 0),
               "incremental DARTS does not compose with the scan variants");
  graph_ = &graph;
  rng_.reseed(seed);

  const std::uint32_t num_tasks = graph.num_tasks();
  const std::uint32_t num_data = graph.num_data();
  dep_pending_.clear();
  if (deps_) {
    dep_pending_.resize(num_tasks);
    for (TaskId task = 0; task < num_tasks; ++task) {
      dep_pending_[task] = graph.num_predecessors(task);
    }
  }
  if (streaming_) {
    // Nothing has arrived yet: the shared pool fills via notify_job_arrived.
    state_.assign(num_tasks, TaskState::kUnsubmitted);
    available_.clear();
    available_pos_.assign(num_tasks, kNoPos);
  } else if (deps_) {
    // The shared pool is the ready frontier: only tasks without
    // predecessors start available; the rest join via notify_task_retired.
    state_.assign(num_tasks, TaskState::kUnsubmitted);
    available_.clear();
    available_pos_.assign(num_tasks, kNoPos);
    for (TaskId task = 0; task < num_tasks; ++task) {
      if (graph.num_predecessors(task) == 0) {
        state_[task] = TaskState::kAvailable;
        push_to_available(task);
      }
    }
  } else {
    state_.assign(num_tasks, TaskState::kAvailable);
    available_.resize(num_tasks);
    available_pos_.resize(num_tasks);
    for (TaskId task = 0; task < num_tasks; ++task) {
      available_[task] = task;
      available_pos_[task] = task;
    }
  }

  per_gpu_.assign(platform.num_gpus, PerGpu{});
  for (PerGpu& gpu_state : per_gpu_) {
    gpu_state.data_not_in_mem.init(num_data);
    gpu_state.use_stamp.assign(num_data, 0);
    if (options_.incremental) {
      gpu_state.in_mem.assign(num_data, 0);
      gpu_state.missing.resize(num_tasks);
      gpu_state.free_count.assign(num_data, 0);
      for (TaskId task = 0; task < num_tasks; ++task) {
        const auto degree =
            static_cast<std::uint32_t>(graph.inputs(task).size());
        gpu_state.missing[task] = degree;
        // n(D) counts *available* tasks only; a task joins the counters when
        // its job arrives (streaming) or its last predecessor retires (deps).
        if (state_[task] == TaskState::kAvailable && degree == 1) {
          ++gpu_state.free_count[graph.inputs(task)[0]];
        }
      }
    }
  }
  occ_hinted_ = false;
  occ_active_warps_.assign(platform.num_gpus, 0);
  occ_free_warps_.assign(platform.num_gpus, 0);
  // Priority announcements may precede prepare (the serving layer announces
  // at construction), so only the per-task projection resets here.
  task_priority_.assign(num_tasks, 0);
  use_clock_ = 0;
}

void DartsScheduler::notify_occupancy(GpuId gpu, std::uint32_t active_warps,
                                      std::uint32_t free_warps) {
  occ_hinted_ = true;
  occ_active_warps_[gpu] = active_warps;
  occ_free_warps_[gpu] = free_warps;
}

void DartsScheduler::notify_job_arrived(std::uint32_t job,
                                        std::span<const TaskId> tasks) {
  if (has_priorities_) {
    const std::uint32_t priority =
        job < job_priority_.size() ? job_priority_[job] : 0;
    for (TaskId task : tasks) task_priority_[task] = priority;
  }
  for (TaskId task : tasks) {
    MG_DCHECK(state_[task] == TaskState::kUnsubmitted);
    state_[task] = TaskState::kAvailable;
    push_to_available(task);
    incremental_availability_change(task, +1);
  }
}

void DartsScheduler::notify_job_priority(std::uint32_t job,
                                         std::uint32_t priority) {
  if (job >= job_priority_.size()) job_priority_.resize(job + 1, 0);
  job_priority_[job] = priority;
  if (priority > 0) has_priorities_ = true;
}

std::uint32_t DartsScheduler::data_priority(DataId data) const {
  std::uint32_t best = 0;
  for (TaskId task : graph_->consumers(data)) {
    if (state_[task] == TaskState::kAvailable) {
      best = std::max(best, task_priority(task));
    }
  }
  return best;
}

void DartsScheduler::notify_task_retired(
    TaskId task, std::span<const TaskId> enabled_successors) {
  // Keep the unretired-predecessor mirror fresh for the unlock weighting.
  for (TaskId succ : graph_->successors(task)) {
    if (dep_pending_[succ] > 0) --dep_pending_[succ];
  }
  // The enabled successors extend the ready frontier — the same move a
  // streamed job arrival makes, including the incremental n(D) bookkeeping.
  for (TaskId succ : enabled_successors) {
    MG_DCHECK(state_[succ] == TaskState::kUnsubmitted);
    state_[succ] = TaskState::kAvailable;
    push_to_available(succ);
    incremental_availability_change(succ, +1);
  }
}

std::uint64_t DartsScheduler::unlock_weight(TaskId task) const {
  std::uint64_t weight = 0;
  const auto inputs = graph_->inputs(task);
  for (TaskId succ : graph_->successors(task)) {
    // `task` has not retired, so it still counts in the successor's pending
    // total: a count of one means `task` is the last blocker.
    if (dep_pending_[succ] != 1) continue;
    std::uint64_t shared = 0;
    for (DataId data : graph_->inputs(succ)) {
      if (std::find(inputs.begin(), inputs.end(), data) != inputs.end()) {
        ++shared;
      }
    }
    weight += 1 + shared;
  }
  // Tier boost: high-priority tasks score as if they unlocked extra
  // successors, so every successor-aware choice leans their way.
  if (tier_active()) {
    weight += static_cast<std::uint64_t>(
        options_.tier_boost * static_cast<double>(task_priority(task)));
  }
  return weight;
}

std::uint64_t DartsScheduler::successor_weight_of_data(DataId data) const {
  std::uint64_t weight = 0;
  for (TaskId task : graph_->consumers(data)) {
    if (state_[task] == TaskState::kAvailable) weight += unlock_weight(task);
  }
  return weight;
}

DataId DartsScheduler::choose_candidate_successor_aware() {
  std::uint64_t best_weight = 0;
  std::uint32_t best_consumers = 0;
  std::size_t tie_count = 0;
  DataId chosen = kInvalidData;
  for (DataId data : candidates_) {
    const std::uint64_t weight = successor_weight_of_data(data);
    const std::uint32_t consumers = count_unprocessed_consumers(data);
    if (chosen == kInvalidData || weight > best_weight ||
        (weight == best_weight && consumers > best_consumers)) {
      best_weight = weight;
      best_consumers = consumers;
      chosen = data;
      tie_count = 1;
    } else if (weight == best_weight && consumers == best_consumers) {
      ++tie_count;
      if (rng_.below(tie_count) == 0) chosen = data;
    }
  }
  return chosen;
}

TaskId DartsScheduler::take_available_successor_aware(
    GpuId gpu, const MemoryView* memory) {
  // Locality first: a narrow ready frontier makes this fallback the common
  // case on DAG runs, and a frontier task with fewer absent inputs costs
  // fewer host loads right now. Unlock weight only breaks locality ties —
  // the reverse ordering thrashes the cache once the working set spills.
  const PerGpu& gpu_state = per_gpu_[gpu];
  std::uint32_t best_missing = 0;
  std::uint64_t best_weight = 0;
  std::size_t tie_count = 0;
  TaskId chosen = kInvalidTask;
  for (TaskId task : available_) {
    std::uint32_t missing = 0;
    if (options_.incremental) {
      missing = gpu_state.missing[task];
    } else if (memory != nullptr) {
      for (DataId data : graph_->inputs(task)) {
        if (!memory->is_present_or_fetching(data)) ++missing;
      }
    }
    const std::uint64_t weight = unlock_weight(task);
    if (chosen == kInvalidTask || missing < best_missing ||
        (missing == best_missing && weight > best_weight)) {
      best_missing = missing;
      best_weight = weight;
      chosen = task;
      tie_count = 1;
    } else if (missing == best_missing && weight == best_weight) {
      ++tie_count;
      if (rng_.below(tie_count) == 0) chosen = task;
    }
  }
  if (chosen == kInvalidTask) return kInvalidTask;
  for (DataId data : graph_->inputs(chosen)) remove_data_from_scan(gpu, data);
  incremental_availability_change(chosen, -1);
  remove_from_available(chosen);
  mark_buffered(gpu, chosen);
  return chosen;
}

bool DartsScheduler::rest_in_memory(TaskId task, const MemoryView& memory,
                                    DataId extra, DataId extra2) const {
  for (DataId data : graph_->inputs(task)) {
    if (data == extra || data == extra2) continue;
    if (!memory.is_present_or_fetching(data)) return false;
  }
  return true;
}

std::uint32_t DartsScheduler::count_unprocessed_consumers(DataId data) const {
  std::uint32_t count = 0;
  for (TaskId task : graph_->consumers(data)) {
    // Unsubmitted tasks are invisible: counting them would leak knowledge of
    // jobs that have not arrived yet into the tie-break.
    if (state_[task] != TaskState::kDone &&
        state_[task] != TaskState::kUnsubmitted) {
      ++count;
    }
  }
  return count;
}

TaskId DartsScheduler::pop_task(GpuId gpu, const MemoryView& memory) {
  PerGpu& gpu_state = per_gpu_[gpu];
  if (!gpu_state.planned.empty()) return pop_planned(gpu);
  if (available_.empty()) return kInvalidTask;
  if (options_.incremental) return pop_task_incremental(gpu);

  // Line 4-6 of Algorithm 5: find the data whose load frees the most tasks.
  // The list is scanned in submission order; the threshold variant caps how
  // many entries one decision may visit and rotates the start so successive
  // decisions cover the whole list rather than re-inspecting a stale prefix.
  const ScanList& list = gpu_state.data_not_in_mem;
  const std::size_t scan_limit =
      options_.scan_threshold > 0
          ? std::min<std::size_t>(options_.scan_threshold, list.count)
          : list.count;
  DataId scan_start = list.first();
  if (options_.scan_threshold > 0 && gpu_state.scan_cursor != kInvalidData &&
      list.contains(gpu_state.scan_cursor)) {
    scan_start = gpu_state.scan_cursor;
  }
  std::uint32_t n_max = 0;
  candidates_.clear();
  DataId data = scan_start;
  for (std::size_t i = 0; i < scan_limit; ++i) {
    if (data == list.sentinel()) data = list.first();  // wrap
    const DataId current = data;
    data = list.after(data);
    std::uint32_t n = 0;
    for (TaskId task : graph_->consumers(current)) {
      if (state_[task] == TaskState::kAvailable &&
          rest_in_memory(task, memory, current)) {
        ++n;
      }
    }
    if (n == 0) continue;
    if (options_.opti) {
      gpu_state.scan_cursor = data == list.sentinel() ? kInvalidData : data;
      return plan_and_pop(gpu, memory, current);
    }
    if (n > n_max) {
      n_max = n;
      candidates_.clear();
      candidates_.push_back(current);
    } else if (n == n_max) {
      candidates_.push_back(current);
    }
  }
  if (options_.scan_threshold > 0) {
    gpu_state.scan_cursor = data == list.sentinel() ? kInvalidData : data;
  }

  if (n_max > 0) {
    // On a dependency-gated run, break candidate ties towards the data
    // whose freed tasks unlock the most successors.
    if (deps_) {
      return plan_and_pop(gpu, memory, choose_candidate_successor_aware());
    }
    // Tier boost: each candidate's consumer score is lifted by its best
    // available consumer's priority, so data serving high-tier jobs is
    // planned first. Dormant runs never enter this branch (identical
    // decisions and RNG draws).
    if (tier_active()) {
      double best_score = -1.0;
      std::size_t tie_count = 0;
      DataId chosen = kInvalidData;
      for (DataId candidate : candidates_) {
        const double score =
            static_cast<double>(count_unprocessed_consumers(candidate)) +
            options_.tier_boost * static_cast<double>(data_priority(candidate));
        if (score > best_score) {
          best_score = score;
          chosen = candidate;
          tie_count = 1;
        } else if (score == best_score) {
          ++tie_count;
          if (rng_.below(tie_count) == 0) chosen = candidate;
        }
      }
      return plan_and_pop(gpu, memory, chosen);
    }
    // Lines 8-9: among data freeing n_max tasks, prefer the one useful to
    // the most unprocessed tasks overall; break remaining ties at random.
    std::uint32_t best_consumers = 0;
    std::size_t tie_count = 0;
    DataId chosen = kInvalidData;
    for (DataId data : candidates_) {
      const std::uint32_t consumers = count_unprocessed_consumers(data);
      if (consumers > best_consumers) {
        best_consumers = consumers;
        chosen = data;
        tie_count = 1;
      } else if (consumers == best_consumers) {
        // Reservoir-style uniform choice among ties.
        ++tie_count;
        if (rng_.below(tie_count) == 0) chosen = data;
      }
    }
    return plan_and_pop(gpu, memory, chosen);
  }

  // Line 13: no data frees a task.
  if (options_.three_inputs) {
    const TaskId task = take_three_inputs(gpu, memory);
    if (task != kInvalidTask) return task;
  }
  return take_random_available(gpu, &memory);
}

TaskId DartsScheduler::pop_task_incremental(GpuId gpu) {
  PerGpu& gpu_state = per_gpu_[gpu];
  // Max n(D) over dataNotInMem; ties by unprocessed consumers, then random.
  const ScanList& list = gpu_state.data_not_in_mem;
  std::uint32_t n_max = 0;
  candidates_.clear();
  for (DataId data = list.first(); data != list.sentinel();
       data = list.after(data)) {
    const std::uint32_t n = gpu_state.free_count[data];
    if (n == 0) continue;
    if (n > n_max) {
      n_max = n;
      candidates_.clear();
      candidates_.push_back(data);
    } else if (n == n_max) {
      candidates_.push_back(data);
    }
  }
  if (n_max > 0) {
    if (deps_) {
      return plan_and_pop_incremental(gpu, choose_candidate_successor_aware());
    }
    std::uint32_t best_consumers = 0;
    std::size_t tie_count = 0;
    DataId chosen = kInvalidData;
    for (DataId data : candidates_) {
      const std::uint32_t consumers = count_unprocessed_consumers(data);
      if (consumers > best_consumers) {
        best_consumers = consumers;
        chosen = data;
        tie_count = 1;
      } else if (consumers == best_consumers) {
        ++tie_count;
        if (rng_.below(tie_count) == 0) chosen = data;
      }
    }
    return plan_and_pop_incremental(gpu, chosen);
  }
  return take_random_available(gpu, nullptr);
}

TaskId DartsScheduler::plan_and_pop_incremental(GpuId gpu, DataId data) {
  PerGpu& gpu_state = per_gpu_[gpu];
  free_tasks_.clear();
  for (TaskId task : graph_->consumers(data)) {
    // missing == 1 and the task consumes the absent `data`, so `data` is
    // exactly its one absent input.
    if (state_[task] == TaskState::kAvailable &&
        gpu_state.missing[task] == 1) {
      free_tasks_.push_back(task);
    }
  }
  MG_DCHECK(free_tasks_.size() == gpu_state.free_count[data]);
  MG_CHECK_MSG(!free_tasks_.empty(), "incremental n(D) counter desync");
  for (TaskId task : free_tasks_) {
    state_[task] = TaskState::kPlanned;
    incremental_availability_change(task, -1);
    remove_from_available(task);
    gpu_state.planned.push_back(task);
  }
  remove_data_from_scan(gpu, data);
  return pop_planned(gpu);
}

DataId DartsScheduler::sole_missing_input(GpuId gpu, TaskId task) const {
  const PerGpu& gpu_state = per_gpu_[gpu];
  MG_DCHECK(gpu_state.missing[task] == 1);
  for (DataId data : graph_->inputs(task)) {
    if (gpu_state.in_mem[data] == 0) return data;
  }
  MG_CHECK_MSG(false, "missing-count desync in incremental DARTS");
  return kInvalidData;
}

void DartsScheduler::incremental_availability_change(TaskId task, int delta) {
  if (!options_.incremental) return;
  for (GpuId gpu = 0; gpu < per_gpu_.size(); ++gpu) {
    PerGpu& gpu_state = per_gpu_[gpu];
    if (gpu_state.missing[task] != 1) continue;
    const DataId missing = sole_missing_input(gpu, task);
    if (delta > 0) {
      ++gpu_state.free_count[missing];
    } else {
      MG_DCHECK(gpu_state.free_count[missing] > 0);
      --gpu_state.free_count[missing];
    }
  }
}

TaskId DartsScheduler::plan_and_pop(GpuId gpu, const MemoryView& memory,
                                    DataId data) {
  PerGpu& gpu_state = per_gpu_[gpu];
  free_tasks_.clear();
  for (TaskId task : graph_->consumers(data)) {
    if (state_[task] == TaskState::kAvailable &&
        rest_in_memory(task, memory, data)) {
      free_tasks_.push_back(task);
    }
  }
  MG_DCHECK(!free_tasks_.empty());
  for (TaskId task : free_tasks_) {
    state_[task] = TaskState::kPlanned;
    remove_from_available(task);
    gpu_state.planned.push_back(task);
  }
  remove_data_from_scan(gpu, data);
  return pop_planned(gpu);
}

TaskId DartsScheduler::pop_planned(GpuId gpu) {
  PerGpu& gpu_state = per_gpu_[gpu];
  MG_DCHECK(!gpu_state.planned.empty());
  // Sharing mode, GPU partially busy: prefer a planned task that fits the
  // free warps so it co-runs instead of blocking at admission. The plan's
  // data locality is preserved — only the pop order within the front of the
  // planned deque shifts.
  if (occ_hinted_ && occ_active_warps_[gpu] > 0) {
    const std::uint32_t free = occ_free_warps_[gpu];
    const std::size_t window = std::min<std::size_t>(8, gpu_state.planned.size());
    for (std::size_t i = 0; i < window; ++i) {
      const TaskId candidate = gpu_state.planned[i];
      const std::uint32_t warps = graph_->task_warps(candidate);
      if (warps != 0 && warps <= free) {
        gpu_state.planned.erase(gpu_state.planned.begin() +
                                static_cast<std::ptrdiff_t>(i));
        mark_buffered(gpu, candidate);
        return candidate;
      }
    }
  }
  const TaskId task = gpu_state.planned.front();
  gpu_state.planned.pop_front();
  mark_buffered(gpu, task);
  return task;
}

TaskId DartsScheduler::take_random_available(GpuId gpu,
                                             const MemoryView* memory) {
  if (available_.empty()) return kInvalidTask;
  // Dependency-gated runs replace the blind uniform pick with a
  // locality-then-unlock-weight choice over the ready frontier.
  if (deps_) return take_available_successor_aware(gpu, memory);
  TaskId task = kInvalidTask;
  if (tier_active()) {
    // Restrict the uniform pick to the highest-priority available tasks.
    std::uint32_t best_priority = 0;
    std::size_t tie_count = 0;
    for (TaskId candidate : available_) {
      const std::uint32_t priority = task_priority(candidate);
      if (task == kInvalidTask || priority > best_priority) {
        best_priority = priority;
        task = candidate;
        tie_count = 1;
      } else if (priority == best_priority) {
        ++tie_count;
        if (rng_.below(tie_count) == 0) task = candidate;
      }
    }
  } else {
    task = available_[rng_.pick_index(available_)];
  }
  for (DataId data : graph_->inputs(task)) remove_data_from_scan(gpu, data);
  incremental_availability_change(task, -1);
  remove_from_available(task);
  mark_buffered(gpu, task);
  return task;
}

TaskId DartsScheduler::take_three_inputs(GpuId gpu, const MemoryView& memory) {
  PerGpu& gpu_state = per_gpu_[gpu];
  const ScanList& list = gpu_state.data_not_in_mem;
  const std::size_t scan_limit =
      options_.scan_threshold > 0
          ? std::min<std::size_t>(options_.scan_threshold, list.count)
          : list.count;
  DataId cursor = list.first();
  if (options_.scan_threshold > 0 && gpu_state.scan_cursor != kInvalidData &&
      list.contains(gpu_state.scan_cursor)) {
    cursor = gpu_state.scan_cursor;
  }
  // Find the data enabling the most tasks that need exactly one further
  // load; return one of those tasks (Section V-E).
  std::uint32_t best_n = 0;
  DataId best_data = kInvalidData;
  for (std::size_t i = 0; i < scan_limit; ++i) {
    if (cursor == list.sentinel()) cursor = list.first();  // wrap
    const DataId data = cursor;
    cursor = list.after(cursor);
    std::uint32_t n = 0;
    for (TaskId task : graph_->consumers(data)) {
      if (state_[task] != TaskState::kAvailable) continue;
      std::uint32_t missing_others = 0;
      for (DataId input : graph_->inputs(task)) {
        if (input != data && !memory.is_present_or_fetching(input)) {
          ++missing_others;
          if (missing_others > 1) break;
        }
      }
      if (missing_others == 1) ++n;
    }
    if (n > best_n) {
      best_n = n;
      best_data = data;
    }
  }
  if (best_data == kInvalidData) return kInvalidTask;

  // Pick one qualifying task of best_data uniformly at random.
  free_tasks_.clear();
  for (TaskId task : graph_->consumers(best_data)) {
    if (state_[task] != TaskState::kAvailable) continue;
    std::uint32_t missing_others = 0;
    for (DataId input : graph_->inputs(task)) {
      if (input != best_data && !memory.is_present_or_fetching(input)) {
        ++missing_others;
      }
    }
    if (missing_others == 1) free_tasks_.push_back(task);
  }
  MG_DCHECK(!free_tasks_.empty());
  const TaskId task = free_tasks_[rng_.pick_index(free_tasks_)];
  for (DataId data : graph_->inputs(task)) remove_data_from_scan(gpu, data);
  remove_from_available(task);
  mark_buffered(gpu, task);
  return task;
}

void DartsScheduler::mark_buffered(GpuId gpu, TaskId task) {
  state_[task] = TaskState::kBuffered;
  per_gpu_[gpu].buffered.push_back(task);
}

void DartsScheduler::notify_task_complete(GpuId gpu, TaskId task) {
  MG_DCHECK(state_[task] == TaskState::kBuffered);
  state_[task] = TaskState::kDone;
  // The entry can be legitimately absent: when `gpu` died, notify_gpu_lost
  // cleared its whole taskBuffer, yet a task the engine had ejected from the
  // pipeline beforehand (fault-time dependency revocation) still reports its
  // completion against this GPU.
  auto& buffered = per_gpu_[gpu].buffered;
  auto it = std::find(buffered.begin(), buffered.end(), task);
  if (it != buffered.end()) buffered.erase(it);
}

void DartsScheduler::notify_data_loaded(GpuId gpu, DataId data) {
  // Normally the data was removed from the scan list when selected; this
  // covers loads triggered outside a planning decision.
  remove_data_from_scan(gpu, data);

  if (options_.incremental) {
    PerGpu& gpu_state = per_gpu_[gpu];
    if (gpu_state.in_mem[data] == 0) {
      gpu_state.in_mem[data] = 1;
      for (TaskId task : graph_->consumers(data)) {
        MG_DCHECK(gpu_state.missing[task] > 0);
        if (state_[task] == TaskState::kAvailable) {
          if (gpu_state.missing[task] == 1) {
            // Was free via `data`; now it needs no load at all.
            MG_DCHECK(gpu_state.free_count[data] > 0);
            --gpu_state.free_count[data];
          } else if (gpu_state.missing[task] == 2) {
            --gpu_state.missing[task];
            ++gpu_state.free_count[sole_missing_input(gpu, task)];
            continue;
          }
        }
        --gpu_state.missing[task];
      }
    }
  }
}

bool DartsScheduler::notify_gpu_lost(GpuId gpu,
                                     std::span<const TaskId> orphaned) {
  PerGpu& gpu_state = per_gpu_[gpu];

  // The orphans are the dead GPU's pipeline (taskBuffer) — back to the
  // shared pool so any survivor can pick them up at its next pop.
  for (TaskId task : orphaned) {
    MG_DCHECK(state_[task] == TaskState::kBuffered);
    state_[task] = TaskState::kAvailable;
    push_to_available(task);
    incremental_availability_change(task, +1);
  }
  gpu_state.buffered.clear();

  // Planned-but-unpopped tasks were reserved for the dead GPU; release the
  // reservation the same way Algorithm 6 line 8 does after an eviction.
  for (TaskId task : gpu_state.planned) {
    MG_DCHECK(state_[task] == TaskState::kPlanned);
    state_[task] = TaskState::kAvailable;
    push_to_available(task);
    incremental_availability_change(task, +1);
  }
  gpu_state.planned.clear();

  // Drop the dead GPU's loaded-data mirror so the incremental n(D) counters
  // stay consistent with availability changes that still sweep every GPU.
  if (options_.incremental) {
    for (DataId data = 0; data < gpu_state.in_mem.size(); ++data) {
      if (gpu_state.in_mem[data] != 0) notify_data_evicted(gpu, data);
    }
  }
  return true;
}

void DartsScheduler::notify_data_evicted(GpuId gpu, DataId data) {
  push_data_to_scan(gpu, data);

  if (options_.incremental) {
    PerGpu& gpu_state = per_gpu_[gpu];
    if (gpu_state.in_mem[data] != 0) {
      for (TaskId task : graph_->consumers(data)) {
        if (state_[task] == TaskState::kAvailable) {
          if (gpu_state.missing[task] == 0) {
            ++gpu_state.free_count[data];  // `data` becomes its sole miss
          } else if (gpu_state.missing[task] == 1) {
            const DataId other = sole_missing_input(gpu, task);
            MG_DCHECK(gpu_state.free_count[other] > 0);
            --gpu_state.free_count[other];
          }
        }
        ++gpu_state.missing[task];
      }
      gpu_state.in_mem[data] = 0;
    }
  }
}

void DartsScheduler::on_load(GpuId gpu, DataId data) {
  per_gpu_[gpu].use_stamp[data] = ++use_clock_;
}

void DartsScheduler::on_use(GpuId gpu, DataId data) {
  per_gpu_[gpu].use_stamp[data] = ++use_clock_;
}

void DartsScheduler::on_evict(GpuId gpu, DataId data) {
  // Algorithm 6 line 8: planned tasks depending on the victim go back to the
  // shared pool (their placement is reconsidered later).
  auto& planned = per_gpu_[gpu].planned;
  for (auto it = planned.begin(); it != planned.end();) {
    const auto inputs = graph_->inputs(*it);
    if (std::find(inputs.begin(), inputs.end(), data) != inputs.end()) {
      state_[*it] = TaskState::kAvailable;
      push_to_available(*it);
      incremental_availability_change(*it, +1);
      it = planned.erase(it);
    } else {
      ++it;
    }
  }
}

DataId DartsScheduler::choose_victim(GpuId gpu,
                                     std::span<const DataId> candidates) {
  const PerGpu& gpu_state = per_gpu_[gpu];

  // nb(D): uses by taskBuffer; np(D): uses by plannedTasks. Both computed on
  // the candidate set only, via the (small) task lists.
  auto count_uses = [this](const auto& tasks, DataId data) {
    std::uint32_t uses = 0;
    for (TaskId task : tasks) {
      const auto inputs = graph_->inputs(task);
      if (std::find(inputs.begin(), inputs.end(), data) != inputs.end()) {
        ++uses;
      }
    }
    return uses;
  };

  // Line 5 of Algorithm 6: among data unused by the pipeline, evict the one
  // with the fewest planned uses. The paper leaves ties unspecified; we
  // break them by recency (least recently used first), so that "spent" data
  // go before data that current planning is still clustered around.
  DataId victim = kInvalidData;
  std::uint32_t best_np = ~std::uint32_t{0};
  std::uint64_t best_stamp = ~std::uint64_t{0};
  for (DataId data : candidates) {
    if (count_uses(gpu_state.buffered, data) != 0) continue;
    const std::uint32_t np = count_uses(gpu_state.planned, data);
    const std::uint64_t stamp = gpu_state.use_stamp[data];
    if (np < best_np || (np == best_np && stamp < best_stamp)) {
      best_np = np;
      best_stamp = stamp;
      victim = data;
    }
  }
  if (victim != kInvalidData) return victim;

  // Fallback (line 7): Belady's rule on the taskBuffer — evict the data
  // whose next use in pipeline order is the furthest away.
  std::size_t furthest = 0;
  for (DataId data : candidates) {
    std::size_t next_use = gpu_state.buffered.size();  // "never" sentinel
    for (std::size_t i = 0; i < gpu_state.buffered.size(); ++i) {
      const auto inputs = graph_->inputs(gpu_state.buffered[i]);
      if (std::find(inputs.begin(), inputs.end(), data) != inputs.end()) {
        next_use = i;
        break;
      }
    }
    if (victim == kInvalidData || next_use > furthest) {
      victim = data;
      furthest = next_use;
    }
  }
  return victim;
}

void DartsScheduler::remove_from_available(TaskId task) {
  const std::uint32_t pos = available_pos_[task];
  MG_DCHECK(pos != kNoPos);
  const TaskId moved = available_.back();
  available_[pos] = moved;
  available_pos_[moved] = pos;
  available_.pop_back();
  available_pos_[task] = kNoPos;
}

void DartsScheduler::push_to_available(TaskId task) {
  MG_DCHECK(available_pos_[task] == kNoPos);
  available_pos_[task] = static_cast<std::uint32_t>(available_.size());
  available_.push_back(task);
}

void DartsScheduler::remove_data_from_scan(GpuId gpu, DataId data) {
  PerGpu& gpu_state = per_gpu_[gpu];
  if (!gpu_state.data_not_in_mem.contains(data)) return;
  if (gpu_state.scan_cursor == data) {
    const DataId next = gpu_state.data_not_in_mem.after(data);
    gpu_state.scan_cursor =
        next == gpu_state.data_not_in_mem.sentinel() ? kInvalidData : next;
  }
  gpu_state.data_not_in_mem.remove(data);
}

void DartsScheduler::push_data_to_scan(GpuId gpu, DataId data) {
  per_gpu_[gpu].data_not_in_mem.push_back(data);
}

}  // namespace mg::core
