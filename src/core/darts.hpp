// DARTS — Data-Aware Reactive Task Scheduling (Algorithm 5) with the LUF
// ("Least Used in the Future") eviction policy (Algorithm 6). This is the
// paper's primary contribution.
//
// Scheduling side, per GPU request:
//   * if plannedTasks_k is non-empty, pop it;
//   * otherwise scan dataNotInMem_k for the data D maximizing n(D), the
//     number of available tasks that would need no further load if D were
//     brought in ("free" tasks). Ties are broken by total unprocessed
//     consumers, then uniformly at random. All free tasks of the chosen data
//     are planned on this GPU;
//   * if no data frees any task: the 3inputs variant looks for the data
//     enabling the most tasks that are exactly one further load away and
//     returns one of those tasks; otherwise a random available task is
//     returned.
// The OPTI variant stops the scan at the first data with n(D) >= 1; the
// threshold variant caps how many data the scan may visit. Both trade
// schedule quality for decision time (Sections V-E/V-F of the paper).
//
// Eviction side (LUF): prefer a victim used by no task of the GPU's pipeline
// (taskBuffer), minimizing uses by plannedTasks; otherwise apply Belady's
// rule over the pipeline. Planned tasks that depended on the evicted data
// return to the available pool.
//
// Dependency-gated runs (DAG workloads): the shared pool holds exactly the
// *ready frontier* — tasks whose predecessors all retired — maintained
// incrementally by notify_task_retired, so no planning round ever scans
// blocked tasks (they stay kUnsubmitted until enabled). Planning further
// becomes successor-aware: candidate data ties are broken towards the data
// whose freed tasks would *unlock* the most successors (successors one
// retirement away from enablement, weighted by the inputs they share with
// the unlocking task), and the no-free-task fallback picks the available
// task with the highest unlock weight instead of a uniformly random one.
// Independent-task runs never take these paths, so their decisions (and RNG
// draws) are untouched.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/eviction.hpp"
#include "core/ids.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace mg::core {

struct DartsOptions {
  /// Use the LUF eviction policy (otherwise the engine default, LRU).
  bool use_luf = true;

  /// "3inputs": when no data enables a free task, pick the data enabling the
  /// most tasks that are a single additional load away (Section V-E).
  bool three_inputs = false;

  /// "OPTI": stop the data scan at the first data enabling >= 1 free task
  /// (Section V-F).
  bool opti = false;

  /// Cap on the number of candidate data scanned per planning round;
  /// 0 = unlimited ("threshold" variant, Section V-C).
  std::uint32_t scan_threshold = 0;

  /// Incremental free-task counting (the paper's first future-work item:
  /// "improve the computational complexity of DARTS"). Maintains n(D) per
  /// GPU under load/evict/plan events, so a planning round costs
  /// O(|dataNotInMem|) instead of O(sum of consumer degrees). Semantics
  /// differ slightly from the scan: only *fully loaded* data count as in
  /// memory (the runtime does not announce fetch starts), so decisions can
  /// diverge from the scan variant while remaining DARTS-shaped.
  /// Incompatible with three_inputs / opti / scan_threshold.
  bool incremental = false;

  /// SLO tier boost (streamed serving): folds announced job priorities into
  /// planning — deps runs add tier_boost × priority to the unlock weight,
  /// scan runs boost each candidate data's consumer score by its best
  /// available consumer's priority and restrict the no-free-task fallback
  /// to the highest-priority tasks. 0 (the default) leaves every decision
  /// and RNG draw untouched; the boost also stays dormant until some job
  /// announces a nonzero priority.
  double tier_boost = 0.0;
};

class DartsScheduler final : public Scheduler, public EvictionPolicy {
 public:
  explicit DartsScheduler(DartsOptions options = {});

  // Scheduler
  [[nodiscard]] std::string_view name() const override { return name_; }
  void prepare(const TaskGraph& graph, const Platform& platform,
               std::uint64_t seed) override;
  [[nodiscard]] TaskId pop_task(GpuId gpu, const MemoryView& memory) override;
  void notify_task_complete(GpuId gpu, TaskId task) override;
  void notify_data_loaded(GpuId gpu, DataId data) override;
  void notify_data_evicted(GpuId gpu, DataId data) override;
  /// GPU loss: the orphans (this GPU's taskBuffer) and its plannedTasks all
  /// return to the shared pool, so survivors re-plan them reactively —
  /// exactly the mechanism Algorithm 6 already uses for eviction fallout.
  [[nodiscard]] bool notify_gpu_lost(GpuId gpu,
                                     std::span<const TaskId> orphaned) override;
  /// Streaming: every task starts kUnsubmitted (absent from the shared
  /// pool); notify_job_arrived moves a job's tasks to kAvailable, where the
  /// reactive planning already picks them up — DARTS needs no placement
  /// decision at arrival time.
  [[nodiscard]] bool begin_streaming() override {
    streaming_ = true;
    return true;
  }
  void notify_job_arrived(std::uint32_t job,
                          std::span<const TaskId> tasks) override;
  /// Streaming dispatch priority (serve::JobSpec::priority, plus any tier
  /// admission weight the serving layer folds in). Only read when
  /// options().tier_boost > 0.
  void notify_job_priority(std::uint32_t job, std::uint32_t priority) override;
  /// Dependencies: the shared pool becomes the ready frontier and planning
  /// turns successor-aware (see the header comment).
  [[nodiscard]] bool begin_dependencies() override {
    deps_ = true;
    return true;
  }
  void notify_task_retired(TaskId task,
                           std::span<const TaskId> enabled_successors) override;
  /// Occupancy hint (GPU sharing): pop_planned then prefers, near the front
  /// of the planned deque, a task whose warp footprint fits the remaining
  /// budget of a partially-busy GPU.
  void notify_occupancy(GpuId gpu, std::uint32_t active_warps,
                        std::uint32_t free_warps) override;
  [[nodiscard]] EvictionPolicy* eviction_policy(GpuId gpu) override {
    (void)gpu;
    return options_.use_luf ? this : nullptr;
  }

  // EvictionPolicy (LUF) — only wired when options_.use_luf.
  void on_load(GpuId gpu, DataId data) override;
  void on_use(GpuId gpu, DataId data) override;
  void on_evict(GpuId gpu, DataId data) override;
  [[nodiscard]] DataId choose_victim(
      GpuId gpu, std::span<const DataId> candidates) override;

  [[nodiscard]] const DartsOptions& options() const { return options_; }

  /// Planned-but-not-popped tasks currently reserved for `gpu` (test hook).
  [[nodiscard]] const std::deque<TaskId>& planned_tasks(GpuId gpu) const {
    return per_gpu_[gpu].planned;
  }

  /// Incremental-mode n(D) for `data` on `gpu` (test hook: the audit test
  /// compares this against a from-scratch recount). Only meaningful with
  /// options().incremental.
  [[nodiscard]] std::uint32_t incremental_free_count(GpuId gpu,
                                                     DataId data) const {
    return per_gpu_[gpu].free_count[data];
  }

  /// Incremental-mode loaded-data mirror (test hook).
  [[nodiscard]] bool incremental_in_mem(GpuId gpu, DataId data) const {
    return per_gpu_[gpu].in_mem[data] != 0;
  }

 private:
  enum class TaskState : std::uint8_t {
    kUnsubmitted,  ///< streaming: job not yet arrived — invisible to planning
    kAvailable,    ///< in the shared pool
    kPlanned,      ///< reserved in some GPU's plannedTasks
    kBuffered,     ///< popped into a GPU pipeline (the paper's taskBuffer)
    kDone,
  };

  /// dataNotInMem_k as an intrusive doubly-linked list over data ids, in
  /// *submission order* (removals do not scramble it): the order the scan,
  /// OPTI and threshold variants visit candidates in is part of their
  /// behaviour — a first-enabling-data rule only works when "first" means
  /// something (nearby in the natural task order).
  struct ScanList {
    std::vector<DataId> next;  ///< size num_data+1; last slot = sentinel
    std::vector<DataId> prev;
    std::vector<std::uint8_t> present;
    std::uint32_t count = 0;

    void init(std::uint32_t num_data);
    void remove(DataId data);
    void push_back(DataId data);
    [[nodiscard]] DataId sentinel() const {
      return static_cast<DataId>(present.size());
    }
    [[nodiscard]] DataId first() const { return next[sentinel()]; }
    [[nodiscard]] DataId after(DataId data) const { return next[data]; }
    [[nodiscard]] bool contains(DataId data) const {
      return present[data] != 0;
    }
  };

  struct PerGpu {
    std::deque<TaskId> planned;           ///< plannedTasks_k
    std::vector<TaskId> buffered;         ///< taskBuffer_k, in pop order
    ScanList data_not_in_mem;             ///< scan list, submission order
    std::vector<std::uint64_t> use_stamp; ///< LRU tie-break for LUF
    DataId scan_cursor = kInvalidData;    ///< rotating threshold-scan start

    // Incremental mode state (empty otherwise):
    std::vector<std::uint8_t> in_mem;        ///< loaded-data mirror
    std::vector<std::uint32_t> missing;      ///< per-task absent-input count
    std::vector<std::uint32_t> free_count;   ///< n(D) over available tasks
  };

  /// True if every input of `task` other than `extra` (and optionally
  /// `extra2`) is already loaded or loading on the GPU behind `memory`.
  [[nodiscard]] bool rest_in_memory(TaskId task, const MemoryView& memory,
                                    DataId extra,
                                    DataId extra2 = kInvalidData) const;

  [[nodiscard]] std::uint32_t count_unprocessed_consumers(DataId data) const;

  void remove_from_available(TaskId task);
  void push_to_available(TaskId task);
  void remove_data_from_scan(GpuId gpu, DataId data);
  void push_data_to_scan(GpuId gpu, DataId data);

  /// Plans on `gpu` every available task freed by loading `data`, and pops
  /// the first of them.
  TaskId plan_and_pop(GpuId gpu, const MemoryView& memory, DataId data);

  TaskId pop_planned(GpuId gpu);

  // SLO tier boost (armed only with options_.tier_boost > 0 and a nonzero
  // announced priority, so default runs take the exact untiered paths).
  [[nodiscard]] bool tier_active() const {
    return options_.tier_boost > 0.0 && has_priorities_;
  }
  [[nodiscard]] std::uint32_t task_priority(TaskId task) const {
    return task < task_priority_.size() ? task_priority_[task] : 0;
  }
  /// Highest announced priority among the available consumers of `data`.
  [[nodiscard]] std::uint32_t data_priority(DataId data) const;
  /// `memory` feeds the dependency-gated fallback's locality ranking; pass
  /// nullptr from incremental mode (which tracks missing counts itself).
  TaskId take_random_available(GpuId gpu, const MemoryView* memory = nullptr);
  TaskId take_three_inputs(GpuId gpu, const MemoryView& memory);
  void mark_buffered(GpuId gpu, TaskId task);

  // Successor-aware planning (dependency-gated runs only).
  /// Weight of the successors `task` would unlock by retiring: one point per
  /// successor whose last unretired predecessor is `task`, plus one per
  /// input that successor shares with `task` (running `task` keeps those
  /// loaded for the successor).
  [[nodiscard]] std::uint64_t unlock_weight(TaskId task) const;
  /// Sum of unlock_weight over the available consumers of `data`.
  [[nodiscard]] std::uint64_t successor_weight_of_data(DataId data) const;
  /// Tie-break over candidates_: unlock weight, then unprocessed consumers,
  /// then uniform random.
  [[nodiscard]] DataId choose_candidate_successor_aware();
  /// Fallback pop: the available task with the fewest absent inputs on
  /// `gpu`, breaking ties towards the highest unlock weight.
  TaskId take_available_successor_aware(GpuId gpu, const MemoryView* memory);

  // Incremental-mode maintenance.
  TaskId pop_task_incremental(GpuId gpu);
  TaskId plan_and_pop_incremental(GpuId gpu, DataId data);
  /// The single absent input of `task` on `gpu` (incremental state).
  [[nodiscard]] DataId sole_missing_input(GpuId gpu, TaskId task) const;
  /// Adjusts n(D) when `task` enters/leaves the available pool.
  void incremental_availability_change(TaskId task, int delta);

  DartsOptions options_;
  std::string name_;
  bool streaming_ = false;
  bool deps_ = false;
  const TaskGraph* graph_ = nullptr;
  util::Rng rng_;

  /// Unretired-predecessor mirror for the successor-aware weighting (not
  /// rolled back on fault-time un-retirements — a slightly stale weight is
  /// an acceptable heuristic error; correctness lives in the engine gate).
  std::vector<std::uint32_t> dep_pending_;
  std::vector<TaskState> state_;
  std::vector<TaskId> available_;            ///< shared pool
  std::vector<std::uint32_t> available_pos_; ///< task -> index, or npos
  std::vector<PerGpu> per_gpu_;
  std::uint64_t use_clock_ = 0;

  /// Occupancy-sharing hints (armed by the first notify_occupancy; sharing
  /// off leaves pop order untouched).
  bool occ_hinted_ = false;
  std::vector<std::uint32_t> occ_active_warps_;
  std::vector<std::uint32_t> occ_free_warps_;

  /// Job priorities announced via notify_job_priority and their per-task
  /// projection (filled as jobs arrive); `has_priorities_` arms the tier
  /// boost only once some job's priority is nonzero.
  std::vector<std::uint32_t> job_priority_;
  std::vector<std::uint32_t> task_priority_;
  bool has_priorities_ = false;

  // Scratch buffers reused across pops to avoid per-call allocation.
  std::vector<DataId> candidates_;
  std::vector<TaskId> free_tasks_;

  static constexpr std::uint32_t kNoPos = 0xffffffffu;
};

/// Human-readable variant name, e.g. "DARTS+LUF+OPTI-3inputs".
std::string darts_variant_name(const DartsOptions& options);

}  // namespace mg::core
