#include "core/task_graph.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace mg::core {

namespace {
const std::string kEmptyLabel;
}  // namespace

std::uint64_t TaskGraph::input_bytes(TaskId task) const {
  std::uint64_t bytes = 0;
  for (DataId data : inputs(task)) bytes += data_sizes_[data];
  return bytes;
}

std::uint64_t TaskGraph::max_task_footprint() const {
  std::uint64_t best = 0;
  for (TaskId task = 0; task < num_tasks(); ++task) {
    best = std::max(best, input_bytes(task) + task_output_bytes(task));
  }
  return best;
}

const std::string& TaskGraph::task_label(TaskId task) const {
  if (task_labels_.empty()) return kEmptyLabel;
  return task_labels_[task];
}

const std::string& TaskGraph::data_label(DataId data) const {
  if (data_labels_.empty()) return kEmptyLabel;
  return data_labels_[data];
}

DataId TaskGraphBuilder::add_data(std::uint64_t size_bytes, std::string label) {
  MG_CHECK_MSG(size_bytes > 0, "data must have non-zero size");
  data_sizes_.push_back(size_bytes);
  data_labels_.push_back(std::move(label));
  return static_cast<DataId>(data_sizes_.size() - 1);
}

TaskId TaskGraphBuilder::add_task(double flops, std::span<const DataId> inputs,
                                  std::string label) {
  MG_CHECK_MSG(flops > 0.0, "task must have positive flops");
  MG_CHECK_MSG(!inputs.empty(), "task must read at least one data");
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    MG_CHECK_MSG(inputs[i] < data_sizes_.size(), "input data not registered");
    for (std::size_t j = i + 1; j < inputs.size(); ++j) {
      MG_CHECK_MSG(inputs[i] != inputs[j], "duplicate input data in task");
    }
  }
  task_inputs_.insert(task_inputs_.end(), inputs.begin(), inputs.end());
  task_offsets_.push_back(static_cast<std::uint32_t>(task_inputs_.size()));
  task_flops_.push_back(flops);
  task_outputs_.push_back(0);
  task_warps_.push_back(0);
  task_labels_.push_back(std::move(label));
  return static_cast<TaskId>(task_flops_.size() - 1);
}

void TaskGraphBuilder::set_task_output(TaskId task, std::uint64_t bytes) {
  MG_CHECK_MSG(task < task_flops_.size(), "unknown task");
  task_outputs_[task] = bytes;
}

void TaskGraphBuilder::set_task_warps(TaskId task, std::uint32_t warps) {
  MG_CHECK_MSG(task < task_flops_.size(), "unknown task");
  task_warps_[task] = warps;
}

void TaskGraphBuilder::add_dependency(TaskId pred, TaskId succ) {
  MG_CHECK_MSG(pred < task_flops_.size(), "unknown predecessor task");
  MG_CHECK_MSG(succ < task_flops_.size(), "unknown successor task");
  MG_CHECK_MSG(pred != succ, "self-dependency");
  explicit_edges_.emplace_back(pred, succ);
}

void TaskGraphBuilder::set_task_writes(TaskId task, DataId data) {
  MG_CHECK_MSG(task < task_flops_.size(), "unknown task");
  MG_CHECK_MSG(data < data_sizes_.size(), "written data not registered");
  // Catch the common duplicate (writes declared right after add_task);
  // build() re-checks the full list once, sorted.
  for (auto it = task_write_list_.rbegin();
       it != task_write_list_.rend() && it->first == task; ++it) {
    MG_CHECK_MSG(it->second != data, "duplicate write declaration");
  }
  task_write_list_.emplace_back(task, data);
}

TaskId TaskGraphBuilder::add_task(double flops,
                                  std::initializer_list<DataId> inputs,
                                  std::string label) {
  return add_task(flops, std::span<const DataId>(inputs.begin(), inputs.size()),
                  std::move(label));
}

TaskGraph TaskGraphBuilder::build() const {
  TaskGraph graph;
  graph.task_offsets_ = task_offsets_;
  graph.task_inputs_ = task_inputs_;
  graph.data_sizes_ = data_sizes_;
  graph.task_flops_ = task_flops_;
  // Store outputs only when some task declares them (keeps has_outputs()
  // cheap and the common no-output case lean).
  if (std::any_of(task_outputs_.begin(), task_outputs_.end(),
                  [](std::uint64_t bytes) { return bytes > 0; })) {
    graph.task_outputs_ = task_outputs_;
  }
  // Same treatment for warp footprints: stored only when some task declares
  // one, so exclusive-model graphs carry no occupancy state at all.
  if (std::any_of(task_warps_.begin(), task_warps_.end(),
                  [](std::uint32_t warps) { return warps > 0; })) {
    graph.task_warps_ = task_warps_;
  }

  // Drop labels entirely when none were provided, to keep big graphs lean.
  const bool any_task_label = std::any_of(
      task_labels_.begin(), task_labels_.end(),
      [](const std::string& label) { return !label.empty(); });
  const bool any_data_label = std::any_of(
      data_labels_.begin(), data_labels_.end(),
      [](const std::string& label) { return !label.empty(); });
  if (any_task_label) graph.task_labels_ = task_labels_;
  if (any_data_label) graph.data_labels_ = data_labels_;

  // Reverse CSR: data -> consumers, stable in task order.
  const auto num_data = static_cast<std::uint32_t>(data_sizes_.size());
  std::vector<std::uint32_t> degree(num_data, 0);
  for (DataId data : task_inputs_) ++degree[data];
  graph.data_offsets_.assign(num_data + 1, 0);
  std::partial_sum(degree.begin(), degree.end(),
                   graph.data_offsets_.begin() + 1);
  graph.data_consumers_.resize(task_inputs_.size());
  std::vector<std::uint32_t> cursor(graph.data_offsets_.begin(),
                                    graph.data_offsets_.end() - 1);
  const auto num_tasks = static_cast<TaskId>(task_flops_.size());
  for (TaskId task = 0; task < num_tasks; ++task) {
    for (std::uint32_t e = task_offsets_[task]; e < task_offsets_[task + 1];
         ++e) {
      graph.data_consumers_[cursor[task_inputs_[e]]++] = task;
    }
  }

  graph.total_flops_ =
      std::accumulate(task_flops_.begin(), task_flops_.end(), 0.0);
  graph.working_set_bytes_ = std::accumulate(
      data_sizes_.begin(), data_sizes_.end(), std::uint64_t{0});

  build_dependencies(graph);
  return graph;
}

// Derives RAW/WAR/WAW edges from the write list, merges in the explicit
// edges, dedupes into kind-bitmask CSRs and validates acyclicity. On a graph
// with neither writes nor explicit edges this is a no-op and every
// dependency array stays empty.
void TaskGraphBuilder::build_dependencies(TaskGraph& graph) const {
  if (explicit_edges_.empty() && task_write_list_.empty()) return;

  const auto num_tasks = static_cast<TaskId>(task_flops_.size());
  const auto num_data = static_cast<std::uint32_t>(data_sizes_.size());

  // Full duplicate-write check (the builder only catches adjacent ones).
  {
    std::vector<std::pair<TaskId, DataId>> sorted = task_write_list_;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      MG_CHECK_MSG(sorted[i] != sorted[i - 1], "duplicate write declaration");
    }
  }

  // Write CSRs: task -> written data (ascending per task) and data -> writer
  // tasks (version order = ascending task id).
  if (!task_write_list_.empty()) {
    std::vector<std::uint32_t> write_degree(num_tasks, 0);
    std::vector<std::uint32_t> writer_degree(num_data, 0);
    for (const auto& [task, data] : task_write_list_) {
      ++write_degree[task];
      ++writer_degree[data];
    }
    graph.write_offsets_.assign(num_tasks + 1, 0);
    std::partial_sum(write_degree.begin(), write_degree.end(),
                     graph.write_offsets_.begin() + 1);
    graph.writer_offsets_.assign(num_data + 1, 0);
    std::partial_sum(writer_degree.begin(), writer_degree.end(),
                     graph.writer_offsets_.begin() + 1);
    graph.task_writes_.resize(task_write_list_.size());
    graph.data_writers_.resize(task_write_list_.size());
    std::vector<std::pair<TaskId, DataId>> by_task = task_write_list_;
    std::sort(by_task.begin(), by_task.end());
    std::vector<std::uint32_t> write_cursor(graph.write_offsets_.begin(),
                                            graph.write_offsets_.end() - 1);
    std::vector<std::uint32_t> writer_cursor(graph.writer_offsets_.begin(),
                                             graph.writer_offsets_.end() - 1);
    for (const auto& [task, data] : by_task) {
      graph.task_writes_[write_cursor[task]++] = data;
      graph.data_writers_[writer_cursor[data]++] = task;
    }
  }

  // Edge derivation in task-submission order. Per data: the last writer so
  // far and the readers of the current version.
  struct RawEdge {
    TaskId pred;
    TaskId succ;
    std::uint8_t kind;
  };
  std::vector<RawEdge> edges;
  edges.reserve(explicit_edges_.size() + task_write_list_.size());
  for (const auto& [pred, succ] : explicit_edges_) {
    edges.push_back({pred, succ, kDepExplicit});
  }
  if (!task_write_list_.empty()) {
    std::vector<TaskId> last_writer(num_data, kInvalidTask);
    std::vector<std::vector<TaskId>> version_readers(num_data);
    for (TaskId task = 0; task < num_tasks; ++task) {
      // Reads bind to the current version: RAW from its writer, if any. A
      // task that also writes the data reads the previous version too.
      for (std::uint32_t e = task_offsets_[task]; e < task_offsets_[task + 1];
           ++e) {
        const DataId data = task_inputs_[e];
        if (last_writer[data] != kInvalidTask) {
          edges.push_back({last_writer[data], task, kDepRaw});
        }
        version_readers[data].push_back(task);
      }
      // Writes retire the current version: WAR from its readers, WAW from
      // its writer; the task becomes the new version's writer.
      for (DataId data : graph.writes(task)) {
        for (TaskId reader : version_readers[data]) {
          if (reader != task) edges.push_back({reader, task, kDepWar});
        }
        if (last_writer[data] != kInvalidTask) {
          edges.push_back({last_writer[data], task, kDepWaw});
        }
        last_writer[data] = task;
        version_readers[data].clear();
      }
    }
  }

  // Dedup: sort by (pred, succ), OR the kind bits of equal pairs.
  std::sort(edges.begin(), edges.end(),
            [](const RawEdge& a, const RawEdge& b) {
              return a.pred != b.pred ? a.pred < b.pred : a.succ < b.succ;
            });
  std::vector<RawEdge> unique_edges;
  unique_edges.reserve(edges.size());
  for (const RawEdge& edge : edges) {
    if (!unique_edges.empty() && unique_edges.back().pred == edge.pred &&
        unique_edges.back().succ == edge.succ) {
      unique_edges.back().kind |= edge.kind;
    } else {
      unique_edges.push_back(edge);
    }
  }
  if (unique_edges.empty()) return;

  graph.dep_counts_ = DepEdgeCounts{};
  graph.dep_counts_.total = unique_edges.size();
  for (const RawEdge& edge : unique_edges) {
    if (edge.kind & kDepExplicit) ++graph.dep_counts_.explicit_edges;
    if (edge.kind & kDepRaw) ++graph.dep_counts_.raw;
    if (edge.kind & kDepWar) ++graph.dep_counts_.war;
    if (edge.kind & kDepWaw) ++graph.dep_counts_.waw;
  }

  // Successor CSR (already in (pred, succ) order) and predecessor CSR.
  std::vector<std::uint32_t> succ_degree(num_tasks, 0);
  std::vector<std::uint32_t> pred_degree(num_tasks, 0);
  for (const RawEdge& edge : unique_edges) {
    ++succ_degree[edge.pred];
    ++pred_degree[edge.succ];
  }
  graph.dep_succ_offsets_.assign(num_tasks + 1, 0);
  std::partial_sum(succ_degree.begin(), succ_degree.end(),
                   graph.dep_succ_offsets_.begin() + 1);
  graph.dep_pred_offsets_.assign(num_tasks + 1, 0);
  std::partial_sum(pred_degree.begin(), pred_degree.end(),
                   graph.dep_pred_offsets_.begin() + 1);
  graph.dep_succ_.resize(unique_edges.size());
  graph.dep_succ_kinds_.resize(unique_edges.size());
  graph.dep_pred_.resize(unique_edges.size());
  graph.dep_pred_kinds_.resize(unique_edges.size());
  std::vector<std::uint32_t> succ_cursor(graph.dep_succ_offsets_.begin(),
                                         graph.dep_succ_offsets_.end() - 1);
  std::vector<std::uint32_t> pred_cursor(graph.dep_pred_offsets_.begin(),
                                         graph.dep_pred_offsets_.end() - 1);
  for (const RawEdge& edge : unique_edges) {
    graph.dep_succ_[succ_cursor[edge.pred]] = edge.succ;
    graph.dep_succ_kinds_[succ_cursor[edge.pred]++] = edge.kind;
    graph.dep_pred_[pred_cursor[edge.succ]] = edge.pred;
    graph.dep_pred_kinds_[pred_cursor[edge.succ]++] = edge.kind;
  }

  // Kahn topological sweep: validates acyclicity and yields the critical
  // path length (longest chain, counted in tasks).
  std::vector<std::uint32_t> pending(pred_degree);
  std::vector<std::uint32_t> depth(num_tasks, 1);
  std::vector<TaskId> frontier;
  for (TaskId task = 0; task < num_tasks; ++task) {
    if (pending[task] == 0) frontier.push_back(task);
  }
  std::uint32_t visited = 0;
  std::uint32_t longest = 0;
  while (!frontier.empty()) {
    const TaskId task = frontier.back();
    frontier.pop_back();
    ++visited;
    longest = std::max(longest, depth[task]);
    for (TaskId succ : graph.successors(task)) {
      depth[succ] = std::max(depth[succ], depth[task] + 1);
      if (--pending[succ] == 0) frontier.push_back(succ);
    }
  }
  MG_CHECK_MSG(visited == num_tasks, "dependency cycle in task graph");
  graph.critical_path_length_ = longest;
}

void TaskGraphBuilder::clear() {
  task_offsets_.assign(1, 0);
  task_inputs_.clear();
  data_sizes_.clear();
  task_flops_.clear();
  task_outputs_.clear();
  task_warps_.clear();
  task_labels_.clear();
  data_labels_.clear();
  explicit_edges_.clear();
  task_write_list_.clear();
}

}  // namespace mg::core
