#include "core/task_graph.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace mg::core {

namespace {
const std::string kEmptyLabel;
}  // namespace

std::uint64_t TaskGraph::input_bytes(TaskId task) const {
  std::uint64_t bytes = 0;
  for (DataId data : inputs(task)) bytes += data_sizes_[data];
  return bytes;
}

std::uint64_t TaskGraph::max_task_footprint() const {
  std::uint64_t best = 0;
  for (TaskId task = 0; task < num_tasks(); ++task) {
    best = std::max(best, input_bytes(task) + task_output_bytes(task));
  }
  return best;
}

const std::string& TaskGraph::task_label(TaskId task) const {
  if (task_labels_.empty()) return kEmptyLabel;
  return task_labels_[task];
}

const std::string& TaskGraph::data_label(DataId data) const {
  if (data_labels_.empty()) return kEmptyLabel;
  return data_labels_[data];
}

DataId TaskGraphBuilder::add_data(std::uint64_t size_bytes, std::string label) {
  MG_CHECK_MSG(size_bytes > 0, "data must have non-zero size");
  data_sizes_.push_back(size_bytes);
  data_labels_.push_back(std::move(label));
  return static_cast<DataId>(data_sizes_.size() - 1);
}

TaskId TaskGraphBuilder::add_task(double flops, std::span<const DataId> inputs,
                                  std::string label) {
  MG_CHECK_MSG(flops > 0.0, "task must have positive flops");
  MG_CHECK_MSG(!inputs.empty(), "task must read at least one data");
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    MG_CHECK_MSG(inputs[i] < data_sizes_.size(), "input data not registered");
    for (std::size_t j = i + 1; j < inputs.size(); ++j) {
      MG_CHECK_MSG(inputs[i] != inputs[j], "duplicate input data in task");
    }
  }
  task_inputs_.insert(task_inputs_.end(), inputs.begin(), inputs.end());
  task_offsets_.push_back(static_cast<std::uint32_t>(task_inputs_.size()));
  task_flops_.push_back(flops);
  task_outputs_.push_back(0);
  task_labels_.push_back(std::move(label));
  return static_cast<TaskId>(task_flops_.size() - 1);
}

void TaskGraphBuilder::set_task_output(TaskId task, std::uint64_t bytes) {
  MG_CHECK_MSG(task < task_flops_.size(), "unknown task");
  task_outputs_[task] = bytes;
}

TaskId TaskGraphBuilder::add_task(double flops,
                                  std::initializer_list<DataId> inputs,
                                  std::string label) {
  return add_task(flops, std::span<const DataId>(inputs.begin(), inputs.size()),
                  std::move(label));
}

TaskGraph TaskGraphBuilder::build() const {
  TaskGraph graph;
  graph.task_offsets_ = task_offsets_;
  graph.task_inputs_ = task_inputs_;
  graph.data_sizes_ = data_sizes_;
  graph.task_flops_ = task_flops_;
  // Store outputs only when some task declares them (keeps has_outputs()
  // cheap and the common no-output case lean).
  if (std::any_of(task_outputs_.begin(), task_outputs_.end(),
                  [](std::uint64_t bytes) { return bytes > 0; })) {
    graph.task_outputs_ = task_outputs_;
  }

  // Drop labels entirely when none were provided, to keep big graphs lean.
  const bool any_task_label = std::any_of(
      task_labels_.begin(), task_labels_.end(),
      [](const std::string& label) { return !label.empty(); });
  const bool any_data_label = std::any_of(
      data_labels_.begin(), data_labels_.end(),
      [](const std::string& label) { return !label.empty(); });
  if (any_task_label) graph.task_labels_ = task_labels_;
  if (any_data_label) graph.data_labels_ = data_labels_;

  // Reverse CSR: data -> consumers, stable in task order.
  const auto num_data = static_cast<std::uint32_t>(data_sizes_.size());
  std::vector<std::uint32_t> degree(num_data, 0);
  for (DataId data : task_inputs_) ++degree[data];
  graph.data_offsets_.assign(num_data + 1, 0);
  std::partial_sum(degree.begin(), degree.end(),
                   graph.data_offsets_.begin() + 1);
  graph.data_consumers_.resize(task_inputs_.size());
  std::vector<std::uint32_t> cursor(graph.data_offsets_.begin(),
                                    graph.data_offsets_.end() - 1);
  const auto num_tasks = static_cast<TaskId>(task_flops_.size());
  for (TaskId task = 0; task < num_tasks; ++task) {
    for (std::uint32_t e = task_offsets_[task]; e < task_offsets_[task + 1];
         ++e) {
      graph.data_consumers_[cursor[task_inputs_[e]]++] = task;
    }
  }

  graph.total_flops_ =
      std::accumulate(task_flops_.begin(), task_flops_.end(), 0.0);
  graph.working_set_bytes_ = std::accumulate(
      data_sizes_.begin(), data_sizes_.end(), std::uint64_t{0});
  return graph;
}

void TaskGraphBuilder::clear() {
  task_offsets_.assign(1, 0);
  task_inputs_.clear();
  data_sizes_.clear();
  task_flops_.clear();
  task_outputs_.clear();
  task_labels_.clear();
  data_labels_.clear();
}

}  // namespace mg::core
