// Scheduler interface — the pull API a StarPU scheduling policy sees.
//
// Lifecycle, per run:
//   1. prepare(graph, platform, seed)   — static phase (HFP packing, hMETIS
//      partitioning, DMDA push-side allocation...). The engine measures its
//      wall-clock time; the paper's "with / without scheduling time" curves
//      toggle whether it is charged to the simulated makespan.
//   2. pop_task(gpu, memory)            — called whenever a GPU worker has
//      room in its task pipeline. Returning kInvalidTask means "nothing for
//      this GPU right now"; the engine will ask again when global state
//      changes (a task completes or a data lands somewhere).
//   3. notify_* hooks                   — runtime feedback used by dynamic
//      policies (DARTS's dataNotInMem bookkeeping, Ready's residency view).
//
// Schedulers are single-run objects: create a fresh instance per simulation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/eviction.hpp"
#include "core/ids.hpp"
#include "core/memory_view.hpp"
#include "core/platform.hpp"
#include "core/task_graph.hpp"

namespace mg::core {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// One-time static phase. `seed` drives every random choice the policy
  /// makes (tie breaking, stealing order) for reproducibility.
  virtual void prepare(const TaskGraph& graph, const Platform& platform,
                       std::uint64_t seed) = 0;

  /// Next task for `gpu`, or kInvalidTask if none available for it now.
  /// Each task must be returned exactly once across all GPUs.
  [[nodiscard]] virtual TaskId pop_task(GpuId gpu, const MemoryView& memory) = 0;

  // ---- Streaming (serve mode) lifecycle ------------------------------------
  //
  // In a streamed run the task graph is the union of every job that *may*
  // arrive; tasks only become eligible when their job is released. The engine
  // calls begin_streaming() once, before prepare(); a scheduler that returns
  // true must treat every task as unsubmitted until notify_job_arrived hands
  // it over, and must never pop an unsubmitted task. prepare() still receives
  // the full union graph (sizes, consumers) for its data structures — it just
  // may not schedule ahead of arrivals.

  /// Opt into streaming. Return false (the default) and the engine refuses to
  /// stream with this scheduler.
  [[nodiscard]] virtual bool begin_streaming() { return false; }

  /// Job `job` arrived: `tasks` (ascending union-graph ids) are now eligible.
  /// Called between pops, never re-entrantly.
  virtual void notify_job_arrived(std::uint32_t job,
                                  std::span<const TaskId> tasks) {
    (void)job;
    (void)tasks;
  }

  // ---- Dependencies (DAG workloads) lifecycle ------------------------------
  //
  // When the task graph carries dependency edges (TaskGraph::
  // has_dependencies), tasks only become runnable when every predecessor has
  // retired. The engine calls begin_dependencies() once, before prepare(); a
  // scheduler that returns true must treat every task with unretired
  // predecessors as not-yet-poppable, and adopt the ready frontier
  // incrementally through notify_task_retired. The engine enforces the gate
  // (popping a non-enabled task is an engine error), so a conservative
  // scheduler may simply hold tasks back until they are announced enabled.

  /// Opt into dependency gating. Return false (the default) and the engine
  /// refuses to run a DAG workload with this scheduler.
  [[nodiscard]] virtual bool begin_dependencies() { return false; }

  /// `task` retired (all its effects durable); `enabled_successors` lists the
  /// tasks whose last unretired predecessor it was (ascending) — they are now
  /// runnable. In a streamed run a successor is announced only when its job
  /// has also arrived. Called between pops, never re-entrantly.
  virtual void notify_task_retired(TaskId task,
                                   std::span<const TaskId> enabled_successors) {
    (void)task;
    (void)enabled_successors;
  }

  /// Dispatch priority of `job` (serve::JobSpec::priority — higher first).
  /// Announced by the serving engine once per job, before any arrival, so a
  /// scheduler can order its pops by it. Default: ignore (FIFO dispatch).
  virtual void notify_job_priority(std::uint32_t job, std::uint32_t priority) {
    (void)job;
    (void)priority;
  }

  /// Every task of job `job` completed; purely informational (queue pruning,
  /// per-job accounting).
  virtual void notify_job_retired(std::uint32_t job) { (void)job; }

  virtual void notify_task_complete(GpuId gpu, TaskId task) {
    (void)gpu;
    (void)task;
  }

  /// Occupancy-aware GPU sharing: the warp load of `gpu` changed (a task was
  /// admitted onto or finished on it). `active_warps` is the load after the
  /// change and `free_warps` the remaining budget under the admission
  /// threshold, so a packing-aware scheduler can prefer small tasks for
  /// partially-busy GPUs. Only invoked while sharing is enabled
  /// (EngineConfig::occupancy_threshold > 0); exclusive runs never see it.
  virtual void notify_occupancy(GpuId gpu, std::uint32_t active_warps,
                                std::uint32_t free_warps) {
    (void)gpu;
    (void)active_warps;
    (void)free_warps;
  }
  virtual void notify_data_loaded(GpuId gpu, DataId data) {
    (void)gpu;
    (void)data;
  }
  virtual void notify_data_evicted(GpuId gpu, DataId data) {
    (void)gpu;
    (void)data;
  }

  /// Fault injection: `gpu` died permanently. `orphaned` lists the tasks
  /// the engine reclaimed from its pipeline (popped but never finished, in
  /// pop order); each must eventually run on a surviving GPU. pop_task is
  /// never called for `gpu` again. Return true to take ownership of the
  /// orphans (they must be re-returned from pop_task, e.g. after re-planning
  /// or stealing-style redistribution); return false and the engine requeues
  /// them itself, serving them to survivors ahead of further pops. Default:
  /// decline.
  [[nodiscard]] virtual bool notify_gpu_lost(GpuId gpu,
                                             std::span<const TaskId> orphaned) {
    (void)gpu;
    (void)orphaned;
    return false;
  }

  // ---- Planned topology change (elastic autoscaling) -----------------------
  //
  // On a multi-node platform the engine can retire whole nodes while serving
  // (graceful drain) and bring nodes in (join after warm-up). These hooks
  // extend the notify_gpu_lost family to node granularity; single-node runs
  // never see them.

  /// Node `node` (its GPUs listed in `gpus`) stops serving: a planned drain
  /// fence just pulled its popped-but-unstarted tasks back as `orphaned`
  /// (pop order per GPU), and pop_task will not be called for these GPUs
  /// until a later notify_node_added. Unlike a GPU loss the devices are
  /// intact — running tasks finish and nothing re-runs. Also announced once
  /// at run start (empty `orphaned`) for nodes that begin outside the
  /// serving set (EngineConfig::initial_active_nodes). Return true to adopt
  /// the orphans (re-return them from pop_task on serving GPUs); false and
  /// the engine requeues them itself. Default: decline.
  [[nodiscard]] virtual bool notify_node_draining(
      NodeId node, std::span<const GpuId> gpus,
      std::span<const TaskId> orphaned) {
    (void)node;
    (void)gpus;
    (void)orphaned;
    return false;
  }

  /// Node `node` joined the serving set (fresh capacity, or a drained node
  /// returning): its GPUs accept pop_task calls again, starting empty.
  virtual void notify_node_added(NodeId node, std::span<const GpuId> gpus) {
    (void)node;
    (void)gpus;
  }

  /// Unplanned whole-node loss: every GPU of `node` died at once and
  /// `orphaned` aggregates the tasks reclaimed from all of them. Return true
  /// to adopt the orphans (as for notify_gpu_lost). The default degrades
  /// gracefully for loss-aware schedulers by forwarding one notify_gpu_lost
  /// per dead GPU, handing the full orphan list to the first.
  [[nodiscard]] virtual bool notify_node_lost(NodeId node,
                                              std::span<const GpuId> gpus,
                                              std::span<const TaskId> orphaned) {
    (void)node;
    // Only the first forward carries the orphans, so only its answer decides
    // who owns them — mixing answers in would let the engine and the
    // scheduler both serve the same task.
    bool adopted = false;
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      const std::span<const TaskId> part =
          i == 0 ? orphaned : std::span<const TaskId>{};
      const bool answer = notify_gpu_lost(gpus[i], part);
      if (i == 0) adopted = answer;
    }
    return adopted;
  }

  /// Suspicion-based failure detection (network faults): remote fetches from
  /// `node` timed out past the detector threshold, so the node is *suspected*
  /// — possibly partitioned, possibly lost. Unlike notify_node_lost nothing
  /// destructive happened: the node's GPUs keep serving their own queues, but
  /// placement should steer away (stop stealing from it, raise its distance)
  /// until notify_node_suspicion_cleared re-integrates it, or the engine
  /// escalates to the notify_node_lost path. Default: ignore.
  virtual void notify_node_suspected(NodeId node) { (void)node; }

  /// A delivery from `node` landed (the partition healed or the timeouts
  /// were transient): placement may treat it as healthy again.
  virtual void notify_node_suspicion_cleared(NodeId node) { (void)node; }

  /// Replay divergence report. A scheduler replaying a recorded order that
  /// rewired work after losing `gpu` (see notify_gpu_lost) describes the
  /// break here: at which index of the dead GPU's recorded order the replay
  /// diverged, and how many recorded-suffix tasks were reassigned to
  /// survivors. Queried by the engine right after notify_gpu_lost; schedulers
  /// that do not replay recorded orders keep the default (no divergence).
  struct ReplayDivergence {
    std::uint32_t divergence_index = 0;  ///< first unexecuted recorded slot
    std::uint32_t reassigned_tasks = 0;  ///< suffix tasks moved to survivors
  };
  [[nodiscard]] virtual std::optional<ReplayDivergence> replay_divergence(
      GpuId gpu) {
    (void)gpu;
    return std::nullopt;
  }

  /// Ordered push-time prefetch hints for `gpu` (StarPU's Algorithm 1 lines
  /// 7-9: "Request data prefetch for D_j on GPU_k"). Queried once after
  /// prepare(); the runtime issues them as *low-priority* transfers whenever
  /// the GPU has free memory, never evicting for them. Default: none.
  [[nodiscard]] virtual std::vector<DataId> prefetch_hints(GpuId gpu) {
    (void)gpu;
    return {};
  }

  /// Custom eviction policy for `gpu`, or nullptr to use the engine default
  /// (LRU, as for all schedulers in the paper except DARTS+LUF). The pointer
  /// must stay valid for the scheduler's lifetime.
  [[nodiscard]] virtual EvictionPolicy* eviction_policy(GpuId gpu) {
    (void)gpu;
    return nullptr;
  }
};

}  // namespace mg::core
