// Read-only view of one GPU's memory state, handed to schedulers when they
// are asked for a task. This is the scheduler-visible subset of what StarPU
// exposes (starpu_data_is_on_node & friends): residency and occupancy, but no
// ability to mutate — all loads/evictions are decided by the runtime engine
// and its eviction policy.
#pragma once

#include <cstdint>

#include "core/ids.hpp"

namespace mg::core {

class MemoryView {
 public:
  virtual ~MemoryView() = default;

  /// Data is fully resident (a task could start on it right now).
  [[nodiscard]] virtual bool is_present(DataId data) const = 0;

  /// Data is resident or its transfer is already in flight: using it costs no
  /// *additional* load. This is the notion of "already loaded" that the
  /// Ready heuristic and DARTS free-task counting use.
  [[nodiscard]] virtual bool is_present_or_fetching(DataId data) const = 0;

  [[nodiscard]] virtual std::uint64_t capacity_bytes() const = 0;
  [[nodiscard]] virtual std::uint64_t used_bytes() const = 0;

  [[nodiscard]] std::uint64_t free_bytes() const {
    return capacity_bytes() - used_bytes();
  }
};

}  // namespace mg::core
