// Bipartite task/data graph of Section III of the paper.
//
// Tasks T = {T_1..T_m} and data D = {D_1..D_n}; an edge (T_i, D_j) means T_i
// reads D_j. In the paper's base model tasks are independent (no task-task
// dependencies) and data are read-only inputs; outputs are excluded.
//
// Dependencies (first-class DAG workloads) restore what the paper flattened:
// a graph may additionally carry task->task edges, either declared explicitly
// (TaskGraphBuilder::add_dependency) or derived from read/write footprints
// (set_task_writes): in task-submission order, a write to D creates a new
// version of D, so a later reader depends on the last writer (RAW), a writer
// depends on every reader of the previous version (WAR) and on the previous
// writer (WAW). A task that both reads and writes D reads the *previous*
// version (no self-edge). Derived edges therefore always point forward in
// submission order; explicit edges may not create cycles (checked at build).
//
// Storage is CSR in both directions (task -> inputs, data -> consumers, and
// for dependencies predecessors/successors) so every scheduler query is a
// contiguous span scan. A graph without dependencies carries none of the
// dependency arrays — the independent-task fast paths stay untouched. The
// graph is immutable after TaskGraphBuilder::build().
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/ids.hpp"

namespace mg::core {

/// Kind of a dependency edge, as a bitmask: one deduplicated edge between a
/// (pred, succ) pair carries the union of every reason it exists.
enum DepKind : std::uint8_t {
  kDepExplicit = 1u << 0,  ///< declared via add_dependency
  kDepRaw = 1u << 1,       ///< read-after-write (true dependency)
  kDepWar = 1u << 2,       ///< write-after-read (anti dependency)
  kDepWaw = 1u << 3,       ///< write-after-write (output dependency)
};

/// Per-kind dependency edge counts. An edge carrying several kind bits
/// counts once per bit; `total` counts deduplicated edges.
struct DepEdgeCounts {
  std::uint64_t total = 0;
  std::uint64_t explicit_edges = 0;
  std::uint64_t raw = 0;
  std::uint64_t war = 0;
  std::uint64_t waw = 0;
};

class TaskGraph {
 public:
  [[nodiscard]] std::uint32_t num_tasks() const {
    return static_cast<std::uint32_t>(task_offsets_.size() - 1);
  }
  [[nodiscard]] std::uint32_t num_data() const {
    return static_cast<std::uint32_t>(data_offsets_.size() - 1);
  }

  /// Input data of a task, i.e. D(T_i) in the paper.
  [[nodiscard]] std::span<const DataId> inputs(TaskId task) const {
    return {task_inputs_.data() + task_offsets_[task],
            task_offsets_[task + 1] - task_offsets_[task]};
  }

  /// Tasks consuming a data item.
  [[nodiscard]] std::span<const TaskId> consumers(DataId data) const {
    return {data_consumers_.data() + data_offsets_[data],
            data_offsets_[data + 1] - data_offsets_[data]};
  }

  [[nodiscard]] std::uint64_t data_size(DataId data) const {
    return data_sizes_[data];
  }
  [[nodiscard]] double task_flops(TaskId task) const {
    return task_flops_[task];
  }

  /// Bytes of output the task produces (0 = outputs not modeled, the
  /// paper's default). Outputs are task-private scratch: they occupy GPU
  /// memory from task start until their write-back to the host completes.
  [[nodiscard]] std::uint64_t task_output_bytes(TaskId task) const {
    return task_outputs_.empty() ? 0 : task_outputs_[task];
  }

  /// True if any task declares output bytes.
  [[nodiscard]] bool has_outputs() const { return !task_outputs_.empty(); }

  /// Warp footprint of a task — the resident warps its kernel occupies while
  /// running (occupancy-aware GPU sharing). 0 = unspecified: the task claims
  /// the whole device, which is exactly the paper's exclusive-ownership
  /// model.
  [[nodiscard]] std::uint32_t task_warps(TaskId task) const {
    return task_warps_.empty() ? 0 : task_warps_[task];
  }

  /// True if any task declares a warp footprint.
  [[nodiscard]] bool has_warps() const { return !task_warps_.empty(); }

  /// Total bytes of the inputs of `task` (duplicates impossible: builder
  /// rejects repeated inputs).
  [[nodiscard]] std::uint64_t input_bytes(TaskId task) const;

  /// Sum of all task flops; the numerator of achieved GFlop/s.
  [[nodiscard]] double total_flops() const { return total_flops_; }

  /// Sum of all data sizes — the paper's "working set" (x axis of every
  /// figure).
  [[nodiscard]] std::uint64_t working_set_bytes() const {
    return working_set_bytes_;
  }

  /// Largest single-task footprint (inputs + output scratch); must fit in
  /// GPU memory for any schedule to exist.
  [[nodiscard]] std::uint64_t max_task_footprint() const;

  /// Optional human-readable label (kernel name, tile coordinates).
  [[nodiscard]] const std::string& task_label(TaskId task) const;
  [[nodiscard]] const std::string& data_label(DataId data) const;

  // ---- Dependencies (empty on independent-task graphs) --------------------

  /// True if the graph carries any task->task dependency edge.
  [[nodiscard]] bool has_dependencies() const { return !dep_succ_.empty(); }

  /// Tasks that must retire before `task` may start, ascending.
  [[nodiscard]] std::span<const TaskId> predecessors(TaskId task) const {
    if (dep_pred_offsets_.empty()) return {};
    return {dep_pred_.data() + dep_pred_offsets_[task],
            dep_pred_offsets_[task + 1] - dep_pred_offsets_[task]};
  }

  /// Tasks unblocked (in part) by `task` retiring, ascending.
  [[nodiscard]] std::span<const TaskId> successors(TaskId task) const {
    if (dep_succ_offsets_.empty()) return {};
    return {dep_succ_.data() + dep_succ_offsets_[task],
            dep_succ_offsets_[task + 1] - dep_succ_offsets_[task]};
  }

  /// Kind bitmasks parallel to predecessors(task) / successors(task).
  [[nodiscard]] std::span<const std::uint8_t> predecessor_kinds(
      TaskId task) const {
    if (dep_pred_offsets_.empty()) return {};
    return {dep_pred_kinds_.data() + dep_pred_offsets_[task],
            dep_pred_offsets_[task + 1] - dep_pred_offsets_[task]};
  }
  [[nodiscard]] std::span<const std::uint8_t> successor_kinds(
      TaskId task) const {
    if (dep_succ_offsets_.empty()) return {};
    return {dep_succ_kinds_.data() + dep_succ_offsets_[task],
            dep_succ_offsets_[task + 1] - dep_succ_offsets_[task]};
  }

  [[nodiscard]] std::uint32_t num_predecessors(TaskId task) const {
    if (dep_pred_offsets_.empty()) return 0;
    return dep_pred_offsets_[task + 1] - dep_pred_offsets_[task];
  }

  /// Deduplicated edge counts, split by kind bit.
  [[nodiscard]] const DepEdgeCounts& dependency_edge_counts() const {
    return dep_counts_;
  }

  /// Longest chain of dependent tasks, counted in tasks (0 without edges).
  [[nodiscard]] std::uint32_t critical_path_length() const {
    return critical_path_length_;
  }

  /// Data items `task` writes (a new version each), ascending; empty when the
  /// task writes nothing. Writes model ordering only — the simulated transfer
  /// traffic still follows the read footprints and task_output_bytes.
  [[nodiscard]] std::span<const DataId> writes(TaskId task) const {
    if (write_offsets_.empty()) return {};
    return {task_writes_.data() + write_offsets_[task],
            write_offsets_[task + 1] - write_offsets_[task]};
  }

  /// Tasks writing `data`, in version order (ascending task id).
  [[nodiscard]] std::span<const TaskId> writers(DataId data) const {
    if (writer_offsets_.empty()) return {};
    return {data_writers_.data() + writer_offsets_[data],
            writer_offsets_[data + 1] - writer_offsets_[data]};
  }

  [[nodiscard]] bool has_writes() const { return !task_writes_.empty(); }

 private:
  friend class TaskGraphBuilder;

  std::vector<std::uint32_t> task_offsets_;   // size m+1
  std::vector<DataId> task_inputs_;           // CSR task -> data
  std::vector<std::uint32_t> data_offsets_;   // size n+1
  std::vector<TaskId> data_consumers_;        // CSR data -> task
  std::vector<std::uint64_t> data_sizes_;     // bytes
  std::vector<double> task_flops_;
  std::vector<std::uint64_t> task_outputs_;   // empty when no outputs
  std::vector<std::uint32_t> task_warps_;     // empty when no warp footprints
  std::vector<std::string> task_labels_;      // may be empty (no labels)
  std::vector<std::string> data_labels_;
  double total_flops_ = 0.0;
  std::uint64_t working_set_bytes_ = 0;

  // Dependency CSRs — all empty on an independent-task graph.
  std::vector<std::uint32_t> dep_succ_offsets_;  // size m+1 when edges exist
  std::vector<TaskId> dep_succ_;                 // CSR pred -> succ
  std::vector<std::uint8_t> dep_succ_kinds_;     // parallel kind bitmasks
  std::vector<std::uint32_t> dep_pred_offsets_;  // size m+1 when edges exist
  std::vector<TaskId> dep_pred_;                 // CSR succ -> pred
  std::vector<std::uint8_t> dep_pred_kinds_;
  std::vector<std::uint32_t> write_offsets_;     // size m+1 when writes exist
  std::vector<DataId> task_writes_;              // CSR task -> written data
  std::vector<std::uint32_t> writer_offsets_;    // size n+1 when writes exist
  std::vector<TaskId> data_writers_;             // CSR data -> writer tasks
  DepEdgeCounts dep_counts_;
  std::uint32_t critical_path_length_ = 0;
};

class TaskGraphBuilder {
 public:
  /// Registers a data item of `size_bytes`; returns its id (dense, 0-based).
  DataId add_data(std::uint64_t size_bytes, std::string label = "");

  /// Registers a task reading `inputs` (all previously added, no duplicates).
  TaskId add_task(double flops, std::span<const DataId> inputs,
                  std::string label = "");
  TaskId add_task(double flops, std::initializer_list<DataId> inputs,
                  std::string label = "");

  /// Declares that the most recently added task writes `bytes` of output
  /// (held in GPU memory from start until write-back completes).
  void set_task_output(TaskId task, std::uint64_t bytes);

  /// Declares the task's warp footprint for occupancy-aware GPU sharing.
  /// 0 (the default for every task) means "whole device" — exclusive
  /// ownership, the paper's model.
  void set_task_warps(TaskId task, std::uint32_t warps);

  /// Declares an explicit dependency: `succ` may not start before `pred`
  /// retires. Both tasks must already be added; self-edges are rejected and
  /// the final edge set must be acyclic (checked at build).
  void add_dependency(TaskId pred, TaskId succ);

  /// Declares that `task` writes `data`, producing a new version. RAW/WAR/WAW
  /// edges are derived at build() in task-submission order; a task reading
  /// and writing the same data reads the previous version (no self-edge).
  void set_task_writes(TaskId task, DataId data);

  [[nodiscard]] std::uint32_t num_tasks() const {
    return static_cast<std::uint32_t>(task_flops_.size());
  }
  [[nodiscard]] std::uint32_t num_data() const {
    return static_cast<std::uint32_t>(data_sizes_.size());
  }

  /// Finalizes the CSR structure. The builder can be reused afterwards only
  /// after clear().
  [[nodiscard]] TaskGraph build() const;

  void clear();

 private:
  void build_dependencies(TaskGraph& graph) const;

  std::vector<std::uint32_t> task_offsets_{0};
  std::vector<DataId> task_inputs_;
  std::vector<std::uint64_t> data_sizes_;
  std::vector<double> task_flops_;
  std::vector<std::uint64_t> task_outputs_;
  std::vector<std::uint32_t> task_warps_;
  std::vector<std::string> task_labels_;
  std::vector<std::string> data_labels_;
  std::vector<std::pair<TaskId, TaskId>> explicit_edges_;
  std::vector<std::pair<TaskId, DataId>> task_write_list_;  // submission order
};

}  // namespace mg::core
