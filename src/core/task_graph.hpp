// Bipartite task/data graph of Section III of the paper.
//
// Tasks T = {T_1..T_m} and data D = {D_1..D_n}; an edge (T_i, D_j) means T_i
// reads D_j. Tasks are independent (no task-task dependencies) and data are
// read-only inputs; outputs are excluded from the model, as in the paper.
//
// Storage is CSR in both directions (task -> inputs, data -> consumers) so
// every scheduler query is a contiguous span scan. The graph is immutable
// after TaskGraphBuilder::build().
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/ids.hpp"

namespace mg::core {

class TaskGraph {
 public:
  [[nodiscard]] std::uint32_t num_tasks() const {
    return static_cast<std::uint32_t>(task_offsets_.size() - 1);
  }
  [[nodiscard]] std::uint32_t num_data() const {
    return static_cast<std::uint32_t>(data_offsets_.size() - 1);
  }

  /// Input data of a task, i.e. D(T_i) in the paper.
  [[nodiscard]] std::span<const DataId> inputs(TaskId task) const {
    return {task_inputs_.data() + task_offsets_[task],
            task_offsets_[task + 1] - task_offsets_[task]};
  }

  /// Tasks consuming a data item.
  [[nodiscard]] std::span<const TaskId> consumers(DataId data) const {
    return {data_consumers_.data() + data_offsets_[data],
            data_offsets_[data + 1] - data_offsets_[data]};
  }

  [[nodiscard]] std::uint64_t data_size(DataId data) const {
    return data_sizes_[data];
  }
  [[nodiscard]] double task_flops(TaskId task) const {
    return task_flops_[task];
  }

  /// Bytes of output the task produces (0 = outputs not modeled, the
  /// paper's default). Outputs are task-private scratch: they occupy GPU
  /// memory from task start until their write-back to the host completes.
  [[nodiscard]] std::uint64_t task_output_bytes(TaskId task) const {
    return task_outputs_.empty() ? 0 : task_outputs_[task];
  }

  /// True if any task declares output bytes.
  [[nodiscard]] bool has_outputs() const { return !task_outputs_.empty(); }

  /// Total bytes of the inputs of `task` (duplicates impossible: builder
  /// rejects repeated inputs).
  [[nodiscard]] std::uint64_t input_bytes(TaskId task) const;

  /// Sum of all task flops; the numerator of achieved GFlop/s.
  [[nodiscard]] double total_flops() const { return total_flops_; }

  /// Sum of all data sizes — the paper's "working set" (x axis of every
  /// figure).
  [[nodiscard]] std::uint64_t working_set_bytes() const {
    return working_set_bytes_;
  }

  /// Largest single-task footprint (inputs + output scratch); must fit in
  /// GPU memory for any schedule to exist.
  [[nodiscard]] std::uint64_t max_task_footprint() const;

  /// Optional human-readable label (kernel name, tile coordinates).
  [[nodiscard]] const std::string& task_label(TaskId task) const;
  [[nodiscard]] const std::string& data_label(DataId data) const;

 private:
  friend class TaskGraphBuilder;

  std::vector<std::uint32_t> task_offsets_;   // size m+1
  std::vector<DataId> task_inputs_;           // CSR task -> data
  std::vector<std::uint32_t> data_offsets_;   // size n+1
  std::vector<TaskId> data_consumers_;        // CSR data -> task
  std::vector<std::uint64_t> data_sizes_;     // bytes
  std::vector<double> task_flops_;
  std::vector<std::uint64_t> task_outputs_;   // empty when no outputs
  std::vector<std::string> task_labels_;      // may be empty (no labels)
  std::vector<std::string> data_labels_;
  double total_flops_ = 0.0;
  std::uint64_t working_set_bytes_ = 0;
};

class TaskGraphBuilder {
 public:
  /// Registers a data item of `size_bytes`; returns its id (dense, 0-based).
  DataId add_data(std::uint64_t size_bytes, std::string label = "");

  /// Registers a task reading `inputs` (all previously added, no duplicates).
  TaskId add_task(double flops, std::span<const DataId> inputs,
                  std::string label = "");
  TaskId add_task(double flops, std::initializer_list<DataId> inputs,
                  std::string label = "");

  /// Declares that the most recently added task writes `bytes` of output
  /// (held in GPU memory from start until write-back completes).
  void set_task_output(TaskId task, std::uint64_t bytes);

  [[nodiscard]] std::uint32_t num_tasks() const {
    return static_cast<std::uint32_t>(task_flops_.size());
  }
  [[nodiscard]] std::uint32_t num_data() const {
    return static_cast<std::uint32_t>(data_sizes_.size());
  }

  /// Finalizes the CSR structure. The builder can be reused afterwards only
  /// after clear().
  [[nodiscard]] TaskGraph build() const;

  void clear();

 private:
  std::vector<std::uint32_t> task_offsets_{0};
  std::vector<DataId> task_inputs_;
  std::vector<std::uint64_t> data_sizes_;
  std::vector<double> task_flops_;
  std::vector<std::uint64_t> task_outputs_;
  std::vector<std::string> task_labels_;
  std::vector<std::string> data_labels_;
};

}  // namespace mg::core
