// Occupancy governor — the admission-control half of GPU sharing.
//
// CASE/BEMPS-style occupancy scheduling: each GPU has a warp budget
// (Platform::total_warps, SMs x resident warps per SM) and a task is
// admitted onto a GPU only while
//
//     active_warps + task_warps < threshold * total_warps
//
// holds. A task with no declared footprint (task_warps == 0) claims the
// whole device — the paper's exclusive-ownership model — so mixed graphs
// degrade gracefully. An idle GPU always admits its first task regardless
// of footprint: forward progress must never depend on the threshold.
//
// The governor owns per-GPU warp accounting and the occupancy statistics
// the schema-v8 run-report section publishes (peak and time-weighted mean
// occupancy, co-run pairs, admission rejections). The contention slowdown
// applied to co-running kernels lives in sim::RuntimeEngine — the governor
// decides *whether* a kernel may start, the engine decides *how fast* the
// sharing set runs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.hpp"

namespace mg::occupancy {

class OccupancyGovernor {
 public:
  /// `threshold` > 0 (0 would be exclusive mode — callers gate on that
  /// before constructing a governor). Values at or below 1.0 forbid warp
  /// oversubscription entirely; above 1.0 co-running kernels may exceed the
  /// device budget and pay the engine's contention slowdown.
  OccupancyGovernor(std::uint32_t num_gpus, std::uint32_t total_warps,
                    double threshold);

  /// A task footprint as the governor accounts it: 0 (unspecified) claims
  /// the whole device, anything larger is clamped to the device budget.
  [[nodiscard]] std::uint32_t clamp_warps(std::uint32_t task_warps) const;

  /// Admits `task_warps` (pre-clamp footprint) onto `gpu` when the
  /// threshold holds — or unconditionally when the GPU is idle. On success
  /// the warp load and co-run statistics update; on failure the rejection
  /// is counted. `now_us` timestamps the time-weighted occupancy integral.
  [[nodiscard]] bool try_admit(core::GpuId gpu, std::uint32_t task_warps,
                               double now_us);

  /// Releases a previously admitted footprint (task finished).
  void release(core::GpuId gpu, std::uint32_t task_warps, double now_us);

  /// Drops every admission on `gpu` (GPU/node loss — the running set died).
  void reset_gpu(core::GpuId gpu, double now_us);

  [[nodiscard]] std::uint32_t active_warps(core::GpuId gpu) const {
    return gpus_[gpu].active_warps;
  }
  [[nodiscard]] std::uint32_t running_tasks(core::GpuId gpu) const {
    return gpus_[gpu].running_tasks;
  }

  /// Remaining admissible warps under the threshold (saturating at 0).
  [[nodiscard]] std::uint32_t free_warps(core::GpuId gpu) const;

  /// The admission ceiling in warps: largest load the threshold admits.
  [[nodiscard]] std::uint32_t budget_warps() const { return budget_warps_; }
  [[nodiscard]] std::uint32_t total_warps() const { return total_warps_; }
  [[nodiscard]] double threshold() const { return threshold_; }

  // ---- Run statistics (schema-v8 `occupancy` report section) ---------------

  struct GpuStats {
    std::uint32_t peak_warps = 0;     ///< high-water active-warp mark
    double mean_occupancy = 0.0;      ///< time-weighted active/total in [0,..]
  };
  struct Stats {
    std::vector<GpuStats> per_gpu;
    std::uint64_t co_run_pairs = 0;   ///< concurrent (running, admitted) pairs
    std::uint64_t admissions = 0;
    std::uint64_t rejections = 0;
  };

  /// Closes the occupancy integrals at `makespan_us` and returns the run's
  /// statistics. Call once, after the simulation ends.
  [[nodiscard]] Stats finalize(double makespan_us);

 private:
  struct GpuLoad {
    std::uint32_t active_warps = 0;
    std::uint32_t running_tasks = 0;
    std::uint32_t peak_warps = 0;
    double occupancy_integral = 0.0;  ///< sum of active_warps * dt
    double last_change_us = 0.0;
  };

  void accrue(GpuLoad& gpu, double now_us);

  std::uint32_t total_warps_;
  std::uint32_t budget_warps_;
  double threshold_;
  std::vector<GpuLoad> gpus_;
  std::uint64_t co_run_pairs_ = 0;
  std::uint64_t admissions_ = 0;
  std::uint64_t rejections_ = 0;
};

}  // namespace mg::occupancy
