// BEMPS-style GPU occupancy tables: streaming-multiprocessor counts and
// resident warps per SM for the devices the co-scheduling literature
// benchmarks against. core::Platform defaults to the V100 entry (the
// paper's testbed); the table exists so configs can switch the warp budget
// to another device by name without hand-copying datasheet numbers.
#pragma once

#include <cstdint>
#include <string_view>

namespace mg::occupancy {

struct GpuSpec {
  std::string_view name;
  std::uint32_t sm_count = 0;
  std::uint32_t warps_per_sm = 0;

  [[nodiscard]] constexpr std::uint32_t total_warps() const {
    return sm_count * warps_per_sm;
  }
};

/// Known devices, V100 first (the default). Warps-per-SM is the maximum
/// resident-warp occupancy of the architecture, not the issue width.
inline constexpr GpuSpec kGpuSpecs[] = {
    {"v100", 80, 64},   // Volta: the paper's testbed — 5120 warps
    {"a100", 108, 64},  // Ampere datacenter
    {"p100", 56, 64},   // Pascal
    {"k80", 13, 64},    // Kepler (one GK210 die)
    {"rtx3090", 82, 48},  // Ampere consumer: 48 resident warps/SM
};

/// Case-sensitive lookup; nullptr when the device is unknown.
[[nodiscard]] constexpr const GpuSpec* find_gpu_spec(std::string_view name) {
  for (const GpuSpec& spec : kGpuSpecs) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace mg::occupancy
