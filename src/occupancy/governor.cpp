#include "occupancy/governor.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mg::occupancy {

OccupancyGovernor::OccupancyGovernor(std::uint32_t num_gpus,
                                     std::uint32_t total_warps,
                                     double threshold)
    : total_warps_(total_warps), threshold_(threshold) {
  MG_CHECK_MSG(num_gpus > 0, "occupancy governor needs at least one GPU");
  MG_CHECK_MSG(total_warps > 0, "GPU warp budget must be positive");
  MG_CHECK_MSG(threshold > 0.0, "occupancy threshold must be positive");
  // The admission rule is strict — active + new < threshold * total — so the
  // budget (the largest admissible load, what free_warps counts down from)
  // sits one warp below an integral limit.
  const double limit = threshold * static_cast<double>(total_warps);
  double floor = std::floor(limit);
  if (floor == limit) floor -= 1.0;
  budget_warps_ = static_cast<std::uint32_t>(std::max(floor, 0.0));
  gpus_.assign(num_gpus, GpuLoad{});
}

std::uint32_t OccupancyGovernor::clamp_warps(std::uint32_t task_warps) const {
  if (task_warps == 0) return total_warps_;  // unspecified = whole device
  return std::min(task_warps, total_warps_);
}

void OccupancyGovernor::accrue(GpuLoad& gpu, double now_us) {
  if (now_us > gpu.last_change_us) {
    gpu.occupancy_integral += static_cast<double>(gpu.active_warps) *
                              (now_us - gpu.last_change_us);
    gpu.last_change_us = now_us;
  }
}

bool OccupancyGovernor::try_admit(core::GpuId gpu, std::uint32_t task_warps,
                                  double now_us) {
  GpuLoad& load = gpus_[gpu];
  const std::uint32_t warps = clamp_warps(task_warps);
  // An idle GPU always admits: forward progress (a whole-device task, or a
  // threshold below any single footprint) must not depend on the knob.
  if (load.running_tasks != 0 &&
      static_cast<double>(load.active_warps) + static_cast<double>(warps) >=
          threshold_ * static_cast<double>(total_warps_)) {
    ++rejections_;
    return false;
  }
  accrue(load, now_us);
  co_run_pairs_ += load.running_tasks;  // one new pair per co-runner
  load.active_warps += warps;
  ++load.running_tasks;
  load.peak_warps = std::max(load.peak_warps, load.active_warps);
  ++admissions_;
  return true;
}

void OccupancyGovernor::release(core::GpuId gpu, std::uint32_t task_warps,
                                double now_us) {
  GpuLoad& load = gpus_[gpu];
  const std::uint32_t warps = clamp_warps(task_warps);
  MG_DCHECK(load.running_tasks > 0);
  MG_DCHECK(load.active_warps >= warps);
  accrue(load, now_us);
  load.active_warps -= warps;
  --load.running_tasks;
}

void OccupancyGovernor::reset_gpu(core::GpuId gpu, double now_us) {
  GpuLoad& load = gpus_[gpu];
  accrue(load, now_us);
  load.active_warps = 0;
  load.running_tasks = 0;
}

std::uint32_t OccupancyGovernor::free_warps(core::GpuId gpu) const {
  const std::uint32_t active = gpus_[gpu].active_warps;
  return active >= budget_warps_ ? 0 : budget_warps_ - active;
}

OccupancyGovernor::Stats OccupancyGovernor::finalize(double makespan_us) {
  Stats stats;
  stats.per_gpu.reserve(gpus_.size());
  for (GpuLoad& load : gpus_) {
    accrue(load, makespan_us);
    GpuStats gpu;
    gpu.peak_warps = load.peak_warps;
    gpu.mean_occupancy =
        makespan_us > 0.0
            ? load.occupancy_integral /
                  (makespan_us * static_cast<double>(total_warps_))
            : 0.0;
    stats.per_gpu.push_back(gpu);
  }
  stats.co_run_pairs = co_run_pairs_;
  stats.admissions = admissions_;
  stats.rejections = rejections_;
  return stats;
}

}  // namespace mg::occupancy
