// SLO tiers — maps JobSpec::priority onto service tiers.
//
// A tier bundles the serving policy knobs that differentiate one class of
// traffic from another: a default latency deadline (applied to jobs that
// did not declare their own), an admission weight (added to the job's
// priority when the admission queue orders waiting jobs, so a whole tier
// can outrank another even when individual priorities interleave) and —
// via SloConfig::protect_min_priority — eviction protection for the input
// data of in-flight high-tier jobs.
//
// The policy is a sorted list of {min_priority, ...} entries; a job lands
// in the highest tier whose min_priority does not exceed its priority.
// Tier indices are therefore ordered: tier 0 is the lowest class.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace mg::slo {

struct TierSpec {
  /// Smallest JobSpec::priority that lands in this tier.
  std::uint32_t min_priority = 0;

  /// Default latency SLO for jobs of this tier that declare none
  /// (JobSpec::deadline_us == 0); 0 = no tier deadline either.
  double deadline_us = 0.0;

  /// Added to the job's priority when the admission queue orders waiting
  /// jobs (and when it is announced to priority-aware schedulers).
  std::uint32_t admission_weight = 0;
};

class TierPolicy {
 public:
  /// Single catch-all tier: every priority maps to tier 0, no deadline,
  /// no weight.
  TierPolicy() : tiers_{TierSpec{}} {}

  /// Tiers sorted by ascending min_priority; the first entry must cover
  /// priority 0 so every job has a tier.
  explicit TierPolicy(std::vector<TierSpec> tiers) : tiers_(std::move(tiers)) {
    MG_CHECK_MSG(!tiers_.empty(), "TierPolicy needs at least one tier");
    MG_CHECK_MSG(tiers_.front().min_priority == 0,
                 "lowest tier must cover priority 0");
    for (std::size_t i = 1; i < tiers_.size(); ++i) {
      MG_CHECK_MSG(tiers_[i - 1].min_priority < tiers_[i].min_priority,
                   "tiers must be sorted by ascending min_priority");
    }
  }

  /// `n` evenly spaced tiers: tier t covers priority t (and above for the
  /// last). Weights are 0 — differentiation comes from priority itself.
  [[nodiscard]] static TierPolicy even(std::uint32_t n) {
    MG_CHECK(n > 0);
    std::vector<TierSpec> tiers(n);
    for (std::uint32_t t = 0; t < n; ++t) tiers[t].min_priority = t;
    return TierPolicy(std::move(tiers));
  }

  /// Highest tier whose min_priority <= priority.
  [[nodiscard]] std::uint32_t tier_of(std::uint32_t priority) const {
    std::uint32_t tier = 0;
    while (tier + 1 < tiers_.size() &&
           tiers_[tier + 1].min_priority <= priority) {
      ++tier;
    }
    return tier;
  }

  [[nodiscard]] std::uint32_t num_tiers() const {
    return static_cast<std::uint32_t>(tiers_.size());
  }
  [[nodiscard]] const TierSpec& spec(std::uint32_t tier) const {
    MG_DCHECK(tier < tiers_.size());
    return tiers_[tier];
  }

 private:
  std::vector<TierSpec> tiers_;
};

/// Master configuration of the SLO subsystem, carried by ServeConfig. The
/// default (enabled = false) leaves every serving run byte-identical to a
/// build without src/slo.
struct SloConfig {
  /// Master switch. Off = no tiering, no protection, no batching, and the
  /// run report's `slo` section stays zeroed.
  bool enabled = false;

  /// Priority → tier mapping (deadlines, admission weights).
  TierPolicy tiers;

  /// When > 0, the distinct input data of every in-flight job with
  /// priority >= this value is vetoed from eviction (and replica shedding)
  /// until the job retires. 0 = no protection.
  std::uint32_t protect_min_priority = 0;

  /// Cross-job super-task batching: fuse compatible queued jobs into the
  /// job being admitted (one launch per task pair, shared loads counted
  /// once, per-member outputs and retirements). Requires shared data and a
  /// dependency-free template.
  bool batching = false;

  /// Only jobs that have waited at most this long in the admission queue
  /// are eligible to fuse; 0 = any queue age.
  double fusion_window_us = 0.0;

  /// Max jobs per super-task batch, leader included.
  std::uint32_t max_batch = 4;

  /// Marginal compute cost of each fused rider: the fused leader task runs
  /// for base × (1 + riders × marginal_compute). Below 1.0 models the
  /// batched-kernel efficiency that makes fusion worthwhile.
  double marginal_compute = 0.6;
};

}  // namespace mg::slo
