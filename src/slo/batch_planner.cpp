#include "slo/batch_planner.hpp"

#include "util/check.hpp"

namespace mg::slo {

BatchPlanner::BatchPlanner(const serve::UnionGraph& union_graph,
                           std::span<const serve::JobSpec> jobs,
                           const SloConfig& config, std::uint32_t budget_warps)
    : union_(union_graph),
      jobs_(jobs),
      config_(config),
      budget_warps_(budget_warps) {
  MG_CHECK_MSG(config_.max_batch >= 1, "max_batch counts the leader");
}

BatchPlanner::Plan BatchPlanner::plan(
    std::uint32_t leader, double now_us,
    std::span<const QueuedJob> queue) const {
  Plan plan;
  if (!config_.batching || config_.max_batch <= 1) return plan;
  MG_DCHECK(leader < union_.num_jobs);
  const auto& leader_tasks = union_.job_tasks[leader];

  // Summed warp footprint of the batch so far, per template task slot.
  std::vector<std::uint32_t> fused_warps(leader_tasks.size(), 0);
  for (std::size_t i = 0; i < leader_tasks.size(); ++i) {
    fused_warps[i] = union_.graph.task_warps(leader_tasks[i]);
  }

  for (const QueuedJob& waiting : queue) {
    if (plan.members.size() + 1 >= config_.max_batch) break;
    const std::uint32_t job = waiting.job;
    MG_DCHECK(job < union_.num_jobs);
    if (jobs_[job].graph != jobs_[leader].graph) continue;
    if (config_.fusion_window_us > 0.0 &&
        now_us - waiting.enqueue_us > config_.fusion_window_us) {
      continue;
    }
    const auto& member_tasks = union_.job_tasks[job];
    MG_DCHECK(member_tasks.size() == leader_tasks.size());
    if (budget_warps_ > 0) {
      bool fits = true;
      for (std::size_t i = 0; i < member_tasks.size(); ++i) {
        const std::uint32_t warps = union_.graph.task_warps(member_tasks[i]);
        // A zero footprint claims the whole device; fusing it on top of a
        // bounded batch would blow the budget.
        if (fused_warps[i] + warps > budget_warps_ ||
            (warps == 0 && fused_warps[i] > 0)) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
    }
    for (std::size_t i = 0; i < member_tasks.size(); ++i) {
      fused_warps[i] += union_.graph.task_warps(member_tasks[i]);
    }
    plan.members.push_back(job);
  }
  plan.duration_scale =
      1.0 + static_cast<double>(plan.members.size()) * config_.marginal_compute;
  return plan;
}

}  // namespace mg::slo
