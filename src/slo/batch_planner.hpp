// BatchPlanner — picks the admission-queue jobs to fuse into a super-task.
//
// Called by the ServeEngine at the moment a job (the "leader") is admitted
// with an empty pipeline of its own: the planner scans the still-waiting
// queue for compatible jobs and returns the members to fuse. Compatibility
// means the same template (so, with shared data, the same DataIds — the
// fused launch loads each input once), a queue age within the fusion
// window, and — when the occupancy governor is armed — summed per-task
// warp footprints that still fit under the warp budget.
//
// The planner is pure bookkeeping over the union graph; the engine applies
// the plan (RuntimeEngine::fuse_jobs) and owns the unfuse-on-fault path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/job.hpp"
#include "serve/union_graph.hpp"
#include "slo/tier_policy.hpp"

namespace mg::slo {

class BatchPlanner {
 public:
  /// One still-queued admission candidate.
  struct QueuedJob {
    std::uint32_t job = 0;
    double enqueue_us = 0.0;
  };

  struct Plan {
    /// Queued jobs to fuse into the leader (possibly empty = no batch).
    std::vector<std::uint32_t> members;
    /// Duration multiplier for the leader's fused tasks:
    /// 1 + members × marginal_compute.
    double duration_scale = 1.0;
  };

  /// `budget_warps` is the per-GPU occupancy admission budget (0 = governor
  /// off / no warp constraint on fusion).
  BatchPlanner(const serve::UnionGraph& union_graph,
               std::span<const serve::JobSpec> jobs, const SloConfig& config,
               std::uint32_t budget_warps);

  /// Scans `queue` in order and greedily takes compatible members for
  /// `leader` until max_batch. `now_us` ages entries against the fusion
  /// window.
  [[nodiscard]] Plan plan(std::uint32_t leader, double now_us,
                          std::span<const QueuedJob> queue) const;

 private:
  const serve::UnionGraph& union_;
  std::span<const serve::JobSpec> jobs_;
  const SloConfig& config_;
  std::uint32_t budget_warps_ = 0;
};

}  // namespace mg::slo
