#include "serve/serve_engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mg::serve {

namespace {

AdmissionConfig effective_admission(AdmissionConfig config,
                                    const core::Platform& platform) {
  if (config.max_jobs_in_flight == 0 && config.max_bytes_in_flight == 0) {
    config.max_bytes_in_flight =
        static_cast<std::uint64_t>(platform.num_gpus) *
        platform.gpu_memory_bytes;
  }
  return config;
}

}  // namespace

ServeEngine::ServeEngine(std::span<const core::TaskGraph> templates,
                         std::span<const JobSpec> jobs,
                         const core::Platform& platform,
                         core::Scheduler& scheduler, ServeConfig config)
    : config_(config),
      jobs_(jobs.begin(), jobs.end()),
      union_(build_union_graph(templates, jobs, config.share_data)),
      admission_(effective_admission(config.admission, platform),
                 union_.job_footprint_bytes),
      engine_(union_.graph, platform, scheduler, config.engine) {
  engine_.enable_streaming(union_.task_job, union_.num_jobs);
  // Announce every job's dispatch priority up front — before any arrival —
  // so priority-aware schedulers can order their pops from the first job on.
  for (std::uint32_t job = 0; job < jobs_.size(); ++job) {
    scheduler.notify_job_priority(job, jobs_[job].priority);
  }
  tracker_.bind(union_.task_job, union_.num_jobs);
  engine_.add_inspector(&tracker_);
  engine_.set_job_retired_callback(
      [this](std::uint32_t job) { on_job_retired(job); });
}

void ServeEngine::add_inspector(sim::Inspector* inspector) {
  engine_.add_inspector(inspector);
}

void ServeEngine::set_fault_injector(sim::FaultInjector* injector) {
  engine_.set_fault_injector(injector);
}

ServeResult ServeEngine::run() {
  sim::EventQueue& events = engine_.event_queue();
  const std::uint32_t num_jobs = union_.num_jobs;
  if (config_.arrival.mode == ArrivalMode::kPoisson) {
    const std::vector<double> times = poisson_arrival_times_us(
        num_jobs, config_.arrival.rate_jobs_per_s, config_.arrival.seed);
    for (std::uint32_t job = 0; job < num_jobs; ++job) {
      events.schedule_at(times[job], [this, job] { submit(job); });
    }
    next_job_ = num_jobs;
  } else {
    MG_CHECK_MSG(config_.arrival.concurrency > 0,
                 "closed-loop arrival needs at least one client");
    const std::uint32_t initial =
        std::min(config_.arrival.concurrency, num_jobs);
    next_job_ = initial;
    for (std::uint32_t job = 0; job < initial; ++job) {
      events.schedule_at(0.0, [this, job] { submit(job); });
    }
  }

  ServeResult result;
  result.metrics = engine_.run();
  result.serving = tracker_.finalize(
      result.metrics.makespan_us, arrival_mode_name(config_.arrival.mode));
  return result;
}

void ServeEngine::submit(std::uint32_t job) {
  const double now = engine_.event_queue().now();
  tracker_.note_submitted(job, now, jobs_[job].deadline_us);
  switch (admission_.submit(job, jobs_[job].priority)) {
    case AdmissionController::Decision::kAdmit:
      engine_.release_job(job);
      break;
    case AdmissionController::Decision::kQueue:
      tracker_.note_queue_depth(now, admission_.queue_depth());
      break;
    case AdmissionController::Decision::kShed:
      engine_.shed_job(job);
      // A closed-loop client whose job was rejected moves on to its next
      // one; without this, every shed would shrink the effective
      // concurrency for the rest of the run.
      maybe_refill_closed_loop();
      break;
  }
}

void ServeEngine::on_job_retired(std::uint32_t job) {
  admission_.on_job_retired(job);
  const double now = engine_.event_queue().now();
  bool drained = false;
  while (const auto next = admission_.try_admit_queued()) {
    engine_.release_job(*next);
    drained = true;
  }
  if (drained) tracker_.note_queue_depth(now, admission_.queue_depth());
  maybe_refill_closed_loop();
}

void ServeEngine::maybe_refill_closed_loop() {
  if (config_.arrival.mode != ArrivalMode::kClosedLoop) return;
  if (next_job_ >= union_.num_jobs) return;
  const std::uint32_t job = next_job_++;
  engine_.event_queue().schedule_after(0.0, [this, job] { submit(job); });
}

}  // namespace mg::serve
