#include "serve/serve_engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mg::serve {

namespace {

AdmissionConfig effective_admission(AdmissionConfig config,
                                    const core::Platform& platform) {
  if (config.max_jobs_in_flight == 0 && config.max_bytes_in_flight == 0) {
    config.max_bytes_in_flight =
        static_cast<std::uint64_t>(platform.num_gpus) *
        platform.gpu_memory_bytes;
  }
  return config;
}

}  // namespace

ServeEngine::ServeEngine(std::span<const core::TaskGraph> templates,
                         std::span<const JobSpec> jobs,
                         const core::Platform& platform,
                         core::Scheduler& scheduler, ServeConfig config)
    : config_(config),
      jobs_(jobs.begin(), jobs.end()),
      union_(build_union_graph(templates, jobs, config.share_data)),
      admission_(effective_admission(config.admission, platform),
                 union_.job_footprint_bytes),
      engine_(union_.graph, platform, scheduler, config.engine) {
  if (config_.autoscale.enabled) {
    MG_CHECK_MSG(platform.is_cluster(),
                 "autoscaling needs a multi-node platform (num_nodes >= 2)");
    // Resolve the "0 = all nodes" default here so the policy's bound check
    // is real: an unbounded policy would keep issuing unappliable
    // scale-outs at full scale, and each one restamps the cooldown.
    if (config_.autoscale.max_nodes == 0 ||
        config_.autoscale.max_nodes > platform.num_nodes) {
      config_.autoscale.max_nodes = platform.num_nodes;
    }
    MG_CHECK_MSG(config_.autoscale.min_nodes <= platform.num_nodes,
                 "autoscaler min_nodes exceeds the platform's node count");
    autoscaler_.emplace(config_.autoscale);
  }
  engine_.enable_streaming(union_.task_job, union_.num_jobs);
  // Announce every job's dispatch priority up front — before any arrival —
  // so priority-aware schedulers can order their pops from the first job on.
  for (std::uint32_t job = 0; job < jobs_.size(); ++job) {
    scheduler.notify_job_priority(job, jobs_[job].priority);
  }
  tracker_.bind(union_.task_job, union_.num_jobs);
  engine_.add_inspector(&tracker_);
  engine_.set_job_retired_callback(
      [this](std::uint32_t job) { on_job_retired(job); });
}

void ServeEngine::add_inspector(sim::Inspector* inspector) {
  engine_.add_inspector(inspector);
}

void ServeEngine::set_fault_injector(sim::FaultInjector* injector) {
  engine_.set_fault_injector(injector);
}

ServeResult ServeEngine::run() {
  sim::EventQueue& events = engine_.event_queue();
  const std::uint32_t num_jobs = union_.num_jobs;
  if (config_.arrival.mode == ArrivalMode::kPoisson) {
    const std::vector<double> times = poisson_arrival_times_us(
        num_jobs, config_.arrival.rate_jobs_per_s, config_.arrival.seed);
    for (std::uint32_t job = 0; job < num_jobs; ++job) {
      events.schedule_at(times[job], [this, job] { submit(job); });
    }
    next_job_ = num_jobs;
  } else {
    MG_CHECK_MSG(config_.arrival.concurrency > 0,
                 "closed-loop arrival needs at least one client");
    const std::uint32_t initial =
        std::min(config_.arrival.concurrency, num_jobs);
    next_job_ = initial;
    for (std::uint32_t job = 0; job < initial; ++job) {
      events.schedule_at(0.0, [this, job] { submit(job); });
    }
  }

  if (autoscaler_.has_value()) schedule_autoscale_pump();

  ServeResult result;
  result.metrics = engine_.run();
  result.serving = tracker_.finalize(
      result.metrics.makespan_us, arrival_mode_name(config_.arrival.mode));
  result.scale_out_events = scale_out_applied_;
  result.scale_in_events = scale_in_applied_;
  return result;
}

void ServeEngine::schedule_autoscale_pump() {
  pump_scheduled_ = true;
  engine_.event_queue().schedule_after(config_.autoscale.check_interval_us,
                                       [this] { autoscale_pump(); });
}

void ServeEngine::autoscale_pump() {
  pump_scheduled_ = false;
  sim::EventQueue& events = engine_.event_queue();
  const std::uint64_t processed = events.events_processed();
  // "Quiet" tick: nothing but the pump itself ran since the last one. A
  // single quiet tick is normal while a long task computes, so the pump
  // parks only after a few in a row — enough to ride out task-length gaps,
  // few enough that a wedged run hands control back to the engine's
  // deadlock detection instead of spinning on pump ticks forever.
  constexpr std::uint32_t kParkAfterQuietTicks = 3;
  const bool quiet = processed - last_pump_events_ <= 1;
  last_pump_events_ = processed;
  quiet_ticks_ = quiet ? quiet_ticks_ + 1 : 0;

  const cluster::Autoscaler::Sample sample{
      events.now(), admission_.queue_depth(), admission_.jobs_in_flight(),
      engine_.active_node_count()};
  switch (autoscaler_->sample(sample)) {
    case cluster::Autoscaler::Decision::kScaleOut: {
      // Lowest inactive node first: joins retrace the drain order, so a
      // burst of out/in cycles keeps touching the same nodes.
      const std::uint32_t nodes = engine_.platform().num_nodes;
      for (core::NodeId node = 0; node < nodes; ++node) {
        if (engine_.node_status(node) ==
            sim::RuntimeEngine::NodeStatus::kInactive) {
          engine_.begin_node_join(node);
          ++scale_out_applied_;
          break;
        }
      }
      break;
    }
    case cluster::Autoscaler::Decision::kScaleIn: {
      // Highest active node first, mirroring the join order.
      const std::uint32_t nodes = engine_.platform().num_nodes;
      for (core::NodeId node = nodes; node-- > 0;) {
        if (engine_.node_status(node) ==
                sim::RuntimeEngine::NodeStatus::kActive &&
            engine_.active_node_count() > 1) {
          engine_.begin_node_drain(node);
          ++scale_in_applied_;
          break;
        }
      }
      break;
    }
    case cluster::Autoscaler::Decision::kHold:
      break;
  }

  // Reschedule unless the stream is over or the simulation stayed quiet (a
  // parked pump must not mask a deadlock or spin past the last retirement);
  // the next submit() revives it.
  if (jobs_finished_ < union_.num_jobs && quiet_ticks_ < kParkAfterQuietTicks) {
    schedule_autoscale_pump();
  }
}

void ServeEngine::submit(std::uint32_t job) {
  const double now = engine_.event_queue().now();
  if (autoscaler_.has_value() && !pump_scheduled_ &&
      jobs_finished_ < union_.num_jobs) {
    // Traffic is back: revive the parked sampling pump.
    quiet_ticks_ = 0;
    schedule_autoscale_pump();
  }
  tracker_.note_submitted(job, now, jobs_[job].deadline_us);
  switch (admission_.submit(job, jobs_[job].priority)) {
    case AdmissionController::Decision::kAdmit:
      engine_.release_job(job);
      break;
    case AdmissionController::Decision::kQueue:
      tracker_.note_queue_depth(now, admission_.queue_depth());
      break;
    case AdmissionController::Decision::kShed:
      ++jobs_finished_;
      engine_.shed_job(job);
      // A closed-loop client whose job was rejected moves on to its next
      // one; without this, every shed would shrink the effective
      // concurrency for the rest of the run.
      maybe_refill_closed_loop();
      break;
  }
}

void ServeEngine::on_job_retired(std::uint32_t job) {
  ++jobs_finished_;
  if (autoscaler_.has_value() && !pump_scheduled_ &&
      jobs_finished_ < union_.num_jobs) {
    // Keep sampling through the retirement tail (arrivals may be over, but
    // scale-in pressure only builds as the last jobs wind down).
    quiet_ticks_ = 0;
    schedule_autoscale_pump();
  }
  admission_.on_job_retired(job);
  const double now = engine_.event_queue().now();
  bool drained = false;
  while (const auto next = admission_.try_admit_queued()) {
    engine_.release_job(*next);
    drained = true;
  }
  if (drained) tracker_.note_queue_depth(now, admission_.queue_depth());
  maybe_refill_closed_loop();
}

void ServeEngine::maybe_refill_closed_loop() {
  if (config_.arrival.mode != ArrivalMode::kClosedLoop) return;
  if (next_job_ >= union_.num_jobs) return;
  const std::uint32_t job = next_job_++;
  engine_.event_queue().schedule_after(0.0, [this, job] { submit(job); });
}

}  // namespace mg::serve
