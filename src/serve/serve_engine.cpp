#include "serve/serve_engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mg::serve {

namespace {

AdmissionConfig effective_admission(AdmissionConfig config,
                                    const core::Platform& platform) {
  if (config.max_jobs_in_flight == 0 && config.max_bytes_in_flight == 0) {
    config.max_bytes_in_flight =
        static_cast<std::uint64_t>(platform.num_gpus) *
        platform.gpu_memory_bytes;
  }
  return config;
}

/// The occupancy governor's admission budget, recomputed from the engine
/// config (the governor itself is engine-private): the largest load the
/// strict active + new < threshold * total rule admits. 0 = governor off,
/// which the BatchPlanner reads as "no warp constraint on fusion".
std::uint32_t planner_budget_warps(const sim::EngineConfig& config,
                                   const core::Platform& platform) {
  if (config.occupancy_threshold <= 0.0) return 0;
  const double limit = config.occupancy_threshold *
                       static_cast<double>(platform.total_warps());
  double floor = std::floor(limit);
  if (floor == limit) floor -= 1.0;
  return static_cast<std::uint32_t>(std::max(floor, 0.0));
}

/// Nearest-rank percentile of an already-sorted sample (the JobTracker's
/// convention, so per-tier and overall percentiles agree).
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::max(1.0, std::min(rank, static_cast<double>(sorted.size()))));
  return sorted[index - 1];
}

}  // namespace

ServeEngine::ServeEngine(std::span<const core::TaskGraph> templates,
                         std::span<const JobSpec> jobs,
                         const core::Platform& platform,
                         core::Scheduler& scheduler, ServeConfig config)
    : config_(config),
      jobs_(jobs.begin(), jobs.end()),
      union_(build_union_graph(templates, jobs, config.share_data)),
      admission_(effective_admission(config.admission, platform),
                 union_.job_footprint_bytes),
      engine_(union_.graph, platform, scheduler, config.engine) {
  if (config_.autoscale.enabled) {
    MG_CHECK_MSG(platform.is_cluster(),
                 "autoscaling needs a multi-node platform (num_nodes >= 2)");
    // Resolve the "0 = all nodes" default here so the policy's bound check
    // is real: an unbounded policy would keep issuing unappliable
    // scale-outs at full scale, and each one restamps the cooldown.
    if (config_.autoscale.max_nodes == 0 ||
        config_.autoscale.max_nodes > platform.num_nodes) {
      config_.autoscale.max_nodes = platform.num_nodes;
    }
    MG_CHECK_MSG(config_.autoscale.min_nodes <= platform.num_nodes,
                 "autoscaler min_nodes exceeds the platform's node count");
    autoscaler_.emplace(config_.autoscale);
  }
  engine_.enable_streaming(union_.task_job, union_.num_jobs);
  if (config_.slo.enabled) {
    if (config_.slo.batching) {
      MG_CHECK_MSG(config_.share_data,
                   "cross-job batching needs share_data: fused members must "
                   "read the same DataIds as their leader");
      planner_.emplace(union_, std::span<const JobSpec>(jobs_), config_.slo,
                       planner_budget_warps(config_.engine, platform));
    }
    if (config_.slo.protect_min_priority > 0) {
      // Distinct inputs per job, resolved once: the veto add/remove pairs
      // walk these at release and retirement.
      job_inputs_.resize(union_.num_jobs);
      for (std::uint32_t job = 0; job < union_.num_jobs; ++job) {
        std::vector<core::DataId>& inputs = job_inputs_[job];
        for (const core::TaskId task : union_.job_tasks[job]) {
          const auto span = union_.graph.inputs(task);
          inputs.insert(inputs.end(), span.begin(), span.end());
        }
        std::sort(inputs.begin(), inputs.end());
        inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
      }
      protected_jobs_.assign(union_.num_jobs, 0);
    }
  }
  // Announce every job's dispatch priority up front — before any arrival —
  // so priority-aware schedulers can order their pops from the first job on.
  // Tier admission weights fold in, so a whole tier outranks another at
  // dispatch exactly as it does in the admission queue.
  for (std::uint32_t job = 0; job < jobs_.size(); ++job) {
    scheduler.notify_job_priority(job, effective_priority(job));
  }
  tracker_.bind(union_.task_job, union_.num_jobs);
  engine_.add_inspector(&tracker_);
  engine_.set_job_retired_callback(
      [this](std::uint32_t job) { on_job_retired(job); });
}

void ServeEngine::add_inspector(sim::Inspector* inspector) {
  engine_.add_inspector(inspector);
}

void ServeEngine::set_fault_injector(sim::FaultInjector* injector) {
  engine_.set_fault_injector(injector);
}

ServeResult ServeEngine::run() {
  sim::EventQueue& events = engine_.event_queue();
  const std::uint32_t num_jobs = union_.num_jobs;
  if (config_.arrival.mode == ArrivalMode::kPoisson) {
    const std::vector<double> times = poisson_arrival_times_us(
        num_jobs, config_.arrival.rate_jobs_per_s, config_.arrival.seed);
    for (std::uint32_t job = 0; job < num_jobs; ++job) {
      events.schedule_at(times[job], [this, job] { submit(job); });
    }
    next_job_ = num_jobs;
  } else {
    MG_CHECK_MSG(config_.arrival.concurrency > 0,
                 "closed-loop arrival needs at least one client");
    const std::uint32_t initial =
        std::min(config_.arrival.concurrency, num_jobs);
    next_job_ = initial;
    for (std::uint32_t job = 0; job < initial; ++job) {
      events.schedule_at(0.0, [this, job] { submit(job); });
    }
  }

  if (autoscaler_.has_value()) schedule_autoscale_pump();

  ServeResult result;
  result.metrics = engine_.run();
  result.serving = tracker_.finalize(
      result.metrics.makespan_us, arrival_mode_name(config_.arrival.mode));
  result.scale_out_events = scale_out_applied_;
  result.scale_in_events = scale_in_applied_;

  if (config_.slo.enabled) {
    const slo::TierPolicy& tiers = config_.slo.tiers;
    result.slo.enabled = true;
    result.slo.tiers = tiers.num_tiers();
    result.slo.per_tier.resize(tiers.num_tiers());
    std::vector<std::vector<double>> latencies(tiers.num_tiers());
    for (std::uint32_t tier = 0; tier < tiers.num_tiers(); ++tier) {
      result.slo.per_tier[tier].tier = tier;
    }
    for (std::uint32_t job = 0; job < union_.num_jobs; ++job) {
      if (tracker_.shed(job) || tracker_.finish_us(job) < 0.0) continue;
      const std::uint32_t tier = tiers.tier_of(jobs_[job].priority);
      const double submit = tracker_.submit_us(job) >= 0.0
                                ? tracker_.submit_us(job)
                                : tracker_.arrival_us(job);
      const double latency = tracker_.finish_us(job) - submit;
      latencies[tier].push_back(latency);
      const double deadline = effective_deadline(job);
      if (deadline > 0.0 && latency > deadline) {
        ++result.slo.per_tier[tier].deadline_misses;
      }
    }
    for (std::uint32_t tier = 0; tier < tiers.num_tiers(); ++tier) {
      std::vector<double>& sample = latencies[tier];
      std::sort(sample.begin(), sample.end());
      sim::RunReport::Slo::Tier& out = result.slo.per_tier[tier];
      out.jobs = static_cast<std::uint32_t>(sample.size());
      out.p50_us = percentile(sample, 50.0);
      out.p95_us = percentile(sample, 95.0);
      out.p99_us = percentile(sample, 99.0);
    }
  }
  return result;
}

std::uint32_t ServeEngine::effective_priority(std::uint32_t job) const {
  const std::uint32_t priority = jobs_[job].priority;
  if (!config_.slo.enabled) return priority;
  const slo::TierPolicy& tiers = config_.slo.tiers;
  return priority + tiers.spec(tiers.tier_of(priority)).admission_weight;
}

double ServeEngine::effective_deadline(std::uint32_t job) const {
  const double declared = jobs_[job].deadline_us;
  if (declared > 0.0 || !config_.slo.enabled) return declared;
  const slo::TierPolicy& tiers = config_.slo.tiers;
  return tiers.spec(tiers.tier_of(jobs_[job].priority)).deadline_us;
}

void ServeEngine::try_fuse(std::uint32_t leader, double now_us) {
  if (!planner_.has_value()) return;
  const std::vector<AdmissionController::QueueEntry> queued =
      admission_.queued();
  if (queued.empty()) return;
  std::vector<slo::BatchPlanner::QueuedJob> candidates;
  candidates.reserve(queued.size());
  for (const AdmissionController::QueueEntry& entry : queued) {
    candidates.push_back(
        slo::BatchPlanner::QueuedJob{entry.job, entry.enqueue_us});
  }
  // Fusion consumes the queue in admission order — tier weight first, FIFO
  // within a level — so a high-tier leader batches its own tier's waiters
  // instead of whichever low-tier job happens to sit at the queue's front.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [this](const slo::BatchPlanner::QueuedJob& a,
                          const slo::BatchPlanner::QueuedJob& b) {
                     const std::uint32_t pa = effective_priority(a.job);
                     const std::uint32_t pb = effective_priority(b.job);
                     if (pa != pb) return pa > pb;
                     return a.enqueue_us < b.enqueue_us;
                   });
  const slo::BatchPlanner::Plan plan =
      planner_->plan(leader, now_us, candidates);
  if (plan.members.empty()) return;
  for (const std::uint32_t member : plan.members) {
    const bool taken = admission_.take(member);
    MG_CHECK_MSG(taken, "fusion member vanished from the admission queue");
  }
  engine_.fuse_jobs(leader, plan.members, plan.duration_scale);
  for (const std::uint32_t member : plan.members) protect_job(member);
  tracker_.note_queue_depth(now_us, admission_.queue_depth());
}

void ServeEngine::protect_job(std::uint32_t job) {
  if (protected_jobs_.empty()) return;  // protection not armed
  if (jobs_[job].priority < config_.slo.protect_min_priority) return;
  if (protected_jobs_[job] != 0) return;
  protected_jobs_[job] = 1;
  const std::uint32_t tier = config_.slo.tiers.tier_of(jobs_[job].priority);
  for (const core::DataId data : job_inputs_[job]) {
    engine_.add_eviction_veto(data, tier);
  }
}

void ServeEngine::unprotect_job(std::uint32_t job) {
  if (protected_jobs_.empty() || protected_jobs_[job] == 0) return;
  protected_jobs_[job] = 0;
  for (const core::DataId data : job_inputs_[job]) {
    engine_.remove_eviction_veto(data);
  }
}

void ServeEngine::schedule_autoscale_pump() {
  pump_scheduled_ = true;
  engine_.event_queue().schedule_after(config_.autoscale.check_interval_us,
                                       [this] { autoscale_pump(); });
}

void ServeEngine::autoscale_pump() {
  pump_scheduled_ = false;
  sim::EventQueue& events = engine_.event_queue();
  const std::uint64_t processed = events.events_processed();
  // "Quiet" tick: nothing but the pump itself ran since the last one. A
  // single quiet tick is normal while a long task computes, so the pump
  // parks only after a few in a row — enough to ride out task-length gaps,
  // few enough that a wedged run hands control back to the engine's
  // deadlock detection instead of spinning on pump ticks forever.
  constexpr std::uint32_t kParkAfterQuietTicks = 3;
  const bool quiet = processed - last_pump_events_ <= 1;
  last_pump_events_ = processed;
  quiet_ticks_ = quiet ? quiet_ticks_ + 1 : 0;

  const cluster::Autoscaler::Sample sample{
      events.now(), admission_.queue_depth(), admission_.jobs_in_flight(),
      engine_.active_node_count()};
  switch (autoscaler_->sample(sample)) {
    case cluster::Autoscaler::Decision::kScaleOut: {
      // Lowest inactive node first: joins retrace the drain order, so a
      // burst of out/in cycles keeps touching the same nodes.
      const std::uint32_t nodes = engine_.platform().num_nodes;
      for (core::NodeId node = 0; node < nodes; ++node) {
        if (engine_.node_status(node) ==
            sim::RuntimeEngine::NodeStatus::kInactive) {
          engine_.begin_node_join(node);
          ++scale_out_applied_;
          break;
        }
      }
      break;
    }
    case cluster::Autoscaler::Decision::kScaleIn: {
      // Highest active node first, mirroring the join order.
      const std::uint32_t nodes = engine_.platform().num_nodes;
      for (core::NodeId node = nodes; node-- > 0;) {
        if (engine_.node_status(node) ==
                sim::RuntimeEngine::NodeStatus::kActive &&
            engine_.active_node_count() > 1) {
          engine_.begin_node_drain(node);
          ++scale_in_applied_;
          break;
        }
      }
      break;
    }
    case cluster::Autoscaler::Decision::kHold:
      break;
  }

  // Reschedule unless the stream is over or the simulation stayed quiet (a
  // parked pump must not mask a deadlock or spin past the last retirement);
  // the next submit() revives it.
  if (jobs_finished_ < union_.num_jobs && quiet_ticks_ < kParkAfterQuietTicks) {
    schedule_autoscale_pump();
  }
}

void ServeEngine::submit(std::uint32_t job) {
  const double now = engine_.event_queue().now();
  if (autoscaler_.has_value() && !pump_scheduled_ &&
      jobs_finished_ < union_.num_jobs) {
    // Traffic is back: revive the parked sampling pump.
    quiet_ticks_ = 0;
    schedule_autoscale_pump();
  }
  tracker_.note_submitted(job, now, effective_deadline(job));
  switch (admission_.submit(job, effective_priority(job), now)) {
    case AdmissionController::Decision::kAdmit:
      // Fuse before releasing: release_job starts tasks immediately, and a
      // fused leader must carry its duration scale from the first launch.
      try_fuse(job, now);
      protect_job(job);
      engine_.release_job(job);
      break;
    case AdmissionController::Decision::kQueue:
      tracker_.note_queue_depth(now, admission_.queue_depth());
      break;
    case AdmissionController::Decision::kShed:
      ++jobs_finished_;
      engine_.shed_job(job);
      // A closed-loop client whose job was rejected moves on to its next
      // one; without this, every shed would shrink the effective
      // concurrency for the rest of the run.
      maybe_refill_closed_loop();
      break;
  }
}

void ServeEngine::on_job_retired(std::uint32_t job) {
  ++jobs_finished_;
  if (autoscaler_.has_value() && !pump_scheduled_ &&
      jobs_finished_ < union_.num_jobs) {
    // Keep sampling through the retirement tail (arrivals may be over, but
    // scale-in pressure only builds as the last jobs wind down).
    quiet_ticks_ = 0;
    schedule_autoscale_pump();
  }
  unprotect_job(job);
  admission_.on_job_retired(job);
  const double now = engine_.event_queue().now();
  bool drained = false;
  while (const auto next = admission_.try_admit_queued(now)) {
    try_fuse(*next, now);
    protect_job(*next);
    engine_.release_job(*next);
    drained = true;
  }
  if (drained) tracker_.note_queue_depth(now, admission_.queue_depth());
  maybe_refill_closed_loop();
}

void ServeEngine::maybe_refill_closed_loop() {
  if (config_.arrival.mode != ArrivalMode::kClosedLoop) return;
  if (next_job_ >= union_.num_jobs) return;
  const std::uint32_t job = next_job_++;
  engine_.event_queue().schedule_after(0.0, [this, job] { submit(job); });
}

}  // namespace mg::serve
