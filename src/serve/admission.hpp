// Admission control — bounds the in-flight footprint of a streamed run.
//
// Every submitted job is either admitted (released into the engine),
// queued (held until retirements free capacity), or shed (rejected
// outright once the queue itself is full). Capacity is measured two ways,
// both optional: a cap on concurrently in-flight jobs and a cap on the sum
// of in-flight job footprints (distinct input bytes + output scratch)
// against GPU memory. A job too large for an *empty* system is admitted
// anyway — rejecting it forever would wedge the run; the memory manager
// then pays the thrashing, not the admission layer.
//
// The queue pops by (priority desc, submission order) and is pure
// bookkeeping: the ServeEngine drives it from the simulation clock.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace mg::serve {

struct AdmissionConfig {
  /// Max jobs in flight at once; 0 = unlimited.
  std::uint32_t max_jobs_in_flight = 0;

  /// Max summed footprint bytes in flight; 0 = unlimited. A sensible bound
  /// is the platform's aggregate GPU memory.
  std::uint64_t max_bytes_in_flight = 0;

  /// Max jobs waiting in the admission queue; a submission past it is shed.
  /// 0 = unbounded queue (nothing is ever shed).
  std::uint32_t max_queue_depth = 0;

  /// Anti-starvation aging: a queued job's effective priority is
  /// priority + aging_rate_per_s × (seconds waited), so a low-priority job
  /// eventually outranks a saturating high-tier stream. 0 (the default)
  /// keeps the exact (priority desc, FIFO) order — byte-identical to a
  /// controller without this knob.
  double aging_rate_per_s = 0.0;
};

class AdmissionController {
 public:
  enum class Decision : std::uint8_t { kAdmit, kQueue, kShed };

  AdmissionController(AdmissionConfig config,
                      std::vector<std::uint64_t> job_footprint_bytes);

  /// One queued job as exposed to batching (BatchPlanner scans this).
  struct QueueEntry {
    std::uint32_t job = 0;
    std::uint32_t priority = 0;
    double enqueue_us = 0.0;
  };

  /// Decides the fate of `job` now. kAdmit already accounts the job as in
  /// flight; kQueue parks it (stamped with `now_us` for aging and the
  /// fusion window); kShed drops it (the caller cancels it in the engine).
  Decision submit(std::uint32_t job, std::uint32_t priority,
                  double now_us = 0.0);

  /// Releases the capacity of a retired in-flight job.
  void on_job_retired(std::uint32_t job);

  /// Pops the best queued job that fits now — highest effective priority
  /// (priority + aging) first, FIFO within — accounting it as in flight.
  /// Call in a loop after every retirement.
  std::optional<std::uint32_t> try_admit_queued(double now_us = 0.0);

  /// Removes a specific queued job (batch fusion member), accounting it as
  /// in flight. False if the job is not queued.
  bool take(std::uint32_t job);

  /// The waiting queue in submission order (fusion-candidate scan).
  [[nodiscard]] std::vector<QueueEntry> queued() const;

  [[nodiscard]] std::uint32_t queue_depth() const {
    return static_cast<std::uint32_t>(queue_.size());
  }
  [[nodiscard]] std::uint32_t jobs_in_flight() const { return in_flight_; }
  [[nodiscard]] std::uint64_t bytes_in_flight() const { return bytes_; }

 private:
  [[nodiscard]] bool fits(std::uint32_t job) const;
  void account(std::uint32_t job);

  struct Waiting {
    std::uint32_t job = 0;
    std::uint32_t priority = 0;
    std::uint64_t seq = 0;
    double enqueue_us = 0.0;
  };

  AdmissionConfig config_;
  std::vector<std::uint64_t> footprint_;
  std::deque<Waiting> queue_;
  std::uint32_t in_flight_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mg::serve
