// JobTracker — the serving-side observer of a streamed run.
//
// Attached to the engine as an Inspector, it timestamps every job's
// submission (from the ServeEngine), arrival and completion (from the
// kJobArrival / kJobComplete events), scores deadlines, and measures
// *cross-job data reuse*: input bytes a task consumed from data that was
// already resident on its GPU before the task's job arrived — i.e. bytes
// left behind by earlier jobs and served from GPU memory instead of being
// loaded again over PCI. Reuse is counted once per (job, data, GPU).
// finalize() folds everything into the run report's "serving" section
// (schema v3, docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <string_view>
#include <vector>

#include "sim/inspector.hpp"
#include "sim/run_report.hpp"

namespace mg::serve {

class JobTracker final : public sim::Inspector {
 public:
  /// Wires the union-graph job structure; call before the run.
  void bind(std::span<const std::uint32_t> task_job, std::uint32_t num_jobs);

  /// The arrival process handed `job` to admission at `time_us`;
  /// `deadline_us` is the job's SLO from that moment (0 = none).
  void note_submitted(std::uint32_t job, double time_us, double deadline_us);

  /// Admission-queue depth changed (ServeEngine-driven).
  void note_queue_depth(double time_us, std::uint32_t depth);

  // Inspector
  void on_run_begin(const core::TaskGraph& graph,
                    const core::Platform& platform,
                    std::string_view scheduler_name) override;
  void on_event(const sim::InspectorEvent& event) override;

  /// Builds the serving section after the run completed.
  [[nodiscard]] sim::RunReport::Serving finalize(
      double makespan_us, std::string_view arrival_name) const;

  // Raw per-job observations (tests, bespoke reporting). -1 = never seen.
  [[nodiscard]] double submit_us(std::uint32_t job) const {
    return submit_us_[job];
  }
  [[nodiscard]] double arrival_us(std::uint32_t job) const {
    return arrival_us_[job];
  }
  [[nodiscard]] double finish_us(std::uint32_t job) const {
    return finish_us_[job];
  }
  [[nodiscard]] bool shed(std::uint32_t job) const { return shed_[job] != 0; }
  [[nodiscard]] std::uint64_t cross_job_reuse_bytes() const {
    return reuse_bytes_;
  }
  [[nodiscard]] std::uint64_t cross_job_reuse_hits() const {
    return reuse_hits_;
  }

 private:
  const core::TaskGraph* graph_ = nullptr;
  std::vector<std::uint32_t> task_job_;
  std::uint32_t num_jobs_ = 0;

  std::vector<double> submit_us_;
  std::vector<double> deadline_us_;
  std::vector<double> arrival_us_;
  std::vector<double> finish_us_;
  std::vector<std::uint8_t> shed_;

  /// Arrival epochs order loads against job arrivals: data loaded at an
  /// epoch strictly before a job's arrival epoch predates the job.
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> job_epoch_;
  std::vector<std::vector<std::uint8_t>> resident_;      // [gpu][data]
  std::vector<std::vector<std::uint32_t>> loaded_epoch_; // [gpu][data]
  /// (gpu << 32 | data) pairs already counted for each in-flight job.
  std::vector<std::set<std::uint64_t>> counted_;
  std::uint64_t reuse_bytes_ = 0;
  std::uint64_t reuse_hits_ = 0;

  std::uint32_t in_flight_ = 0;
  std::uint32_t peak_in_flight_ = 0;
  std::uint32_t peak_queue_depth_ = 0;
  std::vector<std::pair<double, std::uint32_t>> queue_depth_timeline_;
};

}  // namespace mg::serve
