// Union graph — every job a streamed run may serve, merged into one
// core::TaskGraph the engine and scheduler operate on.
//
// Tasks are namespaced per job (labels get a "j<job>:" prefix); data is
// deduplicated per template: two jobs instantiating the same template read
// the *same* DataId, which is exactly what lets DARTS/LUF and DMDAR exploit
// inter-job data sharing — a tile loaded for job 3 is still resident when
// job 7 arrives. Building with share_data = false gives every job a private
// copy of its template's data instead (the ablation baseline: same work,
// zero cross-job reuse possible).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/task_graph.hpp"
#include "serve/job.hpp"

namespace mg::serve {

struct UnionGraph {
  core::TaskGraph graph;
  std::uint32_t num_jobs = 0;

  /// task_job[t] = the job owning union-graph task t (dense, engine input).
  std::vector<std::uint32_t> task_job;

  /// Union-graph TaskIds of each job, in template order.
  std::vector<std::vector<core::TaskId>> job_tasks;

  /// Admission footprint of each job: its distinct input bytes plus its
  /// largest single-task output scratch.
  std::vector<std::uint64_t> job_footprint_bytes;
};

/// Merges one graph instance per job into a union graph. `jobs[i].graph`
/// indexes `templates`; every template must have at least one task.
[[nodiscard]] UnionGraph build_union_graph(
    std::span<const core::TaskGraph> templates, std::span<const JobSpec> jobs,
    bool share_data = true);

}  // namespace mg::serve
