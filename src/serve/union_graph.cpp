#include "serve/union_graph.hpp"

#include <algorithm>
#include <string>

#include "util/check.hpp"

namespace mg::serve {

UnionGraph build_union_graph(std::span<const core::TaskGraph> templates,
                             std::span<const JobSpec> jobs, bool share_data) {
  MG_CHECK_MSG(!jobs.empty(), "a streamed run needs at least one job");
  for (const JobSpec& job : jobs) {
    MG_CHECK_MSG(job.graph < templates.size(),
                 "job references an unknown template graph");
    MG_CHECK_MSG(templates[job.graph].num_tasks() > 0,
                 "every job must own at least one task");
  }

  UnionGraph out;
  out.num_jobs = static_cast<std::uint32_t>(jobs.size());
  out.job_tasks.resize(jobs.size());
  out.job_footprint_bytes.resize(jobs.size(), 0);

  core::TaskGraphBuilder builder;
  // shared_data[template][local] = union DataId, filled lazily on the first
  // job of each template; only used when sharing.
  std::vector<std::vector<core::DataId>> shared_data(templates.size());

  for (std::uint32_t job = 0; job < jobs.size(); ++job) {
    const core::TaskGraph& tpl = templates[jobs[job].graph];
    std::string prefix = "j";
    prefix += std::to_string(job);
    prefix += ':';
    std::vector<core::DataId>* mapping = nullptr;
    std::vector<core::DataId> private_mapping;
    if (share_data) {
      mapping = &shared_data[jobs[job].graph];
    } else {
      mapping = &private_mapping;
    }
    if (mapping->empty()) {
      mapping->reserve(tpl.num_data());
      for (core::DataId data = 0; data < tpl.num_data(); ++data) {
        std::string label = tpl.data_label(data);
        if (!share_data) label = prefix + label;
        mapping->push_back(
            builder.add_data(tpl.data_size(data), std::move(label)));
      }
    }

    std::uint64_t inputs_bytes = 0;
    std::uint64_t max_scratch = 0;
    std::vector<std::uint8_t> seen(tpl.num_data(), 0);
    std::vector<core::DataId> inputs;
    for (core::TaskId task = 0; task < tpl.num_tasks(); ++task) {
      inputs.clear();
      for (core::DataId data : tpl.inputs(task)) {
        inputs.push_back((*mapping)[data]);
        if (seen[data] == 0) {
          seen[data] = 1;
          inputs_bytes += tpl.data_size(data);
        }
      }
      const core::TaskId id = builder.add_task(tpl.task_flops(task), inputs,
                                               prefix + tpl.task_label(task));
      if (tpl.task_output_bytes(task) > 0) {
        builder.set_task_output(id, tpl.task_output_bytes(task));
        max_scratch = std::max(max_scratch, tpl.task_output_bytes(task));
      }
      const std::uint32_t warps =
          jobs[job].warps != 0 ? jobs[job].warps : tpl.task_warps(task);
      if (warps != 0) builder.set_task_warps(id, warps);
      out.task_job.push_back(job);
      out.job_tasks[job].push_back(id);
    }
    out.job_footprint_bytes[job] = inputs_bytes + max_scratch;
  }

  out.graph = builder.build();
  return out;
}

}  // namespace mg::serve
