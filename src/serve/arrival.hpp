// Arrival processes for the serving loop.
//
// Two canonical load generators from the serving literature:
//   * open-loop Poisson — jobs arrive at seeded exponential inter-arrival
//     gaps regardless of how the system keeps up, so queues grow without
//     bound past the saturation rate (the regime fig_throughput sweeps
//     into);
//   * closed-loop fixed concurrency — a fixed number of clients each submit
//     their next job the moment the previous one finishes, so offered load
//     adapts to service rate and the system never collapses.
//
// All randomness draws from util::Rng under an explicit seed: a
// (seed, config) pair always produces the same arrival times, which is what
// makes streamed run reports bit-identical across runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace mg::serve {

enum class ArrivalMode : std::uint8_t {
  kPoisson,     ///< open loop, rate_jobs_per_s
  kClosedLoop,  ///< closed loop, fixed concurrency
};

[[nodiscard]] std::string_view arrival_mode_name(ArrivalMode mode);

/// Parses "poisson" / "closed-loop" (the --arrival flag values).
[[nodiscard]] std::optional<ArrivalMode> parse_arrival_mode(
    std::string_view name);

struct ArrivalConfig {
  ArrivalMode mode = ArrivalMode::kPoisson;
  double rate_jobs_per_s = 200.0;  ///< Poisson arrival rate
  std::uint32_t concurrency = 4;   ///< closed-loop client count
  std::uint64_t seed = 42;         ///< drives the exponential draws
};

/// Absolute Poisson arrival times (µs, non-decreasing) for `num_jobs` jobs
/// at `rate_jobs_per_s`, deterministic under `seed`.
[[nodiscard]] std::vector<double> poisson_arrival_times_us(
    std::uint32_t num_jobs, double rate_jobs_per_s, std::uint64_t seed);

}  // namespace mg::serve
