// ServeEngine — the streamed multi-graph throughput engine.
//
// Wraps one sim::RuntimeEngine (in streaming mode) into a serving loop:
// an arrival process (open-loop Poisson or closed-loop fixed concurrency)
// submits jobs — each one instance of a workload template graph — to an
// admission controller that releases, queues or sheds them; a JobTracker
// observes the run and folds throughput, latency percentiles, deadline
// outcomes and cross-job data reuse into the run report's "serving"
// section. The scheduler sees the union of all in-flight graphs, so
// data-aware policies (DARTS+LUF, DMDAR) serve repeat jobs from data a
// previous job already paid to load; share_data = false ablates exactly
// that channel away.
//
// Fault plans compose: a GPU lost mid-stream only disturbs in-flight jobs
// (orphans re-run on survivors); later arrivals are placed on the
// remaining devices. Everything is deterministic under the configured
// seeds — two runs of the same config produce bit-identical reports.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cluster/autoscaler.hpp"
#include "core/platform.hpp"
#include "core/scheduler.hpp"
#include "core/task_graph.hpp"
#include "serve/admission.hpp"
#include "serve/arrival.hpp"
#include "serve/job.hpp"
#include "serve/job_tracker.hpp"
#include "serve/union_graph.hpp"
#include "sim/engine.hpp"
#include "sim/run_report.hpp"
#include "slo/batch_planner.hpp"
#include "slo/tier_policy.hpp"

namespace mg::serve {

struct ServeConfig {
  ArrivalConfig arrival;

  /// All-zero (the default) bounds the in-flight footprint by the
  /// platform's aggregate GPU memory with an unbounded queue; set any
  /// field to take over explicitly.
  AdmissionConfig admission;

  /// Jobs of the same template share its data (the cross-job reuse
  /// channel). False gives every job private copies — the ablation.
  bool share_data = true;

  /// Forwarded to the underlying RuntimeEngine (seed, pipeline depth,
  /// watchdog budgets, ...).
  sim::EngineConfig engine;

  /// Elastic autoscaling policy (multi-node platforms). When enabled the
  /// serving loop samples the admission state every check_interval_us and
  /// executes the policy's decisions as graceful node joins (lowest
  /// inactive node first) and drains (highest active node first).
  /// Typically paired with engine.initial_active_nodes so the run starts
  /// small and grows into the spike. Disabled (the default), no sampling
  /// pump is ever scheduled and reports stay byte-identical to a build
  /// without the autoscaler.
  cluster::AutoscalerConfig autoscale;

  /// SLO tiers and cross-job super-task batching. When enabled, tier
  /// admission weights fold into queue ordering and the priorities
  /// announced to the scheduler, tier deadlines back jobs that declare
  /// none, in-flight jobs at or above slo.protect_min_priority veto the
  /// eviction of their inputs, and — with slo.batching — the admission of
  /// a job scans the queue for compatible waiters to fuse into one
  /// super-task launch. Disabled (the default) the run stays byte-identical
  /// to a build without src/slo.
  slo::SloConfig slo;
};

struct ServeResult {
  core::RunMetrics metrics;
  sim::RunReport::Serving serving;

  /// Autoscaler decisions applied this run (mirrors the run report's
  /// autoscaling.scale_out_events / scale_in_events; callers writing a
  /// report patch them in, like the serving section).
  std::uint32_t scale_out_events = 0;
  std::uint32_t scale_in_events = 0;

  /// Per-tier latency outcomes (enabled/tiers/per_tier only — the event
  /// counters come from a RunReportCollector riding the run; callers
  /// writing a report patch tiers and per_tier in, like the serving
  /// section). Zeroed when the SLO layer is off.
  sim::RunReport::Slo slo;
};

class ServeEngine {
 public:
  /// The scheduler must support streaming (Scheduler::begin_streaming);
  /// `jobs[i].graph` indexes `templates`.
  ServeEngine(std::span<const core::TaskGraph> templates,
              std::span<const JobSpec> jobs, const core::Platform& platform,
              core::Scheduler& scheduler, ServeConfig config = {});

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Extra observability riding on the run (invariant checker, report
  /// collector); forwarded to the engine. Call before run().
  void add_inspector(sim::Inspector* inspector);

  /// Fault plan for the streamed run; forwarded. Call before run().
  void set_fault_injector(sim::FaultInjector* injector);

  /// Drives arrivals, admission and the simulation to completion.
  /// Single-shot, like RuntimeEngine::run.
  ServeResult run();

  [[nodiscard]] const UnionGraph& union_graph() const { return union_; }
  [[nodiscard]] const JobTracker& tracker() const { return tracker_; }
  [[nodiscard]] sim::RuntimeEngine& engine() { return engine_; }

 private:
  void submit(std::uint32_t job);
  void on_job_retired(std::uint32_t job);
  void maybe_refill_closed_loop();

  /// Priority the admission queue and the scheduler see: the job's own
  /// priority plus its tier's admission weight (the raw priority when the
  /// SLO layer is off).
  [[nodiscard]] std::uint32_t effective_priority(std::uint32_t job) const;

  /// The job's declared deadline, else its tier's default (0 = none).
  [[nodiscard]] double effective_deadline(std::uint32_t job) const;

  /// Scans the admission queue for jobs to fuse into `leader` (about to be
  /// released), takes them out of the queue and fuses them in the engine.
  /// No-op without batching.
  void try_fuse(std::uint32_t leader, double now_us);

  /// Eviction protection for a job entering / leaving flight: vetoes (or
  /// releases) eviction of the job's distinct input data when its priority
  /// clears slo.protect_min_priority.
  void protect_job(std::uint32_t job);
  void unprotect_job(std::uint32_t job);

  /// One autoscaler sampling tick: feed the admission state to the policy,
  /// apply its decision, reschedule. The pump parks itself when the
  /// simulation went quiet since the last tick (nothing but the pump ran —
  /// between traffic bursts, or every job done) so it never keeps the event
  /// loop alive on its own; submit() reawakens it with the next arrival.
  void autoscale_pump();
  void schedule_autoscale_pump();

  ServeConfig config_;
  std::vector<JobSpec> jobs_;
  UnionGraph union_;
  AdmissionController admission_;
  JobTracker tracker_;
  sim::RuntimeEngine engine_;
  std::uint32_t next_job_ = 0;  ///< next closed-loop submission
  std::optional<slo::BatchPlanner> planner_;  ///< armed iff slo batching on
  /// Distinct input DataIds per job (filled only when protection is armed).
  std::vector<std::vector<core::DataId>> job_inputs_;
  std::vector<std::uint8_t> protected_jobs_;  ///< veto currently held
  std::optional<cluster::Autoscaler> autoscaler_;
  std::uint32_t scale_out_applied_ = 0;  ///< joins actually started
  std::uint32_t scale_in_applied_ = 0;   ///< drains actually started
  std::uint32_t jobs_finished_ = 0;  ///< retired + shed (pump stop condition)
  bool pump_scheduled_ = false;
  std::uint64_t last_pump_events_ = 0;  ///< engine events at the last tick
  std::uint32_t quiet_ticks_ = 0;       ///< consecutive pump-only ticks
};

}  // namespace mg::serve
