#include "serve/job_tracker.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mg::serve {

namespace {

/// Nearest-rank percentile of an already-sorted sample.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::max(1.0, std::min(rank, static_cast<double>(sorted.size()))));
  return sorted[index - 1];
}

}  // namespace

void JobTracker::bind(std::span<const std::uint32_t> task_job,
                      std::uint32_t num_jobs) {
  task_job_.assign(task_job.begin(), task_job.end());
  num_jobs_ = num_jobs;
  submit_us_.assign(num_jobs, -1.0);
  deadline_us_.assign(num_jobs, 0.0);
  arrival_us_.assign(num_jobs, -1.0);
  finish_us_.assign(num_jobs, -1.0);
  shed_.assign(num_jobs, 0);
  job_epoch_.assign(num_jobs, 0);
  counted_.assign(num_jobs, {});
}

void JobTracker::note_submitted(std::uint32_t job, double time_us,
                                double deadline_us) {
  MG_DCHECK(job < num_jobs_);
  submit_us_[job] = time_us;
  deadline_us_[job] = deadline_us;
}

void JobTracker::note_queue_depth(double time_us, std::uint32_t depth) {
  peak_queue_depth_ = std::max(peak_queue_depth_, depth);
  queue_depth_timeline_.emplace_back(time_us, depth);
}

void JobTracker::on_run_begin(const core::TaskGraph& graph,
                              const core::Platform& platform,
                              std::string_view scheduler_name) {
  (void)scheduler_name;
  MG_CHECK_MSG(task_job_.size() == graph.num_tasks(),
               "JobTracker::bind must map every union-graph task");
  graph_ = &graph;
  resident_.assign(platform.num_gpus,
                   std::vector<std::uint8_t>(graph.num_data(), 0));
  loaded_epoch_.assign(platform.num_gpus,
                       std::vector<std::uint32_t>(graph.num_data(), 0));
}

void JobTracker::on_event(const sim::InspectorEvent& event) {
  switch (event.kind) {
    case sim::InspectorEventKind::kJobArrival:
      ++epoch_;
      job_epoch_[event.id] = epoch_;
      arrival_us_[event.id] = event.time_us;
      ++in_flight_;
      peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
      break;
    case sim::InspectorEventKind::kJobComplete:
      finish_us_[event.id] = event.time_us;
      --in_flight_;
      counted_[event.id].clear();  // the job can never reuse again
      break;
    case sim::InspectorEventKind::kJobShed:
      shed_[event.id] = 1;
      break;
    case sim::InspectorEventKind::kLoadComplete:
      resident_[event.gpu][event.id] = 1;
      loaded_epoch_[event.gpu][event.id] = epoch_;
      break;
    case sim::InspectorEventKind::kEvict:
      resident_[event.gpu][event.id] = 0;
      break;
    case sim::InspectorEventKind::kGpuLost:
      std::fill(resident_[event.gpu].begin(), resident_[event.gpu].end(),
                std::uint8_t{0});
      break;
    case sim::InspectorEventKind::kTaskStart: {
      const std::uint32_t job = task_job_[event.id];
      for (core::DataId data : graph_->inputs(event.id)) {
        if (resident_[event.gpu][data] == 0) continue;
        if (loaded_epoch_[event.gpu][data] >= job_epoch_[job]) continue;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(event.gpu) << 32) | data;
        if (counted_[job].insert(key).second) {
          reuse_bytes_ += graph_->data_size(data);
          ++reuse_hits_;
        }
      }
      break;
    }
    default:
      break;
  }
}

sim::RunReport::Serving JobTracker::finalize(
    double makespan_us, std::string_view arrival_name) const {
  sim::RunReport::Serving serving;
  serving.enabled = true;
  serving.arrival = arrival_name;

  std::vector<double> latencies;
  for (std::uint32_t job = 0; job < num_jobs_; ++job) {
    if (submit_us_[job] >= 0.0) ++serving.jobs_submitted;
    if (shed_[job] != 0) {
      ++serving.jobs_shed;
      if (deadline_us_[job] > 0.0) ++serving.deadline_misses;
      continue;
    }
    if (finish_us_[job] < 0.0) continue;  // never completed (budget abort)
    ++serving.jobs_completed;
    const double submit =
        submit_us_[job] >= 0.0 ? submit_us_[job] : arrival_us_[job];
    const double latency = finish_us_[job] - submit;
    latencies.push_back(latency);
    if (deadline_us_[job] > 0.0) {
      if (latency <= deadline_us_[job]) {
        ++serving.deadline_hits;
      } else {
        ++serving.deadline_misses;
      }
    }
  }

  std::sort(latencies.begin(), latencies.end());
  serving.latency_p50_us = percentile(latencies, 50.0);
  serving.latency_p95_us = percentile(latencies, 95.0);
  serving.latency_p99_us = percentile(latencies, 99.0);
  if (!latencies.empty()) {
    double sum = 0.0;
    for (double latency : latencies) sum += latency;
    serving.latency_mean_us = sum / static_cast<double>(latencies.size());
    serving.latency_max_us = latencies.back();
  }
  if (makespan_us > 0.0) {
    serving.throughput_jobs_per_s =
        static_cast<double>(serving.jobs_completed) / (makespan_us / 1e6);
  }
  const std::uint32_t with_deadline =
      serving.deadline_hits + serving.deadline_misses;
  if (with_deadline > 0) {
    serving.deadline_miss_rate =
        static_cast<double>(serving.deadline_misses) / with_deadline;
  }
  serving.cross_job_reuse_bytes = reuse_bytes_;
  serving.cross_job_reuse_hits = reuse_hits_;
  serving.peak_jobs_in_flight = peak_in_flight_;
  serving.peak_queue_depth = peak_queue_depth_;
  serving.queue_depth_timeline = queue_depth_timeline_;
  return serving;
}

}  // namespace mg::serve
