#include "serve/admission.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mg::serve {

AdmissionController::AdmissionController(
    AdmissionConfig config, std::vector<std::uint64_t> job_footprint_bytes)
    : config_(config), footprint_(std::move(job_footprint_bytes)) {}

bool AdmissionController::fits(std::uint32_t job) const {
  if (in_flight_ == 0) return true;  // progress guarantee: never wedge empty
  if (config_.max_jobs_in_flight != 0 &&
      in_flight_ >= config_.max_jobs_in_flight) {
    return false;
  }
  if (config_.max_bytes_in_flight != 0 &&
      bytes_ + footprint_[job] > config_.max_bytes_in_flight) {
    return false;
  }
  return true;
}

void AdmissionController::account(std::uint32_t job) {
  ++in_flight_;
  bytes_ += footprint_[job];
}

AdmissionController::Decision AdmissionController::submit(
    std::uint32_t job, std::uint32_t priority, double now_us) {
  MG_DCHECK(job < footprint_.size());
  // Queued jobs keep their ordering: a new submission may only jump the
  // queue via priority, which try_admit_queued resolves — so an admissible
  // job with a non-empty queue still queues.
  if (queue_.empty() && fits(job)) {
    account(job);
    return Decision::kAdmit;
  }
  if (config_.max_queue_depth != 0 &&
      queue_.size() >= config_.max_queue_depth) {
    return Decision::kShed;
  }
  queue_.push_back(Waiting{job, priority, next_seq_++, now_us});
  return Decision::kQueue;
}

void AdmissionController::on_job_retired(std::uint32_t job) {
  MG_DCHECK(job < footprint_.size());
  MG_CHECK_MSG(in_flight_ > 0, "retirement without an in-flight job");
  --in_flight_;
  MG_DCHECK(bytes_ >= footprint_[job]);
  bytes_ -= footprint_[job];
}

std::optional<std::uint32_t> AdmissionController::try_admit_queued(
    double now_us) {
  if (queue_.empty()) return std::nullopt;
  // Effective priority ages with queue wait so a saturating high-tier
  // stream cannot starve the low tiers forever. With the default rate of 0
  // the comparison degenerates to the exact (priority desc, FIFO) order.
  const double rate = config_.aging_rate_per_s;
  const auto effective = [&](const Waiting& w) {
    return static_cast<double>(w.priority) +
           rate * (now_us - w.enqueue_us) / 1e6;
  };
  const auto best = std::min_element(
      queue_.begin(), queue_.end(),
      [&](const Waiting& a, const Waiting& b) {
        const double ea = effective(a);
        const double eb = effective(b);
        if (ea != eb) return ea > eb;
        return a.seq < b.seq;
      });
  if (!fits(best->job)) return std::nullopt;
  const std::uint32_t job = best->job;
  queue_.erase(best);
  account(job);
  return job;
}

bool AdmissionController::take(std::uint32_t job) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->job != job) continue;
    queue_.erase(it);
    account(job);
    return true;
  }
  return false;
}

std::vector<AdmissionController::QueueEntry> AdmissionController::queued()
    const {
  std::vector<QueueEntry> entries;
  entries.reserve(queue_.size());
  for (const Waiting& waiting : queue_) {
    entries.push_back(
        QueueEntry{waiting.job, waiting.priority, waiting.enqueue_us});
  }
  return entries;
}

}  // namespace mg::serve
