// Serving jobs — the unit of work of the streamed throughput engine.
//
// A job is one instance of a workload task graph submitted at some point of
// simulated time: it carries the template it instantiates, an optional
// latency deadline (an SLO measured from submission, not a scheduling
// input — the model has no preemption) and a priority ordering both the
// admission queue and — for priority-aware schedulers — task dispatch.
#pragma once

#include <cstdint>

namespace mg::serve {

struct JobSpec {
  /// Index into the template graphs handed to ServeEngine / the union
  /// builder. Jobs instantiated from the same template share its data
  /// (unless cross-job sharing is ablated away).
  std::uint32_t graph = 0;

  /// Latency SLO in microseconds from submission; 0 = no deadline. A shed
  /// job with a deadline counts as a miss (it never ran at all).
  double deadline_us = 0.0;

  /// Priority (higher first; FIFO within a level). Orders the admission
  /// queue, and is announced to the scheduler
  /// (Scheduler::notify_job_priority) so priority-aware policies — the
  /// work-queue family — dispatch a higher-priority job's tasks before
  /// lower-priority tasks queued on the same GPU.
  std::uint32_t priority = 0;

  /// Explicit warp footprint for every task of this job (GPU sharing).
  /// 0 inherits the template graph's per-task footprints; with neither
  /// set, a task occupies the whole device under the occupancy governor.
  std::uint32_t warps = 0;
};

}  // namespace mg::serve
