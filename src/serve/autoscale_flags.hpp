// Shared --autoscale-* flag block for the serving drivers
// (memsched_serve, fig_throughput, abl_autoscale): one place defines the
// flags and translates them into the AutoscalerConfig +
// EngineConfig::initial_active_nodes pair, so every binary spells the
// elastic-serving knobs identically (docs/CLI.md).
#pragma once

#include <cstdint>

#include "cluster/autoscaler.hpp"
#include "util/flags.hpp"

namespace mg::serve {

inline void add_autoscale_flags(util::Flags& flags) {
  flags
      .define_bool("autoscale", false,
                   "enable elastic autoscaling (needs --nodes >= 2): drain/"
                   "join whole nodes while serving")
      .define_int("autoscale-initial-nodes", 0,
                  "nodes serving at t=0; the rest start inactive and join "
                  "on scale-out (0 = all nodes)")
      .define_int("autoscale-min-nodes", 1,
                  "never drain below this many active nodes")
      .define_int("autoscale-max-nodes", 0,
                  "never join above this many active nodes (0 = all)")
      .define_int("autoscale-out-queue", 4,
                  "admission queue depth at/above which scale-out pressure "
                  "counts")
      .define_int("autoscale-in-queue", 0,
                  "queue depth at/below which (with idle nodes) scale-in "
                  "pressure counts")
      .define_double("autoscale-interval-us", 50'000.0,
                     "autoscaler sampling period in µs")
      .define_double("autoscale-cooldown-us", 200'000.0,
                     "minimum µs between two scale decisions")
      .define_int("autoscale-hysteresis", 2,
                  "consecutive breached samples required before a decision");
}

/// The policy config the flag block describes (enabled == --autoscale).
[[nodiscard]] inline cluster::AutoscalerConfig autoscale_from_flags(
    const util::Flags& flags) {
  cluster::AutoscalerConfig config;
  config.enabled = flags.get_bool("autoscale");
  config.min_nodes =
      static_cast<std::uint32_t>(flags.get_int("autoscale-min-nodes"));
  config.max_nodes =
      static_cast<std::uint32_t>(flags.get_int("autoscale-max-nodes"));
  config.scale_out_queue =
      static_cast<std::uint32_t>(flags.get_int("autoscale-out-queue"));
  config.scale_in_queue =
      static_cast<std::uint32_t>(flags.get_int("autoscale-in-queue"));
  config.check_interval_us = flags.get_double("autoscale-interval-us");
  config.cooldown_us = flags.get_double("autoscale-cooldown-us");
  config.hysteresis_checks =
      static_cast<std::uint32_t>(flags.get_int("autoscale-hysteresis"));
  return config;
}

/// EngineConfig::initial_active_nodes from the flag block.
[[nodiscard]] inline std::uint32_t autoscale_initial_nodes(
    const util::Flags& flags) {
  return static_cast<std::uint32_t>(flags.get_int("autoscale-initial-nodes"));
}

}  // namespace mg::serve
