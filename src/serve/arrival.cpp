#include "serve/arrival.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mg::serve {

std::string_view arrival_mode_name(ArrivalMode mode) {
  switch (mode) {
    case ArrivalMode::kPoisson: return "poisson";
    case ArrivalMode::kClosedLoop: return "closed-loop";
  }
  return "?";
}

std::optional<ArrivalMode> parse_arrival_mode(std::string_view name) {
  if (name == "poisson") return ArrivalMode::kPoisson;
  if (name == "closed-loop" || name == "closed") return ArrivalMode::kClosedLoop;
  return std::nullopt;
}

std::vector<double> poisson_arrival_times_us(std::uint32_t num_jobs,
                                             double rate_jobs_per_s,
                                             std::uint64_t seed) {
  MG_CHECK_MSG(rate_jobs_per_s > 0.0, "Poisson rate must be positive");
  util::Rng rng(seed);
  const double rate_per_us = rate_jobs_per_s / 1e6;
  std::vector<double> times;
  times.reserve(num_jobs);
  double t = 0.0;
  for (std::uint32_t i = 0; i < num_jobs; ++i) {
    // Inverse-CDF exponential draw; uniform() < 1, so log1p(-u) is finite.
    t += -std::log1p(-rng.uniform()) / rate_per_us;
    times.push_back(t);
  }
  return times;
}

}  // namespace mg::serve
