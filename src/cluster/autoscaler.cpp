#include "cluster/autoscaler.hpp"

#include "util/check.hpp"

namespace mg::cluster {

Autoscaler::Autoscaler(AutoscalerConfig config) : config_(config) {
  MG_CHECK_MSG(config_.min_nodes >= 1, "autoscaler needs min_nodes >= 1");
  MG_CHECK_MSG(config_.max_nodes == 0 || config_.max_nodes >= config_.min_nodes,
               "autoscaler max_nodes must be 0 or >= min_nodes");
  MG_CHECK_MSG(config_.check_interval_us > 0.0,
               "autoscaler check interval must be positive");
  MG_CHECK_MSG(config_.hysteresis_checks >= 1,
               "autoscaler needs at least one hysteresis check");
  MG_CHECK_MSG(config_.scale_in_queue < config_.scale_out_queue,
               "autoscaler scale_in_queue must be below scale_out_queue");
}

Autoscaler::Decision Autoscaler::sample(const Sample& sample) {
  if (!config_.enabled) return Decision::kHold;

  // The two pressures are mutually exclusive by construction
  // (scale_out_queue > scale_in_queue after the ctor checks), so at most one
  // streak grows per sample; the other resets — a mixed-signal stretch
  // converges to hold.
  const bool out_pressure = sample.queue_depth >= config_.scale_out_queue;
  const bool in_pressure = sample.queue_depth <= config_.scale_in_queue &&
                           sample.jobs_in_flight < sample.active_nodes;
  out_streak_ = out_pressure ? out_streak_ + 1 : 0;
  in_streak_ = in_pressure ? in_streak_ + 1 : 0;

  if (decided_once_ &&
      sample.now_us - last_decision_us_ < config_.cooldown_us) {
    return Decision::kHold;
  }

  if (out_streak_ >= config_.hysteresis_checks &&
      (config_.max_nodes == 0 || sample.active_nodes < config_.max_nodes)) {
    out_streak_ = 0;
    in_streak_ = 0;
    last_decision_us_ = sample.now_us;
    decided_once_ = true;
    ++scale_out_decisions_;
    return Decision::kScaleOut;
  }
  if (in_streak_ >= config_.hysteresis_checks &&
      sample.active_nodes > config_.min_nodes) {
    out_streak_ = 0;
    in_streak_ = 0;
    last_decision_us_ = sample.now_us;
    decided_once_ = true;
    ++scale_in_decisions_;
    return Decision::kScaleIn;
  }
  return Decision::kHold;
}

}  // namespace mg::cluster
