#include "cluster/locality.hpp"

#include <algorithm>

namespace mg::cluster {

namespace {
/// Weight applied to the internode leg of an input no healthy node can
/// serve: crossing a link to a suspected holder is likely to time out and
/// hedge, so such tasks should lose ties against healthy-servable work.
constexpr double kSuspectedCostFactor = 8.0;
}  // namespace

LocalityScheduler::LocalityScheduler(LocalityOptions options)
    : options_(options) {}

void LocalityScheduler::prepare(const core::TaskGraph& graph,
                                const core::Platform& platform,
                                std::uint64_t seed) {
  (void)seed;  // the policy is deterministic: no random choices to drive
  graph_ = &graph;
  platform_ = platform;
  pool_.clear();
  if (!streaming_) {
    pool_.reserve(graph.num_tasks());
    for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
      // Dependency-gated: only the initial ready frontier enters the pool;
      // the rest arrive through notify_task_retired.
      if (deps_ && graph.num_predecessors(task) != 0) continue;
      pool_.push_back(task);
    }
  }
  const std::uint32_t num_nodes =
      platform.is_cluster() ? platform.num_nodes : 1;
  node_local_.assign(static_cast<std::size_t>(num_nodes) * graph.num_data(),
                     0);
  node_suspected_.assign(num_nodes, 0);
  suspicion_armed_ = false;
  for (core::DataId data = 0; data < graph.num_data(); ++data) {
    const core::NodeId home =
        platform.is_cluster() ? platform.home_node_of(data) : 0;
    node_local_[static_cast<std::size_t>(home) * graph.num_data() + data] = 1;
  }
}

void LocalityScheduler::notify_job_arrived(
    std::uint32_t job, std::span<const core::TaskId> tasks) {
  (void)job;
  pool_.insert(pool_.end(), tasks.begin(), tasks.end());
}

void LocalityScheduler::notify_task_retired(
    core::TaskId task, std::span<const core::TaskId> enabled_successors) {
  (void)task;
  pool_.insert(pool_.end(), enabled_successors.begin(),
               enabled_successors.end());
}

void LocalityScheduler::notify_data_loaded(core::GpuId gpu,
                                           core::DataId data) {
  const core::NodeId node =
      platform_.is_cluster() ? platform_.node_of(gpu) : 0;
  node_local_[static_cast<std::size_t>(node) * graph_->num_data() + data] = 1;
}

void LocalityScheduler::forget_node(core::NodeId node) {
  if (!platform_.is_cluster()) return;
  const std::size_t row = static_cast<std::size_t>(node) * graph_->num_data();
  std::fill(node_local_.begin() + static_cast<std::ptrdiff_t>(row),
            node_local_.begin() +
                static_cast<std::ptrdiff_t>(row + graph_->num_data()),
            std::uint8_t{0});
}

bool LocalityScheduler::notify_node_draining(
    core::NodeId node, std::span<const core::GpuId> gpus,
    std::span<const core::TaskId> orphaned) {
  (void)gpus;
  forget_node(node);
  pool_.insert(pool_.begin(), orphaned.begin(), orphaned.end());
  return true;
}

bool LocalityScheduler::notify_node_lost(core::NodeId node,
                                         std::span<const core::GpuId> gpus,
                                         std::span<const core::TaskId> orphaned) {
  (void)gpus;
  forget_node(node);
  pool_.insert(pool_.begin(), orphaned.begin(), orphaned.end());
  return true;
}

void LocalityScheduler::notify_node_suspected(core::NodeId node) {
  if (node >= node_suspected_.size()) return;
  suspicion_armed_ = true;
  node_suspected_[node] = 1;
}

void LocalityScheduler::notify_node_suspicion_cleared(core::NodeId node) {
  if (node >= node_suspected_.size()) return;
  node_suspected_[node] = 0;
}

bool LocalityScheduler::served_by_healthy_node(core::DataId data) const {
  const std::size_t num_data = graph_->num_data();
  for (std::size_t node = 0; node < node_suspected_.size(); ++node) {
    if (node_suspected_[node] != 0) continue;
    if (node_local_[node * num_data + data] != 0) return true;
  }
  return false;
}

double LocalityScheduler::fetch_cost_us(core::GpuId gpu, core::TaskId task,
                                        const core::MemoryView& memory,
                                        std::uint64_t* present_bytes) const {
  const core::NodeId node =
      platform_.is_cluster() ? platform_.node_of(gpu) : 0;
  const std::size_t row =
      static_cast<std::size_t>(node) * graph_->num_data();
  double cost = 0.0;
  std::uint64_t present = 0;
  for (core::DataId data : graph_->inputs(task)) {
    const std::uint64_t size = graph_->data_size(data);
    if (memory.is_present_or_fetching(data)) {
      present += size;
    } else if (node_local_[row + data] != 0) {
      cost += platform_.transfer_time_us(size);
    } else {
      double remote = platform_.internode_transfer_time_us(size);
      if (suspicion_armed_ && !served_by_healthy_node(data))
        remote *= kSuspectedCostFactor;
      cost += remote;
    }
  }
  *present_bytes = present;
  return cost;
}

core::TaskId LocalityScheduler::pop_task(core::GpuId gpu,
                                         const core::MemoryView& memory) {
  if (pool_.empty()) return core::kInvalidTask;
  const std::size_t scan =
      options_.scan_limit > 0
          ? std::min(options_.scan_limit, pool_.size())
          : pool_.size();
  std::size_t best_index = 0;
  double best_cost = 0.0;
  std::uint64_t best_present = 0;
  bool have_best = false;
  for (std::size_t i = 0; i < scan; ++i) {
    std::uint64_t present = 0;
    const double cost = fetch_cost_us(gpu, pool_[i], memory, &present);
    if (!have_best || cost < best_cost ||
        (cost == best_cost && present > best_present)) {
      have_best = true;
      best_cost = cost;
      best_present = present;
      best_index = i;
      if (cost == 0.0 && present > 0) break;  // free task with reuse: take it
    }
  }
  const core::TaskId task = pool_[best_index];
  pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(best_index));
  return task;
}

}  // namespace mg::cluster
