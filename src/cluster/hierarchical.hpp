// Hierarchical (inter-node / intra-node) scheduling for multi-node
// platforms.
//
// The cluster generalization keeps the paper's schedulers intact: a
// HierarchicalScheduler first splits the task graph *between nodes* with the
// K-way hypergraph partitioner (minimizing the connectivity metric — which,
// with round-robin data homes, is exactly the inter-node network traffic a
// data item incurs when several nodes fetch it), then runs one unmodified
// intra-node scheduler per node over that node's sub-graph, seen through a
// translating adapter that maps between global and node-local task/data ids.
// Cross-node work stealing kicks in only when a node's sub-schedule drains:
// an idle node pops from the most-loaded remote node's inner scheduler, so
// partition imbalance cannot strand GPUs while other nodes still hold work.
//
// The wrapper is batch-only (begin_streaming declines; use
// cluster::LocalityScheduler for streamed multi-node runs) and declines
// orphan adoption on GPU loss (the engine requeues).
//
// Dependency-gated runs: on a single-node platform everything (including
// begin_dependencies and notify_task_retired) is delegated to the inner
// scheduler. On a real cluster the node sub-graphs carry no edges — cross-
// node edges have no local representation — so gating lives in the wrapper:
// a task the inner scheduler pops while it still has unretired (possibly
// remote) predecessors is *deferred* wrapper-side and handed out to the
// next requesting GPU once enabled. The inner scheduler's bookkeeping stays
// consistent (its pop simply completes later), and a cross-node edge costs
// exactly the remote-fetch chain the successor's input fetch already pays.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/eviction.hpp"
#include "core/memory_view.hpp"
#include "core/scheduler.hpp"
#include "hypergraph/partitioner.hpp"

namespace mg::cluster {

/// Creates one fresh intra-node scheduler (EAGER, DMDAR, mHFP, DARTS+LUF,
/// ...) per node. Called once per node during prepare().
using InnerSchedulerFactory =
    std::function<std::unique_ptr<core::Scheduler>()>;

struct HierarchicalOptions {
  /// Forwarded to the inter-node hypergraph partition (num_parts and seed
  /// are overwritten with the node count / run seed).
  hyper::PartitionerConfig partition;

  /// Cross-node stealing when a node's sub-schedule drains.
  bool steal = true;
};

class HierarchicalScheduler final : public core::Scheduler {
 public:
  HierarchicalScheduler(InnerSchedulerFactory factory,
                        HierarchicalOptions options = {});
  ~HierarchicalScheduler() override;

  [[nodiscard]] std::string_view name() const override { return name_; }

  void prepare(const core::TaskGraph& graph, const core::Platform& platform,
               std::uint64_t seed) override;

  [[nodiscard]] core::TaskId pop_task(core::GpuId gpu,
                                      const core::MemoryView& memory) override;

  [[nodiscard]] bool begin_dependencies() override {
    deps_ = true;
    return true;
  }

  void notify_task_retired(
      core::TaskId task,
      std::span<const core::TaskId> enabled_successors) override;

  void notify_task_complete(core::GpuId gpu, core::TaskId task) override;
  void notify_data_loaded(core::GpuId gpu, core::DataId data) override;
  void notify_data_evicted(core::GpuId gpu, core::DataId data) override;

  [[nodiscard]] std::vector<core::DataId> prefetch_hints(
      core::GpuId gpu) override;

  [[nodiscard]] core::EvictionPolicy* eviction_policy(core::GpuId gpu) override;

  /// Suspicion (network faults): a suspected node is skipped as a steal
  /// victim — loot would drag its inputs across the bad link. Its own inner
  /// scheduler keeps serving local pops; clearing restores it as a victim.
  void notify_node_suspected(core::NodeId node) override;
  void notify_node_suspicion_cleared(core::NodeId node) override;

  /// Cross-node steals so far (tasks popped from a remote node's inner
  /// scheduler); patched into RunReport::Cluster::steals by the bench
  /// driver.
  [[nodiscard]] std::uint64_t steal_count() const { return steals_; }

  /// Inter-node partition of the last prepare() (task -> node), empty on a
  /// single-node platform.
  [[nodiscard]] const std::vector<std::uint32_t>& task_node() const {
    return task_node_;
  }

 private:
  struct Node;  // per-node inner scheduler + id translation tables

  /// Steal one task for `gpu` (whose own node drained) from the remote node
  /// holding the most unpopped work.
  [[nodiscard]] core::TaskId steal_for(core::GpuId gpu,
                                       const core::MemoryView& memory);

  InnerSchedulerFactory factory_;
  HierarchicalOptions options_;
  std::string name_ = "hier";
  const core::TaskGraph* graph_ = nullptr;
  core::Platform platform_;
  /// Single-node platform: one inner over the whole graph, no translation.
  bool identity_ = true;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::uint32_t> task_node_;
  /// Where each popped task is bookkept: the node whose inner scheduler
  /// issued it and the node-local GPU id it believes ran it (differs from
  /// the physical GPU only for stolen tasks).
  struct Issued {
    std::uint32_t node = 0;
    core::GpuId local_gpu = core::kInvalidGpu;
  };
  std::vector<Issued> issued_;
  std::uint64_t steals_ = 0;
  /// Nodes currently suspected by the failure detector (network faults).
  std::vector<std::uint8_t> node_suspected_;
  /// Dependency gating (multi-node only; identity mode delegates): global
  /// enabled bitmap plus the wrapper-side hold queue for tasks an inner
  /// scheduler popped before their remote predecessors retired.
  bool deps_ = false;
  std::vector<std::uint8_t> enabled_;
  std::deque<core::TaskId> deferred_;
};

}  // namespace mg::cluster
