#include "cluster/hierarchical.hpp"

#include <algorithm>
#include <utility>

#include "core/task_graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/check.hpp"

namespace mg::cluster {

namespace {

/// MemoryView a node's inner scheduler sees: node-local data ids, backed by
/// the physical GPU's global view.
class TranslatingMemoryView final : public core::MemoryView {
 public:
  TranslatingMemoryView(const core::MemoryView& base,
                        const std::vector<core::DataId>& local_to_global)
      : base_(base), local_to_global_(local_to_global) {}

  [[nodiscard]] bool is_present(core::DataId data) const override {
    return base_.is_present(local_to_global_[data]);
  }
  [[nodiscard]] bool is_present_or_fetching(core::DataId data) const override {
    return base_.is_present_or_fetching(local_to_global_[data]);
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return base_.capacity_bytes();
  }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return base_.used_bytes();
  }

 private:
  const core::MemoryView& base_;
  const std::vector<core::DataId>& local_to_global_;
};

}  // namespace

/// EvictionPolicy adapter around one inner per-GPU policy: global GPU and
/// data ids on the engine side, node-local ids on the inner side. Data a
/// stolen task dragged onto the node (absent from the node's sub-graph, so
/// untranslatable) is evicted first — it is not part of the inner policy's
/// plan.
class HierarchicalEviction final : public core::EvictionPolicy {
 public:
  HierarchicalEviction(core::EvictionPolicy& inner, core::GpuId gpu_begin,
                       const std::vector<core::DataId>& global_to_local,
                       const std::vector<core::DataId>& local_to_global)
      : inner_(inner),
        gpu_begin_(gpu_begin),
        global_to_local_(global_to_local),
        local_to_global_(local_to_global) {}

  [[nodiscard]] std::string_view name() const override {
    return inner_.name();
  }

  void on_load(core::GpuId gpu, core::DataId data) override {
    if (const core::DataId local = global_to_local_[data];
        local != core::kInvalidData) {
      inner_.on_load(gpu - gpu_begin_, local);
    }
  }
  void on_use(core::GpuId gpu, core::DataId data) override {
    if (const core::DataId local = global_to_local_[data];
        local != core::kInvalidData) {
      inner_.on_use(gpu - gpu_begin_, local);
    }
  }
  void on_evict(core::GpuId gpu, core::DataId data) override {
    if (const core::DataId local = global_to_local_[data];
        local != core::kInvalidData) {
      inner_.on_evict(gpu - gpu_begin_, local);
    }
  }

  [[nodiscard]] core::DataId choose_victim(
      core::GpuId gpu, std::span<const core::DataId> candidates) override {
    local_candidates_.clear();
    for (core::DataId data : candidates) {
      const core::DataId local = global_to_local_[data];
      if (local == core::kInvalidData) return data;  // foreign data first
      local_candidates_.push_back(local);
    }
    const core::DataId local =
        inner_.choose_victim(gpu - gpu_begin_, local_candidates_);
    return local == core::kInvalidData ? core::kInvalidData
                                       : local_to_global_[local];
  }

 private:
  core::EvictionPolicy& inner_;
  core::GpuId gpu_begin_;
  const std::vector<core::DataId>& global_to_local_;
  const std::vector<core::DataId>& local_to_global_;
  std::vector<core::DataId> local_candidates_;
};

struct HierarchicalScheduler::Node {
  std::unique_ptr<core::Scheduler> inner;
  core::TaskGraph graph;     ///< node-local sub-graph
  core::Platform platform;   ///< single-node view of the GPU block
  core::GpuId gpu_begin = 0;
  core::GpuId gpu_end = 0;
  std::vector<core::TaskId> local_to_global_task;
  std::vector<core::DataId> local_to_global_data;
  std::vector<core::DataId> global_to_local_data;  ///< kInvalidData = absent
  /// Eviction adapters, one per local GPU whose inner policy is custom.
  std::vector<std::unique_ptr<HierarchicalEviction>> evictors;
  std::size_t unpopped = 0;  ///< local tasks not yet handed out
};

HierarchicalScheduler::HierarchicalScheduler(InnerSchedulerFactory factory,
                                             HierarchicalOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
  MG_CHECK_MSG(factory_ != nullptr,
               "HierarchicalScheduler needs an inner-scheduler factory");
  const std::unique_ptr<core::Scheduler> probe = factory_();
  name_ = "hier(" + std::string(probe->name()) + ")";
}

HierarchicalScheduler::~HierarchicalScheduler() = default;

void HierarchicalScheduler::prepare(const core::TaskGraph& graph,
                                    const core::Platform& platform,
                                    std::uint64_t seed) {
  graph_ = &graph;
  platform_ = platform;
  nodes_.clear();
  issued_.assign(graph.num_tasks(), Issued{});
  steals_ = 0;
  deferred_.clear();
  if (deps_) {
    enabled_.assign(graph.num_tasks(), 0);
    for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
      if (graph.num_predecessors(task) == 0) enabled_[task] = 1;
    }
  } else {
    enabled_.clear();
  }

  const std::uint32_t num_nodes =
      platform.is_cluster() ? platform.num_nodes : 1;
  identity_ = num_nodes == 1;
  node_suspected_.assign(num_nodes, 0);

  // Single node: no partition, no translation — delegate everything.
  if (identity_) {
    task_node_.clear();
    auto node = std::make_unique<Node>();
    node->inner = factory_();
    node->gpu_begin = 0;
    node->gpu_end = platform.num_gpus;
    if (deps_) {
      MG_CHECK_MSG(node->inner->begin_dependencies(),
                   "inner scheduler declined dependency gating");
    }
    node->inner->prepare(graph, platform, seed);
    nodes_.push_back(std::move(node));
    return;
  }

  // Inter-node split: K-way partition of the data-sharing hypergraph, with
  // per-node target shares proportional to GPU counts (node blocks may be
  // uneven when num_gpus % num_nodes != 0).
  hyper::PartitionerConfig config = options_.partition;
  config.num_parts = num_nodes;
  config.seed = seed;
  config.target_share.clear();
  for (core::NodeId node = 0; node < num_nodes; ++node) {
    config.target_share.push_back(static_cast<double>(
        platform.node_gpu_end(node) - platform.node_gpu_begin(node)));
  }
  const hyper::Hypergraph hypergraph = hyper::hypergraph_from_task_graph(graph);
  task_node_ = hyper::partition_hypergraph(hypergraph, config);

  for (core::NodeId node_id = 0; node_id < num_nodes; ++node_id) {
    auto node = std::make_unique<Node>();
    node->gpu_begin = platform.node_gpu_begin(node_id);
    node->gpu_end = platform.node_gpu_end(node_id);
    node->global_to_local_data.assign(graph.num_data(), core::kInvalidData);

    core::TaskGraphBuilder builder;
    std::vector<core::DataId> local_inputs;
    for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
      if (task_node_[task] != node_id) continue;
      local_inputs.clear();
      for (core::DataId data : graph.inputs(task)) {
        core::DataId& local = node->global_to_local_data[data];
        if (local == core::kInvalidData) {
          local = builder.add_data(graph.data_size(data));
          node->local_to_global_data.push_back(data);
        }
        local_inputs.push_back(local);
      }
      const core::TaskId local_task =
          builder.add_task(graph.task_flops(task), local_inputs);
      if (graph.task_output_bytes(task) > 0) {
        builder.set_task_output(local_task, graph.task_output_bytes(task));
      }
      node->local_to_global_task.push_back(task);
    }
    node->graph = builder.build();
    node->unpopped = node->local_to_global_task.size();

    // The inner scheduler sees a plain single-node machine: its node's GPU
    // block, full PCI bus, no network.
    node->platform = platform;
    node->platform.num_nodes = 1;
    node->platform.num_gpus = node->gpu_end - node->gpu_begin;

    node->inner = factory_();
    node->inner->prepare(node->graph, node->platform, seed + node_id);

    node->evictors.resize(node->platform.num_gpus);
    for (core::GpuId local = 0; local < node->platform.num_gpus; ++local) {
      if (core::EvictionPolicy* policy = node->inner->eviction_policy(local)) {
        node->evictors[local] = std::make_unique<HierarchicalEviction>(
            *policy, node->gpu_begin, node->global_to_local_data,
            node->local_to_global_data);
      }
    }
    nodes_.push_back(std::move(node));
  }
}

core::TaskId HierarchicalScheduler::pop_task(core::GpuId gpu,
                                             const core::MemoryView& memory) {
  if (identity_) return nodes_[0]->inner->pop_task(gpu, memory);

  if (deps_) {
    // Serve a deferred task whose (remote) predecessors have since retired.
    for (auto it = deferred_.begin(); it != deferred_.end(); ++it) {
      if (enabled_[*it] != 0) {
        const core::TaskId task = *it;
        deferred_.erase(it);
        return task;
      }
    }
  }

  const std::uint32_t node_id = platform_.node_of(gpu);
  Node& node = *nodes_[node_id];
  const TranslatingMemoryView view(memory, node.local_to_global_data);
  for (;;) {
    const core::TaskId local = node.inner->pop_task(gpu - node.gpu_begin, view);
    if (local == core::kInvalidTask) break;
    --node.unpopped;
    const core::TaskId task = node.local_to_global_task[local];
    issued_[task] = Issued{node_id, gpu - node.gpu_begin};
    if (!deps_ || enabled_[task] != 0) return task;
    // Popped before its last predecessor retired: hold it wrapper-side.
    deferred_.push_back(task);
  }
  if (options_.steal && node.unpopped == 0) return steal_for(gpu, memory);
  return core::kInvalidTask;
}

core::TaskId HierarchicalScheduler::steal_for(core::GpuId gpu,
                                              const core::MemoryView& memory) {
  // Victim: the node with the most unpopped work left.
  std::uint32_t victim_id = ~0u;
  std::size_t most = 0;
  for (std::uint32_t candidate = 0; candidate < nodes_.size(); ++candidate) {
    if (candidate == platform_.node_of(gpu)) continue;
    if (node_suspected_[candidate] != 0) continue;
    if (nodes_[candidate]->unpopped > most) {
      most = nodes_[candidate]->unpopped;
      victim_id = candidate;
    }
  }
  if (victim_id == ~0u) return core::kInvalidTask;

  Node& victim = *nodes_[victim_id];
  // Pop on behalf of a victim-local GPU (spread deterministically by thief
  // id): the inner scheduler keeps believing its own GPU ran the task, and
  // completion is routed back the same way via issued_.
  const core::GpuId proxy =
      gpu % (victim.gpu_end - victim.gpu_begin);
  const TranslatingMemoryView view(memory, victim.local_to_global_data);
  for (;;) {
    const core::TaskId local = victim.inner->pop_task(proxy, view);
    if (local == core::kInvalidTask) return core::kInvalidTask;
    --victim.unpopped;
    const core::TaskId task = victim.local_to_global_task[local];
    issued_[task] = Issued{victim_id, proxy};
    if (!deps_ || enabled_[task] != 0) {
      ++steals_;
      return task;
    }
    deferred_.push_back(task);  // blocked loot: held like a local pop
  }
}

void HierarchicalScheduler::notify_task_retired(
    core::TaskId task, std::span<const core::TaskId> enabled_successors) {
  if (identity_) {
    nodes_[0]->inner->notify_task_retired(task, enabled_successors);
    return;
  }
  for (core::TaskId succ : enabled_successors) enabled_[succ] = 1;
}

void HierarchicalScheduler::notify_task_complete(core::GpuId gpu,
                                                 core::TaskId task) {
  if (identity_) {
    nodes_[0]->inner->notify_task_complete(gpu, task);
    return;
  }
  const Issued& issued = issued_[task];
  Node& node = *nodes_[issued.node];
  // The sub-graphs keep global task order, so the local id is the rank of
  // `task` among the node's tasks.
  const auto it = std::lower_bound(node.local_to_global_task.begin(),
                                   node.local_to_global_task.end(), task);
  MG_CHECK_MSG(it != node.local_to_global_task.end() && *it == task,
               "completion for a task the node never owned");
  node.inner->notify_task_complete(
      issued.local_gpu,
      static_cast<core::TaskId>(it - node.local_to_global_task.begin()));
}

void HierarchicalScheduler::notify_data_loaded(core::GpuId gpu,
                                               core::DataId data) {
  if (identity_) {
    nodes_[0]->inner->notify_data_loaded(gpu, data);
    return;
  }
  Node& node = *nodes_[platform_.node_of(gpu)];
  if (const core::DataId local = node.global_to_local_data[data];
      local != core::kInvalidData) {
    node.inner->notify_data_loaded(gpu - node.gpu_begin, local);
  }
}

void HierarchicalScheduler::notify_data_evicted(core::GpuId gpu,
                                                core::DataId data) {
  if (identity_) {
    nodes_[0]->inner->notify_data_evicted(gpu, data);
    return;
  }
  Node& node = *nodes_[platform_.node_of(gpu)];
  if (const core::DataId local = node.global_to_local_data[data];
      local != core::kInvalidData) {
    node.inner->notify_data_evicted(gpu - node.gpu_begin, local);
  }
}

std::vector<core::DataId> HierarchicalScheduler::prefetch_hints(
    core::GpuId gpu) {
  if (identity_) return nodes_[0]->inner->prefetch_hints(gpu);
  Node& node = *nodes_[platform_.node_of(gpu)];
  std::vector<core::DataId> hints =
      node.inner->prefetch_hints(gpu - node.gpu_begin);
  for (core::DataId& data : hints) data = node.local_to_global_data[data];
  return hints;
}

void HierarchicalScheduler::notify_node_suspected(core::NodeId node) {
  if (node < node_suspected_.size()) node_suspected_[node] = 1;
}

void HierarchicalScheduler::notify_node_suspicion_cleared(core::NodeId node) {
  if (node < node_suspected_.size()) node_suspected_[node] = 0;
}

core::EvictionPolicy* HierarchicalScheduler::eviction_policy(core::GpuId gpu) {
  if (identity_) return nodes_[0]->inner->eviction_policy(gpu);
  Node& node = *nodes_[platform_.node_of(gpu)];
  return node.evictors[gpu - node.gpu_begin].get();
}

}  // namespace mg::cluster
