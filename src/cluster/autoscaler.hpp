// Autoscaler — the scale-out/scale-in policy of the elastic serving loop.
//
// A pure decision function over serving pressure: the ServeEngine samples
// its admission state (queue depth, jobs in flight) at a fixed interval and
// feeds each sample here; the policy answers hold / scale-out / scale-in.
// Mechanism lives elsewhere — the RuntimeEngine executes the decision as a
// graceful node join (begin_node_join: host-cache warm-up before traffic)
// or drain (begin_node_drain: fence, task pull-back, data migration,
// retire). Keeping the policy side-effect free makes it unit-testable
// without a simulation and keeps runs deterministic: decisions depend only
// on the sample sequence.
//
// Two standard guards prevent thrash:
//   * hysteresis — a breach must persist for `hysteresis_checks`
//     consecutive samples before it counts (one hot sample is noise);
//   * cooldown — after any decision the policy holds for `cooldown_us`,
//     giving the drain/warm-up machinery time to move the metrics before
//     the next judgement.
#pragma once

#include <cstdint>

namespace mg::cluster {

struct AutoscalerConfig {
  /// Master switch; disabled means sample() always holds (and the serving
  /// loop skips the sampling pump entirely, keeping fixed-topology reports
  /// byte-identical).
  bool enabled = false;

  /// Never drain below this many active nodes.
  std::uint32_t min_nodes = 1;

  /// Never join above this many active nodes; 0 = the platform's node
  /// count.
  std::uint32_t max_nodes = 0;

  /// Admission queue depth at or above which a sample counts as scale-out
  /// pressure.
  std::uint32_t scale_out_queue = 4;

  /// Scale-in pressure: queue depth at or below this *and* fewer jobs in
  /// flight than active nodes (some node is idle).
  std::uint32_t scale_in_queue = 0;

  /// Sampling period of the serving pump.
  double check_interval_us = 50'000.0;

  /// Minimum time between two decisions.
  double cooldown_us = 200'000.0;

  /// Consecutive breached samples required before a decision fires.
  std::uint32_t hysteresis_checks = 2;
};

class Autoscaler {
 public:
  enum class Decision : std::uint8_t { kHold, kScaleOut, kScaleIn };

  /// One serving-pressure observation, taken at `now_us` on the simulation
  /// clock.
  struct Sample {
    double now_us = 0.0;
    std::uint32_t queue_depth = 0;     ///< jobs parked in admission
    std::uint32_t jobs_in_flight = 0;  ///< jobs released, not yet retired
    std::uint32_t active_nodes = 0;    ///< serving nodes right now
  };

  explicit Autoscaler(AutoscalerConfig config);

  /// Judges one sample. Returns kScaleOut / kScaleIn at most once per
  /// cooldown window, and only when the respective pressure held for
  /// hysteresis_checks consecutive samples and the node bounds allow the
  /// move. The caller applies the decision (or drops it — the policy does
  /// not track topology itself, it re-reads active_nodes from each sample).
  [[nodiscard]] Decision sample(const Sample& sample);

  [[nodiscard]] const AutoscalerConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t scale_out_decisions() const {
    return scale_out_decisions_;
  }
  [[nodiscard]] std::uint32_t scale_in_decisions() const {
    return scale_in_decisions_;
  }

 private:
  AutoscalerConfig config_;
  std::uint32_t out_streak_ = 0;  ///< consecutive scale-out breaches
  std::uint32_t in_streak_ = 0;   ///< consecutive scale-in breaches
  double last_decision_us_ = 0.0;
  bool decided_once_ = false;  ///< cooldown gates only after a decision
  std::uint32_t scale_out_decisions_ = 0;
  std::uint32_t scale_in_decisions_ = 0;
};

}  // namespace mg::cluster
