// Locality-aware dynamic cluster scheduling — the DARTS-style alternative
// to the static hierarchical partition.
//
// One global pool of submitted tasks; each pop scores the candidates by the
// *fetch cost from the asking GPU's position in the cluster*: an input
// already resident (or in flight) costs nothing, an input the GPU's node can
// serve locally — data homed there, or previously pulled into its host
// cache — costs one PCI transfer, and an input that would have to cross the
// network costs PCI-out + network + PCI-in
// (Platform::internode_transfer_time_us). This extends DARTS's
// data-priority idea ("run tasks whose data is close") with node-distance
// costs; ties break toward the task with the most input bytes already on
// the GPU (the reuse the policy exists to exploit), then submission order.
//
// The scheduler is fully dynamic, so it also drives streamed (serving)
// runs: jobs enter the pool as they arrive and land on whichever node can
// fetch their data cheapest — multi-node job placement falls out of the
// same cost model. On a single-node platform every candidate is "local"
// and the policy degrades to greedy min-missing-bytes over the pool.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scheduler.hpp"

namespace mg::cluster {

struct LocalityOptions {
  /// Cap on candidates scored per pop (front of the pool first; 0 =
  /// unbounded). The paper's DARTS uses the same device to bound scheduling
  /// time on huge pools.
  std::size_t scan_limit = 0;
};

class LocalityScheduler final : public core::Scheduler {
 public:
  explicit LocalityScheduler(LocalityOptions options = {});

  [[nodiscard]] std::string_view name() const override { return "locality"; }

  void prepare(const core::TaskGraph& graph, const core::Platform& platform,
               std::uint64_t seed) override;

  [[nodiscard]] core::TaskId pop_task(core::GpuId gpu,
                                      const core::MemoryView& memory) override;

  [[nodiscard]] bool begin_streaming() override {
    streaming_ = true;
    return true;
  }
  void notify_job_arrived(std::uint32_t job,
                          std::span<const core::TaskId> tasks) override;

  /// Dependencies: the pool holds exactly the ready frontier — tasks enter
  /// at load (no predecessors), at job arrival (streamed, already enabled)
  /// or when their last predecessor retires.
  [[nodiscard]] bool begin_dependencies() override {
    deps_ = true;
    return true;
  }
  void notify_task_retired(
      core::TaskId task,
      std::span<const core::TaskId> enabled_successors) override;

  void notify_data_loaded(core::GpuId gpu, core::DataId data) override;

  /// Planned drain (or startup announcement of an initially-inactive node):
  /// the pulled orphans re-enter the pool at the front — they were next to
  /// run — and the node's locality row is forgotten: its host cache is wiped
  /// at retirement and its home shards migrate to survivors, so the cached
  /// knowledge would only mislead the cost model. notify_node_added keeps
  /// the default no-op — a joining node starts with an empty row and
  /// relearns through notify_data_loaded / warm-fills landing on its GPUs.
  [[nodiscard]] bool notify_node_draining(
      core::NodeId node, std::span<const core::GpuId> gpus,
      std::span<const core::TaskId> orphaned) override;

  /// Unplanned loss: same pool/row treatment as a drain, in one pass (no
  /// per-GPU forwarding).
  [[nodiscard]] bool notify_node_lost(
      core::NodeId node, std::span<const core::GpuId> gpus,
      std::span<const core::TaskId> orphaned) override;

  /// Suspicion (network faults): inputs whose every known holder is
  /// suspected get their internode cost weighted up by a fixed factor, so
  /// pops steer towards tasks whose data healthy nodes can serve — the
  /// locality analogue of "raise the suspected node's distance". Cleared
  /// suspicion restores the plain cost.
  void notify_node_suspected(core::NodeId node) override;
  void notify_node_suspicion_cleared(core::NodeId node) override;

 private:
  /// Clears the node's node_local_ row (stale after a drain or loss).
  void forget_node(core::NodeId node);

  /// Predicted time to fetch the missing inputs of `task` onto `gpu`, plus
  /// (via `present_bytes`) how much is already there.
  [[nodiscard]] double fetch_cost_us(core::GpuId gpu, core::TaskId task,
                                     const core::MemoryView& memory,
                                     std::uint64_t* present_bytes) const;

  /// True when some unsuspected node can serve `data` locally.
  [[nodiscard]] bool served_by_healthy_node(core::DataId data) const;

  LocalityOptions options_;
  bool streaming_ = false;
  bool deps_ = false;
  const core::TaskGraph* graph_ = nullptr;
  core::Platform platform_;
  std::vector<core::TaskId> pool_;  ///< submitted, unpopped (arrival order)
  /// node_local_[node * num_data + data] != 0 when the node can serve the
  /// data without touching the network: homed there, or observed landing on
  /// one of its GPUs (so it sits in the node's host cache). Single row on a
  /// single-node platform.
  std::vector<std::uint8_t> node_local_;
  /// Suspicion state (network faults); armed by the first
  /// notify_node_suspected so unsuspicious runs pay nothing extra.
  bool suspicion_armed_ = false;
  std::vector<std::uint8_t> node_suspected_;
};

}  // namespace mg::cluster
