// Dependency-free SVG line-chart renderer for the figure harness output:
// the paper's figures are GFlop/s-vs-working-set and MB-vs-working-set line
// charts with reference lines, which is exactly (and only) what this
// renders. No external plotting stack required to look at results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mg::viz {

struct Series {
  std::string label;
  std::vector<std::pair<double, double>> points;  ///< (x, y), sorted by x
};

struct ReferenceLine {
  std::string label;
  double value = 0.0;
  bool horizontal = true;  ///< horizontal at y=value, else vertical at x=value
};

struct ChartConfig {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::uint32_t width = 860;
  std::uint32_t height = 520;
  bool y_from_zero = true;
  bool logarithmic_y = false;
};

/// Renders the chart as a standalone SVG document.
std::string render_line_chart(const ChartConfig& config,
                              const std::vector<Series>& series,
                              const std::vector<ReferenceLine>& references = {});

/// Convenience: render and write to `path`. Returns false on I/O error.
bool write_line_chart(const ChartConfig& config,
                      const std::vector<Series>& series,
                      const std::vector<ReferenceLine>& references,
                      const std::string& path);

}  // namespace mg::viz
