// Parser for the CSV files produced by the figure harness (bench/fig*),
// including the `#` comment lines carrying the reference constants
// (gflops_max, fits-in-memory thresholds, per-point PCI limits).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mg::viz {

struct FigureData {
  std::vector<std::string> columns;

  /// Rows keyed by scheduler label, each a map column -> value for the
  /// numeric columns (the scheduler column is the key).
  struct Row {
    double working_set_mb = 0.0;
    std::map<std::string, double> values;
  };
  std::map<std::string, std::vector<Row>> by_scheduler;

  double gflops_max = 0.0;            ///< 0 when absent
  double threshold_both_fit_mb = 0.0;
  double threshold_one_fits_mb = 0.0;

  /// (working_set_mb, pci_limit_mb) pairs from the per-point comments.
  std::vector<std::pair<double, double>> pci_limit;

  [[nodiscard]] bool empty() const { return by_scheduler.empty(); }
};

/// Parses a harness CSV file. Returns an empty FigureData on I/O error.
FigureData parse_figure_csv(const std::string& path);

}  // namespace mg::viz
