#include "viz/figure_csv.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace mg::viz {
namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  return cells;
}

/// Extracts "key: value" or "key=value" numbers from a comment line.
bool scan_comment_number(const std::string& comment, const char* key,
                         double& out) {
  const std::size_t pos = comment.find(key);
  if (pos == std::string::npos) return false;
  const char* cursor = comment.c_str() + pos + std::strlen(key);
  while (*cursor == ':' || *cursor == '=' || *cursor == ' ') ++cursor;
  return std::sscanf(cursor, "%lf", &out) == 1;
}

}  // namespace

FigureData parse_figure_csv(const std::string& path) {
  FigureData data;
  std::ifstream input(path);
  if (!input.good()) return data;

  std::string line;
  while (std::getline(input, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      double value = 0.0;
      if (scan_comment_number(line, "gflops_max", value)) {
        data.gflops_max = value;
      }
      if (scan_comment_number(line, "threshold_both_fit_mb", value)) {
        data.threshold_both_fit_mb = value;
      }
      if (scan_comment_number(line, "threshold_one_fits_mb", value)) {
        data.threshold_one_fits_mb = value;
      }
      double ws = 0.0;
      if (scan_comment_number(line, "ws", ws) &&
          scan_comment_number(line, "pci_limit_mb", value)) {
        data.pci_limit.emplace_back(ws, value);
      }
      continue;
    }
    const std::vector<std::string> cells = split_csv_line(line);
    if (data.columns.empty()) {
      data.columns = cells;  // header row
      continue;
    }
    if (cells.size() != data.columns.size() || cells.size() < 3) continue;

    FigureData::Row row;
    std::string scheduler;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (data.columns[i] == "scheduler") {
        scheduler = cells[i];
      } else {
        char* end = nullptr;
        const double value = std::strtod(cells[i].c_str(), &end);
        if (end != cells[i].c_str()) {
          if (data.columns[i] == "working_set_mb") {
            row.working_set_mb = value;
          } else {
            row.values[data.columns[i]] = value;
          }
        }
      }
    }
    if (!scheduler.empty()) {
      data.by_scheduler[scheduler].push_back(std::move(row));
    }
  }
  return data;
}

}  // namespace mg::viz
