#include "viz/svg_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

#include "util/check.hpp"

namespace mg::viz {
namespace {

// Color-blind-safe qualitative palette (Okabe-Ito).
constexpr const char* kPalette[] = {
    "#0072B2", "#D55E00", "#009E73", "#CC79A7",
    "#E69F00", "#56B4E9", "#F0E442", "#000000",
};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

constexpr double kMarginLeft = 78.0;
constexpr double kMarginRight = 220.0;  // legend space
constexpr double kMarginTop = 46.0;
constexpr double kMarginBottom = 58.0;

std::string escape_xml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void append_format(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void append_format(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  out += buffer;
}

/// "Nice" tick step covering `span` with ~`target` intervals.
double nice_step(double span, int target) {
  if (span <= 0.0) return 1.0;
  const double raw = span / target;
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw)));
  const double normalized = raw / magnitude;
  double factor = 10.0;
  if (normalized <= 1.0) factor = 1.0;
  else if (normalized <= 2.0) factor = 2.0;
  else if (normalized <= 5.0) factor = 5.0;
  return factor * magnitude;
}

std::string compact_number(double value) {
  char buffer[32];
  if (std::fabs(value) >= 1e6) {
    std::snprintf(buffer, sizeof buffer, "%.3gM", value / 1e6);
  } else if (std::fabs(value) >= 1e3) {
    std::snprintf(buffer, sizeof buffer, "%.3gk", value / 1e3);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.4g", value);
  }
  return buffer;
}

}  // namespace

std::string render_line_chart(const ChartConfig& config,
                              const std::vector<Series>& series,
                              const std::vector<ReferenceLine>& references) {
  // Data ranges.
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -y_min;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  for (const ReferenceLine& ref : references) {
    if (ref.horizontal) {
      y_max = std::max(y_max, ref.value);
    } else {
      x_min = std::min(x_min, ref.value);
      x_max = std::max(x_max, ref.value);
    }
  }
  if (!std::isfinite(x_min)) {  // empty chart
    x_min = 0.0; x_max = 1.0; y_min = 0.0; y_max = 1.0;
  }
  if (config.y_from_zero && !config.logarithmic_y) y_min = 0.0;
  if (config.logarithmic_y) y_min = std::max(y_min, 1e-9);
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;
  y_max *= 1.04;  // headroom

  const double plot_w =
      static_cast<double>(config.width) - kMarginLeft - kMarginRight;
  const double plot_h =
      static_cast<double>(config.height) - kMarginTop - kMarginBottom;

  auto sx = [&](double x) {
    return kMarginLeft + (x - x_min) / (x_max - x_min) * plot_w;
  };
  auto sy = [&](double y) {
    if (config.logarithmic_y) {
      const double t = (std::log10(y) - std::log10(y_min)) /
                       (std::log10(y_max) - std::log10(y_min));
      return kMarginTop + (1.0 - t) * plot_h;
    }
    return kMarginTop + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;
  };

  std::string svg;
  append_format(svg,
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%u\" "
                "height=\"%u\" font-family=\"sans-serif\">\n",
                config.width, config.height);
  svg += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  append_format(svg,
                "<text x=\"%.0f\" y=\"24\" font-size=\"16\" "
                "font-weight=\"bold\">%s</text>\n",
                kMarginLeft, escape_xml(config.title).c_str());

  // Axes box.
  append_format(svg,
                "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
                "fill=\"none\" stroke=\"#444\"/>\n",
                kMarginLeft, kMarginTop, plot_w, plot_h);

  // Ticks and grid.
  const double x_step = nice_step(x_max - x_min, 6);
  for (double x = std::ceil(x_min / x_step) * x_step; x <= x_max + 1e-9;
       x += x_step) {
    append_format(svg,
                  "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                  "stroke=\"#ddd\"/>\n",
                  sx(x), kMarginTop, sx(x), kMarginTop + plot_h);
    append_format(svg,
                  "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
                  "text-anchor=\"middle\">%s</text>\n",
                  sx(x), kMarginTop + plot_h + 16.0,
                  compact_number(x).c_str());
  }
  if (!config.logarithmic_y) {
    const double y_step = nice_step(y_max - y_min, 6);
    for (double y = std::ceil(y_min / y_step) * y_step; y <= y_max + 1e-9;
         y += y_step) {
      append_format(svg,
                    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                    "stroke=\"#ddd\"/>\n",
                    kMarginLeft, sy(y), kMarginLeft + plot_w, sy(y));
      append_format(svg,
                    "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
                    "text-anchor=\"end\">%s</text>\n",
                    kMarginLeft - 6.0, sy(y) + 4.0,
                    compact_number(y).c_str());
    }
  } else {
    for (double y = std::pow(10.0, std::floor(std::log10(y_min)));
         y <= y_max; y *= 10.0) {
      if (y < y_min) continue;
      append_format(svg,
                    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                    "stroke=\"#ddd\"/>\n",
                    kMarginLeft, sy(y), kMarginLeft + plot_w, sy(y));
      append_format(svg,
                    "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
                    "text-anchor=\"end\">%s</text>\n",
                    kMarginLeft - 6.0, sy(y) + 4.0,
                    compact_number(y).c_str());
    }
  }

  // Axis labels.
  append_format(svg,
                "<text x=\"%.1f\" y=\"%.1f\" font-size=\"13\" "
                "text-anchor=\"middle\">%s</text>\n",
                kMarginLeft + plot_w / 2.0,
                static_cast<double>(config.height) - 14.0,
                escape_xml(config.x_label).c_str());
  append_format(svg,
                "<text x=\"18\" y=\"%.1f\" font-size=\"13\" "
                "text-anchor=\"middle\" transform=\"rotate(-90 18 %.1f)\">"
                "%s</text>\n",
                kMarginTop + plot_h / 2.0, kMarginTop + plot_h / 2.0,
                escape_xml(config.y_label).c_str());

  // Reference lines.
  for (const ReferenceLine& ref : references) {
    if (ref.horizontal) {
      if (ref.value < y_min || ref.value > y_max) continue;
      append_format(svg,
                    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                    "stroke=\"#888\" stroke-dasharray=\"6 4\"/>\n",
                    kMarginLeft, sy(ref.value), kMarginLeft + plot_w,
                    sy(ref.value));
      append_format(svg,
                    "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
                    "fill=\"#666\">%s</text>\n",
                    kMarginLeft + 6.0, sy(ref.value) - 4.0,
                    escape_xml(ref.label).c_str());
    } else {
      if (ref.value < x_min || ref.value > x_max) continue;
      append_format(svg,
                    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                    "stroke=\"#888\" stroke-dasharray=\"6 4\"/>\n",
                    sx(ref.value), kMarginTop, sx(ref.value),
                    kMarginTop + plot_h);
      append_format(svg,
                    "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
                    "fill=\"#666\" transform=\"rotate(-90 %.1f %.1f)\">%s"
                    "</text>\n",
                    sx(ref.value) - 4.0, kMarginTop + 12.0,
                    sx(ref.value) - 4.0, kMarginTop + 12.0,
                    escape_xml(ref.label).c_str());
    }
  }

  // Series polylines + markers + legend.
  for (std::size_t i = 0; i < series.size(); ++i) {
    const char* color = kPalette[i % kPaletteSize];
    std::string path_points;
    for (const auto& [x, y] : series[i].points) {
      append_format(path_points, "%.1f,%.1f ", sx(x), sy(y));
    }
    append_format(svg,
                  "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" "
                  "stroke-width=\"2\"/>\n",
                  path_points.c_str(), color);
    for (const auto& [x, y] : series[i].points) {
      append_format(svg,
                    "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n",
                    sx(x), sy(y), color);
    }
    const double legend_y = kMarginTop + 12.0 + 20.0 * static_cast<double>(i);
    append_format(svg,
                  "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                  "stroke=\"%s\" stroke-width=\"3\"/>\n",
                  kMarginLeft + plot_w + 14.0, legend_y,
                  kMarginLeft + plot_w + 40.0, legend_y, color);
    append_format(svg,
                  "<text x=\"%.1f\" y=\"%.1f\" font-size=\"12\">%s</text>\n",
                  kMarginLeft + plot_w + 46.0, legend_y + 4.0,
                  escape_xml(series[i].label).c_str());
  }

  svg += "</svg>\n";
  return svg;
}

bool write_line_chart(const ChartConfig& config,
                      const std::vector<Series>& series,
                      const std::vector<ReferenceLine>& references,
                      const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string svg = render_line_chart(config, series, references);
  const bool ok =
      std::fwrite(svg.data(), 1, svg.size(), file) == svg.size();
  std::fclose(file);
  return ok;
}

}  // namespace mg::viz
