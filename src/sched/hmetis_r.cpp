#include "sched/hmetis_r.hpp"

#include "hypergraph/hypergraph.hpp"

namespace mg::sched {

void HmetisScheduler::partition(const core::TaskGraph& graph,
                                const core::Platform& platform,
                                std::uint64_t seed,
                                std::vector<std::deque<core::TaskId>>& queues) {
  hyper::PartitionerConfig config = partitioner_config_;
  config.num_parts = platform.num_gpus;
  config.seed = seed;
  if (platform.is_heterogeneous() && config.target_share.empty()) {
    // Faster GPUs take proportionally more work.
    for (core::GpuId gpu = 0; gpu < platform.num_gpus; ++gpu) {
      config.target_share.push_back(platform.gflops_of(gpu));
    }
  }

  const hyper::Hypergraph hypergraph = hyper::hypergraph_from_task_graph(graph);
  parts_ = hyper::partition_hypergraph(hypergraph, config);

  // Tasks keep submission order within their part.
  for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
    queues[parts_[task]].push_back(task);
  }
}

}  // namespace mg::sched
