// hMETIS+R (Algorithm 3): hypergraph partitioning of the task set — one net
// per data item — into K balanced parts with few shared data, followed at
// runtime by Ready reordering and task stealing.
//
// The paper calls the closed-source hMETIS binary with UBfactor=1,
// V-cycles=2 and Nruns=20; we call our own multilevel partitioner with the
// equivalent configuration (see hypergraph/partitioner.hpp). Within a part,
// tasks keep their submission order — the paper notes the resulting lack of
// intra-partition temporal ordering as hMETIS+R's key weakness under memory
// pressure (Section V-C).
#pragma once

#include "hypergraph/partitioner.hpp"
#include "sched/work_queue_scheduler.hpp"

namespace mg::sched {

class HmetisScheduler final : public WorkQueueScheduler {
 public:
  explicit HmetisScheduler(bool stealing = true, bool ready = true,
                           std::size_t ready_window = kDefaultReadyWindow,
                           hyper::PartitionerConfig partitioner_config = {})
      : WorkQueueScheduler(stealing, ready, ready_window),
        partitioner_config_(partitioner_config) {}

  [[nodiscard]] std::string_view name() const override { return "hMETIS+R"; }

  /// Partition produced by the static phase (test hook).
  [[nodiscard]] const std::vector<std::uint32_t>& parts() const {
    return parts_;
  }

 protected:
  void partition(const core::TaskGraph& graph, const core::Platform& platform,
                 std::uint64_t seed,
                 std::vector<std::deque<core::TaskId>>& queues) override;

 private:
  hyper::PartitionerConfig partitioner_config_;
  std::vector<std::uint32_t> parts_;
};

}  // namespace mg::sched
