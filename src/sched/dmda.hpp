// DMDA / DMDAR — StarPU's "Deque Model Data Aware" scheduler (Algorithm 1)
// and its Ready variant (Algorithm 2).
//
// Push side (prepare): tasks are allocated in submission order to the GPU
// with the earliest predicted completion time
//     C_k(T_i) = finish_k + sum_{D_j in D(T_i), D_j not in InMem(k)}
//                comm_k(D_j) + comp_k(T_i)
// where InMem(k) is the *predicted* content of GPU_k's memory: data are
// added when a task is allocated and never removed — the model is unaware of
// the memory bound, which is precisely the weakness the paper exploits
// (DMDAR "does not have a global view ... cannot make a balance between
// prefetching and eviction").
//
// Pop side: DMDA serves each GPU's deque FIFO; DMDAR applies Ready
// reordering over a bounded lookahead window.
#pragma once

#include <deque>
#include <vector>

#include "core/scheduler.hpp"
#include "sched/ready.hpp"

namespace mg::sched {

class DmdaScheduler : public core::Scheduler {
 public:
  /// `ready` selects DMDAR (Ready reordering at pop time); `push_prefetch`
  /// enables Algorithm 1's push-time prefetch requests (StarPU behaviour),
  /// issued by the runtime as low-priority transfers.
  explicit DmdaScheduler(bool ready = true,
                         std::size_t ready_window = kDefaultReadyWindow,
                         bool push_prefetch = true)
      : ready_(ready),
        ready_window_(ready_window),
        push_prefetch_(push_prefetch) {}

  [[nodiscard]] std::string_view name() const override {
    return ready_ ? "DMDAR" : "DMDA";
  }

  void prepare(const core::TaskGraph& graph, const core::Platform& platform,
               std::uint64_t seed) override;

  [[nodiscard]] core::TaskId pop_task(core::GpuId gpu,
                                      const core::MemoryView& memory) override;

  /// Streaming: the push-phase model (predicted InMem / finish time) is kept
  /// across arrivals and each arriving job is allocated incrementally with
  /// the same earliest-predicted-completion rule, skipping dead GPUs.
  [[nodiscard]] bool begin_streaming() override {
    streaming_ = true;
    return true;
  }

  /// Dependencies: batch mode still allocates the whole graph up front (the
  /// push model is a prediction of the full run), but pops are gated on an
  /// enabled bitmap fed by notify_task_retired. In streaming mode a task is
  /// allocated when it is first announced — at job arrival for the initial
  /// ready frontier, or at a predecessor's retirement for the rest.
  [[nodiscard]] bool begin_dependencies() override {
    deps_ = true;
    return true;
  }

  void notify_job_arrived(std::uint32_t job,
                          std::span<const core::TaskId> tasks) override;

  void notify_task_retired(
      core::TaskId task,
      std::span<const core::TaskId> enabled_successors) override;

  /// GPU loss: re-allocates the orphans and the dead GPU's unpopped deque
  /// greedily onto the currently shortest surviving deques (the push-phase
  /// balance rule, re-applied to the displaced work).
  [[nodiscard]] bool notify_gpu_lost(
      core::GpuId gpu, std::span<const core::TaskId> orphaned) override;

  /// Occupancy hint (GPU sharing): pop_task then prefers, within the ready
  /// window, a task whose warp footprint fits the remaining budget of a
  /// partially-busy GPU.
  void notify_occupancy(core::GpuId gpu, std::uint32_t active_warps,
                        std::uint32_t free_warps) override;

  /// Algorithm 1 lines 7-9: the inputs of every task allocated to `gpu`,
  /// in first-need order (deduplicated).
  [[nodiscard]] std::vector<core::DataId> prefetch_hints(
      core::GpuId gpu) override;

  /// Predicted task allocation (push phase result), for tests.
  [[nodiscard]] const std::deque<core::TaskId>& queue(core::GpuId gpu) const {
    return queues_[gpu];
  }

 private:
  /// Push-phase allocation of one task (earliest predicted completion over
  /// the GPUs with `dead_[gpu] == 0`).
  void allocate(core::TaskId task);

  bool ready_;
  std::size_t ready_window_;
  bool push_prefetch_;
  bool streaming_ = false;
  bool deps_ = false;
  const core::TaskGraph* graph_ = nullptr;
  const core::Platform* platform_ = nullptr;
  std::vector<std::deque<core::TaskId>> queues_;
  std::vector<std::uint8_t> dead_;  ///< GPUs lost to fault injection
  /// Dependency gating: a queued task may only be popped once enabled
  /// (monotone — revocations after a fault are handled engine-side by
  /// parking). `allocated_` tracks streaming-mode placement so a task
  /// announced late (by notify_task_retired) still lands in a queue.
  std::vector<std::uint8_t> enabled_;
  std::vector<std::uint8_t> allocated_;
  /// Push-phase model state, persistent across streaming arrivals.
  std::vector<std::vector<bool>> in_mem_;
  std::vector<double> finish_us_;
  /// Occupancy-sharing hints (armed by the first notify_occupancy; sharing
  /// off leaves pop order untouched).
  bool occ_hinted_ = false;
  std::vector<std::uint32_t> occ_active_warps_;
  std::vector<std::uint32_t> occ_free_warps_;
};

}  // namespace mg::sched
