// mHFP — multi-GPU Hierarchical Fair Packing scheduler (Algorithm 4):
// static HFP packing + load balancing in prepare(), then Ready reordering
// and task stealing at runtime. The packing wall time is what the engine
// charges as scheduling cost ("mHFP" vs "mHFP no sched. time" in Figures
// 3/5).
#pragma once

#include "sched/hfp_packing.hpp"
#include "sched/work_queue_scheduler.hpp"

namespace mg::sched {

class HfpScheduler final : public WorkQueueScheduler {
 public:
  explicit HfpScheduler(bool stealing = true, bool ready = true,
                        std::size_t ready_window = kDefaultReadyWindow)
      : WorkQueueScheduler(stealing, ready, ready_window) {}

  [[nodiscard]] std::string_view name() const override { return "mHFP"; }

  [[nodiscard]] const HfpStats& stats() const { return stats_; }

 protected:
  void partition(const core::TaskGraph& graph, const core::Platform& platform,
                 std::uint64_t seed,
                 std::vector<std::deque<core::TaskId>>& queues) override {
    (void)seed;  // HFP is deterministic
    stats_ = HfpStats{};
    std::vector<double> speeds;
    if (platform.is_heterogeneous()) {
      for (core::GpuId gpu = 0; gpu < platform.num_gpus; ++gpu) {
        speeds.push_back(platform.gflops_of(gpu));
      }
    }
    const auto packages = hfp_partition(graph, platform.num_gpus,
                                        platform.gpu_memory_bytes, &stats_,
                                        speeds);
    for (core::GpuId gpu = 0; gpu < platform.num_gpus; ++gpu) {
      queues[gpu].assign(packages[gpu].begin(), packages[gpu].end());
    }
  }

 private:
  HfpStats stats_;
};

}  // namespace mg::sched
