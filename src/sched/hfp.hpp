// mHFP — multi-GPU Hierarchical Fair Packing scheduler (Algorithm 4):
// static HFP packing + load balancing in prepare(), then Ready reordering
// and task stealing at runtime. The packing wall time is what the engine
// charges as scheduling cost ("mHFP" vs "mHFP no sched. time" in Figures
// 3/5).
//
// Streaming: each arriving job is packed on its own (hfp_partition_subset
// over the job's tasks, one package per surviving GPU) and the heaviest
// packages go to the emptiest queues; stealing smooths the remainder.
#pragma once

#include <algorithm>

#include "sched/hfp_packing.hpp"
#include "sched/work_queue_scheduler.hpp"

namespace mg::sched {

class HfpScheduler final : public WorkQueueScheduler {
 public:
  explicit HfpScheduler(bool stealing = true, bool ready = true,
                        std::size_t ready_window = kDefaultReadyWindow)
      : WorkQueueScheduler(stealing, ready, ready_window) {}

  [[nodiscard]] std::string_view name() const override { return "mHFP"; }

  [[nodiscard]] const HfpStats& stats() const { return stats_; }

 protected:
  void partition(const core::TaskGraph& graph, const core::Platform& platform,
                 std::uint64_t seed,
                 std::vector<std::deque<core::TaskId>>& queues) override {
    (void)seed;  // HFP is deterministic
    stats_ = HfpStats{};
    std::vector<double> speeds;
    if (platform.is_heterogeneous()) {
      for (core::GpuId gpu = 0; gpu < platform.num_gpus; ++gpu) {
        speeds.push_back(platform.gflops_of(gpu));
      }
    }
    const auto packages = hfp_partition(graph, platform.num_gpus,
                                        platform.gpu_memory_bytes, &stats_,
                                        speeds);
    for (core::GpuId gpu = 0; gpu < platform.num_gpus; ++gpu) {
      queues[gpu].assign(packages[gpu].begin(), packages[gpu].end());
    }
  }

  void partition_arrival(const core::TaskGraph& graph,
                         const core::Platform& platform, std::uint32_t job,
                         std::span<const core::TaskId> tasks,
                         std::span<const std::uint8_t> dead,
                         std::vector<std::deque<core::TaskId>>& queues)
      override {
    (void)job;
    std::vector<core::GpuId> alive;
    for (core::GpuId gpu = 0; gpu < queues.size(); ++gpu) {
      if (dead[gpu] == 0) alive.push_back(gpu);
    }
    if (alive.empty()) return;  // engine already refuses to run here
    std::vector<double> speeds;
    if (platform.is_heterogeneous()) {
      for (core::GpuId gpu : alive) speeds.push_back(platform.gflops_of(gpu));
    }
    auto packages = hfp_partition_subset(
        graph, tasks, static_cast<std::uint32_t>(alive.size()),
        platform.gpu_memory_bytes, &stats_, speeds);

    // Heaviest package onto the currently emptiest surviving queue.
    std::stable_sort(packages.begin(), packages.end(),
                     [&graph](const auto& a, const auto& b) {
                       auto load = [&graph](const auto& package) {
                         double flops = 0.0;
                         for (core::TaskId task : package) {
                           flops += graph.task_flops(task);
                         }
                         return flops;
                       };
                       return load(a) > load(b);
                     });
    std::stable_sort(alive.begin(), alive.end(),
                     [&queues](core::GpuId a, core::GpuId b) {
                       return queues[a].size() < queues[b].size();
                     });
    for (std::size_t i = 0; i < packages.size(); ++i) {
      auto& queue = queues[alive[i]];
      queue.insert(queue.end(), packages[i].begin(), packages[i].end());
    }
  }

 private:
  HfpStats stats_;
};

}  // namespace mg::sched
