// The "Ready" reordering heuristic (Algorithm 2): among the tasks queued on
// a GPU, prefer the one whose missing input volume is smallest. StarPU's
// dmdar applies it at pop time over the worker's *entire* local queue — the
// paper notes both the benefit (DMDAR escapes EAGER's LRU pathology by
// jumping to tasks whose column is already resident, Section V-B) and the
// cost (DMDAR "suffers from a large scheduling time induced by looking at
// all the tasks", Section V-F). A bounded `window` is available for
// ablation studies.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>

#include "core/ids.hpp"
#include "core/memory_view.hpp"
#include "core/task_graph.hpp"

namespace mg::sched {

inline constexpr std::size_t kDefaultReadyWindow =
    std::numeric_limits<std::size_t>::max();

/// Removes and returns the task among the first `window` entries of `queue`
/// requiring the fewest missing input bytes (ties: earliest in queue).
/// Returns kInvalidTask when the queue is empty.
inline core::TaskId pop_ready(std::deque<core::TaskId>& queue,
                              const core::TaskGraph& graph,
                              const core::MemoryView& memory,
                              std::size_t window = kDefaultReadyWindow) {
  if (queue.empty()) return core::kInvalidTask;
  const std::size_t scan = window < queue.size() ? window : queue.size();
  std::size_t best_index = 0;
  std::uint64_t best_missing = ~std::uint64_t{0};
  for (std::size_t i = 0; i < scan; ++i) {
    std::uint64_t missing = 0;
    for (core::DataId data : graph.inputs(queue[i])) {
      if (!memory.is_present_or_fetching(data)) missing += graph.data_size(data);
    }
    if (missing < best_missing) {
      best_missing = missing;
      best_index = i;
      if (missing == 0) break;  // cannot do better than zero transfers
    }
  }
  const core::TaskId task = queue[best_index];
  queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best_index));
  return task;
}

}  // namespace mg::sched
