// The "Ready" reordering heuristic (Algorithm 2): among the tasks queued on
// a GPU, prefer the one whose missing input volume is smallest. StarPU's
// dmdar applies it at pop time over the worker's *entire* local queue — the
// paper notes both the benefit (DMDAR escapes EAGER's LRU pathology by
// jumping to tasks whose column is already resident, Section V-B) and the
// cost (DMDAR "suffers from a large scheduling time induced by looking at
// all the tasks", Section V-F). A bounded `window` is available for
// ablation studies.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "core/ids.hpp"
#include "core/memory_view.hpp"
#include "core/task_graph.hpp"

namespace mg::sched {

inline constexpr std::size_t kDefaultReadyWindow =
    std::numeric_limits<std::size_t>::max();

/// Removes and returns the task among the first `window` entries of `queue`
/// requiring the fewest missing input bytes (ties: earliest in queue).
/// Returns kInvalidTask when the queue is empty.
///
/// On a dependency-gated run, `enabled` (indexed by TaskId) restricts the
/// choice to tasks whose predecessors all retired. The window then bounds
/// how many *enabled* candidates one decision inspects — the scan itself
/// walks the whole queue, because a bounded positional window over a queue
/// whose head is dependency-blocked could starve forever (the head never
/// leaves, the window never moves). Returns kInvalidTask when no queued
/// task is enabled.
inline core::TaskId pop_ready(std::deque<core::TaskId>& queue,
                              const core::TaskGraph& graph,
                              const core::MemoryView& memory,
                              std::size_t window = kDefaultReadyWindow,
                              const std::vector<std::uint8_t>* enabled =
                                  nullptr) {
  if (queue.empty()) return core::kInvalidTask;
  std::size_t best_index = queue.size();
  std::uint64_t best_missing = ~std::uint64_t{0};
  std::size_t inspected = 0;
  for (std::size_t i = 0; i < queue.size() && inspected < window; ++i) {
    if (enabled != nullptr && (*enabled)[queue[i]] == 0) continue;
    ++inspected;
    std::uint64_t missing = 0;
    for (core::DataId data : graph.inputs(queue[i])) {
      if (!memory.is_present_or_fetching(data)) missing += graph.data_size(data);
    }
    if (missing < best_missing) {
      best_missing = missing;
      best_index = i;
      if (missing == 0) break;  // cannot do better than zero transfers
    }
  }
  if (best_index == queue.size()) return core::kInvalidTask;
  const core::TaskId task = queue[best_index];
  queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best_index));
  return task;
}

/// FIFO pop restricted to dependency-enabled tasks: removes and returns the
/// earliest queued task with a set `enabled` bit, or kInvalidTask when none
/// is enabled. Skipped (blocked) tasks keep their queue positions.
inline core::TaskId pop_first_enabled(
    std::deque<core::TaskId>& queue,
    const std::vector<std::uint8_t>& enabled) {
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (enabled[*it] != 0) {
      const core::TaskId task = *it;
      queue.erase(it);
      return task;
    }
  }
  return core::kInvalidTask;
}

}  // namespace mg::sched
