// Hierarchical Fair Packing (HFP) — the static packing algorithm of the
// authors' earlier single-GPU work, extended to multi-GPU as in Algorithm 4.
//
// Phase 1 packs tasks into packages whose cumulated input footprint fits in
// GPU memory, by repeatedly merging, among the currently smallest packages,
// the pair sharing the most input bytes. Phase 2 keeps merging by affinity —
// ignoring the memory bound, since packages are *sequenced*, not co-resident
// — until exactly K packages remain. Task order inside a package is
// preserved across merges (concatenation), which is what keeps the temporal
// locality achieved by earlier merges.
//
// The multi-GPU load balancing step then equalizes package loads: tasks are
// taken from the tail of the most loaded package and appended to the least
// loaded one until every package is within one task of the average load
// (tails have the most communication slack, per the paper).
//
// Deliberately faithful to the paper's cost profile: packing is quadratic-ish
// in the number of packages per pass, which is why mHFP's scheduling time
// dominates at large working sets (Figures 3 and 5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/ids.hpp"
#include "core/task_graph.hpp"

namespace mg::sched {

struct HfpStats {
  std::uint32_t phase1_merges = 0;
  std::uint32_t phase2_merges = 0;
  std::uint32_t balance_moves = 0;
  std::uint32_t phase1_packages = 0;  ///< packages when phase 1 stopped
};

/// Runs HFP phases 1 and 2: returns exactly `num_parts` ordered task lists
/// (some possibly empty if the graph has fewer tasks than parts). The memory
/// bound only constrains phase-1 merges.
std::vector<std::vector<core::TaskId>> hfp_build_packages(
    const core::TaskGraph& graph, std::uint32_t num_parts,
    std::uint64_t memory_bytes, HfpStats* stats = nullptr);

/// Algorithm 4 lines 2-6: balances package loads (task flops) by moving
/// tasks from the tail of the most loaded package to the least loaded one.
/// On heterogeneous platforms pass per-GPU speeds (`speeds[p]`, arbitrary
/// units): loads are then balanced as predicted *durations* (flops/speed).
void hfp_balance_loads(const core::TaskGraph& graph,
                       std::vector<std::vector<core::TaskId>>& packages,
                       HfpStats* stats = nullptr,
                       std::span<const double> speeds = {});

/// Complete mHFP static phase: packages + balancing.
std::vector<std::vector<core::TaskId>> hfp_partition(
    const core::TaskGraph& graph, std::uint32_t num_parts,
    std::uint64_t memory_bytes, HfpStats* stats = nullptr,
    std::span<const double> speeds = {});

/// HFP phases 1+2 restricted to a task subset (streaming: the tasks of one
/// arriving job). Affinity is still computed over the full graph's data
/// sizes; only `tasks` are packed.
std::vector<std::vector<core::TaskId>> hfp_build_packages_subset(
    const core::TaskGraph& graph, std::span<const core::TaskId> tasks,
    std::uint32_t num_parts, std::uint64_t memory_bytes,
    HfpStats* stats = nullptr);

/// Subset packing + load balancing, the streaming counterpart of
/// hfp_partition.
std::vector<std::vector<core::TaskId>> hfp_partition_subset(
    const core::TaskGraph& graph, std::span<const core::TaskId> tasks,
    std::uint32_t num_parts, std::uint64_t memory_bytes,
    HfpStats* stats = nullptr, std::span<const double> speeds = {});

}  // namespace mg::sched
