#include "sched/work_queue_scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mg::sched {

void WorkQueueScheduler::prepare(const core::TaskGraph& graph,
                                 const core::Platform& platform,
                                 std::uint64_t seed) {
  graph_ = &graph;
  platform_ = &platform;
  queues_.assign(platform.num_gpus, {});
  dead_.assign(platform.num_gpus, 0);
  inactive_.assign(platform.num_gpus, 0);
  unavailable_.assign(platform.num_gpus, 0);
  suspected_.assign(platform.num_gpus, 0);
  placement_scratch_.assign(platform.num_gpus, 0);
  suspicion_armed_ = false;
  occ_hinted_ = false;
  occ_active_warps_.assign(platform.num_gpus, 0);
  occ_free_warps_.assign(platform.num_gpus, 0);
  steal_events_ = 0;
  if (deps_) {
    enabled_.assign(graph.num_tasks(), 0);
    placed_.assign(graph.num_tasks(), streaming_ ? 0 : 1);
    eligible_.assign(graph.num_tasks(), 0);
    if (!streaming_) {
      for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
        if (graph.num_predecessors(task) == 0) enabled_[task] = 1;
      }
    }
  } else {
    enabled_.clear();
    placed_.clear();
    eligible_.clear();
  }
  if (streaming_) return;  // queues fill per arriving job
  partition(graph, platform, seed, queues_);

  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue.size();
  MG_CHECK_MSG(total == graph.num_tasks(),
               "partition() must distribute every task exactly once");
}

void WorkQueueScheduler::notify_job_arrived(
    std::uint32_t job, std::span<const core::TaskId> tasks) {
  if (has_priorities_) {
    const std::uint32_t priority =
        job < job_priority_.size() ? job_priority_[job] : 0;
    if (task_priority_.size() < graph_->num_tasks()) {
      task_priority_.resize(graph_->num_tasks(), 0);
    }
    for (core::TaskId task : tasks) task_priority_[task] = priority;
  }
  if (deps_) {
    // On a dependency-gated stream the engine hands over only the job's
    // initially-enabled tasks; the rest are placed at their enablement.
    for (core::TaskId task : tasks) {
      enabled_[task] = 1;
      placed_[task] = 1;
    }
  }
  partition_arrival(*graph_, *platform_, job, tasks, placement_mask(),
                    queues_);
}

void WorkQueueScheduler::notify_task_retired(
    core::TaskId task, std::span<const core::TaskId> enabled_successors) {
  (void)task;
  for (core::TaskId succ : enabled_successors) {
    enabled_[succ] = 1;
    if (streaming_ && placed_[succ] == 0) {
      // Late placement: the job id is unknown here (jobs are an engine
      // concept), so the task inherits priority 0 and the default
      // least-loaded placement of a one-task block.
      placed_[succ] = 1;
      const core::TaskId block[1] = {succ};
      partition_arrival(*graph_, *platform_, 0, block, placement_mask(),
                        queues_);
    }
  }
}

void WorkQueueScheduler::notify_occupancy(core::GpuId gpu,
                                          std::uint32_t active_warps,
                                          std::uint32_t free_warps) {
  occ_hinted_ = true;
  occ_active_warps_[gpu] = active_warps;
  occ_free_warps_[gpu] = free_warps;
}

void WorkQueueScheduler::notify_job_priority(std::uint32_t job,
                                             std::uint32_t priority) {
  if (job >= job_priority_.size()) job_priority_.resize(job + 1, 0);
  job_priority_[job] = priority;
  if (priority > 0) has_priorities_ = true;
}

void WorkQueueScheduler::partition_arrival(
    const core::TaskGraph& graph, const core::Platform& platform,
    std::uint32_t job, std::span<const core::TaskId> tasks,
    std::span<const std::uint8_t> dead,
    std::vector<std::deque<core::TaskId>>& queues) {
  (void)graph;
  (void)platform;
  (void)job;
  core::GpuId target = core::kInvalidGpu;
  std::size_t least = ~std::size_t{0};
  for (core::GpuId gpu = 0; gpu < queues.size(); ++gpu) {
    if (dead[gpu] != 0) continue;
    if (queues[gpu].size() < least) {
      least = queues[gpu].size();
      target = gpu;
    }
  }
  MG_CHECK_MSG(target != core::kInvalidGpu, "no surviving GPU for arrival");
  queues[target].insert(queues[target].end(), tasks.begin(), tasks.end());
}

core::TaskId WorkQueueScheduler::pop_task(core::GpuId gpu,
                                          const core::MemoryView& memory) {
  std::deque<core::TaskId>& queue = queues_[gpu];
  if (queue.empty() && stealing_) steal(gpu);
  if (queue.empty()) return core::kInvalidTask;
  // Sharing mode, GPU partially busy: prefer a task that fits the free
  // warps so it co-runs instead of blocking at admission. Strict job
  // priority outranks packing.
  if (occ_hinted_ && !has_priorities_ && occ_active_warps_[gpu] > 0) {
    const core::TaskId fit = pop_occupancy_fit(gpu);
    if (fit != core::kInvalidTask) return fit;
  }
  if (deps_) return pop_task_deps(gpu, memory);
  std::size_t window = ready_window_;
  if (has_priorities_) {
    // Serve strictly by job priority: only the front run of top-priority
    // tasks is eligible this pop (Ready may still reorder within it).
    window = std::min(window, promote_priority_front(queue));
  }
  if (!ready_ || window <= 1) {
    const core::TaskId task = queue.front();
    queue.pop_front();
    return task;
  }
  return pop_ready(queue, *graph_, memory, window);
}

core::TaskId WorkQueueScheduler::pop_task_deps(core::GpuId gpu,
                                               const core::MemoryView& memory) {
  std::deque<core::TaskId>& queue = queues_[gpu];
  if (!has_priorities_) {
    if (!ready_) return pop_first_enabled(queue, enabled_);
    return pop_ready(queue, *graph_, memory, ready_window_, &enabled_);
  }
  // Strict job priority among *enabled* tasks only. A dependency-blocked
  // high-priority run must not mask runnable lower-priority work — its
  // predecessors may be exactly that work, and masking it would deadlock
  // the queue.
  std::uint32_t top = 0;
  bool any_enabled = false;
  for (core::TaskId task : queue) {
    if (enabled_[task] == 0) continue;
    top = std::max(top, task_priority(task));
    any_enabled = true;
  }
  if (!any_enabled) return core::kInvalidTask;
  for (core::TaskId task : queue) {
    eligible_[task] =
        (enabled_[task] != 0 && task_priority(task) == top) ? 1 : 0;
  }
  const core::TaskId popped =
      ready_ ? pop_ready(queue, *graph_, memory, ready_window_, &eligible_)
             : pop_first_enabled(queue, eligible_);
  for (core::TaskId task : queue) eligible_[task] = 0;
  if (popped != core::kInvalidTask) eligible_[popped] = 0;
  return popped;
}

core::TaskId WorkQueueScheduler::pop_occupancy_fit(core::GpuId gpu) {
  std::deque<core::TaskId>& queue = queues_[gpu];
  const std::uint32_t free = occ_free_warps_[gpu];
  const std::size_t window = std::min(queue.size(), ready_window_);
  for (std::size_t i = 0; i < window; ++i) {
    const core::TaskId task = queue[i];
    if (deps_ && enabled_[task] == 0) continue;
    // A zero footprint means "whole device" — it never fits a busy GPU.
    const std::uint32_t warps = graph_->task_warps(task);
    if (warps != 0 && warps <= free) {
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
      return task;
    }
  }
  return core::kInvalidTask;
}

std::size_t WorkQueueScheduler::promote_priority_front(
    std::deque<core::TaskId>& queue) {
  std::uint32_t top = 0;
  for (core::TaskId task : queue) {
    top = std::max(top, task_priority(task));
  }
  const auto is_top = [this, top](core::TaskId task) {
    return task_priority(task) == top;
  };
  std::stable_partition(queue.begin(), queue.end(), is_top);
  return static_cast<std::size_t>(
      std::count_if(queue.begin(), queue.end(), is_top));
}

bool WorkQueueScheduler::evacuate(std::span<const core::GpuId> gpus,
                                  std::span<const core::TaskId> orphaned) {
  core::GpuId target = core::kInvalidGpu;
  std::size_t least = ~std::size_t{0};
  for (core::GpuId other = 0; other < queues_.size(); ++other) {
    if (!serving(other)) continue;
    if (queues_[other].size() < least) {
      least = queues_[other].size();
      target = other;
    }
  }
  if (target == core::kInvalidGpu) {
    for (core::GpuId gpu : gpus) queues_[gpu].clear();
    return false;  // no survivor: let the engine deal with the orphans
  }

  // Orphans were already popped (about to run) — front of the target queue;
  // the unpopped remainders join the tail, where stealing rebalances them.
  std::deque<core::TaskId>& to = queues_[target];
  to.insert(to.begin(), orphaned.begin(), orphaned.end());
  for (core::GpuId gpu : gpus) {
    std::deque<core::TaskId>& from = queues_[gpu];
    to.insert(to.end(), from.begin(), from.end());
    from.clear();
  }
  return true;
}

bool WorkQueueScheduler::notify_gpu_lost(
    core::GpuId gpu, std::span<const core::TaskId> orphaned) {
  dead_[gpu] = 1;
  unavailable_[gpu] = 1;
  const core::GpuId lost[1] = {gpu};
  return evacuate(lost, orphaned);
}

bool WorkQueueScheduler::notify_node_draining(
    core::NodeId node, std::span<const core::GpuId> gpus,
    std::span<const core::TaskId> orphaned) {
  (void)node;
  for (core::GpuId gpu : gpus) {
    inactive_[gpu] = 1;
    unavailable_[gpu] = 1;
  }
  return evacuate(gpus, orphaned);
}

void WorkQueueScheduler::notify_node_added(core::NodeId node,
                                           std::span<const core::GpuId> gpus) {
  (void)node;
  for (core::GpuId gpu : gpus) {
    inactive_[gpu] = 0;
    unavailable_[gpu] = dead_[gpu];
  }
  // The returning queues start empty; pop-time stealing pulls work over
  // without an explicit rebalance here.
}

bool WorkQueueScheduler::notify_node_lost(
    core::NodeId node, std::span<const core::GpuId> gpus,
    std::span<const core::TaskId> orphaned) {
  (void)node;
  for (core::GpuId gpu : gpus) {
    dead_[gpu] = 1;
    unavailable_[gpu] = 1;
  }
  return evacuate(gpus, orphaned);
}

void WorkQueueScheduler::notify_node_suspected(core::NodeId node) {
  suspicion_armed_ = true;
  for (core::GpuId gpu = platform_->node_gpu_begin(node);
       gpu < platform_->node_gpu_end(node); ++gpu) {
    suspected_[gpu] = 1;
  }
}

void WorkQueueScheduler::notify_node_suspicion_cleared(core::NodeId node) {
  for (core::GpuId gpu = platform_->node_gpu_begin(node);
       gpu < platform_->node_gpu_end(node); ++gpu) {
    suspected_[gpu] = 0;
  }
}

std::span<const std::uint8_t> WorkQueueScheduler::placement_mask() {
  if (!suspicion_armed_) return unavailable_;
  bool any_clear = false;
  for (std::size_t gpu = 0; gpu < unavailable_.size(); ++gpu) {
    placement_scratch_[gpu] =
        static_cast<std::uint8_t>(unavailable_[gpu] | suspected_[gpu]);
    if (placement_scratch_[gpu] == 0) any_clear = true;
  }
  if (!any_clear) return unavailable_;  // everything suspected: place anyway
  return placement_scratch_;
}

void WorkQueueScheduler::steal(core::GpuId thief) {
  // Victim: the GPU with the most unprocessed tasks.
  core::GpuId victim = core::kInvalidGpu;
  std::size_t most = 0;
  for (core::GpuId gpu = 0; gpu < queues_.size(); ++gpu) {
    if (gpu == thief || !serving(gpu)) continue;
    if (suspected_[gpu] != 0) continue;  // loot would cross the bad link
    if (queues_[gpu].size() > most) {
      most = queues_[gpu].size();
      victim = gpu;
    }
  }
  if (victim == core::kInvalidGpu || most < 2) return;

  // Take the tail half as a block, preserving its internal order (the tail
  // is where mHFP parks its balancing slack — see Algorithm 4).
  const std::size_t take = most / 2;
  std::deque<core::TaskId>& from = queues_[victim];
  std::deque<core::TaskId>& to = queues_[thief];
  to.insert(to.end(), from.end() - static_cast<std::ptrdiff_t>(take),
            from.end());
  from.erase(from.end() - static_cast<std::ptrdiff_t>(take), from.end());
  ++steal_events_;
}

}  // namespace mg::sched
