#include "sched/fixed_order.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mg::sched {

BeladyReplayEviction::BeladyReplayEviction(
    const core::TaskGraph& graph,
    const std::vector<std::vector<core::TaskId>>& orders)
    : graph_(graph), done_(orders.size(), 0) {
  positions_.resize(orders.size());
  for (std::size_t gpu = 0; gpu < orders.size(); ++gpu) {
    positions_[gpu].resize(graph.num_data());
    for (std::uint32_t pos = 0; pos < orders[gpu].size(); ++pos) {
      for (core::DataId data : graph.inputs(orders[gpu][pos])) {
        positions_[gpu][data].push_back(pos);
      }
    }
  }
}

core::DataId BeladyReplayEviction::choose_victim(
    core::GpuId gpu, std::span<const core::DataId> candidates) {
  // Next use = first position at or after the completed prefix (tasks still
  // in flight keep their inputs pinned, so they are never candidates).
  core::DataId victim = core::kInvalidData;
  std::uint64_t furthest = 0;
  for (core::DataId data : candidates) {
    const auto& uses = positions_[gpu][data];
    const auto next = std::lower_bound(uses.begin(), uses.end(), done_[gpu]);
    const std::uint64_t next_use =
        next == uses.end() ? ~std::uint64_t{0} : *next;
    if (victim == core::kInvalidData || next_use > furthest) {
      furthest = next_use;
      victim = data;
    }
  }
  return victim;
}

void BeladyReplayEviction::append(core::GpuId gpu, core::TaskId task,
                                  std::uint32_t pos) {
  for (core::DataId data : graph_.inputs(task)) {
    MG_DCHECK(positions_[gpu][data].empty() ||
              positions_[gpu][data].back() < pos);
    positions_[gpu][data].push_back(pos);
  }
}

void FixedOrderScheduler::prepare(const core::TaskGraph& graph,
                                  const core::Platform& platform,
                                  std::uint64_t seed) {
  (void)seed;
  MG_CHECK_MSG(orders_.size() == platform.num_gpus,
               "fixed order must cover exactly the platform GPUs");
  std::size_t total = 0;
  for (const auto& order : orders_) total += order.size();
  MG_CHECK_MSG(total == graph.num_tasks(),
               "fixed order must schedule every task exactly once");
  cursor_.assign(orders_.size(), 0);
  lost_.assign(orders_.size(), false);
  divergence_.assign(orders_.size(), std::nullopt);
  if (deps_) {
    enabled_.assign(graph.num_tasks(), 0);
    for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
      if (graph.num_predecessors(task) == 0) enabled_[task] = 1;
    }
  } else {
    enabled_.clear();
  }
  if (eviction_ == Eviction::kBelady) {
    belady_ = std::make_unique<BeladyReplayEviction>(graph, orders_);
  }
}

core::TaskId FixedOrderScheduler::pop_task(core::GpuId gpu,
                                           const core::MemoryView& memory) {
  (void)memory;
  if (cursor_[gpu] >= orders_[gpu].size()) return core::kInvalidTask;
  // Replay never reorders: a dependency-blocked head stalls the GPU until
  // its last predecessor retires (the engine wakes every GPU then).
  if (deps_ && enabled_[orders_[gpu][cursor_[gpu]]] == 0) {
    return core::kInvalidTask;
  }
  return orders_[gpu][cursor_[gpu]++];
}

void FixedOrderScheduler::notify_task_retired(
    core::TaskId task, std::span<const core::TaskId> enabled_successors) {
  (void)task;
  for (core::TaskId succ : enabled_successors) enabled_[succ] = 1;
}

void FixedOrderScheduler::notify_task_complete(core::GpuId gpu,
                                               core::TaskId task) {
  (void)task;
  if (belady_) belady_->advance(gpu);
}

void FixedOrderScheduler::steal_onto_survivor(core::TaskId task) {
  // Survivor with the fewest remaining slots (recorded + already stolen);
  // ties go to the lowest GPU id. Deterministic, so a replayed faulted run
  // is bit-identical.
  core::GpuId target = core::kInvalidGpu;
  std::size_t least = 0;
  for (core::GpuId gpu = 0; gpu < static_cast<core::GpuId>(orders_.size());
       ++gpu) {
    if (lost_[gpu]) continue;
    const std::size_t remaining = orders_[gpu].size() - cursor_[gpu];
    if (target == core::kInvalidGpu || remaining < least) {
      target = gpu;
      least = remaining;
    }
  }
  MG_CHECK_MSG(target != core::kInvalidGpu, "no surviving GPU to steal onto");
  const auto pos = static_cast<std::uint32_t>(orders_[target].size());
  orders_[target].push_back(task);
  if (belady_) belady_->append(target, task, pos);
}

bool FixedOrderScheduler::notify_gpu_lost(
    core::GpuId gpu, std::span<const core::TaskId> orphaned) {
  MG_DCHECK(gpu < orders_.size() && !lost_[gpu]);
  lost_[gpu] = true;
  // The orphans are the dead GPU's last pops, so the recorded order broke at
  // the first of them; everything from there on moves to survivors.
  MG_DCHECK(cursor_[gpu] >= orphaned.size());
  const std::size_t divergence_index = cursor_[gpu] - orphaned.size();
  ReplayDivergence divergence;
  divergence.divergence_index = static_cast<std::uint32_t>(divergence_index);
  divergence.reassigned_tasks = static_cast<std::uint32_t>(
      orphaned.size() + (orders_[gpu].size() - cursor_[gpu]));
  for (core::TaskId task : orphaned) steal_onto_survivor(task);
  for (std::size_t slot = cursor_[gpu]; slot < orders_[gpu].size(); ++slot) {
    steal_onto_survivor(orders_[gpu][slot]);
  }
  cursor_[gpu] = orders_[gpu].size();  // the dead GPU's order is spent
  divergence_[gpu] = divergence;
  return true;  // adopted: the stolen tasks re-emerge from pop_task
}

std::optional<core::Scheduler::ReplayDivergence>
FixedOrderScheduler::replay_divergence(core::GpuId gpu) {
  return divergence_[gpu];
}

}  // namespace mg::sched
