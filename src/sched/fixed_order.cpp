#include "sched/fixed_order.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mg::sched {

BeladyReplayEviction::BeladyReplayEviction(
    const core::TaskGraph& graph,
    const std::vector<std::vector<core::TaskId>>& orders)
    : graph_(graph), done_(orders.size(), 0) {
  positions_.resize(orders.size());
  for (std::size_t gpu = 0; gpu < orders.size(); ++gpu) {
    positions_[gpu].resize(graph.num_data());
    for (std::uint32_t pos = 0; pos < orders[gpu].size(); ++pos) {
      for (core::DataId data : graph.inputs(orders[gpu][pos])) {
        positions_[gpu][data].push_back(pos);
      }
    }
  }
}

core::DataId BeladyReplayEviction::choose_victim(
    core::GpuId gpu, std::span<const core::DataId> candidates) {
  // Next use = first position at or after the completed prefix (tasks still
  // in flight keep their inputs pinned, so they are never candidates).
  core::DataId victim = core::kInvalidData;
  std::uint64_t furthest = 0;
  for (core::DataId data : candidates) {
    const auto& uses = positions_[gpu][data];
    const auto next = std::lower_bound(uses.begin(), uses.end(), done_[gpu]);
    const std::uint64_t next_use =
        next == uses.end() ? ~std::uint64_t{0} : *next;
    if (victim == core::kInvalidData || next_use > furthest) {
      furthest = next_use;
      victim = data;
    }
  }
  return victim;
}

void FixedOrderScheduler::prepare(const core::TaskGraph& graph,
                                  const core::Platform& platform,
                                  std::uint64_t seed) {
  (void)seed;
  MG_CHECK_MSG(orders_.size() == platform.num_gpus,
               "fixed order must cover exactly the platform GPUs");
  std::size_t total = 0;
  for (const auto& order : orders_) total += order.size();
  MG_CHECK_MSG(total == graph.num_tasks(),
               "fixed order must schedule every task exactly once");
  cursor_.assign(orders_.size(), 0);
  if (eviction_ == Eviction::kBelady) {
    belady_ = std::make_unique<BeladyReplayEviction>(graph, orders_);
  }
}

core::TaskId FixedOrderScheduler::pop_task(core::GpuId gpu,
                                           const core::MemoryView& memory) {
  (void)memory;
  if (cursor_[gpu] >= orders_[gpu].size()) return core::kInvalidTask;
  return orders_[gpu][cursor_[gpu]++];
}

void FixedOrderScheduler::notify_task_complete(core::GpuId gpu,
                                               core::TaskId task) {
  (void)task;
  if (belady_) belady_->advance(gpu);
}

}  // namespace mg::sched
