#include "sched/dmda.hpp"

#include "util/check.hpp"

namespace mg::sched {

void DmdaScheduler::prepare(const core::TaskGraph& graph,
                            const core::Platform& platform,
                            std::uint64_t seed) {
  (void)seed;  // DMDA is deterministic
  graph_ = &graph;
  platform_ = &platform;
  const std::uint32_t num_gpus = platform.num_gpus;
  queues_.assign(num_gpus, {});
  dead_.assign(num_gpus, 0);
  occ_hinted_ = false;
  occ_active_warps_.assign(num_gpus, 0);
  occ_free_warps_.assign(num_gpus, 0);

  // Predicted memory content and predicted finish time per GPU. In streaming
  // mode the model persists across arrivals; in batch mode it only lives for
  // this loop.
  in_mem_.assign(num_gpus, std::vector<bool>(graph.num_data(), false));
  finish_us_.assign(num_gpus, 0.0);

  if (deps_) {
    // Pops are gated on the enabled bitmap; the initial frontier is every
    // task without predecessors. Later enablements arrive through
    // notify_task_retired.
    enabled_.assign(graph.num_tasks(), 0);
    allocated_.assign(graph.num_tasks(), 0);
    if (!streaming_) {
      for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
        if (graph.num_predecessors(task) == 0) enabled_[task] = 1;
      }
    }
  } else {
    enabled_.clear();
    allocated_.clear();
  }

  if (streaming_) return;  // tasks are allocated as their jobs arrive
  for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
    allocate(task);
  }
}

void DmdaScheduler::allocate(core::TaskId task) {
  const core::TaskGraph& graph = *graph_;
  const core::Platform& platform = *platform_;
  core::GpuId best_gpu = core::kInvalidGpu;
  double best_completion = 0.0;
  for (core::GpuId gpu = 0; gpu < queues_.size(); ++gpu) {
    if (dead_[gpu] != 0) continue;
    // Per-device compute time: this is where DMDA handles heterogeneous
    // processing units.
    const double comp = platform.compute_time_us(graph.task_flops(task), gpu);
    double comm = 0.0;
    for (core::DataId data : graph.inputs(task)) {
      if (!in_mem_[gpu][data]) {
        comm += platform.transfer_time_us(graph.data_size(data));
      }
    }
    const double completion = finish_us_[gpu] + comm + comp;
    if (best_gpu == core::kInvalidGpu || completion < best_completion) {
      best_completion = completion;
      best_gpu = gpu;
    }
  }
  MG_CHECK_MSG(best_gpu != core::kInvalidGpu, "no surviving GPU to allocate to");
  if (deps_) allocated_[task] = 1;
  queues_[best_gpu].push_back(task);
  // Only compute occupies the worker: transfers are overlapped with the
  // execution of earlier tasks (StarPU's dm/dmda model). Keeping comm out
  // of the backlog is what lets the model colocate data-sharing tasks.
  finish_us_[best_gpu] +=
      platform.compute_time_us(graph.task_flops(task), best_gpu);
  for (core::DataId data : graph.inputs(task)) in_mem_[best_gpu][data] = true;
}

void DmdaScheduler::notify_job_arrived(std::uint32_t job,
                                       std::span<const core::TaskId> tasks) {
  (void)job;
  // On a dependency-gated stream the engine hands over only the job's
  // initially-enabled tasks; the rest arrive via notify_task_retired.
  for (core::TaskId task : tasks) {
    if (deps_) enabled_[task] = 1;
    allocate(task);
  }
}

void DmdaScheduler::notify_task_retired(
    core::TaskId task, std::span<const core::TaskId> enabled_successors) {
  (void)task;
  for (core::TaskId succ : enabled_successors) {
    enabled_[succ] = 1;
    // Batch mode allocated the whole graph in prepare; a streamed task that
    // was dependency-blocked at its job's arrival is placed now.
    if (streaming_ && allocated_[succ] == 0) allocate(succ);
  }
}

std::vector<core::DataId> DmdaScheduler::prefetch_hints(core::GpuId gpu) {
  if (!push_prefetch_) return {};
  std::vector<core::DataId> hints;
  std::vector<bool> seen(graph_->num_data(), false);
  for (core::TaskId task : queues_[gpu]) {
    for (core::DataId data : graph_->inputs(task)) {
      if (!seen[data]) {
        seen[data] = true;
        hints.push_back(data);
      }
    }
  }
  return hints;
}

bool DmdaScheduler::notify_gpu_lost(core::GpuId gpu,
                                    std::span<const core::TaskId> orphaned) {
  dead_[gpu] = 1;
  std::deque<core::TaskId>& dead_queue = queues_[gpu];

  // Orphans first (they were next to run), then the unpopped remainder.
  std::vector<core::TaskId> displaced(orphaned.begin(), orphaned.end());
  displaced.insert(displaced.end(), dead_queue.begin(), dead_queue.end());
  dead_queue.clear();

  bool any_survivor = false;
  for (core::GpuId other = 0; other < queues_.size(); ++other) {
    if (other != gpu && dead_[other] == 0) any_survivor = true;
  }
  if (!any_survivor) return false;  // engine handles the orphans

  for (core::TaskId task : displaced) {
    core::GpuId target = core::kInvalidGpu;
    std::size_t least = ~std::size_t{0};
    for (core::GpuId other = 0; other < queues_.size(); ++other) {
      if (other == gpu || dead_[other] != 0) continue;
      if (queues_[other].size() < least) {
        least = queues_[other].size();
        target = other;
      }
    }
    queues_[target].push_back(task);
  }
  return true;
}

void DmdaScheduler::notify_occupancy(core::GpuId gpu,
                                     std::uint32_t active_warps,
                                     std::uint32_t free_warps) {
  occ_hinted_ = true;
  occ_active_warps_[gpu] = active_warps;
  occ_free_warps_[gpu] = free_warps;
}

core::TaskId DmdaScheduler::pop_task(core::GpuId gpu,
                                     const core::MemoryView& memory) {
  std::deque<core::TaskId>& queue = queues_[gpu];
  if (queue.empty()) return core::kInvalidTask;
  // Sharing mode, GPU partially busy: prefer a queued task that fits the
  // free warps so it co-runs instead of blocking at admission.
  if (occ_hinted_ && occ_active_warps_[gpu] > 0) {
    const std::uint32_t free = occ_free_warps_[gpu];
    const std::size_t window = std::min(queue.size(), ready_window_);
    for (std::size_t i = 0; i < window; ++i) {
      const core::TaskId task = queue[i];
      if (deps_ && enabled_[task] == 0) continue;
      const std::uint32_t warps = graph_->task_warps(task);
      if (warps != 0 && warps <= free) {
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
        return task;
      }
    }
  }
  if (!ready_) {
    if (deps_) return pop_first_enabled(queue, enabled_);
    const core::TaskId task = queue.front();
    queue.pop_front();
    return task;
  }
  return pop_ready(queue, *graph_, memory, ready_window_,
                   deps_ ? &enabled_ : nullptr);
}

}  // namespace mg::sched
