#include "sched/dmda.hpp"

namespace mg::sched {

void DmdaScheduler::prepare(const core::TaskGraph& graph,
                            const core::Platform& platform,
                            std::uint64_t seed) {
  (void)seed;  // DMDA is deterministic
  graph_ = &graph;
  const std::uint32_t num_gpus = platform.num_gpus;
  queues_.assign(num_gpus, {});
  dead_.assign(num_gpus, 0);

  // Predicted memory content and predicted finish time per GPU.
  std::vector<std::vector<bool>> in_mem(
      num_gpus, std::vector<bool>(graph.num_data(), false));
  std::vector<double> finish_us(num_gpus, 0.0);

  for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
    core::GpuId best_gpu = 0;
    double best_completion = 0.0;
    for (core::GpuId gpu = 0; gpu < num_gpus; ++gpu) {
      // Per-device compute time: this is where DMDA handles heterogeneous
      // processing units.
      const double comp =
          platform.compute_time_us(graph.task_flops(task), gpu);
      double comm = 0.0;
      for (core::DataId data : graph.inputs(task)) {
        if (!in_mem[gpu][data]) {
          comm += platform.transfer_time_us(graph.data_size(data));
        }
      }
      const double completion = finish_us[gpu] + comm + comp;
      if (gpu == 0 || completion < best_completion) {
        best_completion = completion;
        best_gpu = gpu;
      }
    }
    queues_[best_gpu].push_back(task);
    // Only compute occupies the worker: transfers are overlapped with the
    // execution of earlier tasks (StarPU's dm/dmda model). Keeping comm out
    // of the backlog is what lets the model colocate data-sharing tasks.
    finish_us[best_gpu] +=
        platform.compute_time_us(graph.task_flops(task), best_gpu);
    for (core::DataId data : graph.inputs(task)) in_mem[best_gpu][data] = true;
  }
}

std::vector<core::DataId> DmdaScheduler::prefetch_hints(core::GpuId gpu) {
  if (!push_prefetch_) return {};
  std::vector<core::DataId> hints;
  std::vector<bool> seen(graph_->num_data(), false);
  for (core::TaskId task : queues_[gpu]) {
    for (core::DataId data : graph_->inputs(task)) {
      if (!seen[data]) {
        seen[data] = true;
        hints.push_back(data);
      }
    }
  }
  return hints;
}

bool DmdaScheduler::notify_gpu_lost(core::GpuId gpu,
                                    std::span<const core::TaskId> orphaned) {
  dead_[gpu] = 1;
  std::deque<core::TaskId>& dead_queue = queues_[gpu];

  // Orphans first (they were next to run), then the unpopped remainder.
  std::vector<core::TaskId> displaced(orphaned.begin(), orphaned.end());
  displaced.insert(displaced.end(), dead_queue.begin(), dead_queue.end());
  dead_queue.clear();

  bool any_survivor = false;
  for (core::GpuId other = 0; other < queues_.size(); ++other) {
    if (other != gpu && dead_[other] == 0) any_survivor = true;
  }
  if (!any_survivor) return false;  // engine handles the orphans

  for (core::TaskId task : displaced) {
    core::GpuId target = core::kInvalidGpu;
    std::size_t least = ~std::size_t{0};
    for (core::GpuId other = 0; other < queues_.size(); ++other) {
      if (other == gpu || dead_[other] != 0) continue;
      if (queues_[other].size() < least) {
        least = queues_[other].size();
        target = other;
      }
    }
    queues_[target].push_back(task);
  }
  return true;
}

core::TaskId DmdaScheduler::pop_task(core::GpuId gpu,
                                     const core::MemoryView& memory) {
  std::deque<core::TaskId>& queue = queues_[gpu];
  if (queue.empty()) return core::kInvalidTask;
  if (!ready_) {
    const core::TaskId task = queue.front();
    queue.pop_front();
    return task;
  }
  return pop_ready(queue, *graph_, memory, ready_window_);
}

}  // namespace mg::sched
