// EAGER baseline: a single shared FIFO queue in submission order; GPUs pick
// up the next task on demand. No locality awareness at all — the paper's
// reference point (and the victim of the LRU pathological case of Section
// V-B).
#pragma once

#include <deque>

#include "core/scheduler.hpp"

namespace mg::sched {

class EagerScheduler final : public core::Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "EAGER"; }

  void prepare(const core::TaskGraph& graph, const core::Platform& platform,
               std::uint64_t seed) override {
    (void)platform;
    (void)seed;
    queue_.clear();
    if (streaming_) return;  // tasks enter the FIFO as their jobs arrive
    for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
      // On a DAG workload only the initial ready frontier enters the FIFO;
      // the rest arrive through notify_task_retired.
      if (deps_ && graph.num_predecessors(task) != 0) continue;
      queue_.push_back(task);
    }
  }

  [[nodiscard]] bool begin_streaming() override {
    streaming_ = true;
    return true;
  }

  [[nodiscard]] bool begin_dependencies() override {
    deps_ = true;
    return true;
  }

  void notify_job_arrived(std::uint32_t job,
                          std::span<const core::TaskId> tasks) override {
    (void)job;
    queue_.insert(queue_.end(), tasks.begin(), tasks.end());
  }

  void notify_task_retired(
      core::TaskId task,
      std::span<const core::TaskId> enabled_successors) override {
    (void)task;
    queue_.insert(queue_.end(), enabled_successors.begin(),
                  enabled_successors.end());
  }

  [[nodiscard]] core::TaskId pop_task(core::GpuId gpu,
                                      const core::MemoryView& memory) override {
    (void)gpu;
    (void)memory;
    if (queue_.empty()) return core::kInvalidTask;
    const core::TaskId task = queue_.front();
    queue_.pop_front();
    return task;
  }

 private:
  std::deque<core::TaskId> queue_;
  bool streaming_ = false;
  bool deps_ = false;
};

}  // namespace mg::sched
