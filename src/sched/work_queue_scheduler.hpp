// Base class for schedulers that statically partition tasks into per-GPU
// ordered queues (mHFP, hMETIS+R) and then, at runtime, serve each queue
// with Ready reordering and rebalance with task stealing: an idle GPU steals
// half of the remaining tasks of the most loaded GPU, taken from the tail of
// its list (Algorithms 3 and 4, steps 5/8).
#pragma once

#include <deque>
#include <vector>

#include "core/scheduler.hpp"
#include "sched/ready.hpp"

namespace mg::sched {

class WorkQueueScheduler : public core::Scheduler {
 public:
  void prepare(const core::TaskGraph& graph, const core::Platform& platform,
               std::uint64_t seed) final;

  [[nodiscard]] core::TaskId pop_task(core::GpuId gpu,
                                      const core::MemoryView& memory) final;

  /// GPU loss: splices the orphans (front) and the dead GPU's remaining
  /// queue (tail) onto the least loaded survivor; task stealing then
  /// rebalances as usual. The emptied dead queue can never be a steal
  /// victim again.
  [[nodiscard]] bool notify_gpu_lost(
      core::GpuId gpu, std::span<const core::TaskId> orphaned) final;

  /// Planned drain: the node's GPUs leave the serving set (inactive, not
  /// dead — notify_node_added may bring them back) and their queued tasks
  /// plus the pulled orphans are spliced onto the least loaded serving
  /// survivor, exactly as for a GPU loss. Adopts the orphans whenever a
  /// survivor exists.
  [[nodiscard]] bool notify_node_draining(
      core::NodeId node, std::span<const core::GpuId> gpus,
      std::span<const core::TaskId> orphaned) final;

  /// Join: the node's GPUs re-enter the serving set with empty queues;
  /// subsequent arrivals may place onto them and stealing pulls work over.
  void notify_node_added(core::NodeId node,
                         std::span<const core::GpuId> gpus) final;

  /// Whole-node loss: one combined pass — every GPU of the node goes dead
  /// and the aggregate orphans plus all their queues move to the least
  /// loaded survivor (no per-GPU forwarding cascade).
  [[nodiscard]] bool notify_node_lost(
      core::NodeId node, std::span<const core::GpuId> gpus,
      std::span<const core::TaskId> orphaned) final;

  /// Suspicion (network faults): a suspected node's GPUs stop being steal
  /// victims (loot would drag its inputs over the bad link) and arrivals
  /// avoid them while an unsuspected serving GPU exists. The GPUs keep
  /// serving their own queues — nothing is evacuated; clearing restores
  /// them fully.
  void notify_node_suspected(core::NodeId node) final;
  void notify_node_suspicion_cleared(core::NodeId node) final;

  /// Streaming: the static partition is skipped; each arriving job is placed
  /// by partition_arrival (default: block-append to the least loaded
  /// surviving queue) and stealing rebalances from there.
  [[nodiscard]] bool begin_streaming() final {
    streaming_ = true;
    return true;
  }

  /// Dependencies: the static partition still places every task (batch), but
  /// pops are gated on an enabled bitmap fed by notify_task_retired. In
  /// streaming mode a dependency-blocked task is not placed at its job's
  /// arrival (the engine withholds it); it is placed by partition_arrival
  /// when its last predecessor retires.
  [[nodiscard]] bool begin_dependencies() final {
    deps_ = true;
    return true;
  }

  void notify_job_arrived(std::uint32_t job,
                          std::span<const core::TaskId> tasks) final;

  void notify_task_retired(
      core::TaskId task,
      std::span<const core::TaskId> enabled_successors) final;

  /// Occupancy hint (GPU sharing): remembers each GPU's active/free warp
  /// load. pop_task then prefers, within the ready window, a task whose
  /// footprint fits the remaining budget of a partially-busy GPU — small
  /// tasks pack alongside running work instead of stalling at admission.
  void notify_occupancy(core::GpuId gpu, std::uint32_t active_warps,
                        std::uint32_t free_warps) final;

  /// Streaming dispatch priority (serve::JobSpec::priority): tasks of a
  /// higher-priority job pop before any lower-priority task still queued on
  /// the same GPU. All-zero priorities (the default, and every batch run)
  /// leave pop order untouched.
  void notify_job_priority(std::uint32_t job, std::uint32_t priority) final;

  [[nodiscard]] const std::deque<core::TaskId>& queue(core::GpuId gpu) const {
    return queues_[gpu];
  }
  [[nodiscard]] std::uint64_t steal_events() const { return steal_events_; }

 protected:
  explicit WorkQueueScheduler(bool stealing, bool ready,
                              std::size_t ready_window = kDefaultReadyWindow)
      : stealing_(stealing), ready_(ready), ready_window_(ready_window) {}

  /// Fills `queues` (one ordered task list per GPU) — the static phase whose
  /// wall time the engine charges as scheduler cost.
  virtual void partition(const core::TaskGraph& graph,
                         const core::Platform& platform, std::uint64_t seed,
                         std::vector<std::deque<core::TaskId>>& queues) = 0;

  /// Streaming placement of one arriving job (`tasks` in submission order).
  /// `dead[gpu] != 0` marks GPUs outside the serving set — lost to fault
  /// injection or on a drained/inactive node — never place onto those.
  /// Default: append the whole block to the smallest serving queue.
  virtual void partition_arrival(const core::TaskGraph& graph,
                                 const core::Platform& platform,
                                 std::uint32_t job,
                                 std::span<const core::TaskId> tasks,
                                 std::span<const std::uint8_t> dead,
                                 std::vector<std::deque<core::TaskId>>& queues);

 private:
  /// Moves the tail half of the most loaded queue into `thief`'s queue.
  void steal(core::GpuId thief);

  /// Splices `orphaned` (front) and the remaining queues of `gpus` (tail,
  /// in gpu order) onto the least loaded serving survivor. Returns false —
  /// queues cleared, orphans declined — when no survivor exists.
  [[nodiscard]] bool evacuate(std::span<const core::GpuId> gpus,
                              std::span<const core::TaskId> orphaned);

  /// True while `gpu` may be handed work (neither dead nor on an inactive
  /// node).
  [[nodiscard]] bool serving(core::GpuId gpu) const {
    return unavailable_[gpu] == 0;
  }

  /// Placement mask for partition_arrival: unavailable_ widened by the
  /// suspected GPUs — unless that would mask every serving GPU, in which
  /// case availability alone decides (an arrival must land somewhere).
  [[nodiscard]] std::span<const std::uint8_t> placement_mask();

  /// Dependency-gated pop: restricts the FIFO/Ready/priority choice to
  /// enabled tasks (blocked tasks keep their queue positions).
  [[nodiscard]] core::TaskId pop_task_deps(core::GpuId gpu,
                                           const core::MemoryView& memory);

  /// Sharing-mode pop preference: first queued task (within the ready
  /// window) whose warp footprint fits the GPU's free warps, or invalid.
  [[nodiscard]] core::TaskId pop_occupancy_fit(core::GpuId gpu);

  /// Priority of a queued task (its job's announced priority, 0 otherwise).
  [[nodiscard]] std::uint32_t task_priority(core::TaskId task) const {
    return task < task_priority_.size() ? task_priority_[task] : 0;
  }

  /// Reorders `queue` so its highest-priority tasks come first (stable), and
  /// returns how many share that top priority — the window pop may serve.
  [[nodiscard]] std::size_t promote_priority_front(
      std::deque<core::TaskId>& queue);

  bool stealing_;
  bool ready_;
  std::size_t ready_window_;
  bool streaming_ = false;
  bool deps_ = false;
  const core::TaskGraph* graph_ = nullptr;
  const core::Platform* platform_ = nullptr;
  std::vector<std::deque<core::TaskId>> queues_;
  std::vector<std::uint8_t> dead_;      ///< GPUs lost to fault injection
  std::vector<std::uint8_t> inactive_;  ///< GPUs on a drained/inactive node
  /// dead_|inactive_ merged — the placement mask partition_arrival sees.
  std::vector<std::uint8_t> unavailable_;
  /// GPUs on a suspected node (network faults); armed by the first
  /// notify_node_suspected so unsuspicious runs pay nothing extra.
  std::vector<std::uint8_t> suspected_;
  std::vector<std::uint8_t> placement_scratch_;
  bool suspicion_armed_ = false;
  std::uint64_t steal_events_ = 0;
  /// Job priorities announced via notify_job_priority and their per-task
  /// projection (filled as jobs arrive). `has_priorities_` arms the
  /// priority-aware pop only when some job's priority is nonzero, so the
  /// default all-zero case keeps the exact FIFO/Ready order.
  std::vector<std::uint32_t> job_priority_;
  std::vector<std::uint32_t> task_priority_;
  bool has_priorities_ = false;
  /// Dependency gating state: `enabled_` is monotone (fault-time
  /// revocations are handled engine-side by parking); `placed_` tracks
  /// streaming placement so a late-announced task still joins a queue;
  /// `eligible_` is per-pop scratch for the priority+deps intersection.
  std::vector<std::uint8_t> enabled_;
  std::vector<std::uint8_t> placed_;
  std::vector<std::uint8_t> eligible_;
  /// Occupancy-sharing hints (armed by the first notify_occupancy; sharing
  /// off leaves pop order untouched).
  bool occ_hinted_ = false;
  std::vector<std::uint32_t> occ_active_warps_;
  std::vector<std::uint32_t> occ_free_warps_;
};

}  // namespace mg::sched
