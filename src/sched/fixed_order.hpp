// Fixed-order replay scheduler: executes a prescribed σ (per-GPU ordered
// task lists) with no reordering and no stealing. Used by the eviction
// ablation (replay a DARTS-produced order under LRU / Belady / LUF-free
// policies) and by engine unit tests that need full control of the schedule.
//
// The optional Belady eviction policy implements the offline-optimal rule of
// Section III for the fixed σ: evict the data whose next use on this GPU is
// the furthest in the future (never-used-again data first).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/eviction.hpp"
#include "core/scheduler.hpp"

namespace mg::sched {

class BeladyReplayEviction final : public core::EvictionPolicy {
 public:
  BeladyReplayEviction(const core::TaskGraph& graph,
                       const std::vector<std::vector<core::TaskId>>& orders);

  [[nodiscard]] std::string_view name() const override { return "Belady"; }

  [[nodiscard]] core::DataId choose_victim(
      core::GpuId gpu, std::span<const core::DataId> candidates) override;

  /// Must be called as tasks of the fixed order complete, in order.
  void advance(core::GpuId gpu) { ++done_[gpu]; }

 private:
  const core::TaskGraph& graph_;
  /// positions_[gpu][data]: sorted positions in the gpu's order using data.
  std::vector<std::vector<std::vector<std::uint32_t>>> positions_;
  std::vector<std::uint32_t> done_;
};

class FixedOrderScheduler final : public core::Scheduler {
 public:
  enum class Eviction { kEngineDefault, kBelady };

  FixedOrderScheduler(std::vector<std::vector<core::TaskId>> orders,
                      Eviction eviction = Eviction::kEngineDefault)
      : orders_(std::move(orders)), eviction_(eviction) {}

  [[nodiscard]] std::string_view name() const override {
    return eviction_ == Eviction::kBelady ? "FixedOrder+Belady" : "FixedOrder";
  }

  void prepare(const core::TaskGraph& graph, const core::Platform& platform,
               std::uint64_t seed) override;

  [[nodiscard]] core::TaskId pop_task(core::GpuId gpu,
                                      const core::MemoryView& memory) override;

  void notify_task_complete(core::GpuId gpu, core::TaskId task) override;

  [[nodiscard]] core::EvictionPolicy* eviction_policy(core::GpuId gpu) override {
    (void)gpu;
    return belady_.get();
  }

 private:
  std::vector<std::vector<core::TaskId>> orders_;
  Eviction eviction_;
  std::vector<std::size_t> cursor_;
  std::unique_ptr<BeladyReplayEviction> belady_;
};

}  // namespace mg::sched
