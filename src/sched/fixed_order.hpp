// Fixed-order replay scheduler: executes a prescribed σ (per-GPU ordered
// task lists) with no reordering and no stealing. Used by the eviction
// ablation (replay a DARTS-produced order under LRU / Belady / LUF-free
// policies) and by engine unit tests that need full control of the schedule.
//
// The optional Belady eviction policy implements the offline-optimal rule of
// Section III for the fixed σ: evict the data whose next use on this GPU is
// the furthest in the future (never-used-again data first).
//
// Under a fault plan the replay *degrades* instead of rejecting the run: on
// a permanent GPU loss the dead GPU's orphans and its remaining recorded
// suffix are reassigned to survivors via deterministic work-stealing (each
// task goes to the survivor with the fewest remaining slots, ties to the
// lowest GPU id), and replay_divergence() reports where the recorded order
// broke. Belady replay stays exact: stolen tasks are appended to the
// survivor's position lists, so next-use queries keep working.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/eviction.hpp"
#include "core/scheduler.hpp"

namespace mg::sched {

class BeladyReplayEviction final : public core::EvictionPolicy {
 public:
  BeladyReplayEviction(const core::TaskGraph& graph,
                       const std::vector<std::vector<core::TaskId>>& orders);

  [[nodiscard]] std::string_view name() const override { return "Belady"; }

  [[nodiscard]] core::DataId choose_victim(
      core::GpuId gpu, std::span<const core::DataId> candidates) override;

  /// Must be called as tasks of the fixed order complete, in order.
  void advance(core::GpuId gpu) { ++done_[gpu]; }

  /// Extends `gpu`'s order with a stolen task at position `pos` (the slot
  /// the scheduler appended it to). Positions stay sorted because appended
  /// slots are strictly beyond every recorded one.
  void append(core::GpuId gpu, core::TaskId task, std::uint32_t pos);

 private:
  const core::TaskGraph& graph_;
  /// positions_[gpu][data]: sorted positions in the gpu's order using data.
  std::vector<std::vector<std::vector<std::uint32_t>>> positions_;
  std::vector<std::uint32_t> done_;
};

class FixedOrderScheduler final : public core::Scheduler {
 public:
  enum class Eviction { kEngineDefault, kBelady };

  FixedOrderScheduler(std::vector<std::vector<core::TaskId>> orders,
                      Eviction eviction = Eviction::kEngineDefault)
      : orders_(std::move(orders)), eviction_(eviction) {}

  [[nodiscard]] std::string_view name() const override {
    return eviction_ == Eviction::kBelady ? "FixedOrder+Belady" : "FixedOrder";
  }

  void prepare(const core::TaskGraph& graph, const core::Platform& platform,
               std::uint64_t seed) override;

  /// Dependencies: σ is replayed verbatim — a GPU whose next recorded task
  /// still has unretired predecessors simply stalls (pop returns
  /// kInvalidTask without advancing the cursor) until the enablement
  /// arrives. Any σ recorded from a real dependency-gated run is
  /// topologically compatible, so the stall always resolves.
  [[nodiscard]] bool begin_dependencies() override {
    deps_ = true;
    return true;
  }

  void notify_task_retired(
      core::TaskId task,
      std::span<const core::TaskId> enabled_successors) override;

  [[nodiscard]] core::TaskId pop_task(core::GpuId gpu,
                                      const core::MemoryView& memory) override;

  void notify_task_complete(core::GpuId gpu, core::TaskId task) override;

  /// Replay degradation: adopts the orphans — they and the dead GPU's
  /// remaining recorded suffix are appended to the survivors' orders via
  /// deterministic work-stealing.
  [[nodiscard]] bool notify_gpu_lost(
      core::GpuId gpu, std::span<const core::TaskId> orphaned) override;

  [[nodiscard]] std::optional<ReplayDivergence> replay_divergence(
      core::GpuId gpu) override;

  [[nodiscard]] core::EvictionPolicy* eviction_policy(core::GpuId gpu) override {
    (void)gpu;
    return belady_.get();
  }

 private:
  /// Appends `task` to the survivor with the fewest remaining slots.
  void steal_onto_survivor(core::TaskId task);

  std::vector<std::vector<core::TaskId>> orders_;
  Eviction eviction_;
  bool deps_ = false;
  std::vector<std::uint8_t> enabled_;
  std::vector<std::size_t> cursor_;
  std::vector<bool> lost_;
  std::vector<std::optional<ReplayDivergence>> divergence_;
  std::unique_ptr<BeladyReplayEviction> belady_;
};

}  // namespace mg::sched
