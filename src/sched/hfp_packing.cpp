#include "sched/hfp_packing.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace mg::sched {
namespace {

using core::DataId;
using core::TaskId;

struct Package {
  std::vector<TaskId> tasks;   // execution order, preserved across merges
  std::vector<DataId> inputs;  // sorted unique
  std::uint64_t footprint = 0;
  double load = 0.0;
  bool alive = true;
};

/// Bytes of input data shared by two packages (sorted-merge intersection).
std::uint64_t shared_bytes(const core::TaskGraph& graph, const Package& a,
                           const Package& b) {
  std::uint64_t shared = 0;
  auto ia = a.inputs.begin();
  auto ib = b.inputs.begin();
  while (ia != a.inputs.end() && ib != b.inputs.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      shared += graph.data_size(*ia);
      ++ia;
      ++ib;
    }
  }
  return shared;
}

/// Merges `donor` into `receiver`: concatenated task order, united inputs.
void merge_into(Package& receiver, Package& donor) {
  receiver.tasks.insert(receiver.tasks.end(), donor.tasks.begin(),
                        donor.tasks.end());
  std::vector<DataId> united;
  united.reserve(receiver.inputs.size() + donor.inputs.size());
  std::set_union(receiver.inputs.begin(), receiver.inputs.end(),
                 donor.inputs.begin(), donor.inputs.end(),
                 std::back_inserter(united));
  receiver.inputs = std::move(united);
  receiver.load += donor.load;
  donor.alive = false;
  donor.tasks.clear();
  donor.tasks.shrink_to_fit();
  donor.inputs.clear();
  donor.inputs.shrink_to_fit();
}

std::uint64_t footprint_of(const core::TaskGraph& graph,
                           const std::vector<DataId>& inputs) {
  std::uint64_t bytes = 0;
  for (DataId data : inputs) bytes += graph.data_size(data);
  return bytes;
}

/// One merge pass. Packages are visited from fewest tasks upward; each picks
/// its best-affinity partner among packages sharing at least one input (and
/// satisfying the footprint bound when `bound_memory`). Returns the number
/// of merges performed; stops early once `min_packages` remain.
std::uint32_t merge_pass(const core::TaskGraph& graph,
                         std::vector<Package>& packages, bool bound_memory,
                         std::uint64_t memory_bytes,
                         std::uint32_t min_packages, std::uint32_t& alive) {
  // data -> packages currently containing it, rebuilt each pass.
  std::vector<std::vector<std::uint32_t>> holders(graph.num_data());
  std::vector<std::uint32_t> order;
  for (std::uint32_t p = 0; p < packages.size(); ++p) {
    if (!packages[p].alive) continue;
    order.push_back(p);
    for (DataId data : packages[p].inputs) holders[data].push_back(p);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&packages](std::uint32_t a, std::uint32_t b) {
                     return packages[a].tasks.size() < packages[b].tasks.size();
                   });

  std::vector<bool> merged_this_pass(packages.size(), false);
  std::vector<std::uint32_t> last_seen(packages.size(), ~0u);
  std::uint32_t merges = 0;

  for (std::uint32_t p : order) {
    if (alive <= min_packages) break;
    Package& package = packages[p];
    if (!package.alive || merged_this_pass[p]) continue;

    // Candidate partners: packages sharing at least one input.
    std::uint32_t best_partner = ~0u;
    std::uint64_t best_shared = 0;
    std::size_t best_size = 0;
    for (DataId data : package.inputs) {
      for (std::uint32_t q : holders[data]) {
        if (q == p || !packages[q].alive || merged_this_pass[q]) continue;
        if (last_seen[q] == p) continue;  // already evaluated for this p
        last_seen[q] = p;
        const std::uint64_t shared = shared_bytes(graph, package, packages[q]);
        if (bound_memory &&
            package.footprint + packages[q].footprint - shared > memory_bytes) {
          continue;
        }
        // Prefer max shared bytes; tie-break toward the smaller partner to
        // keep the packing "fair" (balanced merge tree).
        if (shared > best_shared ||
            (shared == best_shared && best_partner != ~0u &&
             packages[q].tasks.size() < best_size)) {
          best_shared = shared;
          best_partner = q;
          best_size = packages[q].tasks.size();
        }
      }
    }
    if (best_partner == ~0u || best_shared == 0) continue;

    Package& partner = packages[best_partner];
    merge_into(package, partner);
    package.footprint = footprint_of(graph, package.inputs);
    merged_this_pass[p] = true;
    merged_this_pass[best_partner] = true;
    --alive;
    ++merges;
  }
  return merges;
}

/// Fallback merge for phase 2 when no two remaining packages share any data
/// (e.g. fully disjoint components): merge the two smallest.
void merge_smallest_pair(const core::TaskGraph& graph,
                         std::vector<Package>& packages,
                         std::uint32_t& alive) {
  std::uint32_t first = ~0u;
  std::uint32_t second = ~0u;
  for (std::uint32_t p = 0; p < packages.size(); ++p) {
    if (!packages[p].alive) continue;
    if (first == ~0u || packages[p].tasks.size() < packages[first].tasks.size()) {
      second = first;
      first = p;
    } else if (second == ~0u ||
               packages[p].tasks.size() < packages[second].tasks.size()) {
      second = p;
    }
  }
  MG_CHECK(first != ~0u && second != ~0u);
  merge_into(packages[first], packages[second]);
  packages[first].footprint = footprint_of(graph, packages[first].inputs);
  --alive;
}

/// Phases 1+2 over an explicit seed set (every task its own package).
std::vector<std::vector<TaskId>> build_packages_from_seeds(
    const core::TaskGraph& graph, std::span<const TaskId> seeds,
    std::uint32_t num_parts, std::uint64_t memory_bytes, HfpStats* stats) {
  MG_CHECK(num_parts >= 1);
  std::vector<Package> packages(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const TaskId task = seeds[i];
    Package& package = packages[i];
    package.tasks = {task};
    const auto inputs = graph.inputs(task);
    package.inputs.assign(inputs.begin(), inputs.end());
    std::sort(package.inputs.begin(), package.inputs.end());
    package.footprint = footprint_of(graph, package.inputs);
    package.load = graph.task_flops(task);
  }
  std::uint32_t alive = static_cast<std::uint32_t>(seeds.size());

  // Phase 1: affinity merging under the memory bound.
  while (alive > num_parts) {
    if (merge_pass(graph, packages, /*bound_memory=*/true, memory_bytes,
                   num_parts, alive) == 0) {
      break;
    }
    if (stats != nullptr) ++stats->phase1_merges;
  }
  if (stats != nullptr) stats->phase1_packages = alive;

  // Phase 2: bind packages with high affinity until K remain. The memory
  // bound no longer applies: packages execute one after the other.
  while (alive > num_parts) {
    if (merge_pass(graph, packages, /*bound_memory=*/false, 0, num_parts,
                   alive) == 0) {
      merge_smallest_pair(graph, packages, alive);
    }
    if (stats != nullptr) ++stats->phase2_merges;
  }

  std::vector<std::vector<TaskId>> result;
  result.reserve(num_parts);
  for (Package& package : packages) {
    if (package.alive) result.push_back(std::move(package.tasks));
  }
  while (result.size() < num_parts) result.emplace_back();
  return result;
}

}  // namespace

std::vector<std::vector<TaskId>> hfp_build_packages(
    const core::TaskGraph& graph, std::uint32_t num_parts,
    std::uint64_t memory_bytes, HfpStats* stats) {
  std::vector<TaskId> all(graph.num_tasks());
  std::iota(all.begin(), all.end(), TaskId{0});
  return build_packages_from_seeds(graph, all, num_parts, memory_bytes, stats);
}

std::vector<std::vector<TaskId>> hfp_build_packages_subset(
    const core::TaskGraph& graph, std::span<const TaskId> tasks,
    std::uint32_t num_parts, std::uint64_t memory_bytes, HfpStats* stats) {
  return build_packages_from_seeds(graph, tasks, num_parts, memory_bytes,
                                   stats);
}

std::vector<std::vector<TaskId>> hfp_partition_subset(
    const core::TaskGraph& graph, std::span<const TaskId> tasks,
    std::uint32_t num_parts, std::uint64_t memory_bytes, HfpStats* stats,
    std::span<const double> speeds) {
  auto packages =
      hfp_build_packages_subset(graph, tasks, num_parts, memory_bytes, stats);
  hfp_balance_loads(graph, packages, stats, speeds);
  return packages;
}

void hfp_balance_loads(const core::TaskGraph& graph,
                       std::vector<std::vector<TaskId>>& packages,
                       HfpStats* stats, std::span<const double> speeds) {
  const std::uint32_t num_parts = static_cast<std::uint32_t>(packages.size());
  if (num_parts <= 1) return;
  MG_CHECK_MSG(speeds.empty() || speeds.size() == packages.size(),
               "one speed per package required");

  auto speed = [&speeds](std::uint32_t p) {
    return speeds.empty() ? 1.0 : speeds[p];
  };

  // Normalized load = predicted duration (flops / speed).
  std::vector<double> loads(num_parts, 0.0);
  for (std::uint32_t p = 0; p < num_parts; ++p) {
    for (TaskId task : packages[p]) loads[p] += graph.task_flops(task);
    loads[p] /= speed(p);
  }

  // Move tail tasks from the longest-running to the shortest-running
  // package while the move strictly reduces the pair's makespan (each move
  // shrinks it, so this terminates within one task of balance).
  for (;;) {
    const auto max_it = std::max_element(loads.begin(), loads.end());
    const auto min_it = std::min_element(loads.begin(), loads.end());
    const auto p_max = static_cast<std::uint32_t>(max_it - loads.begin());
    const auto p_min = static_cast<std::uint32_t>(min_it - loads.begin());
    if (packages[p_max].empty()) break;
    const TaskId task = packages[p_max].back();
    const double flops = graph.task_flops(task);
    // After the move the receiver must still finish before the donor did.
    if (loads[p_min] + flops / speed(p_min) >= loads[p_max]) break;
    packages[p_max].pop_back();
    packages[p_min].push_back(task);
    loads[p_max] -= flops / speed(p_max);
    loads[p_min] += flops / speed(p_min);
    if (stats != nullptr) ++stats->balance_moves;
  }
}

std::vector<std::vector<TaskId>> hfp_partition(const core::TaskGraph& graph,
                                               std::uint32_t num_parts,
                                               std::uint64_t memory_bytes,
                                               HfpStats* stats,
                                               std::span<const double> speeds) {
  auto packages = hfp_build_packages(graph, num_parts, memory_bytes, stats);
  hfp_balance_loads(graph, packages, stats, speeds);
  return packages;
}

}  // namespace mg::sched
