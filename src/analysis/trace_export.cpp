#include "analysis/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace mg::analysis {

namespace {

/// Escapes a label for inclusion in a JSON string literal.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

bool export_chrome_trace(const core::TaskGraph& graph,
                         const core::Platform& platform,
                         const sim::Trace& trace, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;

  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", file);
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) std::fputs(",\n", file);
    first = false;
    std::fputs(line.c_str(), file);
  };

  // Row names.
  for (core::GpuId gpu = 0; gpu < platform.num_gpus; ++gpu) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%u,\"args\":{\"name\":\"GPU %u\"}}",
                  gpu, gpu);
    emit(line);
  }

  // Task slices need start+end pairing; track the open start per GPU.
  std::vector<double> open_start(platform.num_gpus, 0.0);
  for (const sim::TraceEvent& event : trace.events) {
    char line[320];
    switch (event.kind) {
      case sim::TraceKind::kTaskStart:
        open_start[event.gpu] = event.time_us;
        break;
      case sim::TraceKind::kTaskEnd: {
        const std::string& label = graph.task_label(event.id);
        std::snprintf(line, sizeof line,
                      "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,"
                      "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"task\":%u}}",
                      label.empty() ? ("task " + std::to_string(event.id)).c_str()
                                    : json_escape(label).c_str(),
                      event.gpu, open_start[event.gpu],
                      event.time_us - open_start[event.gpu], event.id);
        emit(line);
        break;
      }
      case sim::TraceKind::kLoad:
      case sim::TraceKind::kPeerLoad:
      case sim::TraceKind::kEvict: {
        const char* kind = event.kind == sim::TraceKind::kEvict
                               ? "evict"
                               : (event.kind == sim::TraceKind::kPeerLoad
                                      ? "peer-load"
                                      : "load");
        std::snprintf(line, sizeof line,
                      "{\"name\":\"%s d%u\",\"ph\":\"i\",\"pid\":0,"
                      "\"tid\":%u,\"ts\":%.3f,\"s\":\"t\"}",
                      kind, event.id, event.gpu, event.time_us);
        emit(line);
        break;
      }
      case sim::TraceKind::kWriteBack: {
        std::snprintf(line, sizeof line,
                      "{\"name\":\"writeback t%u\",\"ph\":\"i\",\"pid\":0,"
                      "\"tid\":%u,\"ts\":%.3f,\"s\":\"t\"}",
                      event.id, event.gpu, event.time_us);
        emit(line);
        break;
      }
    }
  }
  std::fputs("\n]}\n", file);
  const bool ok = std::fflush(file) == 0;
  std::fclose(file);
  return ok;
}

ReuseStats compute_reuse_stats(const core::TaskGraph& graph,
                               const core::Platform& platform,
                               const sim::Trace& trace) {
  (void)platform;
  ReuseStats stats;
  // loads per (gpu, data); also per data across gpus for most_reloaded.
  std::map<std::pair<core::GpuId, core::DataId>, std::uint64_t> per_pair;
  std::vector<std::uint64_t> per_data(graph.num_data(), 0);

  for (const sim::TraceEvent& event : trace.events) {
    if (event.kind != sim::TraceKind::kLoad &&
        event.kind != sim::TraceKind::kPeerLoad) {
      continue;
    }
    ++stats.total_loads;
    ++per_pair[{event.gpu, event.id}];
    ++per_data[event.id];
  }

  for (const auto& [key, count] : per_pair) {
    (void)key;
    if (count > stats.histogram.size()) stats.histogram.resize(count, 0);
    ++stats.histogram[count - 1];
    stats.reloads += count - 1;
  }
  for (core::DataId data = 0; data < graph.num_data(); ++data) {
    if (per_data[data] == 0) continue;
    ++stats.distinct_data;
    if (per_data[data] > stats.max_loads_one_data) {
      stats.max_loads_one_data = per_data[data];
      stats.most_reloaded = data;
    }
  }
  stats.mean_loads_per_used_data =
      stats.distinct_data > 0
          ? static_cast<double>(stats.total_loads) /
                static_cast<double>(stats.distinct_data)
          : 0.0;
  return stats;
}

}  // namespace mg::analysis
