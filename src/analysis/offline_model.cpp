#include "analysis/offline_model.hpp"

#include <algorithm>
#include <limits>
#include <span>

#include "util/check.hpp"

namespace mg::analysis {

namespace {

/// Single-GPU replay of one ordered task list.
void replay_gpu(const core::TaskGraph& graph,
                const std::vector<core::TaskId>& order,
                std::uint64_t memory_bytes, ReplayEviction eviction,
                std::uint64_t& loads, std::uint64_t& bytes) {
  const std::uint32_t num_data = graph.num_data();
  std::vector<bool> resident(num_data, false);
  std::vector<std::uint64_t> lru_stamp(num_data, 0);
  std::uint64_t clock = 0;
  std::uint64_t used = 0;
  std::vector<core::DataId> resident_list;

  // Belady: next-use positions per data, consumed front to back.
  std::vector<std::vector<std::uint32_t>> uses;
  if (eviction == ReplayEviction::kBelady) {
    uses.resize(num_data);
    for (std::uint32_t pos = 0; pos < order.size(); ++pos) {
      for (core::DataId data : graph.inputs(order[pos])) {
        uses[data].push_back(pos);
      }
    }
  }

  for (std::uint32_t pos = 0; pos < order.size(); ++pos) {
    const core::TaskId task = order[pos];
    const auto inputs = graph.inputs(task);
    MG_CHECK_MSG(graph.input_bytes(task) <= memory_bytes,
                 "task footprint exceeds memory bound");

    const auto previous_inputs =
        (eviction == ReplayEviction::kLruPipelined && pos > 0)
            ? graph.inputs(order[pos - 1])
            : std::span<const core::DataId>{};
    auto is_input = [&inputs, &previous_inputs](core::DataId data) {
      if (std::find(inputs.begin(), inputs.end(), data) != inputs.end()) {
        return true;
      }
      return std::find(previous_inputs.begin(), previous_inputs.end(),
                       data) != previous_inputs.end();
    };

    for (core::DataId data : inputs) {
      if (resident[data]) continue;
      const std::uint64_t size = graph.data_size(data);
      // Evict until the new data fits; never evict inputs of this task
      // (the natural assumption V(k,i) ∩ D(T_σ(k,i)) = ∅ of Section III).
      while (used + size > memory_bytes) {
        core::DataId victim = core::kInvalidData;
        if (eviction != ReplayEviction::kBelady) {
          std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
          for (core::DataId candidate : resident_list) {
            if (is_input(candidate)) continue;
            if (lru_stamp[candidate] < oldest) {
              oldest = lru_stamp[candidate];
              victim = candidate;
            }
          }
          // Pipelined mode protects the previous task's inputs; if that
          // leaves no victim (everything resident belongs to the two
          // pipelined tasks), fall back to protecting only the current
          // inputs — the engine analog is waiting for the previous task to
          // complete and unpin.
          if (victim == core::kInvalidData &&
              eviction == ReplayEviction::kLruPipelined) {
            for (core::DataId candidate : resident_list) {
              if (std::find(inputs.begin(), inputs.end(), candidate) !=
                  inputs.end()) {
                continue;
              }
              if (lru_stamp[candidate] < oldest) {
                oldest = lru_stamp[candidate];
                victim = candidate;
              }
            }
          }
        } else {
          std::uint64_t furthest = 0;
          for (core::DataId candidate : resident_list) {
            if (is_input(candidate)) continue;
            // Next use strictly after the current position.
            const auto& candidate_uses = uses[candidate];
            const auto next = std::upper_bound(candidate_uses.begin(),
                                               candidate_uses.end(), pos);
            const std::uint64_t next_use =
                next == candidate_uses.end()
                    ? std::numeric_limits<std::uint64_t>::max()
                    : *next;
            if (victim == core::kInvalidData || next_use > furthest) {
              furthest = next_use;
              victim = candidate;
            }
          }
        }
        MG_CHECK_MSG(victim != core::kInvalidData,
                     "cannot make room: all resident data are task inputs");
        resident[victim] = false;
        used -= graph.data_size(victim);
        resident_list.erase(
            std::find(resident_list.begin(), resident_list.end(), victim));
      }
      resident[data] = true;
      used += size;
      resident_list.push_back(data);
      ++loads;
      bytes += size;
    }
    for (core::DataId data : inputs) lru_stamp[data] = ++clock;
  }
}

}  // namespace

ReplayResult replay_schedule(const core::TaskGraph& graph,
                             const Schedule& schedule,
                             std::uint64_t memory_bytes,
                             ReplayEviction eviction) {
  // σ must be a permutation of the task set.
  std::vector<bool> seen(graph.num_tasks(), false);
  std::size_t total = 0;
  for (const auto& order : schedule) {
    for (core::TaskId task : order) {
      MG_CHECK_MSG(task < graph.num_tasks(), "unknown task in schedule");
      MG_CHECK_MSG(!seen[task], "task scheduled twice");
      seen[task] = true;
      ++total;
    }
  }
  MG_CHECK_MSG(total == graph.num_tasks(), "schedule misses tasks");

  ReplayResult result;
  result.per_gpu_loads.resize(schedule.size(), 0);
  result.per_gpu_bytes.resize(schedule.size(), 0);
  for (std::size_t gpu = 0; gpu < schedule.size(); ++gpu) {
    replay_gpu(graph, schedule[gpu], memory_bytes, eviction,
               result.per_gpu_loads[gpu], result.per_gpu_bytes[gpu]);
    result.total_loads += result.per_gpu_loads[gpu];
    result.total_bytes += result.per_gpu_bytes[gpu];
    result.max_tasks_on_any_gpu =
        std::max<std::uint64_t>(result.max_tasks_on_any_gpu,
                                schedule[gpu].size());
  }
  return result;
}

std::uint64_t loads_lower_bound(const core::TaskGraph& graph) {
  std::uint64_t needed = 0;
  for (core::DataId data = 0; data < graph.num_data(); ++data) {
    if (!graph.consumers(data).empty()) ++needed;
  }
  return needed;
}

std::uint64_t bytes_lower_bound(const core::TaskGraph& graph) {
  std::uint64_t bytes = 0;
  for (core::DataId data = 0; data < graph.num_data(); ++data) {
    if (!graph.consumers(data).empty()) bytes += graph.data_size(data);
  }
  return bytes;
}

std::uint64_t max_live_footprint(const core::TaskGraph& graph,
                                 const std::vector<core::TaskId>& order) {
  // Live interval of each data item: positions of its first and last use.
  constexpr std::uint32_t kNever = 0xffffffffu;
  std::vector<std::uint32_t> first_use(graph.num_data(), kNever);
  std::vector<std::uint32_t> last_use(graph.num_data(), 0);
  for (std::uint32_t pos = 0; pos < order.size(); ++pos) {
    for (core::DataId data : graph.inputs(order[pos])) {
      if (first_use[data] == kNever) first_use[data] = pos;
      last_use[data] = pos;
    }
  }

  // Sweep positions accumulating +size at first use, -size after last use.
  std::vector<std::int64_t> delta(order.size() + 1, 0);
  for (core::DataId data = 0; data < graph.num_data(); ++data) {
    if (first_use[data] == kNever) continue;
    const auto size = static_cast<std::int64_t>(graph.data_size(data));
    delta[first_use[data]] += size;
    delta[last_use[data] + 1] -= size;
  }
  std::int64_t live = 0;
  std::int64_t peak = 0;
  for (std::int64_t d : delta) {
    live += d;
    peak = std::max(peak, live);
  }
  return static_cast<std::uint64_t>(peak);
}

}  // namespace mg::analysis
