// Reference lines drawn in the paper's figures: peak GFlop/s, the PCI-bus
// transfer budget, and the "matrix fits in (cumulated) memory" thresholds.
#pragma once

#include <cstdint>

#include "core/platform.hpp"
#include "core/task_graph.hpp"

namespace mg::analysis {

/// "GFlop/s max" horizontal line: aggregate peak of the platform.
[[nodiscard]] inline double gflops_max(const core::Platform& platform) {
  return platform.peak_gflops();
}

/// Time to process the whole graph at peak with zero transfer stalls (us).
[[nodiscard]] inline double optimal_compute_time_us(
    const core::TaskGraph& graph, const core::Platform& platform) {
  return graph.total_flops() / (platform.peak_gflops() * 1e9) * 1e6;
}

/// "PCI bus limit" curve of Figures 4 and 7: the bytes that can cross the
/// shared bus within the optimal compute time. A strategy transferring more
/// than this is necessarily transfer-bound.
[[nodiscard]] inline double pci_limit_bytes(const core::TaskGraph& graph,
                                            const core::Platform& platform) {
  return optimal_compute_time_us(graph, platform) / 1e6 *
         platform.bus_bandwidth_bytes_per_s;
}

/// Largest 2D-matmul working set (bytes) such that one input matrix fits in
/// the cumulated GPU memory (the red dashed threshold): matrix B occupies
/// half the working set.
[[nodiscard]] inline std::uint64_t threshold_one_matrix_fits(
    const core::Platform& platform) {
  return 2 * platform.cumulated_memory_bytes();
}

/// Largest working set such that both input matrices fit (orange threshold).
[[nodiscard]] inline std::uint64_t threshold_both_matrices_fit(
    const core::Platform& platform) {
  return platform.cumulated_memory_bytes();
}

/// Minimum number of host->GPU loads any eviction-free schedule performs:
/// every data item consumed by at least one task must land somewhere at
/// least once, whatever the task placement.
[[nodiscard]] inline std::uint64_t min_loads_lower_bound(
    const core::TaskGraph& graph) {
  std::uint64_t used = 0;
  for (core::DataId data = 0; data < graph.num_data(); ++data) {
    if (!graph.consumers(data).empty()) ++used;
  }
  return used;
}

/// Byte-volume companion of min_loads_lower_bound: the bytes of every data
/// item with at least one consumer, each counted once.
[[nodiscard]] inline std::uint64_t min_load_bytes_lower_bound(
    const core::TaskGraph& graph) {
  std::uint64_t bytes = 0;
  for (core::DataId data = 0; data < graph.num_data(); ++data) {
    if (!graph.consumers(data).empty()) bytes += graph.data_size(data);
  }
  return bytes;
}

/// Upper bound on loads for an eviction-free run on `num_gpus` GPUs: each
/// used data item lands at most once per GPU.
[[nodiscard]] inline std::uint64_t eviction_free_loads_upper_bound(
    const core::TaskGraph& graph, std::uint32_t num_gpus) {
  return min_loads_lower_bound(graph) * num_gpus;
}

}  // namespace mg::analysis
