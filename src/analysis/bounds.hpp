// Reference lines drawn in the paper's figures: peak GFlop/s, the PCI-bus
// transfer budget, and the "matrix fits in (cumulated) memory" thresholds.
#pragma once

#include <cstdint>

#include "core/platform.hpp"
#include "core/task_graph.hpp"

namespace mg::analysis {

/// "GFlop/s max" horizontal line: aggregate peak of the platform.
[[nodiscard]] inline double gflops_max(const core::Platform& platform) {
  return platform.peak_gflops();
}

/// Time to process the whole graph at peak with zero transfer stalls (us).
[[nodiscard]] inline double optimal_compute_time_us(
    const core::TaskGraph& graph, const core::Platform& platform) {
  return graph.total_flops() / (platform.peak_gflops() * 1e9) * 1e6;
}

/// "PCI bus limit" curve of Figures 4 and 7: the bytes that can cross the
/// shared bus within the optimal compute time. A strategy transferring more
/// than this is necessarily transfer-bound.
[[nodiscard]] inline double pci_limit_bytes(const core::TaskGraph& graph,
                                            const core::Platform& platform) {
  return optimal_compute_time_us(graph, platform) / 1e6 *
         platform.bus_bandwidth_bytes_per_s;
}

/// Largest 2D-matmul working set (bytes) such that one input matrix fits in
/// the cumulated GPU memory (the red dashed threshold): matrix B occupies
/// half the working set.
[[nodiscard]] inline std::uint64_t threshold_one_matrix_fits(
    const core::Platform& platform) {
  return 2 * platform.cumulated_memory_bytes();
}

/// Largest working set such that both input matrices fit (orange threshold).
[[nodiscard]] inline std::uint64_t threshold_both_matrices_fit(
    const core::Platform& platform) {
  return platform.cumulated_memory_bytes();
}

}  // namespace mg::analysis
