// Trace export and reuse statistics.
//
// export_chrome_trace writes the simulation trace in the Chrome tracing
// JSON format (load it at chrome://tracing or https://ui.perfetto.dev):
// one row per GPU with task execution slices, plus instant events for
// loads, peer copies and evictions.
//
// compute_reuse_stats summarizes data movement quality: how often each
// data item was (re)loaded, the reload histogram, and the reuse factor —
// the quantities behind the paper's transfer figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/task_graph.hpp"
#include "sim/trace.hpp"

namespace mg::analysis {

/// Writes the trace as Chrome tracing JSON. Returns false on I/O error.
bool export_chrome_trace(const core::TaskGraph& graph,
                         const core::Platform& platform,
                         const sim::Trace& trace, const std::string& path);

struct ReuseStats {
  std::uint64_t total_loads = 0;       ///< host + peer loads
  std::uint64_t distinct_data = 0;     ///< data items loaded at least once
  std::uint64_t reloads = 0;           ///< loads beyond the first per (gpu, data)
  double mean_loads_per_used_data = 0.0;
  std::uint64_t max_loads_one_data = 0;
  core::DataId most_reloaded = core::kInvalidData;

  /// histogram[k] = number of (gpu, data) pairs loaded exactly k+1 times.
  std::vector<std::uint64_t> histogram;
};

ReuseStats compute_reuse_stats(const core::TaskGraph& graph,
                               const core::Platform& platform,
                               const sim::Trace& trace);

}  // namespace mg::analysis
