// Trace validation: checks that a simulation trace respects the execution
// model of Section III — residency at task start, the per-GPU memory bound,
// exactly-once execution — and that the trace's load/evict structure is
// internally consistent.
#pragma once

#include <string>

#include "core/platform.hpp"
#include "core/task_graph.hpp"
#include "sim/trace.hpp"

namespace mg::analysis {

struct ValidationResult {
  bool ok = true;
  std::string error;  ///< first violation found, empty when ok
};

ValidationResult validate_trace(const core::TaskGraph& graph,
                                const core::Platform& platform,
                                const sim::Trace& trace);

}  // namespace mg::analysis
