#include "analysis/validate.hpp"

#include <cstdio>
#include <vector>

namespace mg::analysis {

namespace {

std::string format_error(const char* what, core::GpuId gpu, std::uint32_t id,
                         double time_us) {
  char buffer[160];
  std::snprintf(buffer, sizeof buffer, "%s (gpu=%u id=%u t=%.3fus)", what, gpu,
                id, time_us);
  return buffer;
}

}  // namespace

ValidationResult validate_trace(const core::TaskGraph& graph,
                                const core::Platform& platform,
                                const sim::Trace& trace) {
  const std::uint32_t num_gpus = platform.num_gpus;
  std::vector<std::vector<bool>> resident(
      num_gpus, std::vector<bool>(graph.num_data(), false));
  std::vector<std::uint64_t> used(num_gpus, 0);
  std::vector<std::uint32_t> executions(graph.num_tasks(), 0);
  std::vector<std::int32_t> running(num_gpus, -1);
  double last_time = 0.0;

  auto fail = [](std::string message) {
    return ValidationResult{false, std::move(message)};
  };

  for (const sim::TraceEvent& event : trace.events) {
    if (event.time_us + 1e-9 < last_time) {
      return fail(format_error("time went backwards", event.gpu, event.id,
                               event.time_us));
    }
    last_time = event.time_us;
    if (event.gpu >= num_gpus) {
      return fail(format_error("unknown gpu", event.gpu, event.id,
                               event.time_us));
    }
    switch (event.kind) {
      case sim::TraceKind::kLoad:
      case sim::TraceKind::kPeerLoad: {
        if (event.id >= graph.num_data()) {
          return fail(format_error("load of unknown data", event.gpu, event.id,
                                   event.time_us));
        }
        if (resident[event.gpu][event.id]) {
          return fail(format_error("load of already-resident data", event.gpu,
                                   event.id, event.time_us));
        }
        resident[event.gpu][event.id] = true;
        used[event.gpu] += graph.data_size(event.id);
        if (used[event.gpu] > platform.gpu_memory_bytes) {
          return fail(format_error("memory bound exceeded", event.gpu,
                                   event.id, event.time_us));
        }
        break;
      }
      case sim::TraceKind::kEvict: {
        if (event.id >= graph.num_data() || !resident[event.gpu][event.id]) {
          return fail(format_error("evict of non-resident data", event.gpu,
                                   event.id, event.time_us));
        }
        resident[event.gpu][event.id] = false;
        used[event.gpu] -= graph.data_size(event.id);
        break;
      }
      case sim::TraceKind::kTaskStart: {
        if (event.id >= graph.num_tasks()) {
          return fail(format_error("start of unknown task", event.gpu,
                                   event.id, event.time_us));
        }
        if (running[event.gpu] != -1) {
          return fail(format_error("two tasks running on one gpu", event.gpu,
                                   event.id, event.time_us));
        }
        for (core::DataId data : graph.inputs(event.id)) {
          if (!resident[event.gpu][data]) {
            return fail(format_error("task started with missing input",
                                     event.gpu, event.id, event.time_us));
          }
        }
        running[event.gpu] = static_cast<std::int32_t>(event.id);
        break;
      }
      case sim::TraceKind::kWriteBack:
        // No residency effect; scratch accounting is internal to the
        // simulator and not visible in the trace.
        break;
      case sim::TraceKind::kTaskEnd: {
        if (running[event.gpu] != static_cast<std::int32_t>(event.id)) {
          return fail(format_error("end of task that was not running",
                                   event.gpu, event.id, event.time_us));
        }
        running[event.gpu] = -1;
        ++executions[event.id];
        break;
      }
    }
  }

  for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
    if (executions[task] != 1) {
      char buffer[96];
      std::snprintf(buffer, sizeof buffer,
                    "task %u executed %u times (expected once)", task,
                    executions[task]);
      return fail(buffer);
    }
  }
  return {};
}

}  // namespace mg::analysis
