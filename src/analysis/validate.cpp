#include "analysis/validate.hpp"

#include "sim/inspector.hpp"
#include "sim/invariant_checker.hpp"

namespace mg::analysis {

namespace {

/// A bare trace only records load/evict/start/end/write-back, so the replay
/// feeds the checker the subset of the inspector event stream those map to;
/// Options::online = false relaxes the fetch/notify checks accordingly. The
/// invariants themselves (residency at start, memory bound, exactly-once,
/// one task per GPU, monotone time) live in sim::InvariantChecker only.
sim::InspectorEvent to_inspector_event(const sim::TraceEvent& event) {
  sim::InspectorEvent out;
  out.time_us = event.time_us;
  out.gpu = event.gpu;
  out.id = event.id;
  switch (event.kind) {
    case sim::TraceKind::kLoad:
      out.kind = sim::InspectorEventKind::kLoadComplete;
      break;
    case sim::TraceKind::kPeerLoad:
      out.kind = sim::InspectorEventKind::kLoadComplete;
      out.aux = 1;
      break;
    case sim::TraceKind::kEvict:
      out.kind = sim::InspectorEventKind::kEvict;
      break;
    case sim::TraceKind::kTaskStart:
      out.kind = sim::InspectorEventKind::kTaskStart;
      break;
    case sim::TraceKind::kTaskEnd:
      out.kind = sim::InspectorEventKind::kTaskEnd;
      break;
    case sim::TraceKind::kWriteBack:
      out.kind = sim::InspectorEventKind::kWriteBackEnd;
      break;
  }
  return out;
}

}  // namespace

ValidationResult validate_trace(const core::TaskGraph& graph,
                                const core::Platform& platform,
                                const sim::Trace& trace) {
  sim::InvariantChecker checker(
      {.fail_fast = false, .online = false, .log_window = 24});
  checker.on_run_begin(graph, platform, "replay");
  for (const sim::TraceEvent& event : trace.events) {
    checker.on_event(to_inspector_event(event));
    if (!checker.ok()) break;
  }
  checker.finish();
  return ValidationResult{checker.report().ok, checker.report().error};
}

}  // namespace mg::analysis
