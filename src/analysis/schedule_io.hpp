// Schedule persistence: save a realized schedule (σ — per-GPU ordered task
// lists, e.g. extracted from a simulation trace) to a small text format and
// load it back, so expensive static schedules can be archived and replayed
// (via sched::FixedOrderScheduler) across runs and machines.
//
// Format ("memsched-schedule v1"):
//   memsched-schedule v1
//   gpus <K>
//   gpu <k> <count>
//   <task ids, whitespace separated, possibly over several lines>
//   ...
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/task_graph.hpp"

namespace mg::analysis {

using Schedule = std::vector<std::vector<core::TaskId>>;

/// Writes σ to `path`. Returns false on I/O error.
bool save_schedule(const Schedule& schedule, const std::string& path);

/// Loads a schedule; std::nullopt on I/O or format error.
std::optional<Schedule> load_schedule(const std::string& path);

/// Checks that σ covers every task of `graph` exactly once.
bool schedule_matches_graph(const Schedule& schedule,
                            const core::TaskGraph& graph);

}  // namespace mg::analysis
