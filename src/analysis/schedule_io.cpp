#include "analysis/schedule_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mg::analysis {

namespace {
constexpr const char* kMagic = "memsched-schedule v1";
}  // namespace

bool save_schedule(const Schedule& schedule, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << kMagic << "\n";
  out << "gpus " << schedule.size() << "\n";
  for (std::size_t gpu = 0; gpu < schedule.size(); ++gpu) {
    out << "gpu " << gpu << " " << schedule[gpu].size() << "\n";
    for (std::size_t i = 0; i < schedule[gpu].size(); ++i) {
      out << schedule[gpu][i]
          << ((i + 1) % 16 == 0 || i + 1 == schedule[gpu].size() ? "\n" : " ");
    }
  }
  return out.good();
}

std::optional<Schedule> load_schedule(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;

  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) return std::nullopt;

  std::string keyword;
  std::size_t num_gpus = 0;
  if (!(in >> keyword >> num_gpus) || keyword != "gpus") return std::nullopt;

  Schedule schedule(num_gpus);
  for (std::size_t expected = 0; expected < num_gpus; ++expected) {
    std::size_t gpu = 0;
    std::size_t count = 0;
    if (!(in >> keyword >> gpu >> count) || keyword != "gpu" ||
        gpu >= num_gpus) {
      return std::nullopt;
    }
    schedule[gpu].reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      core::TaskId task = 0;
      if (!(in >> task)) return std::nullopt;
      schedule[gpu].push_back(task);
    }
  }
  return schedule;
}

bool schedule_matches_graph(const Schedule& schedule,
                            const core::TaskGraph& graph) {
  std::vector<std::uint32_t> seen(graph.num_tasks(), 0);
  std::size_t total = 0;
  for (const auto& order : schedule) {
    for (core::TaskId task : order) {
      if (task >= graph.num_tasks()) return false;
      if (++seen[task] > 1) return false;
      ++total;
    }
  }
  return total == graph.num_tasks();
}

}  // namespace mg::analysis
