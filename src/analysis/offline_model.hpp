// Offline evaluation of the formal model of Section III.
//
// Given a complete schedule σ (per-GPU ordered task lists), replays the
// load/evict sequence of each GPU under a chosen eviction policy and counts
// loads — the quantity Obj.2 minimizes. Belady's rule gives the optimal
// eviction scheme for a fixed σ (the paper's observation, after [14]);
// comparing a policy against it isolates eviction quality from schedule
// quality.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.hpp"
#include "core/task_graph.hpp"

namespace mg::analysis {

/// σ: execution order per GPU. Every task appears exactly once overall.
using Schedule = std::vector<std::vector<core::TaskId>>;

enum class ReplayEviction {
  kLru,
  kBelady,
  /// LRU, but inputs of the immediately preceding task are not evictable —
  /// this mirrors the runtime engine's pipeline, where the next task's
  /// inputs are fetched while the previous task still runs (and pins its
  /// own inputs). Since the previous task's inputs carry the newest LRU
  /// stamps anyway, this only diverges from kLru when *everything* resident
  /// belongs to the two pipelined tasks (then it falls back to kLru rather
  /// than deadlock); it exists to mirror the engine's feasibility
  /// constraints in cross-validation.
  kLruPipelined,
};

struct ReplayResult {
  std::uint64_t total_loads = 0;        ///< count of load operations
  std::uint64_t total_bytes = 0;        ///< bytes loaded
  std::vector<std::uint64_t> per_gpu_loads;
  std::vector<std::uint64_t> per_gpu_bytes;
  std::uint64_t max_tasks_on_any_gpu = 0;  ///< Obj.1 value of σ
};

/// Replays σ against per-GPU memories of `memory_bytes` bytes. Aborts (via
/// MG_CHECK) if σ is not a permutation of the task set or if some task's
/// inputs exceed the memory bound.
ReplayResult replay_schedule(const core::TaskGraph& graph,
                             const Schedule& schedule,
                             std::uint64_t memory_bytes,
                             ReplayEviction eviction);

/// Lower bound on total loads for *any* schedule on any number of GPUs:
/// every data item with at least one consumer must be loaded at least once.
std::uint64_t loads_lower_bound(const core::TaskGraph& graph);

/// Same in bytes.
std::uint64_t bytes_lower_bound(const core::TaskGraph& graph);

/// Minimum memory (bytes) under which a single-GPU execution of `order`
/// can still achieve exactly one load per data: the peak total size of
/// data whose [first use, last use] intervals overlap. Below this, reloads
/// are unavoidable for that order; at or above it, Belady needs no reload.
std::uint64_t max_live_footprint(const core::TaskGraph& graph,
                                 const std::vector<core::TaskId>& order);

}  // namespace mg::analysis
