// Hypergraph type used by the hMETIS+R strategy (Algorithm 3).
//
// Vertices model tasks (weighted by work), nets model data (weighted by
// size): a net connects every task consuming one data item, so a balanced
// partition with small net cut is a task partition where few data are needed
// by several GPUs — exactly the formulation of Kaya & Aykanat adopted by the
// paper. Storage is CSR in both directions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/task_graph.hpp"

namespace mg::hyper {

using VertexId = std::uint32_t;
using NetId = std::uint32_t;

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Builds from explicit pin lists: `net_pins[e]` lists the vertices of net
  /// e. Vertices with no nets are allowed. Nets with fewer than 2 pins are
  /// kept (they can never be cut and are skipped by the algorithms).
  Hypergraph(std::vector<std::uint64_t> vertex_weights,
             const std::vector<std::vector<VertexId>>& net_pins,
             std::vector<std::uint64_t> net_weights);

  [[nodiscard]] std::uint32_t num_vertices() const {
    return static_cast<std::uint32_t>(vertex_weights_.size());
  }
  [[nodiscard]] std::uint32_t num_nets() const {
    return static_cast<std::uint32_t>(net_weights_.size());
  }

  [[nodiscard]] std::span<const VertexId> pins(NetId net) const {
    return {pins_.data() + net_offsets_[net],
            net_offsets_[net + 1] - net_offsets_[net]};
  }
  [[nodiscard]] std::span<const NetId> nets_of(VertexId vertex) const {
    return {memberships_.data() + vertex_offsets_[vertex],
            vertex_offsets_[vertex + 1] - vertex_offsets_[vertex]};
  }

  [[nodiscard]] std::uint64_t vertex_weight(VertexId vertex) const {
    return vertex_weights_[vertex];
  }
  [[nodiscard]] std::uint64_t net_weight(NetId net) const {
    return net_weights_[net];
  }
  [[nodiscard]] std::uint64_t total_vertex_weight() const {
    return total_vertex_weight_;
  }
  [[nodiscard]] std::size_t num_pins() const { return pins_.size(); }

 private:
  std::vector<std::uint64_t> vertex_weights_;
  std::vector<std::uint64_t> net_weights_;
  std::vector<std::uint32_t> net_offsets_;     // size nets+1
  std::vector<VertexId> pins_;                 // CSR net -> vertices
  std::vector<std::uint32_t> vertex_offsets_;  // size vertices+1
  std::vector<NetId> memberships_;             // CSR vertex -> nets
  std::uint64_t total_vertex_weight_ = 0;
};

/// The paper's model: one vertex per task (weight proportional to its
/// flops), one net per data item (weight = its size in bytes).
Hypergraph hypergraph_from_task_graph(const core::TaskGraph& graph);

}  // namespace mg::hyper
