// Partition quality metrics: hyperedge cut, connectivity-1 (the (λ-1)
// metric, which for the task/data model counts exactly the extra copies of
// each data that a partition forces), and load imbalance.
#pragma once

#include <cstdint>
#include <span>

#include "hypergraph/hypergraph.hpp"

namespace mg::hyper {

struct PartitionQuality {
  std::uint64_t cut_nets_weight = 0;       ///< sum of w_e over nets with λ>1
  std::uint64_t connectivity_minus_1 = 0;  ///< sum of (λ_e - 1) * w_e
  double imbalance = 0.0;  ///< max_part_weight / ideal_weight - 1
};

PartitionQuality evaluate_partition(const Hypergraph& hypergraph,
                                    std::span<const std::uint32_t> part,
                                    std::uint32_t num_parts);

}  // namespace mg::hyper
