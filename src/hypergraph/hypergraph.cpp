#include "hypergraph/hypergraph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace mg::hyper {

Hypergraph::Hypergraph(std::vector<std::uint64_t> vertex_weights,
                       const std::vector<std::vector<VertexId>>& net_pins,
                       std::vector<std::uint64_t> net_weights)
    : vertex_weights_(std::move(vertex_weights)),
      net_weights_(std::move(net_weights)) {
  MG_CHECK_MSG(net_pins.size() == net_weights_.size(),
               "one weight per net required");
  const auto num_vertices = static_cast<std::uint32_t>(vertex_weights_.size());

  net_offsets_.assign(net_pins.size() + 1, 0);
  std::size_t total_pins = 0;
  for (std::size_t e = 0; e < net_pins.size(); ++e) {
    total_pins += net_pins[e].size();
    net_offsets_[e + 1] = static_cast<std::uint32_t>(total_pins);
  }
  pins_.reserve(total_pins);
  for (const auto& net : net_pins) {
    for (VertexId vertex : net) {
      MG_CHECK_MSG(vertex < num_vertices, "pin references unknown vertex");
      pins_.push_back(vertex);
    }
  }

  // Reverse CSR.
  std::vector<std::uint32_t> degree(num_vertices, 0);
  for (VertexId vertex : pins_) ++degree[vertex];
  vertex_offsets_.assign(num_vertices + 1, 0);
  std::partial_sum(degree.begin(), degree.end(), vertex_offsets_.begin() + 1);
  memberships_.resize(total_pins);
  std::vector<std::uint32_t> cursor(vertex_offsets_.begin(),
                                    vertex_offsets_.end() - 1);
  for (NetId net = 0; net < net_pins.size(); ++net) {
    for (VertexId vertex : net_pins[net]) {
      memberships_[cursor[vertex]++] = net;
    }
  }

  total_vertex_weight_ = std::accumulate(vertex_weights_.begin(),
                                         vertex_weights_.end(),
                                         std::uint64_t{0});
}

Hypergraph hypergraph_from_task_graph(const core::TaskGraph& graph) {
  // Vertex weights: flops scaled so the lightest task weighs 1 — keeps the
  // balance constraint meaningful for heterogeneous kernels (Cholesky).
  double min_flops = 0.0;
  for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
    if (min_flops == 0.0 || graph.task_flops(task) < min_flops) {
      min_flops = graph.task_flops(task);
    }
  }
  std::vector<std::uint64_t> vertex_weights(graph.num_tasks(), 1);
  if (min_flops > 0.0) {
    for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
      vertex_weights[task] = static_cast<std::uint64_t>(
          std::llround(graph.task_flops(task) / min_flops));
    }
  }

  std::vector<std::vector<VertexId>> net_pins(graph.num_data());
  std::vector<std::uint64_t> net_weights(graph.num_data());
  for (core::DataId data = 0; data < graph.num_data(); ++data) {
    const auto consumers = graph.consumers(data);
    net_pins[data].assign(consumers.begin(), consumers.end());
    net_weights[data] = graph.data_size(data);
  }
  return Hypergraph(std::move(vertex_weights), net_pins,
                    std::move(net_weights));
}

}  // namespace mg::hyper
