#include "hypergraph/partitioner.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mg::hyper {
namespace {

constexpr std::uint32_t kUnmatched = std::numeric_limits<std::uint32_t>::max();

// ---------------------------------------------------------------------------
// Bisection state: side[v] in {0,1}, pin counts per net, side weights.
// ---------------------------------------------------------------------------

struct Bisection {
  std::vector<std::uint8_t> side;
  std::vector<std::array<std::uint32_t, 2>> pins_in;
  std::array<std::uint64_t, 2> weight{0, 0};
  std::uint64_t cut = 0;

  void init(const Hypergraph& hypergraph, std::vector<std::uint8_t> sides) {
    side = std::move(sides);
    pins_in.assign(hypergraph.num_nets(), {0, 0});
    weight = {0, 0};
    cut = 0;
    for (VertexId v = 0; v < hypergraph.num_vertices(); ++v) {
      weight[side[v]] += hypergraph.vertex_weight(v);
    }
    for (NetId e = 0; e < hypergraph.num_nets(); ++e) {
      for (VertexId v : hypergraph.pins(e)) ++pins_in[e][side[v]];
      if (pins_in[e][0] > 0 && pins_in[e][1] > 0) {
        cut += hypergraph.net_weight(e);
      }
    }
  }

  [[nodiscard]] std::int64_t gain(const Hypergraph& hypergraph,
                                  VertexId v) const {
    std::int64_t g = 0;
    const std::uint8_t from = side[v];
    for (NetId e : hypergraph.nets_of(v)) {
      const auto w = static_cast<std::int64_t>(hypergraph.net_weight(e));
      if (pins_in[e][from] == 1) g += w;           // becomes uncut
      if (pins_in[e][1 - from] == 0) g -= w;       // becomes cut
    }
    return g;
  }

  void move(const Hypergraph& hypergraph, VertexId v) {
    const std::uint8_t from = side[v];
    const std::uint8_t to = static_cast<std::uint8_t>(1 - from);
    for (NetId e : hypergraph.nets_of(v)) {
      const std::uint64_t w = hypergraph.net_weight(e);
      const bool was_cut = pins_in[e][0] > 0 && pins_in[e][1] > 0;
      --pins_in[e][from];
      ++pins_in[e][to];
      const bool is_cut = pins_in[e][0] > 0 && pins_in[e][1] > 0;
      if (was_cut && !is_cut) cut -= w;
      if (!was_cut && is_cut) cut += w;
    }
    weight[from] -= hypergraph.vertex_weight(v);
    weight[to] += hypergraph.vertex_weight(v);
    side[v] = to;
  }
};

struct BalanceBounds {
  std::array<std::uint64_t, 2> max_weight;

  [[nodiscard]] std::uint64_t overweight(
      const std::array<std::uint64_t, 2>& weight) const {
    std::uint64_t over = 0;
    for (std::size_t s = 0; s < 2; ++s) {
      if (weight[s] > max_weight[s]) over += weight[s] - max_weight[s];
    }
    return over;
  }
};

// ---------------------------------------------------------------------------
// FM refinement with rollback to the best feasible prefix. Returns true if
// the pass improved (cut or balance).
// ---------------------------------------------------------------------------

bool fm_pass(const Hypergraph& hypergraph, Bisection& bisection,
             const BalanceBounds& bounds) {
  const std::uint32_t n = hypergraph.num_vertices();

  struct HeapEntry {
    std::int64_t gain;
    VertexId vertex;
    bool operator<(const HeapEntry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return vertex > other.vertex;  // deterministic tie-break
    }
  };
  std::priority_queue<HeapEntry> heap;
  std::vector<std::uint8_t> locked(n, 0);

  // Seed the heap with boundary vertices (vertices on at least one cut net);
  // if the partition is unbalanced also seed everything on the heavy side.
  const bool fix_balance = bounds.overweight(bisection.weight) > 0;
  for (VertexId v = 0; v < n; ++v) {
    bool boundary = false;
    for (NetId e : hypergraph.nets_of(v)) {
      if (bisection.pins_in[e][0] > 0 && bisection.pins_in[e][1] > 0) {
        boundary = true;
        break;
      }
    }
    const bool heavy_side =
        fix_balance &&
        bisection.weight[bisection.side[v]] >
            bounds.max_weight[bisection.side[v]];
    if (boundary || heavy_side) {
      heap.push({bisection.gain(hypergraph, v), v});
    }
  }

  const std::uint64_t start_cut = bisection.cut;
  const std::uint64_t start_over = bounds.overweight(bisection.weight);

  std::vector<VertexId> moves;
  std::int64_t cum_gain = 0;
  std::int64_t best_gain = 0;
  std::size_t best_prefix = 0;
  std::uint64_t best_over = start_over;
  bool best_found = false;

  const std::size_t move_limit = n;
  std::size_t since_best = 0;
  const std::size_t patience = std::max<std::size_t>(64, n / 10);

  while (!heap.empty() && moves.size() < move_limit && since_best < patience) {
    const HeapEntry top = heap.top();
    heap.pop();
    const VertexId v = top.vertex;
    if (locked[v]) continue;
    const std::int64_t current_gain = bisection.gain(hypergraph, v);
    if (current_gain != top.gain) {  // stale entry: reinsert with fresh gain
      heap.push({current_gain, v});
      continue;
    }
    // Balance feasibility of the move (allow when it reduces overweight).
    const std::uint8_t to = static_cast<std::uint8_t>(1 - bisection.side[v]);
    const std::uint64_t to_weight =
        bisection.weight[to] + hypergraph.vertex_weight(v);
    const std::uint64_t over_now = bounds.overweight(bisection.weight);
    auto weight_after = bisection.weight;
    weight_after[bisection.side[v]] -= hypergraph.vertex_weight(v);
    weight_after[to] = to_weight;
    const std::uint64_t over_after = bounds.overweight(weight_after);
    if (over_after > over_now) continue;  // would worsen balance: skip

    bisection.move(hypergraph, v);
    locked[v] = 1;
    moves.push_back(v);
    cum_gain += current_gain;

    const std::uint64_t over = bounds.overweight(bisection.weight);
    const bool better =
        (over < best_over) || (over == best_over &&
                               (!best_found || cum_gain > best_gain));
    if (better) {
      best_found = true;
      best_gain = cum_gain;
      best_prefix = moves.size();
      best_over = over;
      since_best = 0;
    } else {
      ++since_best;
    }

    // Refresh neighbours whose gain changed.
    for (NetId e : hypergraph.nets_of(v)) {
      // Only nets near the boundary matter; skip internal ones.
      if (bisection.pins_in[e][0] != 0 && bisection.pins_in[e][1] != 0 &&
          bisection.pins_in[e][0] + bisection.pins_in[e][1] > 1) {
        for (VertexId u : hypergraph.pins(e)) {
          if (!locked[u]) heap.push({bisection.gain(hypergraph, u), u});
        }
      }
    }
  }

  // Roll back to the best prefix.
  while (moves.size() > best_prefix) {
    bisection.move(hypergraph, moves.back());
    moves.pop_back();
  }

  const std::uint64_t end_over = bounds.overweight(bisection.weight);
  return bisection.cut < start_cut || end_over < start_over;
}

void refine(const Hypergraph& hypergraph, Bisection& bisection,
            const BalanceBounds& bounds, std::uint32_t max_passes) {
  for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
    if (!fm_pass(hypergraph, bisection, bounds)) break;
  }
}

// ---------------------------------------------------------------------------
// Initial bisection: randomized BFS growth of part 0 up to its target
// weight, then FM.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> grow_initial(const Hypergraph& hypergraph,
                                       std::uint64_t target0,
                                       util::Rng& rng) {
  const std::uint32_t n = hypergraph.num_vertices();
  std::vector<std::uint8_t> side(n, 1);
  std::vector<std::uint8_t> visited(n, 0);
  std::uint64_t weight0 = 0;

  std::deque<VertexId> frontier;
  auto seed_new_component = [&]() {
    // Pick a random unvisited vertex.
    for (std::uint32_t attempts = 0; attempts < 8; ++attempts) {
      const VertexId v = static_cast<VertexId>(rng.below(n));
      if (!visited[v]) {
        frontier.push_back(v);
        visited[v] = 1;
        return true;
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (!visited[v]) {
        frontier.push_back(v);
        visited[v] = 1;
        return true;
      }
    }
    return false;
  };

  while (weight0 < target0) {
    if (frontier.empty() && !seed_new_component()) break;
    const VertexId v = frontier.front();
    frontier.pop_front();
    side[v] = 0;
    weight0 += hypergraph.vertex_weight(v);
    for (NetId e : hypergraph.nets_of(v)) {
      for (VertexId u : hypergraph.pins(e)) {
        if (!visited[u]) {
          visited[u] = 1;
          frontier.push_back(u);
        }
      }
    }
  }
  return side;
}

// ---------------------------------------------------------------------------
// Coarsening by heavy-connectivity matching.
// ---------------------------------------------------------------------------

struct CoarseLevel {
  Hypergraph hypergraph;
  std::vector<std::uint32_t> fine_to_coarse;
};

CoarseLevel coarsen(const Hypergraph& fine, util::Rng& rng) {
  const std::uint32_t n = fine.num_vertices();
  std::vector<std::uint32_t> match(n, kUnmatched);

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  // Scratch connection scores with a touched list for O(deg) reset.
  std::vector<double> score(n, 0.0);
  std::vector<VertexId> touched;

  // Very large nets contribute negligible per-pair affinity and dominate the
  // matching cost; skip them during matching (hMETIS does the same).
  constexpr std::size_t kMaxNetForMatching = 512;

  for (VertexId u : order) {
    if (match[u] != kUnmatched) continue;
    touched.clear();
    for (NetId e : fine.nets_of(u)) {
      const auto pins = fine.pins(e);
      if (pins.size() < 2 || pins.size() > kMaxNetForMatching) continue;
      const double contribution = static_cast<double>(fine.net_weight(e)) /
                                  static_cast<double>(pins.size() - 1);
      for (VertexId v : pins) {
        if (v == u || match[v] != kUnmatched) continue;
        if (score[v] == 0.0) touched.push_back(v);
        score[v] += contribution;
      }
    }
    VertexId best = kUnmatched;
    double best_score = 0.0;
    for (VertexId v : touched) {
      if (score[v] > best_score) {
        best_score = score[v];
        best = v;
      }
      score[v] = 0.0;
    }
    if (best != kUnmatched) {
      match[u] = best;
      match[best] = u;
    }
  }

  // Assign coarse ids (matched pairs share one id).
  std::vector<std::uint32_t> fine_to_coarse(n, kUnmatched);
  std::uint32_t coarse_n = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (fine_to_coarse[v] != kUnmatched) continue;
    fine_to_coarse[v] = coarse_n;
    if (match[v] != kUnmatched) fine_to_coarse[match[v]] = coarse_n;
    ++coarse_n;
  }

  std::vector<std::uint64_t> coarse_weights(coarse_n, 0);
  for (VertexId v = 0; v < n; ++v) {
    coarse_weights[fine_to_coarse[v]] += fine.vertex_weight(v);
  }

  // Coarse nets: project pins, dedupe, drop single-pin nets.
  std::vector<std::vector<VertexId>> coarse_pins;
  std::vector<std::uint64_t> coarse_net_weights;
  std::vector<VertexId> scratch;
  for (NetId e = 0; e < fine.num_nets(); ++e) {
    scratch.clear();
    for (VertexId v : fine.pins(e)) scratch.push_back(fine_to_coarse[v]);
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    if (scratch.size() < 2) continue;
    coarse_pins.push_back(scratch);
    coarse_net_weights.push_back(fine.net_weight(e));
  }

  return CoarseLevel{Hypergraph(std::move(coarse_weights), coarse_pins,
                                std::move(coarse_net_weights)),
                     std::move(fine_to_coarse)};
}

// ---------------------------------------------------------------------------
// One multilevel bisection run.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> multilevel_bisect(const Hypergraph& hypergraph,
                                            double fraction0,
                                            const PartitionerConfig& config,
                                            util::Rng& rng) {
  // Build the coarsening hierarchy.
  std::vector<CoarseLevel> levels;
  const Hypergraph* current = &hypergraph;
  while (current->num_vertices() > config.coarsen_limit) {
    CoarseLevel level = coarsen(*current, rng);
    if (level.hypergraph.num_vertices() >
        static_cast<std::uint32_t>(0.95 * current->num_vertices())) {
      break;  // coarsening stalled
    }
    levels.push_back(std::move(level));
    current = &levels.back().hypergraph;
  }

  const Hypergraph& coarsest = *current;
  const std::uint64_t total = coarsest.total_vertex_weight();
  const auto target0 =
      static_cast<std::uint64_t>(fraction0 * static_cast<double>(total));
  BalanceBounds bounds;
  bounds.max_weight[0] = static_cast<std::uint64_t>(
      static_cast<double>(target0) * (1.0 + config.imbalance));
  bounds.max_weight[1] = static_cast<std::uint64_t>(
      static_cast<double>(total - target0) * (1.0 + config.imbalance));

  // Initial partition: restarts of greedy growth + refinement, keep best.
  Bisection best;
  bool have_best = false;
  for (std::uint32_t run = 0; run < std::max(1u, config.num_restarts); ++run) {
    Bisection bisection;
    bisection.init(coarsest, grow_initial(coarsest, target0, rng));
    refine(coarsest, bisection, bounds, config.fm_max_passes);
    const std::uint64_t over = bounds.overweight(bisection.weight);
    const std::uint64_t best_over =
        have_best ? bounds.overweight(best.weight) : 0;
    if (!have_best || std::make_pair(over, bisection.cut) <
                          std::make_pair(best_over, best.cut)) {
      best = std::move(bisection);
      have_best = true;
    }
  }

  // Uncoarsen with refinement at each level.
  std::vector<std::uint8_t> side = std::move(best.side);
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const Hypergraph& fine_graph =
        (it + 1) == levels.rend() ? hypergraph : (it + 1)->hypergraph;
    std::vector<std::uint8_t> fine_side(fine_graph.num_vertices());
    for (VertexId v = 0; v < fine_graph.num_vertices(); ++v) {
      fine_side[v] = side[it->fine_to_coarse[v]];
    }
    Bisection bisection;
    bisection.init(fine_graph, std::move(fine_side));
    refine(fine_graph, bisection, bounds, config.fm_max_passes);
    side = std::move(bisection.side);
  }

  // No coarsening happened: refine the flat graph directly.
  if (levels.empty()) {
    Bisection bisection;
    bisection.init(hypergraph, std::move(side));
    refine(hypergraph, bisection, bounds, config.fm_max_passes);
    side = std::move(bisection.side);
  }
  return side;
}

std::uint64_t bisection_cost(const Hypergraph& hypergraph,
                             const std::vector<std::uint8_t>& side) {
  std::uint64_t cut = 0;
  for (NetId e = 0; e < hypergraph.num_nets(); ++e) {
    bool in0 = false;
    bool in1 = false;
    for (VertexId v : hypergraph.pins(e)) {
      (side[v] == 0 ? in0 : in1) = true;
      if (in0 && in1) break;
    }
    if (in0 && in1) cut += hypergraph.net_weight(e);
  }
  return cut;
}

// ---------------------------------------------------------------------------
// Recursive bisection to K parts.
// ---------------------------------------------------------------------------

struct SubProblem {
  Hypergraph hypergraph;
  std::vector<VertexId> global_ids;
};

SubProblem extract(const Hypergraph& hypergraph,
                   const std::vector<VertexId>& global_ids,
                   const std::vector<std::uint8_t>& side, std::uint8_t keep) {
  std::vector<std::uint32_t> remap(hypergraph.num_vertices(), kUnmatched);
  std::vector<std::uint64_t> weights;
  std::vector<VertexId> sub_globals;
  for (VertexId v = 0; v < hypergraph.num_vertices(); ++v) {
    if (side[v] != keep) continue;
    remap[v] = static_cast<std::uint32_t>(weights.size());
    weights.push_back(hypergraph.vertex_weight(v));
    sub_globals.push_back(global_ids[v]);
  }
  std::vector<std::vector<VertexId>> net_pins;
  std::vector<std::uint64_t> net_weights;
  std::vector<VertexId> scratch;
  for (NetId e = 0; e < hypergraph.num_nets(); ++e) {
    scratch.clear();
    for (VertexId v : hypergraph.pins(e)) {
      if (remap[v] != kUnmatched) scratch.push_back(remap[v]);
    }
    if (scratch.size() < 2) continue;
    net_pins.push_back(scratch);
    net_weights.push_back(hypergraph.net_weight(e));
  }
  return SubProblem{Hypergraph(std::move(weights), net_pins,
                               std::move(net_weights)),
                    std::move(sub_globals)};
}

void recursive_bisect(SubProblem problem, std::uint32_t num_parts,
                      std::uint32_t first_part,
                      const PartitionerConfig& config, util::Rng& rng,
                      std::vector<std::uint32_t>& out) {
  if (num_parts == 1) {
    for (VertexId global : problem.global_ids) out[global] = first_part;
    return;
  }
  const std::uint32_t parts0 = (num_parts + 1) / 2;
  const std::uint32_t parts1 = num_parts - parts0;
  // Proportional target: uniform by part count, or by the configured
  // shares of the parts this recursion level is responsible for.
  double fraction0 = static_cast<double>(parts0) / num_parts;
  if (!config.target_share.empty()) {
    double share0 = 0.0;
    double total = 0.0;
    for (std::uint32_t p = 0; p < num_parts; ++p) {
      const double share = config.target_share[first_part + p];
      total += share;
      if (p < parts0) share0 += share;
    }
    if (total > 0.0) fraction0 = share0 / total;
  }

  // Several independent multilevel runs; keep the best (V-cycles).
  std::vector<std::uint8_t> best_side;
  std::uint64_t best_cut = 0;
  for (std::uint32_t cycle = 0; cycle < std::max(1u, config.cycles); ++cycle) {
    std::vector<std::uint8_t> side =
        multilevel_bisect(problem.hypergraph, fraction0, config, rng);
    const std::uint64_t cut = bisection_cost(problem.hypergraph, side);
    if (best_side.empty() || cut < best_cut) {
      best_cut = cut;
      best_side = std::move(side);
    }
  }

  SubProblem sub0 = extract(problem.hypergraph, problem.global_ids, best_side,
                            /*keep=*/0);
  SubProblem sub1 = extract(problem.hypergraph, problem.global_ids, best_side,
                            /*keep=*/1);
  // Release the parent before recursing to bound peak memory.
  problem = SubProblem{};
  recursive_bisect(std::move(sub0), parts0, first_part, config, rng, out);
  recursive_bisect(std::move(sub1), parts1, first_part + parts0, config, rng,
                   out);
}

}  // namespace

void kway_refine(const Hypergraph& hypergraph,
                 std::vector<std::uint32_t>& part, std::uint32_t num_parts,
                 double imbalance, std::uint32_t max_passes,
                 std::span<const double> target_share) {
  const std::uint32_t n = hypergraph.num_vertices();
  if (n == 0 || num_parts < 2) return;
  MG_CHECK(target_share.empty() || target_share.size() == num_parts);

  // pins_in[e * num_parts + p] = pins of net e in part p.
  std::vector<std::uint32_t> pins_in(
      static_cast<std::size_t>(hypergraph.num_nets()) * num_parts, 0);
  std::vector<std::uint64_t> weights(num_parts, 0);
  for (VertexId v = 0; v < n; ++v) {
    weights[part[v]] += hypergraph.vertex_weight(v);
    for (NetId e : hypergraph.nets_of(v)) {
      ++pins_in[static_cast<std::size_t>(e) * num_parts + part[v]];
    }
  }
  const double total_weight =
      static_cast<double>(hypergraph.total_vertex_weight());
  double share_sum = 0.0;
  for (double share : target_share) share_sum += share;
  std::vector<std::uint64_t> max_weights(num_parts);
  for (std::uint32_t p = 0; p < num_parts; ++p) {
    const double share = target_share.empty() || share_sum <= 0.0
                             ? 1.0 / num_parts
                             : target_share[p] / share_sum;
    max_weights[p] = static_cast<std::uint64_t>(total_weight * share *
                                                (1.0 + imbalance));
  }

  for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (VertexId v = 0; v < n; ++v) {
      const std::uint32_t from = part[v];
      // Candidate target parts: parts adjacent to v through its nets.
      // Primary objective: connectivity-1 gain. Secondary (for zero-gain
      // plateaus, e.g. a large net split evenly): consolidation — move
      // toward the part already holding more of v's co-pins, which walks
      // evenly-cut nets toward being uncut.
      std::int64_t best_gain = 0;
      std::int64_t best_score = 0;
      std::uint32_t best_part = from;
      for (std::uint32_t to = 0; to < num_parts; ++to) {
        if (to == from) continue;
        if (weights[to] + hypergraph.vertex_weight(v) > max_weights[to]) continue;
        std::int64_t gain = 0;
        std::int64_t score = 0;
        bool adjacent = false;
        for (NetId e : hypergraph.nets_of(v)) {
          const auto* counts = &pins_in[static_cast<std::size_t>(e) * num_parts];
          const auto w = static_cast<std::int64_t>(hypergraph.net_weight(e));
          // Connectivity-1 delta: leaving `from` removes it from lambda(e)
          // when v was its last pin there; entering `to` adds it when `to`
          // had none.
          if (counts[from] == 1) gain += w;
          if (counts[to] == 0) gain -= w;
          if (counts[to] != 0) adjacent = true;
          score += w * (static_cast<std::int64_t>(counts[to]) -
                        (static_cast<std::int64_t>(counts[from]) - 1));
        }
        if (!adjacent) continue;  // sharing nothing can never help
        if (gain > best_gain ||
            (gain == best_gain && score > best_score)) {
          best_gain = gain;
          best_score = score;
          best_part = to;
        }
      }
      if (best_part == from || (best_gain == 0 && best_score <= 0)) continue;
      // Apply the move.
      for (NetId e : hypergraph.nets_of(v)) {
        auto* counts = &pins_in[static_cast<std::size_t>(e) * num_parts];
        --counts[from];
        ++counts[best_part];
      }
      weights[from] -= hypergraph.vertex_weight(v);
      weights[best_part] += hypergraph.vertex_weight(v);
      part[v] = best_part;
      improved = true;
    }
    if (!improved) break;
  }
}

std::vector<std::uint32_t> partition_hypergraph(
    const Hypergraph& hypergraph, const PartitionerConfig& config) {
  MG_CHECK(config.num_parts >= 1);
  MG_CHECK_MSG(config.target_share.empty() ||
                   config.target_share.size() == config.num_parts,
               "one target share per part required");
  std::vector<std::uint32_t> part(hypergraph.num_vertices(), 0);
  if (config.num_parts == 1 || hypergraph.num_vertices() == 0) return part;

  util::Rng rng(config.seed);
  std::vector<VertexId> global_ids(hypergraph.num_vertices());
  std::iota(global_ids.begin(), global_ids.end(), 0);

  // Copy the root hypergraph into the sub-problem (recursion owns its data).
  std::vector<std::uint64_t> weights(hypergraph.num_vertices());
  for (VertexId v = 0; v < hypergraph.num_vertices(); ++v) {
    weights[v] = hypergraph.vertex_weight(v);
  }
  std::vector<std::vector<VertexId>> net_pins(hypergraph.num_nets());
  std::vector<std::uint64_t> net_weights(hypergraph.num_nets());
  for (NetId e = 0; e < hypergraph.num_nets(); ++e) {
    const auto pins = hypergraph.pins(e);
    net_pins[e].assign(pins.begin(), pins.end());
    net_weights[e] = hypergraph.net_weight(e);
  }
  SubProblem root{Hypergraph(std::move(weights), net_pins,
                             std::move(net_weights)),
                  std::move(global_ids)};
  recursive_bisect(std::move(root), config.num_parts, 0, config, rng, part);
  kway_refine(hypergraph, part, config.num_parts, config.imbalance,
              config.kway_refine_passes, config.target_share);
  return part;
}

}  // namespace mg::hyper
