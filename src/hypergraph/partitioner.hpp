// Multilevel K-way hypergraph partitioner — the from-scratch replacement for
// the closed-source hMETIS binary used by the paper.
//
// Structure (classic multilevel recursive bisection):
//   * coarsening by heavy-connectivity matching (score between two vertices
//     = sum over shared nets of w_e / (|e|-1));
//   * initial bisection at the coarsest level by randomized greedy growth,
//     with `num_restarts` restarts (the paper sets hMETIS Nruns = 20);
//   * Fiduccia–Mattheyses boundary refinement at every level, with
//     rollback to the best feasible prefix;
//   * K-way by recursive bisection with proportional target weights, so any
//     K (not only powers of two) is supported;
//   * `cycles` independent multilevel runs keep the best result (the paper
//     sets hMETIS V-cycles = 2).
//
// The balance constraint mirrors hMETIS's UBfactor: part weight must stay
// within (1 + imbalance) of its proportional target (the paper uses
// UBfactor 1, i.e. near-perfect balance).
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace mg::hyper {

struct PartitionerConfig {
  std::uint32_t num_parts = 2;
  double imbalance = 0.01;        ///< UBfactor 1 -> ~1%
  std::uint32_t num_restarts = 20;  ///< initial-partition restarts (Nruns)
  std::uint32_t cycles = 2;         ///< independent multilevel runs (V-cycles)
  std::uint32_t coarsen_limit = 160;  ///< stop coarsening below this size
  std::uint32_t fm_max_passes = 6;
  /// Direct K-way greedy refinement passes applied after recursive
  /// bisection (moves boundary vertices across *any* part pair, which
  /// recursive bisection cannot).
  std::uint32_t kway_refine_passes = 4;
  std::uint64_t seed = 1;

  /// Optional per-part target weight shares (heterogeneous GPUs): when
  /// non-empty it must have num_parts entries; part p targets
  /// total_weight * share[p] / sum(shares). Empty = uniform.
  std::vector<double> target_share;
};

/// Returns part[v] in [0, num_parts) for every vertex.
std::vector<std::uint32_t> partition_hypergraph(const Hypergraph& hypergraph,
                                                const PartitionerConfig& config);

/// Greedy direct K-way refinement of an existing assignment: repeatedly
/// moves vertices to the part maximizing the connectivity-1 gain, subject
/// to the balance bound (per-part targets when `target_share` is given).
/// Exposed for testing and for refining externally produced partitions.
void kway_refine(const Hypergraph& hypergraph,
                 std::vector<std::uint32_t>& part, std::uint32_t num_parts,
                 double imbalance, std::uint32_t max_passes,
                 std::span<const double> target_share = {});

}  // namespace mg::hyper
