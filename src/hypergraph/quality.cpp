#include "hypergraph/quality.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace mg::hyper {

PartitionQuality evaluate_partition(const Hypergraph& hypergraph,
                                    std::span<const std::uint32_t> part,
                                    std::uint32_t num_parts) {
  MG_CHECK(part.size() == hypergraph.num_vertices());
  PartitionQuality quality;

  std::vector<bool> seen(num_parts, false);
  for (NetId net = 0; net < hypergraph.num_nets(); ++net) {
    std::fill(seen.begin(), seen.end(), false);
    std::uint32_t lambda = 0;
    for (VertexId vertex : hypergraph.pins(net)) {
      MG_DCHECK(part[vertex] < num_parts);
      if (!seen[part[vertex]]) {
        seen[part[vertex]] = true;
        ++lambda;
      }
    }
    if (lambda > 1) {
      quality.cut_nets_weight += hypergraph.net_weight(net);
      quality.connectivity_minus_1 +=
          static_cast<std::uint64_t>(lambda - 1) * hypergraph.net_weight(net);
    }
  }

  std::vector<std::uint64_t> weights(num_parts, 0);
  for (VertexId vertex = 0; vertex < hypergraph.num_vertices(); ++vertex) {
    weights[part[vertex]] += hypergraph.vertex_weight(vertex);
  }
  const double ideal = static_cast<double>(hypergraph.total_vertex_weight()) /
                       static_cast<double>(num_parts);
  const auto heaviest = *std::max_element(weights.begin(), weights.end());
  quality.imbalance =
      ideal > 0.0 ? static_cast<double>(heaviest) / ideal - 1.0 : 0.0;
  return quality;
}

}  // namespace mg::hyper
