#include "sim/fault_injector.hpp"

#include "sim/inspector.hpp"

namespace mg::sim {

namespace {

bool scope_covers(FaultPlan::TransferScope scope, std::uint32_t channel) {
  if (channel == kChannelWriteback) return false;
  switch (scope) {
    case FaultPlan::TransferScope::kAll:
      return true;
    case FaultPlan::TransferScope::kHostBus:
      return channel == kChannelHostBus;
    case FaultPlan::TransferScope::kNvlink:
      return channel >= kChannelNvlinkBase;
  }
  return false;
}

}  // namespace

bool FaultInjector::should_fail_transfer(std::uint32_t channel, double now_us,
                                         std::uint32_t attempt) {
  for (const FaultPlan::TransferFault& fault : plan_.transfer_faults) {
    if (!scope_covers(fault.scope, channel)) continue;
    if (now_us < fault.start_us || now_us > fault.end_us) continue;
    // attempt is 1-based: the n-th attempt has already failed n-1 times.
    if (attempt > fault.max_failures_per_transfer) continue;
    if (rng_.chance(fault.probability)) return true;
  }
  return false;
}

}  // namespace mg::sim
