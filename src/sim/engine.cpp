#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace mg::sim {

using core::DataId;
using core::GpuId;
using core::kInvalidTask;
using core::TaskId;

/// "No reachable holder" answer of pick_hedge_source.
constexpr core::NodeId kNoNode = 0xffffffffu;

RuntimeEngine::RuntimeEngine(const core::TaskGraph& graph,
                             const core::Platform& platform,
                             core::Scheduler& scheduler, EngineConfig config)
    : graph_(graph),
      platform_(platform),
      scheduler_(scheduler),
      config_(config),
      bus_(events_, platform.bus_bandwidth_bytes_per_s, platform.bus_latency_us),
      popped_(graph.num_tasks(), false) {
  MG_CHECK_MSG(config_.pipeline_depth >= 1, "pipeline depth must be >= 1");
  MG_CHECK_MSG(platform_.num_gpus >= 1, "need at least one GPU");
  MG_CHECK_MSG(platform_.gpu_gflops_per_device.empty() ||
                   platform_.gpu_gflops_per_device.size() ==
                       platform_.num_gpus,
               "per-device speeds must cover every GPU");
  MG_CHECK_MSG(graph_.max_task_footprint() <= platform_.gpu_memory_bytes,
               "a task's inputs do not fit in GPU memory: no schedule exists");
  gpus_.resize(platform_.num_gpus);
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    gpus_[gpu].memory = std::make_unique<MemoryManager>(
        gpu, graph_, platform_.gpu_memory_bytes,
        static_cast<TransferRouter&>(*this));
    gpus_[gpu].memory->set_observer(this);
  }
  cluster_active_ = platform_.is_cluster();
  if (cluster_active_) {
    MG_CHECK_MSG(platform_.num_nodes <= platform_.num_gpus,
                 "every node needs at least one GPU");
    nodes_.resize(platform_.num_nodes);
    for (core::NodeId node = 0; node < platform_.num_nodes; ++node) {
      NodeState& state = nodes_[node];
      state.pci = std::make_unique<Bus>(events_,
                                        platform_.bus_bandwidth_bytes_per_s,
                                        platform_.bus_latency_us);
      state.net = std::make_unique<Bus>(events_,
                                        platform_.net_bandwidth_bytes_per_s,
                                        platform_.net_latency_us);
      if (graph_.has_outputs() || checkpointing_enabled()) {
        state.writeback = std::make_unique<Bus>(
            events_, platform_.bus_bandwidth_bytes_per_s,
            platform_.bus_latency_us);
      }
      state.cached.assign(graph_.num_data(), 0);
      state.last_use.assign(graph_.num_data(), 0);
      state.net_fetching.assign(graph_.num_data(), 0);
      state.waiters.assign(graph_.num_data(), {});
    }
  } else if (graph_.has_outputs() || checkpointing_enabled()) {
    // Checkpoint snapshots share the write-back channel: both are
    // host-bound output-state traffic.
    writeback_bus_ = std::make_unique<Bus>(
        events_, platform_.bus_bandwidth_bytes_per_s, platform_.bus_latency_us);
  }
  if (platform_.nvlink_enabled) {
    for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
      nvlink_egress_.push_back(std::make_unique<Bus>(
          events_, platform_.nvlink_bandwidth_bytes_per_s,
          platform_.nvlink_latency_us));
    }
    fetch_from_peer_.assign(platform_.num_gpus,
                            std::vector<std::uint8_t>(graph_.num_data(), 0));
    // Requests queued behind other host transfers get a second routing
    // chance when they reach the head of the bus: a replica may have landed
    // on a peer in the meantime.
    auto reroute = [this](GpuId dst, DataId data, std::uint64_t bytes,
                          Bus::OnComplete& on_complete) {
      // Drain migrations and join warm-fills address an inactive GPU as a
      // stand-in for its node's host: those are host-to-host legs, never
      // device fetches, so they must not be turned into peer copies.
      if (topology_active_ && !gpus_[dst].active) return false;
      const GpuId source = find_peer_holding(dst, data);
      if (source == core::kInvalidGpu) return false;
      start_peer_copy(source, dst, data, bytes, std::move(on_complete));
      return true;
    };
    bus_.set_start_filter(reroute);
    // On a cluster the PCI-in leg gets the same second chance on its node's
    // bus (find_peer_holding already restricts peers to the same node).
    for (NodeState& node : nodes_) node.pci->set_start_filter(reroute);
  }
}

void RuntimeEngine::add_inspector(Inspector* inspector) {
  MG_CHECK_MSG(!ran_, "add_inspector must be called before run()");
  MG_CHECK_MSG(inspector != nullptr, "null inspector");
  inspectors_.push_back(inspector);
}

void RuntimeEngine::set_fault_injector(FaultInjector* injector) {
  MG_CHECK_MSG(!ran_, "set_fault_injector must be called before run()");
  injector_ = injector;
}

void RuntimeEngine::enable_streaming(std::vector<std::uint32_t> task_job,
                                     std::uint32_t num_jobs) {
  MG_CHECK_MSG(!ran_, "enable_streaming must be called before run()");
  MG_CHECK_MSG(!streaming_, "enable_streaming is single-shot");
  MG_CHECK_MSG(task_job.size() == graph_.num_tasks(),
               "task_job must map every task of the union graph");
  MG_CHECK_MSG(num_jobs >= 1, "streaming needs at least one job");
  MG_CHECK_MSG(scheduler_.begin_streaming(),
               "scheduler does not support streaming (begin_streaming "
               "declined)");
  streaming_ = true;
  num_jobs_ = num_jobs;
  task_job_ = std::move(task_job);
  job_tasks_.assign(num_jobs, {});
  for (TaskId task = 0; task < graph_.num_tasks(); ++task) {
    MG_CHECK_MSG(task_job_[task] < num_jobs, "task mapped to bad job id");
    job_tasks_[task_job_[task]].push_back(task);
  }
  for (std::uint32_t job = 0; job < num_jobs; ++job) {
    MG_CHECK_MSG(!job_tasks_[job].empty(), "job owns no tasks");
  }
  job_remaining_.assign(num_jobs, 0);
  for (std::uint32_t job = 0; job < num_jobs; ++job) {
    job_remaining_[job] = static_cast<std::uint32_t>(job_tasks_[job].size());
  }
  job_state_.assign(num_jobs, JobState::kPending);
  released_.assign(graph_.num_tasks(), false);
}

void RuntimeEngine::release_job(std::uint32_t job) {
  MG_CHECK_MSG(streaming_, "release_job requires streaming mode");
  MG_CHECK_MSG(job < num_jobs_, "bad job id");
  MG_CHECK_MSG(job_state_[job] == JobState::kPending,
               "job already released or shed");
  job_state_[job] = JobState::kReleased;
  ++jobs_released_;
  const std::vector<TaskId>& tasks = job_tasks_[job];
  publish(InspectorEventKind::kJobArrival, 0, job, 0, kNoChannel,
          static_cast<std::uint32_t>(tasks.size()));
  for (TaskId task : tasks) {
    released_[task] = true;
    publish(InspectorEventKind::kTaskReleased, 0, task, 0, kNoChannel, job);
  }
  if (deps_active_) {
    // Only the dependency-enabled subset is poppable now; the rest are
    // announced by notify_task_retired when their last predecessor retires.
    dep_enabled_scratch_.clear();
    for (TaskId task : tasks) {
      if (dep_enabled_[task]) dep_enabled_scratch_.push_back(task);
    }
    scheduler_.notify_job_arrived(job, dep_enabled_scratch_);
  } else {
    scheduler_.notify_job_arrived(job, tasks);
  }
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    if (!gpus_[gpu].alive) continue;
    fill_buffer(gpu);
    try_start(gpu);
  }
}

void RuntimeEngine::shed_job(std::uint32_t job) {
  MG_CHECK_MSG(streaming_, "shed_job requires streaming mode");
  MG_CHECK_MSG(job < num_jobs_, "bad job id");
  MG_CHECK_MSG(job_state_[job] == JobState::kPending,
               "only a pending job can be shed");
  job_state_[job] = JobState::kShed;
  const std::vector<TaskId>& tasks = job_tasks_[job];
  publish(InspectorEventKind::kJobShed, 0, job, 0, kNoChannel,
          static_cast<std::uint32_t>(tasks.size()));
  for (TaskId task : tasks) {
    MG_DCHECK(!popped_[task]);
    popped_[task] = true;  // nobody may ever pop a cancelled task
    ++completed_;          // counts towards termination, not towards metrics
    publish(InspectorEventKind::kTaskCancelled, 0, task, 0, kNoChannel, job);
    if (replication_active_) {
      // Cancelled consumers no longer count as planned uses.
      for (DataId data : graph_.inputs(task)) {
        MG_DCHECK(remaining_uses_[data] > 0);
        if (--remaining_uses_[data] == 0 &&
            protected_on_[data] != core::kInvalidGpu) {
          release_protection(data, /*uses_exhausted=*/true);
        }
      }
    }
    if (deps_active_) dep_completed_[task] = true;
  }
  if (deps_active_) {
    // A cancelled task never runs, so treat it as retired: cross-job
    // successors must not wait forever on a shed job. Marking the whole job
    // completed first (above) keeps same-job successors from being announced.
    for (TaskId task : tasks) retire_task(0, task);
  }
}

void RuntimeEngine::set_job_retired_callback(
    std::function<void(std::uint32_t)> callback) {
  MG_CHECK_MSG(!ran_, "set_job_retired_callback must be called before run()");
  job_retired_cb_ = std::move(callback);
}

void RuntimeEngine::ensure_slo_state() {
  if (slo_active_) return;
  slo_active_ = true;
  fused_riders_.assign(graph_.num_tasks(), {});
  fused_scale_.assign(graph_.num_tasks(), 0.0);
  veto_count_.assign(graph_.num_data(), 0);
  veto_reported_.assign(graph_.num_data(), 0);
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    gpus_[gpu].memory->set_eviction_veto(
        [this](DataId data) { return veto_count_[data] != 0; });
  }
}

void RuntimeEngine::fuse_jobs(std::uint32_t leader,
                              std::span<const std::uint32_t> members,
                              double duration_scale) {
  MG_CHECK_MSG(streaming_, "fuse_jobs requires streaming mode");
  MG_CHECK_MSG(!deps_active_,
               "cross-job batching requires a dependency-free graph");
  MG_CHECK_MSG(leader < num_jobs_, "bad leader job id");
  MG_CHECK_MSG(job_state_[leader] == JobState::kPending,
               "fuse_jobs must run before the leader is released");
  MG_CHECK_MSG(duration_scale >= 1.0, "duration_scale below 1");
  if (members.empty()) return;
  ensure_slo_state();
  const std::vector<TaskId>& leader_tasks = job_tasks_[leader];
  FusionGroup group;
  group.leader = leader;
  for (const std::uint32_t member : members) {
    MG_CHECK_MSG(member < num_jobs_ && member != leader, "bad member job id");
    MG_CHECK_MSG(job_state_[member] == JobState::kPending,
                 "fusion member must still be pending");
    const std::vector<TaskId>& member_tasks = job_tasks_[member];
    MG_CHECK_MSG(member_tasks.size() == leader_tasks.size(),
                 "fusion member does not match the leader's template");
    job_state_[member] = JobState::kReleased;
    ++jobs_released_;
    publish(InspectorEventKind::kJobsFused, 0, member, 0, kNoChannel, leader);
    publish(InspectorEventKind::kJobArrival, 0, member, 0, kNoChannel,
            static_cast<std::uint32_t>(member_tasks.size()));
    for (std::size_t i = 0; i < member_tasks.size(); ++i) {
      const TaskId rider = member_tasks[i];
      const TaskId leader_task = leader_tasks[i];
      // The fused launch loads the batch's inputs once: every rider must
      // read exactly the leader task's data (share_data unions).
      const std::span<const DataId> leader_in = graph_.inputs(leader_task);
      const std::span<const DataId> rider_in = graph_.inputs(rider);
      MG_CHECK_MSG(rider_in.size() == leader_in.size() &&
                       std::equal(rider_in.begin(), rider_in.end(),
                                  leader_in.begin()),
                   "fusion member does not share the leader's inputs");
      MG_DCHECK(!popped_[rider]);
      released_[rider] = true;
      popped_[rider] = true;  // the scheduler never sees riders
      publish(InspectorEventKind::kTaskReleased, 0, rider, 0, kNoChannel,
              member);
      fused_riders_[leader_task].push_back(rider);
    }
    group.members.push_back(member);
  }
  for (const TaskId leader_task : leader_tasks) {
    fused_scale_[leader_task] = duration_scale;
  }
  fusion_groups_.push_back(std::move(group));
}

void RuntimeEngine::unfuse_all() {
  if (!slo_active_ || fusion_groups_.empty()) return;
  for (const FusionGroup& group : fusion_groups_) {
    for (const std::uint32_t member : group.members) {
      // Fully retired members stay retired; only still-running batches
      // fall back to member granularity.
      if (job_state_[member] != JobState::kReleased) continue;
      publish(InspectorEventKind::kBatchUnfused, 0, member, 0, kNoChannel,
              group.leader);
    }
    for (const TaskId leader_task : job_tasks_[group.leader]) {
      for (const TaskId rider : fused_riders_[leader_task]) {
        // Uncompleted riders re-enter dispatch as ordinary singleton
        // tasks through the reclaim queue (served ahead of pops).
        popped_[rider] = false;
        reclaimed_.push_back(rider);
      }
      fused_riders_[leader_task].clear();
      fused_scale_[leader_task] = 0.0;
    }
  }
  fusion_groups_.clear();
}

std::uint32_t RuntimeEngine::effective_task_warps(TaskId task) const {
  std::uint32_t warps = graph_.task_warps(task);
  if (slo_active_ && !fused_riders_[task].empty()) {
    for (const TaskId rider : fused_riders_[task]) {
      warps += graph_.task_warps(rider);
    }
  }
  return warps;
}

void RuntimeEngine::complete_rider(GpuId gpu, TaskId rider) {
  GpuState& state = gpus_[gpu];
  ++state.tasks_executed;
  ++completed_;
  // Synthetic lifecycle: the rider computed inside the leader's fused
  // launch, so its start/end collapse onto the leader's completion instant.
  if (occupancy_active_) {
    // Zero-warp admission: the batch's summed footprint was charged to the
    // leader at its own admission.
    publish(InspectorEventKind::kTaskAdmitted, gpu, rider, 0, kNoChannel,
            governor_->active_warps(gpu));
  }
  publish(InspectorEventKind::kTaskStart, gpu, rider);
  publish(InspectorEventKind::kTaskEnd, gpu, rider);
  if (config_.record_trace) {
    trace_.events.push_back({events_.now(), TraceKind::kTaskStart, gpu, rider});
    trace_.events.push_back({events_.now(), TraceKind::kTaskEnd, gpu, rider});
  }
  if (replication_active_) {
    for (DataId data : graph_.inputs(rider)) {
      MG_DCHECK(remaining_uses_[data] > 0);
      if (--remaining_uses_[data] == 0 &&
          protected_on_[data] != core::kInvalidGpu) {
        release_protection(data, /*uses_exhausted=*/true);
      }
    }
  }
  // The scheduler never learned of the rider, so it gets no
  // notify_task_complete call — but inspectors still see the closure.
  publish(InspectorEventKind::kNotifyTaskComplete, gpu, rider);
  const std::uint32_t job = task_job_[rider];
  MG_DCHECK(job_remaining_[job] > 0);
  if (--job_remaining_[job] == 0) {
    job_state_[job] = JobState::kRetired;
    ++jobs_retired_;
    publish(InspectorEventKind::kJobComplete, 0, job, 0, kNoChannel,
            static_cast<std::uint32_t>(job_tasks_[job].size()));
    scheduler_.notify_job_retired(job);
    if (job_retired_cb_) {
      events_.schedule_after(0.0, [this, job] { job_retired_cb_(job); });
    }
  }
}

void RuntimeEngine::add_eviction_veto(DataId data, std::uint32_t tier) {
  MG_CHECK_MSG(data < graph_.num_data(), "bad data id");
  ensure_slo_state();
  if (veto_count_[data]++ == 0) {
    publish(InspectorEventKind::kTierProtect, 0, data, 0, kNoChannel, tier);
  }
}

void RuntimeEngine::remove_eviction_veto(DataId data) {
  MG_CHECK_MSG(slo_active_ && data < graph_.num_data() &&
                   veto_count_[data] > 0,
               "unbalanced eviction veto");
  if (--veto_count_[data] == 0) {
    veto_reported_[data] = 0;  // a later protection may report again
    publish(InspectorEventKind::kTierUnprotect, 0, data);
    for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
      if (gpus_[gpu].alive) gpus_[gpu].memory->veto_lifted();
    }
  }
}

void RuntimeEngine::on_eviction_vetoed(GpuId gpu, DataId data) {
  // Debounced: at most one event per data per protection window, or make
  // room under pressure would flood the stream on every scan.
  if (veto_reported_[data] != 0) return;
  veto_reported_[data] = 1;
  publish(InspectorEventKind::kEvictionVetoed, gpu, data);
}

void RuntimeEngine::publish_slow(InspectorEventKind kind, GpuId gpu,
                                 std::uint32_t id, std::uint64_t bytes,
                                 std::uint32_t channel, std::uint32_t aux) {
  InspectorEvent event;
  event.time_us = events_.now();
  event.kind = kind;
  event.gpu = gpu;
  event.id = id;
  event.bytes = bytes;
  event.channel = channel;
  event.aux = aux;
  if (watchdog_log_) {
    constexpr std::size_t kWatchdogTail = 32;
    watchdog_recent_.push_back(format_inspector_event(event));
    if (watchdog_recent_.size() > kWatchdogTail) watchdog_recent_.pop_front();
  }
  for (Inspector* inspector : inspectors_) inspector->on_event(event);
}

void RuntimeEngine::attach_wire_observers() {
  auto wire = [this](std::uint32_t channel) {
    return [this, channel](bool started, GpuId dst, DataId data,
                           std::uint64_t bytes) {
      publish(started ? InspectorEventKind::kTransferStart
                      : InspectorEventKind::kTransferEnd,
              dst, data, bytes, channel);
    };
  };
  bus_.set_wire_observer(wire(kChannelHostBus));
  if (writeback_bus_) writeback_bus_->set_wire_observer(wire(kChannelWriteback));
  for (GpuId gpu = 0; gpu < static_cast<GpuId>(nvlink_egress_.size()); ++gpu) {
    nvlink_egress_[gpu]->set_wire_observer(wire(kChannelNvlinkBase + gpu));
  }
  for (core::NodeId node = 0; node < static_cast<core::NodeId>(nodes_.size());
       ++node) {
    nodes_[node].pci->set_wire_observer(wire(kChannelNodePciBase + node));
    nodes_[node].net->set_wire_observer(wire(kChannelNetBase + node));
    if (nodes_[node].writeback) {
      nodes_[node].writeback->set_wire_observer(
          wire(kChannelNodeWritebackBase + node));
    }
  }
}

core::GpuId RuntimeEngine::find_peer_holding(GpuId dst, DataId data) const {
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    if (gpu == dst || !gpus_[gpu].memory->is_present(data)) continue;
    if (cluster_active_ &&
        platform_.node_of(gpu) != platform_.node_of(dst)) {
      continue;  // NVLink does not cross the node boundary
    }
    return gpu;
  }
  return core::kInvalidGpu;
}

void RuntimeEngine::start_peer_copy(GpuId source, GpuId dst, DataId data,
                                    std::uint64_t bytes,
                                    std::function<void()> on_complete) {
  // Pin the replica on the source so it cannot be evicted mid-copy.
  gpus_[source].memory->pin(data);
  fetch_from_peer_[dst][data] = 1;
  nvlink_egress_[source]->request(
      dst, data, bytes,
      [this, source, dst, data, bytes, cb = std::move(on_complete)]() mutable {
        // Runs at delivery — or early, when GPU-loss recovery drains the
        // egress queue. Either endpoint may have died in the meantime.
        if (gpus_[source].alive) gpus_[source].memory->unpin(data);
        if (!gpus_[dst].alive) return;  // delivery to a dead GPU: dropped
        if (!gpus_[source].alive) {
          // The replica's holder died mid-copy: re-route the fetch (another
          // surviving replica, or the host bus).
          fetch_from_peer_[dst][data] = 0;
          request_transfer(dst, data, bytes, std::move(cb),
                           TransferPriority::kHigh);
          return;
        }
        cb();
      });
}

void RuntimeEngine::request_transfer(GpuId dst, DataId data,
                                     std::uint64_t bytes,
                                     std::function<void()> on_complete,
                                     TransferPriority priority) {
  if (platform_.nvlink_enabled) {
    const GpuId source = find_peer_holding(dst, data);
    if (source != core::kInvalidGpu) {
      start_peer_copy(source, dst, data, bytes, std::move(on_complete));
      return;
    }
    fetch_from_peer_[dst][data] = 0;
  }
  if (cluster_active_) {
    request_cluster_transfer(dst, data, bytes, std::move(on_complete),
                             priority);
    return;
  }
  bus_.request(dst, data, bytes, std::move(on_complete), priority);
}

void RuntimeEngine::request_cluster_transfer(GpuId dst, DataId data,
                                             std::uint64_t bytes,
                                             std::function<void()> on_complete,
                                             TransferPriority priority) {
  const core::NodeId node_id = platform_.node_of(dst);
  NodeState& node = nodes_[node_id];
  if (home_node(data) == node_id || node.cached[data] != 0) {
    // Available from this node's host memory: one PCI-in leg.
    if (node.cached[data] != 0) node.last_use[data] = ++node.use_clock;
    node.pci->request(dst, data, bytes, std::move(on_complete), priority);
    return;
  }
  node.waiters[data].push_back({dst, std::move(on_complete), priority});
  if (node.net_fetching[data] != 0) return;  // join the in-flight fetch
  node.net_fetching[data] = 1;
  publish(InspectorEventKind::kHostFetchStart, dst, data, bytes, kNoChannel,
          node_id);
  const core::NodeId home = home_node(data);
  if (netfault_active_ && config_.fetch_timeout_factor > 0.0) {
    // Timed fetch: the delivery routes through the dedup gate (a hedge may
    // win the race) and a deadline event hedges or re-arms on expiry.
    NetFetchState& fetch = net_fetch_[node_id][data];
    fetch.source = home;
    ++fetch.generation;
    fetch.hedges = 0;
    fetch.retries = 0;
    fetch.timed_out = 0;
    issue_net_fetch(node_id, home, dst, data, bytes, priority);
    arm_fetch_deadline(node_id, data, bytes, fetch_deadline_us(bytes));
    return;
  }
  // PCI out of the home node's host memory, one network hop, then the fill
  // fans the data out to every waiting GPU over this node's PCI bus.
  nodes_[home].pci->request(
      dst, data, bytes,
      [this, node_id, home, dst, data, bytes, priority] {
        nodes_[home].net->request(
            dst, data, bytes,
            [this, node_id, dst, data, bytes] {
              host_cache_fill(node_id, dst, data, bytes);
            },
            priority);
      },
      priority);
}

void RuntimeEngine::host_cache_fill(core::NodeId node_id, GpuId gpu,
                                    DataId data, std::uint64_t bytes) {
  NodeState& node = nodes_[node_id];
  node.net_fetching[data] = 0;
  publish(InspectorEventKind::kHostCacheFill, gpu, data, bytes, kNoChannel,
          node_id);
  const std::uint64_t budget = platform_.host_memory_bytes;
  if (budget > 0 && node.cached_bytes + bytes > budget) {
    host_cache_evict_for(node_id, gpu, bytes);
  }
  if (budget == 0 || node.cached_bytes + bytes <= budget) {
    node.cached[data] = 1;
    node.cached_bytes += bytes;
    node.last_use[data] = ++node.use_clock;
  } else {
    // Larger than the whole cache budget: the data passes through to its
    // waiters without staying resident on the node.
    publish(InspectorEventKind::kHostCacheEvict, gpu, data, bytes, kNoChannel,
            node_id);
  }
  std::vector<NodeWaiter> waiters = std::move(node.waiters[data]);
  node.waiters[data].clear();
  for (NodeWaiter& waiter : waiters) {
    node.pci->request(waiter.gpu, data, bytes, std::move(waiter.on_complete),
                      waiter.priority);
  }
}

void RuntimeEngine::host_cache_evict_for(core::NodeId node_id, GpuId gpu,
                                         std::uint64_t needed) {
  NodeState& node = nodes_[node_id];
  const std::uint64_t budget = platform_.host_memory_bytes;
  while (node.cached_bytes > 0 && node.cached_bytes + needed > budget) {
    DataId victim = core::kInvalidData;
    for (DataId data = 0; data < graph_.num_data(); ++data) {
      if (node.cached[data] == 0) continue;
      if (victim == core::kInvalidData ||
          node.last_use[data] < node.last_use[victim]) {
        victim = data;
      }
    }
    if (victim == core::kInvalidData) break;
    node.cached[victim] = 0;
    node.cached_bytes -= graph_.data_size(victim);
    publish(InspectorEventKind::kHostCacheEvict, gpu, victim,
            graph_.data_size(victim), kNoChannel, node_id);
  }
}

Bus* RuntimeEngine::writeback_bus_for(GpuId gpu) {
  if (cluster_active_) return nodes_[platform_.node_of(gpu)].writeback.get();
  return writeback_bus_.get();
}

void RuntimeEngine::promote(GpuId dst, DataId data) {
  if (cluster_active_) {
    const core::NodeId node_id = platform_.node_of(dst);
    const core::NodeId home = home_node(data);
    nodes_[node_id].pci->promote(dst, data);
    nodes_[home].pci->promote(dst, data);
    nodes_[home].net->promote(dst, data);
    for (NodeWaiter& waiter : nodes_[node_id].waiters[data]) {
      if (waiter.gpu == dst) waiter.priority = TransferPriority::kHigh;
    }
    return;
  }
  bus_.promote(dst, data);
}

core::RunMetrics RuntimeEngine::run() {
  MG_CHECK_MSG(!ran_, "RuntimeEngine::run is single-shot");
  ran_ = true;

  const bool faults_active = injector_ != nullptr && !injector_->plan().empty();
  if (faults_active) {
    const std::string problem =
        injector_->plan().validate(platform_.num_gpus, platform_.num_nodes);
    if (!problem.empty()) throw EngineError("invalid fault plan: " + problem);
  }
  watchdog_log_ = config_.max_events > 0 || config_.max_sim_time_us > 0.0;
  alive_gpus_ = platform_.num_gpus;

  MG_CHECK_MSG(config_.checkpoint_interval_us >= 0.0 &&
                   config_.checkpoint_fraction >= 0.0 &&
                   config_.checkpoint_fraction < 1.0,
               "checkpoint interval must be >= 0 and fraction in [0,1)");
  if (checkpointing_enabled()) {
    checkpoint_progress_.assign(graph_.num_tasks(), 0.0);
  }
  MG_CHECK_MSG(config_.occupancy_threshold >= 0.0,
               "occupancy threshold must be >= 0");
  MG_CHECK_MSG(config_.retry_jitter >= 0.0, "retry jitter must be >= 0");
  MG_CHECK_MSG(config_.fetch_timeout_factor >= 0.0 &&
                   config_.suspicion_confirm_window_us >= 0.0,
               "fetch timeout factor and confirm window must be >= 0");
  if (config_.occupancy_threshold > 0.0) {
    // Checkpoint boundaries are scheduled at absolute compute offsets under
    // a constant rate; a sharing set's rate changes with every admission.
    MG_CHECK_MSG(!checkpointing_enabled(),
                 "checkpointing cannot be combined with GPU sharing");
    occupancy_active_ = true;
    governor_ = std::make_unique<occupancy::OccupancyGovernor>(
        platform_.num_gpus, platform_.total_warps(),
        config_.occupancy_threshold);
  }
  if (faults_active && (!injector_->plan().gpu_losses.empty() ||
                        !injector_->plan().node_losses.empty())) {
    orphan_lost_at_us_.assign(graph_.num_tasks(), -1.0);
    if (config_.replicate_hot && platform_.num_gpus >= 2) {
      replication_active_ = true;
      remaining_uses_.assign(graph_.num_data(), 0);
      for (TaskId task = 0; task < graph_.num_tasks(); ++task) {
        for (DataId data : graph_.inputs(task)) ++remaining_uses_[data];
      }
      protected_on_.assign(graph_.num_data(), core::kInvalidGpu);
    }
  }

  deps_active_ = graph_.has_dependencies();
  if (deps_active_) {
    MG_CHECK_MSG(scheduler_.begin_dependencies(),
                 "scheduler does not support dependency gating "
                 "(begin_dependencies declined)");
    const std::uint32_t num_tasks = graph_.num_tasks();
    dep_pending_.assign(num_tasks, 0);
    dep_enabled_.assign(num_tasks, false);
    dep_retired_.assign(num_tasks, false);
    dep_completed_.assign(num_tasks, false);
    dep_parked_.assign(num_tasks, false);
    dep_revoked_.assign(num_tasks, false);
    dep_rerun_.assign(num_tasks, false);
    dep_eject_origin_.assign(num_tasks, core::kInvalidGpu);
    for (TaskId task = 0; task < num_tasks; ++task) {
      dep_pending_[task] = graph_.num_predecessors(task);
      dep_enabled_[task] = dep_pending_[task] == 0;
    }
  }

  // Elastic start: only the first initial_active_nodes nodes serve from t=0;
  // the rest idle (GPUs intact but inactive) until begin_node_join, and the
  // shards homed on them are re-homed round-robin onto the serving set
  // (modeling a cluster-wide durable store behind the host memories).
  MG_CHECK_MSG(config_.initial_active_nodes <= platform_.num_nodes,
               "initial_active_nodes exceeds the platform's node count");
  if (config_.initial_active_nodes > 0 &&
      config_.initial_active_nodes < platform_.num_nodes) {
    MG_CHECK_MSG(cluster_active_,
                 "initial_active_nodes needs a multi-node platform");
    ensure_topology_state();
    home_override_.resize(graph_.num_data());
    for (DataId data = 0; data < graph_.num_data(); ++data) {
      const core::NodeId home = platform_.home_node_of(data);
      home_override_[data] = home < config_.initial_active_nodes
                                 ? home
                                 : data % config_.initial_active_nodes;
    }
    for (core::NodeId node = config_.initial_active_nodes;
         node < platform_.num_nodes; ++node) {
      node_status_[node] = NodeStatus::kInactive;
      --active_node_count_;
      for (GpuId gpu = platform_.node_gpu_begin(node);
           gpu < platform_.node_gpu_end(node); ++gpu) {
        gpus_[gpu].active = false;
      }
    }
  }

  util::Stopwatch prepare_watch;
  scheduler_.prepare(graph_, platform_, config_.seed);
  prepare_wall_us_ = prepare_watch.elapsed_us();

  if (topology_active_) {
    // Nodes outside the initial serving set are announced as draining with
    // no orphans: the scheduler must not target their GPUs until a
    // notify_node_added brings them in.
    for (core::NodeId node = 0; node < platform_.num_nodes; ++node) {
      if (node_status_[node] != NodeStatus::kInactive) continue;
      std::vector<GpuId> node_gpus;
      for (GpuId gpu = platform_.node_gpu_begin(node);
           gpu < platform_.node_gpu_end(node); ++gpu) {
        node_gpus.push_back(gpu);
      }
      (void)scheduler_.notify_node_draining(node, node_gpus, {});
    }
  }

  // Wire eviction policies (scheduler-provided, or shared LRU default).
  bool need_default = false;
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    if (scheduler_.eviction_policy(gpu) == nullptr) need_default = true;
  }
  if (need_default) {
    default_policy_ =
        std::make_unique<LruEviction>(platform_.num_gpus, graph_.num_data());
  }
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    core::EvictionPolicy* policy = scheduler_.eviction_policy(gpu);
    gpus_[gpu].memory->set_eviction_policy(policy != nullptr
                                               ? policy
                                               : default_policy_.get());
  }

  if (!inspectors_.empty() || watchdog_log_) attach_wire_observers();
  if (!inspectors_.empty()) {
    for (Inspector* inspector : inspectors_) {
      inspector->on_run_begin(graph_, platform_, scheduler_.name());
    }
    for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
      core::EvictionPolicy* policy = scheduler_.eviction_policy(gpu);
      const std::string_view policy_name =
          policy != nullptr ? policy->name() : default_policy_->name();
      for (Inspector* inspector : inspectors_) {
        inspector->on_eviction_policy(gpu, policy_name);
      }
    }
  }

  if (occupancy_active_) {
    // Announces the warp budget to the observability spine (the invariant
    // checker arms its sharing rules on this event; the report collector
    // opens its schema-v8 occupancy section).
    publish(InspectorEventKind::kOccupancyConfig, 0, platform_.total_warps(),
            governor_->budget_warps(), kNoChannel,
            static_cast<std::uint32_t>(config_.occupancy_threshold * 1e6));
  }

  if (faults_active) {
    schedule_faults();
    if (injector_->has_transfer_faults()) attach_fault_hooks();
  }
  // Network-fault layer: armed by planned link faults, or by the fetch
  // timeout knob on a cluster. Everything else leaves it dormant, keeping
  // the run byte-identical to an engine without the layer.
  if ((faults_active && !injector_->plan().link_faults.empty()) ||
      (cluster_active_ && config_.fetch_timeout_factor > 0.0)) {
    MG_CHECK_MSG(cluster_active_, "link faults need a multi-node platform");
    arm_netfaults();
  }

  if (deps_active_) {
    // The initial ready frontier: tasks without predecessors are enabled at
    // load. Schedulers compute the same frontier in prepare(); the events
    // seed the observability spine (ready-width tracking, checker state).
    for (TaskId task = 0; task < graph_.num_tasks(); ++task) {
      if (dep_enabled_[task]) {
        publish(InspectorEventKind::kTaskEnabled, 0, task, 0, kNoChannel, 1);
      }
    }
  }

  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    const std::vector<DataId> hints = scheduler_.prefetch_hints(gpu);
    gpus_[gpu].hint_queue.assign(hints.begin(), hints.end());
  }
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    fill_buffer(gpu);
    pump_hints(gpu);
  }
  if (replication_active_) maybe_replicate();

  while (completed_ < graph_.num_tasks()) {
    const bool events_exhausted =
        config_.max_events != 0 &&
        events_.events_processed() >= config_.max_events;
    const bool time_exhausted = config_.max_sim_time_us > 0.0 &&
                                events_.now() > config_.max_sim_time_us;
    if (events_exhausted || time_exhausted) {
      char header[192];
      std::snprintf(header, sizeof header,
                    "watchdog budget exceeded (%s): %llu events processed, "
                    "t=%.1fus, %u/%u tasks completed\n",
                    events_exhausted ? "event ceiling" : "simulated-time "
                                                         "ceiling",
                    static_cast<unsigned long long>(events_.events_processed()),
                    events_.now(), completed_, graph_.num_tasks());
      std::string message = header;
      if (streaming_) {
        char serving[128];
        std::snprintf(serving, sizeof serving,
                      "serving: %u jobs in flight (%u released, %u retired "
                      "of %u)\n",
                      jobs_in_flight(), jobs_released_, jobs_retired_,
                      num_jobs_);
        message += serving;
      }
      message += format_engine_state();
      if (!watchdog_recent_.empty()) {
        message += "recent events:\n";
        for (const std::string& line : watchdog_recent_) {
          message += "  ";
          message += line;
          message += '\n';
        }
      }
      throw BudgetExceededError(message);
    }
    if (!events_.run_one()) throw_deadlock();
  }

  for (Inspector* inspector : inspectors_) {
    inspector->on_run_end(last_completion_us_);
  }

  core::RunMetrics metrics;
  metrics.per_gpu.resize(platform_.num_gpus);
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    const GpuState& state = gpus_[gpu];
    core::GpuMetrics& out = metrics.per_gpu[gpu];
    out.tasks_executed = state.tasks_executed;
    out.loads = state.loads;
    out.bytes_loaded = state.bytes_loaded;
    out.peer_loads = state.peer_loads;
    out.bytes_from_peers = state.bytes_from_peers;
    out.bytes_written_back = state.bytes_written_back;
    out.evictions = state.evictions;
    out.busy_time_us = state.busy_us;
    out.stall_time_us = std::max(0.0, last_completion_us_ - state.busy_us);
  }
  metrics.makespan_us = last_completion_us_;
  metrics.scheduler_prepare_us = prepare_wall_us_;
  metrics.scheduler_pop_us = pop_wall_us_;
  metrics.total_flops = graph_.total_flops();
  metrics.scheduler_cost_accounted = config_.account_scheduler_cost;
  metrics.faults = fault_metrics_;
  return metrics;
}

void RuntimeEngine::fill_buffer(GpuId gpu) {
  GpuState& state = gpus_[gpu];
  if (!state.alive || !state.active) return;
  while (state.buffer.size() < config_.pipeline_depth) {
    TaskId task = kInvalidTask;
    if (!reclaimed_.empty()) {
      // Orphans of a dead GPU whose scheduler declined to re-own them: the
      // engine serves them to survivors ahead of further pops.
      task = reclaimed_.front();
      reclaimed_.pop_front();
      if (deps_active_ && !dep_enabled_[task]) {
        // A reclaimed task whose predecessor was un-retired by the same
        // loss: park it until the predecessor's re-run retires.
        popped_[task] = true;
        dep_parked_[task] = true;
        continue;
      }
    } else {
      util::Stopwatch pop_watch;
      task = scheduler_.pop_task(gpu, *state.memory);
      const double pop_us = pop_watch.elapsed_us();
      pop_wall_us_ += pop_us;
      if (config_.account_scheduler_cost) {
        state.sched_busy_until_us =
            std::max(events_.now(), state.sched_busy_until_us) + pop_us;
      }
      if (task == kInvalidTask) {
        state.starved = true;
        return;
      }
      MG_CHECK_MSG(task < graph_.num_tasks(), "scheduler returned bad task id");
    }
    MG_CHECK_MSG(!popped_[task], "scheduler returned a task twice");
    MG_CHECK_MSG(!streaming_ || released_[task],
                 "scheduler popped a task whose job has not arrived");
    if (deps_active_ && !dep_enabled_[task]) {
      // A pop is only legitimate for an enabled task — unless an
      // un-retirement revoked the enablement after the scheduler learned of
      // it; then the engine consumes the pop and parks the task until the
      // predecessor's re-run retires.
      MG_CHECK_MSG(dep_revoked_[task],
                   "scheduler popped a task with unretired predecessors");
      popped_[task] = true;
      dep_parked_[task] = true;
      continue;
    }
    popped_[task] = true;
    state.starved = false;
    state.buffer.push_back(task);
    if (state.buffer.size() == 1 && !state.assembly_active) {
      begin_assembly(gpu);
    } else {
      // Prefetch inputs of deeper pipeline entries through the shared bus.
      for (DataId data : graph_.inputs(task)) {
        state.memory->fetch(data, /*demand=*/false);
      }
    }
  }
}

void RuntimeEngine::begin_assembly(GpuId gpu) {
  GpuState& state = gpus_[gpu];
  MG_DCHECK(!state.buffer.empty());
  MG_DCHECK(!state.assembly_active);
  state.assembly_active = true;
  state.assembly_since_us = events_.now();
  state.assembly_pins.clear();
  const TaskId head = state.buffer.front();
  for (DataId data : graph_.inputs(head)) {
    if (state.memory->is_present(data)) {
      state.memory->pin(data);
      state.assembly_pins.push_back(data);
    } else {
      state.memory->fetch(data, /*demand=*/true);
    }
  }
  try_start(gpu);
}

void RuntimeEngine::try_start(GpuId gpu) {
  GpuState& state = gpus_[gpu];
  if (!state.alive || !state.active) return;
  if (!state.assembly_active) return;
  // Sharing off: the device is exclusive — one running task at a time.
  // Sharing on: the governor decides below, once the head is ready.
  if (!occupancy_active_ && state.running != kInvalidTask) return;
  const TaskId head = state.buffer.front();
  if (occupancy_active_ && state.occ_blocked_head == head) {
    return;  // rejected already; a warp release will retry
  }
  if (deps_active_ && !dep_enabled_[head]) {
    // An un-retirement revoked the head's enablement while it sat in the
    // pipeline: stall until the predecessor's re-run retires (retire_task
    // re-polls every worker).
    return;
  }
  bool ready = true;
  for (DataId data : graph_.inputs(head)) {
    if (!state.memory->is_present(data)) {
      ready = false;
      // Self-healing: if the input is neither in flight nor parked on the
      // stalled list, (re-)issue the demand fetch. fetch() deduplicates, so
      // this is a no-op in the common case.
      state.memory->fetch(data, /*demand=*/true);
    }
  }
  if (!ready) return;
  // Reserve the output scratch buffer last (inputs first maximizes reuse of
  // the residency the prefetches built up).
  const std::uint64_t output_bytes = graph_.task_output_bytes(head);
  if (output_bytes > 0 && !state.scratch_reserved) {
    if (!state.memory->try_reserve_scratch(output_bytes)) return;
    state.scratch_reserved = true;
    publish(InspectorEventKind::kScratchReserve, gpu, head, output_bytes);
  }
  if (config_.account_scheduler_cost &&
      events_.now() < state.sched_busy_until_us) {
    // The scheduler is still "thinking" (charged pop cost); re-check then.
    events_.schedule_at(state.sched_busy_until_us,
                        [this, gpu] { try_start(gpu); });
    return;
  }
  if (occupancy_active_) {
    // A fused leader is admitted with the batch's summed footprint; its
    // riders later admit at zero warps.
    const std::uint32_t task_warps = effective_task_warps(head);
    const std::uint32_t warps = governor_->clamp_warps(task_warps);
    if (!governor_->try_admit(gpu, task_warps, events_.now())) {
      state.occ_blocked_head = head;
      publish(InspectorEventKind::kAdmissionRejected, gpu, head, warps,
              kNoChannel, governor_->active_warps(gpu));
      return;
    }
    publish(InspectorEventKind::kTaskAdmitted, gpu, head, warps, kNoChannel,
            governor_->active_warps(gpu));
    scheduler_.notify_occupancy(gpu, governor_->active_warps(gpu),
                                governor_->free_warps(gpu));
  }
  start_task(gpu, head);
}

void RuntimeEngine::start_task(GpuId gpu, TaskId task) {
  GpuState& state = gpus_[gpu];
  MG_DCHECK(state.buffer.front() == task);
  state.buffer.pop_front();
  state.assembly_active = false;
  state.scratch_reserved = false;  // ownership moves to the running task
  // All inputs carry exactly one assembly pin by now (pinned either at
  // begin_assembly or when they landed); those pins become the run pins.
  MG_DCHECK(state.assembly_pins.size() == graph_.inputs(task).size());
  state.assembly_pins.clear();
  for (DataId data : graph_.inputs(task)) state.memory->touch(data);

  double base_duration =
      platform_.compute_time_us(graph_.task_flops(task), gpu);
  // A fused super-task launches the whole batch at once: one kernel at
  // base × (1 + riders × marginal_compute), shared loads already counted
  // once by residency.
  const bool fused = slo_active_ && !fused_riders_[task].empty();
  if (fused) base_duration *= fused_scale_[task];
  if (occupancy_active_) {
    // Join the sharing set: co-runners progress at the old rate up to now,
    // then every member's finish is rescheduled under the new membership.
    occ_accrue(gpu);
    state.running_set.push_back(
        {task, base_duration,
         governor_->clamp_warps(effective_task_warps(task))});
    publish(InspectorEventKind::kTaskStart, gpu, task);
    if (fused) {
      publish(InspectorEventKind::kSuperTaskLaunched, gpu, task,
              static_cast<std::uint64_t>(base_duration), kNoChannel,
              static_cast<std::uint32_t>(fused_riders_[task].size()));
    }
    if (config_.record_trace) {
      trace_.events.push_back(
          {events_.now(), TraceKind::kTaskStart, gpu, task});
    }
    occ_reschedule(gpu);
    if (!state.buffer.empty()) begin_assembly(gpu);
    fill_buffer(gpu);
    return;
  }
  state.running = task;
  publish(InspectorEventKind::kTaskStart, gpu, task);
  if (fused) {
    publish(InspectorEventKind::kSuperTaskLaunched, gpu, task,
            static_cast<std::uint64_t>(base_duration), kNoChannel,
            static_cast<std::uint32_t>(fused_riders_[task].size()));
  }
  if (config_.record_trace) {
    trace_.events.push_back(
        {events_.now(), TraceKind::kTaskStart, gpu, task});
  }
  double duration = base_duration;
  if (checkpointing_enabled() && base_duration > 0.0) {
    // Resume from checkpointed progress: only the compute beyond the last
    // committed snapshot re-runs. Snapshots sit at absolute compute
    // boundaries k*interval; each drains in the background on the
    // write-back channel (PCIe is full duplex, compute is not stalled),
    // and the progress becomes durable only when the drain completes.
    const double restored = checkpoint_progress_[task];
    if (restored > 0.0) {
      ++fault_metrics_.tasks_restored;
      fault_metrics_.compute_saved_us += base_duration * restored;
      publish(InspectorEventKind::kProgressRestored, gpu, task, 0, kNoChannel,
              static_cast<std::uint32_t>(restored * 1e6));
    }
    const double interval = config_.checkpoint_interval_us > 0.0
                                ? config_.checkpoint_interval_us
                                : config_.checkpoint_fraction * base_duration;
    const double resume_at = restored * base_duration;
    for (double boundary = interval; boundary < base_duration;
         boundary += interval) {
      if (boundary <= resume_at) continue;  // committed in an earlier run
      const double fraction = boundary / base_duration;
      events_.schedule_after(boundary - resume_at, [this, gpu, task,
                                                    fraction] {
        initiate_checkpoint(gpu, task, fraction);
      });
    }
    duration = base_duration - resume_at;
  }
  state.busy_us += duration;
  state.running_until_us = events_.now() + duration;
  events_.schedule_after(duration, [this, gpu, task] { finish_task(gpu, task); });

  if (!state.buffer.empty()) begin_assembly(gpu);
  fill_buffer(gpu);
}

void RuntimeEngine::finish_task(GpuId gpu, TaskId task) {
  GpuState& state = gpus_[gpu];
  // Stale completion of a task that was interrupted by a GPU loss (its
  // finish event cannot be cancelled; the task was reclaimed instead).
  if (!state.alive) return;
  MG_DCHECK(state.running == task);
  state.running = kInvalidTask;
  complete_task(gpu, task);
}

bool RuntimeEngine::is_running_here(const GpuState& state,
                                    TaskId task) const {
  if (!occupancy_active_) return state.running == task;
  for (const RunningTask& entry : state.running_set) {
    if (entry.task == task) return true;
  }
  return false;
}

double RuntimeEngine::occ_slowdown(const GpuState& state) const {
  std::uint64_t active = 0;
  for (const RunningTask& entry : state.running_set) active += entry.warps;
  const double ratio = static_cast<double>(active) /
                       static_cast<double>(platform_.total_warps());
  return std::max(1.0, ratio);
}

void RuntimeEngine::occ_accrue(GpuId gpu) {
  GpuState& state = gpus_[gpu];
  const double now = events_.now();
  const double elapsed = now - state.occ_last_update_us;
  state.occ_last_update_us = now;
  if (elapsed <= 0.0 || state.running_set.empty()) return;
  const double rate = 1.0 / occ_slowdown(state);
  for (RunningTask& entry : state.running_set) {
    entry.remaining_solo_us =
        std::max(0.0, entry.remaining_solo_us - elapsed * rate);
  }
  // Busy while anything runs — the wall-clock generalization of the
  // exclusive model's sum of task durations.
  state.busy_us += elapsed;
}

void RuntimeEngine::occ_reschedule(GpuId gpu) {
  GpuState& state = gpus_[gpu];
  const std::uint64_t epoch = ++state.occ_epoch;
  if (state.running_set.empty()) return;
  const double slowdown = occ_slowdown(state);
  for (const RunningTask& entry : state.running_set) {
    events_.schedule_after(entry.remaining_solo_us * slowdown,
                           [this, gpu, task = entry.task, epoch] {
                             occ_finish_task(gpu, task, epoch);
                           });
  }
}

void RuntimeEngine::occ_finish_task(GpuId gpu, TaskId task,
                                    std::uint64_t epoch) {
  GpuState& state = gpus_[gpu];
  // Stale under a membership change (someone joined or left since this
  // finish was scheduled — the task's real finish was rescheduled), or the
  // GPU died and the set was reclaimed.
  if (!state.alive || epoch != state.occ_epoch) return;
  occ_accrue(gpu);
  auto it = state.running_set.begin();
  while (it != state.running_set.end() && it->task != task) ++it;
  MG_DCHECK(it != state.running_set.end());
  governor_->release(gpu, it->warps, events_.now());
  state.running_set.erase(it);
  state.occ_blocked_head = kInvalidTask;  // freed warps may admit the head
  // Survivors speed up (or keep the solo rate): reschedule their finishes
  // before the completion fan-out can admit new work.
  occ_reschedule(gpu);
  scheduler_.notify_occupancy(gpu, governor_->active_warps(gpu),
                              governor_->free_warps(gpu));
  complete_task(gpu, task);
}

void RuntimeEngine::occ_reclaim_running(GpuId gpu,
                                        std::vector<TaskId>& orphans) {
  GpuState& state = gpus_[gpu];
  // Wall time until the loss is already in busy_us (incremental accrual);
  // unlike the exclusive path there is nothing to unwind.
  occ_accrue(gpu);
  for (const RunningTask& entry : state.running_set) {
    orphans.push_back(entry.task);
  }
  state.running_set.clear();
  ++state.occ_epoch;  // in-flight finish events turn stale
  state.occ_blocked_head = kInvalidTask;
  governor_->reset_gpu(gpu, events_.now());
}

void RuntimeEngine::complete_task(GpuId gpu, TaskId task) {
  GpuState& state = gpus_[gpu];
  ++state.tasks_executed;
  ++completed_;
  last_completion_us_ = events_.now();
  publish(InspectorEventKind::kTaskEnd, gpu, task);
  if (config_.record_trace) {
    trace_.events.push_back({events_.now(), TraceKind::kTaskEnd, gpu, task});
  }
  if (!orphan_lost_at_us_.empty() && orphan_lost_at_us_[task] >= 0.0) {
    // An orphan finished its re-run on a survivor: the recovery latency is
    // the span from the loss that reclaimed it to this completion.
    fault_metrics_.recovery_latency_us.push_back(events_.now() -
                                                 orphan_lost_at_us_[task]);
    orphan_lost_at_us_[task] = -1.0;
  }
  if (slo_active_ && !fused_riders_[task].empty()) {
    // Super-task fan-out: every rider computed inside this launch — retire
    // them (and their member jobs) before the leader's inputs are unpinned
    // and before the completion notification, whose push-prefetch may evict
    // the shared inputs the riders' synthetic starts must still see.
    for (const TaskId rider : fused_riders_[task]) complete_rider(gpu, rider);
    fused_riders_[task].clear();
    fused_scale_[task] = 0.0;
  }
  for (DataId data : graph_.inputs(task)) state.memory->unpin(data);
  if (replication_active_) {
    for (DataId data : graph_.inputs(task)) {
      MG_DCHECK(remaining_uses_[data] > 0);
      if (--remaining_uses_[data] == 0 &&
          protected_on_[data] != core::kInvalidGpu) {
        release_protection(data, /*uses_exhausted=*/true);
      }
    }
  }
  // Output write-back: travels host-bound on the dedicated channel; its
  // scratch stays allocated until the transfer completes. The task itself
  // is done — write-back only delays memory reuse, not the completion.
  const std::uint64_t output_bytes = graph_.task_output_bytes(task);
  if (output_bytes > 0) {
    // On a dependency-gated run the retirement only becomes durable when
    // this drain completes; a GPU loss before then un-retires the task.
    if (deps_active_) state.undurable.push_back(task);
    publish(InspectorEventKind::kWriteBackStart, gpu, task, output_bytes);
    writeback_bus_for(gpu)->request(gpu, task, output_bytes, [this, gpu, task,
                                                              output_bytes] {
      GpuState& wb_state = gpus_[gpu];
      // The GPU died while its write-back was on the wire: nothing to
      // account, no scratch left to release.
      if (!wb_state.alive) return;
      if (deps_active_) {
        const auto durable = std::find(wb_state.undurable.begin(),
                                       wb_state.undurable.end(), task);
        if (durable != wb_state.undurable.end()) {
          wb_state.undurable.erase(durable);
        }
      }
      wb_state.bytes_written_back += output_bytes;
      publish(InspectorEventKind::kWriteBackEnd, gpu, task, output_bytes);
      if (config_.record_trace) {
        trace_.events.push_back(
            {events_.now(), TraceKind::kWriteBack, gpu, task});
      }
      wb_state.memory->release_scratch(output_bytes);
      publish(InspectorEventKind::kScratchRelease, gpu, task, output_bytes);
      if (topology_active_ && !wb_state.active) {
        // The last write-back of a draining node may complete its drain.
        maybe_finish_drain(platform_.node_of(gpu));
        return;
      }
      // Freed scratch may unblock this GPU's next task or admit a hint.
      try_start(gpu);
      pump_hints(gpu);
    });
  }
  if (deps_active_ && dep_rerun_[task]) {
    // Re-run of an un-retired task: the scheduler was already told this
    // task completed before the loss rolled the completion back; a second
    // notification would corrupt its bookkeeping.
    dep_rerun_[task] = false;
  } else {
    // An ejected-then-reclaimed task may have re-run on a different GPU;
    // the scheduler still accounts it in the pipeline it was popped into,
    // so report the completion against that GPU.
    GpuId notify_gpu = gpu;
    if (!dep_eject_origin_.empty() &&
        dep_eject_origin_[task] != core::kInvalidGpu) {
      notify_gpu = dep_eject_origin_[task];
      dep_eject_origin_[task] = core::kInvalidGpu;
    }
    scheduler_.notify_task_complete(notify_gpu, task);
    publish(InspectorEventKind::kNotifyTaskComplete, notify_gpu, task);
  }
  if (streaming_) {
    const std::uint32_t job = task_job_[task];
    MG_DCHECK(job_remaining_[job] > 0);
    if (--job_remaining_[job] == 0) {
      job_state_[job] = JobState::kRetired;
      ++jobs_retired_;
      publish(InspectorEventKind::kJobComplete, 0, job, 0, kNoChannel,
              static_cast<std::uint32_t>(job_tasks_[job].size()));
      scheduler_.notify_job_retired(job);
      if (job_retired_cb_) {
        // Deferred: the callback may release or shed jobs, which must not
        // re-enter the scheduler from inside its own notify chain.
        events_.schedule_after(0.0, [this, job] { job_retired_cb_(job); });
      }
    }
  }
  if (deps_active_) {
    dep_completed_[task] = true;
    retire_task(gpu, task);
  }
  if (replication_active_) maybe_replicate();
  fill_buffer(gpu);
  try_start(gpu);
  retry_starved();
  if (topology_active_ && !state.active) {
    // The drain fence let this running task finish; it may have been the
    // node's last outstanding work.
    maybe_finish_drain(platform_.node_of(gpu));
  }
}

void RuntimeEngine::retire_task(GpuId gpu, TaskId task) {
  MG_DCHECK(!dep_retired_[task]);
  dep_retired_[task] = true;
  // Release the out-edges and collect the tasks whose last unretired
  // predecessor this was. A successor is announced to the scheduler exactly
  // once, when it becomes fully poppable (enabled, and — streamed — its job
  // arrived); parked orphans re-enter the engine's reclaim queue instead.
  dep_enabled_scratch_.clear();
  const std::span<const TaskId> successors = graph_.successors(task);
  const std::span<const std::uint8_t> kinds = graph_.successor_kinds(task);
  bool woke_work = false;
  for (std::size_t i = 0; i < successors.size(); ++i) {
    const TaskId succ = successors[i];
    publish(InspectorEventKind::kEdgeReleased, gpu, task, kinds[i], kNoChannel,
            succ);
    MG_DCHECK(dep_pending_[succ] > 0);
    if (--dep_pending_[succ] != 0) continue;
    dep_enabled_[succ] = true;
    dep_revoked_[succ] = false;
    if (dep_completed_[succ]) continue;  // finished before a revocation
    publish(InspectorEventKind::kTaskEnabled, gpu, succ);
    if (dep_parked_[succ]) {
      dep_parked_[succ] = false;
      popped_[succ] = false;  // it will legitimately be served again
      reclaimed_.push_back(succ);
      woke_work = true;
    } else if (!popped_[succ] && (!streaming_ || released_[succ])) {
      dep_enabled_scratch_.push_back(succ);
      woke_work = true;
    } else if (popped_[succ]) {
      woke_work = true;  // buffered on a survivor: its head gate may open
    }
  }
  scheduler_.notify_task_retired(task, dep_enabled_scratch_);
  if (!woke_work) return;
  for (GpuId other = 0; other < platform_.num_gpus; ++other) {
    if (!gpus_[other].alive) continue;
    fill_buffer(other);
    try_start(other);
  }
}

void RuntimeEngine::unretire_task(GpuId gpu, TaskId task) {
  GpuState& state = gpus_[gpu];
  MG_DCHECK(dep_retired_[task] && dep_completed_[task]);
  publish(InspectorEventKind::kTaskUnretired, gpu, task);
  dep_retired_[task] = false;
  dep_completed_[task] = false;
  dep_rerun_[task] = true;
  popped_[task] = false;
  // Unwind the completion: the re-run on a survivor counts instead. The
  // compute time the dead GPU really spent stays in its busy_us.
  MG_DCHECK(completed_ > 0 && state.tasks_executed > 0);
  --completed_;
  --state.tasks_executed;
  ++fault_metrics_.tasks_reclaimed;
  if (!orphan_lost_at_us_.empty()) orphan_lost_at_us_[task] = events_.now();
  // Revoke the enablements this retirement granted: successors wait for the
  // re-run (a successor that already finished keeps its completion — the
  // rollback does not cascade).
  for (TaskId succ : graph_.successors(task)) {
    if (dep_pending_[succ]++ == 0 && !dep_completed_[succ]) {
      dep_enabled_[succ] = false;
      dep_revoked_[succ] = true;
      // If the successor already sits in a survivor's pipeline, pull it out:
      // left in place it would stall that GPU at the head gate while its
      // re-running predecessor queues *behind* it — a deadlock.
      if (popped_[succ]) eject_revoked(gpu, succ);
    }
  }
  if (replication_active_) {
    // The re-run will consume its inputs again.
    for (DataId data : graph_.inputs(task)) ++remaining_uses_[data];
  }
  if (streaming_) {
    const std::uint32_t job = task_job_[task];
    if (job_remaining_[job]++ == 0) {
      // The job's retirement itself rolls back. The retired callback may
      // already have fired — admission decisions it took stand.
      MG_DCHECK(job_state_[job] == JobState::kRetired);
      job_state_[job] = JobState::kReleased;
      --jobs_retired_;
    }
  }
  // Committed progress snapshots (checkpoint_progress_) are host-durable
  // and survive the loss: the re-run resumes from the last committed
  // fraction, but only after its own predecessors have re-retired.
  reclaimed_.push_back(task);
}

void RuntimeEngine::eject_revoked(GpuId lost_gpu, TaskId task) {
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    GpuState& state = gpus_[gpu];
    // A running revocation victim is left alone: it started legally before
    // the rollback, and a finished successor keeps its completion anyway.
    if (!state.alive || is_running_here(state, task)) continue;
    const auto it = std::find(state.buffer.begin(), state.buffer.end(), task);
    if (it == state.buffer.end()) continue;
    const bool was_head = it == state.buffer.begin();
    state.buffer.erase(it);
    if (was_head && state.assembly_active) {
      // Unwind the in-flight assembly: its pins and scratch belong to a
      // start that can no longer happen.
      for (DataId data : state.assembly_pins) state.memory->unpin(data);
      state.assembly_pins.clear();
      state.assembly_active = false;
      if (state.scratch_reserved) {
        const std::uint64_t output_bytes = graph_.task_output_bytes(task);
        state.memory->release_scratch(output_bytes);
        state.scratch_reserved = false;
        publish(InspectorEventKind::kScratchRelease, gpu, task, output_bytes);
      }
      if (!state.buffer.empty()) begin_assembly(gpu);
    }
    // Park it popped: the predecessor's re-retirement routes it back through
    // the reclaim queue (retire_task's unpark branch). The scheduler still
    // sees it in this GPU's pipeline, so remember where to report its
    // eventual completion.
    dep_parked_[task] = true;
    if (dep_eject_origin_[task] == core::kInvalidGpu) {
      // Repeated ejections keep the first origin: that is still the pipeline
      // the scheduler believes the task sits in.
      dep_eject_origin_[task] = gpu;
    }
    ++fault_metrics_.tasks_reclaimed;
    if (!orphan_lost_at_us_.empty()) orphan_lost_at_us_[task] = events_.now();
    publish(InspectorEventKind::kTaskReclaimed, lost_gpu, task);
    return;
  }
}

void RuntimeEngine::pump_hints(GpuId gpu) {
  GpuState& state = gpus_[gpu];
  while (!state.hint_queue.empty()) {
    const DataId data = state.hint_queue.front();
    if (!state.memory->fetch_hint(data, config_.hints_may_evict)) {
      break;  // no room right now: retry when memory is freed
    }
    state.hint_queue.pop_front();
  }
}

void RuntimeEngine::retry_starved() {
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    if (gpus_[gpu].starved) fill_buffer(gpu);
  }
}

void RuntimeEngine::on_data_loaded(GpuId gpu, DataId data) {
  GpuState& state = gpus_[gpu];
  const bool from_peer =
      platform_.nvlink_enabled && fetch_from_peer_[gpu][data] != 0;
  if (from_peer) {
    ++state.peer_loads;
    state.bytes_from_peers += graph_.data_size(data);
  } else {
    ++state.loads;
    state.bytes_loaded += graph_.data_size(data);
    if (fault_metrics_.gpu_losses > 0) ++fault_metrics_.post_loss_host_loads;
  }
  if (replication_active_ && protected_on_[data] != core::kInvalidGpu &&
      protected_on_[data] != gpu) {
    // A second copy landed: the survivor's replica is no longer the sole
    // copy and returns to the regular eviction regime.
    release_protection(data, /*uses_exhausted=*/false);
  }
  publish(InspectorEventKind::kLoadComplete, gpu, data,
          graph_.data_size(data), kNoChannel, from_peer ? 1 : 0);
  if (config_.record_trace) {
    trace_.events.push_back(
        {events_.now(), from_peer ? TraceKind::kPeerLoad : TraceKind::kLoad,
         gpu, data});
  }
  scheduler_.notify_data_loaded(gpu, data);
  publish(InspectorEventKind::kNotifyDataLoaded, gpu, data);
  // If the landed data is an input of the task being assembled, pin it so a
  // later prefetch's eviction cannot take it back before the task starts.
  if (state.assembly_active) {
    const TaskId head = state.buffer.front();
    const auto inputs = graph_.inputs(head);
    if (std::find(inputs.begin(), inputs.end(), data) != inputs.end() &&
        std::find(state.assembly_pins.begin(), state.assembly_pins.end(),
                  data) == state.assembly_pins.end()) {
      state.memory->pin(data);
      state.assembly_pins.push_back(data);
    }
  }
  try_start(gpu);
  retry_starved();
  if (topology_active_ && !state.active) {
    // A fetch that was on the wire at the drain fence just landed; the
    // manager may be quiescent now.
    maybe_finish_drain(platform_.node_of(gpu));
  }
}

void RuntimeEngine::on_data_evicted(GpuId gpu, DataId data) {
  GpuState& state = gpus_[gpu];
  ++state.evictions;
  publish(InspectorEventKind::kEvict, gpu, data, graph_.data_size(data),
          kNoChannel, state.memory->pin_count(data));
  if (config_.record_trace) {
    trace_.events.push_back({events_.now(), TraceKind::kEvict, gpu, data});
  }
  scheduler_.notify_data_evicted(gpu, data);
  publish(InspectorEventKind::kNotifyDataEvicted, gpu, data);
  // The freed space may admit the next push-time prefetch hint — but this
  // callback runs from inside make_room(), whose caller still needs the
  // space it is freeing. Defer the pump until the current operation is done.
  if (!state.hint_queue.empty()) {
    events_.schedule_after(0.0, [this, gpu] { pump_hints(gpu); });
  }
}

void RuntimeEngine::on_fetch_started(GpuId gpu, DataId data, bool demand) {
  publish(InspectorEventKind::kFetchStart, gpu, data, graph_.data_size(data),
          kNoChannel, demand ? 1 : 0);
}

void RuntimeEngine::on_replica_shed(GpuId gpu, DataId data) {
  ++fault_metrics_.replicas_shed;
  publish(InspectorEventKind::kReplicaShed, gpu, data, graph_.data_size(data));
}

std::string RuntimeEngine::format_engine_state() const {
  std::string out;
  char line[256];
  // Pending transfers and the oldest blocked task — the first two things
  // needed when triaging a stuck (often faulted) run.
  std::size_t nvlink_pending = 0;
  for (const auto& egress : nvlink_egress_) nvlink_pending += egress->pending();
  std::snprintf(line, sizeof line,
                "  pending transfers: host-bus=%zu writeback=%zu nvlink=%zu\n",
                bus_.pending(),
                writeback_bus_ ? writeback_bus_->pending() : std::size_t{0},
                nvlink_pending);
  out += line;
  for (core::NodeId node = 0; node < static_cast<core::NodeId>(nodes_.size());
       ++node) {
    const NodeState& state = nodes_[node];
    std::snprintf(line, sizeof line,
                  "  node%u: pci=%zu net=%zu writeback=%zu host-cache=%llu "
                  "bytes\n",
                  node, state.pci->pending(), state.net->pending(),
                  state.writeback ? state.writeback->pending() : std::size_t{0},
                  static_cast<unsigned long long>(state.cached_bytes));
    out += line;
  }
  {
    GpuId blocked_gpu = core::kInvalidGpu;
    double oldest_us = 0.0;
    for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
      const GpuState& state = gpus_[gpu];
      if (!state.alive || !state.assembly_active || has_running_work(state)) {
        continue;
      }
      if (blocked_gpu == core::kInvalidGpu ||
          state.assembly_since_us < oldest_us) {
        blocked_gpu = gpu;
        oldest_us = state.assembly_since_us;
      }
    }
    if (blocked_gpu != core::kInvalidGpu) {
      std::snprintf(line, sizeof line,
                    "  oldest blocked task: T%u on gpu%u (assembling since "
                    "t=%.1fus)\n",
                    gpus_[blocked_gpu].buffer.front(), blocked_gpu, oldest_us);
      out += line;
    }
  }
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    const GpuState& state = gpus_[gpu];
    std::snprintf(
        line, sizeof line,
        "  gpu%u:%s running=%d buffered=%zu starved=%d stalled=%zu "
        "used=%llu/%llu assembly=%d\n",
        gpu, state.alive ? (state.active ? "" : " INACTIVE") : " DEAD",
        state.running == kInvalidTask ? -1 : static_cast<int>(state.running),
        state.buffer.size(), state.starved ? 1 : 0,
        state.memory->stalled_fetches(),
        static_cast<unsigned long long>(state.memory->used_bytes()),
        static_cast<unsigned long long>(state.memory->capacity_bytes()),
        state.assembly_active ? 1 : 0);
    out += line;
    if (occupancy_active_ && !state.running_set.empty()) {
      std::snprintf(line, sizeof line, "    co-running (%u/%u warps):",
                    governor_->active_warps(gpu), governor_->total_warps());
      out += line;
      for (const RunningTask& entry : state.running_set) {
        std::snprintf(line, sizeof line, " T%u(w=%u rem=%.1fus)", entry.task,
                      entry.warps, entry.remaining_solo_us);
        out += line;
      }
      out += '\n';
    }
    if (!state.buffer.empty()) {
      const TaskId head = state.buffer.front();
      std::snprintf(line, sizeof line, "    head task %u inputs:", head);
      out += line;
      for (DataId data : graph_.inputs(head)) {
        std::snprintf(line, sizeof line, " d%u(res=%d pins=%u)", data,
                      static_cast<int>(state.memory->residency(data)),
                      state.memory->pin_count(data));
        out += line;
      }
      out += '\n';
    }
    out += "    resident:";
    for (DataId data : state.memory->resident()) {
      std::snprintf(line, sizeof line, " d%u(pins=%u)", data,
                    state.memory->pin_count(data));
      out += line;
    }
    out += '\n';
  }
  return out;
}

void RuntimeEngine::throw_deadlock() const {
  char header[160];
  std::snprintf(header, sizeof header,
                "simulation deadlock — scheduler or policy bug: %u/%u tasks "
                "completed, event queue empty at t=%.1fus\n",
                completed_, graph_.num_tasks(), events_.now());
  std::string message = header;
  if (deps_active_) {
    std::uint32_t blocked = 0;
    std::uint32_t parked = 0;
    for (TaskId task = 0; task < graph_.num_tasks(); ++task) {
      if (!dep_enabled_[task] && !dep_completed_[task]) ++blocked;
      if (dep_parked_[task]) ++parked;
    }
    char deps[128];
    std::snprintf(deps, sizeof deps,
                  "dependencies: %u tasks awaiting predecessors (%u parked)\n",
                  blocked, parked);
    message += deps;
  }
  if (streaming_) {
    char serving[128];
    std::snprintf(serving, sizeof serving,
                  "serving: %u jobs in flight (%u released, %u retired of "
                  "%u)\n",
                  jobs_in_flight(), jobs_released_, jobs_retired_, num_jobs_);
    message += serving;
  }
  throw DeadlockError(message + format_engine_state());
}

void RuntimeEngine::schedule_faults() {
  const FaultPlan& plan = injector_->plan();
  for (const FaultPlan::GpuLoss& loss : plan.gpu_losses) {
    events_.schedule_at(loss.time_us,
                        [this, gpu = loss.gpu] { fail_gpu(gpu); });
  }
  for (const FaultPlan::NodeLoss& loss : plan.node_losses) {
    events_.schedule_at(loss.time_us,
                        [this, node = loss.node] { fail_node(node); });
  }
  for (const FaultPlan::CapacityShock& shock : plan.capacity_shocks) {
    events_.schedule_at(shock.time_us,
                        [this, gpu = shock.gpu,
                         bytes = shock.capacity_bytes] {
                          apply_capacity_shock(gpu, bytes);
                        });
  }
}

void RuntimeEngine::attach_fault_hooks() {
  if (config_.retry_jitter > 0.0) {
    jitter_state_ = config_.seed != 0 ? config_.seed : 0x9e3779b97f4a7c15ull;
  }
  auto hook = [this](std::uint32_t channel) {
    return [this, channel](GpuId dst, DataId data, std::uint64_t bytes,
                           std::uint32_t attempt) -> double {
      // Deliveries towards a dead GPU land in its deactivated memory
      // manager (a no-op); failing and retrying them would only keep the
      // request alive forever.
      if (!gpus_[dst].alive) return -1.0;
      if (!injector_->should_fail_transfer(channel, events_.now(), attempt)) {
        return -1.0;
      }
      ++fault_metrics_.transfer_retries;
      fault_metrics_.wasted_transfer_bytes += bytes;
      publish(InspectorEventKind::kTransferRetry, dst, data, bytes, channel,
              attempt);
      const double exponent =
          static_cast<double>(std::min<std::uint32_t>(attempt - 1, 30));
      double backoff = std::min(config_.retry_backoff_cap_us,
                                config_.retry_backoff_base_us *
                                    std::exp2(exponent));
      if (config_.retry_jitter > 0.0) {
        // One xorshift64 draw per failed attempt de-synchronizes concurrent
        // retries; with the knob at its default of 0 no draw happens and the
        // schedule stays byte-identical.
        jitter_state_ ^= jitter_state_ << 13;
        jitter_state_ ^= jitter_state_ >> 7;
        jitter_state_ ^= jitter_state_ << 17;
        const double u = static_cast<double>(jitter_state_ >> 11) * 0x1.0p-53;
        backoff *= 1.0 + config_.retry_jitter * u;
      }
      return backoff;
    };
  };
  bus_.set_fault_hook(hook(kChannelHostBus));
  for (GpuId gpu = 0; gpu < static_cast<GpuId>(nvlink_egress_.size()); ++gpu) {
    nvlink_egress_[gpu]->set_fault_hook(hook(kChannelNvlinkBase + gpu));
  }
  // The writeback channel is deliberately left un-hooked (see FaultPlan).
}

void RuntimeEngine::fail_gpu(GpuId gpu) {
  GpuState& state = gpus_[gpu];
  if (!state.alive) return;
  if (alive_gpus_ == 1) {
    throw EngineError(
        "fault plan failed the last surviving GPU; no device left to finish "
        "the workload");
  }
  // Recovery reasons about member granularity: break every super-task batch
  // before orphans are collected, so uncompleted riders re-dispatch as
  // ordinary tasks on the survivors.
  unfuse_all();
  state.alive = false;
  --alive_gpus_;
  ++fault_metrics_.gpu_losses;

  // Reclaim the interrupted running task (its finish event turns stale and
  // is ignored) and every buffered task, in pop order. In occupancy mode
  // the whole co-running set is interrupted at once.
  std::vector<TaskId> orphans;
  if (occupancy_active_) {
    occ_reclaim_running(gpu, orphans);
  } else if (state.running != kInvalidTask) {
    state.busy_us -= std::max(0.0, state.running_until_us - events_.now());
    orphans.push_back(state.running);
    state.running = kInvalidTask;
  }
  for (TaskId task : state.buffer) orphans.push_back(task);
  state.buffer.clear();
  state.assembly_active = false;
  state.scratch_reserved = false;
  state.assembly_pins.clear();
  state.hint_queue.clear();
  state.starved = false;

  // Tasks to re-run because of this loss: buffered/running orphans plus —
  // on a dependency-gated run — completions whose write-back never drained.
  const std::uint32_t lost_tasks = static_cast<std::uint32_t>(
      orphans.size() + (deps_active_ ? state.undurable.size() : 0));
  publish(InspectorEventKind::kGpuLost, gpu, 0, state.memory->used_bytes(),
          kNoChannel, lost_tasks);
  MG_TRACE("gpu%u lost at t=%.1fus, %zu orphans", gpu, events_.now(),
           orphans.size());
  state.memory->deactivate();

  // Transfers still queued towards the dead GPU are pointless; drop them so
  // the shared channels stop burning time on them. (A transfer already on
  // the wire, or waiting out a retry backoff, cannot be drained — it
  // delivers into the deactivated manager, a no-op.) On a cluster the
  // queues are left intact: an intermediate network-chain hop carries a
  // continuation that other waiting GPUs of the node depend on, so every
  // leg runs to completion and deliveries into the deactivated manager are
  // dropped at the endpoint instead.
  if (!cluster_active_) {
    (void)bus_.drain_pending_to(gpu);
    if (writeback_bus_) (void)writeback_bus_->drain_pending_to(gpu);
  }
  if (platform_.nvlink_enabled && !cluster_active_) {
    for (GpuId src = 0; src < platform_.num_gpus; ++src) {
      // The dead GPU's own egress port goes completely dark; other ports
      // only lose their requests towards the dead GPU. Invoking the drained
      // wrapped completions immediately lets each one unpin its source and
      // re-route fetches that lost their replica holder (see
      // start_peer_copy).
      std::vector<Bus::Request> drained =
          src == gpu ? nvlink_egress_[src]->drain_all_pending()
                     : nvlink_egress_[src]->drain_pending_to(gpu);
      for (Bus::Request& request : drained) request.on_complete();
    }
    fetch_from_peer_[gpu].assign(graph_.num_data(), 0);
  }

  for (TaskId task : orphans) {
    MG_DCHECK(popped_[task]);
    popped_[task] = false;  // the task will legitimately be popped again
    ++fault_metrics_.tasks_reclaimed;
    if (!orphan_lost_at_us_.empty()) orphan_lost_at_us_[task] = events_.now();
    publish(InspectorEventKind::kTaskReclaimed, gpu, task);
  }
  if (deps_active_ && !state.undurable.empty()) {
    // Completions whose output write-back never drained died with the GPU:
    // their effects were not durable, so they un-retire, revoke the
    // enablements they granted and re-run on survivors — ahead of any
    // orphaned successor, which stays parked until the re-run retires.
    const std::vector<TaskId> undurable = std::move(state.undurable);
    state.undurable.clear();
    for (TaskId task : undurable) unretire_task(gpu, task);
  }
  if (replication_active_) {
    // The dead GPU's protections (if any) died with its residency.
    for (DataId data = 0; data < graph_.num_data(); ++data) {
      if (protected_on_[data] == gpu) protected_on_[data] = core::kInvalidGpu;
    }
    protect_sole_survivors(gpu);
  }
  const bool adopted = scheduler_.notify_gpu_lost(gpu, orphans);
  publish(InspectorEventKind::kNotifyGpuLost, gpu,
          static_cast<std::uint32_t>(orphans.size()), 0, kNoChannel,
          adopted ? 1 : 0);
  if (const auto divergence = scheduler_.replay_divergence(gpu)) {
    ++fault_metrics_.replay_divergences;
    fault_metrics_.replay_reassigned_tasks += divergence->reassigned_tasks;
    publish(InspectorEventKind::kReplayDivergence, gpu,
            divergence->divergence_index, 0, kNoChannel,
            divergence->reassigned_tasks);
  }
  if (!adopted) {
    for (TaskId task : orphans) reclaimed_.push_back(task);
  }

  // Wake the survivors: redistributed work may be available right now.
  for (GpuId other = 0; other < platform_.num_gpus; ++other) {
    if (!gpus_[other].alive) continue;
    fill_buffer(other);
    pump_hints(other);
    try_start(other);
  }
  if (topology_active_) {
    // A loss on a draining node may have removed its last obstacle.
    maybe_finish_drain(platform_.node_of(gpu));
  }
}

void RuntimeEngine::apply_capacity_shock(GpuId gpu,
                                         std::uint64_t capacity_bytes) {
  GpuState& state = gpus_[gpu];
  if (!state.alive) return;  // shocks on a dead GPU are moot
  ++fault_metrics_.capacity_shocks;
  const std::uint64_t floor = min_safe_capacity();
  const std::uint64_t effective = std::max(capacity_bytes, floor);
  publish(InspectorEventKind::kCapacityShock, gpu, 0, effective, kNoChannel,
          effective != capacity_bytes ? 1 : 0);
  MG_TRACE("gpu%u capacity shock to %llu bytes at t=%.1fus", gpu,
           static_cast<unsigned long long>(effective), events_.now());
  state.memory->set_capacity(effective);
  fault_metrics_.emergency_evictions += state.memory->emergency_evict();
}

void RuntimeEngine::ensure_topology_state() {
  if (topology_active_) return;
  MG_CHECK_MSG(cluster_active_,
               "topology changes need a multi-node platform");
  topology_active_ = true;
  node_status_.assign(platform_.num_nodes, NodeStatus::kActive);
  active_node_count_ = platform_.num_nodes;
  drain_migrations_left_.assign(platform_.num_nodes, 0);
  drain_start_us_.assign(platform_.num_nodes, 0.0);
  warm_fills_left_.assign(platform_.num_nodes, 0);
}

void RuntimeEngine::begin_node_drain(core::NodeId node) {
  MG_CHECK_MSG(node < platform_.num_nodes, "bad node id");
  ensure_topology_state();
  MG_CHECK_MSG(node_status_[node] == NodeStatus::kActive,
               "only an active node can drain");
  MG_CHECK_MSG(active_node_count_ > 1, "cannot drain the last serving node");
  // A rider would otherwise "start" on the draining node when its leader
  // (already running past the fence) completes there: break every batch
  // first so riders re-dispatch at member granularity.
  unfuse_all();
  node_status_[node] = NodeStatus::kDraining;
  --active_node_count_;
  drain_start_us_[node] = events_.now();

  // Drain fence: pull every popped-but-unstarted task back out of the node's
  // pipelines. Running tasks keep running to completion (the devices are
  // intact — this is planned, nothing re-runs) and their write-backs drain
  // on the node's own channels before it retires.
  std::vector<std::pair<GpuId, TaskId>> pulled;
  std::vector<GpuId> node_gpus;
  const GpuId begin = platform_.node_gpu_begin(node);
  const GpuId end = platform_.node_gpu_end(node);
  for (GpuId gpu = begin; gpu < end; ++gpu) {
    node_gpus.push_back(gpu);
    GpuState& state = gpus_[gpu];
    state.active = false;
    if (!state.alive) continue;  // an earlier GPU loss already emptied it
    if (state.assembly_active) {
      // Unwind the in-flight assembly: its pins and scratch belong to a
      // start that can no longer happen here.
      for (DataId data : state.assembly_pins) state.memory->unpin(data);
      state.assembly_pins.clear();
      state.assembly_active = false;
      if (state.scratch_reserved) {
        const std::uint64_t output_bytes =
            graph_.task_output_bytes(state.buffer.front());
        state.memory->release_scratch(output_bytes);
        state.scratch_reserved = false;
        publish(InspectorEventKind::kScratchRelease, gpu, state.buffer.front(),
                output_bytes);
      }
    }
    for (TaskId task : state.buffer) pulled.emplace_back(gpu, task);
    state.buffer.clear();
    state.hint_queue.clear();
    state.starved = false;
    // Parked fetches served the pulled tasks; in-flight ones deliver and sit
    // resident until the retirement wipe.
    state.memory->cancel_stalled();
  }
  publish(InspectorEventKind::kNodeDrainStart, begin, node, 0, kNoChannel,
          static_cast<std::uint32_t>(pulled.size()));
  MG_TRACE("node%u drain fence at t=%.1fus, %zu tasks pulled", node,
           events_.now(), pulled.size());
  std::vector<TaskId> orphans;
  orphans.reserve(pulled.size());
  for (const auto& [gpu, task] : pulled) {
    MG_DCHECK(popped_[task]);
    popped_[task] = false;  // the task will legitimately be served again
    publish(InspectorEventKind::kTaskDrained, gpu, task, 0, kNoChannel, node);
    orphans.push_back(task);
  }
  const bool adopted =
      scheduler_.notify_node_draining(node, node_gpus, orphans);
  if (!adopted) {
    for (TaskId task : orphans) reclaimed_.push_back(task);
  }

  start_data_migrations(node);

  // Wake the survivors: the pulled tasks may be startable right now.
  for (GpuId other = 0; other < platform_.num_gpus; ++other) {
    if (!gpus_[other].alive || !gpus_[other].active) continue;
    fill_buffer(other);
    pump_hints(other);
    try_start(other);
  }
  // An idle node with nothing homed on it retires immediately.
  maybe_finish_drain(node);
}

void RuntimeEngine::start_data_migrations(core::NodeId node) {
  if (home_override_.empty()) {
    home_override_.resize(graph_.num_data());
    for (DataId data = 0; data < graph_.num_data(); ++data) {
      home_override_[data] = platform_.home_node_of(data);
    }
  }
  // New homes round-robin over the serving set.
  std::vector<core::NodeId> targets;
  for (core::NodeId other = 0; other < platform_.num_nodes; ++other) {
    if (node_status_[other] == NodeStatus::kActive) targets.push_back(other);
  }
  MG_CHECK_MSG(!targets.empty(), "no serving node left to migrate to");
  const GpuId port = platform_.node_gpu_begin(node);  // stand-in for the host
  std::size_t next = 0;
  for (DataId data = 0; data < graph_.num_data(); ++data) {
    if (home_override_[data] != node) continue;
    const core::NodeId dst = targets[next++ % targets.size()];
    const std::uint64_t bytes = graph_.data_size(data);
    ++drain_migrations_left_[node];
    publish(InspectorEventKind::kDataMigrateStart, port, data, bytes,
            kNoChannel, dst);
    // The shard leaves over the draining node's PCI bus and network egress —
    // the remote-fetch chain in reverse; landing on the new home re-homes it.
    // With the netfault layer armed the net leg is addressed to the
    // *destination* node's port so link faults on the (node, dst) pair
    // degrade or park it; dormant runs keep the historical self-addressing.
    const GpuId net_port =
        netfault_active_ ? platform_.node_gpu_begin(dst) : port;
    nodes_[node].pci->request(
        port, data, bytes, [this, node, dst, net_port, port, data, bytes] {
          nodes_[node].net->request(
              net_port, data, bytes, [this, node, dst, port, data, bytes] {
                home_override_[data] = dst;
                publish(InspectorEventKind::kDataMigrated, port, data, bytes,
                        kNoChannel, dst);
                MG_DCHECK(drain_migrations_left_[node] > 0);
                --drain_migrations_left_[node];
                maybe_finish_drain(node);
              });
        });
  }
}

void RuntimeEngine::maybe_finish_drain(core::NodeId node) {
  if (!topology_active_ || node_status_[node] != NodeStatus::kDraining) return;
  if (drain_migrations_left_[node] != 0) return;
  for (GpuId gpu = platform_.node_gpu_begin(node);
       gpu < platform_.node_gpu_end(node); ++gpu) {
    const GpuState& state = gpus_[gpu];
    if (!state.alive) continue;  // already inert
    if (has_running_work(state)) return;
    if (!state.undurable.empty()) return;  // a write-back is still draining
    // Quiescent = no in-flight fetch, no parked fetch, no scratch (which
    // also covers non-dependency write-backs: scratch releases only when
    // the drain completes).
    if (!state.memory->quiescent()) return;
  }
  const NodeState& host = nodes_[node];
  for (DataId data = 0; data < graph_.num_data(); ++data) {
    if (host.net_fetching[data] != 0) return;  // a fill still owes waiters
  }
  finish_node_drain(node);
}

void RuntimeEngine::finish_node_drain(core::NodeId node) {
  NodeState& host = nodes_[node];
  // The node powers off: device residency and the host cache of remote data
  // go away silently (the drain event marks the wipe for inspectors; no
  // eviction fires). The GPUs stay alive so the node can rejoin later.
  for (GpuId gpu = platform_.node_gpu_begin(node);
       gpu < platform_.node_gpu_end(node); ++gpu) {
    if (!gpus_[gpu].alive) continue;
    gpus_[gpu].memory->wipe_resident();
  }
  std::fill(host.cached.begin(), host.cached.end(), std::uint8_t{0});
  host.cached_bytes = 0;
  node_status_[node] = NodeStatus::kInactive;
  const double latency_us = events_.now() - drain_start_us_[node];
  publish(InspectorEventKind::kNodeDrained, platform_.node_gpu_begin(node),
          node, 0, kNoChannel, static_cast<std::uint32_t>(latency_us));
  MG_TRACE("node%u drained at t=%.1fus (%.1fus after the fence)", node,
           events_.now(), latency_us);
}

void RuntimeEngine::begin_node_join(core::NodeId node) {
  MG_CHECK_MSG(node < platform_.num_nodes, "bad node id");
  ensure_topology_state();
  MG_CHECK_MSG(node_status_[node] == NodeStatus::kInactive,
               "only an inactive node can join");
  node_status_[node] = NodeStatus::kWarming;

  // Warm-up: pull the hottest shared data (static consumer count — the same
  // look-ahead signal replication uses) into the joining node's host cache
  // before its GPUs take traffic, so the first tasks placed there do not all
  // stall on cold remote fetches.
  constexpr std::size_t kWarmSetSize = 8;
  std::vector<std::uint32_t> consumers(graph_.num_data(), 0);
  for (TaskId task = 0; task < graph_.num_tasks(); ++task) {
    for (DataId data : graph_.inputs(task)) ++consumers[data];
  }
  std::vector<std::pair<std::uint32_t, DataId>> hot;
  for (DataId data = 0; data < graph_.num_data(); ++data) {
    if (consumers[data] < 2) continue;       // not shared: fetch on demand
    if (home_node(data) == node) continue;   // home shards are already local
    hot.emplace_back(consumers[data], data);
  }
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  const std::uint64_t budget = platform_.host_memory_bytes;
  std::uint64_t planned_bytes = 0;
  std::vector<DataId> warm_set;
  for (const auto& [uses, data] : hot) {
    if (warm_set.size() >= kWarmSetSize) break;
    const std::uint64_t bytes = graph_.data_size(data);
    if (budget > 0 && planned_bytes + bytes > budget) continue;
    planned_bytes += bytes;
    warm_set.push_back(data);
  }
  const std::uint32_t fills = static_cast<std::uint32_t>(warm_set.size());
  publish(InspectorEventKind::kNodeJoinStart, platform_.node_gpu_begin(node),
          node, planned_bytes, kNoChannel, fills);
  MG_TRACE("node%u joining at t=%.1fus, %u warm fills (%llu bytes)", node,
           events_.now(), fills,
           static_cast<unsigned long long>(planned_bytes));
  if (warm_set.empty()) {
    activate_node(node, 0);
    return;
  }
  warm_fills_left_[node] = fills;
  const GpuId port = platform_.node_gpu_begin(node);  // stand-in for the host
  for (DataId data : warm_set) {
    const std::uint64_t bytes = graph_.data_size(data);
    const core::NodeId home = home_node(data);
    // Same wire shape as a remote fetch — home PCI out, home network egress —
    // but it lands as a warm fill, not a demand-driven host-cache fill.
    nodes_[home].pci->request(
        port, data, bytes, [this, node, home, port, data, bytes] {
          nodes_[home].net->request(
              port, data, bytes, [this, node, data, bytes] {
                finish_warm_fill(node, data, bytes);
              });
        });
  }
}

void RuntimeEngine::finish_warm_fill(core::NodeId node, DataId data,
                                     std::uint64_t bytes) {
  MG_DCHECK(node_status_[node] == NodeStatus::kWarming);
  NodeState& host = nodes_[node];
  MG_DCHECK(host.cached[data] == 0);
  host.cached[data] = 1;
  host.cached_bytes += bytes;
  host.last_use[data] = ++host.use_clock;
  publish(InspectorEventKind::kNodeWarmFill, platform_.node_gpu_begin(node),
          data, bytes, kNoChannel, node);
  MG_DCHECK(warm_fills_left_[node] > 0);
  const std::uint32_t fills = warm_fills_left_[node];
  if (--warm_fills_left_[node] == 0) {
    activate_node(node, fills);
  }
}

void RuntimeEngine::activate_node(core::NodeId node, std::uint32_t fills) {
  node_status_[node] = NodeStatus::kActive;
  ++active_node_count_;
  std::vector<GpuId> node_gpus;
  for (GpuId gpu = platform_.node_gpu_begin(node);
       gpu < platform_.node_gpu_end(node); ++gpu) {
    if (!gpus_[gpu].alive) continue;
    gpus_[gpu].active = true;
    node_gpus.push_back(gpu);
  }
  publish(InspectorEventKind::kNodeJoined, platform_.node_gpu_begin(node),
          node, 0, kNoChannel, fills);
  MG_TRACE("node%u joined at t=%.1fus (%zu gpus serving)", node, events_.now(),
           node_gpus.size());
  scheduler_.notify_node_added(node, node_gpus);
  for (GpuId gpu : node_gpus) {
    fill_buffer(gpu);
    pump_hints(gpu);
    try_start(gpu);
  }
}

void RuntimeEngine::fail_node(core::NodeId node) {
  ensure_topology_state();
  if (node_status_[node] == NodeStatus::kLost) return;
  unfuse_all();  // recovery sees member granularity, never fused batches
  // At least one serving GPU must survive outside the node.
  bool survivor_serving = false;
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    if (platform_.node_of(gpu) == node) continue;
    if (gpus_[gpu].alive && gpus_[gpu].active) {
      survivor_serving = true;
      break;
    }
  }
  if (!survivor_serving) {
    throw EngineError(
        "fault plan lost the last serving node; no active GPU left to finish "
        "the workload");
  }
  if (node_status_[node] == NodeStatus::kActive) --active_node_count_;
  node_status_[node] = NodeStatus::kLost;

  // Tear every GPU of the node down at once — fail_gpu's reclaim, compressed
  // into one recovery pass with a single node-level announcement.
  std::vector<GpuId> node_gpus;
  std::vector<std::pair<GpuId, TaskId>> orphan_sites;
  std::vector<GpuId> undurable_gpus;
  std::uint64_t used_bytes = 0;
  std::uint32_t undurable_count = 0;
  for (GpuId gpu = platform_.node_gpu_begin(node);
       gpu < platform_.node_gpu_end(node); ++gpu) {
    node_gpus.push_back(gpu);
    GpuState& state = gpus_[gpu];
    if (!state.alive) continue;  // an earlier GPU loss already took it
    state.alive = false;
    state.active = false;
    --alive_gpus_;
    ++fault_metrics_.gpu_losses;
    if (occupancy_active_) {
      std::vector<TaskId> running_orphans;
      occ_reclaim_running(gpu, running_orphans);
      for (TaskId task : running_orphans) orphan_sites.emplace_back(gpu, task);
    } else if (state.running != kInvalidTask) {
      state.busy_us -= std::max(0.0, state.running_until_us - events_.now());
      orphan_sites.emplace_back(gpu, state.running);
      state.running = kInvalidTask;
    }
    for (TaskId task : state.buffer) orphan_sites.emplace_back(gpu, task);
    state.buffer.clear();
    state.assembly_active = false;
    state.scratch_reserved = false;
    state.assembly_pins.clear();
    state.hint_queue.clear();
    state.starved = false;
    used_bytes += state.memory->used_bytes();
    if (deps_active_) {
      undurable_count += static_cast<std::uint32_t>(state.undurable.size());
      if (!state.undurable.empty()) undurable_gpus.push_back(gpu);
    }
    state.memory->deactivate();
    if (platform_.nvlink_enabled) fetch_from_peer_[gpu].assign(graph_.num_data(), 0);
  }
  // The host cache dies with the node. In-flight network fetches towards it
  // stay queued: each chain hop carries a continuation and runs to
  // completion; the late fill lands in a dead cache and its PCI-in fan-out
  // delivers into deactivated managers — all no-ops.
  NodeState& host = nodes_[node];
  std::fill(host.cached.begin(), host.cached.end(), std::uint8_t{0});
  host.cached_bytes = 0;

  const std::uint32_t lost_tasks =
      static_cast<std::uint32_t>(orphan_sites.size()) + undurable_count;
  publish(InspectorEventKind::kNodeLost, platform_.node_gpu_begin(node), node,
          used_bytes, kNoChannel, lost_tasks);
  MG_TRACE("node%u lost at t=%.1fus, %zu orphans", node, events_.now(),
           orphan_sites.size());

  std::vector<TaskId> orphans;
  orphans.reserve(orphan_sites.size());
  for (const auto& [gpu, task] : orphan_sites) {
    MG_DCHECK(popped_[task]);
    popped_[task] = false;
    ++fault_metrics_.tasks_reclaimed;
    if (!orphan_lost_at_us_.empty()) orphan_lost_at_us_[task] = events_.now();
    publish(InspectorEventKind::kTaskReclaimed, gpu, task);
    orphans.push_back(task);
  }
  for (GpuId gpu : undurable_gpus) {
    // Completions whose write-back never drained died with the node (see
    // fail_gpu): they un-retire and re-run ahead of orphaned successors.
    const std::vector<TaskId> undurable = std::move(gpus_[gpu].undurable);
    gpus_[gpu].undurable.clear();
    for (TaskId task : undurable) unretire_task(gpu, task);
  }
  if (replication_active_) {
    for (DataId data = 0; data < graph_.num_data(); ++data) {
      if (protected_on_[data] != core::kInvalidGpu &&
          platform_.node_of(protected_on_[data]) == node) {
        protected_on_[data] = core::kInvalidGpu;
      }
    }
    protect_sole_survivors(platform_.node_gpu_begin(node));
  }

  // Shards homed on the lost node re-home instantly: host memory is modeled
  // as durably backed (the same cluster store drains and joins ride), so
  // only device-side progress is lost. No migration events — no bytes move.
  if (home_override_.empty()) {
    home_override_.resize(graph_.num_data());
    for (DataId data = 0; data < graph_.num_data(); ++data) {
      home_override_[data] = platform_.home_node_of(data);
    }
  }
  std::vector<core::NodeId> targets;
  for (core::NodeId other = 0; other < platform_.num_nodes; ++other) {
    if (node_status_[other] == NodeStatus::kActive) targets.push_back(other);
  }
  MG_CHECK_MSG(!targets.empty(), "no serving node left to re-home onto");
  std::size_t next = 0;
  for (DataId data = 0; data < graph_.num_data(); ++data) {
    if (home_override_[data] == node) {
      home_override_[data] = targets[next++ % targets.size()];
    }
  }

  // A timed fetch sourced at the lost node may sit parked behind a
  // partition that never heals (that is exactly what the detector's
  // escalation to this node loss concluded): re-issue each one from the
  // shard's new home so its waiters are not stranded. When the re-home
  // landed on the waiting node itself the re-issue rides the node's own
  // egress — one artificial hop, but the recovery stays on the audited
  // fetch path (delivery, dedup gate, byte conservation all unchanged).
  if (netfault_active_ && config_.fetch_timeout_factor > 0.0) {
    for (core::NodeId dest = 0; dest < platform_.num_nodes; ++dest) {
      if (dest == node || node_status_[dest] == NodeStatus::kLost) continue;
      for (DataId data = 0; data < graph_.num_data(); ++data) {
        if (nodes_[dest].net_fetching[data] == 0) continue;
        NetFetchState& fetch = net_fetch_[dest][data];
        if (fetch.source != node) continue;
        ++fetch.generation;  // retire the stranded issue and its deadline
        fetch.source = home_node(data);
        const std::uint64_t bytes = graph_.data_size(data);
        const std::vector<NodeWaiter>& waiters = nodes_[dest].waiters[data];
        const GpuId dst = waiters.empty() ? platform_.node_gpu_begin(dest)
                                          : waiters.front().gpu;
        issue_net_fetch(dest, fetch.source, dst, data, bytes);
        arm_fetch_deadline(dest, data, bytes, fetch_deadline_us(bytes));
      }
    }
  }

  const bool adopted = scheduler_.notify_node_lost(node, node_gpus, orphans);
  if (!adopted) {
    for (TaskId task : orphans) reclaimed_.push_back(task);
  }

  for (GpuId other = 0; other < platform_.num_gpus; ++other) {
    if (!gpus_[other].alive || !gpus_[other].active) continue;
    fill_buffer(other);
    pump_hints(other);
    try_start(other);
  }
}

// ---- Network faults: link windows, hedged fetches, suspicion ---------------

void RuntimeEngine::arm_netfaults() {
  netfault_active_ = true;
  node_suspected_.assign(platform_.num_nodes, 0);
  node_timeout_count_.assign(platform_.num_nodes, 0);
  suspicion_epoch_.assign(platform_.num_nodes, 0);
  net_fetch_.assign(platform_.num_nodes,
                    std::vector<NetFetchState>(graph_.num_data()));
  if (injector_ != nullptr) {
    for (const FaultPlan::LinkFault& fault : injector_->plan().link_faults) {
      LinkWindow window;
      window.src = fault.src;
      window.dst = fault.dst;
      window.start_us = fault.start_us;
      window.end_us = fault.end_us;
      window.factor = fault.bandwidth_factor;
      window.straggler_us = fault.straggler_us;
      window.partition = fault.partition;
      link_windows_.push_back(window);
    }
  }
  for (std::size_t i = 0; i < link_windows_.size(); ++i) {
    const LinkWindow& window = link_windows_[i];
    events_.schedule_at(window.start_us,
                        [this, i] { apply_link_boundary(i, /*start=*/true); });
    if (std::isfinite(window.end_us)) {
      events_.schedule_at(window.end_us, [this, i] {
        apply_link_boundary(i, /*start=*/false);
      });
    }
  }
  // Every node's network egress gets a cost hook (degradation stretches the
  // wire time, stragglers add latency) and a start filter that parks
  // requests whose link is partitioned until the window closes.
  for (core::NodeId node = 0; node < platform_.num_nodes; ++node) {
    nodes_[node].net->set_cost_hook(
        [this, node](GpuId dst, std::uint64_t bytes, double base_us) {
          (void)bytes;
          const LinkWindow* window =
              active_link_fault(node, platform_.node_of(dst));
          if (window == nullptr || window->partition) return base_us;
          return base_us * window->factor + window->straggler_us;
        });
    nodes_[node].net->set_start_filter(
        [this, node](GpuId dst, DataId data, std::uint64_t bytes,
                     Bus::OnComplete& on_complete) {
          if (!link_partitioned(node, platform_.node_of(dst))) return false;
          parked_net_.push_back(
              {node, dst, data, bytes, std::move(on_complete)});
          return true;
        });
  }
}

const RuntimeEngine::LinkWindow* RuntimeEngine::active_link_fault(
    core::NodeId a, core::NodeId b) const {
  if (a == b) return nullptr;
  for (const LinkWindow& window : link_windows_) {
    if (!window.active) continue;
    if ((window.src == a && window.dst == b) ||
        (window.src == b && window.dst == a)) {
      return &window;
    }
  }
  return nullptr;
}

void RuntimeEngine::apply_link_boundary(std::size_t index, bool start) {
  LinkWindow& window = link_windows_[index];
  if (start) {
    window.active = true;
    if (window.partition) {
      const std::uint64_t heal_us =
          std::isfinite(window.end_us)
              ? static_cast<std::uint64_t>(window.end_us)
              : 0;
      publish(InspectorEventKind::kLinkPartitioned, window.src, window.dst,
              heal_us);
    } else {
      publish(InspectorEventKind::kLinkDegraded, window.src, window.dst,
              static_cast<std::uint64_t>(window.factor * 1e6), kNoChannel,
              static_cast<std::uint32_t>(window.straggler_us));
    }
    MG_TRACE("link node%u-node%u %s at t=%.1fus", window.src, window.dst,
             window.partition ? "partitioned" : "degraded", events_.now());
    return;
  }
  window.active = false;
  publish(InspectorEventKind::kLinkRestored, window.src, window.dst, 0,
          kNoChannel, window.partition ? 1 : 0);
  MG_TRACE("link node%u-node%u restored at t=%.1fus", window.src, window.dst,
           events_.now());
  if (!window.partition) return;
  // Re-submit the requests the partition parked on this pair. The egress may
  // be partitioned against a *different* node by a still-open window — the
  // start filter parks such a request right back.
  std::vector<ParkedNetRequest> resumed;
  for (auto it = parked_net_.begin(); it != parked_net_.end();) {
    const core::NodeId other = platform_.node_of(it->dst);
    if ((it->src_node == window.src && other == window.dst) ||
        (it->src_node == window.dst && other == window.src)) {
      resumed.push_back(std::move(*it));
      it = parked_net_.erase(it);
    } else {
      ++it;
    }
  }
  for (ParkedNetRequest& request : resumed) {
    nodes_[request.src_node].net->request(request.dst, request.data,
                                          request.bytes,
                                          std::move(request.on_complete));
  }
}

void RuntimeEngine::issue_net_fetch(core::NodeId dest, core::NodeId source,
                                    GpuId dst, DataId data,
                                    std::uint64_t bytes,
                                    TransferPriority priority) {
  // The same two-leg chain as an untimed fetch, but the delivery routes
  // through the dedup gate so a losing duplicate cannot double-fill.
  nodes_[source].pci->request(
      dst, data, bytes,
      [this, dest, source, dst, data, bytes, priority] {
        nodes_[source].net->request(
            dst, data, bytes,
            [this, dest, source, dst, data, bytes] {
              net_fetch_delivered(dest, source, dst, data, bytes);
            },
            priority);
      },
      priority);
}

void RuntimeEngine::net_fetch_delivered(core::NodeId dest, core::NodeId source,
                                        GpuId dst, DataId data,
                                        std::uint64_t bytes) {
  // Any delivery that crossed the network from `source` is proof of life.
  if (node_suspected_[source] != 0) clear_suspicion(source);
  if (nodes_[dest].net_fetching[data] == 0) {
    // A hedge (or the original issue) already served this fetch.
    publish(InspectorEventKind::kHedgeWasted, platform_.node_gpu_begin(dest),
            data, bytes, kNoChannel, dest);
    return;
  }
  ++net_fetch_[dest][data].generation;  // retire any pending deadline
  host_cache_fill(dest, dst, data, bytes);
}

double RuntimeEngine::fetch_deadline_us(std::uint64_t bytes) const {
  return config_.fetch_timeout_factor *
         platform_.internode_transfer_time_us(bytes);
}

void RuntimeEngine::arm_fetch_deadline(core::NodeId dest, DataId data,
                                       std::uint64_t bytes, double delay_us) {
  const std::uint32_t generation = net_fetch_[dest][data].generation;
  events_.schedule_after(delay_us, [this, dest, data, bytes, generation] {
    on_fetch_deadline(dest, data, bytes, generation);
  });
}

void RuntimeEngine::on_fetch_deadline(core::NodeId dest, DataId data,
                                      std::uint64_t bytes,
                                      std::uint32_t generation) {
  NetFetchState& fetch = net_fetch_[dest][data];
  if (fetch.generation != generation) return;  // delivered or re-issued
  if (nodes_[dest].net_fetching[data] == 0) return;  // already served
  if (topology_active_ && node_status_[dest] == NodeStatus::kLost) {
    return;  // the waiters died with their node; nothing left to serve
  }
  fetch.timed_out = 1;
  const core::NodeId source = fetch.source;
  publish(InspectorEventKind::kFetchTimeout, platform_.node_gpu_begin(dest),
          data, bytes, kNoChannel, source);
  MG_TRACE("fetch of data%u into node%u from node%u timed out at t=%.1fus",
           data, dest, source, events_.now());
  suspect_node(source);
  if (fetch.hedges < config_.max_fetch_hedges) {
    const core::NodeId alternate = pick_hedge_source(dest, data, source);
    if (alternate != kNoNode) {
      ++fetch.hedges;
      ++fetch.generation;  // retire the deadline of the losing issue
      fetch.source = alternate;
      publish(InspectorEventKind::kFetchHedged, platform_.node_gpu_begin(dest),
              data, bytes, kNoChannel, alternate);
      const std::vector<NodeWaiter>& waiters = nodes_[dest].waiters[data];
      const GpuId dst = waiters.empty() ? platform_.node_gpu_begin(dest)
                                        : waiters.front().gpu;
      issue_net_fetch(dest, alternate, dst, data, bytes);
      arm_fetch_deadline(dest, data, bytes, fetch_deadline_us(bytes));
      return;
    }
  }
  // Hedge cap hit, or no holder reachable right now (every copy behind a
  // partition): keep the deadline armed with the transfer-retry exponential
  // backoff. A heal re-submits the parked legs, an escalation re-homes the
  // shard — either way a later deadline finds a way forward.
  const double exponent =
      static_cast<double>(std::min<std::uint32_t>(fetch.retries, 30));
  ++fetch.retries;
  const double backoff = std::min(
      config_.retry_backoff_cap_us,
      config_.retry_backoff_base_us * std::exp2(exponent));
  arm_fetch_deadline(dest, data, bytes, fetch_deadline_us(bytes) + backoff);
}

core::NodeId RuntimeEngine::pick_hedge_source(core::NodeId dest, DataId data,
                                              core::NodeId prefer_not) const {
  // Deterministic scan: the first unsuspected holder with a healthy link
  // wins; a suspected holder is kept as last resort (lowest id on ties).
  core::NodeId fallback = kNoNode;
  for (core::NodeId node = 0; node < platform_.num_nodes; ++node) {
    if (node == dest || node == prefer_not) continue;
    if (node_status(node) != NodeStatus::kActive) continue;
    if (home_node(data) != node && nodes_[node].cached[data] == 0) continue;
    if (link_partitioned(node, dest)) continue;
    if (node_suspected_[node] != 0) {
      if (fallback == kNoNode) fallback = node;
      continue;
    }
    return node;
  }
  // The shard's (possibly re-homed) home itself, as the very last resort —
  // a healed link makes re-fetching from home viable again.
  if (fallback == kNoNode && prefer_not != home_node(data) &&
      home_node(data) != dest && !link_partitioned(home_node(data), dest) &&
      node_status(home_node(data)) == NodeStatus::kActive) {
    fallback = home_node(data);
  }
  return fallback;
}

void RuntimeEngine::suspect_node(core::NodeId node) {
  ++node_timeout_count_[node];
  if (node_suspected_[node] != 0) return;
  if (topology_active_ && node_status_[node] == NodeStatus::kLost) return;
  node_suspected_[node] = 1;
  publish(InspectorEventKind::kNodeSuspected, platform_.node_gpu_begin(node),
          node, 0, kNoChannel, node_timeout_count_[node]);
  MG_TRACE("node%u suspected at t=%.1fus (%u timeouts)", node, events_.now(),
           node_timeout_count_[node]);
  scheduler_.notify_node_suspected(node);
  if (config_.suspicion_confirm_window_us > 0.0) {
    const std::uint32_t epoch = suspicion_epoch_[node];
    events_.schedule_after(
        config_.suspicion_confirm_window_us,
        [this, node, epoch] { escalate_suspicion(node, epoch); });
  }
}

void RuntimeEngine::clear_suspicion(core::NodeId node) {
  if (node_suspected_[node] == 0) return;
  if (topology_active_ && node_status_[node] == NodeStatus::kLost) return;
  node_suspected_[node] = 0;
  ++suspicion_epoch_[node];  // a pending confirm window must not escalate
  publish(InspectorEventKind::kNodeSuspicionCleared,
          platform_.node_gpu_begin(node), node);
  MG_TRACE("node%u suspicion cleared at t=%.1fus", node, events_.now());
  scheduler_.notify_node_suspicion_cleared(node);
}

void RuntimeEngine::escalate_suspicion(core::NodeId node, std::uint32_t epoch) {
  if (suspicion_epoch_[node] != epoch || node_suspected_[node] == 0) return;
  if (topology_active_ && node_status_[node] == NodeStatus::kLost) return;
  // Never escalate the last serving capacity away — fail_node would throw.
  // The node stays suspected; a heal can still clear it.
  bool survivor_serving = false;
  for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
    if (platform_.node_of(gpu) == node) continue;
    if (gpus_[gpu].alive && gpus_[gpu].active) {
      survivor_serving = true;
      break;
    }
  }
  if (!survivor_serving) return;
  publish(InspectorEventKind::kNodeSuspicionEscalated,
          platform_.node_gpu_begin(node), node, 0, kNoChannel,
          static_cast<std::uint32_t>(config_.suspicion_confirm_window_us));
  MG_TRACE("node%u suspicion escalated to node loss at t=%.1fus", node,
           events_.now());
  fail_node(node);
}

std::uint64_t RuntimeEngine::checkpoint_payload_bytes(TaskId task) const {
  // The snapshot drains the task's accumulated output state; inputs are
  // re-fetchable from the host and are not part of it. Tasks without a
  // declared output snapshot a progress descriptor only — the drain still
  // pays the bus latency.
  return graph_.task_output_bytes(task);
}

double RuntimeEngine::checkpoint_cost_us(TaskId task) const {
  // Bus time one snapshot drain occupies on the write-back channel.
  const double bytes = static_cast<double>(checkpoint_payload_bytes(task));
  return platform_.bus_latency_us +
         bytes / platform_.bus_bandwidth_bytes_per_s * 1e6;
}

void RuntimeEngine::initiate_checkpoint(GpuId gpu, TaskId task,
                                        double fraction) {
  GpuState& state = gpus_[gpu];
  // Stale boundary: the task was interrupted (GPU loss) before reaching
  // this snapshot point.
  if (!state.alive || state.running != task) return;
  writeback_bus_for(gpu)->request(gpu, task, checkpoint_payload_bytes(task),
                                  [this, gpu, task, fraction] {
                                    commit_checkpoint(gpu, task, fraction);
                                  });
}

void RuntimeEngine::commit_checkpoint(GpuId gpu, TaskId task, double fraction) {
  GpuState& state = gpus_[gpu];
  // The GPU died — or the task already finished — while the snapshot was
  // draining: nothing durable to record.
  if (!state.alive || state.running != task) return;
  MG_DCHECK(fraction > checkpoint_progress_[task] && fraction < 1.0);
  checkpoint_progress_[task] = fraction;
  const std::uint64_t payload = checkpoint_payload_bytes(task);
  ++fault_metrics_.checkpoints_taken;
  fault_metrics_.checkpoint_overhead_us += checkpoint_cost_us(task);
  fault_metrics_.checkpoint_payload_bytes += payload;
  publish(InspectorEventKind::kCheckpoint, gpu, task, payload, kNoChannel,
          static_cast<std::uint32_t>(fraction * 1e6));
}

void RuntimeEngine::maybe_replicate() {
  if (alive_gpus_ < 2) return;
  // Hottest data (most remaining planned uses) living on exactly one alive
  // GPU get a second copy in free memory of another device. A couple per
  // pump keeps the scan amortized across completion events.
  constexpr std::uint32_t kMaxPerPump = 2;
  std::uint32_t created = 0;
  // Candidates sorted by hotness (descending), then data id for determinism.
  std::vector<std::pair<std::uint32_t, DataId>> candidates;
  for (DataId data = 0; data < graph_.num_data(); ++data) {
    if (remaining_uses_[data] < 2) continue;
    std::uint32_t holders = 0;
    for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
      if (gpus_[gpu].alive && gpus_[gpu].memory->is_present_or_fetching(data)) {
        ++holders;
        if (holders > 1) break;
      }
    }
    if (holders == 1) candidates.emplace_back(remaining_uses_[data], data);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  for (const auto& [uses, data] : candidates) {
    // Destination: the alive non-holder with the most free memory (lowest
    // id on ties).
    GpuId dst = core::kInvalidGpu;
    std::uint64_t best_free = 0;
    for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
      GpuState& state = gpus_[gpu];
      if (!state.alive || state.memory->is_present_or_fetching(data)) continue;
      const std::uint64_t capacity = state.memory->capacity_bytes();
      const std::uint64_t used = state.memory->used_bytes();
      const std::uint64_t free = capacity > used ? capacity - used : 0;
      if (free < graph_.data_size(data)) continue;
      if (dst == core::kInvalidGpu || free > best_free) {
        dst = gpu;
        best_free = free;
      }
    }
    if (dst == core::kInvalidGpu) continue;
    if (!gpus_[dst].memory->fetch_replica(data)) continue;
    ++fault_metrics_.replicas_created;
    fault_metrics_.replica_bytes += graph_.data_size(data);
    publish(InspectorEventKind::kReplicaCreate, dst, data,
            graph_.data_size(data), kNoChannel, uses);
    if (++created >= kMaxPerPump) break;
  }
}

void RuntimeEngine::protect_sole_survivors(GpuId dead_gpu) {
  (void)dead_gpu;
  for (DataId data = 0; data < graph_.num_data(); ++data) {
    if (remaining_uses_[data] == 0) continue;
    if (protected_on_[data] != core::kInvalidGpu) continue;
    GpuId holder = core::kInvalidGpu;
    std::uint32_t holders = 0;
    for (GpuId gpu = 0; gpu < platform_.num_gpus; ++gpu) {
      if (gpus_[gpu].alive && gpus_[gpu].memory->is_present(data)) {
        holder = gpu;
        ++holders;
      }
    }
    // Only a proactive replica that became the last copy gets promoted:
    // regular residency stays governed by the eviction policy (the data can
    // be re-fetched from the host at the usual price).
    if (holders != 1 || !gpus_[holder].memory->is_replica(data)) continue;
    gpus_[holder].memory->protect(data);
    protected_on_[data] = holder;
    ++fault_metrics_.replicas_protected;
    publish(InspectorEventKind::kReplicaProtect, holder, data,
            graph_.data_size(data));
  }
}

void RuntimeEngine::release_protection(DataId data, bool uses_exhausted) {
  const GpuId holder = protected_on_[data];
  MG_DCHECK(holder != core::kInvalidGpu);
  protected_on_[data] = core::kInvalidGpu;
  if (!gpus_[holder].alive) return;
  // Publish before unprotect: dropping the pin can re-enter eviction (a
  // stalled fetch retries and takes the freshly unprotected data as its
  // victim), and observers must see the release ahead of that evict.
  publish(InspectorEventKind::kReplicaRelease, holder, data,
          graph_.data_size(data), kNoChannel, uses_exhausted ? 1 : 0);
  gpus_[holder].memory->unprotect(data);
}

std::uint64_t RuntimeEngine::min_safe_capacity() {
  if (min_safe_capacity_ == 0) {
    for (TaskId task = 0; task < graph_.num_tasks(); ++task) {
      std::uint64_t footprint = graph_.task_output_bytes(task);
      for (DataId data : graph_.inputs(task)) {
        footprint += graph_.data_size(data);
      }
      min_safe_capacity_ = std::max(min_safe_capacity_, footprint);
    }
    if (min_safe_capacity_ == 0) min_safe_capacity_ = 1;
  }
  return min_safe_capacity_;
}

}  // namespace mg::sim
