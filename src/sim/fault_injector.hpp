// Fault injector: the per-run stateful half of fault injection.
//
// Wraps one FaultPlan together with the RNG that drives its probabilistic
// transfer faults. The RuntimeEngine consults should_fail_transfer() at
// each wire delivery (draws happen in deterministic event order, so a
// (plan, workload, scheduler) triple always produces the same fault
// pattern) and reads the scripted GPU losses and capacity shocks straight
// from plan(). One injector serves one run; construct a fresh one per
// engine.
#pragma once

#include <cstdint>

#include "sim/fault_plan.hpp"
#include "util/rng.hpp"

namespace mg::sim {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  [[nodiscard]] bool has_transfer_faults() const {
    return !plan_.transfer_faults.empty();
  }

  /// Decides whether the delivery attempt (1-based `attempt`) of a transfer
  /// on `channel` (inspector numbering) at simulated time `now_us` fails.
  /// Once `attempt` exceeds every matching window's
  /// max_failures_per_transfer the answer is always false — capped retries
  /// guarantee each transfer eventually lands. The writeback channel is
  /// never failed.
  [[nodiscard]] bool should_fail_transfer(std::uint32_t channel,
                                          double now_us,
                                          std::uint32_t attempt);

 private:
  FaultPlan plan_;
  util::Rng rng_;
};

}  // namespace mg::sim
