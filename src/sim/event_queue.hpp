// Discrete-event simulation core.
//
// A single monotonically-advancing clock (microseconds) and a priority queue
// of (time, sequence, callback). Ties are broken by insertion sequence, so a
// run is fully deterministic regardless of heap implementation details.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace mg::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  void schedule_at(double time, Callback callback) {
    MG_DCHECK(time >= now_);
    heap_.push(Event{time, next_sequence_++, std::move(callback)});
  }

  void schedule_after(double delay, Callback callback) {
    MG_DCHECK(delay >= 0.0);
    schedule_at(now_ + delay, std::move(callback));
  }

  /// Pops and runs the earliest event. Returns false when the queue is empty.
  bool run_one() {
    if (heap_.empty()) return false;
    // Moving out of the priority queue top requires a const_cast; the element
    // is popped immediately after, so ordering is unaffected.
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    MG_DCHECK(event.time >= now_);
    now_ = event.time;
    ++processed_;
    event.callback();
    return true;
  }

  void run_until_empty() {
    while (run_one()) {
    }
  }

 private:
  struct Event {
    double time;
    std::uint64_t sequence;
    Callback callback;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace mg::sim
