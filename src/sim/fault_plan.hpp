// Fault plans — the declarative half of the fault-injection subsystem.
//
// A FaultPlan is a schema-versioned description of the faults one run must
// absorb: permanent GPU losses at fixed times, transient transfer-failure
// windows (seeded Bernoulli per delivery attempt, bounded per transfer so
// every fetch eventually lands), mid-run capacity shocks that shrink a
// GPU's usable memory, and network link faults (degraded bandwidth,
// stragglers, partitions) between nodes. Plans are either scripted (JSON, see
// docs/ROBUSTNESS.md for the schema) or drawn from a seed by
// make_random_fault_plan for the differential harness.
//
// The plan is pure data; sim::FaultInjector holds the per-run RNG state and
// the RuntimeEngine owns the recovery paths.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/platform.hpp"

namespace mg::sim {

struct FaultPlan {
  /// v3 adds link_faults (degraded/partitioned inter-node links); v2 added
  /// node_losses (whole-node failures on multi-node platforms); v1 and v2
  /// plans parse unchanged.
  static constexpr int kSchemaVersion = 3;
  static constexpr int kMinSchemaVersion = 1;

  /// Permanent device failure: at time_us the GPU stops executing, its
  /// residency is invalidated and its popped-but-unfinished tasks are
  /// re-dispatched to survivors.
  struct GpuLoss {
    double time_us = 0.0;
    core::GpuId gpu = 0;
  };

  /// Whole-node failure (multi-node platforms only): at time_us every GPU of
  /// the node dies at once and its host memory disappears. The engine
  /// recovers in a single pass — one node-level announcement to the
  /// scheduler, one combined orphan re-dispatch — and instantly re-homes the
  /// shards homed there (host data is modeled as durably backed).
  struct NodeLoss {
    double time_us = 0.0;
    core::NodeId node = 0;
  };

  /// Which wire channels a transfer-failure window covers. Write-backs are
  /// never failed: outputs leave on their own full-duplex channel and a
  /// lost write-back would need host-side recovery the model does not have.
  enum class TransferScope : std::uint8_t { kAll, kHostBus, kNvlink };

  /// Transient transfer failures: while active, each delivery attempt on a
  /// covered channel fails with `probability` — until a single transfer has
  /// failed `max_failures_per_transfer` times, after which it is delivered
  /// unconditionally (capped retries guarantee progress).
  struct TransferFault {
    double start_us = 0.0;
    double end_us = std::numeric_limits<double>::infinity();
    TransferScope scope = TransferScope::kAll;
    double probability = 0.0;
    std::uint32_t max_failures_per_transfer = 3;
  };

  /// Network link fault (multi-node platforms only): between nodes `src` and
  /// `dst` (symmetric — traffic in both directions is affected) during
  /// [start_us, end_us). A degradation multiplies every transfer's modeled
  /// duration by `bandwidth_factor` (>= 1) and adds `straggler_us` of fixed
  /// latency. A partition delivers nothing at all: transfers reaching the
  /// wire are parked and re-submitted when the window closes (end_us is the
  /// heal time; an omitted/infinite end_us never heals, so only the
  /// suspicion detector's escalation to a node loss can unblock the pair).
  /// Windows for the same pair must not overlap.
  struct LinkFault {
    core::NodeId src = 0;
    core::NodeId dst = 0;
    double start_us = 0.0;
    double end_us = std::numeric_limits<double>::infinity();
    double bandwidth_factor = 1.0;
    double straggler_us = 0.0;
    bool partition = false;
  };

  /// Memory-pressure shock: the GPU's capacity drops to capacity_bytes
  /// (clamped by the engine to the largest single-task footprint so a
  /// schedule still exists), emergency-evicting unpinned data.
  struct CapacityShock {
    double time_us = 0.0;
    core::GpuId gpu = 0;
    std::uint64_t capacity_bytes = 0;
  };

  /// Drives the Bernoulli draws of the transfer-failure windows.
  std::uint64_t seed = 0;

  std::vector<GpuLoss> gpu_losses;
  std::vector<NodeLoss> node_losses;
  std::vector<TransferFault> transfer_faults;
  std::vector<CapacityShock> capacity_shocks;
  std::vector<LinkFault> link_faults;

  [[nodiscard]] bool empty() const {
    return gpu_losses.empty() && node_losses.empty() &&
           transfer_faults.empty() && capacity_shocks.empty() &&
           link_faults.empty();
  }

  /// Checks the plan against a platform of `num_gpus` devices spread over
  /// `num_nodes` nodes: every GPU/node id in range, times finite and
  /// non-negative, probabilities in [0, 1], and at least one GPU surviving
  /// the combined losses. Returns the first problem, or an empty string when
  /// the plan is applicable.
  [[nodiscard]] std::string validate(std::uint32_t num_gpus,
                                     std::uint32_t num_nodes = 1) const;
};

/// Parses a FaultPlan from its JSON form. On failure returns nullopt and,
/// when `error` is non-null, stores a diagnostic; syntax errors name the
/// line/column (and byte offset) where parsing stopped.
[[nodiscard]] std::optional<FaultPlan> parse_fault_plan(
    std::string_view json_text, std::string* error = nullptr);

/// Reads and parses a fault-plan JSON file. Parse diagnostics are prefixed
/// with the file name.
[[nodiscard]] std::optional<FaultPlan> load_fault_plan_file(
    const std::string& path, std::string* error = nullptr);

/// Serializes the plan to its JSON form (round-trips through
/// parse_fault_plan).
[[nodiscard]] std::string fault_plan_to_json(const FaultPlan& plan);

/// Knobs for the seeded plan generator used by the differential harness and
/// the abl_faults ablation.
struct RandomFaultOptions {
  std::uint32_t num_gpus = 2;

  /// Nodes of the target platform; >= 2 enables link faults.
  std::uint32_t num_nodes = 1;

  /// Time window the faults are drawn from (losses and shocks land in the
  /// first 60% so recovery is actually exercised).
  double horizon_us = 1000.0;

  /// Pre-shock capacity; shocks request 30-80% of it. 0 disables shocks.
  std::uint64_t gpu_memory_bytes = 0;

  bool allow_gpu_loss = true;
  bool allow_transfer_faults = true;
  bool allow_capacity_shock = true;

  /// Draw one link fault (degradation or healing partition) per plan.
  /// Random partitions always heal within the horizon so runs terminate
  /// without relying on detector escalation.
  bool allow_link_faults = false;
};

/// Draws a plan from `seed`: at most num_gpus-1 losses (never the whole
/// platform), one transfer-flakiness window, one capacity shock, and (when
/// enabled on a multi-node platform) one link fault.
[[nodiscard]] FaultPlan make_random_fault_plan(std::uint64_t seed,
                                               const RandomFaultOptions& options);

}  // namespace mg::sim
