// Fault plans — the declarative half of the fault-injection subsystem.
//
// A FaultPlan is a schema-versioned description of the faults one run must
// absorb: permanent GPU losses at fixed times, transient transfer-failure
// windows (seeded Bernoulli per delivery attempt, bounded per transfer so
// every fetch eventually lands), and mid-run capacity shocks that shrink a
// GPU's usable memory. Plans are either scripted (JSON, see
// docs/ROBUSTNESS.md for the schema) or drawn from a seed by
// make_random_fault_plan for the differential harness.
//
// The plan is pure data; sim::FaultInjector holds the per-run RNG state and
// the RuntimeEngine owns the recovery paths.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/platform.hpp"

namespace mg::sim {

struct FaultPlan {
  /// v2 adds node_losses (whole-node failures on multi-node platforms);
  /// v1 plans parse unchanged.
  static constexpr int kSchemaVersion = 2;
  static constexpr int kMinSchemaVersion = 1;

  /// Permanent device failure: at time_us the GPU stops executing, its
  /// residency is invalidated and its popped-but-unfinished tasks are
  /// re-dispatched to survivors.
  struct GpuLoss {
    double time_us = 0.0;
    core::GpuId gpu = 0;
  };

  /// Whole-node failure (multi-node platforms only): at time_us every GPU of
  /// the node dies at once and its host memory disappears. The engine
  /// recovers in a single pass — one node-level announcement to the
  /// scheduler, one combined orphan re-dispatch — and instantly re-homes the
  /// shards homed there (host data is modeled as durably backed).
  struct NodeLoss {
    double time_us = 0.0;
    core::NodeId node = 0;
  };

  /// Which wire channels a transfer-failure window covers. Write-backs are
  /// never failed: outputs leave on their own full-duplex channel and a
  /// lost write-back would need host-side recovery the model does not have.
  enum class TransferScope : std::uint8_t { kAll, kHostBus, kNvlink };

  /// Transient transfer failures: while active, each delivery attempt on a
  /// covered channel fails with `probability` — until a single transfer has
  /// failed `max_failures_per_transfer` times, after which it is delivered
  /// unconditionally (capped retries guarantee progress).
  struct TransferFault {
    double start_us = 0.0;
    double end_us = std::numeric_limits<double>::infinity();
    TransferScope scope = TransferScope::kAll;
    double probability = 0.0;
    std::uint32_t max_failures_per_transfer = 3;
  };

  /// Memory-pressure shock: the GPU's capacity drops to capacity_bytes
  /// (clamped by the engine to the largest single-task footprint so a
  /// schedule still exists), emergency-evicting unpinned data.
  struct CapacityShock {
    double time_us = 0.0;
    core::GpuId gpu = 0;
    std::uint64_t capacity_bytes = 0;
  };

  /// Drives the Bernoulli draws of the transfer-failure windows.
  std::uint64_t seed = 0;

  std::vector<GpuLoss> gpu_losses;
  std::vector<NodeLoss> node_losses;
  std::vector<TransferFault> transfer_faults;
  std::vector<CapacityShock> capacity_shocks;

  [[nodiscard]] bool empty() const {
    return gpu_losses.empty() && node_losses.empty() &&
           transfer_faults.empty() && capacity_shocks.empty();
  }

  /// Checks the plan against a platform of `num_gpus` devices spread over
  /// `num_nodes` nodes: every GPU/node id in range, times finite and
  /// non-negative, probabilities in [0, 1], and at least one GPU surviving
  /// the combined losses. Returns the first problem, or an empty string when
  /// the plan is applicable.
  [[nodiscard]] std::string validate(std::uint32_t num_gpus,
                                     std::uint32_t num_nodes = 1) const;
};

/// Parses a FaultPlan from its JSON form. On failure returns nullopt and,
/// when `error` is non-null, stores a diagnostic; syntax errors name the
/// line/column (and byte offset) where parsing stopped.
[[nodiscard]] std::optional<FaultPlan> parse_fault_plan(
    std::string_view json_text, std::string* error = nullptr);

/// Reads and parses a fault-plan JSON file. Parse diagnostics are prefixed
/// with the file name.
[[nodiscard]] std::optional<FaultPlan> load_fault_plan_file(
    const std::string& path, std::string* error = nullptr);

/// Serializes the plan to its JSON form (round-trips through
/// parse_fault_plan).
[[nodiscard]] std::string fault_plan_to_json(const FaultPlan& plan);

/// Knobs for the seeded plan generator used by the differential harness and
/// the abl_faults ablation.
struct RandomFaultOptions {
  std::uint32_t num_gpus = 2;

  /// Time window the faults are drawn from (losses and shocks land in the
  /// first 60% so recovery is actually exercised).
  double horizon_us = 1000.0;

  /// Pre-shock capacity; shocks request 30-80% of it. 0 disables shocks.
  std::uint64_t gpu_memory_bytes = 0;

  bool allow_gpu_loss = true;
  bool allow_transfer_faults = true;
  bool allow_capacity_shock = true;
};

/// Draws a plan from `seed`: at most num_gpus-1 losses (never the whole
/// platform), one transfer-flakiness window, one capacity shock.
[[nodiscard]] FaultPlan make_random_fault_plan(std::uint64_t seed,
                                               const RandomFaultOptions& options);

}  // namespace mg::sim
