// Structured engine failures.
//
// The engine never aborts the process for conditions a harness can handle:
// a wedged simulation throws DeadlockError (carrying the same state dump the
// old hard abort printed), an exhausted watchdog budget throws
// BudgetExceededError (with an excerpt of the most recent events), and an
// unsatisfiable fault plan throws plain EngineError. Bench and example
// binaries catch EngineError at the top level and exit non-zero; the
// differential test harness catches it and reports the offending seed.
#pragma once

#include <stdexcept>
#include <string>

namespace mg::sim {

class EngineError : public std::runtime_error {
 public:
  explicit EngineError(const std::string& message)
      : std::runtime_error(message) {}
};

/// The event queue ran dry with tasks outstanding — a scheduler or eviction
/// policy bug. what() carries the engine-state dump (per-GPU pipelines,
/// residency, stalled fetches).
class DeadlockError final : public EngineError {
 public:
  using EngineError::EngineError;
};

/// A watchdog ceiling (EngineConfig::max_events / max_sim_time_us) was hit.
/// what() carries the exhausted budget and a recent-event excerpt.
class BudgetExceededError final : public EngineError {
 public:
  using EngineError::EngineError;
};

}  // namespace mg::sim
