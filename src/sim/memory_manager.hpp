// Per-GPU memory manager.
//
// Tracks residency of every data item on one GPU (Absent / Fetching /
// Present), accounts *committed* bytes (resident + in-flight reservations)
// against the capacity M, and makes room by querying the active
// core::EvictionPolicy. Pinned data (inputs of the running task, plus the
// inputs of the task currently being assembled at the head of the worker's
// pipeline) and in-flight transfers are never eviction candidates.
//
// A fetch that cannot make room is parked on a stalled list and retried when
// evictability can have changed (a pin released, a transfer completed).
// Demand fetches (head-of-pipeline) are retried before prefetches.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/eviction.hpp"
#include "core/ids.hpp"
#include "core/memory_view.hpp"
#include "core/task_graph.hpp"
#include "sim/transfer_router.hpp"

namespace mg::sim {

class MemoryManager final : public core::MemoryView {
 public:
  /// Engine-side notifications, fired after the manager's own state and the
  /// eviction policy have been updated.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void on_data_loaded(core::GpuId gpu, core::DataId data) = 0;
    virtual void on_data_evicted(core::GpuId gpu, core::DataId data) = 0;
    /// Fired when a transfer is committed (bytes reserved, request issued).
    /// `demand` distinguishes head-of-pipeline fetches from prefetches.
    virtual void on_fetch_started(core::GpuId gpu, core::DataId data,
                                  bool demand) {
      (void)gpu;
      (void)data;
      (void)demand;
    }
    /// Fired just before a proactive replica is dropped to make room (the
    /// regular on_data_evicted for the same data follows).
    virtual void on_replica_shed(core::GpuId gpu, core::DataId data) {
      (void)gpu;
      (void)data;
    }
    /// Fired when `data` was an eviction candidate (unpinned, unprotected)
    /// but the SLO eviction veto excluded it. The engine debounces this
    /// into at most one kEvictionVetoed event per protection window.
    virtual void on_eviction_vetoed(core::GpuId gpu, core::DataId data) {
      (void)gpu;
      (void)data;
    }
  };

  enum class Residency : std::uint8_t { kAbsent, kFetching, kPresent };

  MemoryManager(core::GpuId gpu, const core::TaskGraph& graph,
                std::uint64_t capacity_bytes, TransferRouter& router);

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  /// Both must be set before the first fetch; not owned.
  void set_eviction_policy(core::EvictionPolicy* policy) { policy_ = policy; }
  void set_observer(Observer* observer) { observer_ = observer; }

  /// SLO eviction veto: data for which the predicate returns true is
  /// excluded from every eviction-candidate scan (make_room and
  /// emergency_evict, replica shedding included) exactly like pinned or
  /// protected data. The engine installs one engine-global predicate over
  /// the in-flight high-tier jobs' inputs.
  void set_eviction_veto(std::function<bool(core::DataId)> veto) {
    eviction_veto_ = std::move(veto);
  }

  /// Call when a veto lifts (a protected job retired): parked fetches that
  /// previously found no victim may succeed now.
  void veto_lifted() {
    if (active_ && !stalled_.empty()) retry_stalled();
  }

  // MemoryView
  [[nodiscard]] bool is_present(core::DataId data) const override {
    return residency_[data] == Residency::kPresent;
  }
  [[nodiscard]] bool is_present_or_fetching(core::DataId data) const override {
    return residency_[data] != Residency::kAbsent;
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return capacity_;
  }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return committed_;
  }

  [[nodiscard]] Residency residency(core::DataId data) const {
    return residency_[data];
  }

  /// Requests `data` on this GPU. No-op if already resident or in flight
  /// (but a demand fetch promotes a still-queued low-priority transfer).
  /// `demand` marks head-of-pipeline fetches that take retry priority.
  void fetch(core::DataId data, bool demand);

  /// Opportunistic prefetch (push-time hint): starts a low-priority
  /// transfer. By default hints never evict and never stall — they only
  /// proceed into free space. With `may_evict` (StarPU's eager prefetch
  /// allocation) the hint makes room like a normal fetch, which is exactly
  /// the prefetch/eviction conflict of the paper's DMDAR discussion.
  /// Returns false when there is no room (the caller should retry when
  /// memory is freed), true otherwise (including when the data is already
  /// resident or in flight).
  bool fetch_hint(core::DataId data, bool may_evict = false);

  /// Proactive fault-tolerance replica: like fetch_hint (low priority, free
  /// space only, never evicts, never stalls) but the copy is tagged as a
  /// replica — it is shed *before* the eviction policy is consulted when
  /// room is needed, and it counts against M like any resident data. The
  /// tag clears the moment a regular fetch/hint wants the data here.
  /// Returns false when there is no room right now.
  bool fetch_replica(core::DataId data);

  [[nodiscard]] bool is_replica(core::DataId data) const {
    return replica_[data] != 0;
  }

  /// Marks `data` as the sole surviving copy on the platform: it is removed
  /// from every eviction-candidate set (make_room, emergency_evict) until
  /// unprotect(). Protection implies the copy is no longer a shedable
  /// replica.
  void protect(core::DataId data);
  void unprotect(core::DataId data);
  [[nodiscard]] bool is_protected(core::DataId data) const {
    return protected_[data] != 0;
  }

  [[nodiscard]] std::uint64_t replicas_shed() const { return replicas_shed_; }

  void pin(core::DataId data);
  void unpin(core::DataId data);
  [[nodiscard]] std::uint32_t pin_count(core::DataId data) const {
    return pins_[data];
  }

  /// Forwards a task-start use of `data` to the eviction policy.
  void touch(core::DataId data);

  /// Reserves `bytes` of task-private scratch (output buffers), evicting if
  /// needed. Returns false when no room can be made right now; the caller
  /// retries on its own progress events.
  [[nodiscard]] bool try_reserve_scratch(std::uint64_t bytes);

  /// Releases scratch previously reserved (e.g. after write-back).
  void release_scratch(std::uint64_t bytes);

  /// Currently resident data, in load order (eviction candidate universe).
  [[nodiscard]] const std::vector<core::DataId>& resident() const {
    return resident_;
  }

  /// Changes the capacity mid-run (fault injection: memory-pressure shock).
  /// Shrinking does not evict by itself — call emergency_evict() afterwards;
  /// until committed bytes drain below the new capacity, new fetches stall.
  /// Growing retries parked fetches that may fit now.
  void set_capacity(std::uint64_t capacity_bytes) {
    const bool grew = capacity_bytes > capacity_;
    capacity_ = capacity_bytes;
    if (grew && !stalled_.empty()) retry_stalled();
  }

  /// Evicts unpinned resident data until committed bytes fit the capacity
  /// again (or no candidate is left — pinned data and in-flight reservations
  /// are untouchable and drain on their own). Returns the eviction count.
  std::uint32_t emergency_evict();

  /// Permanently shuts the manager down (GPU loss): wipes all residency,
  /// pins and stalled fetches. Every subsequent call is a no-op, so late
  /// wire deliveries towards the dead GPU land harmlessly.
  void deactivate();

  [[nodiscard]] bool active() const { return active_; }

  /// Drops parked (stalled) fetches whose tasks were pulled back out of the
  /// pipeline (planned node drain); unlike deactivate() the manager stays
  /// fully usable.
  void cancel_stalled() { stalled_.clear(); }

  /// True when nothing is outstanding: no in-flight fetch, no parked fetch
  /// and no scratch reservation — every committed byte is resident data.
  /// The quiescence gate of a planned node drain.
  [[nodiscard]] bool quiescent() const;

  /// Silently drops every resident copy (planned node drain): residency,
  /// pins, replica/protection tags all clear, the eviction policy is told,
  /// but no observer eviction fires — the drain event itself marks the wipe
  /// for inspectors. Requires quiescent(); the manager stays active so the
  /// node can later rejoin.
  void wipe_resident();

  [[nodiscard]] std::size_t stalled_fetches() const { return stalled_.size(); }
  [[nodiscard]] core::GpuId gpu() const { return gpu_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct StalledFetch {
    core::DataId data;
    bool demand;
  };

  [[nodiscard]] bool vetoed(core::DataId data) const {
    return eviction_veto_ && eviction_veto_(data);
  }

  /// Evicts until `bytes` fit; false if no victim can be found now.
  bool make_room(std::uint64_t bytes);
  void evict(core::DataId victim);
  void start_transfer(core::DataId data, bool demand,
                      TransferPriority priority = TransferPriority::kHigh);
  void on_transfer_complete(core::DataId data);
  void retry_stalled();
  void remove_resident(core::DataId data);

  core::GpuId gpu_;
  const core::TaskGraph& graph_;
  std::uint64_t capacity_;
  TransferRouter& router_;
  core::EvictionPolicy* policy_ = nullptr;
  Observer* observer_ = nullptr;
  std::function<bool(core::DataId)> eviction_veto_;

  std::vector<Residency> residency_;
  std::vector<std::uint32_t> pins_;
  std::vector<std::uint32_t> resident_pos_;  // index into resident_, or npos
  std::vector<core::DataId> resident_;
  std::vector<std::uint8_t> replica_;    // shed-first proactive copies
  std::vector<std::uint8_t> protected_;  // sole-surviving copies, unevictable
  std::deque<StalledFetch> stalled_;
  std::uint64_t committed_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t replicas_shed_ = 0;
  bool in_retry_ = false;
  bool active_ = true;

  static constexpr std::uint32_t kNoPos = 0xffffffffu;
};

}  // namespace mg::sim
