// Online invariant checker — validates the Section-III execution model as
// the simulation runs instead of post-hoc.
//
// One instance holds the single authoritative definition of the model's
// invariants; analysis::validate_trace replays a recorded sim::Trace
// through the same instance, so the online and post-hoc paths can never
// disagree on what "valid" means. Checked continuously:
//
//   * committed GPU memory (resident + in-flight + scratch) never exceeds M,
//     and resident bytes alone never exceed M (the only form a bare trace
//     can express);
//   * every task starts exactly once, on an idle GPU, with every input
//     resident; every started task ends;
//   * evictions only remove resident, unpinned data that no running task is
//     reading;
//   * each wire channel (host bus, write-back channel, NVLink egress ports)
//     carries at most one transfer at a time — the serial-link capacity the
//     bus model promises;
//   * scheduler notifications mirror engine state: notify_data_loaded only
//     for resident data, notify_data_evicted only for absent data,
//     notify_task_complete exactly once per task, after its end, on the GPU
//     that ran it;
//   * the degraded execution model under fault injection: no activity on a
//     dead GPU (no fetches, loads, evictions, task starts or
//     notifications), tasks reclaimed from a dead GPU were never finished
//     and re-run exactly once on a survivor, capacity shocks re-bound all
//     later commitments, and transfer retries only re-attempt transfers
//     that are still in flight (no double delivery);
//   * the streaming (serving) model: once any job/release event is seen, no
//     task starts before its kTaskReleased, jobs arrive / shed / complete
//     consistently (shed only before arrival, complete only after), and
//     cancelled tasks of shed jobs never run — nor are they required to by
//     the end-of-run exactly-once check;
//   * the dependency model (DAG workloads): no task starts before every
//     predecessor edge was released, released edges exist in the graph and
//     their predecessor finished (or was cancelled with its shed job), a
//     task is enabled only when its pending-predecessor count hits zero,
//     data versions are monotone (a writer never starts before every
//     earlier writer of the same data finished), an un-retirement names a
//     fully-retired task on a dead GPU and re-arms its released edges, and
//     at run end every edge was released exactly once more than it was
//     re-armed (released-edge conservation); acyclicity is enforced at
//     load by TaskGraph::Builder::build;
//   * planned topology change (elastic autoscaling): a drain fence starts
//     on an active node and no task starts on its GPUs until the node is
//     drained and later rejoined, drained tasks were buffered-but-unstarted
//     on a live GPU of a draining node and re-run elsewhere, a node retires
//     only with idle GPUs, no in-flight fetches and no outstanding host
//     fetch, a join warms only a non-serving node and warm fills land only
//     while warming, a whole-node loss kills all the node's GPUs at once,
//     and migration bytes are conserved (every migration started completes,
//     and network deliveries equal host-cache fills plus migration and
//     warm-fill payloads);
//   * occupancy-aware GPU sharing (src/occupancy): every task start on a
//     shared GPU is preceded by its admission, an admission onto a busy GPU
//     never lifts the active warp load above the configured budget (an idle
//     GPU always admits), a rejection only holds back a task that would
//     actually cross the budget, the engine's active-warp tally agrees with
//     the checker's at every admission and rejection, and at run end no
//     sharing set still holds a task;
//   * network faults (link windows, hedged fetches, suspicion): no new
//     transfer starts on a network channel while the (src, dst) link is
//     partitioned (transfers already on the wire drain), link windows open
//     and close in matched pairs of the same kind, a fetch timeout names an
//     in-flight host fetch and is eventually answered by a hedge, a
//     delivery or the destination node's loss (none outstanding at run
//     end), wasted duplicate deliveries only follow a fetch that was
//     already served, suspicion is raised at most once per episode and
//     cleared/escalated only while raised (a node loss terminates the
//     episode), and the network byte conservation above extends by the
//     wasted duplicate payloads;
//   * proactive fault tolerance: checkpoint progress per task is
//     non-decreasing and committed only while the task runs, restored
//     progress never exceeds the last checkpointed progress, a protected
//     sole-surviving replica is never evicted or shed (protection is lifted
//     by kReplicaRelease or the holder's own loss), and a replay-divergence
//     report names a dead GPU at most once;
//   * time is monotone and every id is in range.
//
// On violation the checker either aborts immediately with the offending
// event plus a log excerpt of the events leading up to it (fail_fast, the
// default — a plausible-but-wrong trace never survives to a figure), or
// records the first violation for inspection via report() (tests).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/inspector.hpp"

namespace mg::sim {

class InvariantChecker final : public Inspector {
 public:
  struct Options {
    /// Abort with the diagnostic on the first violation. When false, the
    /// first violation is recorded and later events are ignored.
    bool fail_fast = true;

    /// The event stream carries fetch/scratch/transfer/notify events
    /// (online engine feed). Replayed bare traces (analysis::validate_trace)
    /// set false: commitment accounting then tracks resident bytes only and
    /// the notify/transfer completeness checks are skipped.
    bool online = true;

    /// Number of recent events kept for the diagnostic excerpt.
    std::size_t log_window = 24;
  };

  struct Report {
    bool ok = true;
    std::string error;    ///< first violation, empty when ok
    std::string excerpt;  ///< formatted recent-event log at the violation
  };

  InvariantChecker();
  explicit InvariantChecker(Options options);

  // Inspector
  void on_run_begin(const core::TaskGraph& graph,
                    const core::Platform& platform,
                    std::string_view scheduler_name) override;
  void on_event(const InspectorEvent& event) override;
  void on_run_end(double makespan_us) override;

  /// End-of-run completeness checks (exactly-once execution, no task left
  /// running, no transfer left on a wire, every completion notified).
  /// Called by on_run_end; call directly when replaying a bare trace.
  void finish();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const Report& report() const { return report_; }

  /// Number of events checked so far (diagnostic).
  [[nodiscard]] std::uint64_t events_checked() const { return events_; }

 private:
  struct GpuState {
    std::vector<std::uint8_t> resident;
    std::vector<std::uint8_t> in_flight;
    std::uint64_t resident_bytes = 0;
    std::uint64_t committed_bytes = 0;  ///< resident + in-flight + scratch
    std::uint64_t scratch_bytes = 0;
    /// Current capacity: gpu_memory_bytes until a kCapacityShock moves it.
    std::uint64_t capacity_bytes = 0;
    std::int64_t running = -1;
    bool alive = true;  ///< false after kGpuLost
    /// Protected sole-surviving replicas (kReplicaProtect .. kReplicaRelease).
    std::vector<std::uint8_t> prot;
    /// Sharing-mode running set (occupancy armed): `running` stays -1 and
    /// co-runners are tracked here with their summed warp load.
    std::vector<std::uint32_t> occ_running;
    std::uint32_t occ_active_warps = 0;
  };

  void fail(const InspectorEvent& event, const char* what);
  void fail_text(const std::string& message);
  void remember(const InspectorEvent& event);
  [[nodiscard]] std::string render_excerpt() const;

  Options options_;
  const core::TaskGraph* graph_ = nullptr;
  core::Platform platform_;

  std::vector<GpuState> gpus_;
  std::vector<std::uint8_t> started_;
  std::vector<std::uint8_t> ended_;
  std::vector<std::uint8_t> complete_notified_;
  std::vector<core::GpuId> ran_on_;
  /// Streaming model state. `streaming_seen_` arms the release gating after
  /// the first job/release event; job_state_ grows on demand (0 = unseen,
  /// 1 = released, 2 = shed, 3 = retired).
  bool streaming_seen_ = false;
  std::vector<std::uint8_t> released_;
  std::vector<std::uint8_t> cancelled_;
  std::vector<std::uint8_t> job_state_;
  /// SLO eviction-protection refcount per data (kTierProtect/kTierUnprotect
  /// are engine-global, so one counter vector covers every GPU): protected
  /// data must never be evicted or replica-shed anywhere.
  std::vector<std::uint32_t> slo_protected_;
  /// Dependency model state (sized only when the graph carries edges):
  /// per-task unreleased-predecessor counts and per-task released-out-edge
  /// counts (reset by kTaskUnretired, which re-arms the edges).
  std::vector<std::uint32_t> dep_pending_;
  std::vector<std::uint32_t> dep_release_count_;
  /// Last checkpointed progress per task, in ppm of the task's compute.
  std::vector<std::uint32_t> checkpoint_ppm_;
  /// GPUs whose recorded replay order already reported a divergence.
  std::vector<std::uint8_t> divergence_seen_;
  /// Active transfers per wire channel (index = channel id).
  std::vector<std::uint32_t> wire_active_;
  /// Cluster model state (sized only when the platform spans nodes):
  /// outstanding network fetches and the host-cache mirror per (node, data),
  /// plus the byte-conservation counters — every byte delivered on a
  /// network channel must land in exactly one host-cache fill.
  std::vector<std::vector<std::uint32_t>> node_fetching_;
  std::vector<std::vector<std::uint8_t>> node_cached_;
  std::uint64_t net_bytes_delivered_ = 0;
  std::uint64_t host_fill_bytes_ = 0;
  /// Topology-change state per node (sized with node_fetching_):
  /// kActive until a drain fence / join / loss moves it.
  enum class NodeStatus : std::uint8_t {
    kActive,
    kDraining,
    kInactive,
    kWarming,
    kLost,
  };
  std::vector<NodeStatus> node_status_;
  /// Migration byte conservation: every kDataMigrateStart must complete in
  /// a kDataMigrated of the same size; migration and warm-fill payloads
  /// ride the network channels alongside host-cache fills.
  std::uint64_t migrate_start_bytes_ = 0;
  std::uint64_t migrate_done_bytes_ = 0;
  std::uint64_t warm_fill_bytes_ = 0;
  /// Network-fault state (sized with node_fetching_): per-pair link window
  /// kind (0 = none, 1 = degraded, 2 = partitioned) indexed src*nodes+dst
  /// (both orders set), outstanding fetch timeouts per (dest node, data)
  /// awaiting a hedge/delivery/node loss, the suspicion flag per node, and
  /// the wasted duplicate-delivery payload for byte conservation.
  std::vector<std::uint8_t> link_state_;
  std::vector<std::vector<std::uint8_t>> timeout_outstanding_;
  std::vector<std::uint8_t> suspected_;
  std::uint64_t hedge_wasted_bytes_ = 0;
  /// Occupancy-sharing state, armed by kOccupancyConfig: the warp budget,
  /// each task's clamped footprint recorded at admission, and the
  /// admitted-but-not-yet-started flag consumed by the matching kTaskStart.
  bool occ_armed_ = false;
  std::uint32_t occ_budget_warps_ = 0;
  std::vector<std::uint32_t> occ_task_warps_;
  std::vector<std::uint8_t> occ_admitted_;
  double last_time_us_ = 0.0;
  std::uint64_t events_ = 0;

  std::deque<std::string> recent_;
  bool ok_ = true;
  Report report_;
};

}  // namespace mg::sim
