// Metrics / trace collector — the observability half of the inspector
// subsystem.
//
// A RunReportCollector attached to a RuntimeEngine aggregates, as the run
// progresses: per-GPU work and load-balance, wire occupancy per channel
// (host bus, write-back channel, NVLink egress ports) including a bucketed
// occupancy-over-time series, eviction counts grouped by the eviction
// policy driving each GPU, demand-vs-prefetch load counts, and — when a
// fault plan is active — fault/recovery statistics (GPU losses, capacity
// shocks, reclaimed tasks, transfer retries, recovery latencies). It also
// mirrors the engine's execution Trace so a Chrome-tracing timeline can be
// exported without separately enabling EngineConfig::record_trace.
//
// The report serializes to JSON (schema documented in
// docs/OBSERVABILITY.md, schema_version 6); bench/figure_harness exposes it
// behind --run-report / --chrome-trace on every figure and ablation binary.
// Streamed (serving) runs add a "serving" section — filled in by
// serve::ServeEngine from its JobTracker — and the faults section attributes
// each reclaimed task to the survivor that re-ran it. Schema 4 adds the
// proactive fault-tolerance subsections: faults.checkpoints (progress
// snapshots and the compute they saved), faults.replicas (replication-aware
// placement) and faults.replay_divergence (fixed-order replay degradation).
// Schema 5 adds the "cluster" section for multi-node platforms: per-node
// task loads and PCI traffic, host-cache fill/evict counts, inter-node
// network transfers/bytes and the cross-node steal count (patched in by the
// hierarchical scheduling driver). The section stays zeroed — and the rest
// of the report byte-identical to a schema-4 run — when num_nodes == 1.
// Schema 6 adds the "dependencies" section for DAG workloads: edge counts
// by kind (explicit / RAW / WAR / WAW), the critical-path length, the
// maximum ready-frontier width observed during the run, and release/enable
// event totals. The section stays zeroed — and the rest of the report
// byte-identical to a schema-5 run — when the graph carries no edges.
// Schema 7 adds the "autoscaling" section for elastic topology change
// (src/cluster/autoscaler): scale events, node drains/joins/losses, tasks
// drained, migration and warm-fill traffic, and drain latency. The section
// stays zeroed — and the rest of the report byte-identical to a schema-6
// run — when the topology never changes.
// Schema 8 adds the "occupancy" section for occupancy-aware GPU sharing
// (src/occupancy): the warp budget and admission threshold, per-GPU peak
// and time-weighted mean warp occupancy, admissions/rejections and co-run
// pair counts. The section stays zeroed — and the rest of the report
// byte-identical to a schema-7 run — when sharing is off (threshold 0).
// Schema 9 adds the "network_faults" section for link fault injection and
// the hedged-fetch / suspicion machinery (sim/fault_plan link_faults,
// EngineConfig::fetch_timeout_factor): degradation/partition/heal counts,
// remote-fetch timeouts and hedges (with the wasted duplicate-delivery
// bytes), and the failure detector's suspect/clear/escalate totals. The
// section stays zeroed — and the rest of the report byte-identical to a
// schema-8 run — when no link fault fires and fetch timeouts are off.
// Schema 10 adds the "slo" section for SLO-tiered serving and cross-job
// super-task batching (slo::SloConfig via serve::ServeConfig): fused-job /
// super-task-launch / unfuse counts, eviction-veto statistics, and per-tier
// latency percentiles patched in by the serving layer. The section stays
// zeroed — and the rest of the report byte-identical to a schema-9 run —
// when the SLO layer is disabled.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/inspector.hpp"
#include "sim/trace.hpp"

namespace mg::sim {

struct RunReport {
  static constexpr int kSchemaVersion = 10;

  std::string scheduler;
  std::string context;  ///< free-form label (figure id, workload, ...)

  // Platform echo.
  std::uint32_t num_gpus = 0;
  std::uint64_t gpu_memory_bytes = 0;
  double bus_bandwidth_bytes_per_s = 0.0;
  bool nvlink = false;

  // Whole-run aggregates.
  double makespan_us = 0.0;
  double total_flops = 0.0;
  double achieved_gflops = 0.0;

  struct Gpu {
    std::uint64_t tasks_executed = 0;
    double busy_us = 0.0;
    std::uint64_t loads = 0;            ///< host-bus loads landed
    std::uint64_t peer_loads = 0;       ///< NVLink loads landed
    std::uint64_t bytes_loaded = 0;     ///< host + peer bytes landed
    std::uint64_t evictions = 0;
    std::uint64_t peak_committed_bytes = 0;  ///< resident + in-flight + scratch
    std::string eviction_policy;        ///< policy driving this GPU
  };
  std::vector<Gpu> per_gpu;

  struct LoadBalance {
    std::uint64_t max_tasks = 0;
    std::uint64_t min_tasks = 0;
    double mean_tasks = 0.0;
    /// max busy time / mean busy time; 1.0 = perfectly balanced.
    double busy_imbalance = 0.0;
  };
  LoadBalance load_balance;

  struct Channel {
    std::string name;
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    double busy_us = 0.0;
    double occupancy = 0.0;  ///< busy_us / makespan_us
    /// Fraction of each of the evenly-sized time buckets the wire was busy.
    std::vector<double> occupancy_buckets;
  };
  std::vector<Channel> channels;

  struct Prefetch {
    std::uint64_t demand_fetches = 0;
    std::uint64_t prefetch_fetches = 0;  ///< pipeline prefetches + hints
    /// prefetch_fetches / (demand + prefetch): the share of loads issued
    /// ahead of the demand that would otherwise have stalled the GPU.
    double hit_rate = 0.0;
  };
  Prefetch prefetch;

  /// Evictions grouped by the policy that chose them (e.g. "LRU",
  /// "DARTS+LUF").
  std::map<std::string, std::uint64_t> evictions_by_policy;

  /// Fault injection and recovery (sim/fault_plan.hpp). All zero / empty
  /// when the run had no fault plan.
  struct Faults {
    std::uint32_t gpu_losses = 0;
    std::uint32_t capacity_shocks = 0;
    std::uint64_t tasks_reclaimed = 0;     ///< orphans pulled off dead GPUs
    std::uint64_t transfer_retries = 0;    ///< failed delivery attempts
    std::uint64_t wasted_transfer_bytes = 0;  ///< bytes re-sent by retries
    /// One entry per GPU loss: simulated time from the loss until the last
    /// orphaned task finished on a surviving GPU (0 when nothing was
    /// orphaned).
    std::vector<double> recovery_latency_us;
    double max_recovery_latency_us = 0.0;
    /// Recovery attribution: which survivor re-ran each reclaimed task
    /// (whether the scheduler adopted the orphans or the engine requeued
    /// them). One entry per reclaimed task that re-ran.
    struct Adoption {
      std::uint32_t task = 0;
      std::uint32_t from_gpu = 0;  ///< the GPU that died holding the task
      std::uint32_t to_gpu = 0;    ///< the survivor that absorbed it
    };
    std::vector<Adoption> adoptions;

    /// Task-progress checkpointing (schema 4). Zeroed when the policy is
    /// off.
    struct Checkpoints {
      std::uint64_t taken = 0;           ///< snapshots committed
      std::uint64_t payload_bytes = 0;   ///< cumulated snapshot bytes
      double overhead_us = 0.0;          ///< write-back bus time of the drains
      std::uint64_t tasks_restored = 0;  ///< re-runs resumed mid-task
      double compute_saved_us = 0.0;     ///< compute skipped by restores
    };
    Checkpoints checkpoints;

    /// Replication-aware placement (schema 4). Zeroed when replication is
    /// inactive.
    struct Replicas {
      std::uint64_t created = 0;   ///< proactive replica fetches issued
      std::uint64_t bytes = 0;     ///< bytes of created replicas
      std::uint64_t shed = 0;      ///< replicas dropped under pressure
      std::uint64_t protected_sole_survivor = 0;  ///< promotions after a loss
      std::uint64_t released = 0;  ///< protections lifted again
      /// Host-bus loads landed after the first GPU loss — the traffic
      /// replication exists to avoid.
      std::uint64_t post_loss_host_loads = 0;
    };
    Replicas replicas;

    /// Fixed-order replay degradation (schema 4): one entry per lost GPU
    /// whose recorded order was rewired onto survivors.
    struct ReplayDivergenceEntry {
      std::uint32_t gpu = 0;               ///< the GPU whose order broke
      std::uint32_t divergence_index = 0;  ///< first unexecuted recorded slot
      std::uint32_t reassigned_tasks = 0;  ///< suffix tasks work-stolen
    };
    std::vector<ReplayDivergenceEntry> replay_divergence;
  };
  Faults faults;

  /// Streamed (serving) runs: jobs, latency percentiles and cross-job data
  /// reuse. Filled by serve::ServeEngine; `enabled` stays false for batch
  /// runs (the section still serializes, zeroed).
  struct Serving {
    bool enabled = false;
    std::string arrival;  ///< "poisson" / "closed-loop" / ""
    std::uint32_t jobs_submitted = 0;
    std::uint32_t jobs_completed = 0;
    std::uint32_t jobs_shed = 0;
    double throughput_jobs_per_s = 0.0;  ///< completed / makespan
    double latency_p50_us = 0.0;  ///< submit-to-finish, nearest-rank
    double latency_p95_us = 0.0;
    double latency_p99_us = 0.0;
    double latency_mean_us = 0.0;
    double latency_max_us = 0.0;
    std::uint32_t deadline_hits = 0;
    std::uint32_t deadline_misses = 0;
    double deadline_miss_rate = 0.0;  ///< misses / jobs with a deadline
    /// Bytes a job's tasks consumed from data already resident before the
    /// job arrived (left there by earlier jobs) — counted once per
    /// (job, data, gpu) — vs. total input bytes touched.
    std::uint64_t cross_job_reuse_bytes = 0;
    std::uint64_t cross_job_reuse_hits = 0;
    std::uint32_t peak_jobs_in_flight = 0;
    std::uint32_t peak_queue_depth = 0;  ///< admission queue high-water mark
    /// Admission queue depth over time: (time_us, depth) at every change.
    std::vector<std::pair<double, std::uint32_t>> queue_depth_timeline;
  };
  Serving serving;

  /// Multi-node cluster runs (schema 5): per-node load split, host-cache
  /// behaviour and inter-node network traffic. `enabled` stays false — and
  /// every field zeroed — on single-node platforms.
  struct Cluster {
    bool enabled = false;
    std::uint32_t num_nodes = 1;
    struct Node {
      std::uint32_t gpu_begin = 0;  ///< first GPU of the node's block
      std::uint32_t gpu_end = 0;    ///< one past the last GPU
      std::uint64_t tasks_executed = 0;
      double busy_us = 0.0;
      std::uint64_t loads = 0;         ///< node-PCI loads landed on its GPUs
      std::uint64_t bytes_loaded = 0;  ///< PCI + peer bytes landed on them
      /// Network fetches initiated because the node needed remote data.
      std::uint64_t remote_fetches = 0;
      std::uint64_t host_cache_fills = 0;
      std::uint64_t host_cache_evictions = 0;
    };
    std::vector<Node> per_node;
    std::uint64_t network_transfers = 0;  ///< inter-node deliveries
    std::uint64_t network_bytes = 0;      ///< bytes they carried
    std::uint64_t host_cache_fills = 0;
    std::uint64_t host_cache_evictions = 0;
    /// Cross-node work steals — patched in by the hierarchical scheduling
    /// driver (cluster::HierarchicalScheduler::steal_count), mirroring how
    /// ServeEngine fills the serving section.
    std::uint64_t steals = 0;
  };
  Cluster cluster;

  /// DAG workloads (schema 6): dependency shape and release dynamics.
  /// `enabled` stays false — and every field zeroed — when the task graph
  /// carries no dependency edges.
  struct Dependencies {
    bool enabled = false;
    std::uint64_t explicit_edges = 0;  ///< add_dependency edges
    std::uint64_t raw_edges = 0;       ///< read-after-write (derived)
    std::uint64_t war_edges = 0;       ///< write-after-read (derived)
    std::uint64_t waw_edges = 0;       ///< write-after-write (derived)
    std::uint64_t total_edges = 0;     ///< unique (pred, succ) pairs
    /// Longest chain of dependent tasks (in tasks, not edges): a lower
    /// bound on the number of sequential execution rounds.
    std::uint32_t critical_path_length = 0;
    /// High-water mark of the ready frontier: tasks enabled (all
    /// predecessors retired) but not yet started.
    std::uint32_t max_ready_width = 0;
    std::uint64_t tasks_enabled = 0;   ///< kTaskEnabled events observed
    /// kEdgeReleased events observed; re-releases after an un-retirement
    /// count again, so this can exceed total_edges on faulty runs.
    std::uint64_t edges_released = 0;
    std::uint64_t tasks_unretired = 0; ///< retirements rolled back by a loss
  };
  Dependencies dependencies;

  /// Elastic autoscaling (schema 7): planned node drains/joins and
  /// unplanned whole-node losses. `enabled` stays false — and every field
  /// zeroed — when the topology never changes. scale_out/scale_in count
  /// the autoscaler policy's decisions (patched in by serve::ServeEngine);
  /// the remaining fields aggregate the engine's topology events.
  struct Autoscaling {
    bool enabled = false;
    std::uint32_t scale_out_events = 0;  ///< policy decisions to add a node
    std::uint32_t scale_in_events = 0;   ///< policy decisions to drain one
    std::uint32_t nodes_drained = 0;     ///< planned drains completed
    std::uint32_t nodes_joined = 0;      ///< warm-ups completed
    std::uint32_t node_losses = 0;       ///< unplanned whole-node failures
    std::uint64_t tasks_drained = 0;     ///< buffered tasks pulled back
    std::uint64_t migrations = 0;        ///< sole-copy datas re-homed
    std::uint64_t migrated_bytes = 0;
    std::uint64_t warm_fills = 0;        ///< host-cache pre-stages on join
    std::uint64_t warm_fill_bytes = 0;
    double drain_latency_total_us = 0.0; ///< fence-to-retire, summed
    double drain_latency_max_us = 0.0;
  };
  Autoscaling autoscaling;

  /// Occupancy-aware GPU sharing (schema 8): warp-budget admission and
  /// co-scheduling statistics. `enabled` stays false — and every field
  /// zeroed — when EngineConfig::occupancy_threshold is 0.
  struct Occupancy {
    bool enabled = false;
    double threshold = 0.0;          ///< admission threshold (fraction)
    std::uint32_t total_warps = 0;   ///< device warp budget (SMs x warps/SM)
    std::uint32_t budget_warps = 0;  ///< largest admissible active load
    struct Gpu {
      std::uint32_t peak_warps = 0;  ///< high-water active-warp mark
      double mean_occupancy = 0.0;   ///< time-weighted active/total warps
    };
    std::vector<Gpu> per_gpu;
    std::uint64_t admissions = 0;    ///< tasks admitted into sharing sets
    std::uint64_t rejections = 0;    ///< head tasks held back at the budget
    /// Concurrent (already-running, newly-admitted) pairs — each admission
    /// onto a busy GPU contributes its current co-runner count.
    std::uint64_t co_run_pairs = 0;
  };
  Occupancy occupancy;

  /// Network fault injection and recovery (schema 9): link windows applied
  /// by the injector, remote-fetch timeouts and the hedges they triggered,
  /// and the suspicion-based failure detector's verdicts. `enabled` stays
  /// false — and every field zeroed — when the run saw no link fault and no
  /// fetch timeout was armed.
  struct NetworkFaults {
    bool enabled = false;
    std::uint32_t link_degradations = 0;  ///< bandwidth/straggler windows
    std::uint32_t link_partitions = 0;    ///< full-partition windows opened
    std::uint32_t link_heals = 0;         ///< windows that closed (restored)
    std::uint64_t fetch_timeouts = 0;     ///< remote-fetch deadlines expired
    std::uint64_t hedged_fetches = 0;     ///< alternate-source fetches issued
    std::uint64_t hedges_wasted = 0;      ///< duplicate deliveries discarded
    std::uint64_t hedge_wasted_bytes = 0; ///< bytes those duplicates carried
    std::uint32_t nodes_suspected = 0;    ///< suspicion raised
    std::uint32_t suspicions_cleared = 0; ///< recovered by a later delivery
    std::uint32_t suspicions_escalated = 0;  ///< confirmed -> node loss
  };
  NetworkFaults network_faults;

  /// SLO tiers and cross-job batching (schema 10): super-task fusion and
  /// eviction-protection statistics, plus per-tier latency percentiles the
  /// serving layer patches in after the run (like the serving section).
  /// `enabled` stays false — and every field zeroed — when the SLO layer
  /// is off.
  struct Slo {
    bool enabled = false;
    std::uint32_t tiers = 0;              ///< tier count (0 = untiered)
    std::uint64_t jobs_fused = 0;         ///< member jobs fused into leaders
    std::uint64_t super_tasks = 0;        ///< fused launches (>= 1 rider)
    std::uint64_t batches_unfused = 0;    ///< members split back on a fault
    std::uint64_t evictions_vetoed = 0;   ///< candidate scans that hit a veto
    std::uint64_t protections = 0;        ///< data protection windows opened
    struct Tier {
      std::uint32_t tier = 0;
      std::uint32_t jobs = 0;             ///< jobs retired in this tier
      double p50_us = 0.0;                ///< end-to-end latency percentiles
      double p95_us = 0.0;
      double p99_us = 0.0;
      std::uint32_t deadline_misses = 0;
    };
    std::vector<Tier> per_tier;
  };
  Slo slo;
};

/// Serializes one report as a JSON object.
[[nodiscard]] std::string run_report_to_json(const RunReport& report);

/// Writes `{"schema_version":10,"context":...,"runs":[...]}` to `path`.
/// Returns false on I/O error.
bool write_run_reports(const std::vector<RunReport>& reports,
                       const std::string& context, const std::string& path);

class RunReportCollector final : public Inspector {
 public:
  struct Options {
    std::string context;          ///< copied into RunReport::context
    std::uint32_t occupancy_buckets = 32;
    bool collect_trace = true;    ///< mirror a sim::Trace for Chrome export
  };

  RunReportCollector();
  explicit RunReportCollector(Options options);

  // Inspector
  void on_run_begin(const core::TaskGraph& graph,
                    const core::Platform& platform,
                    std::string_view scheduler_name) override;
  void on_event(const InspectorEvent& event) override;
  void on_run_end(double makespan_us) override;

  /// The eviction policy wired to `gpu` for this run.
  void on_eviction_policy(core::GpuId gpu,
                          std::string_view policy_name) override;

  /// Valid after on_run_end.
  [[nodiscard]] const RunReport& report() const { return report_; }

  /// Mirrored execution trace (empty when collect_trace is off); feed to
  /// analysis::export_chrome_trace for the chrome://tracing timeline.
  [[nodiscard]] const Trace& trace() const { return trace_; }

 private:
  struct ChannelState {
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    double busy_us = 0.0;
    double open_since_us = -1.0;
    std::vector<std::pair<double, double>> intervals;
  };

  struct GpuScratch {
    std::uint64_t committed = 0;
    std::uint64_t peak_committed = 0;
    double task_open_us = 0.0;
  };

  /// One GPU loss whose orphaned tasks have not all re-run yet.
  struct PendingRecovery {
    double loss_time_us = 0.0;
    std::vector<std::uint32_t> outstanding;  ///< orphan TaskIds still to run
  };

  Options options_;
  const core::TaskGraph* graph_ = nullptr;
  core::Platform platform_;
  RunReport report_;
  Trace trace_;
  std::vector<ChannelState> channels_;
  std::vector<GpuScratch> gpu_scratch_;
  std::vector<PendingRecovery> pending_recoveries_;
  /// Reclaimed tasks awaiting their re-run: task -> GPU that died holding
  /// it. The next kTaskStart of the task closes the attribution.
  std::map<std::uint32_t, std::uint32_t> pending_adoptions_;

  // Dependency ready-frontier tracking (schema 6). The collector mirrors
  // per-task pending-predecessor counts from kEdgeReleased / kTaskUnretired
  // so a revocation can retract a counted-but-revoked enablement.
  std::vector<std::uint32_t> dep_pending_;
  std::vector<bool> dep_counted_ready_;
  std::vector<bool> dep_started_;
  std::int64_t ready_width_ = 0;

  /// Drain fences still open (schema 7): node -> kNodeDrainStart time, so
  /// the matching kNodeDrained can report the fence-to-retire latency.
  std::map<std::uint32_t, double> drain_open_us_;

  // Occupancy-sharing accounting (schema 8), armed by kOccupancyConfig.
  // With sharing on, per-GPU busy time is the wall time anything co-runs —
  // tracked by the running counter — instead of summed task spans.
  struct OccLoad {
    std::uint32_t active_warps = 0;
    std::uint32_t running = 0;
    double integral = 0.0;       ///< sum of active_warps * dt
    double last_change_us = 0.0;
    double busy_open_us = 0.0;   ///< opened when the running set became
                                 ///< non-empty
  };
  void occ_accrue(OccLoad& load, double now_us);
  void occ_close_gpu(std::uint32_t gpu, double now_us);
  bool occ_armed_ = false;
  std::vector<OccLoad> occ_;
  std::vector<std::uint32_t> occ_task_warps_;  ///< clamped footprint at admit
};

}  // namespace mg::sim
