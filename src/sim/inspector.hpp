// Run observability: the inspector interface every simulation component
// publishes to.
//
// The engine, the per-GPU memory managers and every bus channel emit a
// single linear stream of InspectorEvents — task starts/ends, fetch
// starts, load completions, evictions, scratch reservations, wire-level
// transfer occupancy, output write-backs, and the notify_* calls made into
// the scheduler. Inspectors attached to a RuntimeEngine (via
// add_inspector) observe the stream as the simulation runs; when none is
// attached the engine skips event construction entirely, so the hooks cost
// one branch per event site.
//
// Two first-class implementations live next to this header:
//   * InvariantChecker (invariant_checker.hpp) — validates the execution
//     model online and fails fast with an event-log excerpt;
//   * RunReportCollector (run_report.hpp) — aggregates per-GPU load
//     balance, channel occupancy, eviction and prefetch statistics into a
//     structured JSON run report and a Chrome-tracing timeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/ids.hpp"
#include "core/platform.hpp"
#include "core/task_graph.hpp"

namespace mg::sim {

enum class InspectorEventKind : std::uint8_t {
  kFetchStart,     ///< memory manager committed bytes for data `id` on `gpu`
                   ///< (aux: 1 = demand fetch, 0 = pipeline prefetch/hint)
  kLoadComplete,   ///< data `id` became resident on `gpu` (aux: 1 = peer copy)
  kEvict,          ///< data `id` evicted from `gpu` (aux: pin count, must be 0)
  kScratchReserve, ///< output scratch of task `id` reserved on `gpu`
  kScratchRelease, ///< output scratch of task `id` released on `gpu`
  kTransferStart,  ///< a transfer started occupying wire `channel`
  kTransferEnd,    ///< the transfer on `channel` finished
  kWriteBackStart, ///< output of task `id` started its host write-back
  kWriteBackEnd,   ///< output of task `id` fully written back
  kTaskStart,      ///< task `id` started computing on `gpu`
  kTaskEnd,        ///< task `id` finished computing on `gpu`
  kNotifyTaskComplete,  ///< engine called scheduler.notify_task_complete
  kNotifyDataLoaded,    ///< engine called scheduler.notify_data_loaded
  kNotifyDataEvicted,   ///< engine called scheduler.notify_data_evicted

  // Fault injection (sim/fault_plan.hpp).
  kGpuLost,        ///< `gpu` failed permanently (bytes: resident bytes lost,
                   ///< aux: tasks to re-run — reclaimed orphans plus any
                   ///< un-retired completions on a dependency-gated run)
  kCapacityShock,  ///< `gpu` capacity became `bytes` (aux: 1 = request was
                   ///< clamped to the minimum safe capacity)
  kTransferRetry,  ///< delivery attempt `aux` of data `id` towards `gpu`
                   ///< failed on `channel`; retried after backoff
  kTaskReclaimed,  ///< task `id` reclaimed from dead `gpu`, to re-run
  kNotifyGpuLost,  ///< engine called scheduler.notify_gpu_lost (id: orphan
                   ///< count, aux: 1 = scheduler adopted the orphans)

  // Streaming / serving (src/serve, engine streaming mode). `gpu` is 0 for
  // all five — jobs are not bound to a device.
  kJobArrival,     ///< job `id` released into the engine (aux: task count)
  kJobComplete,    ///< last task of job `id` completed (aux: task count)
  kJobShed,        ///< job `id` shed by admission control (aux: task count)
  kTaskReleased,   ///< task `id` became eligible for popping (aux: job id)
  kTaskCancelled,  ///< task `id` of a shed job will never run (aux: job id)

  // Proactive fault tolerance (checkpointing, replication, replay).
  kCheckpoint,       ///< task `id` committed a progress snapshot on `gpu`
                     ///< (bytes: snapshot payload, aux: progress fraction in
                     ///< parts-per-million)
  kProgressRestored, ///< task `id` re-ran on `gpu` from checkpointed
                     ///< progress (aux: restored fraction in ppm)
  kReplicaCreate,    ///< data `id` proactively replicated onto `gpu`
  kReplicaProtect,   ///< replica of data `id` on `gpu` became the sole
                     ///< surviving copy; protected from eviction
  kReplicaRelease,   ///< protection of data `id` on `gpu` lifted (aux:
                     ///< 1 = no remaining planned uses, 0 = copy elsewhere)
  kReplicaShed,      ///< replica of data `id` dropped from `gpu` to make
                     ///< room (the matching kEvict follows immediately)
  kReplayDivergence, ///< fixed-order replay diverged on loss of `gpu`
                     ///< (id: divergence index in the recorded order,
                     ///< aux: tasks reassigned to survivors)

  // Multi-node cluster (src/cluster; engine cluster routing). `gpu` is the
  // GPU whose miss initiated the network fetch, `aux` the node involved.
  kHostFetchStart, ///< node `aux` started fetching data `id` from its home
                   ///< node's host memory on behalf of `gpu`
  kHostCacheFill,  ///< data `id` landed in node `aux`'s host cache (ready to
                   ///< cross that node's PCI bus towards `gpu`)
  kHostCacheEvict, ///< data `id` dropped from node `aux`'s bounded host
                   ///< cache to make room

  // Dependencies (DAG workloads; engine release gating). `gpu` is the GPU
  // whose retirement drove the release — 0 for load-time enablements.
  kEdgeReleased,   ///< dependency edge pred `id` -> succ `aux` released by
                   ///< pred's retirement (bytes: edge kind bitmask)
  kTaskEnabled,    ///< task `id`'s last predecessor retired: runnable now
                   ///< (aux: 1 = enabled at load, no predecessors)
  kTaskUnretired,  ///< retirement of task `id` rolled back: its effects died
                   ///< with `gpu` before becoming durable; it will re-run and
                   ///< its released edges are re-armed

  // Elastic autoscaling / planned topology change (src/cluster/autoscaler).
  // `id` carries the node for the node-lifecycle kinds; `gpu` is the GPU the
  // per-task/per-data kinds concern.
  kNodeDrainStart, ///< node `id` fenced: no new dispatch, begin evacuating
                   ///< (aux: buffered tasks pulled back for re-dispatch)
  kTaskDrained,    ///< task `id` pulled from draining `gpu`'s pipeline before
                   ///< starting; re-served to the survivors (aux: node)
  kDataMigrateStart, ///< sole-copy data `id` homed on a draining node started
                     ///< migrating (bytes: size, aux: destination node)
  kDataMigrated,   ///< data `id` finished migrating; its home is now node
                   ///< `aux` (bytes: size)
  kNodeDrained,    ///< node `id` fully evacuated and retired (bytes: migrated
                   ///< bytes, aux: drain latency in whole µs)
  kNodeJoinStart,  ///< node `id` began warming up (aux: planned warm fills)
  kNodeWarmFill,   ///< data `id` pre-staged into warming node `aux`'s host
                   ///< cache (bytes: size)
  kNodeJoined,     ///< node `id` finished warm-up and serves traffic
                   ///< (aux: warm fills completed)
  kNodeLost,       ///< node `id` failed unplanned: all its GPUs + host cache
                   ///< died at once (aux: tasks to re-run across the node)

  // Occupancy-aware GPU sharing (src/occupancy; engine sharing mode).
  kOccupancyConfig,   ///< sharing armed for the run (id: total warps per
                      ///< GPU, bytes: admission budget in warps, aux:
                      ///< threshold in parts-per-million)
  kTaskAdmitted,      ///< task `id` admitted onto `gpu`'s sharing set
                      ///< (bytes: clamped warp footprint, aux: active warps
                      ///< after the admission)
  kAdmissionRejected, ///< head task `id` held back on `gpu`: admitting its
                      ///< footprint would cross the threshold (bytes:
                      ///< clamped warp footprint, aux: current active warps)

  // Network faults (fault-plan link_faults; engine netfault layer). Link
  // kinds carry the node pair as `gpu` (src) and `id` (dst); fetch kinds
  // carry the destination node's first GPU in `gpu` and the data in `id`.
  kLinkDegraded,    ///< link gpu(src)–id(dst) degraded (bytes: bandwidth
                    ///< factor in ppm, aux: straggler latency in whole µs)
  kLinkPartitioned, ///< link gpu(src)–id(dst) partitioned: nothing crosses
                    ///< (bytes: heal time in whole µs, 0 = never heals)
  kLinkRestored,    ///< link gpu(src)–id(dst) healthy again (aux: 1 = the
                    ///< window was a partition)
  kFetchTimeout,    ///< network fetch of data `id` towards the node of `gpu`
                    ///< missed its deadline (bytes: size, aux: source node)
  kFetchHedged,     ///< the timed-out fetch of data `id` was re-issued from
                    ///< an alternate holder (bytes: size, aux: reroute
                    ///< target node)
  kHedgeWasted,     ///< a losing duplicate delivery of data `id` arrived
                    ///< after the fetch was already served (bytes: size,
                    ///< aux: destination node)
  kNodeSuspected,   ///< node `id` suspected unreachable: fetches from it
                    ///< time out; placement steers away (aux: timeouts seen)
  kNodeSuspicionCleared,   ///< a delivery from node `id` landed: suspicion
                           ///< lifted, the node re-integrates
  kNodeSuspicionEscalated, ///< node `id` stayed suspected past the confirm
                           ///< window: escalating to the node-loss recovery
                           ///< (aux: confirm window in whole µs)

  // SLO tiers and cross-job batching (src/slo; engine streaming mode).
  kJobsFused,         ///< queued job `id` fused into leader job `aux`'s
                      ///< super-tasks (one launch per task pair); its own
                      ///< kJobArrival follows immediately. `gpu` is 0.
  kSuperTaskLaunched, ///< fused leader task `id` started on `gpu` carrying
                      ///< `aux` rider tasks (bytes: scaled duration in
                      ///< whole µs)
  kBatchUnfused,      ///< fault/drain broke the batch: member job `id`
                      ///< detached from leader job `aux`; its unfinished
                      ///< tasks re-enter dispatch at member granularity.
                      ///< `gpu` is 0.
  kEvictionVetoed,    ///< eviction of data `id` on `gpu` blocked: an SLO
                      ///< protection (kTierProtect) covers it
  kTierProtect,       ///< data `id` became eviction-protected on behalf of a
                      ///< high-tier in-flight job (aux: tier). `gpu` is 0.
  kTierUnprotect,     ///< last protecting job of data `id` retired: the
                      ///< eviction veto lifts. `gpu` is 0.
};

[[nodiscard]] std::string_view inspector_event_kind_name(
    InspectorEventKind kind);

/// Wire channels, in the numbering the engine uses for kTransferStart/End.
inline constexpr std::uint32_t kChannelHostBus = 0;
inline constexpr std::uint32_t kChannelWriteback = 1;
inline constexpr std::uint32_t kChannelNvlinkBase = 2;  ///< +gpu for egress

// Cluster channels (num_nodes > 1): each node owns a PCI bus, a write-back
// channel and a network egress link. The bases leave room for 62 GPUs of
// NVLink egress and 64 nodes per range.
inline constexpr std::uint32_t kChannelNodePciBase = 64;        ///< +node
inline constexpr std::uint32_t kChannelNodeWritebackBase = 128; ///< +node
inline constexpr std::uint32_t kChannelNetBase = 192;           ///< +node
inline constexpr std::uint32_t kNoChannel = 0xffffffffu;

/// Number of channel slots needed to index every channel of `platform`
/// (wire-occupancy maps in the checker and report collector size with this).
[[nodiscard]] std::uint32_t inspector_channel_count(
    const core::Platform& platform);

/// Human-readable channel name ("host-bus", "writeback", "nvlink-gpu2",
/// "node1-pci", "node0-writeback", "net-node1").
[[nodiscard]] std::string inspector_channel_name(std::uint32_t channel);

struct InspectorEvent {
  double time_us = 0.0;
  InspectorEventKind kind = InspectorEventKind::kTaskStart;
  core::GpuId gpu = 0;               ///< destination / executing GPU
  std::uint32_t id = 0;              ///< TaskId or DataId, per kind
  std::uint64_t bytes = 0;           ///< transfer / scratch size
  std::uint32_t channel = kNoChannel;///< wire channel for transfer events
  std::uint32_t aux = 0;             ///< kind-specific detail (see enum)
};

/// One-line rendering used by diagnostics and the checker's log excerpt.
[[nodiscard]] std::string format_inspector_event(const InspectorEvent& event);

class Inspector {
 public:
  virtual ~Inspector() = default;

  /// Fired once, before any event, with the run's static context.
  virtual void on_run_begin(const core::TaskGraph& graph,
                            const core::Platform& platform,
                            std::string_view scheduler_name) {
    (void)graph;
    (void)platform;
    (void)scheduler_name;
  }

  /// Fired once per GPU, between on_run_begin and the first event: the
  /// eviction policy the engine wired to `gpu` for this run.
  virtual void on_eviction_policy(core::GpuId gpu,
                                  std::string_view policy_name) {
    (void)gpu;
    (void)policy_name;
  }

  virtual void on_event(const InspectorEvent& event) = 0;

  /// Fired once after the last task completed. `makespan_us` is the
  /// simulated completion time of the run.
  virtual void on_run_end(double makespan_us) { (void)makespan_us; }
};

}  // namespace mg::sim
