// Least-Recently-Used eviction — the default policy of every scheduler in
// the paper except DARTS+LUF. Recency is advanced on load and on task-start
// use; the victim is the candidate with the oldest stamp.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/eviction.hpp"
#include "core/ids.hpp"

namespace mg::sim {

class LruEviction final : public core::EvictionPolicy {
 public:
  LruEviction(std::uint32_t num_gpus, std::uint32_t num_data)
      : stamps_(num_gpus, std::vector<std::uint64_t>(num_data, 0)) {}

  [[nodiscard]] std::string_view name() const override { return "LRU"; }

  void on_load(core::GpuId gpu, core::DataId data) override {
    stamps_[gpu][data] = ++clock_;
  }

  void on_use(core::GpuId gpu, core::DataId data) override {
    stamps_[gpu][data] = ++clock_;
  }

  [[nodiscard]] core::DataId choose_victim(
      core::GpuId gpu, std::span<const core::DataId> candidates) override {
    core::DataId victim = core::kInvalidData;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (core::DataId data : candidates) {
      const std::uint64_t stamp = stamps_[gpu][data];
      if (stamp < oldest) {
        oldest = stamp;
        victim = data;
      }
    }
    return victim;
  }

 private:
  std::vector<std::vector<std::uint64_t>> stamps_;
  std::uint64_t clock_ = 0;
};

}  // namespace mg::sim
