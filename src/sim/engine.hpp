// StarPU-like runtime engine on top of the discrete-event simulator.
//
// Each GPU runs a worker pipeline of up to `pipeline_depth` tasks pulled from
// the scheduler (the paper's taskBuffer): the head task is *assembled*
// (demand-fetch its missing inputs, pin the present ones so they cannot be
// evicted from under it), deeper tasks get their inputs prefetched through
// the shared bus. A task starts when the GPU is idle and all its inputs are
// resident; inputs stay pinned for the duration of the task.
//
// Eviction is delegated to the scheduler's core::EvictionPolicy (default
// LRU). Inputs of *buffered but not yet assembling* tasks are evictable —
// this is deliberate: the paper's analysis of DARTS-without-LUF hinges on
// exactly this "domino" effect, and LUF exists to avoid it.
//
// Scheduler cost accounting (`account_scheduler_cost`) reproduces the
// paper's "with / without scheduling time" curves: the measured wall time of
// each pop_task() call delays subsequent task starts on that GPU, and
// prepare() time is added to the reported makespan.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/ids.hpp"
#include "core/metrics.hpp"
#include "core/platform.hpp"
#include "core/scheduler.hpp"
#include "core/task_graph.hpp"
#include "sim/bus.hpp"
#include "sim/event_queue.hpp"
#include "sim/inspector.hpp"
#include "sim/lru_eviction.hpp"
#include "sim/memory_manager.hpp"
#include "sim/trace.hpp"

namespace mg::sim {

struct EngineConfig {
  /// Max tasks popped ahead per GPU (running task excluded) — the worker
  /// pipeline / taskBuffer depth.
  std::uint32_t pipeline_depth = 4;

  /// Charge measured scheduler wall time into the timeline (see above).
  bool account_scheduler_cost = false;

  /// Push-time prefetch hints may evict (StarPU's eager prefetch
  /// allocation). Off by default: hints then only fill free space. Turning
  /// this on reproduces the paper's DMDAR prefetch/eviction conflict in
  /// full strength (see abl_push_prefetch).
  bool hints_may_evict = false;

  /// Record a Trace of loads/evictions/task starts/ends.
  bool record_trace = false;

  /// Seed forwarded to Scheduler::prepare.
  std::uint64_t seed = 42;
};

class RuntimeEngine final : private MemoryManager::Observer,
                            private TransferRouter {
 public:
  RuntimeEngine(const core::TaskGraph& graph, const core::Platform& platform,
                core::Scheduler& scheduler, EngineConfig config = {});

  RuntimeEngine(const RuntimeEngine&) = delete;
  RuntimeEngine& operator=(const RuntimeEngine&) = delete;

  /// Runs the whole workload to completion and returns the metrics.
  /// Single-shot: a second call is an error.
  core::RunMetrics run();

  /// Attaches an inspector (invariant checker, run-report collector, ...)
  /// to the run's event stream. Must be called before run(); not owned.
  /// With no inspector attached the event sites cost one branch each.
  void add_inspector(Inspector* inspector);

  [[nodiscard]] const Trace& trace() const { return trace_; }

  [[nodiscard]] const core::Platform& platform() const { return platform_; }

 private:
  struct GpuState {
    std::deque<core::TaskId> buffer;             ///< popped, not yet started
    std::deque<core::DataId> hint_queue;         ///< push-time prefetch hints
    core::TaskId running = core::kInvalidTask;
    bool starved = false;        ///< scheduler had nothing for us last time
    bool assembly_active = false;
    bool scratch_reserved = false;  ///< output buffer of the head task
    std::vector<core::DataId> assembly_pins;
    double sched_busy_until_us = 0.0;
    double busy_us = 0.0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t loads = 0;
    std::uint64_t bytes_loaded = 0;
    std::uint64_t peer_loads = 0;
    std::uint64_t bytes_from_peers = 0;
    std::uint64_t bytes_written_back = 0;
    std::uint64_t evictions = 0;
    std::unique_ptr<MemoryManager> memory;
  };

  void fill_buffer(core::GpuId gpu);
  void begin_assembly(core::GpuId gpu);

  /// Issues queued push-time prefetch hints while the GPU has free memory
  /// (hints never evict); called whenever memory is freed.
  void pump_hints(core::GpuId gpu);
  void try_start(core::GpuId gpu);
  void start_task(core::GpuId gpu, core::TaskId task);
  void finish_task(core::GpuId gpu, core::TaskId task);
  void retry_starved();
  void report_deadlock_and_abort() const;

  // MemoryManager::Observer
  void on_data_loaded(core::GpuId gpu, core::DataId data) override;
  void on_data_evicted(core::GpuId gpu, core::DataId data) override;
  void on_fetch_started(core::GpuId gpu, core::DataId data,
                        bool demand) override;

  /// Publishes one event to every attached inspector. `publish` is the
  /// guarded entry point (no-op without inspectors); `publish_slow` builds
  /// and fans out the event.
  void publish(InspectorEventKind kind, core::GpuId gpu, std::uint32_t id,
               std::uint64_t bytes = 0, std::uint32_t channel = kNoChannel,
               std::uint32_t aux = 0) {
    if (!inspectors_.empty()) publish_slow(kind, gpu, id, bytes, channel, aux);
  }
  void publish_slow(InspectorEventKind kind, core::GpuId gpu, std::uint32_t id,
                    std::uint64_t bytes, std::uint32_t channel,
                    std::uint32_t aux);

  /// Routes bus wire start/end callbacks into kTransferStart/End events.
  void attach_wire_observers();

  // TransferRouter: route a miss over the host bus, or — with NVLink
  // enabled — over the egress port of a peer GPU already holding the data
  // (the replica stays pinned on the source for the duration of the copy).
  void request_transfer(core::GpuId dst, core::DataId data,
                        std::uint64_t bytes, std::function<void()> on_complete,
                        TransferPriority priority) override;
  void promote(core::GpuId dst, core::DataId data) override;

  /// Peer currently holding `data` (lowest id), or kInvalidGpu.
  [[nodiscard]] core::GpuId find_peer_holding(core::GpuId dst,
                                              core::DataId data) const;

  /// Copies `data` from `source` to `dst` over the source's NVLink egress
  /// port, keeping the source replica pinned for the duration.
  void start_peer_copy(core::GpuId source, core::GpuId dst, core::DataId data,
                       std::uint64_t bytes,
                       std::function<void()> on_complete);

  const core::TaskGraph& graph_;
  core::Platform platform_;
  core::Scheduler& scheduler_;
  EngineConfig config_;

  EventQueue events_;
  Bus bus_;
  /// Output write-backs travel host-bound on their own channel: PCIe is
  /// full duplex, and the paper notes output "can be transferred
  /// concurrently with data input". Only created when the graph has outputs.
  std::unique_ptr<Bus> writeback_bus_;
  std::vector<std::unique_ptr<Bus>> nvlink_egress_;  ///< one per GPU
  /// Origin of the in-flight fetch of (gpu, data): host or peer.
  std::vector<std::vector<std::uint8_t>> fetch_from_peer_;
  std::unique_ptr<LruEviction> default_policy_;
  std::vector<GpuState> gpus_;
  std::vector<bool> popped_;
  std::uint32_t completed_ = 0;
  double last_completion_us_ = 0.0;
  double pop_wall_us_ = 0.0;
  double prepare_wall_us_ = 0.0;
  Trace trace_;
  std::vector<Inspector*> inspectors_;
  bool ran_ = false;
};

}  // namespace mg::sim
