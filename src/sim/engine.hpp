// StarPU-like runtime engine on top of the discrete-event simulator.
//
// Each GPU runs a worker pipeline of up to `pipeline_depth` tasks pulled from
// the scheduler (the paper's taskBuffer): the head task is *assembled*
// (demand-fetch its missing inputs, pin the present ones so they cannot be
// evicted from under it), deeper tasks get their inputs prefetched through
// the shared bus. A task starts when the GPU is idle and all its inputs are
// resident; inputs stay pinned for the duration of the task.
//
// Eviction is delegated to the scheduler's core::EvictionPolicy (default
// LRU). Inputs of *buffered but not yet assembling* tasks are evictable —
// this is deliberate: the paper's analysis of DARTS-without-LUF hinges on
// exactly this "domino" effect, and LUF exists to avoid it.
//
// Scheduler cost accounting (`account_scheduler_cost`) reproduces the
// paper's "with / without scheduling time" curves: the measured wall time of
// each pop_task() call delays subsequent task starts on that GPU, and
// prepare() time is added to the reported makespan.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/ids.hpp"
#include "core/metrics.hpp"
#include "core/platform.hpp"
#include "core/scheduler.hpp"
#include "core/task_graph.hpp"
#include "occupancy/governor.hpp"
#include "sim/bus.hpp"
#include "sim/errors.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_injector.hpp"
#include "sim/inspector.hpp"
#include "sim/lru_eviction.hpp"
#include "sim/memory_manager.hpp"
#include "sim/trace.hpp"

namespace mg::sim {

struct EngineConfig {
  /// Max tasks popped ahead per GPU (running task excluded) — the worker
  /// pipeline / taskBuffer depth.
  std::uint32_t pipeline_depth = 4;

  /// Charge measured scheduler wall time into the timeline (see above).
  bool account_scheduler_cost = false;

  /// Push-time prefetch hints may evict (StarPU's eager prefetch
  /// allocation). Off by default: hints then only fill free space. Turning
  /// this on reproduces the paper's DMDAR prefetch/eviction conflict in
  /// full strength (see abl_push_prefetch).
  bool hints_may_evict = false;

  /// Record a Trace of loads/evictions/task starts/ends.
  bool record_trace = false;

  /// Seed forwarded to Scheduler::prepare.
  std::uint64_t seed = 42;

  /// Watchdog ceilings: a run that processes more than `max_events` events
  /// or passes `max_sim_time_us` of simulated time throws
  /// BudgetExceededError (with a recent-event excerpt) instead of looping
  /// forever on a buggy scheduler or fault plan. 0 = unlimited.
  std::uint64_t max_events = 0;
  double max_sim_time_us = 0.0;

  /// Transfer-retry backoff under fault injection: the n-th failed attempt
  /// re-enters its queue after min(base * 2^(n-1), cap) microseconds.
  double retry_backoff_base_us = 20.0;
  double retry_backoff_cap_us = 2000.0;

  /// Seeded jitter on the retry backoff: each backoff is multiplied by
  /// (1 + retry_jitter * u) with u drawn uniformly from [0, 1) by a
  /// dedicated RNG (seeded from `seed`), so concurrent failed fetches stop
  /// retrying in lockstep. 0 (the default) draws nothing and keeps runs
  /// byte-identical to the deterministic schedule.
  double retry_jitter = 0.0;

  /// Remote-fetch timeout (multi-node platforms): a network fetch that has
  /// not landed after `fetch_timeout_factor` x its modeled end-to-end
  /// transfer time misses its deadline — the source node accrues suspicion
  /// and the fetch is hedged to an alternate holder (a cached copy on
  /// another node, or the home node again once its link heals). 0 (the
  /// default) disables timeouts, hedging and the suspicion detector; link
  /// faults in the plan then degrade/park transfers but nothing reroutes.
  double fetch_timeout_factor = 0.0;

  /// Cap on hedge re-issues per fetch; past it the fetch falls back to
  /// deadline re-arming with the transfer-retry exponential backoff until
  /// the original delivery lands or the source node is declared lost.
  /// 0 detects timeouts (suspicion) but never hedges.
  std::uint32_t max_fetch_hedges = 2;

  /// Suspicion confirm window: a node that stays suspected this long
  /// without a single successful delivery escalates to the destructive
  /// node-loss recovery (fail_node). 0 (the default) never escalates —
  /// suspicion then only steers placement until the partition heals.
  double suspicion_confirm_window_us = 0.0;

  /// Task-progress checkpointing: every `checkpoint_interval_us` of a task's
  /// compute time (or, with `checkpoint_fraction` in (0,1), at that fraction
  /// of each task's duration) the worker starts a progress snapshot, so a
  /// permanent GPU loss re-runs only the work since the last checkpoint.
  /// Each snapshot drains the task's output state host-bound on the
  /// write-back channel in the background — the overhead is bus time that
  /// competes with real write-backs, not a compute stall — and the progress
  /// only becomes durable when the drain completes. 0 = off.
  double checkpoint_interval_us = 0.0;
  double checkpoint_fraction = 0.0;

  /// Replication-aware placement: when the armed fault plan contains a
  /// permanent GPU loss, keep a second replica of the hottest shared data
  /// (ranked by remaining planned uses) on a different GPU. Replicas fill
  /// free memory only, count against M, are shed first under pressure, and
  /// become eviction-protected while they are the sole surviving copy after
  /// a loss. A no-op without a fault plan that loses GPUs.
  bool replicate_hot = false;

  /// Elastic autoscaling (multi-node platforms): number of nodes that serve
  /// from t=0; the remaining nodes start inactive (GPUs idle, data homed on
  /// them re-homed onto the serving set) and can be brought in later with
  /// begin_node_join. 0 (the default) activates every node — the fixed-
  /// topology behaviour, bit-identical to an engine without this knob.
  std::uint32_t initial_active_nodes = 0;

  /// Occupancy-aware GPU sharing: with a positive threshold each GPU runs a
  /// *set* of concurrent kernels, admitted by the occupancy governor while
  /// active_warps + task_warps < threshold * Platform::total_warps (an idle
  /// GPU always admits its first task). Co-running kernels share the device
  /// processor-style: compute rates scale by the warp oversubscription
  /// factor. 0 (the default) keeps the exclusive one-task-per-GPU model,
  /// bit-identical to an engine without this knob. Incompatible with
  /// checkpointing (snapshot boundaries assume a constant compute rate).
  double occupancy_threshold = 0.0;
};

class RuntimeEngine final : private MemoryManager::Observer,
                            private TransferRouter {
 public:
  RuntimeEngine(const core::TaskGraph& graph, const core::Platform& platform,
                core::Scheduler& scheduler, EngineConfig config = {});

  RuntimeEngine(const RuntimeEngine&) = delete;
  RuntimeEngine& operator=(const RuntimeEngine&) = delete;

  /// Runs the whole workload to completion and returns the metrics.
  /// Single-shot: a second call is an error.
  core::RunMetrics run();

  /// Attaches an inspector (invariant checker, run-report collector, ...)
  /// to the run's event stream. Must be called before run(); not owned.
  /// With no inspector attached the event sites cost one branch each.
  void add_inspector(Inspector* inspector);

  /// Attaches the run's fault injector. Must be called before run(); not
  /// owned; one injector serves one run. Without an injector — or with an
  /// empty plan — the run is bit-identical to a fault-free engine.
  void set_fault_injector(FaultInjector* injector);

  // ---- Streaming (serve) mode ----------------------------------------------
  //
  // In a streamed run the graph is the union of every job that may arrive;
  // tasks start *unreleased* and the scheduler (which must accept
  // Scheduler::begin_streaming) may not pop a task before release_job() hands
  // its job over. The serve layer drives arrivals and admission by scheduling
  // callbacks on event_queue() — before run() or from within callbacks — and
  // learns about retirements through set_job_retired_callback.

  /// Enables streaming. `task_job[t]` is the job of task t; jobs are numbered
  /// densely 0..num_jobs-1 and every job owns at least one task. Must be
  /// called before run().
  void enable_streaming(std::vector<std::uint32_t> task_job,
                        std::uint32_t num_jobs);

  /// Releases a pending job: its tasks become eligible, the scheduler gets
  /// notify_job_arrived, and idle GPUs are woken.
  void release_job(std::uint32_t job);

  /// Sheds a pending (never released) job: its tasks will never run but count
  /// as completed so the run can terminate.
  void shed_job(std::uint32_t job);

  /// `callback(job)` fires through a zero-delay event after the last task of
  /// `job` completes (admission re-check, closed-loop refill, ...).
  void set_job_retired_callback(std::function<void(std::uint32_t)> callback);

  // ---- SLO tiers & cross-job batching (src/slo) ---------------------------
  //
  // Fusion merges still-queued member jobs into a just-admitted leader of
  // the same template: member task i rides leader task i (template order) —
  // one launch per pair at base × duration_scale (shared loads counted
  // once), with per-member completion and retirement published when the
  // leader task finishes. Riders never reach the scheduler. Any fault or
  // topology change unfuses every active batch first, so recovery and
  // replay see member granularity. Dormant (and byte-identical) until the
  // first fuse_jobs / add_eviction_veto call.

  /// Fuses `members` (pending jobs of the leader's template) into released
  /// job `leader`. Requires streaming mode, no dependency edges, and that
  /// no leader task has started yet (call at admission). Leader tasks run
  /// at base × `duration_scale`.
  void fuse_jobs(std::uint32_t leader, std::span<const std::uint32_t> members,
                 double duration_scale);

  /// SLO eviction protection: while the refcount of `data` is positive, no
  /// GPU evicts (or replica-sheds) it. `tier` only annotates the
  /// kTierProtect event.
  void add_eviction_veto(core::DataId data, std::uint32_t tier);
  void remove_eviction_veto(core::DataId data);

  /// The simulation clock/queue; the serve layer schedules arrival and
  /// admission callbacks here.
  [[nodiscard]] EventQueue& event_queue() { return events_; }

  [[nodiscard]] std::uint32_t jobs_in_flight() const {
    return jobs_released_ - jobs_retired_;
  }

  [[nodiscard]] const Trace& trace() const { return trace_; }

  [[nodiscard]] const core::Platform& platform() const { return platform_; }

  // ---- Elastic autoscaling (planned topology change) -----------------------
  //
  // On a multi-node platform whole nodes can leave and join the serving set
  // while the run streams. A *drain* is planned, not reactive: the node
  // stops accepting work, its buffered-but-unstarted tasks are pulled back
  // and requeued on survivors, running tasks and write-backs finish, data
  // homed on the node migrates to surviving hosts over the network model,
  // and only then does the node retire — zero task progress is lost. A
  // *join* warms the incoming node's host cache with the hottest shared
  // data before its GPUs take traffic. Single-node platforms reject both.

  /// Lifecycle of a node in the serving set.
  enum class NodeStatus : std::uint8_t {
    kActive,    ///< serving
    kDraining,  ///< drain fence passed; finishing and migrating
    kInactive,  ///< retired (or never started); may rejoin
    kWarming,   ///< joining; host cache warming up
    kLost,      ///< killed by a fault plan's node loss
  };

  /// Starts a graceful drain of `node` (must be kActive, and not the last
  /// serving node). Safe to call from an event callback; the node retires
  /// asynchronously once quiescent.
  void begin_node_drain(core::NodeId node);

  /// Starts bringing `node` (kInactive) into the serving set; its GPUs take
  /// traffic once the warm-up fills land.
  void begin_node_join(core::NodeId node);

  [[nodiscard]] NodeStatus node_status(core::NodeId node) const {
    return node_status_.empty() ? NodeStatus::kActive : node_status_[node];
  }

  /// Nodes currently serving (kActive).
  [[nodiscard]] std::uint32_t active_node_count() const {
    return active_node_count_;
  }

 private:
  /// One member of a GPU's co-running kernel set (occupancy mode only).
  struct RunningTask {
    core::TaskId task;
    /// Solo-rate compute time still owed. Accrued at every membership
    /// change: elapsed wall time is divided by the sharing slowdown in
    /// force since the last change.
    double remaining_solo_us;
    std::uint32_t warps;  ///< governor-clamped footprint
  };

  struct GpuState {
    std::deque<core::TaskId> buffer;             ///< popped, not yet started
    std::deque<core::DataId> hint_queue;         ///< push-time prefetch hints
    core::TaskId running = core::kInvalidTask;
    /// Concurrent kernels on this device (occupancy mode; `running` stays
    /// kInvalidTask then). Membership changes bump occ_epoch so finish
    /// events scheduled under an older rate turn stale and are ignored.
    std::vector<RunningTask> running_set;
    std::uint64_t occ_epoch = 0;
    double occ_last_update_us = 0.0;
    /// Head task the governor last rejected; suppresses repeated rejection
    /// events until a release frees warps (or the head changes).
    core::TaskId occ_blocked_head = core::kInvalidTask;
    bool alive = true;           ///< false after a scripted GPU loss
    /// False while the GPU's node is outside the serving set (draining,
    /// drained, warming): the device is intact but takes no new work.
    bool active = true;
    bool starved = false;        ///< scheduler had nothing for us last time
    bool assembly_active = false;
    bool scratch_reserved = false;  ///< output buffer of the head task
    std::vector<core::DataId> assembly_pins;
    /// Tasks that finished here whose retirement is not durable yet (output
    /// write-back still draining). Only tracked on dependency-gated runs.
    std::vector<core::TaskId> undurable;
    double sched_busy_until_us = 0.0;
    double running_until_us = 0.0;  ///< scheduled end of the running task
    double assembly_since_us = 0.0; ///< when the head task began assembling
    double busy_us = 0.0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t loads = 0;
    std::uint64_t bytes_loaded = 0;
    std::uint64_t peer_loads = 0;
    std::uint64_t bytes_from_peers = 0;
    std::uint64_t bytes_written_back = 0;
    std::uint64_t evictions = 0;
    std::unique_ptr<MemoryManager> memory;
  };

  void fill_buffer(core::GpuId gpu);
  void begin_assembly(core::GpuId gpu);

  // ---- Dependency gating (graph_.has_dependencies()) ----------------------
  //
  // A task is *enabled* when every predecessor has retired. Retirement is
  // announced optimistically when the predecessor finishes computing; it
  // becomes durable when its output write-back drains (immediately for
  // tasks without outputs). A GPU loss un-retires its completed-but-undrained
  // tasks: they re-run, and enablements they granted are revoked until the
  // re-run retires (see unretire_task).

  /// Announces `task`'s retirement: releases its out-edges, enables
  /// successors whose last predecessor it was, unparks waiting orphans and
  /// wakes the workers.
  void retire_task(core::GpuId gpu, core::TaskId task);

  /// Rolls back the non-durable completion of `task` on dead `gpu`: its
  /// completion counters unwind, enablements it granted are revoked, and it
  /// re-enters the reclaim queue to re-run on a survivor.
  void unretire_task(core::GpuId gpu, core::TaskId task);

  /// Pulls a just-revoked `task` out of whichever survivor pipeline buffered
  /// it and parks it. Without this a revoked buffer head would stall its GPU
  /// while the un-retired predecessor queues *behind* it — a deadlock, since
  /// only the head of a pipeline can start. `lost_gpu` is the dead GPU whose
  /// un-retirement triggered the revocation (reclaim attribution).
  void eject_revoked(core::GpuId lost_gpu, core::TaskId task);

  /// Issues queued push-time prefetch hints while the GPU has free memory
  /// (hints never evict); called whenever memory is freed.
  void pump_hints(core::GpuId gpu);
  void try_start(core::GpuId gpu);
  void start_task(core::GpuId gpu, core::TaskId task);
  void finish_task(core::GpuId gpu, core::TaskId task);
  /// Everything that happens when `task` completes on `gpu` — counters,
  /// write-back, scheduler/streaming/dependency notifications, worker
  /// wake-ups. Shared by the exclusive and occupancy completion paths.
  void complete_task(core::GpuId gpu, core::TaskId task);

  // ---- Occupancy-aware sharing (config_.occupancy_threshold > 0) ----------
  //
  // Co-running kernels progress processor-sharing style: each owes
  // remaining solo-rate compute time, and wall time is charged at
  // slowdown = max(1, active_warps / total_warps) — warp oversubscription
  // slows every resident kernel uniformly; under-subscription runs at the
  // solo rate (SMs are not magically faster with company). Every
  // membership change accrues progress at the old rate, bumps the epoch
  // (invalidating in-flight finish events) and reschedules completions at
  // the new rate.

  [[nodiscard]] bool has_running_work(const GpuState& state) const {
    return occupancy_active_ ? !state.running_set.empty()
                             : state.running != core::kInvalidTask;
  }
  [[nodiscard]] bool is_running_here(const GpuState& state,
                                     core::TaskId task) const;
  [[nodiscard]] double occ_slowdown(const GpuState& state) const;
  /// Charges wall time since the last membership change into every
  /// co-runner's remaining work (and the GPU's busy_us).
  void occ_accrue(core::GpuId gpu);
  /// Bumps the epoch and schedules a finish event per co-runner at the
  /// current sharing rate.
  void occ_reschedule(core::GpuId gpu);
  void occ_finish_task(core::GpuId gpu, core::TaskId task,
                       std::uint64_t epoch);
  /// Orphans the whole running set of a dead GPU (fault paths) and resets
  /// the governor's load; progress was already accrued incrementally.
  void occ_reclaim_running(core::GpuId gpu, std::vector<core::TaskId>& orphans);

  void retry_starved();
  [[noreturn]] void throw_deadlock() const;
  [[nodiscard]] std::string format_engine_state() const;

  // Fault-injection recovery paths.
  void schedule_faults();
  void attach_fault_hooks();
  void fail_gpu(core::GpuId gpu);
  /// Unplanned whole-node loss (fault plan `node_losses`): kills every GPU of
  /// the node in one recovery pass (single kNodeLost event, one
  /// notify_node_lost) and instantly re-homes its host shards — host data is
  /// modeled as durably backed, so only device-side progress is lost.
  void fail_node(core::NodeId node);
  void apply_capacity_shock(core::GpuId gpu, std::uint64_t capacity_bytes);

  // Elastic autoscaling internals (topology_active_ only).
  /// Home node of `data` after drain migrations / node losses re-homed it.
  [[nodiscard]] core::NodeId home_node(core::DataId data) const {
    return home_override_.empty() ? platform_.home_node_of(data)
                                  : home_override_[data];
  }
  /// Starts migrating every shard homed on draining `node` to active homes
  /// (round-robin), riding the node's PCI-out + net egress like a remote
  /// fetch in reverse. Completion re-homes the shard.
  void start_data_migrations(core::NodeId node);
  /// Retires `node` if its drain is complete: every GPU idle and quiescent,
  /// no in-flight node fetch, all migrations landed. Called from every
  /// drain-progress site (task finish, write-back drain, data landed,
  /// migration done).
  void maybe_finish_drain(core::NodeId node);
  void finish_node_drain(core::NodeId node);
  /// Lands one warm-up fill on a joining node; activates it when the last
  /// fill (or none were needed) is in.
  void finish_warm_fill(core::NodeId node, core::DataId data,
                        std::uint64_t bytes);
  void activate_node(core::NodeId node, std::uint32_t fills);
  /// Smallest capacity at which every task can still assemble (inputs +
  /// output scratch); capacity shocks are clamped to it. Computed lazily.
  [[nodiscard]] std::uint64_t min_safe_capacity();

  // Proactive fault tolerance (checkpointing / replication).
  [[nodiscard]] bool checkpointing_enabled() const {
    return config_.checkpoint_interval_us > 0.0 ||
           config_.checkpoint_fraction > 0.0;
  }
  /// Snapshot payload of `task` (its output state) and the bus time its
  /// background drain occupies on the write-back channel.
  [[nodiscard]] std::uint64_t checkpoint_payload_bytes(core::TaskId task) const;
  [[nodiscard]] double checkpoint_cost_us(core::TaskId task) const;
  /// Starts the background drain at a snapshot boundary; the progress
  /// becomes durable in commit_checkpoint when the drain completes.
  void initiate_checkpoint(core::GpuId gpu, core::TaskId task,
                           double fraction);
  void commit_checkpoint(core::GpuId gpu, core::TaskId task, double fraction);
  /// Proactively replicates the hottest sole-copy shared data into free
  /// memory of a second GPU; called from task-completion sites.
  void maybe_replicate();
  /// Promotes replicas that became sole surviving copies to eviction-
  /// protected, after `gpu` died.
  void protect_sole_survivors(core::GpuId dead_gpu);
  void release_protection(core::DataId data, bool uses_exhausted);

  // MemoryManager::Observer
  void on_data_loaded(core::GpuId gpu, core::DataId data) override;
  void on_data_evicted(core::GpuId gpu, core::DataId data) override;
  void on_fetch_started(core::GpuId gpu, core::DataId data,
                        bool demand) override;
  void on_replica_shed(core::GpuId gpu, core::DataId data) override;
  void on_eviction_vetoed(core::GpuId gpu, core::DataId data) override;

  /// Publishes one event to every attached inspector. `publish` is the
  /// guarded entry point (no-op without inspectors); `publish_slow` builds
  /// and fans out the event.
  void publish(InspectorEventKind kind, core::GpuId gpu, std::uint32_t id,
               std::uint64_t bytes = 0, std::uint32_t channel = kNoChannel,
               std::uint32_t aux = 0) {
    if (!inspectors_.empty() || watchdog_log_) {
      publish_slow(kind, gpu, id, bytes, channel, aux);
    }
  }
  void publish_slow(InspectorEventKind kind, core::GpuId gpu, std::uint32_t id,
                    std::uint64_t bytes, std::uint32_t channel,
                    std::uint32_t aux);

  /// Routes bus wire start/end callbacks into kTransferStart/End events.
  void attach_wire_observers();

  // TransferRouter: route a miss over the host bus, or — with NVLink
  // enabled — over the egress port of a peer GPU already holding the data
  // (the replica stays pinned on the source for the duration of the copy).
  void request_transfer(core::GpuId dst, core::DataId data,
                        std::uint64_t bytes, std::function<void()> on_complete,
                        TransferPriority priority) override;
  void promote(core::GpuId dst, core::DataId data) override;

  /// Peer currently holding `data` (lowest id), or kInvalidGpu. On a
  /// cluster, NVLink ports only reach peers of the same node.
  [[nodiscard]] core::GpuId find_peer_holding(core::GpuId dst,
                                              core::DataId data) const;

  // ---- Multi-node cluster routing (platform_.num_nodes > 1) --------------
  //
  // Each node owns a PCI bus, a network egress link and (with outputs or
  // checkpointing) a write-back channel. Data are homed round-robin on the
  // nodes' host memories; a GPU missing data homed elsewhere pays PCI out
  // of the home node, one network hop into its node's host cache, then PCI
  // into the device. Concurrent misses of the same (node, data) join one
  // in-flight network fetch; the fill fans out to every waiter.

  /// Routes a miss of `dst` in cluster mode (see above).
  void request_cluster_transfer(core::GpuId dst, core::DataId data,
                                std::uint64_t bytes,
                                std::function<void()> on_complete,
                                TransferPriority priority);

  /// The network hop of (node, data) completed: cache the data in the
  /// node's host memory (evicting LRU entries under a bounded budget) and
  /// issue the PCI-in leg for every waiting GPU.
  void host_cache_fill(core::NodeId node, core::GpuId gpu, core::DataId data,
                       std::uint64_t bytes);

  /// Evicts least-recently-used host-cache entries of `node` until `needed`
  /// more bytes fit in the budget.
  void host_cache_evict_for(core::NodeId node, core::GpuId gpu,
                            std::uint64_t needed);

  /// The write-back channel serving `gpu` (per-node on a cluster).
  [[nodiscard]] Bus* writeback_bus_for(core::GpuId gpu);

  /// Copies `data` from `source` to `dst` over the source's NVLink egress
  /// port, keeping the source replica pinned for the duration.
  void start_peer_copy(core::GpuId source, core::GpuId dst, core::DataId data,
                       std::uint64_t bytes,
                       std::function<void()> on_complete);

  const core::TaskGraph& graph_;
  core::Platform platform_;
  core::Scheduler& scheduler_;
  EngineConfig config_;

  EventQueue events_;
  Bus bus_;
  /// Output write-backs travel host-bound on their own channel: PCIe is
  /// full duplex, and the paper notes output "can be transferred
  /// concurrently with data input". Checkpoint snapshots drain on the same
  /// channel. Only created when the graph has outputs or checkpointing is
  /// on.
  std::unique_ptr<Bus> writeback_bus_;
  std::vector<std::unique_ptr<Bus>> nvlink_egress_;  ///< one per GPU
  /// Origin of the in-flight fetch of (gpu, data): host or peer.
  std::vector<std::vector<std::uint8_t>> fetch_from_peer_;

  // Cluster state (empty on a single-node platform, which keeps the
  // single-bus code path bit-identical).
  struct NodeWaiter {
    core::GpuId gpu;
    std::function<void()> on_complete;
    TransferPriority priority;
  };
  struct NodeState {
    std::unique_ptr<Bus> pci;        ///< this node's host<->GPU bus
    std::unique_ptr<Bus> writeback;  ///< outputs/checkpoints, when needed
    std::unique_ptr<Bus> net;        ///< network egress towards other nodes
    /// Host cache of *remote* data (home data is always available).
    std::vector<std::uint8_t> cached;
    std::vector<std::uint64_t> last_use;     ///< LRU stamps
    std::vector<std::uint8_t> net_fetching;  ///< in-flight network fetch
    std::vector<std::vector<NodeWaiter>> waiters;
    std::uint64_t cached_bytes = 0;
    std::uint64_t use_clock = 0;
  };
  bool cluster_active_ = false;
  std::vector<NodeState> nodes_;
  std::unique_ptr<LruEviction> default_policy_;
  std::vector<GpuState> gpus_;
  std::vector<bool> popped_;
  std::uint32_t completed_ = 0;
  double last_completion_us_ = 0.0;
  double pop_wall_us_ = 0.0;
  double prepare_wall_us_ = 0.0;
  Trace trace_;
  std::vector<Inspector*> inspectors_;
  bool ran_ = false;

  // Fault-injection state. All dormant (and cost-free) without an injector.
  FaultInjector* injector_ = nullptr;
  /// Orphans the scheduler declined to re-own; served to surviving GPUs
  /// ahead of further pop_task calls.
  std::deque<core::TaskId> reclaimed_;
  std::uint32_t alive_gpus_ = 0;
  std::uint64_t min_safe_capacity_ = 0;  ///< 0 = not yet computed
  core::FaultMetrics fault_metrics_;

  // Elastic autoscaling state. Allocated only when the topology actually
  // changes (initial_active_nodes, a drain/join call, or a node-loss fault);
  // fixed-topology runs never touch it and stay bit-identical.
  bool topology_active_ = false;
  std::vector<NodeStatus> node_status_;
  std::uint32_t active_node_count_ = 0;
  /// Per-data home override (migrations / node losses re-home shards);
  /// empty until the first re-homing.
  std::vector<core::NodeId> home_override_;
  /// Per-node count of in-flight drain migrations.
  std::vector<std::uint32_t> drain_migrations_left_;
  /// Per-node drain fence time (kNodeDrained latency aux).
  std::vector<double> drain_start_us_;
  /// Per-node count of in-flight join warm-up fills.
  std::vector<std::uint32_t> warm_fills_left_;
  /// Lazily sizes the autoscaling vectors on first topology change.
  void ensure_topology_state();

  // Checkpointing state (allocated only when the policy is on).
  /// Last committed progress fraction per task, in [0,1).
  std::vector<double> checkpoint_progress_;
  /// Recovery-latency bookkeeping: loss time per orphaned task, or <0.
  std::vector<double> orphan_lost_at_us_;

  // Replication state (allocated only when replication is active).
  bool replication_active_ = false;
  /// Uncompleted consumers per data — the DARTS/LUF-style look-ahead that
  /// ranks replication candidates.
  std::vector<std::uint32_t> remaining_uses_;
  /// GPU whose copy of the data is currently eviction-protected as the
  /// sole survivor, or kInvalidGpu.
  std::vector<core::GpuId> protected_on_;

  // Occupancy-sharing state. Dormant — and cost-free on the hot paths —
  // with the default threshold of 0.
  bool occupancy_active_ = false;
  std::unique_ptr<occupancy::OccupancyGovernor> governor_;

  // ---- Network-fault state (link faults, hedged fetches, suspicion) -------
  //
  // Armed only when the fault plan carries link_faults or
  // fetch_timeout_factor is set on a cluster; dormant runs never allocate
  // any of it and stay byte-identical.
  bool netfault_active_ = false;
  struct LinkWindow {
    core::NodeId src = 0;
    core::NodeId dst = 0;
    double start_us = 0.0;
    double end_us = 0.0;
    double factor = 1.0;
    double straggler_us = 0.0;
    bool partition = false;
    bool active = false;  ///< inside [start_us, end_us) right now
  };
  std::vector<LinkWindow> link_windows_;
  /// Net requests a partition filter took off the wire; re-submitted on the
  /// owning node's egress when the window closes.
  struct ParkedNetRequest {
    core::NodeId src_node = 0;
    core::GpuId dst = 0;
    core::DataId data = 0;
    std::uint64_t bytes = 0;
    Bus::OnComplete on_complete;
  };
  std::vector<ParkedNetRequest> parked_net_;
  /// In-flight network fetch bookkeeping per (destination node, data).
  /// `generation` invalidates stale deadline events; `hedges` counts
  /// re-issues against max_fetch_hedges.
  struct NetFetchState {
    core::NodeId source = 0;
    std::uint32_t generation = 0;
    std::uint32_t hedges = 0;
    std::uint32_t retries = 0;  ///< deadline re-arms past the hedge cap
    std::uint8_t timed_out = 0;
  };
  std::vector<std::vector<NetFetchState>> net_fetch_;  ///< [node][data]
  std::vector<std::uint8_t> node_suspected_;
  std::vector<std::uint32_t> node_timeout_count_;
  /// Seeded jitter draws for the retry backoff (only consulted when
  /// config_.retry_jitter > 0).
  std::uint64_t jitter_state_ = 0;

  /// Allocates the netfault state, installs net-bus cost hooks and
  /// partition filters, and schedules the link-fault boundary events.
  void arm_netfaults();
  [[nodiscard]] const LinkWindow* active_link_fault(core::NodeId a,
                                                    core::NodeId b) const;
  [[nodiscard]] bool link_partitioned(core::NodeId a, core::NodeId b) const {
    const LinkWindow* window = active_link_fault(a, b);
    return window != nullptr && window->partition;
  }
  void apply_link_boundary(std::size_t index, bool start);
  /// Issues the PCI-out + net chain of a network fetch of `data` from
  /// `source` towards `dst` (on node `dest`); shared by the original fetch
  /// and hedge re-issues.
  void issue_net_fetch(core::NodeId dest, core::NodeId source, core::GpuId dst,
                       core::DataId data, std::uint64_t bytes,
                       TransferPriority priority = TransferPriority::kHigh);
  /// Delivery-side gate: the winning delivery fills the host cache, a
  /// losing duplicate publishes kHedgeWasted instead.
  void net_fetch_delivered(core::NodeId dest, core::NodeId source,
                           core::GpuId dst, core::DataId data,
                           std::uint64_t bytes);
  [[nodiscard]] double fetch_deadline_us(std::uint64_t bytes) const;
  void arm_fetch_deadline(core::NodeId dest, core::DataId data,
                          std::uint64_t bytes, double delay_us);
  void on_fetch_deadline(core::NodeId dest, core::DataId data,
                         std::uint64_t bytes, std::uint32_t generation);
  /// Best alternate holder for a hedge: an active, unpartitioned node with
  /// the data in host reach (home or cached); NodeId max (no reachable
  /// holder) when every holder is unreachable right now.
  [[nodiscard]] core::NodeId pick_hedge_source(core::NodeId dest,
                                               core::DataId data,
                                               core::NodeId prefer_not) const;
  void suspect_node(core::NodeId node);
  void clear_suspicion(core::NodeId node);
  void escalate_suspicion(core::NodeId node, std::uint32_t epoch);
  /// Suspicion epoch per node: bumped on clear so a pending confirm-window
  /// event from an earlier suspicion cannot escalate a healed node.
  std::vector<std::uint32_t> suspicion_epoch_;

  /// Watchdog: when a budget is set, keep a short tail of formatted events
  /// for the BudgetExceededError excerpt.
  bool watchdog_log_ = false;
  std::deque<std::string> watchdog_recent_;

  // Dependency (DAG) state. All dormant — and cost-free on the hot paths —
  // when the graph carries no dependency edges.
  bool deps_active_ = false;
  std::vector<std::uint32_t> dep_pending_;  ///< unretired predecessors
  std::vector<bool> dep_enabled_;   ///< all predecessors retired
  std::vector<bool> dep_retired_;   ///< retirement announced, not rolled back
  std::vector<bool> dep_completed_; ///< finished at least once, not rolled back
  std::vector<bool> dep_parked_;    ///< held engine-side until re-enabled
  std::vector<bool> dep_revoked_;   ///< enablement revoked by an un-retirement
  std::vector<bool> dep_rerun_;     ///< re-running: suppress duplicate notify
  /// GPU whose pipeline a revoked task was ejected from (kInvalidGpu
  /// otherwise). The scheduler still believes the task sits in that GPU's
  /// buffer, so its eventual completion is reported against this GPU even if
  /// the reclaim queue re-served it elsewhere.
  std::vector<core::GpuId> dep_eject_origin_;
  std::vector<core::TaskId> dep_enabled_scratch_;

  // Streaming (serve) mode state. All dormant without enable_streaming.
  enum class JobState : std::uint8_t { kPending, kReleased, kShed, kRetired };
  bool streaming_ = false;
  std::uint32_t num_jobs_ = 0;
  std::vector<std::uint32_t> task_job_;            ///< task -> job
  std::vector<std::vector<core::TaskId>> job_tasks_;
  std::vector<std::uint32_t> job_remaining_;       ///< uncompleted task count
  std::vector<JobState> job_state_;
  std::vector<bool> released_;
  std::uint32_t jobs_released_ = 0;
  std::uint32_t jobs_retired_ = 0;
  std::function<void(std::uint32_t)> job_retired_cb_;

  // SLO state (src/slo). Dormant — and cost-free on the hot paths — until
  // the first fuse_jobs or add_eviction_veto call.
  bool slo_active_ = false;
  /// Active batches: leader job + fused member jobs (cleared by
  /// unfuse_all; retired groups are skipped there via job_state_).
  struct FusionGroup {
    std::uint32_t leader;
    std::vector<std::uint32_t> members;
  };
  std::vector<FusionGroup> fusion_groups_;
  /// Rider tasks carried by each fused leader task (empty = unfused).
  std::vector<std::vector<core::TaskId>> fused_riders_;
  /// Duration multiplier of each fused leader task (0 = unfused).
  std::vector<double> fused_scale_;
  /// Per-data SLO protection refcount (one per protecting in-flight job).
  std::vector<std::uint32_t> veto_count_;
  /// kEvictionVetoed debounce: at most one event per data per protection
  /// window.
  std::vector<std::uint8_t> veto_reported_;
  void ensure_slo_state();
  /// Breaks every active batch (fault/drain paths): unstarted rider tasks
  /// re-enter dispatch through the reclaim queue at member granularity.
  void unfuse_all();
  /// Warp footprint the occupancy governor should charge for `task`:
  /// summed over the batch for a fused leader.
  [[nodiscard]] std::uint32_t effective_task_warps(core::TaskId task) const;
  /// Publishes one rider's synthetic admit/start/end/complete sequence and
  /// retires its member job if it was the last task.
  void complete_rider(core::GpuId gpu, core::TaskId rider);
};

}  // namespace mg::sim
