// Shared CLI handling of engine failures.
//
// Every driver binary follows the same convention: an EngineError
// (deadlock, watchdog budget, invalid fault plan) prints one diagnostic
// line to stderr and exits with status 3 — distinct from bad usage (1) and
// unreadable inputs (2), so scripts and CI can tell a wedged schedule from
// a mistyped flag. This header is the single definition of that behaviour.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/errors.hpp"

namespace mg::sim {

[[noreturn]] inline void exit_engine_failure(const std::string& label,
                                             const EngineError& error) {
  std::fprintf(stderr, "engine failure in %s: %s\n", label.c_str(),
               error.what());
  std::exit(3);
}

/// Runs the engine to completion; on EngineError, prints the diagnostic
/// labelled `label` and exits with status 3.
inline core::RunMetrics run_engine_or_exit(RuntimeEngine& engine,
                                           const std::string& label) {
  try {
    return engine.run();
  } catch (const EngineError& error) {
    exit_engine_failure(label, error);
  }
}

}  // namespace mg::sim
