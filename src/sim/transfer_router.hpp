// Transfer routing abstraction between the per-GPU memory managers and the
// interconnect. The basic platform routes every miss over the shared host
// PCI bus; with NVLink enabled (the paper's Section VI future work), the
// router may instead pull a replica from a peer GPU that currently holds
// the data, over a faster dedicated peer link.
#pragma once

#include <cstdint>
#include <functional>

#include "core/ids.hpp"

namespace mg::sim {

/// kLow transfers (push-time prefetch hints) are served only when no kHigh
/// transfer (demand fetch or pipeline prefetch) is waiting — StarPU's
/// prefetch-below-fetch priority.
enum class TransferPriority : std::uint8_t { kHigh, kLow };

class TransferRouter {
 public:
  virtual ~TransferRouter() = default;

  /// Transfers `data` (of `bytes` bytes) to `dst` from wherever the router
  /// decides; `on_complete` fires when the data has fully landed on `dst`.
  virtual void request_transfer(
      core::GpuId dst, core::DataId data, std::uint64_t bytes,
      std::function<void()> on_complete,
      TransferPriority priority = TransferPriority::kHigh) = 0;

  /// Raises a still-queued low-priority transfer of (dst, data) to high
  /// priority (a prefetch hint that became a demand). No-op if the transfer
  /// already started or does not exist.
  virtual void promote(core::GpuId dst, core::DataId data) {
    (void)dst;
    (void)data;
  }
};

}  // namespace mg::sim
