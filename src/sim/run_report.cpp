#include "sim/run_report.hpp"

#include <algorithm>
#include <cstdio>

namespace mg::sim {

namespace {

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_double(std::string& out, double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  out += buffer;
}

void append_u64(std::string& out, std::uint64_t value) {
  out += std::to_string(value);
}

}  // namespace

std::string run_report_to_json(const RunReport& report) {
  std::string json = "{";
  json += "\"schema_version\":" + std::to_string(RunReport::kSchemaVersion);
  json += ",\"scheduler\":";
  append_json_string(json, report.scheduler);
  json += ",\"context\":";
  append_json_string(json, report.context);

  json += ",\"platform\":{\"num_gpus\":" + std::to_string(report.num_gpus);
  json += ",\"gpu_memory_bytes\":";
  append_u64(json, report.gpu_memory_bytes);
  json += ",\"bus_bandwidth_bytes_per_s\":";
  append_double(json, report.bus_bandwidth_bytes_per_s);
  json += ",\"nvlink\":";
  json += report.nvlink ? "true" : "false";
  json += "}";

  json += ",\"makespan_us\":";
  append_double(json, report.makespan_us);
  json += ",\"total_flops\":";
  append_double(json, report.total_flops);
  json += ",\"achieved_gflops\":";
  append_double(json, report.achieved_gflops);

  json += ",\"per_gpu\":[";
  for (std::size_t gpu = 0; gpu < report.per_gpu.size(); ++gpu) {
    const RunReport::Gpu& g = report.per_gpu[gpu];
    if (gpu > 0) json += ',';
    json += "{\"gpu\":" + std::to_string(gpu);
    json += ",\"tasks_executed\":";
    append_u64(json, g.tasks_executed);
    json += ",\"busy_us\":";
    append_double(json, g.busy_us);
    json += ",\"loads\":";
    append_u64(json, g.loads);
    json += ",\"peer_loads\":";
    append_u64(json, g.peer_loads);
    json += ",\"bytes_loaded\":";
    append_u64(json, g.bytes_loaded);
    json += ",\"evictions\":";
    append_u64(json, g.evictions);
    json += ",\"peak_committed_bytes\":";
    append_u64(json, g.peak_committed_bytes);
    json += ",\"eviction_policy\":";
    append_json_string(json, g.eviction_policy);
    json += "}";
  }
  json += "]";

  json += ",\"load_balance\":{\"max_tasks\":";
  append_u64(json, report.load_balance.max_tasks);
  json += ",\"min_tasks\":";
  append_u64(json, report.load_balance.min_tasks);
  json += ",\"mean_tasks\":";
  append_double(json, report.load_balance.mean_tasks);
  json += ",\"busy_imbalance\":";
  append_double(json, report.load_balance.busy_imbalance);
  json += "}";

  json += ",\"channels\":[";
  for (std::size_t i = 0; i < report.channels.size(); ++i) {
    const RunReport::Channel& channel = report.channels[i];
    if (i > 0) json += ',';
    json += "{\"name\":";
    append_json_string(json, channel.name);
    json += ",\"transfers\":";
    append_u64(json, channel.transfers);
    json += ",\"bytes\":";
    append_u64(json, channel.bytes);
    json += ",\"busy_us\":";
    append_double(json, channel.busy_us);
    json += ",\"occupancy\":";
    append_double(json, channel.occupancy);
    json += ",\"occupancy_buckets\":[";
    for (std::size_t b = 0; b < channel.occupancy_buckets.size(); ++b) {
      if (b > 0) json += ',';
      append_double(json, channel.occupancy_buckets[b]);
    }
    json += "]}";
  }
  json += "]";

  json += ",\"prefetch\":{\"demand_fetches\":";
  append_u64(json, report.prefetch.demand_fetches);
  json += ",\"prefetch_fetches\":";
  append_u64(json, report.prefetch.prefetch_fetches);
  json += ",\"hit_rate\":";
  append_double(json, report.prefetch.hit_rate);
  json += "}";

  json += ",\"evictions_by_policy\":{";
  bool first = true;
  for (const auto& [policy, count] : report.evictions_by_policy) {
    if (!first) json += ',';
    first = false;
    append_json_string(json, policy);
    json += ':';
    append_u64(json, count);
  }
  json += "}";

  json += ",\"faults\":{\"gpu_losses\":" +
          std::to_string(report.faults.gpu_losses);
  json += ",\"capacity_shocks\":" +
          std::to_string(report.faults.capacity_shocks);
  json += ",\"tasks_reclaimed\":";
  append_u64(json, report.faults.tasks_reclaimed);
  json += ",\"transfer_retries\":";
  append_u64(json, report.faults.transfer_retries);
  json += ",\"wasted_transfer_bytes\":";
  append_u64(json, report.faults.wasted_transfer_bytes);
  json += ",\"recovery_latency_us\":[";
  for (std::size_t i = 0; i < report.faults.recovery_latency_us.size(); ++i) {
    if (i > 0) json += ',';
    append_double(json, report.faults.recovery_latency_us[i]);
  }
  json += "],\"max_recovery_latency_us\":";
  append_double(json, report.faults.max_recovery_latency_us);
  json += ",\"adoptions\":[";
  for (std::size_t i = 0; i < report.faults.adoptions.size(); ++i) {
    const RunReport::Faults::Adoption& adoption = report.faults.adoptions[i];
    if (i > 0) json += ',';
    json += "{\"task\":" + std::to_string(adoption.task);
    json += ",\"from_gpu\":" + std::to_string(adoption.from_gpu);
    json += ",\"to_gpu\":" + std::to_string(adoption.to_gpu);
    json += "}";
  }
  json += "]";

  const RunReport::Faults::Checkpoints& checkpoints = report.faults.checkpoints;
  json += ",\"checkpoints\":{\"taken\":";
  append_u64(json, checkpoints.taken);
  json += ",\"payload_bytes\":";
  append_u64(json, checkpoints.payload_bytes);
  json += ",\"overhead_us\":";
  append_double(json, checkpoints.overhead_us);
  json += ",\"tasks_restored\":";
  append_u64(json, checkpoints.tasks_restored);
  json += ",\"compute_saved_us\":";
  append_double(json, checkpoints.compute_saved_us);
  json += "}";

  const RunReport::Faults::Replicas& replicas = report.faults.replicas;
  json += ",\"replicas\":{\"created\":";
  append_u64(json, replicas.created);
  json += ",\"bytes\":";
  append_u64(json, replicas.bytes);
  json += ",\"shed\":";
  append_u64(json, replicas.shed);
  json += ",\"protected_sole_survivor\":";
  append_u64(json, replicas.protected_sole_survivor);
  json += ",\"released\":";
  append_u64(json, replicas.released);
  json += ",\"post_loss_host_loads\":";
  append_u64(json, replicas.post_loss_host_loads);
  json += "}";

  json += ",\"replay_divergence\":[";
  for (std::size_t i = 0; i < report.faults.replay_divergence.size(); ++i) {
    const RunReport::Faults::ReplayDivergenceEntry& entry =
        report.faults.replay_divergence[i];
    if (i > 0) json += ',';
    json += "{\"gpu\":" + std::to_string(entry.gpu);
    json += ",\"divergence_index\":" + std::to_string(entry.divergence_index);
    json += ",\"reassigned_tasks\":" + std::to_string(entry.reassigned_tasks);
    json += "}";
  }
  json += "]}";

  const RunReport::Serving& serving = report.serving;
  json += ",\"serving\":{\"enabled\":";
  json += serving.enabled ? "true" : "false";
  json += ",\"arrival\":";
  append_json_string(json, serving.arrival);
  json += ",\"jobs_submitted\":" + std::to_string(serving.jobs_submitted);
  json += ",\"jobs_completed\":" + std::to_string(serving.jobs_completed);
  json += ",\"jobs_shed\":" + std::to_string(serving.jobs_shed);
  json += ",\"throughput_jobs_per_s\":";
  append_double(json, serving.throughput_jobs_per_s);
  json += ",\"latency_p50_us\":";
  append_double(json, serving.latency_p50_us);
  json += ",\"latency_p95_us\":";
  append_double(json, serving.latency_p95_us);
  json += ",\"latency_p99_us\":";
  append_double(json, serving.latency_p99_us);
  json += ",\"latency_mean_us\":";
  append_double(json, serving.latency_mean_us);
  json += ",\"latency_max_us\":";
  append_double(json, serving.latency_max_us);
  json += ",\"deadline_hits\":" + std::to_string(serving.deadline_hits);
  json += ",\"deadline_misses\":" + std::to_string(serving.deadline_misses);
  json += ",\"deadline_miss_rate\":";
  append_double(json, serving.deadline_miss_rate);
  json += ",\"cross_job_reuse_bytes\":";
  append_u64(json, serving.cross_job_reuse_bytes);
  json += ",\"cross_job_reuse_hits\":";
  append_u64(json, serving.cross_job_reuse_hits);
  json += ",\"peak_jobs_in_flight\":" +
          std::to_string(serving.peak_jobs_in_flight);
  json += ",\"peak_queue_depth\":" + std::to_string(serving.peak_queue_depth);
  json += ",\"queue_depth_timeline\":[";
  for (std::size_t i = 0; i < serving.queue_depth_timeline.size(); ++i) {
    if (i > 0) json += ',';
    json += '[';
    append_double(json, serving.queue_depth_timeline[i].first);
    json += ',' + std::to_string(serving.queue_depth_timeline[i].second);
    json += ']';
  }
  json += "]}";

  const RunReport::Cluster& cluster = report.cluster;
  json += ",\"cluster\":{\"enabled\":";
  json += cluster.enabled ? "true" : "false";
  json += ",\"num_nodes\":" + std::to_string(cluster.num_nodes);
  json += ",\"per_node\":[";
  for (std::size_t node = 0; node < cluster.per_node.size(); ++node) {
    const RunReport::Cluster::Node& n = cluster.per_node[node];
    if (node > 0) json += ',';
    json += "{\"node\":" + std::to_string(node);
    json += ",\"gpu_begin\":" + std::to_string(n.gpu_begin);
    json += ",\"gpu_end\":" + std::to_string(n.gpu_end);
    json += ",\"tasks_executed\":";
    append_u64(json, n.tasks_executed);
    json += ",\"busy_us\":";
    append_double(json, n.busy_us);
    json += ",\"loads\":";
    append_u64(json, n.loads);
    json += ",\"bytes_loaded\":";
    append_u64(json, n.bytes_loaded);
    json += ",\"remote_fetches\":";
    append_u64(json, n.remote_fetches);
    json += ",\"host_cache_fills\":";
    append_u64(json, n.host_cache_fills);
    json += ",\"host_cache_evictions\":";
    append_u64(json, n.host_cache_evictions);
    json += "}";
  }
  json += "],\"network_transfers\":";
  append_u64(json, cluster.network_transfers);
  json += ",\"network_bytes\":";
  append_u64(json, cluster.network_bytes);
  json += ",\"host_cache_fills\":";
  append_u64(json, cluster.host_cache_fills);
  json += ",\"host_cache_evictions\":";
  append_u64(json, cluster.host_cache_evictions);
  json += ",\"steals\":";
  append_u64(json, cluster.steals);
  json += "}";

  const RunReport::Dependencies& deps = report.dependencies;
  json += ",\"dependencies\":{\"enabled\":";
  json += deps.enabled ? "true" : "false";
  json += ",\"explicit_edges\":";
  append_u64(json, deps.explicit_edges);
  json += ",\"raw_edges\":";
  append_u64(json, deps.raw_edges);
  json += ",\"war_edges\":";
  append_u64(json, deps.war_edges);
  json += ",\"waw_edges\":";
  append_u64(json, deps.waw_edges);
  json += ",\"total_edges\":";
  append_u64(json, deps.total_edges);
  json += ",\"critical_path_length\":" +
          std::to_string(deps.critical_path_length);
  json += ",\"max_ready_width\":" + std::to_string(deps.max_ready_width);
  json += ",\"tasks_enabled\":";
  append_u64(json, deps.tasks_enabled);
  json += ",\"edges_released\":";
  append_u64(json, deps.edges_released);
  json += ",\"tasks_unretired\":";
  append_u64(json, deps.tasks_unretired);
  json += "}";

  const RunReport::Autoscaling& scaling = report.autoscaling;
  json += ",\"autoscaling\":{\"enabled\":";
  json += scaling.enabled ? "true" : "false";
  json += ",\"scale_out_events\":" + std::to_string(scaling.scale_out_events);
  json += ",\"scale_in_events\":" + std::to_string(scaling.scale_in_events);
  json += ",\"nodes_drained\":" + std::to_string(scaling.nodes_drained);
  json += ",\"nodes_joined\":" + std::to_string(scaling.nodes_joined);
  json += ",\"node_losses\":" + std::to_string(scaling.node_losses);
  json += ",\"tasks_drained\":";
  append_u64(json, scaling.tasks_drained);
  json += ",\"migrations\":";
  append_u64(json, scaling.migrations);
  json += ",\"migrated_bytes\":";
  append_u64(json, scaling.migrated_bytes);
  json += ",\"warm_fills\":";
  append_u64(json, scaling.warm_fills);
  json += ",\"warm_fill_bytes\":";
  append_u64(json, scaling.warm_fill_bytes);
  json += ",\"drain_latency_total_us\":";
  append_double(json, scaling.drain_latency_total_us);
  json += ",\"drain_latency_max_us\":";
  append_double(json, scaling.drain_latency_max_us);
  json += "}";

  const RunReport::Occupancy& occupancy = report.occupancy;
  json += ",\"occupancy\":{\"enabled\":";
  json += occupancy.enabled ? "true" : "false";
  json += ",\"threshold\":";
  append_double(json, occupancy.threshold);
  json += ",\"total_warps\":" + std::to_string(occupancy.total_warps);
  json += ",\"budget_warps\":" + std::to_string(occupancy.budget_warps);
  json += ",\"per_gpu\":[";
  for (std::size_t gpu = 0; gpu < occupancy.per_gpu.size(); ++gpu) {
    const RunReport::Occupancy::Gpu& g = occupancy.per_gpu[gpu];
    if (gpu > 0) json += ',';
    json += "{\"gpu\":" + std::to_string(gpu);
    json += ",\"peak_warps\":" + std::to_string(g.peak_warps);
    json += ",\"mean_occupancy\":";
    append_double(json, g.mean_occupancy);
    json += "}";
  }
  json += "],\"admissions\":";
  append_u64(json, occupancy.admissions);
  json += ",\"rejections\":";
  append_u64(json, occupancy.rejections);
  json += ",\"co_run_pairs\":";
  append_u64(json, occupancy.co_run_pairs);
  json += "}";

  const RunReport::NetworkFaults& net = report.network_faults;
  json += ",\"network_faults\":{\"enabled\":";
  json += net.enabled ? "true" : "false";
  json += ",\"link_degradations\":" + std::to_string(net.link_degradations);
  json += ",\"link_partitions\":" + std::to_string(net.link_partitions);
  json += ",\"link_heals\":" + std::to_string(net.link_heals);
  json += ",\"fetch_timeouts\":";
  append_u64(json, net.fetch_timeouts);
  json += ",\"hedged_fetches\":";
  append_u64(json, net.hedged_fetches);
  json += ",\"hedges_wasted\":";
  append_u64(json, net.hedges_wasted);
  json += ",\"hedge_wasted_bytes\":";
  append_u64(json, net.hedge_wasted_bytes);
  json += ",\"nodes_suspected\":" + std::to_string(net.nodes_suspected);
  json += ",\"suspicions_cleared\":" + std::to_string(net.suspicions_cleared);
  json += ",\"suspicions_escalated\":" +
          std::to_string(net.suspicions_escalated);
  json += "}";

  const RunReport::Slo& slo = report.slo;
  json += ",\"slo\":{\"enabled\":";
  json += slo.enabled ? "true" : "false";
  json += ",\"tiers\":" + std::to_string(slo.tiers);
  json += ",\"jobs_fused\":";
  append_u64(json, slo.jobs_fused);
  json += ",\"super_tasks\":";
  append_u64(json, slo.super_tasks);
  json += ",\"batches_unfused\":";
  append_u64(json, slo.batches_unfused);
  json += ",\"evictions_vetoed\":";
  append_u64(json, slo.evictions_vetoed);
  json += ",\"protections\":";
  append_u64(json, slo.protections);
  json += ",\"per_tier\":[";
  for (std::size_t i = 0; i < slo.per_tier.size(); ++i) {
    const RunReport::Slo::Tier& tier = slo.per_tier[i];
    if (i > 0) json += ',';
    json += "{\"tier\":" + std::to_string(tier.tier);
    json += ",\"jobs\":" + std::to_string(tier.jobs);
    json += ",\"p50_us\":";
    append_double(json, tier.p50_us);
    json += ",\"p95_us\":";
    append_double(json, tier.p95_us);
    json += ",\"p99_us\":";
    append_double(json, tier.p99_us);
    json += ",\"deadline_misses\":" + std::to_string(tier.deadline_misses);
    json += "}";
  }
  json += "]}}";
  return json;
}

bool write_run_reports(const std::vector<RunReport>& reports,
                       const std::string& context, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::string json = "{\"schema_version\":";
  json += std::to_string(RunReport::kSchemaVersion);
  json += ",\"context\":";
  append_json_string(json, context);
  json += ",\"runs\":[\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) json += ",\n";
    json += run_report_to_json(reports[i]);
  }
  json += "\n]}\n";
  const bool ok = std::fputs(json.c_str(), file) >= 0 && std::fflush(file) == 0;
  std::fclose(file);
  return ok;
}

RunReportCollector::RunReportCollector() : RunReportCollector(Options{}) {}

RunReportCollector::RunReportCollector(Options options)
    : options_(std::move(options)) {}

void RunReportCollector::on_run_begin(const core::TaskGraph& graph,
                                      const core::Platform& platform,
                                      std::string_view scheduler_name) {
  graph_ = &graph;
  platform_ = platform;
  report_ = RunReport{};
  report_.scheduler = std::string(scheduler_name);
  report_.context = options_.context;
  report_.num_gpus = platform.num_gpus;
  report_.gpu_memory_bytes = platform.gpu_memory_bytes;
  report_.bus_bandwidth_bytes_per_s = platform.bus_bandwidth_bytes_per_s;
  report_.nvlink = platform.nvlink_enabled;
  report_.total_flops = graph.total_flops();
  report_.per_gpu.assign(platform.num_gpus, RunReport::Gpu{});
  if (platform.is_cluster()) {
    report_.cluster.enabled = true;
    report_.cluster.num_nodes = platform.num_nodes;
    report_.cluster.per_node.assign(platform.num_nodes,
                                    RunReport::Cluster::Node{});
    for (core::NodeId node = 0; node < platform.num_nodes; ++node) {
      report_.cluster.per_node[node].gpu_begin = platform.node_gpu_begin(node);
      report_.cluster.per_node[node].gpu_end = platform.node_gpu_end(node);
    }
  }
  if (graph.has_dependencies()) {
    report_.dependencies.enabled = true;
    const core::DepEdgeCounts& counts = graph.dependency_edge_counts();
    report_.dependencies.explicit_edges = counts.explicit_edges;
    report_.dependencies.raw_edges = counts.raw;
    report_.dependencies.war_edges = counts.war;
    report_.dependencies.waw_edges = counts.waw;
    report_.dependencies.total_edges = counts.total;
    report_.dependencies.critical_path_length = graph.critical_path_length();
    dep_pending_.assign(graph.num_tasks(), 0);
    dep_counted_ready_.assign(graph.num_tasks(), false);
    dep_started_.assign(graph.num_tasks(), false);
    for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
      dep_pending_[task] = graph.num_predecessors(task);
    }
  } else {
    dep_pending_.clear();
    dep_counted_ready_.clear();
    dep_started_.clear();
  }
  ready_width_ = 0;
  channels_.assign(inspector_channel_count(platform), ChannelState{});
  gpu_scratch_.assign(platform.num_gpus, GpuScratch{});
  pending_recoveries_.clear();
  pending_adoptions_.clear();
  drain_open_us_.clear();
  occ_armed_ = false;
  occ_.clear();
  occ_task_warps_.clear();
  trace_.events.clear();
}

void RunReportCollector::occ_accrue(OccLoad& load, double now_us) {
  if (now_us > load.last_change_us) {
    load.integral += static_cast<double>(load.active_warps) *
                     (now_us - load.last_change_us);
    load.last_change_us = now_us;
  }
}

// Drops every co-runner of `gpu` at once (GPU/node loss): the engine
// reclaims the whole running set, so the busy window and active warps
// close here rather than at per-task kTaskEnd events that never come.
void RunReportCollector::occ_close_gpu(std::uint32_t gpu, double now_us) {
  OccLoad& load = occ_[gpu];
  occ_accrue(load, now_us);
  load.active_warps = 0;
  if (load.running > 0) {
    load.running = 0;
    report_.per_gpu[gpu].busy_us += now_us - load.busy_open_us;
  }
}

void RunReportCollector::on_eviction_policy(core::GpuId gpu,
                                            std::string_view policy_name) {
  if (gpu < report_.per_gpu.size()) {
    report_.per_gpu[gpu].eviction_policy = std::string(policy_name);
  }
}

void RunReportCollector::on_event(const InspectorEvent& event) {
  RunReport::Gpu& gpu = report_.per_gpu[event.gpu];
  GpuScratch& scratch = gpu_scratch_[event.gpu];
  switch (event.kind) {
    case InspectorEventKind::kFetchStart:
      if (event.aux != 0) {
        ++report_.prefetch.demand_fetches;
      } else {
        ++report_.prefetch.prefetch_fetches;
      }
      scratch.committed += event.bytes;
      scratch.peak_committed =
          std::max(scratch.peak_committed, scratch.committed);
      break;
    case InspectorEventKind::kLoadComplete:
      if (event.aux != 0) {
        ++gpu.peer_loads;
      } else {
        ++gpu.loads;
        if (report_.faults.gpu_losses > 0) {
          ++report_.faults.replicas.post_loss_host_loads;
        }
      }
      gpu.bytes_loaded += graph_->data_size(event.id);
      if (options_.collect_trace) {
        trace_.events.push_back({event.time_us,
                                 event.aux != 0 ? TraceKind::kPeerLoad
                                                : TraceKind::kLoad,
                                 event.gpu, event.id});
      }
      break;
    case InspectorEventKind::kEvict:
      ++gpu.evictions;
      scratch.committed -= graph_->data_size(event.id);
      if (options_.collect_trace) {
        trace_.events.push_back(
            {event.time_us, TraceKind::kEvict, event.gpu, event.id});
      }
      break;
    case InspectorEventKind::kScratchReserve:
      scratch.committed += event.bytes;
      scratch.peak_committed =
          std::max(scratch.peak_committed, scratch.committed);
      break;
    case InspectorEventKind::kScratchRelease:
      scratch.committed -= std::min(scratch.committed, event.bytes);
      break;
    case InspectorEventKind::kTransferStart: {
      ChannelState& channel = channels_[event.channel];
      ++channel.transfers;
      channel.bytes += event.bytes;
      channel.open_since_us = event.time_us;
      break;
    }
    case InspectorEventKind::kTransferEnd: {
      ChannelState& channel = channels_[event.channel];
      if (channel.open_since_us >= 0.0) {
        channel.busy_us += event.time_us - channel.open_since_us;
        channel.intervals.emplace_back(channel.open_since_us, event.time_us);
        channel.open_since_us = -1.0;
      }
      break;
    }
    case InspectorEventKind::kWriteBackStart:
      break;
    case InspectorEventKind::kWriteBackEnd:
      if (options_.collect_trace) {
        trace_.events.push_back(
            {event.time_us, TraceKind::kWriteBack, event.gpu, event.id});
      }
      break;
    case InspectorEventKind::kTaskStart: {
      scratch.task_open_us = event.time_us;
      if (options_.collect_trace) {
        trace_.events.push_back(
            {event.time_us, TraceKind::kTaskStart, event.gpu, event.id});
      }
      // A reclaimed task starting again closes its adoption attribution:
      // `event.gpu` is the survivor that absorbed it.
      auto adoption = pending_adoptions_.find(event.id);
      if (adoption != pending_adoptions_.end()) {
        report_.faults.adoptions.push_back(
            {event.id, adoption->second, event.gpu});
        pending_adoptions_.erase(adoption);
      }
      if (event.id < dep_started_.size()) {
        dep_started_[event.id] = true;
        if (dep_counted_ready_[event.id]) {
          dep_counted_ready_[event.id] = false;
          --ready_width_;
        }
      }
      break;
    }
    case InspectorEventKind::kTaskEnd:
      ++gpu.tasks_executed;
      if (occ_armed_) {
        // Sharing mode: busy time is the wall time the running set stays
        // non-empty, not summed task spans (co-runners would double-count).
        OccLoad& load = occ_[event.gpu];
        occ_accrue(load, event.time_us);
        const std::uint32_t warps =
            event.id < occ_task_warps_.size() ? occ_task_warps_[event.id] : 0;
        load.active_warps -= std::min(load.active_warps, warps);
        if (load.running > 0 && --load.running == 0) {
          gpu.busy_us += event.time_us - load.busy_open_us;
        }
      } else {
        gpu.busy_us += event.time_us - scratch.task_open_us;
      }
      if (options_.collect_trace) {
        trace_.events.push_back(
            {event.time_us, TraceKind::kTaskEnd, event.gpu, event.id});
      }
      // A finished task closes any recovery still waiting on it.
      for (std::size_t i = 0; i < pending_recoveries_.size();) {
        PendingRecovery& pending = pending_recoveries_[i];
        auto it = std::find(pending.outstanding.begin(),
                            pending.outstanding.end(), event.id);
        if (it != pending.outstanding.end()) pending.outstanding.erase(it);
        if (pending.outstanding.empty()) {
          report_.faults.recovery_latency_us.push_back(event.time_us -
                                                       pending.loss_time_us);
          pending_recoveries_.erase(pending_recoveries_.begin() +
                                    static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      break;
    case InspectorEventKind::kGpuLost:
      ++report_.faults.gpu_losses;
      if (occ_armed_) occ_close_gpu(event.gpu, event.time_us);
      if (event.aux == 0) {
        // Nothing was orphaned: recovery is instantaneous.
        report_.faults.recovery_latency_us.push_back(0.0);
      } else {
        pending_recoveries_.push_back({event.time_us, {}});
      }
      break;
    case InspectorEventKind::kCapacityShock:
      ++report_.faults.capacity_shocks;
      break;
    case InspectorEventKind::kTransferRetry:
      ++report_.faults.transfer_retries;
      report_.faults.wasted_transfer_bytes += event.bytes;
      break;
    case InspectorEventKind::kTaskReclaimed:
      ++report_.faults.tasks_reclaimed;
      if (!pending_recoveries_.empty()) {
        pending_recoveries_.back().outstanding.push_back(event.id);
      }
      // `event.gpu` is the dead GPU; the attribution closes at the task's
      // next start. A second loss of the same (re-reclaimed) task just
      // refreshes the origin.
      pending_adoptions_[event.id] = event.gpu;
      break;
    case InspectorEventKind::kNotifyTaskComplete:
    case InspectorEventKind::kNotifyDataLoaded:
    case InspectorEventKind::kNotifyDataEvicted:
    case InspectorEventKind::kNotifyGpuLost:
      break;
    case InspectorEventKind::kJobArrival:
    case InspectorEventKind::kJobComplete:
    case InspectorEventKind::kJobShed:
    case InspectorEventKind::kTaskReleased:
    case InspectorEventKind::kTaskCancelled:
      // Serving statistics are computed by serve::JobTracker and merged into
      // the report by serve::ServeEngine.
      break;
    case InspectorEventKind::kCheckpoint:
      ++report_.faults.checkpoints.taken;
      report_.faults.checkpoints.payload_bytes += event.bytes;
      // Bus time the snapshot drain occupies on the write-back channel —
      // the same overhead model the engine accounts.
      report_.faults.checkpoints.overhead_us +=
          platform_.bus_latency_us +
          static_cast<double>(event.bytes) /
              platform_.bus_bandwidth_bytes_per_s * 1e6;
      break;
    case InspectorEventKind::kProgressRestored:
      ++report_.faults.checkpoints.tasks_restored;
      report_.faults.checkpoints.compute_saved_us +=
          static_cast<double>(event.aux) / 1e6 *
          platform_.compute_time_us(graph_->task_flops(event.id), event.gpu);
      break;
    case InspectorEventKind::kReplicaCreate:
      ++report_.faults.replicas.created;
      report_.faults.replicas.bytes += event.bytes;
      break;
    case InspectorEventKind::kReplicaShed:
      ++report_.faults.replicas.shed;
      break;
    case InspectorEventKind::kReplicaProtect:
      ++report_.faults.replicas.protected_sole_survivor;
      break;
    case InspectorEventKind::kReplicaRelease:
      ++report_.faults.replicas.released;
      break;
    case InspectorEventKind::kReplayDivergence:
      report_.faults.replay_divergence.push_back(
          {event.gpu, event.id, event.aux});
      break;
    case InspectorEventKind::kHostFetchStart:
      if (event.aux < report_.cluster.per_node.size()) {
        ++report_.cluster.per_node[event.aux].remote_fetches;
      }
      break;
    case InspectorEventKind::kHostCacheFill:
      ++report_.cluster.host_cache_fills;
      if (event.aux < report_.cluster.per_node.size()) {
        ++report_.cluster.per_node[event.aux].host_cache_fills;
      }
      break;
    case InspectorEventKind::kHostCacheEvict:
      ++report_.cluster.host_cache_evictions;
      if (event.aux < report_.cluster.per_node.size()) {
        ++report_.cluster.per_node[event.aux].host_cache_evictions;
      }
      break;
    case InspectorEventKind::kEdgeReleased:
      ++report_.dependencies.edges_released;
      if (event.aux < dep_pending_.size() && dep_pending_[event.aux] > 0) {
        --dep_pending_[event.aux];
      }
      break;
    case InspectorEventKind::kTaskEnabled:
      ++report_.dependencies.tasks_enabled;
      if (event.id < dep_counted_ready_.size() &&
          !dep_counted_ready_[event.id] && !dep_started_[event.id]) {
        dep_counted_ready_[event.id] = true;
        ++ready_width_;
        report_.dependencies.max_ready_width =
            std::max(report_.dependencies.max_ready_width,
                     static_cast<std::uint32_t>(ready_width_));
      }
      break;
    case InspectorEventKind::kTaskUnretired:
      ++report_.dependencies.tasks_unretired;
      // The completion on the dead GPU rolls back; the re-run on a survivor
      // counts instead (its busy time stays — the compute really happened).
      ++report_.faults.tasks_reclaimed;
      if (gpu.tasks_executed > 0) --gpu.tasks_executed;
      if (!pending_recoveries_.empty()) {
        pending_recoveries_.back().outstanding.push_back(event.id);
      }
      pending_adoptions_[event.id] = event.gpu;
      if (event.id < dep_started_.size()) {
        // The task re-enters the ready frontier (its own predecessors are
        // still retired); successors it had enabled leave it.
        dep_started_[event.id] = false;
        if (!dep_counted_ready_[event.id]) {
          dep_counted_ready_[event.id] = true;
          ++ready_width_;
          report_.dependencies.max_ready_width =
              std::max(report_.dependencies.max_ready_width,
                       static_cast<std::uint32_t>(ready_width_));
        }
        for (core::TaskId succ : graph_->successors(event.id)) {
          const bool was_zero = dep_pending_[succ]++ == 0;
          if (was_zero && dep_counted_ready_[succ]) {
            dep_counted_ready_[succ] = false;
            --ready_width_;
          }
        }
      }
      break;
    case InspectorEventKind::kNodeDrainStart:
      report_.autoscaling.enabled = true;
      drain_open_us_[event.id] = event.time_us;
      break;
    case InspectorEventKind::kTaskDrained:
      ++report_.autoscaling.tasks_drained;
      break;
    case InspectorEventKind::kDataMigrateStart:
      break;
    case InspectorEventKind::kDataMigrated:
      ++report_.autoscaling.migrations;
      report_.autoscaling.migrated_bytes += event.bytes;
      break;
    case InspectorEventKind::kNodeDrained: {
      ++report_.autoscaling.nodes_drained;
      auto open = drain_open_us_.find(event.id);
      const double latency =
          open != drain_open_us_.end() ? event.time_us - open->second : 0.0;
      if (open != drain_open_us_.end()) drain_open_us_.erase(open);
      report_.autoscaling.drain_latency_total_us += latency;
      report_.autoscaling.drain_latency_max_us =
          std::max(report_.autoscaling.drain_latency_max_us, latency);
      break;
    }
    case InspectorEventKind::kNodeJoinStart:
      report_.autoscaling.enabled = true;
      break;
    case InspectorEventKind::kNodeWarmFill:
      ++report_.autoscaling.warm_fills;
      report_.autoscaling.warm_fill_bytes += event.bytes;
      break;
    case InspectorEventKind::kNodeJoined:
      ++report_.autoscaling.nodes_joined;
      break;
    case InspectorEventKind::kNodeLost:
      report_.autoscaling.enabled = true;
      ++report_.autoscaling.node_losses;
      // The node's GPUs all died, but the loss recovers in one pass: the
      // per-GPU loss tally grows by the node's span while a single
      // recovery-latency entry tracks the combined orphan re-run.
      report_.faults.gpu_losses += platform_.node_gpu_end(event.id) -
                                   platform_.node_gpu_begin(event.id);
      if (occ_armed_) {
        for (std::uint32_t g = platform_.node_gpu_begin(event.id);
             g < platform_.node_gpu_end(event.id); ++g) {
          occ_close_gpu(g, event.time_us);
        }
      }
      if (event.aux == 0) {
        report_.faults.recovery_latency_us.push_back(0.0);
      } else {
        pending_recoveries_.push_back({event.time_us, {}});
      }
      break;
    case InspectorEventKind::kOccupancyConfig:
      report_.occupancy.enabled = true;
      report_.occupancy.threshold = static_cast<double>(event.aux) / 1e6;
      report_.occupancy.total_warps = event.id;
      report_.occupancy.budget_warps = static_cast<std::uint32_t>(event.bytes);
      report_.occupancy.per_gpu.assign(report_.per_gpu.size(),
                                       RunReport::Occupancy::Gpu{});
      occ_armed_ = true;
      occ_.assign(report_.per_gpu.size(), OccLoad{});
      occ_task_warps_.assign(graph_->num_tasks(), 0);
      break;
    case InspectorEventKind::kTaskAdmitted: {
      OccLoad& load = occ_[event.gpu];
      occ_accrue(load, event.time_us);
      report_.occupancy.co_run_pairs += load.running;
      if (load.running == 0) load.busy_open_us = event.time_us;
      ++load.running;
      load.active_warps += static_cast<std::uint32_t>(event.bytes);
      if (event.id < occ_task_warps_.size()) {
        occ_task_warps_[event.id] = static_cast<std::uint32_t>(event.bytes);
      }
      RunReport::Occupancy::Gpu& occ_gpu = report_.occupancy.per_gpu[event.gpu];
      occ_gpu.peak_warps = std::max(occ_gpu.peak_warps, load.active_warps);
      ++report_.occupancy.admissions;
      break;
    }
    case InspectorEventKind::kAdmissionRejected:
      ++report_.occupancy.rejections;
      break;
    case InspectorEventKind::kLinkDegraded:
      report_.network_faults.enabled = true;
      ++report_.network_faults.link_degradations;
      break;
    case InspectorEventKind::kLinkPartitioned:
      report_.network_faults.enabled = true;
      ++report_.network_faults.link_partitions;
      break;
    case InspectorEventKind::kLinkRestored:
      ++report_.network_faults.link_heals;
      break;
    case InspectorEventKind::kFetchTimeout:
      report_.network_faults.enabled = true;
      ++report_.network_faults.fetch_timeouts;
      break;
    case InspectorEventKind::kFetchHedged:
      ++report_.network_faults.hedged_fetches;
      break;
    case InspectorEventKind::kHedgeWasted:
      ++report_.network_faults.hedges_wasted;
      report_.network_faults.hedge_wasted_bytes += event.bytes;
      break;
    case InspectorEventKind::kNodeSuspected:
      report_.network_faults.enabled = true;
      ++report_.network_faults.nodes_suspected;
      break;
    case InspectorEventKind::kNodeSuspicionCleared:
      ++report_.network_faults.suspicions_cleared;
      break;
    case InspectorEventKind::kNodeSuspicionEscalated:
      ++report_.network_faults.suspicions_escalated;
      break;
    case InspectorEventKind::kJobsFused:
      report_.slo.enabled = true;
      ++report_.slo.jobs_fused;
      break;
    case InspectorEventKind::kSuperTaskLaunched:
      report_.slo.enabled = true;
      ++report_.slo.super_tasks;
      break;
    case InspectorEventKind::kBatchUnfused:
      ++report_.slo.batches_unfused;
      break;
    case InspectorEventKind::kEvictionVetoed:
      report_.slo.enabled = true;
      ++report_.slo.evictions_vetoed;
      break;
    case InspectorEventKind::kTierProtect:
      report_.slo.enabled = true;
      ++report_.slo.protections;
      break;
    case InspectorEventKind::kTierUnprotect:
      break;
  }
}

void RunReportCollector::on_run_end(double makespan_us) {
  report_.makespan_us = makespan_us;
  report_.achieved_gflops =
      makespan_us > 0.0 ? report_.total_flops / (makespan_us * 1e3) : 0.0;

  // Recoveries whose orphans never re-ran close at run end (defensive: the
  // engine guarantees orphans re-run, so this only fires on partial runs).
  for (const PendingRecovery& pending : pending_recoveries_) {
    report_.faults.recovery_latency_us.push_back(makespan_us -
                                                 pending.loss_time_us);
  }
  pending_recoveries_.clear();
  for (double latency : report_.faults.recovery_latency_us) {
    report_.faults.max_recovery_latency_us =
        std::max(report_.faults.max_recovery_latency_us, latency);
  }

  // Load balance.
  std::uint64_t max_tasks = 0;
  std::uint64_t min_tasks = ~std::uint64_t{0};
  std::uint64_t total_tasks = 0;
  double max_busy = 0.0;
  double total_busy = 0.0;
  for (std::size_t gpu = 0; gpu < report_.per_gpu.size(); ++gpu) {
    RunReport::Gpu& g = report_.per_gpu[gpu];
    g.peak_committed_bytes = gpu_scratch_[gpu].peak_committed;
    max_tasks = std::max(max_tasks, g.tasks_executed);
    min_tasks = std::min(min_tasks, g.tasks_executed);
    total_tasks += g.tasks_executed;
    max_busy = std::max(max_busy, g.busy_us);
    total_busy += g.busy_us;
    if (!g.eviction_policy.empty() || g.evictions > 0) {
      report_.evictions_by_policy[g.eviction_policy.empty()
                                      ? "unknown"
                                      : g.eviction_policy] += g.evictions;
    }
  }
  const double num_gpus = static_cast<double>(report_.per_gpu.size());
  report_.load_balance.max_tasks = max_tasks;
  report_.load_balance.min_tasks =
      report_.per_gpu.empty() ? 0 : min_tasks;
  report_.load_balance.mean_tasks =
      num_gpus > 0.0 ? static_cast<double>(total_tasks) / num_gpus : 0.0;
  const double mean_busy = num_gpus > 0.0 ? total_busy / num_gpus : 0.0;
  report_.load_balance.busy_imbalance =
      mean_busy > 0.0 ? max_busy / mean_busy : 0.0;

  // Prefetch hit rate.
  const std::uint64_t fetches =
      report_.prefetch.demand_fetches + report_.prefetch.prefetch_fetches;
  report_.prefetch.hit_rate =
      fetches > 0 ? static_cast<double>(report_.prefetch.prefetch_fetches) /
                        static_cast<double>(fetches)
                  : 0.0;

  // Channels: close any transfer still on a wire at run end, then bucket.
  report_.channels.clear();
  for (std::size_t index = 0; index < channels_.size(); ++index) {
    ChannelState& state = channels_[index];
    if (state.open_since_us >= 0.0) {
      state.busy_us += makespan_us - state.open_since_us;
      state.intervals.emplace_back(state.open_since_us, makespan_us);
      state.open_since_us = -1.0;
    }
    if (state.transfers == 0 && index != kChannelHostBus) continue;
    RunReport::Channel channel;
    channel.name = inspector_channel_name(static_cast<std::uint32_t>(index));
    channel.transfers = state.transfers;
    channel.bytes = state.bytes;
    channel.busy_us = state.busy_us;
    channel.occupancy = makespan_us > 0.0 ? state.busy_us / makespan_us : 0.0;
    const std::uint32_t buckets = std::max(1u, options_.occupancy_buckets);
    channel.occupancy_buckets.assign(buckets, 0.0);
    if (makespan_us > 0.0) {
      const double width = makespan_us / buckets;
      for (const auto& [begin, end] : state.intervals) {
        const double clipped_end = std::min(end, makespan_us);
        std::size_t bucket = static_cast<std::size_t>(begin / width);
        for (; bucket < buckets; ++bucket) {
          const double bucket_begin = static_cast<double>(bucket) * width;
          const double bucket_end = bucket_begin + width;
          const double overlap =
              std::min(clipped_end, bucket_end) - std::max(begin, bucket_begin);
          if (overlap <= 0.0) break;
          channel.occupancy_buckets[bucket] += overlap / width;
        }
      }
      for (double& fraction : channel.occupancy_buckets) {
        fraction = std::min(fraction, 1.0);
      }
    }
    report_.channels.push_back(std::move(channel));
  }

  // Occupancy: close each GPU's time-weighted integral at the makespan and
  // normalise to a mean occupancy fraction of the device warp budget.
  if (occ_armed_) {
    for (std::size_t gpu = 0; gpu < occ_.size(); ++gpu) {
      occ_accrue(occ_[gpu], makespan_us);
      report_.occupancy.per_gpu[gpu].mean_occupancy =
          makespan_us > 0.0 && report_.occupancy.total_warps > 0
              ? occ_[gpu].integral /
                    (makespan_us *
                     static_cast<double>(report_.occupancy.total_warps))
              : 0.0;
    }
  }

  // Cluster: fold per-GPU work into the owning node and total the network
  // channels (transfers/bytes are counted at kTransferStart, so they are
  // final by now).
  if (report_.cluster.enabled) {
    for (std::uint32_t gpu = 0; gpu < report_.per_gpu.size(); ++gpu) {
      const RunReport::Gpu& g = report_.per_gpu[gpu];
      RunReport::Cluster::Node& node =
          report_.cluster.per_node[platform_.node_of(gpu)];
      node.tasks_executed += g.tasks_executed;
      node.busy_us += g.busy_us;
      node.loads += g.loads;
      node.bytes_loaded += g.bytes_loaded;
    }
    for (std::size_t index = kChannelNetBase;
         index < channels_.size() &&
         index < kChannelNetBase + report_.cluster.num_nodes;
         ++index) {
      report_.cluster.network_transfers += channels_[index].transfers;
      report_.cluster.network_bytes += channels_[index].bytes;
    }
  }
}

}  // namespace mg::sim
