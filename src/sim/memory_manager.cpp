#include "sim/memory_manager.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace mg::sim {

using core::DataId;
using core::kInvalidData;

MemoryManager::MemoryManager(core::GpuId gpu, const core::TaskGraph& graph,
                             std::uint64_t capacity_bytes,
                             TransferRouter& router)
    : gpu_(gpu),
      graph_(graph),
      capacity_(capacity_bytes),
      router_(router),
      residency_(graph.num_data(), Residency::kAbsent),
      pins_(graph.num_data(), 0),
      resident_pos_(graph.num_data(), kNoPos),
      replica_(graph.num_data(), 0),
      protected_(graph.num_data(), 0) {}

void MemoryManager::fetch(DataId data, bool demand) {
  MG_DCHECK(policy_ != nullptr && observer_ != nullptr);
  if (!active_) return;
  // A fetch means the scheduler wants the data here anyway: a proactive
  // replica of it is promoted to regular residency (no longer shed-first).
  replica_[data] = 0;
  if (residency_[data] != Residency::kAbsent) {
    // A hint transfer may still be sitting in the low-priority queue; a
    // demand for the same data makes it urgent.
    if (demand && residency_[data] == Residency::kFetching) {
      router_.promote(gpu_, data);
    }
    return;
  }
  const std::uint64_t size = graph_.data_size(data);
  MG_CHECK_MSG(size <= capacity_, "data larger than GPU memory");
  if (!make_room(size)) {
    // Deduplicate: an entry for this data may already be parked; keep a
    // single entry and upgrade it to demand priority if needed.
    for (auto& stalled : stalled_) {
      if (stalled.data == data) {
        stalled.demand = stalled.demand || demand;
        return;
      }
    }
    stalled_.push_back(StalledFetch{data, demand});
    MG_TRACE("gpu%u fetch of data %u stalled (%zu stalled)", gpu_, data,
             stalled_.size());
    return;
  }
  start_transfer(data, demand);
}

bool MemoryManager::fetch_hint(DataId data, bool may_evict) {
  MG_DCHECK(policy_ != nullptr && observer_ != nullptr);
  if (!active_) return true;
  replica_[data] = 0;
  if (residency_[data] != Residency::kAbsent) return true;
  const std::uint64_t size = graph_.data_size(data);
  // Written overflow-safe: a capacity shock can leave committed_ above
  // capacity_, where `capacity_ - committed_` would wrap.
  if (committed_ + size > capacity_) {
    if (!may_evict) return false;
    if (!make_room(size)) return false;
  }
  start_transfer(data, /*demand=*/false, TransferPriority::kLow);
  return true;
}

bool MemoryManager::fetch_replica(DataId data) {
  MG_DCHECK(policy_ != nullptr && observer_ != nullptr);
  if (!active_) return true;
  if (residency_[data] != Residency::kAbsent) return true;
  const std::uint64_t size = graph_.data_size(data);
  if (committed_ + size > capacity_) return false;  // free space only
  replica_[data] = 1;
  start_transfer(data, /*demand=*/false, TransferPriority::kLow);
  return true;
}

void MemoryManager::protect(DataId data) {
  if (!active_) return;
  protected_[data] = 1;
  replica_[data] = 0;  // a protected copy is not shedable
}

void MemoryManager::unprotect(DataId data) {
  protected_[data] = 0;
  if (!stalled_.empty()) retry_stalled();
}

void MemoryManager::start_transfer(DataId data, bool demand,
                                   TransferPriority priority) {
  committed_ += graph_.data_size(data);
  MG_DCHECK(committed_ <= capacity_);
  residency_[data] = Residency::kFetching;
  observer_->on_fetch_started(gpu_, data, demand);
  router_.request_transfer(gpu_, data, graph_.data_size(data),
                           [this, data] { on_transfer_complete(data); },
                           priority);
}

void MemoryManager::on_transfer_complete(DataId data) {
  // A transfer that was already on the wire (or in retry backoff) when the
  // GPU died still delivers; drop it on the floor.
  if (!active_) return;
  MG_DCHECK(residency_[data] == Residency::kFetching);
  residency_[data] = Residency::kPresent;
  resident_pos_[data] = static_cast<std::uint32_t>(resident_.size());
  resident_.push_back(data);
  policy_->on_load(gpu_, data);
  // Observer first: the engine pins head-of-pipeline inputs the moment they
  // land, so that the stalled-fetch retry below cannot evict the data this
  // very transfer delivered (it becomes an eviction candidate the moment it
  // is resident and unpinned).
  observer_->on_data_loaded(gpu_, data);
  retry_stalled();
}

bool MemoryManager::make_room(std::uint64_t bytes) {
  MG_DCHECK(bytes <= capacity_);
  // Overflow-safe form of `capacity_ - committed_ < bytes`: a capacity
  // shock can leave committed_ above capacity_.
  while (committed_ + bytes > capacity_) {
    // Proactive replicas are shed first (oldest first), before the eviction
    // policy gets a say: they are insurance, not working-set data.
    DataId replica_victim = kInvalidData;
    for (DataId data : resident_) {
      if (replica_[data] != 0 && pins_[data] == 0 && protected_[data] == 0 &&
          !vetoed(data)) {
        replica_victim = data;
        break;
      }
    }
    if (replica_victim != kInvalidData) {
      ++replicas_shed_;
      observer_->on_replica_shed(gpu_, replica_victim);
      evict(replica_victim);
      continue;
    }
    // Candidates: resident, unpinned, unprotected and not under an SLO
    // eviction veto. In-flight data are absent from resident_ by
    // construction.
    std::vector<DataId> candidates;
    candidates.reserve(resident_.size());
    for (DataId data : resident_) {
      if (pins_[data] != 0 || protected_[data] != 0) continue;
      if (vetoed(data)) {
        observer_->on_eviction_vetoed(gpu_, data);
        continue;
      }
      candidates.push_back(data);
    }
    if (candidates.empty()) return false;
    const DataId victim = policy_->choose_victim(gpu_, candidates);
    if (victim == kInvalidData) return false;
    MG_DCHECK(std::find(candidates.begin(), candidates.end(), victim) !=
              candidates.end());
    evict(victim);
  }
  return true;
}

void MemoryManager::evict(DataId victim) {
  MG_DCHECK(residency_[victim] == Residency::kPresent);
  MG_DCHECK(pins_[victim] == 0);
  MG_DCHECK(protected_[victim] == 0);
  replica_[victim] = 0;
  residency_[victim] = Residency::kAbsent;
  remove_resident(victim);
  committed_ -= graph_.data_size(victim);
  ++evictions_;
  policy_->on_evict(gpu_, victim);
  observer_->on_data_evicted(gpu_, victim);
}

void MemoryManager::remove_resident(DataId data) {
  const std::uint32_t pos = resident_pos_[data];
  MG_DCHECK(pos != kNoPos);
  const DataId moved = resident_.back();
  resident_[pos] = moved;
  resident_pos_[moved] = pos;
  resident_.pop_back();
  resident_pos_[data] = kNoPos;
}

void MemoryManager::pin(DataId data) {
  if (!active_) return;
  // Always-on check: pinning absent data would silently wedge the pipeline
  // (the engine would believe the input is protected and never re-fetch it).
  MG_CHECK_MSG(residency_[data] == Residency::kPresent,
               "pin of non-resident data");
  ++pins_[data];
}

void MemoryManager::unpin(DataId data) {
  if (!active_) return;
  MG_DCHECK(pins_[data] > 0);
  --pins_[data];
  if (pins_[data] == 0 && !stalled_.empty()) retry_stalled();
}

void MemoryManager::touch(DataId data) {
  if (!active_) return;
  policy_->on_use(gpu_, data);
}

bool MemoryManager::try_reserve_scratch(std::uint64_t bytes) {
  if (!active_) return false;
  if (bytes == 0) return true;
  MG_CHECK_MSG(bytes <= capacity_, "scratch larger than GPU memory");
  if (!make_room(bytes)) return false;
  committed_ += bytes;
  MG_DCHECK(committed_ <= capacity_);
  return true;
}

void MemoryManager::release_scratch(std::uint64_t bytes) {
  if (!active_) return;
  MG_DCHECK(bytes <= committed_);
  committed_ -= bytes;
  if (!stalled_.empty()) retry_stalled();
}

std::uint32_t MemoryManager::emergency_evict() {
  std::uint32_t evicted = 0;
  while (committed_ > capacity_) {
    DataId replica_victim = kInvalidData;
    for (DataId data : resident_) {
      if (replica_[data] != 0 && pins_[data] == 0 && protected_[data] == 0 &&
          !vetoed(data)) {
        replica_victim = data;
        break;
      }
    }
    if (replica_victim != kInvalidData) {
      ++replicas_shed_;
      observer_->on_replica_shed(gpu_, replica_victim);
      evict(replica_victim);
      ++evicted;
      continue;
    }
    std::vector<DataId> candidates;
    candidates.reserve(resident_.size());
    for (DataId data : resident_) {
      if (pins_[data] != 0 || protected_[data] != 0) continue;
      if (vetoed(data)) {
        observer_->on_eviction_vetoed(gpu_, data);
        continue;
      }
      candidates.push_back(data);
    }
    if (candidates.empty()) break;  // pinned/in-flight overhang drains later
    DataId victim = policy_->choose_victim(gpu_, candidates);
    // Under emergency pressure the policy does not get to decline: fall
    // back to the oldest candidate rather than staying over capacity.
    if (victim == kInvalidData) victim = candidates.front();
    evict(victim);
    ++evicted;
  }
  return evicted;
}

void MemoryManager::deactivate() {
  active_ = false;
  std::fill(residency_.begin(), residency_.end(), Residency::kAbsent);
  std::fill(pins_.begin(), pins_.end(), 0u);
  std::fill(resident_pos_.begin(), resident_pos_.end(), kNoPos);
  std::fill(replica_.begin(), replica_.end(), std::uint8_t{0});
  std::fill(protected_.begin(), protected_.end(), std::uint8_t{0});
  resident_.clear();
  stalled_.clear();
  committed_ = 0;
}

bool MemoryManager::quiescent() const {
  if (!stalled_.empty()) return false;
  std::uint64_t resident_bytes = 0;
  for (DataId data : resident_) resident_bytes += graph_.data_size(data);
  // committed_ = resident + in-flight + scratch, so equality means neither
  // a fetch nor a scratch reservation is outstanding.
  return committed_ == resident_bytes;
}

void MemoryManager::wipe_resident() {
  if (!active_) return;
  MG_DCHECK(quiescent());
  for (DataId data : resident_) {
    MG_DCHECK(pins_[data] == 0);
    residency_[data] = Residency::kAbsent;
    resident_pos_[data] = kNoPos;
    replica_[data] = 0;
    protected_[data] = 0;
    committed_ -= graph_.data_size(data);
    policy_->on_evict(gpu_, data);
  }
  resident_.clear();
  MG_DCHECK(committed_ == 0);
}

void MemoryManager::retry_stalled() {
  if (in_retry_ || stalled_.empty()) return;
  in_retry_ = true;
  // Work on a local snapshot: eviction callbacks can re-enter fetch() and
  // park new entries on stalled_ while we iterate.
  std::deque<StalledFetch> work = std::move(stalled_);
  stalled_.clear();
  std::deque<StalledFetch> remaining;
  // Demand fetches first, then prefetches, each in FIFO order. Entries whose
  // data is no longer absent are stale (a later fetch succeeded) and dropped.
  for (int demand_pass = 1; demand_pass >= 0; --demand_pass) {
    for (const StalledFetch& stalled : work) {
      if (stalled.demand != (demand_pass == 1)) continue;
      if (residency_[stalled.data] != Residency::kAbsent) continue;  // stale
      if (make_room(graph_.data_size(stalled.data))) {
        start_transfer(stalled.data, stalled.demand);
      } else {
        remaining.push_back(stalled);
      }
    }
  }
  // Merge entries that still could not be served with any entries parked by
  // re-entrant fetches, deduplicating by data id.
  for (const StalledFetch& stalled : remaining) {
    bool merged = false;
    for (auto& existing : stalled_) {
      if (existing.data == stalled.data) {
        existing.demand = existing.demand || stalled.demand;
        merged = true;
        break;
      }
    }
    if (!merged) stalled_.push_back(stalled);
  }
  in_retry_ = false;
}

}  // namespace mg::sim
