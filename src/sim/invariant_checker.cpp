#include "sim/invariant_checker.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace mg::sim {

namespace {

std::string describe(const char* what, const InspectorEvent& event) {
  char buffer[192];
  std::snprintf(buffer, sizeof buffer, "%s (gpu=%u id=%u t=%.3fus)", what,
                event.gpu, event.id, event.time_us);
  return buffer;
}

}  // namespace

InvariantChecker::InvariantChecker() : InvariantChecker(Options{}) {}

InvariantChecker::InvariantChecker(Options options) : options_(options) {}

void InvariantChecker::on_run_begin(const core::TaskGraph& graph,
                                    const core::Platform& platform,
                                    std::string_view scheduler_name) {
  (void)scheduler_name;
  graph_ = &graph;
  platform_ = platform;
  gpus_.assign(platform.num_gpus, GpuState{});
  for (GpuState& gpu : gpus_) {
    gpu.resident.assign(graph.num_data(), 0);
    gpu.in_flight.assign(graph.num_data(), 0);
    gpu.prot.assign(graph.num_data(), 0);
    gpu.capacity_bytes = platform.gpu_memory_bytes;
  }
  started_.assign(graph.num_tasks(), 0);
  ended_.assign(graph.num_tasks(), 0);
  complete_notified_.assign(graph.num_tasks(), 0);
  ran_on_.assign(graph.num_tasks(), core::kInvalidGpu);
  streaming_seen_ = false;
  released_.assign(graph.num_tasks(), 0);
  cancelled_.assign(graph.num_tasks(), 0);
  job_state_.clear();
  slo_protected_.assign(graph.num_data(), 0);
  if (graph.has_dependencies()) {
    dep_pending_.assign(graph.num_tasks(), 0);
    dep_release_count_.assign(graph.num_tasks(), 0);
    for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
      dep_pending_[task] = graph.num_predecessors(task);
    }
  } else {
    dep_pending_.clear();
    dep_release_count_.clear();
  }
  checkpoint_ppm_.assign(graph.num_tasks(), 0);
  divergence_seen_.assign(platform.num_gpus, 0);
  wire_active_.assign(inspector_channel_count(platform), 0);
  node_fetching_.assign(
      platform.is_cluster() ? platform.num_nodes : 0,
      std::vector<std::uint32_t>(graph.num_data(), 0));
  node_cached_.assign(platform.is_cluster() ? platform.num_nodes : 0,
                      std::vector<std::uint8_t>(graph.num_data(), 0));
  net_bytes_delivered_ = 0;
  host_fill_bytes_ = 0;
  node_status_.assign(platform.is_cluster() ? platform.num_nodes : 0,
                      NodeStatus::kActive);
  migrate_start_bytes_ = 0;
  migrate_done_bytes_ = 0;
  warm_fill_bytes_ = 0;
  const std::uint32_t nodes = platform.is_cluster() ? platform.num_nodes : 0;
  link_state_.assign(static_cast<std::size_t>(nodes) * nodes, 0);
  timeout_outstanding_.assign(nodes,
                              std::vector<std::uint8_t>(graph.num_data(), 0));
  suspected_.assign(nodes, 0);
  hedge_wasted_bytes_ = 0;
  occ_armed_ = false;
  occ_budget_warps_ = 0;
  occ_task_warps_.clear();
  occ_admitted_.clear();
  last_time_us_ = 0.0;
  events_ = 0;
  recent_.clear();
  ok_ = true;
  report_ = Report{};
}

void InvariantChecker::remember(const InspectorEvent& event) {
  recent_.push_back(format_inspector_event(event));
  if (recent_.size() > options_.log_window) recent_.pop_front();
}

std::string InvariantChecker::render_excerpt() const {
  std::string excerpt;
  for (const std::string& line : recent_) {
    excerpt += "  ";
    excerpt += line;
    excerpt += '\n';
  }
  return excerpt;
}

void InvariantChecker::fail_text(const std::string& message) {
  if (!ok_) return;  // keep the first violation
  ok_ = false;
  report_.ok = false;
  report_.error = message;
  report_.excerpt = render_excerpt();
  if (options_.fail_fast) {
    std::fprintf(stderr,
                 "InvariantChecker: %s\nlast %zu events before the "
                 "violation:\n%s",
                 message.c_str(), recent_.size(), report_.excerpt.c_str());
    std::fflush(stderr);
    std::abort();
  }
}

void InvariantChecker::fail(const InspectorEvent& event, const char* what) {
  fail_text(describe(what, event));
}

void InvariantChecker::on_event(const InspectorEvent& event) {
  if (!ok_) return;  // a recorded violation poisons the rest of the run
  if (graph_ == nullptr) {
    return fail_text("on_event before on_run_begin");
  }
  ++events_;
  remember(event);

  if (event.time_us + 1e-9 < last_time_us_) {
    return fail(event, "time went backwards");
  }
  last_time_us_ = std::max(last_time_us_, event.time_us);
  if (event.gpu >= gpus_.size()) return fail(event, "unknown gpu");
  GpuState& gpu = gpus_[event.gpu];
  const std::uint32_t num_data = graph_->num_data();
  const std::uint32_t num_tasks = graph_->num_tasks();

  // Degraded-model liveness: a dead GPU performs no activity. Wire events
  // are exempt (a transfer already on the wire at the loss still drains),
  // and the fault events themselves carry their own liveness rules.
  switch (event.kind) {
    case InspectorEventKind::kTransferStart:
    case InspectorEventKind::kTransferEnd:
    case InspectorEventKind::kGpuLost:
    case InspectorEventKind::kCapacityShock:
    case InspectorEventKind::kTaskReclaimed:
    case InspectorEventKind::kNotifyGpuLost:
    // Job lifecycle and release events are engine-level, not GPU activity
    // (they are published with gpu=0, which may well be a dead GPU).
    case InspectorEventKind::kJobArrival:
    case InspectorEventKind::kJobComplete:
    case InspectorEventKind::kJobShed:
    case InspectorEventKind::kTaskReleased:
    case InspectorEventKind::kTaskCancelled:
    // A replay divergence is reported *about* the dead GPU, not by it.
    case InspectorEventKind::kReplayDivergence:
    // A network fetch keeps running after its initiating GPU dies: the fill
    // and any cache eviction it triggers are node-level, not GPU activity.
    case InspectorEventKind::kHostCacheFill:
    case InspectorEventKind::kHostCacheEvict:
    // Dependency release machinery is engine-level: an un-retirement is
    // published *about* the dead GPU, and shed-job edge releases carry
    // gpu=0, which may well be dead.
    case InspectorEventKind::kEdgeReleased:
    case InspectorEventKind::kTaskEnabled:
    case InspectorEventKind::kTaskUnretired:
    // Topology-change events are engine-level: a node loss is published
    // *about* the GPUs it kills, and the drain/join lifecycle carries a
    // representative GPU that stays alive (inactive, not dead) throughout.
    case InspectorEventKind::kNodeDrainStart:
    case InspectorEventKind::kTaskDrained:
    case InspectorEventKind::kDataMigrateStart:
    case InspectorEventKind::kDataMigrated:
    case InspectorEventKind::kNodeDrained:
    case InspectorEventKind::kNodeJoinStart:
    case InspectorEventKind::kNodeWarmFill:
    case InspectorEventKind::kNodeJoined:
    case InspectorEventKind::kNodeLost:
    // The occupancy config is engine-level, published once with gpu=0.
    case InspectorEventKind::kOccupancyConfig:
    // Network-fault events are node-level: link windows carry node ids in
    // the gpu field, and the fetch/suspicion events name a representative
    // GPU of a node that may well hold dead GPUs.
    case InspectorEventKind::kLinkDegraded:
    case InspectorEventKind::kLinkPartitioned:
    case InspectorEventKind::kLinkRestored:
    case InspectorEventKind::kFetchTimeout:
    case InspectorEventKind::kFetchHedged:
    case InspectorEventKind::kHedgeWasted:
    case InspectorEventKind::kNodeSuspected:
    case InspectorEventKind::kNodeSuspicionCleared:
    case InspectorEventKind::kNodeSuspicionEscalated:
    // SLO batching and tier protection are engine-level (published with
    // gpu=0, which may well be dead); super-task launches and veto reports
    // happen on the executing/fetching GPU and keep the default rule.
    case InspectorEventKind::kJobsFused:
    case InspectorEventKind::kBatchUnfused:
    case InspectorEventKind::kTierProtect:
    case InspectorEventKind::kTierUnprotect:
      break;
    default:
      if (!gpu.alive) return fail(event, "activity on a dead gpu");
  }

  switch (event.kind) {
    case InspectorEventKind::kFetchStart: {
      if (event.id >= num_data) return fail(event, "fetch of unknown data");
      if (gpu.resident[event.id] != 0) {
        return fail(event, "fetch of already-resident data");
      }
      if (gpu.in_flight[event.id] != 0) {
        return fail(event, "duplicate in-flight fetch");
      }
      if (event.bytes != graph_->data_size(event.id)) {
        return fail(event, "fetch size disagrees with data size");
      }
      gpu.in_flight[event.id] = 1;
      gpu.committed_bytes += event.bytes;
      if (gpu.committed_bytes > gpu.capacity_bytes) {
        return fail(event, "memory bound exceeded (committed bytes)");
      }
      break;
    }
    case InspectorEventKind::kLoadComplete: {
      if (event.id >= num_data) return fail(event, "load of unknown data");
      if (gpu.resident[event.id] != 0) {
        return fail(event, "load of already-resident data");
      }
      if (options_.online) {
        // The fetch committed the bytes; the landing only flips residency.
        if (gpu.in_flight[event.id] == 0) {
          return fail(event, "load without a preceding fetch");
        }
        gpu.in_flight[event.id] = 0;
      } else {
        gpu.committed_bytes += graph_->data_size(event.id);
      }
      gpu.resident[event.id] = 1;
      gpu.resident_bytes += graph_->data_size(event.id);
      if (options_.online) {
        // A transfer committed before a capacity shock may land after it
        // (grandfathered); the fetch-time check already bounded the
        // commitment, so landing only needs residency <= commitment.
        if (gpu.resident_bytes > gpu.committed_bytes) {
          return fail(event, "resident bytes exceed committed bytes");
        }
      } else if (gpu.resident_bytes > gpu.capacity_bytes ||
                 gpu.committed_bytes > gpu.capacity_bytes) {
        return fail(event, "memory bound exceeded");
      }
      break;
    }
    case InspectorEventKind::kEvict: {
      if (event.id >= num_data || gpu.resident[event.id] == 0) {
        return fail(event, "evict of non-resident data");
      }
      if (event.aux != 0) return fail(event, "evict of pinned data");
      if (gpu.prot[event.id] != 0) {
        return fail(event, "evict of a protected sole-surviving replica");
      }
      if (slo_protected_[event.id] != 0) {
        return fail(event, "evict of slo-protected (vetoed) data");
      }
      if (gpu.running >= 0) {
        const auto inputs = graph_->inputs(static_cast<core::TaskId>(gpu.running));
        if (std::find(inputs.begin(), inputs.end(), event.id) != inputs.end()) {
          return fail(event, "evict of data in use by the running task");
        }
      }
      for (std::uint32_t co_runner : gpu.occ_running) {
        const auto inputs = graph_->inputs(co_runner);
        if (std::find(inputs.begin(), inputs.end(), event.id) != inputs.end()) {
          return fail(event, "evict of data in use by a co-running task");
        }
      }
      gpu.resident[event.id] = 0;
      gpu.resident_bytes -= graph_->data_size(event.id);
      gpu.committed_bytes -= graph_->data_size(event.id);
      break;
    }
    case InspectorEventKind::kScratchReserve: {
      gpu.scratch_bytes += event.bytes;
      gpu.committed_bytes += event.bytes;
      if (gpu.committed_bytes > gpu.capacity_bytes) {
        return fail(event, "memory bound exceeded (scratch)");
      }
      break;
    }
    case InspectorEventKind::kScratchRelease: {
      if (event.bytes > gpu.scratch_bytes) {
        return fail(event, "scratch release exceeds outstanding scratch");
      }
      gpu.scratch_bytes -= event.bytes;
      gpu.committed_bytes -= event.bytes;
      break;
    }
    case InspectorEventKind::kTransferStart: {
      if (event.channel >= wire_active_.size()) {
        return fail(event, "transfer on unknown channel");
      }
      if (++wire_active_[event.channel] > 1) {
        return fail(event, "overlapping transfers on one channel");
      }
      // Partition rule: no new transfer starts on a network channel while
      // the (src, dst) link is partitioned. Transfers already on the wire
      // when the window opened drain normally, so only starts are gated.
      if (!link_state_.empty() && event.channel >= kChannelNetBase &&
          event.channel < kChannelNetBase + platform_.num_nodes) {
        const std::uint32_t src = event.channel - kChannelNetBase;
        const std::uint32_t dst = platform_.node_of(event.gpu);
        if (link_state_[static_cast<std::size_t>(src) * platform_.num_nodes +
                        dst] == 2) {
          return fail(event, "transfer started across a partitioned link");
        }
      }
      break;
    }
    case InspectorEventKind::kTransferEnd: {
      if (event.channel >= wire_active_.size() ||
          wire_active_[event.channel] == 0) {
        return fail(event, "transfer end without a start");
      }
      --wire_active_[event.channel];
      if (!node_fetching_.empty() && event.channel >= kChannelNetBase &&
          event.channel < kChannelNetBase + platform_.num_nodes) {
        net_bytes_delivered_ += event.bytes;
      }
      break;
    }
    case InspectorEventKind::kWriteBackStart:
    case InspectorEventKind::kWriteBackEnd: {
      if (event.id >= num_tasks || ended_[event.id] == 0) {
        return fail(event, "write-back of a task that has not finished");
      }
      break;
    }
    case InspectorEventKind::kTaskStart: {
      if (event.id >= num_tasks) return fail(event, "start of unknown task");
      if (started_[event.id] != 0) {
        return fail(event, "task started twice (expected once)");
      }
      if (cancelled_[event.id] != 0) {
        return fail(event, "start of a cancelled task (shed job)");
      }
      if (streaming_seen_ && released_[event.id] == 0) {
        return fail(event, "start of a task before its job arrived");
      }
      if (occ_armed_) {
        if (occ_admitted_[event.id] == 0) {
          return fail(event, "task started without an admission");
        }
      } else if (gpu.running != -1) {
        return fail(event, "two tasks running on one gpu");
      }
      if (!node_status_.empty() &&
          node_status_[platform_.node_of(event.gpu)] != NodeStatus::kActive) {
        return fail(event, "task started on a non-serving node");
      }
      for (core::DataId data : graph_->inputs(event.id)) {
        if (gpu.resident[data] == 0) {
          return fail(event, "task started with missing input");
        }
      }
      if (!dep_pending_.empty()) {
        if (dep_pending_[event.id] != 0) {
          return fail(event, "task started before all predecessors retired");
        }
        // Data-version monotonicity: every earlier writer of each datum this
        // task writes must have finished (or died with its shed job).
        for (core::DataId data : graph_->writes(event.id)) {
          for (core::TaskId writer : graph_->writers(data)) {
            if (writer == event.id) break;  // writers are in version order
            if (ended_[writer] == 0 && cancelled_[writer] == 0) {
              return fail(event,
                          "task wrote a data version before an earlier "
                          "writer finished");
            }
          }
        }
      }
      started_[event.id] = 1;
      if (occ_armed_) {
        occ_admitted_[event.id] = 0;
        gpu.occ_running.push_back(event.id);
      } else {
        gpu.running = static_cast<std::int64_t>(event.id);
      }
      break;
    }
    case InspectorEventKind::kTaskEnd: {
      if (occ_armed_) {
        auto it = event.id < num_tasks
                      ? std::find(gpu.occ_running.begin(),
                                  gpu.occ_running.end(), event.id)
                      : gpu.occ_running.end();
        if (it == gpu.occ_running.end()) {
          return fail(event, "end of task that was not running");
        }
        gpu.occ_running.erase(it);
        gpu.occ_active_warps -=
            std::min(gpu.occ_active_warps, occ_task_warps_[event.id]);
      } else {
        if (event.id >= num_tasks ||
            gpu.running != static_cast<std::int64_t>(event.id)) {
          return fail(event, "end of task that was not running");
        }
        gpu.running = -1;
      }
      ended_[event.id] = 1;
      ran_on_[event.id] = event.gpu;
      break;
    }
    case InspectorEventKind::kNotifyTaskComplete: {
      if (event.id >= num_tasks || ended_[event.id] == 0) {
        return fail(event, "completion notified before the task ended");
      }
      if (complete_notified_[event.id] != 0) {
        return fail(event, "task completion notified twice");
      }
      if (ran_on_[event.id] != event.gpu) {
        return fail(event, "completion notified on the wrong gpu");
      }
      complete_notified_[event.id] = 1;
      break;
    }
    case InspectorEventKind::kNotifyDataLoaded: {
      if (event.id >= num_data || gpu.resident[event.id] == 0) {
        return fail(event, "load notified for non-resident data");
      }
      break;
    }
    case InspectorEventKind::kNotifyDataEvicted: {
      if (event.id >= num_data || gpu.resident[event.id] != 0 ||
          gpu.in_flight[event.id] != 0) {
        return fail(event, "eviction notified for data still on the gpu");
      }
      break;
    }
    case InspectorEventKind::kGpuLost: {
      if (!gpu.alive) return fail(event, "gpu lost twice");
      gpu.alive = false;
      if (gpu.running >= 0) {
        // The interrupted task never finished; it must start again on a
        // survivor, so its exactly-once budget is handed back.
        started_[static_cast<std::size_t>(gpu.running)] = 0;
        gpu.running = -1;
      }
      for (std::uint32_t co_runner : gpu.occ_running) {
        started_[co_runner] = 0;
      }
      gpu.occ_running.clear();
      gpu.occ_active_warps = 0;
      std::fill(gpu.resident.begin(), gpu.resident.end(), 0);
      std::fill(gpu.in_flight.begin(), gpu.in_flight.end(), 0);
      // Protection held on this GPU died with its residency (the engine
      // re-protects another surviving copy, if one exists, separately).
      std::fill(gpu.prot.begin(), gpu.prot.end(), 0);
      gpu.resident_bytes = 0;
      gpu.committed_bytes = 0;
      gpu.scratch_bytes = 0;
      break;
    }
    case InspectorEventKind::kCapacityShock: {
      if (!gpu.alive) return fail(event, "capacity shock on a dead gpu");
      if (event.bytes == 0) return fail(event, "capacity shock to zero");
      gpu.capacity_bytes = event.bytes;
      break;
    }
    case InspectorEventKind::kTransferRetry: {
      if (event.id >= num_data) {
        return fail(event, "transfer retry of unknown data");
      }
      if (!gpu.alive) return fail(event, "transfer retry towards a dead gpu");
      if (options_.online && gpu.in_flight[event.id] == 0) {
        // A retried transfer must still be in flight: delivery-then-retry
        // would mean the same bytes arrive twice.
        return fail(event, "retry of a transfer that already delivered");
      }
      break;
    }
    case InspectorEventKind::kTaskReclaimed: {
      if (event.id >= num_tasks) {
        return fail(event, "reclaim of unknown task");
      }
      if (gpu.alive) return fail(event, "reclaim from a live gpu");
      if (started_[event.id] != 0 || ended_[event.id] != 0) {
        return fail(event, "reclaim of a task that already ran");
      }
      if (cancelled_[event.id] != 0) {
        return fail(event, "reclaim of a cancelled task (shed job)");
      }
      break;
    }
    case InspectorEventKind::kNotifyGpuLost: {
      if (gpu.alive) return fail(event, "gpu-lost notified for a live gpu");
      break;
    }
    case InspectorEventKind::kJobArrival: {
      streaming_seen_ = true;
      if (event.id >= job_state_.size()) job_state_.resize(event.id + 1, 0);
      if (job_state_[event.id] != 0) {
        return fail(event, "job arrived twice (or after shed/complete)");
      }
      job_state_[event.id] = 1;
      break;
    }
    case InspectorEventKind::kJobComplete: {
      if (event.id >= job_state_.size() ||
          (job_state_[event.id] != 1 &&
           // On a dependency-gated run an un-retirement can roll a job's
           // retirement back; the job then legitimately completes again.
           (dep_pending_.empty() || job_state_[event.id] != 3))) {
        return fail(event, "job completed without an in-flight arrival");
      }
      job_state_[event.id] = 3;
      break;
    }
    case InspectorEventKind::kJobShed: {
      streaming_seen_ = true;
      if (event.id >= job_state_.size()) job_state_.resize(event.id + 1, 0);
      if (job_state_[event.id] != 0) {
        return fail(event, "shed of a job that already arrived");
      }
      job_state_[event.id] = 2;
      break;
    }
    case InspectorEventKind::kTaskReleased: {
      streaming_seen_ = true;
      if (event.id >= num_tasks) return fail(event, "release of unknown task");
      if (released_[event.id] != 0) return fail(event, "task released twice");
      if (cancelled_[event.id] != 0) {
        return fail(event, "release of a cancelled task");
      }
      if (started_[event.id] != 0) {
        return fail(event, "release of a task that already started");
      }
      released_[event.id] = 1;
      break;
    }
    case InspectorEventKind::kTaskCancelled: {
      streaming_seen_ = true;
      if (event.id >= num_tasks) return fail(event, "cancel of unknown task");
      if (released_[event.id] != 0 || started_[event.id] != 0 ||
          ended_[event.id] != 0) {
        return fail(event, "cancel of a task that was released or ran");
      }
      if (cancelled_[event.id] != 0) {
        return fail(event, "task cancelled twice");
      }
      cancelled_[event.id] = 1;
      break;
    }
    case InspectorEventKind::kCheckpoint: {
      if (event.id >= num_tasks) return fail(event, "checkpoint of unknown task");
      if (gpu.running != static_cast<std::int64_t>(event.id)) {
        return fail(event, "checkpoint of a task that is not running");
      }
      if (event.aux > 1000000u) {
        return fail(event, "checkpoint fraction above 100%");
      }
      if (event.aux < checkpoint_ppm_[event.id]) {
        return fail(event, "checkpoint progress went backwards");
      }
      checkpoint_ppm_[event.id] = event.aux;
      break;
    }
    case InspectorEventKind::kProgressRestored: {
      if (event.id >= num_tasks) return fail(event, "restore of unknown task");
      if (gpu.running != static_cast<std::int64_t>(event.id)) {
        return fail(event, "restore of a task that is not running");
      }
      if (event.aux > checkpoint_ppm_[event.id]) {
        return fail(event, "restored progress exceeds checkpointed progress");
      }
      break;
    }
    case InspectorEventKind::kReplicaCreate: {
      if (event.id >= num_data) return fail(event, "replica of unknown data");
      if (options_.online && gpu.in_flight[event.id] == 0 &&
          gpu.resident[event.id] == 0) {
        return fail(event, "replica created without a fetch");
      }
      break;
    }
    case InspectorEventKind::kReplicaProtect: {
      if (event.id >= num_data || gpu.resident[event.id] == 0) {
        return fail(event, "protection of non-resident data");
      }
      if (gpu.prot[event.id] != 0) return fail(event, "data protected twice");
      gpu.prot[event.id] = 1;
      break;
    }
    case InspectorEventKind::kReplicaRelease: {
      if (event.id >= num_data || gpu.prot[event.id] == 0) {
        return fail(event, "release of unprotected data");
      }
      gpu.prot[event.id] = 0;
      break;
    }
    case InspectorEventKind::kReplicaShed: {
      if (event.id >= num_data || gpu.resident[event.id] == 0) {
        return fail(event, "shed of a non-resident replica");
      }
      if (gpu.prot[event.id] != 0) {
        return fail(event, "shed of a protected sole-surviving replica");
      }
      if (slo_protected_[event.id] != 0) {
        return fail(event, "shed of slo-protected (vetoed) data");
      }
      break;
    }
    case InspectorEventKind::kReplayDivergence: {
      if (gpu.alive) return fail(event, "replay divergence for a live gpu");
      if (divergence_seen_[event.gpu] != 0) {
        return fail(event, "replay divergence reported twice for one gpu");
      }
      divergence_seen_[event.gpu] = 1;
      break;
    }
    case InspectorEventKind::kHostFetchStart: {
      if (node_fetching_.empty() || event.aux >= node_fetching_.size()) {
        return fail(event, "host fetch on unknown node");
      }
      if (event.id >= num_data) {
        return fail(event, "host fetch of unknown data");
      }
      if (event.bytes != graph_->data_size(event.id)) {
        return fail(event, "host fetch size disagrees with data size");
      }
      if (node_fetching_[event.aux][event.id] != 0) {
        return fail(event, "duplicate in-flight host fetch on one node");
      }
      if (node_cached_[event.aux][event.id] != 0) {
        return fail(event, "host fetch of data already cached on the node");
      }
      ++node_fetching_[event.aux][event.id];
      break;
    }
    case InspectorEventKind::kHostCacheFill: {
      if (node_fetching_.empty() || event.aux >= node_fetching_.size()) {
        return fail(event, "host-cache fill on unknown node");
      }
      if (event.id >= num_data) {
        return fail(event, "host-cache fill of unknown data");
      }
      // The tentpole rule: data never becomes resident on a node that never
      // fetched it over the network.
      if (node_fetching_[event.aux][event.id] == 0) {
        return fail(event, "host-cache fill without a host fetch");
      }
      --node_fetching_[event.aux][event.id];
      node_cached_[event.aux][event.id] = 1;
      host_fill_bytes_ += event.bytes;
      // A delivery answers any outstanding fetch timeout on this (node,
      // data): the timed-out fetch got served after all.
      if (event.aux < timeout_outstanding_.size()) {
        timeout_outstanding_[event.aux][event.id] = 0;
      }
      break;
    }
    case InspectorEventKind::kHostCacheEvict: {
      if (node_cached_.empty() || event.aux >= node_cached_.size()) {
        return fail(event, "host-cache evict on unknown node");
      }
      if (event.id >= num_data || node_cached_[event.aux][event.id] == 0) {
        return fail(event, "host-cache evict of uncached data");
      }
      node_cached_[event.aux][event.id] = 0;
      break;
    }
    case InspectorEventKind::kEdgeReleased: {
      if (dep_pending_.empty()) {
        return fail(event, "edge release on a graph without dependencies");
      }
      if (event.id >= num_tasks || event.aux >= num_tasks) {
        return fail(event, "edge release names an unknown task");
      }
      const auto succs = graph_->successors(event.id);
      if (!std::binary_search(succs.begin(), succs.end(),
                              static_cast<core::TaskId>(event.aux))) {
        return fail(event, "release of an edge not in the graph");
      }
      if (ended_[event.id] == 0 && cancelled_[event.id] == 0) {
        return fail(event, "edge released before its predecessor finished");
      }
      if (dep_release_count_[event.id] >= succs.size()) {
        return fail(event,
                    "edge released more often than the predecessor retired");
      }
      ++dep_release_count_[event.id];
      if (dep_pending_[event.aux] == 0) {
        return fail(event, "edge release underflows the successor's pending "
                           "predecessor count");
      }
      --dep_pending_[event.aux];
      break;
    }
    case InspectorEventKind::kTaskEnabled: {
      if (dep_pending_.empty()) {
        return fail(event, "task enabled on a graph without dependencies");
      }
      if (event.id >= num_tasks) return fail(event, "enable of unknown task");
      if (dep_pending_[event.id] != 0) {
        return fail(event, "task enabled with unretired predecessors");
      }
      if (event.aux != 0 && graph_->num_predecessors(event.id) != 0) {
        return fail(event,
                    "at-load enablement of a task with predecessors");
      }
      break;
    }
    case InspectorEventKind::kTaskUnretired: {
      if (dep_pending_.empty()) {
        return fail(event, "un-retirement on a graph without dependencies");
      }
      if (event.id >= num_tasks) {
        return fail(event, "un-retirement of unknown task");
      }
      if (gpu.alive) return fail(event, "un-retirement for a live gpu");
      if (ended_[event.id] == 0) {
        return fail(event, "un-retirement of a task that never finished");
      }
      if (dep_release_count_[event.id] != graph_->successors(event.id).size()) {
        return fail(event,
                    "un-retirement of a task that had not fully retired");
      }
      // Re-arm the released edges and hand the exactly-once budget back:
      // the re-run on a survivor starts, ends and retires again.
      dep_release_count_[event.id] = 0;
      for (core::TaskId succ : graph_->successors(event.id)) {
        ++dep_pending_[succ];
      }
      started_[event.id] = 0;
      ended_[event.id] = 0;
      break;
    }
    case InspectorEventKind::kNodeDrainStart: {
      if (node_status_.empty() || event.id >= node_status_.size()) {
        return fail(event, "drain fence on unknown node");
      }
      if (node_status_[event.id] != NodeStatus::kActive) {
        return fail(event, "drain fence on a non-active node");
      }
      node_status_[event.id] = NodeStatus::kDraining;
      break;
    }
    case InspectorEventKind::kTaskDrained: {
      if (event.id >= num_tasks) return fail(event, "drain of unknown task");
      if (!gpu.alive) return fail(event, "task drained from a dead gpu");
      if (node_status_.empty() ||
          node_status_[platform_.node_of(event.gpu)] !=
              NodeStatus::kDraining) {
        return fail(event, "task drained from a node that is not draining");
      }
      if (started_[event.id] != 0 || ended_[event.id] != 0) {
        return fail(event, "drain of a task that already ran");
      }
      if (cancelled_[event.id] != 0) {
        return fail(event, "drain of a cancelled task (shed job)");
      }
      break;
    }
    case InspectorEventKind::kDataMigrateStart: {
      if (event.id >= num_data) {
        return fail(event, "migration of unknown data");
      }
      if (node_status_.empty() || event.aux >= node_status_.size()) {
        return fail(event, "migration to unknown node");
      }
      if (node_status_[event.aux] != NodeStatus::kActive) {
        return fail(event, "migration to a non-serving node");
      }
      if (event.bytes != graph_->data_size(event.id)) {
        return fail(event, "migration size disagrees with data size");
      }
      migrate_start_bytes_ += event.bytes;
      break;
    }
    case InspectorEventKind::kDataMigrated: {
      if (event.id >= num_data) {
        return fail(event, "migration of unknown data");
      }
      if (node_status_.empty() || event.aux >= node_status_.size()) {
        return fail(event, "migration to unknown node");
      }
      if (event.bytes != graph_->data_size(event.id)) {
        return fail(event, "migration size disagrees with data size");
      }
      migrate_done_bytes_ += event.bytes;
      if (migrate_done_bytes_ > migrate_start_bytes_) {
        return fail(event, "migration completed without a start");
      }
      break;
    }
    case InspectorEventKind::kNodeDrained: {
      if (node_status_.empty() || event.id >= node_status_.size()) {
        return fail(event, "drain completion on unknown node");
      }
      if (node_status_[event.id] != NodeStatus::kDraining) {
        return fail(event, "drain completed on a node that is not draining");
      }
      for (core::GpuId g = platform_.node_gpu_begin(event.id);
           g < platform_.node_gpu_end(event.id); ++g) {
        GpuState& state = gpus_[g];
        if (state.running != -1 || !state.occ_running.empty()) {
          return fail(event, "node retired with a task still running");
        }
        for (std::uint8_t flag : state.in_flight) {
          if (flag != 0) {
            return fail(event, "node retired with an in-flight fetch");
          }
        }
        // The node powers off: its GPU memory goes away without evictions,
        // like a loss — but the GPUs stay alive for a later re-join.
        std::fill(state.resident.begin(), state.resident.end(), 0);
        std::fill(state.prot.begin(), state.prot.end(), 0);
        state.resident_bytes = 0;
        state.committed_bytes = 0;
        state.scratch_bytes = 0;
      }
      for (std::uint32_t pending : node_fetching_[event.id]) {
        if (pending != 0) {
          return fail(event, "node retired with an outstanding host fetch");
        }
      }
      std::fill(node_cached_[event.id].begin(), node_cached_[event.id].end(),
                0);
      node_status_[event.id] = NodeStatus::kInactive;
      break;
    }
    case InspectorEventKind::kNodeJoinStart: {
      if (node_status_.empty() || event.id >= node_status_.size()) {
        return fail(event, "join of unknown node");
      }
      // An initially-inactive node is never announced, so "active" (the
      // initial assumption) is accepted alongside a drained node.
      if (node_status_[event.id] == NodeStatus::kDraining ||
          node_status_[event.id] == NodeStatus::kWarming ||
          node_status_[event.id] == NodeStatus::kLost) {
        return fail(event, "join of a draining, warming or lost node");
      }
      node_status_[event.id] = NodeStatus::kWarming;
      break;
    }
    case InspectorEventKind::kNodeWarmFill: {
      if (node_status_.empty() || event.aux >= node_status_.size()) {
        return fail(event, "warm fill on unknown node");
      }
      if (node_status_[event.aux] != NodeStatus::kWarming) {
        return fail(event, "warm fill on a node that is not warming");
      }
      if (event.id >= num_data) {
        return fail(event, "warm fill of unknown data");
      }
      if (event.bytes != graph_->data_size(event.id)) {
        return fail(event, "warm fill size disagrees with data size");
      }
      if (node_cached_[event.aux][event.id] != 0) {
        return fail(event, "warm fill of data already cached on the node");
      }
      node_cached_[event.aux][event.id] = 1;
      warm_fill_bytes_ += event.bytes;
      break;
    }
    case InspectorEventKind::kNodeJoined: {
      if (node_status_.empty() || event.id >= node_status_.size()) {
        return fail(event, "join completion on unknown node");
      }
      if (node_status_[event.id] != NodeStatus::kWarming) {
        return fail(event, "join completed without a warm-up");
      }
      node_status_[event.id] = NodeStatus::kActive;
      break;
    }
    case InspectorEventKind::kNodeLost: {
      if (node_status_.empty() || event.id >= node_status_.size()) {
        return fail(event, "loss of unknown node");
      }
      if (node_status_[event.id] == NodeStatus::kLost) {
        return fail(event, "node lost twice");
      }
      node_status_[event.id] = NodeStatus::kLost;
      for (core::GpuId g = platform_.node_gpu_begin(event.id);
           g < platform_.node_gpu_end(event.id); ++g) {
        GpuState& state = gpus_[g];
        if (!state.alive) continue;  // an earlier GPU loss already took it
        state.alive = false;
        if (state.running >= 0) {
          started_[static_cast<std::size_t>(state.running)] = 0;
          state.running = -1;
        }
        for (std::uint32_t co_runner : state.occ_running) {
          started_[co_runner] = 0;
        }
        state.occ_running.clear();
        state.occ_active_warps = 0;
        std::fill(state.resident.begin(), state.resident.end(), 0);
        std::fill(state.in_flight.begin(), state.in_flight.end(), 0);
        std::fill(state.prot.begin(), state.prot.end(), 0);
        state.resident_bytes = 0;
        state.committed_bytes = 0;
        state.scratch_bytes = 0;
      }
      // The host cache dies with the node; in-flight network fetches stay
      // accounted so their fills still balance the wire deliveries.
      std::fill(node_cached_[event.id].begin(), node_cached_[event.id].end(),
                0);
      // The loss terminates the node's suspicion episode and answers any
      // fetch timeout still waiting on this node's behalf (its waiters died
      // with it).
      if (event.id < suspected_.size()) suspected_[event.id] = 0;
      if (event.id < timeout_outstanding_.size()) {
        std::fill(timeout_outstanding_[event.id].begin(),
                  timeout_outstanding_[event.id].end(), 0);
      }
      break;
    }
    case InspectorEventKind::kOccupancyConfig: {
      if (occ_armed_) return fail(event, "occupancy configured twice");
      if (event.id == 0) {
        return fail(event, "occupancy config with zero device warps");
      }
      occ_armed_ = true;
      occ_budget_warps_ = static_cast<std::uint32_t>(event.bytes);
      occ_task_warps_.assign(num_tasks, 0);
      occ_admitted_.assign(num_tasks, 0);
      break;
    }
    case InspectorEventKind::kTaskAdmitted: {
      if (!occ_armed_) {
        return fail(event, "admission without an occupancy config");
      }
      if (event.id >= num_tasks) {
        return fail(event, "admission of unknown task");
      }
      if (occ_admitted_[event.id] != 0 ||
          std::find(gpu.occ_running.begin(), gpu.occ_running.end(),
                    event.id) != gpu.occ_running.end()) {
        return fail(event, "task admitted twice");
      }
      const std::uint32_t warps = static_cast<std::uint32_t>(event.bytes);
      // The budget rule: a busy GPU only takes work that keeps the active
      // load within the admission budget; an idle GPU always admits
      // (forward progress for tasks wider than the budget).
      if (!gpu.occ_running.empty() &&
          gpu.occ_active_warps + warps > occ_budget_warps_) {
        return fail(event, "admission exceeds the warp budget");
      }
      gpu.occ_active_warps += warps;
      if (event.aux != gpu.occ_active_warps) {
        return fail(event, "admission warp tally disagrees with the checker");
      }
      occ_task_warps_[event.id] = warps;
      occ_admitted_[event.id] = 1;
      break;
    }
    case InspectorEventKind::kAdmissionRejected: {
      if (!occ_armed_) {
        return fail(event, "rejection without an occupancy config");
      }
      if (event.id >= num_tasks) {
        return fail(event, "rejection of unknown task");
      }
      if (gpu.occ_running.empty()) {
        return fail(event, "admission rejected on an idle gpu");
      }
      const std::uint32_t warps = static_cast<std::uint32_t>(event.bytes);
      if (gpu.occ_active_warps + warps <= occ_budget_warps_) {
        return fail(event, "rejection of an admissible task");
      }
      if (event.aux != gpu.occ_active_warps) {
        return fail(event, "rejection warp tally disagrees with the checker");
      }
      break;
    }
    case InspectorEventKind::kLinkDegraded:
    case InspectorEventKind::kLinkPartitioned: {
      const bool partition =
          event.kind == InspectorEventKind::kLinkPartitioned;
      if (link_state_.empty() || event.gpu >= platform_.num_nodes ||
          event.id >= platform_.num_nodes || event.gpu == event.id) {
        return fail(event, "link fault names an invalid node pair");
      }
      const std::size_t nodes = platform_.num_nodes;
      if (link_state_[event.gpu * nodes + event.id] != 0) {
        return fail(event, "link fault opened on an already-faulted pair");
      }
      const std::uint8_t kind = partition ? 2 : 1;
      link_state_[event.gpu * nodes + event.id] = kind;
      link_state_[static_cast<std::size_t>(event.id) * nodes + event.gpu] =
          kind;
      break;
    }
    case InspectorEventKind::kLinkRestored: {
      if (link_state_.empty() || event.gpu >= platform_.num_nodes ||
          event.id >= platform_.num_nodes) {
        return fail(event, "link restore names an invalid node pair");
      }
      const std::size_t nodes = platform_.num_nodes;
      const std::uint8_t expected = event.aux != 0 ? 2 : 1;
      if (link_state_[event.gpu * nodes + event.id] != expected) {
        return fail(event, "link restored without a matching open window");
      }
      link_state_[event.gpu * nodes + event.id] = 0;
      link_state_[static_cast<std::size_t>(event.id) * nodes + event.gpu] = 0;
      break;
    }
    case InspectorEventKind::kFetchTimeout: {
      if (timeout_outstanding_.empty()) {
        return fail(event, "fetch timeout on a single-node platform");
      }
      if (event.id >= num_data) {
        return fail(event, "fetch timeout of unknown data");
      }
      const std::uint32_t dest = platform_.node_of(event.gpu);
      if (event.aux >= platform_.num_nodes) {
        return fail(event, "fetch timeout names an unknown source node");
      }
      if (node_fetching_[dest][event.id] == 0) {
        return fail(event, "fetch timeout without an in-flight host fetch");
      }
      timeout_outstanding_[dest][event.id] = 1;
      break;
    }
    case InspectorEventKind::kFetchHedged: {
      if (timeout_outstanding_.empty()) {
        return fail(event, "hedge on a single-node platform");
      }
      if (event.id >= num_data) return fail(event, "hedge of unknown data");
      const std::uint32_t dest = platform_.node_of(event.gpu);
      if (event.aux >= platform_.num_nodes || event.aux == dest) {
        return fail(event, "hedge towards an invalid source node");
      }
      if (timeout_outstanding_[dest][event.id] == 0) {
        return fail(event, "hedge without a preceding fetch timeout");
      }
      // The timed-out fetch is rerouted; a later timeout of the hedged
      // issue re-raises the flag.
      timeout_outstanding_[dest][event.id] = 0;
      break;
    }
    case InspectorEventKind::kHedgeWasted: {
      if (node_fetching_.empty() || event.aux >= node_fetching_.size()) {
        return fail(event, "wasted hedge on unknown node");
      }
      if (event.id >= num_data) {
        return fail(event, "wasted hedge of unknown data");
      }
      // A duplicate delivery is discarded only when the fetch was already
      // served — an in-flight fetch must take the delivery as its fill.
      if (node_fetching_[event.aux][event.id] != 0) {
        return fail(event, "duplicate delivery discarded while the fetch "
                           "was still in flight");
      }
      hedge_wasted_bytes_ += event.bytes;
      break;
    }
    case InspectorEventKind::kNodeSuspected: {
      if (suspected_.empty() || event.id >= suspected_.size()) {
        return fail(event, "suspicion of unknown node");
      }
      if (suspected_[event.id] != 0) {
        return fail(event, "node suspected twice without a clear");
      }
      if (!node_status_.empty() &&
          node_status_[event.id] == NodeStatus::kLost) {
        return fail(event, "suspicion of a lost node");
      }
      suspected_[event.id] = 1;
      break;
    }
    case InspectorEventKind::kNodeSuspicionCleared: {
      if (suspected_.empty() || event.id >= suspected_.size() ||
          suspected_[event.id] == 0) {
        return fail(event, "suspicion cleared without being raised");
      }
      suspected_[event.id] = 0;
      break;
    }
    case InspectorEventKind::kNodeSuspicionEscalated: {
      if (suspected_.empty() || event.id >= suspected_.size() ||
          suspected_[event.id] == 0) {
        return fail(event, "escalation of an unsuspected node");
      }
      if (!node_status_.empty() &&
          node_status_[event.id] == NodeStatus::kLost) {
        return fail(event, "escalation of an already-lost node");
      }
      // The node loss that follows clears the suspicion episode.
      break;
    }
    case InspectorEventKind::kJobsFused: {
      streaming_seen_ = true;
      // Published before the member's kJobArrival: the member must still be
      // unseen (pending) — fusing a released, shed or retired job would
      // double-run its tasks.
      if (event.id < job_state_.size() && job_state_[event.id] != 0) {
        return fail(event, "fusion of a job that already arrived");
      }
      break;
    }
    case InspectorEventKind::kSuperTaskLaunched: {
      if (event.id >= num_tasks) {
        return fail(event, "super-task launch of unknown task");
      }
      if (started_[event.id] == 0) {
        return fail(event, "super-task launch before the leader's start");
      }
      if (event.aux == 0) {
        return fail(event, "super-task launch without riders");
      }
      break;
    }
    case InspectorEventKind::kBatchUnfused: {
      if (event.id >= job_state_.size() || job_state_[event.id] != 1) {
        return fail(event, "unfuse of a job not in flight");
      }
      break;
    }
    case InspectorEventKind::kTierProtect: {
      if (event.id >= num_data) return fail(event, "protect of unknown data");
      ++slo_protected_[event.id];
      break;
    }
    case InspectorEventKind::kTierUnprotect: {
      if (event.id >= num_data || slo_protected_[event.id] == 0) {
        return fail(event, "unprotect without a protection window");
      }
      --slo_protected_[event.id];
      break;
    }
    case InspectorEventKind::kEvictionVetoed: {
      if (event.id >= num_data || slo_protected_[event.id] == 0) {
        return fail(event, "eviction veto reported for unprotected data");
      }
      break;
    }
  }
}

void InvariantChecker::finish() {
  if (!ok_) return;
  for (std::uint32_t task = 0; task < started_.size(); ++task) {
    if (cancelled_[task] != 0) {
      // Cancelled tasks of shed jobs legitimately never run; the main switch
      // already rejects any start/end/reclaim of them.
      continue;
    }
    const std::uint32_t runs =
        static_cast<std::uint32_t>(started_[task] != 0 && ended_[task] != 0);
    if (runs != 1) {
      char buffer[96];
      std::snprintf(buffer, sizeof buffer,
                    "task %u executed %u times (expected once)", task, runs);
      return fail_text(buffer);
    }
    if (options_.online && complete_notified_[task] == 0) {
      char buffer[96];
      std::snprintf(buffer, sizeof buffer,
                    "task %u completed but never notified", task);
      return fail_text(buffer);
    }
  }
  for (const GpuState& gpu : gpus_) {
    if (gpu.running != -1) {
      char buffer[96];
      std::snprintf(buffer, sizeof buffer,
                    "task %lld still running at run end",
                    static_cast<long long>(gpu.running));
      return fail_text(buffer);
    }
    if (!gpu.occ_running.empty()) {
      char buffer[96];
      std::snprintf(buffer, sizeof buffer,
                    "%zu tasks still co-running at run end",
                    gpu.occ_running.size());
      return fail_text(buffer);
    }
  }
  // Released-edge conservation: at run end every dependency edge must have
  // been released exactly once more than it was re-armed — each task's
  // final retirement released its full out-edge set, and no successor is
  // left waiting.
  if (!dep_pending_.empty()) {
    for (std::uint32_t task = 0; task < dep_pending_.size(); ++task) {
      if (dep_pending_[task] != 0) {
        char buffer[96];
        std::snprintf(buffer, sizeof buffer,
                      "task %u still has %u unreleased predecessor edges at "
                      "run end",
                      task, dep_pending_[task]);
        return fail_text(buffer);
      }
      if (dep_release_count_[task] != graph_->successors(task).size()) {
        char buffer[96];
        std::snprintf(buffer, sizeof buffer,
                      "task %u released %u of %zu out-edges at run end", task,
                      dep_release_count_[task],
                      graph_->successors(task).size());
        return fail_text(buffer);
      }
    }
  }
  // Prefetch hints and output write-backs may legitimately still be on a
  // wire when the last task completes, so no emptiness check on channels,
  // in-flight fetches or scratch here. Network byte conservation, however,
  // is exact: a host-cache fill follows its network delivery within the
  // same simulation event, so at run end every byte delivered on a network
  // channel must have landed in exactly one fill.
  if (!node_fetching_.empty() &&
      net_bytes_delivered_ != host_fill_bytes_ + migrate_done_bytes_ +
                                  warm_fill_bytes_ + hedge_wasted_bytes_) {
    char buffer[224];
    std::snprintf(buffer, sizeof buffer,
                  "network bytes not conserved: %llu delivered vs %llu "
                  "filled into host caches + %llu migrated + %llu "
                  "warm-filled + %llu wasted hedge duplicates",
                  static_cast<unsigned long long>(net_bytes_delivered_),
                  static_cast<unsigned long long>(host_fill_bytes_),
                  static_cast<unsigned long long>(migrate_done_bytes_),
                  static_cast<unsigned long long>(warm_fill_bytes_),
                  static_cast<unsigned long long>(hedge_wasted_bytes_));
    return fail_text(buffer);
  }
  // Every fetch timeout must have been answered by a hedge, a delivery or
  // the destination node's loss before the run ended.
  for (std::uint32_t node = 0; node < timeout_outstanding_.size(); ++node) {
    for (std::uint32_t data = 0; data < timeout_outstanding_[node].size();
         ++data) {
      if (timeout_outstanding_[node][data] != 0) {
        char buffer[128];
        std::snprintf(buffer, sizeof buffer,
                      "fetch of data %u into node %u timed out and was never "
                      "rerouted or served",
                      data, node);
        return fail_text(buffer);
      }
    }
  }
  // Migration byte conservation: every migration a drain started must have
  // landed on its destination node by run end.
  if (migrate_start_bytes_ != migrate_done_bytes_) {
    char buffer[128];
    std::snprintf(buffer, sizeof buffer,
                  "migration bytes not conserved: %llu started vs %llu "
                  "delivered",
                  static_cast<unsigned long long>(migrate_start_bytes_),
                  static_cast<unsigned long long>(migrate_done_bytes_));
    return fail_text(buffer);
  }
}

void InvariantChecker::on_run_end(double makespan_us) {
  (void)makespan_us;
  finish();
}

}  // namespace mg::sim
