// Execution trace: the ordered record of loads, evictions, task starts and
// completions of a simulation. Consumed by analysis::validate_trace (memory
// bound / residency invariants) and by the ablation benches that replay a
// recorded execution order under a different eviction policy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.hpp"

namespace mg::sim {

enum class TraceKind : std::uint8_t {
  kLoad,       ///< data became resident on gpu via the host bus (id = DataId)
  kPeerLoad,   ///< data became resident on gpu via NVLink (id = DataId)
  kEvict,      ///< data evicted from gpu (id = DataId)
  kTaskStart,  ///< task started on gpu (id = TaskId)
  kTaskEnd,    ///< task completed on gpu (id = TaskId)
  kWriteBack,  ///< output write-back to host completed (id = TaskId)
};

struct TraceEvent {
  double time_us;
  TraceKind kind;
  core::GpuId gpu;
  std::uint32_t id;
};

struct Trace {
  std::vector<TraceEvent> events;

  /// Task ids in start order for one GPU — the realized σ(k, ·).
  [[nodiscard]] std::vector<core::TaskId> execution_order(
      core::GpuId gpu) const {
    std::vector<core::TaskId> order;
    for (const TraceEvent& event : events) {
      if (event.kind == TraceKind::kTaskStart && event.gpu == gpu) {
        order.push_back(event.id);
      }
    }
    return order;
  }
};

}  // namespace mg::sim
