#include "sim/fault_plan.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace mg::sim {

namespace {

const char* scope_name(FaultPlan::TransferScope scope) {
  switch (scope) {
    case FaultPlan::TransferScope::kAll: return "all";
    case FaultPlan::TransferScope::kHostBus: return "host_bus";
    case FaultPlan::TransferScope::kNvlink: return "nvlink";
  }
  return "all";
}

bool scope_from_name(const std::string& name,
                     FaultPlan::TransferScope* scope) {
  if (name == "all") {
    *scope = FaultPlan::TransferScope::kAll;
  } else if (name == "host_bus") {
    *scope = FaultPlan::TransferScope::kHostBus;
  } else if (name == "nvlink") {
    *scope = FaultPlan::TransferScope::kNvlink;
  } else {
    return false;
  }
  return true;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Fetches `key` as a finite number; missing keys keep `*out` untouched and
/// succeed, wrong types fail.
bool read_number(const util::json::Value& object, const char* key, double* out,
                 std::string* error) {
  const util::json::Value* value = object.find(key);
  if (value == nullptr) return true;
  if (!value->is_number()) {
    return fail(error, std::string("field '") + key + "' must be a number");
  }
  *out = value->as_number();
  return true;
}

bool read_u64(const util::json::Value& object, const char* key,
              std::uint64_t* out, std::string* error) {
  double number = 0.0;
  if (!read_number(object, key, &number, error)) return false;
  const util::json::Value* value = object.find(key);
  if (value == nullptr) return true;
  if (number < 0.0) {
    return fail(error, std::string("field '") + key + "' must be >= 0");
  }
  *out = static_cast<std::uint64_t>(number);
  return true;
}

void append_double(std::string* out, double value) {
  char buffer[64];
  if (std::isinf(value)) {
    // JSON has no infinity; an omitted end_us means "until the run ends" and
    // the parser restores the default.
    std::snprintf(buffer, sizeof buffer, "1e308");
  } else {
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
  }
  *out += buffer;
}

}  // namespace

std::string FaultPlan::validate(std::uint32_t num_gpus,
                                std::uint32_t num_nodes) const {
  char buffer[160];
  for (const GpuLoss& loss : gpu_losses) {
    if (loss.gpu >= num_gpus) {
      std::snprintf(buffer, sizeof buffer,
                    "gpu_losses: gpu %u out of range (platform has %u GPUs)",
                    loss.gpu, num_gpus);
      return buffer;
    }
    if (!std::isfinite(loss.time_us) || loss.time_us < 0.0) {
      return "gpu_losses: time_us must be finite and >= 0";
    }
  }
  // Each GPU can die at most once; duplicate losses of one GPU are a plan bug.
  for (std::size_t i = 0; i < gpu_losses.size(); ++i) {
    for (std::size_t j = i + 1; j < gpu_losses.size(); ++j) {
      if (gpu_losses[i].gpu == gpu_losses[j].gpu) {
        std::snprintf(buffer, sizeof buffer,
                      "gpu_losses: gpu %u listed twice", gpu_losses[i].gpu);
        return buffer;
      }
    }
  }
  for (const NodeLoss& loss : node_losses) {
    if (num_nodes < 2) {
      return "node_losses: need a multi-node platform (num_nodes >= 2)";
    }
    if (loss.node >= num_nodes) {
      std::snprintf(buffer, sizeof buffer,
                    "node_losses: node %u out of range (platform has %u "
                    "nodes)",
                    loss.node, num_nodes);
      return buffer;
    }
    if (!std::isfinite(loss.time_us) || loss.time_us < 0.0) {
      return "node_losses: time_us must be finite and >= 0";
    }
  }
  for (std::size_t i = 0; i < node_losses.size(); ++i) {
    for (std::size_t j = i + 1; j < node_losses.size(); ++j) {
      if (node_losses[i].node == node_losses[j].node) {
        std::snprintf(buffer, sizeof buffer,
                      "node_losses: node %u listed twice",
                      node_losses[i].node);
        return buffer;
      }
    }
  }
  // Combined survivor check: a node loss kills its whole contiguous GPU
  // block; together with the individual losses at least one GPU must live.
  {
    std::vector<std::uint8_t> killed(num_gpus, 0);
    for (const GpuLoss& loss : gpu_losses) killed[loss.gpu] = 1;
    const std::uint32_t per_node = num_nodes > 0 ? num_gpus / num_nodes : 0;
    for (const NodeLoss& loss : node_losses) {
      for (std::uint32_t g = loss.node * per_node;
           g < (loss.node + 1) * per_node && g < num_gpus; ++g) {
        killed[g] = 1;
      }
    }
    std::uint32_t dead = 0;
    for (std::uint8_t flag : killed) dead += flag;
    if (dead >= num_gpus) {
      return "losses: the plan kills every GPU; at least one must survive";
    }
  }
  for (const TransferFault& fault : transfer_faults) {
    if (std::isnan(fault.start_us) || fault.start_us < 0.0 ||
        std::isnan(fault.end_us) || fault.end_us < fault.start_us) {
      return "transfer_faults: need 0 <= start_us <= end_us";
    }
    if (!(fault.probability >= 0.0 && fault.probability <= 1.0)) {
      return "transfer_faults: probability must be in [0, 1]";
    }
  }
  for (const LinkFault& fault : link_faults) {
    if (num_nodes < 2) {
      return "link_faults: need a multi-node platform (num_nodes >= 2)";
    }
    if (fault.src >= num_nodes || fault.dst >= num_nodes) {
      std::snprintf(buffer, sizeof buffer,
                    "link_faults: node pair %u-%u out of range (platform has "
                    "%u nodes)",
                    fault.src, fault.dst, num_nodes);
      return buffer;
    }
    if (fault.src == fault.dst) {
      std::snprintf(buffer, sizeof buffer,
                    "link_faults: src and dst must differ (both are %u)",
                    fault.src);
      return buffer;
    }
    if (std::isnan(fault.start_us) || fault.start_us < 0.0 ||
        std::isnan(fault.end_us) || fault.end_us < fault.start_us) {
      return "link_faults: need 0 <= start_us <= end_us";
    }
    if (!(fault.bandwidth_factor >= 1.0) ||
        !std::isfinite(fault.bandwidth_factor)) {
      return "link_faults: bandwidth_factor must be finite and >= 1";
    }
    if (!(fault.straggler_us >= 0.0) || !std::isfinite(fault.straggler_us)) {
      return "link_faults: straggler_us must be finite and >= 0";
    }
  }
  // At most one fault window per (unordered) node pair at any instant: the
  // engine keys the live link state by pair, so overlapping windows would
  // silently shadow each other.
  for (std::size_t i = 0; i < link_faults.size(); ++i) {
    for (std::size_t j = i + 1; j < link_faults.size(); ++j) {
      const LinkFault& a = link_faults[i];
      const LinkFault& b = link_faults[j];
      const bool same_pair = (a.src == b.src && a.dst == b.dst) ||
                             (a.src == b.dst && a.dst == b.src);
      if (same_pair && a.start_us < b.end_us && b.start_us < a.end_us) {
        std::snprintf(buffer, sizeof buffer,
                      "link_faults: overlapping windows for node pair %u-%u",
                      a.src, a.dst);
        return buffer;
      }
    }
  }
  for (const CapacityShock& shock : capacity_shocks) {
    if (shock.gpu >= num_gpus) {
      std::snprintf(buffer, sizeof buffer,
                    "capacity_shocks: gpu %u out of range (platform has %u "
                    "GPUs)",
                    shock.gpu, num_gpus);
      return buffer;
    }
    if (!std::isfinite(shock.time_us) || shock.time_us < 0.0) {
      return "capacity_shocks: time_us must be finite and >= 0";
    }
    if (shock.capacity_bytes == 0) {
      return "capacity_shocks: capacity_bytes must be > 0";
    }
  }
  return {};
}

std::optional<FaultPlan> parse_fault_plan(std::string_view json_text,
                                          std::string* error) {
  std::size_t error_offset = 0;
  const std::optional<util::json::Value> root =
      util::json::parse(json_text, &error_offset);
  if (!root.has_value()) {
    // Hand-written plans deserve a position: report where the parser
    // stopped as line/column (1-based) plus the raw byte offset.
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < error_offset && i < json_text.size(); ++i) {
      if (json_text[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    char buffer[96];
    std::snprintf(buffer, sizeof buffer,
                  "JSON syntax error at line %zu column %zu (byte %zu)", line,
                  column, error_offset);
    fail(error, buffer);
    return std::nullopt;
  }
  if (!root->is_object()) {
    fail(error, "fault plan is not a JSON object");
    return std::nullopt;
  }

  FaultPlan plan;
  if (const util::json::Value* version = root->find("schema_version")) {
    const int parsed =
        version->is_number() ? static_cast<int>(version->as_number()) : -1;
    if (parsed < FaultPlan::kMinSchemaVersion ||
        parsed > FaultPlan::kSchemaVersion) {
      fail(error, "unsupported fault plan schema_version");
      return std::nullopt;
    }
  } else {
    fail(error, "fault plan is missing schema_version");
    return std::nullopt;
  }
  if (!read_u64(*root, "seed", &plan.seed, error)) return std::nullopt;

  if (const util::json::Value* losses = root->find("gpu_losses")) {
    if (!losses->is_array()) {
      fail(error, "gpu_losses must be an array");
      return std::nullopt;
    }
    for (const util::json::Value& entry : losses->as_array()) {
      if (!entry.is_object()) {
        fail(error, "gpu_losses entries must be objects");
        return std::nullopt;
      }
      FaultPlan::GpuLoss loss;
      std::uint64_t gpu = 0;
      if (!read_number(entry, "time_us", &loss.time_us, error) ||
          !read_u64(entry, "gpu", &gpu, error)) {
        return std::nullopt;
      }
      loss.gpu = static_cast<core::GpuId>(gpu);
      plan.gpu_losses.push_back(loss);
    }
  }

  if (const util::json::Value* losses = root->find("node_losses")) {
    if (!losses->is_array()) {
      fail(error, "node_losses must be an array");
      return std::nullopt;
    }
    for (const util::json::Value& entry : losses->as_array()) {
      if (!entry.is_object()) {
        fail(error, "node_losses entries must be objects");
        return std::nullopt;
      }
      FaultPlan::NodeLoss loss;
      std::uint64_t node = 0;
      if (!read_number(entry, "time_us", &loss.time_us, error) ||
          !read_u64(entry, "node", &node, error)) {
        return std::nullopt;
      }
      loss.node = static_cast<core::NodeId>(node);
      plan.node_losses.push_back(loss);
    }
  }

  if (const util::json::Value* faults = root->find("transfer_faults")) {
    if (!faults->is_array()) {
      fail(error, "transfer_faults must be an array");
      return std::nullopt;
    }
    for (const util::json::Value& entry : faults->as_array()) {
      if (!entry.is_object()) {
        fail(error, "transfer_faults entries must be objects");
        return std::nullopt;
      }
      FaultPlan::TransferFault fault;
      std::uint64_t max_failures = fault.max_failures_per_transfer;
      if (!read_number(entry, "start_us", &fault.start_us, error) ||
          !read_number(entry, "end_us", &fault.end_us, error) ||
          !read_number(entry, "probability", &fault.probability, error) ||
          !read_u64(entry, "max_failures_per_transfer", &max_failures,
                    error)) {
        return std::nullopt;
      }
      fault.max_failures_per_transfer =
          static_cast<std::uint32_t>(max_failures);
      if (const util::json::Value* scope = entry.find("scope")) {
        if (!scope->is_string() ||
            !scope_from_name(scope->as_string(), &fault.scope)) {
          fail(error,
               "transfer_faults: scope must be \"all\", \"host_bus\" or "
               "\"nvlink\"");
          return std::nullopt;
        }
      }
      plan.transfer_faults.push_back(fault);
    }
  }

  if (const util::json::Value* shocks = root->find("capacity_shocks")) {
    if (!shocks->is_array()) {
      fail(error, "capacity_shocks must be an array");
      return std::nullopt;
    }
    for (const util::json::Value& entry : shocks->as_array()) {
      if (!entry.is_object()) {
        fail(error, "capacity_shocks entries must be objects");
        return std::nullopt;
      }
      FaultPlan::CapacityShock shock;
      std::uint64_t gpu = 0;
      if (!read_number(entry, "time_us", &shock.time_us, error) ||
          !read_u64(entry, "gpu", &gpu, error) ||
          !read_u64(entry, "capacity_bytes", &shock.capacity_bytes, error)) {
        return std::nullopt;
      }
      shock.gpu = static_cast<core::GpuId>(gpu);
      plan.capacity_shocks.push_back(shock);
    }
  }

  if (const util::json::Value* faults = root->find("link_faults")) {
    if (!faults->is_array()) {
      fail(error, "link_faults must be an array");
      return std::nullopt;
    }
    for (const util::json::Value& entry : faults->as_array()) {
      if (!entry.is_object()) {
        fail(error, "link_faults entries must be objects");
        return std::nullopt;
      }
      FaultPlan::LinkFault fault;
      std::uint64_t src = 0;
      std::uint64_t dst = 0;
      if (!read_u64(entry, "src", &src, error) ||
          !read_u64(entry, "dst", &dst, error) ||
          !read_number(entry, "start_us", &fault.start_us, error) ||
          !read_number(entry, "end_us", &fault.end_us, error) ||
          !read_number(entry, "bandwidth_factor", &fault.bandwidth_factor,
                       error) ||
          !read_number(entry, "straggler_us", &fault.straggler_us, error)) {
        return std::nullopt;
      }
      if (const util::json::Value* partition = entry.find("partition")) {
        if (!partition->is_bool()) {
          fail(error, "link_faults: partition must be a boolean");
          return std::nullopt;
        }
        fault.partition = partition->as_bool();
      }
      fault.src = static_cast<core::NodeId>(src);
      fault.dst = static_cast<core::NodeId>(dst);
      plan.link_faults.push_back(fault);
    }
  }
  return plan;
}

std::optional<FaultPlan> load_fault_plan_file(const std::string& path,
                                              std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(error, "cannot open fault plan file: " + path);
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::optional<FaultPlan> plan = parse_fault_plan(text.str(), error);
  if (!plan.has_value() && error != nullptr) {
    // Name the file: callers surface this to users who typed the plan path.
    *error = path + ": " + *error;
  }
  return plan;
}

std::string fault_plan_to_json(const FaultPlan& plan) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(FaultPlan::kSchemaVersion);
  out += ",\"seed\":";
  out += std::to_string(plan.seed);
  out += ",\"gpu_losses\":[";
  for (std::size_t i = 0; i < plan.gpu_losses.size(); ++i) {
    const FaultPlan::GpuLoss& loss = plan.gpu_losses[i];
    if (i != 0) out += ',';
    out += "{\"time_us\":";
    append_double(&out, loss.time_us);
    out += ",\"gpu\":";
    out += std::to_string(loss.gpu);
    out += '}';
  }
  out += "],\"node_losses\":[";
  for (std::size_t i = 0; i < plan.node_losses.size(); ++i) {
    const FaultPlan::NodeLoss& loss = plan.node_losses[i];
    if (i != 0) out += ',';
    out += "{\"time_us\":";
    append_double(&out, loss.time_us);
    out += ",\"node\":";
    out += std::to_string(loss.node);
    out += '}';
  }
  out += "],\"transfer_faults\":[";
  for (std::size_t i = 0; i < plan.transfer_faults.size(); ++i) {
    const FaultPlan::TransferFault& fault = plan.transfer_faults[i];
    if (i != 0) out += ',';
    out += "{\"start_us\":";
    append_double(&out, fault.start_us);
    if (std::isfinite(fault.end_us)) {
      out += ",\"end_us\":";
      append_double(&out, fault.end_us);
    }
    out += ",\"scope\":\"";
    out += scope_name(fault.scope);
    out += "\",\"probability\":";
    append_double(&out, fault.probability);
    out += ",\"max_failures_per_transfer\":";
    out += std::to_string(fault.max_failures_per_transfer);
    out += '}';
  }
  out += "],\"capacity_shocks\":[";
  for (std::size_t i = 0; i < plan.capacity_shocks.size(); ++i) {
    const FaultPlan::CapacityShock& shock = plan.capacity_shocks[i];
    if (i != 0) out += ',';
    out += "{\"time_us\":";
    append_double(&out, shock.time_us);
    out += ",\"gpu\":";
    out += std::to_string(shock.gpu);
    out += ",\"capacity_bytes\":";
    out += std::to_string(shock.capacity_bytes);
    out += '}';
  }
  out += "],\"link_faults\":[";
  for (std::size_t i = 0; i < plan.link_faults.size(); ++i) {
    const FaultPlan::LinkFault& fault = plan.link_faults[i];
    if (i != 0) out += ',';
    out += "{\"src\":";
    out += std::to_string(fault.src);
    out += ",\"dst\":";
    out += std::to_string(fault.dst);
    out += ",\"start_us\":";
    append_double(&out, fault.start_us);
    if (std::isfinite(fault.end_us)) {
      out += ",\"end_us\":";
      append_double(&out, fault.end_us);
    }
    out += ",\"bandwidth_factor\":";
    append_double(&out, fault.bandwidth_factor);
    out += ",\"straggler_us\":";
    append_double(&out, fault.straggler_us);
    out += ",\"partition\":";
    out += fault.partition ? "true" : "false";
    out += '}';
  }
  out += "]}";
  return out;
}

FaultPlan make_random_fault_plan(std::uint64_t seed,
                                 const RandomFaultOptions& options) {
  util::Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;

  if (options.allow_gpu_loss && options.num_gpus >= 2) {
    // 1..num_gpus-1 losses, biased toward one: recovery with several
    // survivors is the common case worth stressing most often.
    std::uint32_t losses = 1;
    if (options.num_gpus > 2 && rng.chance(0.3)) {
      losses = 1 + static_cast<std::uint32_t>(
                       rng.below(options.num_gpus - 1));
    }
    std::vector<core::GpuId> gpus(options.num_gpus);
    for (core::GpuId g = 0; g < options.num_gpus; ++g) gpus[g] = g;
    rng.shuffle(gpus);
    for (std::uint32_t i = 0; i < losses; ++i) {
      FaultPlan::GpuLoss loss;
      loss.gpu = gpus[i];
      loss.time_us = rng.uniform() * options.horizon_us * 0.6;
      plan.gpu_losses.push_back(loss);
    }
  }

  if (options.allow_transfer_faults) {
    FaultPlan::TransferFault fault;
    fault.start_us = 0.0;
    fault.end_us = options.horizon_us;
    fault.probability = 0.05 + rng.uniform() * 0.25;
    fault.max_failures_per_transfer =
        1 + static_cast<std::uint32_t>(rng.below(4));
    const std::uint64_t scope_draw = rng.below(3);
    fault.scope = scope_draw == 0   ? FaultPlan::TransferScope::kAll
                  : scope_draw == 1 ? FaultPlan::TransferScope::kHostBus
                                    : FaultPlan::TransferScope::kNvlink;
    plan.transfer_faults.push_back(fault);
  }

  if (options.allow_capacity_shock && options.gpu_memory_bytes > 0) {
    FaultPlan::CapacityShock shock;
    shock.gpu = static_cast<core::GpuId>(rng.below(options.num_gpus));
    shock.time_us = rng.uniform() * options.horizon_us * 0.6;
    const double fraction = 0.3 + rng.uniform() * 0.5;
    shock.capacity_bytes = static_cast<std::uint64_t>(
        static_cast<double>(options.gpu_memory_bytes) * fraction);
    if (shock.capacity_bytes == 0) shock.capacity_bytes = 1;
    plan.capacity_shocks.push_back(shock);
  }

  if (options.allow_link_faults && options.num_nodes >= 2) {
    FaultPlan::LinkFault fault;
    fault.src = static_cast<core::NodeId>(rng.below(options.num_nodes));
    fault.dst = static_cast<core::NodeId>(rng.below(options.num_nodes - 1));
    if (fault.dst >= fault.src) ++fault.dst;
    fault.start_us = rng.uniform() * options.horizon_us * 0.4;
    // The window always closes inside the horizon: random plans must
    // terminate without relying on detector escalation.
    fault.end_us = fault.start_us +
                   (0.1 + rng.uniform() * 0.4) * options.horizon_us;
    if (rng.chance(0.5)) {
      fault.partition = true;
    } else {
      fault.bandwidth_factor = 2.0 + rng.uniform() * 6.0;
      fault.straggler_us = rng.uniform() * options.horizon_us * 0.01;
    }
    plan.link_faults.push_back(fault);
  }
  return plan;
}

}  // namespace mg::sim
