#include "sim/inspector.hpp"

#include <algorithm>
#include <cstdio>

namespace mg::sim {

std::string_view inspector_event_kind_name(InspectorEventKind kind) {
  switch (kind) {
    case InspectorEventKind::kFetchStart: return "fetch-start";
    case InspectorEventKind::kLoadComplete: return "load";
    case InspectorEventKind::kEvict: return "evict";
    case InspectorEventKind::kScratchReserve: return "scratch-reserve";
    case InspectorEventKind::kScratchRelease: return "scratch-release";
    case InspectorEventKind::kTransferStart: return "transfer-start";
    case InspectorEventKind::kTransferEnd: return "transfer-end";
    case InspectorEventKind::kWriteBackStart: return "writeback-start";
    case InspectorEventKind::kWriteBackEnd: return "writeback-end";
    case InspectorEventKind::kTaskStart: return "task-start";
    case InspectorEventKind::kTaskEnd: return "task-end";
    case InspectorEventKind::kNotifyTaskComplete: return "notify-complete";
    case InspectorEventKind::kNotifyDataLoaded: return "notify-loaded";
    case InspectorEventKind::kNotifyDataEvicted: return "notify-evicted";
    case InspectorEventKind::kGpuLost: return "gpu-lost";
    case InspectorEventKind::kCapacityShock: return "capacity-shock";
    case InspectorEventKind::kTransferRetry: return "transfer-retry";
    case InspectorEventKind::kTaskReclaimed: return "task-reclaimed";
    case InspectorEventKind::kNotifyGpuLost: return "notify-gpu-lost";
    case InspectorEventKind::kJobArrival: return "job-arrival";
    case InspectorEventKind::kJobComplete: return "job-complete";
    case InspectorEventKind::kJobShed: return "job-shed";
    case InspectorEventKind::kTaskReleased: return "task-released";
    case InspectorEventKind::kTaskCancelled: return "task-cancelled";
    case InspectorEventKind::kCheckpoint: return "checkpoint";
    case InspectorEventKind::kProgressRestored: return "progress-restored";
    case InspectorEventKind::kReplicaCreate: return "replica-create";
    case InspectorEventKind::kReplicaProtect: return "replica-protect";
    case InspectorEventKind::kReplicaRelease: return "replica-release";
    case InspectorEventKind::kReplicaShed: return "replica-shed";
    case InspectorEventKind::kReplayDivergence: return "replay-divergence";
    case InspectorEventKind::kHostFetchStart: return "host-fetch-start";
    case InspectorEventKind::kHostCacheFill: return "host-cache-fill";
    case InspectorEventKind::kHostCacheEvict: return "host-cache-evict";
    case InspectorEventKind::kEdgeReleased: return "edge-released";
    case InspectorEventKind::kTaskEnabled: return "task-enabled";
    case InspectorEventKind::kTaskUnretired: return "task-unretired";
    case InspectorEventKind::kNodeDrainStart: return "node-drain-start";
    case InspectorEventKind::kTaskDrained: return "task-drained";
    case InspectorEventKind::kDataMigrateStart: return "data-migrate-start";
    case InspectorEventKind::kDataMigrated: return "data-migrated";
    case InspectorEventKind::kNodeDrained: return "node-drained";
    case InspectorEventKind::kNodeJoinStart: return "node-join-start";
    case InspectorEventKind::kNodeWarmFill: return "node-warm-fill";
    case InspectorEventKind::kNodeJoined: return "node-joined";
    case InspectorEventKind::kNodeLost: return "node-lost";
    case InspectorEventKind::kOccupancyConfig: return "occupancy-config";
    case InspectorEventKind::kTaskAdmitted: return "task-admitted";
    case InspectorEventKind::kAdmissionRejected: return "admission-rejected";
    case InspectorEventKind::kLinkDegraded: return "link-degraded";
    case InspectorEventKind::kLinkPartitioned: return "link-partitioned";
    case InspectorEventKind::kLinkRestored: return "link-restored";
    case InspectorEventKind::kFetchTimeout: return "fetch-timeout";
    case InspectorEventKind::kFetchHedged: return "fetch-hedged";
    case InspectorEventKind::kHedgeWasted: return "hedge-wasted";
    case InspectorEventKind::kNodeSuspected: return "node-suspected";
    case InspectorEventKind::kNodeSuspicionCleared:
      return "node-suspicion-cleared";
    case InspectorEventKind::kNodeSuspicionEscalated:
      return "node-suspicion-escalated";
    case InspectorEventKind::kJobsFused: return "jobs-fused";
    case InspectorEventKind::kSuperTaskLaunched: return "super-task-launched";
    case InspectorEventKind::kBatchUnfused: return "batch-unfused";
    case InspectorEventKind::kEvictionVetoed: return "eviction-vetoed";
    case InspectorEventKind::kTierProtect: return "tier-protect";
    case InspectorEventKind::kTierUnprotect: return "tier-unprotect";
  }
  return "?";
}

std::uint32_t inspector_channel_count(const core::Platform& platform) {
  const std::uint32_t single_node = kChannelNvlinkBase + platform.num_gpus;
  if (!platform.is_cluster()) return single_node;
  return std::max(single_node, kChannelNetBase + platform.num_nodes);
}

std::string inspector_channel_name(std::uint32_t channel) {
  if (channel == kChannelHostBus) return "host-bus";
  if (channel == kChannelWriteback) return "writeback";
  if (channel == kNoChannel) return "-";
  if (channel >= kChannelNetBase) {
    return "net-node" + std::to_string(channel - kChannelNetBase);
  }
  if (channel >= kChannelNodeWritebackBase) {
    return "node" + std::to_string(channel - kChannelNodeWritebackBase) +
           "-writeback";
  }
  if (channel >= kChannelNodePciBase) {
    return "node" + std::to_string(channel - kChannelNodePciBase) + "-pci";
  }
  return "nvlink-gpu" + std::to_string(channel - kChannelNvlinkBase);
}

std::string format_inspector_event(const InspectorEvent& event) {
  // Tasks for task-flavoured kinds, data otherwise.
  const bool is_task = event.kind == InspectorEventKind::kTaskStart ||
                       event.kind == InspectorEventKind::kTaskEnd ||
                       event.kind == InspectorEventKind::kScratchReserve ||
                       event.kind == InspectorEventKind::kScratchRelease ||
                       event.kind == InspectorEventKind::kWriteBackStart ||
                       event.kind == InspectorEventKind::kWriteBackEnd ||
                       event.kind == InspectorEventKind::kNotifyTaskComplete ||
                       event.kind == InspectorEventKind::kTaskReclaimed ||
                       event.kind == InspectorEventKind::kTaskReleased ||
                       event.kind == InspectorEventKind::kTaskCancelled ||
                       event.kind == InspectorEventKind::kCheckpoint ||
                       event.kind == InspectorEventKind::kProgressRestored ||
                       event.kind == InspectorEventKind::kEdgeReleased ||
                       event.kind == InspectorEventKind::kTaskEnabled ||
                       event.kind == InspectorEventKind::kTaskUnretired ||
                       event.kind == InspectorEventKind::kTaskDrained ||
                       event.kind == InspectorEventKind::kTaskAdmitted ||
                       event.kind == InspectorEventKind::kAdmissionRejected ||
                       event.kind == InspectorEventKind::kSuperTaskLaunched;
  const bool is_job = event.kind == InspectorEventKind::kJobArrival ||
                      event.kind == InspectorEventKind::kJobComplete ||
                      event.kind == InspectorEventKind::kJobShed ||
                      event.kind == InspectorEventKind::kJobsFused ||
                      event.kind == InspectorEventKind::kBatchUnfused;
  // Node-lifecycle kinds carry the node in `id` rather than a task/data.
  const bool is_node =
      event.kind == InspectorEventKind::kNodeDrainStart ||
      event.kind == InspectorEventKind::kNodeDrained ||
      event.kind == InspectorEventKind::kNodeJoinStart ||
      event.kind == InspectorEventKind::kNodeJoined ||
      event.kind == InspectorEventKind::kNodeLost ||
      event.kind == InspectorEventKind::kNodeSuspected ||
      event.kind == InspectorEventKind::kNodeSuspicionCleared ||
      event.kind == InspectorEventKind::kNodeSuspicionEscalated;
  // Link kinds carry the node pair in `gpu` (src) and `id` (dst).
  const bool is_link = event.kind == InspectorEventKind::kLinkDegraded ||
                       event.kind == InspectorEventKind::kLinkPartitioned ||
                       event.kind == InspectorEventKind::kLinkRestored;
  char buffer[192];
  if (is_link) {
    std::snprintf(buffer, sizeof buffer, "t=%.3fus %.*s node%u-node%u",
                  event.time_us,
                  static_cast<int>(
                      inspector_event_kind_name(event.kind).size()),
                  inspector_event_kind_name(event.kind).data(), event.gpu,
                  event.id);
  } else if (is_node) {
    std::snprintf(buffer, sizeof buffer, "t=%.3fus %.*s node%u",
                  event.time_us,
                  static_cast<int>(
                      inspector_event_kind_name(event.kind).size()),
                  inspector_event_kind_name(event.kind).data(), event.id);
  } else {
    std::snprintf(buffer, sizeof buffer, "t=%.3fus gpu%u %.*s %c%u",
                  event.time_us, event.gpu,
                  static_cast<int>(
                      inspector_event_kind_name(event.kind).size()),
                  inspector_event_kind_name(event.kind).data(),
                  is_job ? 'J' : (is_task ? 'T' : 'd'), event.id);
  }
  std::string line = buffer;
  if (event.bytes > 0 && !is_link) {
    std::snprintf(buffer, sizeof buffer, " bytes=%llu",
                  static_cast<unsigned long long>(event.bytes));
    line += buffer;
  }
  if (event.channel != kNoChannel) {
    line += " via " + inspector_channel_name(event.channel);
  }
  if (event.kind == InspectorEventKind::kFetchStart) {
    line += event.aux != 0 ? " (demand)" : " (prefetch)";
  } else if (event.kind == InspectorEventKind::kLoadComplete && event.aux != 0) {
    line += " (peer)";
  } else if (event.kind == InspectorEventKind::kEvict) {
    std::snprintf(buffer, sizeof buffer, " pins=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kGpuLost ||
             event.kind == InspectorEventKind::kNotifyGpuLost) {
    std::snprintf(buffer, sizeof buffer, " orphans=%u",
                  event.kind == InspectorEventKind::kGpuLost ? event.aux
                                                             : event.id);
    line += buffer;
    if (event.kind == InspectorEventKind::kNotifyGpuLost) {
      line += event.aux != 0 ? " (adopted)" : " (requeued)";
    }
  } else if (event.kind == InspectorEventKind::kTransferRetry) {
    std::snprintf(buffer, sizeof buffer, " attempt=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kCapacityShock &&
             event.aux != 0) {
    line += " (clamped)";
  } else if (event.kind == InspectorEventKind::kJobsFused ||
             event.kind == InspectorEventKind::kBatchUnfused) {
    std::snprintf(buffer, sizeof buffer, " leader=J%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kSuperTaskLaunched) {
    std::snprintf(buffer, sizeof buffer, " riders=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kTierProtect) {
    std::snprintf(buffer, sizeof buffer, " tier=%u", event.aux);
    line += buffer;
  } else if (is_job) {
    std::snprintf(buffer, sizeof buffer, " tasks=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kTaskReleased ||
             event.kind == InspectorEventKind::kTaskCancelled) {
    std::snprintf(buffer, sizeof buffer, " job=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kCheckpoint ||
             event.kind == InspectorEventKind::kProgressRestored) {
    std::snprintf(buffer, sizeof buffer, " progress=%.1f%%",
                  static_cast<double>(event.aux) / 1e4);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kReplicaRelease) {
    line += event.aux != 0 ? " (uses-exhausted)" : " (copy-elsewhere)";
  } else if (event.kind == InspectorEventKind::kReplayDivergence) {
    std::snprintf(buffer, sizeof buffer, " reassigned=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kHostFetchStart ||
             event.kind == InspectorEventKind::kHostCacheFill ||
             event.kind == InspectorEventKind::kHostCacheEvict) {
    std::snprintf(buffer, sizeof buffer, " node=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kEdgeReleased) {
    std::snprintf(buffer, sizeof buffer, " -> T%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kTaskEnabled &&
             event.aux != 0) {
    line += " (at-load)";
  } else if (event.kind == InspectorEventKind::kDataMigrateStart ||
             event.kind == InspectorEventKind::kDataMigrated) {
    std::snprintf(buffer, sizeof buffer, " -> node%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kTaskDrained ||
             event.kind == InspectorEventKind::kNodeWarmFill) {
    std::snprintf(buffer, sizeof buffer, " node=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kNodeDrainStart) {
    std::snprintf(buffer, sizeof buffer, " pulled=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kNodeDrained) {
    std::snprintf(buffer, sizeof buffer, " latency=%uus", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kNodeJoinStart ||
             event.kind == InspectorEventKind::kNodeJoined) {
    std::snprintf(buffer, sizeof buffer, " fills=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kNodeLost) {
    std::snprintf(buffer, sizeof buffer, " orphans=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kOccupancyConfig) {
    std::snprintf(buffer, sizeof buffer, " threshold=%.2f",
                  static_cast<double>(event.aux) / 1e6);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kTaskAdmitted ||
             event.kind == InspectorEventKind::kAdmissionRejected) {
    std::snprintf(buffer, sizeof buffer, " active-warps=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kLinkDegraded) {
    std::snprintf(buffer, sizeof buffer, " factor=%.2f straggler=%uus",
                  static_cast<double>(event.bytes) / 1e6, event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kLinkPartitioned) {
    if (event.bytes > 0) {
      std::snprintf(buffer, sizeof buffer, " heal=%lluus",
                    static_cast<unsigned long long>(event.bytes));
      line += buffer;
    } else {
      line += " (no heal)";
    }
  } else if (event.kind == InspectorEventKind::kLinkRestored) {
    line += event.aux != 0 ? " (partition healed)" : " (degradation over)";
  } else if (event.kind == InspectorEventKind::kFetchTimeout) {
    std::snprintf(buffer, sizeof buffer, " source=node%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kFetchHedged) {
    std::snprintf(buffer, sizeof buffer, " -> node%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kHedgeWasted) {
    std::snprintf(buffer, sizeof buffer, " node=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kNodeSuspected) {
    std::snprintf(buffer, sizeof buffer, " timeouts=%u", event.aux);
    line += buffer;
  } else if (event.kind == InspectorEventKind::kNodeSuspicionEscalated) {
    std::snprintf(buffer, sizeof buffer, " after=%uus", event.aux);
    line += buffer;
  }
  return line;
}

}  // namespace mg::sim
