// Shared host<->GPU transfer bus (Figure 2 of the paper).
//
// All GPUs load data from host memory through one channel of fixed
// bandwidth. Requests are served in FIFO order, one at a time: for aggregate
// throughput this is equivalent to PCIe fair sharing, and it preserves the
// property the paper relies on — GPUs contend for the same bytes/second, so
// reducing total transferred volume directly shortens the transfer-bound
// phases.
//
// Fault injection hooks in at delivery time: an optional FaultHook is
// consulted the moment a transfer leaves the wire; it may fail the attempt,
// in which case the request re-enters the queue after a backoff delay (the
// bytes were spent on the wire but never delivered). A GPU loss drains the
// still-queued requests towards the dead device so the channel does not
// waste time on them.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "core/ids.hpp"
#include "core/platform.hpp"
#include "sim/event_queue.hpp"
#include "sim/transfer_router.hpp"

namespace mg::sim {

/// A Bus is itself a TransferRouter that routes everything through its own
/// channel — the host-only topology, and the building block of the NVLink
/// topology (one extra Bus per GPU egress port).
class Bus : public TransferRouter {
 public:
  using OnComplete = std::function<void()>;

  /// Called when a queued request is about to be served. Returning true
  /// means the filter took the request over (e.g. rerouted it to a peer
  /// link because a replica appeared while it was queued); the bus then
  /// skips it. The callback is moved out by a filter that takes over.
  using StartFilter = std::function<bool(core::GpuId dst, core::DataId data,
                                         std::uint64_t bytes,
                                         OnComplete& on_complete)>;

  /// Wire-occupancy observer: called with `started == true` the moment a
  /// transfer begins occupying the channel and with `started == false` when
  /// it leaves the wire (before its completion callback runs). At most one
  /// transfer is on the wire at a time — that is the serial-link property
  /// the inspector's invariant checker verifies through this hook.
  using WireObserver = std::function<void(bool started, core::GpuId dst,
                                          core::DataId data,
                                          std::uint64_t bytes)>;

  /// Fault decision, consulted as a transfer leaves the wire. A negative
  /// return delivers the transfer; a return >= 0 fails this attempt and
  /// re-enqueues the request after that many microseconds of backoff.
  /// `attempt` is 1-based and increments on every failure.
  using FaultHook = std::function<double(core::GpuId dst, core::DataId data,
                                         std::uint64_t bytes,
                                         std::uint32_t attempt)>;

  /// Duration adjustment, consulted as a transfer enters the wire with the
  /// modeled duration `base_us`. Returns the effective wire time — a
  /// degraded link multiplies and a straggler adds latency; returning
  /// `base_us` unchanged models a healthy link.
  using CostHook = std::function<double(core::GpuId dst, std::uint64_t bytes,
                                        double base_us)>;

  /// A queued transfer. Public so that GPU-loss recovery can drain and
  /// inspect pending requests.
  struct Request {
    core::GpuId gpu;
    core::DataId data;
    std::uint64_t bytes;
    OnComplete on_complete;
    TransferPriority priority = TransferPriority::kHigh;
    std::uint32_t attempt = 1;
  };

  Bus(EventQueue& events, double bandwidth_bytes_per_s, double latency_us)
      : events_(events),
        bandwidth_(bandwidth_bytes_per_s),
        latency_us_(latency_us) {}

  /// Enqueues a host->GPU transfer; `on_complete` runs when the data has
  /// fully landed on the GPU. Low-priority requests wait until the high
  /// queue is empty.
  void request(core::GpuId gpu, core::DataId data, std::uint64_t bytes,
               OnComplete on_complete,
               TransferPriority priority = TransferPriority::kHigh) {
    enqueue(Request{gpu, data, bytes, std::move(on_complete), priority, 1});
  }

  void request_transfer(core::GpuId dst, core::DataId data,
                        std::uint64_t bytes, std::function<void()> on_complete,
                        TransferPriority priority) override {
    request(dst, data, bytes, std::move(on_complete), priority);
  }

  /// Moves a queued low-priority request for (dst, data) to the high queue.
  void promote(core::GpuId dst, core::DataId data) override {
    for (auto it = low_queue_.begin(); it != low_queue_.end(); ++it) {
      if (it->gpu == dst && it->data == data) {
        it->priority = TransferPriority::kHigh;
        queue_.push_back(std::move(*it));
        low_queue_.erase(it);
        return;
      }
    }
  }

  void set_start_filter(StartFilter filter) { filter_ = std::move(filter); }
  void set_wire_observer(WireObserver observer) {
    wire_observer_ = std::move(observer);
  }
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  void set_cost_hook(CostHook hook) { cost_hook_ = std::move(hook); }

  /// Removes and returns every still-queued request towards `dst` (GPU-loss
  /// recovery). A request already on the wire, or waiting out a retry
  /// backoff, is not queued and cannot be drained — its completion callback
  /// must cope with a dead destination instead.
  [[nodiscard]] std::vector<Request> drain_pending_to(core::GpuId dst) {
    std::vector<Request> drained;
    for (std::deque<Request>* queue : {&queue_, &low_queue_}) {
      for (auto it = queue->begin(); it != queue->end();) {
        if (it->gpu == dst) {
          drained.push_back(std::move(*it));
          it = queue->erase(it);
        } else {
          ++it;
        }
      }
    }
    return drained;
  }

  /// Removes and returns every still-queued request (used when the channel's
  /// source GPU dies and the whole egress port goes dark).
  [[nodiscard]] std::vector<Request> drain_all_pending() {
    std::vector<Request> drained;
    for (std::deque<Request>* queue : {&queue_, &low_queue_}) {
      for (Request& request : *queue) drained.push_back(std::move(request));
      queue->clear();
    }
    return drained;
  }

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t pending() const {
    return queue_.size() + low_queue_.size();
  }
  [[nodiscard]] double busy_time_us() const { return busy_time_us_; }

 private:
  void enqueue(Request request) {
    auto& queue =
        request.priority == TransferPriority::kHigh ? queue_ : low_queue_;
    queue.push_back(std::move(request));
    if (!busy_) start_next();
  }

  void start_next() {
    for (;;) {
      std::deque<Request>* queue =
          !queue_.empty() ? &queue_ : (!low_queue_.empty() ? &low_queue_ : nullptr);
      if (queue == nullptr) {
        busy_ = false;
        return;
      }
      Request& front = queue->front();
      if (filter_ &&
          filter_(front.gpu, front.data, front.bytes, front.on_complete)) {
        queue->pop_front();  // the filter took the request over
        continue;
      }
      busy_ = true;
      Request request = std::move(front);
      queue->pop_front();
      double duration =
          core::Platform::link_time_us(request.bytes, bandwidth_, latency_us_);
      if (cost_hook_) {
        duration = cost_hook_(request.gpu, request.bytes, duration);
      }
      busy_time_us_ += duration;
      if (wire_observer_) {
        wire_observer_(true, request.gpu, request.data, request.bytes);
      }
      events_.schedule_after(
          duration, [this, request = std::move(request)]() mutable {
            if (wire_observer_) {
              wire_observer_(false, request.gpu, request.data, request.bytes);
            }
            if (fault_hook_) {
              const double backoff = fault_hook_(request.gpu, request.data,
                                                 request.bytes,
                                                 request.attempt);
              if (backoff >= 0.0) {
                ++request.attempt;
                events_.schedule_after(
                    backoff, [this, request = std::move(request)]() mutable {
                      enqueue(std::move(request));
                    });
                start_next();
                return;
              }
            }
            request.on_complete();
            start_next();
          });
      return;
    }
  }

  EventQueue& events_;
  double bandwidth_;
  double latency_us_;
  std::deque<Request> queue_;
  std::deque<Request> low_queue_;
  StartFilter filter_;
  WireObserver wire_observer_;
  FaultHook fault_hook_;
  CostHook cost_hook_;
  bool busy_ = false;
  double busy_time_us_ = 0.0;
};

}  // namespace mg::sim
