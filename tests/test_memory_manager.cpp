#include "sim/memory_manager.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/task_graph.hpp"
#include "sim/bus.hpp"
#include "sim/lru_eviction.hpp"

namespace mg::sim {
namespace {

using core::DataId;

/// Records load/evict notifications in order.
class RecordingObserver : public MemoryManager::Observer {
 public:
  void on_data_loaded(core::GpuId, DataId data) override {
    loads.push_back(data);
  }
  void on_data_evicted(core::GpuId, DataId data) override {
    evictions.push_back(data);
  }
  std::vector<DataId> loads;
  std::vector<DataId> evictions;
};

/// Ten data items of 10 bytes each; one task touching each (required by the
/// builder, unused here).
core::TaskGraph make_graph(int num_data = 10, std::uint64_t size = 10) {
  core::TaskGraphBuilder builder;
  for (int i = 0; i < num_data; ++i) {
    const DataId data = builder.add_data(size);
    builder.add_task(1.0, {data});
  }
  return builder.build();
}

struct Fixture {
  explicit Fixture(std::uint64_t capacity, int num_data = 10,
                   std::uint64_t size = 10)
      : graph(make_graph(num_data, size)),
        bus(events, 1e6, 0.0),  // 1 byte/us, zero latency: easy arithmetic
        manager(0, graph, capacity, bus),
        lru(1, graph.num_data()) {
    manager.set_observer(&observer);
    manager.set_eviction_policy(&lru);
  }

  EventQueue events;
  core::TaskGraph graph;
  Bus bus;
  MemoryManager manager;
  LruEviction lru;
  RecordingObserver observer;
};

TEST(MemoryManager, FetchMakesDataResident) {
  Fixture fixture(100);
  EXPECT_FALSE(fixture.manager.is_present(0));
  fixture.manager.fetch(0, /*demand=*/true);
  EXPECT_FALSE(fixture.manager.is_present(0));
  EXPECT_TRUE(fixture.manager.is_present_or_fetching(0));
  fixture.events.run_until_empty();
  EXPECT_TRUE(fixture.manager.is_present(0));
  EXPECT_EQ(fixture.observer.loads, (std::vector<DataId>{0}));
  EXPECT_EQ(fixture.manager.used_bytes(), 10u);
}

TEST(MemoryManager, RefetchOfResidentDataIsNoOp) {
  Fixture fixture(100);
  fixture.manager.fetch(0, true);
  fixture.events.run_until_empty();
  fixture.manager.fetch(0, true);
  fixture.manager.fetch(0, false);
  fixture.events.run_until_empty();
  EXPECT_EQ(fixture.observer.loads.size(), 1u);
}

TEST(MemoryManager, ConcurrentFetchOfSameDataCoalesces) {
  Fixture fixture(100);
  fixture.manager.fetch(0, false);
  fixture.manager.fetch(0, true);  // while in flight
  fixture.events.run_until_empty();
  EXPECT_EQ(fixture.observer.loads.size(), 1u);
  EXPECT_EQ(fixture.manager.used_bytes(), 10u);
}

TEST(MemoryManager, CommittedBytesRespectCapacity) {
  Fixture fixture(35);  // room for 3 of 10 bytes
  for (DataId data = 0; data < 3; ++data) fixture.manager.fetch(data, true);
  EXPECT_EQ(fixture.manager.used_bytes(), 30u);
  fixture.events.run_until_empty();
  EXPECT_EQ(fixture.manager.used_bytes(), 30u);
  EXPECT_LE(fixture.manager.used_bytes(), fixture.manager.capacity_bytes());
}

TEST(MemoryManager, LruEvictsLeastRecentlyUsed) {
  Fixture fixture(30);
  for (DataId data = 0; data < 3; ++data) {
    fixture.manager.fetch(data, true);
    fixture.events.run_until_empty();
  }
  // Touch 0 so 1 becomes the least recently used.
  fixture.manager.touch(0);
  fixture.manager.fetch(3, true);
  fixture.events.run_until_empty();
  EXPECT_EQ(fixture.observer.evictions, (std::vector<DataId>{1}));
  EXPECT_TRUE(fixture.manager.is_present(3));
  EXPECT_TRUE(fixture.manager.is_present(0));
}

TEST(MemoryManager, PinnedDataIsNotEvicted) {
  Fixture fixture(30);
  for (DataId data = 0; data < 3; ++data) {
    fixture.manager.fetch(data, true);
    fixture.events.run_until_empty();
  }
  fixture.manager.pin(0);
  fixture.manager.pin(1);
  fixture.manager.fetch(3, true);
  fixture.events.run_until_empty();
  EXPECT_EQ(fixture.observer.evictions, (std::vector<DataId>{2}));
}

TEST(MemoryManager, FetchStallsWhenAllPinnedAndResumesOnUnpin) {
  Fixture fixture(30);
  for (DataId data = 0; data < 3; ++data) {
    fixture.manager.fetch(data, true);
    fixture.events.run_until_empty();
    fixture.manager.pin(data);
  }
  fixture.manager.fetch(3, true);
  fixture.events.run_until_empty();
  EXPECT_FALSE(fixture.manager.is_present_or_fetching(3));
  EXPECT_EQ(fixture.manager.stalled_fetches(), 1u);

  fixture.manager.unpin(1);
  fixture.events.run_until_empty();
  EXPECT_TRUE(fixture.manager.is_present(3));
  EXPECT_EQ(fixture.observer.evictions, (std::vector<DataId>{1}));
  EXPECT_EQ(fixture.manager.stalled_fetches(), 0u);
}

TEST(MemoryManager, StalledDemandBeatsStalledPrefetch) {
  Fixture fixture(30);
  for (DataId data = 0; data < 3; ++data) {
    fixture.manager.fetch(data, true);
    fixture.events.run_until_empty();
    fixture.manager.pin(data);
  }
  // Only one slot frees up; the demand fetch must win the retry despite
  // being parked after the prefetch.
  fixture.manager.fetch(3, /*demand=*/false);
  fixture.manager.fetch(4, /*demand=*/true);
  EXPECT_EQ(fixture.manager.stalled_fetches(), 2u);
  fixture.manager.unpin(0);
  // The freed slot went to the demand fetch: 4 is in flight, 3 still parked.
  EXPECT_EQ(fixture.manager.residency(4),
            MemoryManager::Residency::kFetching);
  EXPECT_EQ(fixture.manager.residency(3), MemoryManager::Residency::kAbsent);
  EXPECT_EQ(fixture.manager.stalled_fetches(), 1u);
  fixture.events.run_until_empty();
  // Once 4 lands (unpinned, as nothing in this test pins it), the parked
  // prefetch may legitimately recycle its slot; the load order is what the
  // priority guarantees.
  ASSERT_GE(fixture.observer.loads.size(), 4u);
  EXPECT_EQ(fixture.observer.loads[3], 4u);
}

TEST(MemoryManager, StalledFetchDeduplicatesAndUpgrades) {
  Fixture fixture(10);
  fixture.manager.fetch(0, true);
  fixture.events.run_until_empty();
  fixture.manager.pin(0);
  fixture.manager.fetch(1, false);
  fixture.manager.fetch(1, true);  // same data again: single upgraded entry
  EXPECT_EQ(fixture.manager.stalled_fetches(), 1u);
}

TEST(MemoryManager, ResidentListTracksContents) {
  Fixture fixture(100);
  for (DataId data = 0; data < 4; ++data) fixture.manager.fetch(data, true);
  fixture.events.run_until_empty();
  EXPECT_EQ(fixture.manager.resident().size(), 4u);
  EXPECT_EQ(fixture.manager.evictions(), 0u);
}

TEST(MemoryManagerDeath, OversizedDataAborts) {
  Fixture fixture(5);  // smaller than any data item
  EXPECT_DEATH(fixture.manager.fetch(0, true), "larger than GPU memory");
}

}  // namespace
}  // namespace mg::sim
