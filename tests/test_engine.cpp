#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/validate.hpp"
#include "core/task_graph.hpp"
#include "sched/eager.hpp"
#include "sched/fixed_order.hpp"
#include "workloads/matmul2d.hpp"

namespace mg::sim {
namespace {

using core::DataId;
using core::TaskId;

/// Test platform with trivial arithmetic: 1 byte transfers in 1 us (zero
/// latency), 1 flop computes in 1 us.
core::Platform test_platform(std::uint32_t gpus, std::uint64_t memory) {
  core::Platform platform;
  platform.num_gpus = gpus;
  platform.gpu_memory_bytes = memory;
  platform.gpu_gflops = 1e-3;                 // 1 flop = 1 us
  platform.bus_bandwidth_bytes_per_s = 1e6;   // 1 byte = 1 us
  platform.bus_latency_us = 0.0;
  return platform;
}

TEST(Engine, SingleTaskTimeline) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  builder.add_task(20.0, {d});
  const core::TaskGraph graph = builder.build();

  std::vector<std::vector<TaskId>> order{{0}};
  sched::FixedOrderScheduler scheduler(order);
  RuntimeEngine engine(graph, test_platform(1, 100), scheduler);
  const core::RunMetrics metrics = engine.run();

  EXPECT_DOUBLE_EQ(metrics.makespan_us, 30.0);  // 10us load + 20us compute
  EXPECT_EQ(metrics.total_loads(), 1u);
  EXPECT_EQ(metrics.total_bytes_loaded(), 10u);
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, 1u);
  EXPECT_DOUBLE_EQ(metrics.per_gpu[0].busy_time_us, 20.0);
}

TEST(Engine, SharedInputLoadedOnce) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  builder.add_task(20.0, {d});
  builder.add_task(20.0, {d});
  const core::TaskGraph graph = builder.build();

  sched::FixedOrderScheduler scheduler({{0, 1}});
  RuntimeEngine engine(graph, test_platform(1, 100), scheduler);
  const core::RunMetrics metrics = engine.run();

  EXPECT_EQ(metrics.total_loads(), 1u);
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 50.0);  // 10 + 2*20
}

TEST(Engine, PrefetchOverlapsWithCompute) {
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(10);
  builder.add_task(20.0, {d0});
  builder.add_task(20.0, {d1});
  const core::TaskGraph graph = builder.build();

  sched::FixedOrderScheduler scheduler({{0, 1}});
  RuntimeEngine engine(graph, test_platform(1, 100), scheduler);
  const core::RunMetrics metrics = engine.run();

  // d0 loads [0,10], t0 runs [10,30]; d1 prefetched [10,20] during t0's
  // load... bus is FIFO so d1 actually transfers [10,20], fully hidden.
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 50.0);
}

TEST(Engine, TwoGpusShareTheBus) {
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(10);
  builder.add_task(20.0, {d0});
  builder.add_task(20.0, {d1});
  const core::TaskGraph graph = builder.build();

  sched::FixedOrderScheduler scheduler({{0}, {1}});
  RuntimeEngine engine(graph, test_platform(2, 100), scheduler);
  const core::RunMetrics metrics = engine.run();

  // gpu0: load [0,10], compute [10,30]; gpu1's load serializes on the bus
  // [10,20], compute [20,40].
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 40.0);
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, 1u);
  EXPECT_EQ(metrics.per_gpu[1].tasks_executed, 1u);
}

TEST(Engine, EvictionHappensUnderMemoryPressure) {
  core::TaskGraphBuilder builder;
  const DataId a = builder.add_data(10);
  const DataId b = builder.add_data(10);
  const DataId c = builder.add_data(10);
  const DataId d = builder.add_data(10);
  builder.add_task(5.0, {a, b});
  builder.add_task(5.0, {a, c});
  builder.add_task(5.0, {a, d});
  const core::TaskGraph graph = builder.build();

  sched::FixedOrderScheduler scheduler({{0, 1, 2}});
  EngineConfig config;
  config.record_trace = true;
  const core::Platform platform = test_platform(1, 20);  // 2 data fit
  RuntimeEngine engine(graph, platform, scheduler, config);
  const core::RunMetrics metrics = engine.run();

  // a is always the most recently used; b, c are evicted in turn.
  EXPECT_EQ(metrics.total_loads(), 4u);
  EXPECT_EQ(metrics.total_evictions(), 2u);

  const auto validation =
      analysis::validate_trace(graph, platform, engine.trace());
  EXPECT_TRUE(validation.ok) << validation.error;
}

TEST(Engine, TraceRecordsExecutionOrder) {
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  builder.add_task(5.0, {d0});
  builder.add_task(5.0, {d0});
  builder.add_task(5.0, {d0});
  const core::TaskGraph graph = builder.build();

  sched::FixedOrderScheduler scheduler({{2, 0, 1}});
  EngineConfig config;
  config.record_trace = true;
  RuntimeEngine engine(graph, test_platform(1, 100), scheduler, config);
  (void)engine.run();

  EXPECT_EQ(engine.trace().execution_order(0),
            (std::vector<TaskId>{2, 0, 1}));
}

TEST(Engine, PipelineDepthOneStillCompletes) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 4, .data_bytes = 10, .flops_per_byte = 1.0});
  sched::EagerScheduler scheduler;
  EngineConfig config;
  config.pipeline_depth = 1;
  RuntimeEngine engine(graph, test_platform(1, 200), scheduler, config);
  const core::RunMetrics metrics = engine.run();
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, 16u);
}

TEST(Engine, SchedulerCostAccountingStillCompletes) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 4, .data_bytes = 10, .flops_per_byte = 1.0});
  sched::EagerScheduler scheduler;
  EngineConfig config;
  config.account_scheduler_cost = true;
  RuntimeEngine engine(graph, test_platform(1, 200), scheduler, config);
  const core::RunMetrics metrics = engine.run();
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, 16u);
  EXPECT_TRUE(metrics.scheduler_cost_accounted);
  EXPECT_GE(metrics.wall_makespan_us(), metrics.makespan_us);
}

TEST(Engine, StallTimeComplementsBusyTime) {
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(100);
  builder.add_task(5.0, {d0});
  const core::TaskGraph graph = builder.build();
  std::vector<std::vector<TaskId>> order{{0}};
  sched::FixedOrderScheduler scheduler(order);
  RuntimeEngine engine(graph, test_platform(1, 200), scheduler);
  const core::RunMetrics metrics = engine.run();
  // 100us load, 5us compute: 100us of stall.
  EXPECT_DOUBLE_EQ(metrics.per_gpu[0].stall_time_us, 100.0);
}

/// Scheduler with a fixed order plus explicit prefetch hints.
class HintingScheduler final : public core::Scheduler {
 public:
  HintingScheduler(std::vector<TaskId> order, std::vector<DataId> hints)
      : order_(std::move(order)), hints_(std::move(hints)) {}
  [[nodiscard]] std::string_view name() const override { return "hinting"; }
  void prepare(const core::TaskGraph&, const core::Platform&,
               std::uint64_t) override {}
  [[nodiscard]] core::TaskId pop_task(core::GpuId,
                                      const core::MemoryView&) override {
    if (cursor_ >= order_.size()) return core::kInvalidTask;
    return order_[cursor_++];
  }
  [[nodiscard]] std::vector<DataId> prefetch_hints(core::GpuId) override {
    return hints_;
  }

 private:
  std::vector<TaskId> order_;
  std::vector<DataId> hints_;
  std::size_t cursor_ = 0;
};

TEST(Engine, FreeSpaceHintsPrefetchWithoutEvicting) {
  // Four data of 10 bytes, memory 40: hints for all four can prefetch into
  // free space before the tasks arrive at them.
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < 4; ++i) data.push_back(builder.add_data(10));
  for (int i = 0; i < 4; ++i) {
    builder.add_task(100.0, {data[static_cast<std::size_t>(i)]});
  }
  const core::TaskGraph graph = builder.build();

  HintingScheduler scheduler({0, 1, 2, 3}, data);
  EngineConfig config;
  config.pipeline_depth = 1;  // no pipeline prefetch: hints do the work
  RuntimeEngine engine(graph, test_platform(1, 40), scheduler, config);
  const core::RunMetrics metrics = engine.run();
  // All transfers [0..40us] hide under task 0's compute [10,110]; tasks
  // run back to back: makespan = 10 + 4*100.
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 410.0);
  EXPECT_EQ(metrics.total_evictions(), 0u);
}

TEST(Engine, HintsStopAtFullMemoryUnlessAllowedToEvict) {
  // Memory fits 2 of 4 data. Free-space hints prefetch only the first two;
  // with hints_may_evict they keep streaming (evicting used data).
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < 4; ++i) data.push_back(builder.add_data(10));
  for (int i = 0; i < 4; ++i) {
    builder.add_task(100.0, {data[static_cast<std::size_t>(i)]});
  }
  const core::TaskGraph graph = builder.build();

  auto run = [&](bool may_evict) {
    HintingScheduler scheduler({0, 1, 2, 3}, data);
    EngineConfig config;
    config.pipeline_depth = 1;
    config.hints_may_evict = may_evict;
    RuntimeEngine engine(graph, test_platform(1, 20), scheduler, config);
    return engine.run();
  };

  const core::RunMetrics conservative = run(false);
  const core::RunMetrics eager = run(true);
  EXPECT_EQ(conservative.total_loads(), 4u);
  EXPECT_EQ(eager.total_loads(), 4u);
  // Eager hints overlap the later transfers with compute; both complete.
  EXPECT_LE(eager.makespan_us, conservative.makespan_us);
  EXPECT_GE(eager.total_evictions(), 2u);
}

/// Scheduler that never yields a task: the engine must detect the deadlock.
class RefusingScheduler final : public core::Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "refuse"; }
  void prepare(const core::TaskGraph&, const core::Platform&,
               std::uint64_t) override {}
  [[nodiscard]] core::TaskId pop_task(core::GpuId,
                                      const core::MemoryView&) override {
    return core::kInvalidTask;
  }
};

TEST(Engine, DetectsSchedulerDeadlock) {
  core::TaskGraphBuilder builder;
  builder.add_task(5.0, {builder.add_data(10)});
  const core::TaskGraph graph = builder.build();
  RefusingScheduler scheduler;
  RuntimeEngine engine(graph, test_platform(1, 100), scheduler);
  try {
    (void)engine.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& error) {
    EXPECT_NE(std::string(error.what()).find("deadlock"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("gpu0"), std::string::npos);
  }
}

TEST(Engine, EventBudgetExceededThrows) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  for (int i = 0; i < 8; ++i) builder.add_task(5.0, {d});
  const core::TaskGraph graph = builder.build();
  sched::EagerScheduler scheduler;
  EngineConfig config;
  config.max_events = 3;  // far below what the run needs
  RuntimeEngine engine(graph, test_platform(1, 100), scheduler, config);
  try {
    (void)engine.run();
    FAIL() << "expected BudgetExceededError";
  } catch (const BudgetExceededError& error) {
    EXPECT_NE(std::string(error.what()).find("budget exceeded"),
              std::string::npos);
  }
}

TEST(Engine, SimTimeBudgetExceededThrows) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  for (int i = 0; i < 8; ++i) builder.add_task(5.0, {d});
  const core::TaskGraph graph = builder.build();
  sched::EagerScheduler scheduler;
  EngineConfig config;
  config.max_sim_time_us = 12.0;  // run needs 10us load + 40us compute
  RuntimeEngine engine(graph, test_platform(1, 100), scheduler, config);
  EXPECT_THROW((void)engine.run(), BudgetExceededError);
}

TEST(Engine, BudgetsLargeEnoughDoNotFire) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  builder.add_task(5.0, {d});
  const core::TaskGraph graph = builder.build();
  sched::EagerScheduler scheduler;
  EngineConfig config;
  config.max_events = 100000;
  config.max_sim_time_us = 1e9;
  RuntimeEngine engine(graph, test_platform(1, 100), scheduler, config);
  const core::RunMetrics metrics = engine.run();
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 15.0);
}

TEST(EngineDeathTest, RejectsOversizedTaskFootprint) {
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(60);
  const DataId d1 = builder.add_data(60);
  builder.add_task(5.0, {d0, d1});
  const core::TaskGraph graph = builder.build();
  sched::EagerScheduler scheduler;
  EXPECT_DEATH(RuntimeEngine(graph, test_platform(1, 100), scheduler),
               "do not fit");
}

}  // namespace
}  // namespace mg::sim
