#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "viz/figure_csv.hpp"
#include "viz/svg_chart.hpp"

namespace mg::viz {
namespace {

TEST(SvgChart, RendersWellFormedDocument) {
  ChartConfig config;
  config.title = "Test & demo <chart>";
  config.x_label = "Working set (MB)";
  config.y_label = "GFlop/s";
  std::vector<Series> series{
      {"DARTS+LUF", {{100, 12000}, {200, 13000}, {300, 13200}}},
      {"EAGER", {{100, 11000}, {200, 9000}, {300, 7500}}},
  };
  std::vector<ReferenceLine> references{
      {"GFlop/s max", 13253.0, true},
      {"B fits", 250.0, false},
  };
  const std::string svg = render_line_chart(config, series, references);

  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // XML-escaped title.
  EXPECT_NE(svg.find("Test &amp; demo &lt;chart&gt;"), std::string::npos);
  EXPECT_EQ(svg.find("<chart>"), std::string::npos);
  // One polyline per series, legend labels present.
  std::size_t polylines = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++polylines;
  }
  EXPECT_EQ(polylines, 2u);
  EXPECT_NE(svg.find("DARTS+LUF"), std::string::npos);
  EXPECT_NE(svg.find("GFlop/s max"), std::string::npos);
}

TEST(SvgChart, HandlesEmptyInput) {
  const std::string svg = render_line_chart({}, {}, {});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgChart, LogarithmicAxisRenders) {
  ChartConfig config;
  config.logarithmic_y = true;
  config.y_from_zero = false;
  std::vector<Series> series{{"loads", {{1, 10}, {2, 1000}, {3, 100000}}}};
  const std::string svg = render_line_chart(config, series);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
}

TEST(SvgChart, WriteToFileRoundTrips) {
  const std::string path = testing::TempDir() + "/chart.svg";
  std::vector<Series> series{{"s", {{0, 1}, {1, 2}}}};
  ASSERT_TRUE(write_line_chart({}, series, {}, path));
  std::ifstream input(path);
  ASSERT_TRUE(input.good());
  std::string first_line;
  std::getline(input, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FigureCsv, ParsesHarnessOutput) {
  const std::string path = testing::TempDir() + "/figure.csv";
  {
    std::ofstream out(path);
    out << "working_set_mb,scheduler,gflops,transfers_mb\n";
    out << "# fig99: demo\n";
    out << "# gflops_max: 13253\n";
    out << "# threshold_both_fit_mb: 500 threshold_one_fits_mb: 1000\n";
    out << "# point ws=140MB tasks=25 data=10 pci_limit_mb=203\n";
    out << "140,EAGER,10262,140\n";
    out << "140,DARTS+LUF,11036.5,140\n";
    out << "# point ws=336MB tasks=144 data=24 pci_limit_mb=1168\n";
    out << "336,EAGER,12188,336\n";
  }

  const FigureData data = parse_figure_csv(path);
  ASSERT_FALSE(data.empty());
  EXPECT_DOUBLE_EQ(data.gflops_max, 13253.0);
  EXPECT_DOUBLE_EQ(data.threshold_both_fit_mb, 500.0);
  EXPECT_DOUBLE_EQ(data.threshold_one_fits_mb, 1000.0);
  ASSERT_EQ(data.pci_limit.size(), 2u);
  EXPECT_DOUBLE_EQ(data.pci_limit[0].first, 140.0);
  EXPECT_DOUBLE_EQ(data.pci_limit[0].second, 203.0);

  ASSERT_EQ(data.by_scheduler.count("EAGER"), 1u);
  ASSERT_EQ(data.by_scheduler.at("EAGER").size(), 2u);
  EXPECT_DOUBLE_EQ(data.by_scheduler.at("EAGER")[0].working_set_mb, 140.0);
  EXPECT_DOUBLE_EQ(data.by_scheduler.at("EAGER")[0].values.at("gflops"),
                   10262.0);
  EXPECT_DOUBLE_EQ(
      data.by_scheduler.at("DARTS+LUF")[0].values.at("transfers_mb"), 140.0);
  std::remove(path.c_str());
}

TEST(FigureCsv, MissingFileYieldsEmpty) {
  EXPECT_TRUE(parse_figure_csv("/nonexistent/x.csv").empty());
}

}  // namespace
}  // namespace mg::viz
