// End-to-end runs: every scheduler on every workload through the simulator,
// with trace validation and sanity bounds on the reported metrics.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/offline_model.hpp"
#include "analysis/validate.hpp"
#include "core/darts.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "sched/hmetis_r.hpp"
#include "sim/engine.hpp"
#include "workloads/workloads.hpp"

namespace mg {
namespace {

std::unique_ptr<core::Scheduler> make_scheduler(const std::string& kind) {
  if (kind == "eager") return std::make_unique<sched::EagerScheduler>();
  if (kind == "dmda") return std::make_unique<sched::DmdaScheduler>(false);
  if (kind == "dmdar") return std::make_unique<sched::DmdaScheduler>(true);
  if (kind == "hfp") return std::make_unique<sched::HfpScheduler>();
  if (kind == "hmetis") return std::make_unique<sched::HmetisScheduler>();
  if (kind == "darts") {
    return std::make_unique<core::DartsScheduler>(
        core::DartsOptions{.use_luf = false});
  }
  if (kind == "darts_luf") return std::make_unique<core::DartsScheduler>();
  if (kind == "darts_luf_3i") {
    return std::make_unique<core::DartsScheduler>(
        core::DartsOptions{.use_luf = true, .three_inputs = true});
  }
  if (kind == "darts_luf_opti") {
    return std::make_unique<core::DartsScheduler>(
        core::DartsOptions{.use_luf = true, .opti = true});
  }
  ADD_FAILURE() << "unknown scheduler " << kind;
  return nullptr;
}

core::TaskGraph make_workload(const std::string& kind) {
  if (kind == "matmul2d") {
    return work::make_matmul_2d({.n = 8, .data_bytes = 14 * core::kMB});
  }
  if (kind == "matmul2d_random") {
    return work::make_matmul_2d(
        {.n = 8, .data_bytes = 14 * core::kMB, .randomize_order = true,
         .seed = 5});
  }
  if (kind == "matmul3d") {
    return work::make_matmul_3d({.n = 4, .data_bytes = 14 * core::kMB});
  }
  if (kind == "cholesky") return work::make_cholesky_tasks({.n = 8});
  if (kind == "sparse") {
    return work::make_sparse_matmul(
        {.n = 24, .keep_fraction = 0.05, .seed = 2});
  }
  ADD_FAILURE() << "unknown workload " << kind;
  return work::make_matmul_2d({.n = 2});
}

struct Case {
  std::string scheduler;
  std::string workload;
  std::uint32_t gpus;
  std::uint64_t memory_mb;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return info.param.scheduler + "_" + info.param.workload + "_" +
         std::to_string(info.param.gpus) + "gpu_" +
         std::to_string(info.param.memory_mb) + "MB";
}

class IntegrationTest : public testing::TestWithParam<Case> {};

TEST_P(IntegrationTest, RunsToCompletionAndRespectsModel) {
  const Case& param = GetParam();
  const core::TaskGraph graph = make_workload(param.workload);
  core::Platform platform =
      core::make_v100_platform(param.gpus, param.memory_mb * core::kMB);

  auto scheduler = make_scheduler(param.scheduler);
  ASSERT_NE(scheduler, nullptr);

  sim::EngineConfig config;
  config.record_trace = true;
  config.seed = 99;
  sim::RuntimeEngine engine(graph, platform, *scheduler, config);
  const core::RunMetrics metrics = engine.run();

  // All work done, split across GPUs.
  std::uint64_t executed = 0;
  for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
  EXPECT_EQ(executed, graph.num_tasks());

  // The trace respects the execution model (residency, memory bound,
  // exactly-once).
  const auto validation =
      analysis::validate_trace(graph, platform, engine.trace());
  EXPECT_TRUE(validation.ok) << validation.error;

  // Transferred volume can never beat the cold-start lower bound.
  EXPECT_GE(metrics.total_bytes_loaded(), analysis::bytes_lower_bound(graph));

  // Sanity on derived rates.
  EXPECT_GT(metrics.achieved_gflops(), 0.0);
  EXPECT_LE(metrics.achieved_gflops(), platform.peak_gflops() * 1.001);
}

constexpr const char* kSchedulers[] = {
    "eager", "dmda",      "dmdar",        "hfp",           "hmetis",
    "darts", "darts_luf", "darts_luf_3i", "darts_luf_opti"};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const char* scheduler : kSchedulers) {
    for (const char* workload :
         {"matmul2d", "matmul2d_random", "matmul3d", "cholesky", "sparse"}) {
      // Constrained and unconstrained memory, single and multi GPU.
      cases.push_back({scheduler, workload, 1, 120});
      cases.push_back({scheduler, workload, 2, 120});
      cases.push_back({scheduler, workload, 4, 500});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulersAllWorkloads, IntegrationTest,
                         testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace mg
