#include "sim/bus.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mg::sim {
namespace {

constexpr double kBandwidth = 16.0e9;  // bytes/s
constexpr double kLatency = 15.0;      // us

double transfer_us(std::uint64_t bytes) {
  return kLatency + static_cast<double>(bytes) / kBandwidth * 1e6;
}

TEST(Bus, SingleTransferTiming) {
  EventQueue events;
  Bus bus(events, kBandwidth, kLatency);
  double completion = -1.0;
  bus.request(0, 0, 14'000'000, [&] { completion = events.now(); });
  events.run_until_empty();
  EXPECT_NEAR(completion, transfer_us(14'000'000), 1e-9);
}

TEST(Bus, FifoOrderAcrossGpus) {
  EventQueue events;
  Bus bus(events, kBandwidth, kLatency);
  std::vector<int> order;
  bus.request(0, 0, 1000, [&order] { order.push_back(0); });
  bus.request(1, 1, 1000, [&order] { order.push_back(1); });
  bus.request(2, 2, 1000, [&order] { order.push_back(2); });
  events.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Bus, TransfersSerialize) {
  EventQueue events;
  Bus bus(events, kBandwidth, kLatency);
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    bus.request(0, static_cast<core::DataId>(i), 14'000'000,
                [&completions, &events] { completions.push_back(events.now()); });
  }
  events.run_until_empty();
  ASSERT_EQ(completions.size(), 3u);
  const double one = transfer_us(14'000'000);
  EXPECT_NEAR(completions[0], one, 1e-9);
  EXPECT_NEAR(completions[1], 2 * one, 1e-9);
  EXPECT_NEAR(completions[2], 3 * one, 1e-9);
}

TEST(Bus, RequestsDuringTransferQueueUp) {
  EventQueue events;
  Bus bus(events, kBandwidth, kLatency);
  double late_completion = -1.0;
  bus.request(0, 0, 16'000'000, [&] {
    // Enqueue a second transfer from within the first one's completion.
    bus.request(0, 1, 16'000'000, [&] { late_completion = events.now(); });
  });
  events.run_until_empty();
  EXPECT_NEAR(late_completion, 2 * transfer_us(16'000'000), 1e-9);
}

TEST(Bus, BusyTimeAccumulates) {
  EventQueue events;
  Bus bus(events, kBandwidth, kLatency);
  bus.request(0, 0, 8'000'000, [] {});
  bus.request(1, 1, 8'000'000, [] {});
  events.run_until_empty();
  EXPECT_NEAR(bus.busy_time_us(), 2 * transfer_us(8'000'000), 1e-9);
  EXPECT_FALSE(bus.busy());
  EXPECT_EQ(bus.pending(), 0u);
}

TEST(Bus, LowPriorityWaitsForHighQueue) {
  EventQueue events;
  Bus bus(events, kBandwidth, 0.0);
  std::vector<int> order;
  bus.request(0, 0, 1000, [&order] { order.push_back(0); });
  bus.request(0, 1, 1000, [&order] { order.push_back(1); },
              TransferPriority::kLow);
  bus.request(0, 2, 1000, [&order] { order.push_back(2); });
  events.run_until_empty();
  // The low-priority request (1) yields to the later high-priority one (2).
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(Bus, HighArrivingDuringLowTransferDoesNotPreempt) {
  EventQueue events;
  Bus bus(events, kBandwidth, 0.0);
  std::vector<int> order;
  bus.request(0, 0, 1000, [&] {
    // Queue a high-priority request while the low one below is next.
    bus.request(0, 2, 1000, [&order] { order.push_back(2); });
    order.push_back(0);
  });
  bus.request(0, 1, 1000, [&order] { order.push_back(1); },
              TransferPriority::kLow);
  events.run_until_empty();
  // The high request was enqueued before the bus picked its next transfer,
  // so it still wins over the parked low one.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(Bus, PromoteMovesLowRequestToHighQueue) {
  EventQueue events;
  Bus bus(events, kBandwidth, 0.0);
  std::vector<int> order;
  bus.request(0, 0, 1000, [&order] { order.push_back(0); });
  bus.request(0, 1, 1000, [&order] { order.push_back(1); },
              TransferPriority::kLow);
  bus.request(0, 2, 1000, [&order] { order.push_back(2); },
              TransferPriority::kLow);
  bus.request(0, 3, 1000, [&order] { order.push_back(3); });
  bus.promote(0, 2);  // the second low request becomes urgent
  events.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{0, 3, 2, 1}));
}

TEST(Bus, PromoteOfUnknownRequestIsNoOp) {
  EventQueue events;
  Bus bus(events, kBandwidth, 0.0);
  bus.promote(0, 42);  // nothing queued: must not crash
  int completed = 0;
  bus.request(0, 0, 1000, [&completed] { ++completed; });
  events.run_until_empty();
  EXPECT_EQ(completed, 1);
}

TEST(Bus, ZeroByteTransferCostsLatencyOnly) {
  EventQueue events;
  Bus bus(events, kBandwidth, kLatency);
  double completion = -1.0;
  bus.request(0, 0, 0, [&] { completion = events.now(); });
  events.run_until_empty();
  EXPECT_NEAR(completion, kLatency, 1e-12);
}

}  // namespace
}  // namespace mg::sim
