#include "analysis/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/darts.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"
#include "workloads/matmul2d.hpp"

namespace mg::analysis {
namespace {

struct RunResult {
  core::TaskGraph graph;
  core::Platform platform;
  sim::Trace trace;
};

RunResult run_small() {
  RunResult result{work::make_matmul_2d({.n = 4, .data_bytes = 10}),
                   core::Platform{}, {}};
  result.platform.num_gpus = 2;
  result.platform.gpu_memory_bytes = 100;
  result.platform.gpu_gflops = 1e-3;
  result.platform.bus_bandwidth_bytes_per_s = 1e6;
  result.platform.bus_latency_us = 0.0;
  core::DartsScheduler darts;
  sim::EngineConfig config;
  config.record_trace = true;
  sim::RuntimeEngine engine(result.graph, result.platform, darts, config);
  (void)engine.run();
  result.trace = engine.trace();
  return result;
}

TEST(ChromeTraceExport, ProducesParseableishJson) {
  const RunResult result = run_small();
  const std::string path = testing::TempDir() + "/trace.json";
  ASSERT_TRUE(export_chrome_trace(result.graph, result.platform, result.trace,
                                  path));

  std::ifstream input(path);
  ASSERT_TRUE(input.good());
  std::stringstream buffer;
  buffer << input.rdbuf();
  const std::string json = buffer.str();

  // Structural smoke checks: header, balanced braces, one complete-event
  // ("ph":"X") per task, thread-name metadata per GPU.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  std::size_t slices = 0;
  for (std::size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++slices;
  }
  EXPECT_EQ(slices, result.graph.num_tasks());
  EXPECT_NE(json.find("GPU 0"), std::string::npos);
  EXPECT_NE(json.find("GPU 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ChromeTraceExport, FailsCleanlyOnBadPath) {
  const RunResult result = run_small();
  EXPECT_FALSE(export_chrome_trace(result.graph, result.platform,
                                   result.trace, "/nonexistent/dir/t.json"));
}

TEST(ReuseStats, CountsLoadsAndReloads) {
  sim::Trace trace;
  trace.events = {
      {1.0, sim::TraceKind::kLoad, 0, 0},
      {2.0, sim::TraceKind::kLoad, 0, 1},
      {3.0, sim::TraceKind::kEvict, 0, 0},
      {4.0, sim::TraceKind::kLoad, 0, 0},      // reload of d0 on gpu0
      {5.0, sim::TraceKind::kPeerLoad, 1, 0},  // d0 on gpu1 via NVLink
  };
  core::TaskGraphBuilder builder;
  const auto d0 = builder.add_data(10);
  const auto d1 = builder.add_data(10);
  builder.add_task(1.0, {d0, d1});
  const core::TaskGraph graph = builder.build();
  core::Platform platform;
  platform.num_gpus = 2;

  const ReuseStats stats = compute_reuse_stats(graph, platform, trace);
  EXPECT_EQ(stats.total_loads, 4u);
  EXPECT_EQ(stats.distinct_data, 2u);
  EXPECT_EQ(stats.reloads, 1u);  // (gpu0, d0) loaded twice
  EXPECT_EQ(stats.max_loads_one_data, 3u);  // d0 across both gpus
  EXPECT_EQ(stats.most_reloaded, d0);
  ASSERT_EQ(stats.histogram.size(), 2u);
  EXPECT_EQ(stats.histogram[0], 2u);  // (gpu0,d1), (gpu1,d0) loaded once
  EXPECT_EQ(stats.histogram[1], 1u);  // (gpu0,d0) loaded twice
}

TEST(ReuseStats, PerfectReuseHasNoReloads) {
  const RunResult result = run_small();  // roomy memory: no evictions
  const ReuseStats stats =
      compute_reuse_stats(result.graph, result.platform, result.trace);
  EXPECT_EQ(stats.reloads, 0u);
  EXPECT_GE(stats.distinct_data, 1u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(100);
  pool.parallel_for(100, [&counts](std::size_t i) {
    counts[i].fetch_add(1);
  });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  util::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ParallelSimulationsAreIndependent) {
  // Run the same deterministic simulation on several threads; results must
  // match the sequential run (engines share no mutable state).
  const core::TaskGraph graph = work::make_matmul_2d({.n = 8, .data_bytes = 10});
  core::Platform platform;
  platform.num_gpus = 2;
  platform.gpu_memory_bytes = 200;
  platform.gpu_gflops = 1e-3;
  platform.bus_bandwidth_bytes_per_s = 1e6;
  platform.bus_latency_us = 0.0;

  auto run_once = [&] {
    core::DartsScheduler darts;
    sim::RuntimeEngine engine(graph, platform, darts, {.seed = 7});
    return engine.run().total_bytes_loaded();
  };
  const std::uint64_t expected = run_once();

  std::vector<std::uint64_t> results(8, 0);
  util::ThreadPool pool(4);
  pool.parallel_for(results.size(), [&](std::size_t i) {
    results[i] = run_once();
  });
  for (std::uint64_t value : results) EXPECT_EQ(value, expected);
}

}  // namespace
}  // namespace mg::analysis
