// Combined-feature stress sweep: every scheduler family crossed with
// NVLink, output write-backs, randomized irregular workloads and tight
// memory, every run trace-validated. This is the "does the whole machine
// hold together" net under the feature matrix.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/offline_model.hpp"
#include "analysis/validate.hpp"
#include "core/darts.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "sched/hmetis_r.hpp"
#include "sim/engine.hpp"
#include "workloads/workloads.hpp"

namespace mg {
namespace {

struct StressCase {
  std::string scheduler;
  std::uint64_t workload_seed;
  bool nvlink;
  bool outputs;
  std::uint32_t gpus;
  std::uint32_t pipeline_depth;
};

std::string stress_name(const testing::TestParamInfo<StressCase>& info) {
  const StressCase& c = info.param;
  return c.scheduler + "_s" + std::to_string(c.workload_seed) +
         (c.nvlink ? "_nvlink" : "") + (c.outputs ? "_outputs" : "") + "_" +
         std::to_string(c.gpus) + "gpu_d" + std::to_string(c.pipeline_depth);
}

std::unique_ptr<core::Scheduler> make_scheduler(const std::string& kind) {
  if (kind == "eager") return std::make_unique<sched::EagerScheduler>();
  if (kind == "dmdar") return std::make_unique<sched::DmdaScheduler>();
  if (kind == "hfp") return std::make_unique<sched::HfpScheduler>();
  if (kind == "hmetis") return std::make_unique<sched::HmetisScheduler>();
  if (kind == "darts_luf") return std::make_unique<core::DartsScheduler>();
  if (kind == "darts_incr") {
    return std::make_unique<core::DartsScheduler>(
        core::DartsOptions{.use_luf = true, .incremental = true});
  }
  ADD_FAILURE() << "unknown scheduler " << kind;
  return nullptr;
}

class StressTest : public testing::TestWithParam<StressCase> {};

TEST_P(StressTest, IrregularWorkloadUnderPressure) {
  const StressCase& param = GetParam();

  // Irregular random bipartite workload; tight memory relative to the
  // working set and to the pipeline footprint.
  core::TaskGraphBuilder builder;
  const core::TaskGraph base = work::make_random_bipartite(
      {.num_tasks = 150, .num_data = 40, .min_inputs = 1, .max_inputs = 3,
       .data_bytes = 10 * core::kMB, .task_flops = 5e9,
       .seed = param.workload_seed});
  // Rebuild with outputs when requested (generator has no output knob).
  core::TaskGraph graph = [&]() -> core::TaskGraph {
    if (!param.outputs) return base;
    core::TaskGraphBuilder with_outputs;
    for (core::DataId data = 0; data < base.num_data(); ++data) {
      with_outputs.add_data(base.data_size(data));
    }
    for (core::TaskId task = 0; task < base.num_tasks(); ++task) {
      const auto inputs = base.inputs(task);
      const core::TaskId copy = with_outputs.add_task(
          base.task_flops(task),
          std::span<const core::DataId>(inputs.data(), inputs.size()));
      with_outputs.set_task_output(copy, 4 * core::kMB);
    }
    return with_outputs.build();
  }();

  core::Platform platform =
      core::make_v100_platform(param.gpus, 80 * core::kMB);
  platform.nvlink_enabled = param.nvlink;

  auto scheduler = make_scheduler(param.scheduler);
  ASSERT_NE(scheduler, nullptr);

  sim::EngineConfig config;
  config.record_trace = true;
  config.pipeline_depth = param.pipeline_depth;
  config.seed = param.workload_seed * 7 + 1;
  sim::RuntimeEngine engine(graph, platform, *scheduler, config);
  const core::RunMetrics metrics = engine.run();

  std::uint64_t executed = 0;
  for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
  EXPECT_EQ(executed, graph.num_tasks());

  const auto validation =
      analysis::validate_trace(graph, platform, engine.trace());
  EXPECT_TRUE(validation.ok) << validation.error;

  // Every byte any GPU received came over some channel, and the used data
  // reached at least one GPU.
  EXPECT_GE(metrics.total_bytes_loaded() + metrics.total_bytes_from_peers(),
            analysis::bytes_lower_bound(graph));
  if (!param.nvlink) EXPECT_EQ(metrics.total_bytes_from_peers(), 0u);
  if (param.outputs) {
    EXPECT_GT(metrics.total_bytes_written_back(), 0u);
  } else {
    EXPECT_EQ(metrics.total_bytes_written_back(), 0u);
  }
}

std::vector<StressCase> stress_cases() {
  std::vector<StressCase> cases;
  const char* schedulers[] = {"eager", "dmdar", "hfp",
                              "hmetis", "darts_luf", "darts_incr"};
  int rotation = 0;
  for (const char* scheduler : schedulers) {
    for (std::uint64_t seed : {11ull, 77ull}) {
      // Rotate the feature combinations rather than the full cross product
      // to keep the suite fast while covering every pairing per scheduler.
      const bool nvlink = (rotation % 2) == 0;
      const bool outputs = (rotation % 3) != 0;
      cases.push_back({scheduler, seed, nvlink, outputs,
                       nvlink ? 4u : 2u,
                       (rotation % 2) == 0 ? 4u : 1u});
      cases.push_back({scheduler, seed, !nvlink, !outputs, 3u, 2u});
      ++rotation;
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(FeatureMatrix, StressTest,
                         testing::ValuesIn(stress_cases()), stress_name);

}  // namespace
}  // namespace mg
