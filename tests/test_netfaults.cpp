// Network-fault subsystem tests: schema-v3 link faults in the fault plan
// (round-trip, fuzzed rejection with line/column diagnostics, overlap
// validation), the engine's link windows (degradation stretches transfers,
// partitions park-and-heal), hedged remote fetches routing around a
// partition, the suspicion detector (raise, clear on proof of life,
// escalation to node loss after the confirm window), the knobs-off
// byte-identity guarantee, and the seeded retry-backoff jitter.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cluster/locality.hpp"
#include "core/task_graph.hpp"
#include "sched/eager.hpp"
#include "sim/engine.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fault_plan.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "workloads/matmul2d.hpp"

namespace mg {
namespace {

using core::DataId;
using core::TaskId;

core::Platform cluster_platform(std::uint32_t gpus, std::uint32_t nodes,
                                std::uint64_t memory = 1000) {
  core::Platform platform;
  platform.num_gpus = gpus;
  platform.num_nodes = nodes;
  platform.gpu_memory_bytes = memory;
  platform.gpu_gflops = 1e-3;
  platform.bus_bandwidth_bytes_per_s = 1e6;
  platform.bus_latency_us = 0.0;
  return platform;
}

/// A valid v3 plan exercising every LinkFault field.
sim::FaultPlan link_fault_plan() {
  sim::FaultPlan plan;
  plan.seed = 7;
  sim::FaultPlan::LinkFault degraded;
  degraded.src = 0;
  degraded.dst = 1;
  degraded.start_us = 100.0;
  degraded.end_us = 900.0;
  degraded.bandwidth_factor = 4.0;
  degraded.straggler_us = 50.0;
  plan.link_faults.push_back(degraded);
  sim::FaultPlan::LinkFault partition;
  partition.src = 1;
  partition.dst = 2;
  partition.start_us = 1000.0;
  partition.end_us = 2000.0;
  partition.partition = true;
  plan.link_faults.push_back(partition);
  return plan;
}

// ---- Schema v3: parsing, round-trip, fuzzed rejection ----------------------

TEST(FaultPlanV3, LinkFaultRoundTrip) {
  const sim::FaultPlan plan = link_fault_plan();
  const std::string json = sim::fault_plan_to_json(plan);
  std::string error;
  const auto parsed = sim::parse_fault_plan(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->link_faults.size(), 2u);
  const sim::FaultPlan::LinkFault& degraded = parsed->link_faults[0];
  EXPECT_EQ(degraded.src, 0u);
  EXPECT_EQ(degraded.dst, 1u);
  EXPECT_DOUBLE_EQ(degraded.start_us, 100.0);
  EXPECT_DOUBLE_EQ(degraded.end_us, 900.0);
  EXPECT_DOUBLE_EQ(degraded.bandwidth_factor, 4.0);
  EXPECT_DOUBLE_EQ(degraded.straggler_us, 50.0);
  EXPECT_FALSE(degraded.partition);
  const sim::FaultPlan::LinkFault& partition = parsed->link_faults[1];
  EXPECT_TRUE(partition.partition);
  EXPECT_DOUBLE_EQ(partition.start_us, 1000.0);
  EXPECT_DOUBLE_EQ(partition.end_us, 2000.0);
}

TEST(FaultPlanV3, NeverHealingPartitionRoundTripsAsInfinity) {
  sim::FaultPlan plan;
  sim::FaultPlan::LinkFault fault;
  fault.src = 0;
  fault.dst = 1;
  fault.partition = true;  // default end_us = infinity: never heals
  plan.link_faults.push_back(fault);
  const auto parsed = sim::parse_fault_plan(sim::fault_plan_to_json(plan));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->link_faults.size(), 1u);
  EXPECT_TRUE(std::isinf(parsed->link_faults[0].end_us));
  EXPECT_TRUE(parsed->link_faults[0].partition);
}

TEST(FaultPlanV3, TruncatedJsonIsRejectedWithLineAndColumn) {
  const std::string json = sim::fault_plan_to_json(link_fault_plan());
  // Chop the plan at several byte offsets: every prefix must be rejected
  // (never crash, never mis-parse) and syntax diagnostics must name the
  // line/column where parsing stopped.
  for (std::size_t cut : {1ul, json.size() / 4, json.size() / 2,
                          json.size() - 2, json.size() - 1}) {
    std::string error;
    const auto parsed = sim::parse_fault_plan(json.substr(0, cut), &error);
    EXPECT_FALSE(parsed.has_value()) << "cut at " << cut;
    EXPECT_NE(error.find("line"), std::string::npos)
        << "cut at " << cut << ": " << error;
    EXPECT_NE(error.find("column"), std::string::npos)
        << "cut at " << cut << ": " << error;
  }
}

TEST(FaultPlanV3, WrongTypesAreRejected) {
  const char* bad_plans[] = {
      // link_faults must be an array.
      R"({"schema_version":3,"link_faults":{}})",
      // src must be a number.
      R"({"schema_version":3,"link_faults":[{"src":"zero","dst":1}]})",
      // start_us must be a number.
      R"({"schema_version":3,"link_faults":[{"src":0,"dst":1,"start_us":[]}]})",
      // partition must be a boolean.
      R"({"schema_version":3,"link_faults":[{"src":0,"dst":1,"partition":3}]})",
      // schema_version must be a number.
      R"({"schema_version":"three","link_faults":[]})",
  };
  for (const char* json : bad_plans) {
    std::string error;
    EXPECT_FALSE(sim::parse_fault_plan(json, &error).has_value()) << json;
    EXPECT_FALSE(error.empty()) << json;
  }
}

TEST(FaultPlanV3, UnknownSchemaVersionsAreRejected) {
  std::string error;
  EXPECT_FALSE(
      sim::parse_fault_plan(R"({"schema_version":99})", &error).has_value());
  EXPECT_FALSE(
      sim::parse_fault_plan(R"({"schema_version":0})", &error).has_value());
  // v1 and v2 plans parse unchanged; v3 is current.
  EXPECT_TRUE(sim::parse_fault_plan(R"({"schema_version":1})").has_value());
  EXPECT_TRUE(sim::parse_fault_plan(R"({"schema_version":2})").has_value());
  EXPECT_TRUE(sim::parse_fault_plan(R"({"schema_version":3})").has_value());
}

TEST(FaultPlanV3, ValidateRejectsOverlappingWindowsOnOnePair) {
  sim::FaultPlan plan;
  sim::FaultPlan::LinkFault first;
  first.src = 0;
  first.dst = 1;
  first.start_us = 0.0;
  first.end_us = 500.0;
  first.bandwidth_factor = 2.0;
  plan.link_faults.push_back(first);
  // Overlap declared with the pair's ids swapped — links are symmetric, so
  // (1, 0) is the same pair.
  sim::FaultPlan::LinkFault second;
  second.src = 1;
  second.dst = 0;
  second.start_us = 400.0;
  second.end_us = 600.0;
  second.partition = true;
  plan.link_faults.push_back(second);
  EXPECT_FALSE(plan.validate(4, 2).empty());

  // Back-to-back windows ([0, 500) then [500, 600)) are fine.
  plan.link_faults[1].start_us = 500.0;
  EXPECT_TRUE(plan.validate(4, 2).empty())
      << plan.validate(4, 2);
}

TEST(FaultPlanV3, ValidateCatchesBadLinkFaults) {
  const auto single = [](sim::FaultPlan::LinkFault fault) {
    sim::FaultPlan plan;
    plan.link_faults.push_back(fault);
    return plan;
  };
  sim::FaultPlan::LinkFault fault;
  fault.src = 0;
  fault.dst = 0;
  EXPECT_FALSE(single(fault).validate(4, 2).empty()) << "src == dst";
  fault.dst = 7;
  EXPECT_FALSE(single(fault).validate(4, 2).empty()) << "node out of range";
  fault.dst = 1;
  fault.bandwidth_factor = 0.5;
  EXPECT_FALSE(single(fault).validate(4, 2).empty()) << "factor < 1";
  fault.bandwidth_factor = 1.0;
  fault.straggler_us = -5.0;
  EXPECT_FALSE(single(fault).validate(4, 2).empty()) << "negative straggler";
  fault.straggler_us = 0.0;
  fault.bandwidth_factor = 2.0;
  EXPECT_FALSE(single(fault).validate(4, 1).empty())
      << "link fault on a single-node platform";
  EXPECT_TRUE(single(fault).validate(4, 2).empty())
      << single(fault).validate(4, 2);
}

TEST(FaultPlanV3, RandomLinkFaultPlansAreValidAndHeal) {
  std::uint32_t with_link_fault = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    sim::RandomFaultOptions options;
    options.num_gpus = 4;
    options.num_nodes = 2 + static_cast<std::uint32_t>(seed % 2);
    options.allow_link_faults = true;
    const sim::FaultPlan plan = sim::make_random_fault_plan(seed, options);
    EXPECT_TRUE(plan.validate(options.num_gpus, options.num_nodes).empty())
        << plan.validate(options.num_gpus, options.num_nodes) << " (seed "
        << seed << ")";
    for (const sim::FaultPlan::LinkFault& fault : plan.link_faults) {
      ++with_link_fault;
      if (fault.partition) {
        // Random partitions always heal inside the horizon so differential
        // runs terminate without relying on detector escalation.
        EXPECT_TRUE(std::isfinite(fault.end_us)) << "seed " << seed;
        EXPECT_LE(fault.end_us, options.horizon_us) << "seed " << seed;
      }
    }
  }
  EXPECT_GT(with_link_fault, 0u) << "the generator never drew a link fault";
}

// ---- Engine: link windows --------------------------------------------------

/// Six tasks all reading d1 (homed on node 1), so node 0 fetches it over
/// the network once; `faults` shapes that fetch.
struct LinkRun {
  core::RunMetrics metrics;
  sim::RunReport report;
};
LinkRun run_shared_read(const sim::FaultPlan& plan,
                        sim::EngineConfig config = {},
                        std::uint32_t nodes = 2) {
  core::TaskGraphBuilder builder;
  builder.add_data(10);  // d0 keeps d1's id odd
  const DataId d1 = builder.add_data(10);
  for (int i = 0; i < 6; ++i) builder.add_task(1.0, {d1});
  const core::TaskGraph graph = builder.build();

  sched::EagerScheduler scheduler;
  sim::RuntimeEngine engine(graph, cluster_platform(nodes, nodes), scheduler,
                            config);
  sim::FaultInjector injector(plan);
  if (!plan.empty()) engine.set_fault_injector(&injector);
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  sim::RunReportCollector collector;
  engine.add_inspector(&collector);
  LinkRun run;
  run.metrics = engine.run();
  EXPECT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  run.report = collector.report();
  return run;
}

TEST(LinkFaults, DegradationStretchesRemoteTransfers) {
  const LinkRun clean = run_shared_read({});
  sim::FaultPlan plan;
  sim::FaultPlan::LinkFault fault;
  fault.src = 0;
  fault.dst = 1;
  fault.start_us = 0.0;
  fault.end_us = 1e6;
  fault.bandwidth_factor = 8.0;
  fault.straggler_us = 100.0;
  plan.link_faults.push_back(fault);
  const LinkRun degraded = run_shared_read(plan);

  EXPECT_GT(degraded.metrics.makespan_us, clean.metrics.makespan_us);
  EXPECT_FALSE(clean.report.network_faults.enabled);
  EXPECT_TRUE(degraded.report.network_faults.enabled);
  EXPECT_EQ(degraded.report.network_faults.link_degradations, 1u);
  EXPECT_EQ(degraded.report.network_faults.link_partitions, 0u);
}

TEST(LinkFaults, PartitionParksTransfersUntilTheHeal) {
  sim::FaultPlan plan;
  sim::FaultPlan::LinkFault fault;
  fault.src = 0;
  fault.dst = 1;
  fault.start_us = 0.0;
  fault.end_us = 5000.0;
  fault.partition = true;
  plan.link_faults.push_back(fault);
  const LinkRun run = run_shared_read(plan);

  // The remote fetch reached the wire inside the window, parked, and was
  // delivered only after the heal — the whole run waits for it.
  EXPECT_GE(run.metrics.makespan_us, 5000.0);
  EXPECT_EQ(run.report.network_faults.link_partitions, 1u);
  EXPECT_EQ(run.report.network_faults.link_heals, 1u);
  EXPECT_EQ(run.report.network_faults.fetch_timeouts, 0u)
      << "timeouts are off by default";
}

// ---- Engine: hedged fetches and suspicion ----------------------------------

TEST(NetFaultDetector, HedgedFetchRoutesAroundAPartition) {
  // 3 nodes, d2 homed on node 2, partition 0-2 for (effectively) the whole
  // run. Node 1 fetches d2 unhindered and fills its host cache; node 0's
  // fetch parks, times out, suspects node 2, and hedges to node 1 instead
  // of waiting ~1e9 us for the heal.
  core::TaskGraphBuilder builder;
  builder.add_data(10);
  builder.add_data(10);
  const DataId d2 = builder.add_data(10);  // id 2 -> homed on node 2
  for (int i = 0; i < 6; ++i) builder.add_task(1.0, {d2});
  const core::TaskGraph graph = builder.build();

  sim::FaultPlan plan;
  sim::FaultPlan::LinkFault fault;
  fault.src = 0;
  fault.dst = 2;
  fault.start_us = 0.0;
  fault.end_us = 1e9;
  fault.partition = true;
  plan.link_faults.push_back(fault);

  sim::EngineConfig config;
  config.fetch_timeout_factor = 2.0;
  config.max_fetch_hedges = 4;
  sched::EagerScheduler scheduler;
  sim::RuntimeEngine engine(graph, cluster_platform(3, 3), scheduler, config);
  sim::FaultInjector injector(plan);
  engine.set_fault_injector(&injector);
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  sim::RunReportCollector collector;
  engine.add_inspector(&collector);
  const core::RunMetrics metrics = engine.run();
  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;

  const sim::RunReport::NetworkFaults& net =
      collector.report().network_faults;
  EXPECT_LT(metrics.makespan_us, 1e6) << "the hedge never landed";
  EXPECT_GE(net.fetch_timeouts, 1u);
  EXPECT_GE(net.hedged_fetches, 1u);
  EXPECT_GE(net.nodes_suspected, 1u);
}

TEST(NetFaultDetector, SuspicionClearsOnDeliveryFromTheSuspect) {
  // 2 nodes: no alternate holder exists, so the timed-out fetch can only
  // back off until the partition heals. The healed delivery is proof of
  // life and must clear the suspicion it raised.
  sim::FaultPlan plan;
  sim::FaultPlan::LinkFault fault;
  fault.src = 0;
  fault.dst = 1;
  fault.start_us = 0.0;
  fault.end_us = 2000.0;
  fault.partition = true;
  plan.link_faults.push_back(fault);

  core::TaskGraphBuilder builder;
  builder.add_data(10);
  const DataId d1 = builder.add_data(10);
  for (int i = 0; i < 6; ++i) builder.add_task(1.0, {d1});
  const core::TaskGraph graph = builder.build();

  sim::EngineConfig config;
  config.fetch_timeout_factor = 2.0;
  // The locality scheduler consumes the suspected/cleared notifications
  // (remote-cost weighting) — exercise that path end to end.
  cluster::LocalityScheduler scheduler;
  sim::RuntimeEngine engine(graph, cluster_platform(2, 2), scheduler, config);
  sim::FaultInjector injector(plan);
  engine.set_fault_injector(&injector);
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  sim::RunReportCollector collector;
  engine.add_inspector(&collector);
  const core::RunMetrics metrics = engine.run();
  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;

  EXPECT_GE(metrics.makespan_us, 2000.0);
  const sim::RunReport::NetworkFaults& net =
      collector.report().network_faults;
  EXPECT_GE(net.fetch_timeouts, 1u);
  EXPECT_EQ(net.nodes_suspected, 1u);
  EXPECT_EQ(net.suspicions_cleared, 1u);
  EXPECT_EQ(net.suspicions_escalated, 0u);
}

TEST(NetFaultDetector, SuspicionEscalatesToNodeLossAfterTheConfirmWindow) {
  // A never-healing partition against the only holder: after the confirm
  // window the detector escalates to a node loss. Node 1's GPU dies, its
  // tasks re-run on node 0, d1 re-homes, and the stranded fetch is
  // re-issued so the run still terminates.
  sim::FaultPlan plan;
  sim::FaultPlan::LinkFault fault;
  fault.src = 0;
  fault.dst = 1;
  fault.start_us = 0.0;  // default end_us = infinity: never heals
  fault.partition = true;
  plan.link_faults.push_back(fault);

  sim::EngineConfig config;
  config.fetch_timeout_factor = 2.0;
  config.suspicion_confirm_window_us = 500.0;
  const LinkRun run = run_shared_read(plan, config);

  const sim::RunReport::NetworkFaults& net = run.report.network_faults;
  EXPECT_GE(net.fetch_timeouts, 1u);
  EXPECT_EQ(net.nodes_suspected, 1u);
  EXPECT_EQ(net.suspicions_escalated, 1u);
  EXPECT_GE(run.metrics.faults.gpu_losses, 1u) << "node 1 must be torn down";
  EXPECT_LT(run.metrics.makespan_us, 1e6)
      << "the re-homed shard never reached the waiting node";
}

// ---- Byte-identity guarantees ----------------------------------------------

std::string report_json_for(const core::TaskGraph& graph,
                            const core::Platform& platform,
                            sim::EngineConfig config,
                            const sim::FaultPlan* plan = nullptr) {
  sched::EagerScheduler scheduler;
  sim::RuntimeEngine engine(graph, platform, scheduler, config);
  sim::FaultInjector injector(plan != nullptr ? *plan : sim::FaultPlan{});
  if (plan != nullptr) engine.set_fault_injector(&injector);
  sim::RunReportCollector collector;
  engine.add_inspector(&collector);
  (void)engine.run();
  return sim::run_report_to_json(collector.report());
}

TEST(NetFaultDormancy, FaultFreeRunsAreByteIdenticalWithTheKnobsOn) {
  // Arming the detector must not move a single byte of the report while no
  // fault fires: the deadline events ride along but never act.
  const core::TaskGraph graph = work::make_matmul_2d({.n = 4});
  core::Platform platform = core::make_v100_platform(4, 200 * core::kMB);
  platform.num_nodes = 2;
  sim::EngineConfig armed;
  armed.fetch_timeout_factor = 1000.0;  // far above any congestion
  armed.max_fetch_hedges = 2;
  armed.suspicion_confirm_window_us = 1e7;
  EXPECT_EQ(report_json_for(graph, platform, {}),
            report_json_for(graph, platform, armed));
}

TEST(NetFaultDormancy, ReportCarriesSchemaV9AndADormantSection) {
  const core::TaskGraph graph = work::make_matmul_2d({.n = 4});
  core::Platform platform = core::make_v100_platform(2, 200 * core::kMB);
  platform.num_nodes = 2;
  const std::string json = report_json_for(graph, platform, {});
  EXPECT_NE(json.find("\"network_faults\":{\"enabled\":false"),
            std::string::npos)
      << json;
  EXPECT_EQ(sim::RunReport::kSchemaVersion, 10);
}

TEST(RetryJitter, ZeroJitterIsByteIdenticalAndJitterDiverges) {
  // Flaky transfers force retries; the seeded jitter must be a pure no-op
  // at 0 (string-equal reports) and actually move the schedule at 0.9.
  sim::FaultPlan plan;
  sim::FaultPlan::TransferFault fault;
  fault.start_us = 0.0;
  fault.end_us = 1e6;
  fault.probability = 1.0;
  fault.max_failures_per_transfer = 3;
  plan.transfer_faults.push_back(fault);

  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(100);
  const DataId d1 = builder.add_data(100);
  for (int i = 0; i < 4; ++i) builder.add_task(1.0, {i % 2 == 0 ? d0 : d1});
  const core::TaskGraph graph = builder.build();

  core::Platform platform;
  platform.num_gpus = 2;
  platform.gpu_memory_bytes = 1000;
  platform.gpu_gflops = 1e-3;
  platform.bus_bandwidth_bytes_per_s = 1e6;
  platform.bus_latency_us = 0.0;

  sim::EngineConfig zero;
  zero.retry_jitter = 0.0;
  sim::EngineConfig jittered;
  jittered.retry_jitter = 0.9;
  const std::string baseline = report_json_for(graph, platform, {}, &plan);
  EXPECT_EQ(baseline, report_json_for(graph, platform, zero, &plan));
  EXPECT_NE(baseline, report_json_for(graph, platform, jittered, &plan));
}

}  // namespace
}  // namespace mg
