#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "workloads/workloads.hpp"

namespace mg::work {
namespace {

using core::DataId;
using core::TaskId;

TEST(Matmul2D, ShapeMatchesPaper) {
  const core::TaskGraph graph = make_matmul_2d({.n = 5});
  EXPECT_EQ(graph.num_tasks(), 25u);
  EXPECT_EQ(graph.num_data(), 10u);
  // 5x5 grid = 140 MB working set, the first point of Figure 3.
  EXPECT_EQ(graph.working_set_bytes(), 140 * core::kMB);
  EXPECT_EQ(matmul_2d_working_set(5), 140 * core::kMB);
  EXPECT_EQ(matmul_2d_working_set(300), 8400 * core::kMB);
}

TEST(Matmul2D, EveryTaskReadsOneRowOneColumn) {
  const std::uint32_t n = 6;
  const core::TaskGraph graph = make_matmul_2d({.n = n});
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    const auto inputs = graph.inputs(task);
    ASSERT_EQ(inputs.size(), 2u);
    // Rows have ids [0, n), columns [n, 2n).
    EXPECT_LT(inputs[0], n);
    EXPECT_GE(inputs[1], n);
  }
  // Each row/column is read by exactly n tasks.
  for (DataId data = 0; data < graph.num_data(); ++data) {
    EXPECT_EQ(graph.consumers(data).size(), n);
  }
}

TEST(Matmul2D, RowMajorSubmissionOrder) {
  const std::uint32_t n = 4;
  const core::TaskGraph graph = make_matmul_2d({.n = n});
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    const auto inputs = graph.inputs(task);
    EXPECT_EQ(inputs[0], task / n);       // row index
    EXPECT_EQ(inputs[1], n + task % n);   // column index
  }
}

TEST(Matmul2D, RandomizedOrderIsAPermutation) {
  const core::TaskGraph natural = make_matmul_2d({.n = 6});
  const core::TaskGraph randomized =
      make_matmul_2d({.n = 6, .randomize_order = true, .seed = 4});
  ASSERT_EQ(randomized.num_tasks(), natural.num_tasks());
  // Same multiset of (row, col) pairs, different order.
  std::multiset<std::pair<DataId, DataId>> natural_pairs;
  std::multiset<std::pair<DataId, DataId>> randomized_pairs;
  std::vector<std::pair<DataId, DataId>> natural_sequence;
  std::vector<std::pair<DataId, DataId>> randomized_sequence;
  for (TaskId task = 0; task < natural.num_tasks(); ++task) {
    const auto natural_inputs = natural.inputs(task);
    const auto randomized_inputs = randomized.inputs(task);
    natural_pairs.emplace(natural_inputs[0], natural_inputs[1]);
    randomized_pairs.emplace(randomized_inputs[0], randomized_inputs[1]);
    natural_sequence.emplace_back(natural_inputs[0], natural_inputs[1]);
    randomized_sequence.emplace_back(randomized_inputs[0],
                                     randomized_inputs[1]);
  }
  EXPECT_EQ(natural_pairs, randomized_pairs);
  EXPECT_NE(natural_sequence, randomized_sequence);
}

TEST(Matmul2D, PaperCalibration) {
  const core::TaskGraph graph = make_matmul_2d({.n = 2});
  // 480 flops per input byte on 14 MB data: 6.72 GFlop per task, i.e.
  // ~507us on a 13253 GFlop/s V100.
  EXPECT_DOUBLE_EQ(graph.task_flops(0), 480.0 * 14e6);
  const core::Platform v100 = core::make_v100_platform(1);
  EXPECT_NEAR(v100.compute_time_us(graph.task_flops(0)), 507.0, 1.0);
}

TEST(Matmul3D, ShapeAndSharing) {
  const std::uint32_t n = 3;
  const core::TaskGraph graph = make_matmul_3d({.n = n, .data_bytes = 1000});
  EXPECT_EQ(graph.num_tasks(), n * n * n);
  EXPECT_EQ(graph.num_data(), 2 * n * n);
  // Every data item (A_ik or B_kj) is shared by exactly n tasks.
  for (DataId data = 0; data < graph.num_data(); ++data) {
    EXPECT_EQ(graph.consumers(data).size(), n);
  }
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    EXPECT_EQ(graph.inputs(task).size(), 2u);
  }
}

TEST(Matmul3D, TaskReadsMatchingBlocks) {
  const std::uint32_t n = 4;
  const core::TaskGraph graph = make_matmul_3d({.n = n, .data_bytes = 1000});
  // Submission order is (i, j, k) nested; task id = (i*n + j)*n + k.
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      for (std::uint32_t k = 0; k < n; ++k) {
        const TaskId task = (i * n + j) * n + k;
        const auto inputs = graph.inputs(task);
        EXPECT_EQ(inputs[0], i * n + k);           // A_ik
        EXPECT_EQ(inputs[1], n * n + k * n + j);   // B_kj
      }
    }
  }
}

TEST(Cholesky, TaskAndDataCounts) {
  const std::uint32_t n = 6;
  const core::TaskGraph graph = make_cholesky_tasks({.n = n});
  EXPECT_EQ(graph.num_tasks(), cholesky_task_count(n));
  EXPECT_EQ(graph.num_data(), n * (n + 1) / 2);
  EXPECT_EQ(graph.working_set_bytes(), cholesky_working_set(n));
}

TEST(Cholesky, KernelMixAndInputCardinality) {
  const core::TaskGraph graph = make_cholesky_tasks({.n = 5});
  std::size_t one_input = 0;
  std::size_t two_inputs = 0;
  std::size_t three_inputs = 0;
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    switch (graph.inputs(task).size()) {
      case 1: ++one_input; break;
      case 2: ++two_inputs; break;
      case 3: ++three_inputs; break;
      default: FAIL() << "unexpected input count";
    }
  }
  EXPECT_EQ(one_input, 5u);                     // POTRF
  EXPECT_EQ(two_inputs, 2u * (5 * 4 / 2));      // TRSM + SYRK
  EXPECT_EQ(three_inputs, 5u * 4 * 3 / 6);      // GEMM
}

TEST(Cholesky, GemmDominatesFlops) {
  const core::TaskGraph graph = make_cholesky_tasks({.n = 12});
  double gemm_flops = 0.0;
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    if (graph.inputs(task).size() == 3) gemm_flops += graph.task_flops(task);
  }
  EXPECT_GT(gemm_flops, 0.5 * graph.total_flops());
}

TEST(SparseMatmul, DropsRequestedFraction) {
  const core::TaskGraph graph =
      make_sparse_matmul({.n = 100, .keep_fraction = 0.02, .seed = 8});
  // 2% of 10000 tasks: allow generous sampling noise.
  EXPECT_GT(graph.num_tasks(), 120u);
  EXPECT_LT(graph.num_tasks(), 280u);
  // Data set (and working set) stays that of the dense problem.
  EXPECT_EQ(graph.num_data(), 200u);
}

TEST(SparseMatmul, NeverEmpty) {
  const core::TaskGraph graph =
      make_sparse_matmul({.n = 2, .keep_fraction = 0.01, .seed = 1});
  EXPECT_GE(graph.num_tasks(), 1u);
}

TEST(SparseMatmul, DeterministicPerSeed) {
  const core::TaskGraph a =
      make_sparse_matmul({.n = 40, .keep_fraction = 0.05, .seed = 3});
  const core::TaskGraph b =
      make_sparse_matmul({.n = 40, .keep_fraction = 0.05, .seed = 3});
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (TaskId task = 0; task < a.num_tasks(); ++task) {
    const auto inputs_a = a.inputs(task);
    const auto inputs_b = b.inputs(task);
    EXPECT_TRUE(std::equal(inputs_a.begin(), inputs_a.end(),
                           inputs_b.begin(), inputs_b.end()));
  }
}

TEST(RandomBipartite, RespectsDegreeBounds) {
  const core::TaskGraph graph = make_random_bipartite(
      {.num_tasks = 200, .num_data = 50, .min_inputs = 2, .max_inputs = 4,
       .seed = 6});
  EXPECT_EQ(graph.num_tasks(), 200u);
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    EXPECT_GE(graph.inputs(task).size(), 2u);
    EXPECT_LE(graph.inputs(task).size(), 4u);
    // No duplicate inputs.
    std::set<DataId> unique(graph.inputs(task).begin(),
                            graph.inputs(task).end());
    EXPECT_EQ(unique.size(), graph.inputs(task).size());
  }
}

}  // namespace
}  // namespace mg::work
