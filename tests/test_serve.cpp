// Serving subsystem tests: union-graph construction (namespacing, data
// sharing vs. the no-share ablation), arrival processes, admission control,
// the streamed serving loop under every scheduler (with the online
// InvariantChecker), deadline scoring, cross-job reuse measurement,
// bit-identical run reports (including checkpointed permanent-GPU-loss
// runs), watchdog diagnostics that name the in-flight job count, and
// fault-plan composition with adoption attribution.
#include "serve/serve_engine.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/darts.hpp"
#include "core/task_graph.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "serve/admission.hpp"
#include "serve/arrival.hpp"
#include "serve/union_graph.hpp"
#include "sim/errors.hpp"
#include "sim/fault_injector.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"

namespace mg::serve {
namespace {

using core::DataId;
using core::TaskId;

/// Trivial arithmetic (1 byte transfers in 1 us, 1 flop computes in 1 us)
/// so every test time is hand-checkable.
core::Platform test_platform(std::uint32_t gpus, std::uint64_t memory) {
  core::Platform platform;
  platform.num_gpus = gpus;
  platform.gpu_memory_bytes = memory;
  platform.gpu_gflops = 1e-3;
  platform.bus_bandwidth_bytes_per_s = 1e6;
  platform.bus_latency_us = 0.0;
  return platform;
}

/// Job template: 4 data of 10 bytes, 6 tasks of 5 us each reading two
/// neighbouring data. Footprint = 40 bytes of distinct inputs.
core::TaskGraph make_template() {
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < 4; ++i) {
    data.push_back(builder.add_data(10, "d" + std::to_string(i)));
  }
  for (int t = 0; t < 6; ++t) {
    builder.add_task(5.0, {data[t % 4], data[(t + 1) % 4]},
                     "t" + std::to_string(t));
  }
  return builder.build();
}

using SchedulerFactory = std::function<std::unique_ptr<core::Scheduler>()>;

const std::vector<std::pair<std::string, SchedulerFactory>>& schedulers() {
  static const std::vector<std::pair<std::string, SchedulerFactory>> specs = {
      {"EAGER", [] { return std::make_unique<sched::EagerScheduler>(); }},
      {"DMDAR", [] { return std::make_unique<sched::DmdaScheduler>(); }},
      {"DARTS+LUF", [] { return std::make_unique<core::DartsScheduler>(); }},
      {"mHFP", [] { return std::make_unique<sched::HfpScheduler>(); }},
  };
  return specs;
}

TEST(UnionGraph, SharedDataIsDeduplicatedAcrossJobs) {
  const core::TaskGraph tmpl = make_template();
  const std::vector<core::TaskGraph> templates = {tmpl};
  const std::vector<JobSpec> jobs(3);

  const UnionGraph u = build_union_graph(templates, jobs, true);
  EXPECT_EQ(u.num_jobs, 3u);
  EXPECT_EQ(u.graph.num_tasks(), 3 * tmpl.num_tasks());
  EXPECT_EQ(u.graph.num_data(), tmpl.num_data());  // shared, not copied
  ASSERT_EQ(u.task_job.size(), u.graph.num_tasks());
  ASSERT_EQ(u.job_tasks.size(), 3u);
  for (std::uint32_t job = 0; job < 3; ++job) {
    ASSERT_EQ(u.job_tasks[job].size(), tmpl.num_tasks());
    for (const TaskId task : u.job_tasks[job]) {
      EXPECT_EQ(u.task_job[task], job);
      const std::string& label = u.graph.task_label(task);
      EXPECT_EQ(label.rfind("j" + std::to_string(job) + ":", 0), 0u)
          << label;
    }
    // 4 distinct 10-byte inputs, no declared outputs.
    EXPECT_EQ(u.job_footprint_bytes[job], 40u);
  }
}

TEST(UnionGraph, NoShareGivesEveryJobPrivateData) {
  const core::TaskGraph tmpl = make_template();
  const std::vector<core::TaskGraph> templates = {tmpl};
  const std::vector<JobSpec> jobs(3);

  const UnionGraph u = build_union_graph(templates, jobs, false);
  EXPECT_EQ(u.graph.num_data(), 3 * tmpl.num_data());
  // No two jobs may touch a common DataId.
  std::vector<std::uint32_t> owner(u.graph.num_data(), ~0u);
  for (TaskId task = 0; task < u.graph.num_tasks(); ++task) {
    for (const DataId data : u.graph.inputs(task)) {
      if (owner[data] == ~0u) owner[data] = u.task_job[task];
      EXPECT_EQ(owner[data], u.task_job[task]);
    }
  }
}

TEST(Arrival, PoissonIsDeterministicAndMonotonic) {
  const auto a = poisson_arrival_times_us(200, 100.0, 7);
  const auto b = poisson_arrival_times_us(200, 100.0, 7);
  const auto c = poisson_arrival_times_us(200, 100.0, 8);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(a, b);  // same seed, same stream
  EXPECT_NE(a, c);  // different seed, different stream
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  // Mean inter-arrival gap of a 100 jobs/s process is 10'000 us; with 200
  // draws the sample mean lands well within a factor of two.
  const double mean_gap = a.back() / static_cast<double>(a.size());
  EXPECT_GT(mean_gap, 5e3);
  EXPECT_LT(mean_gap, 2e4);
}

TEST(Arrival, ParseModeNames) {
  EXPECT_EQ(parse_arrival_mode("poisson"), ArrivalMode::kPoisson);
  EXPECT_EQ(parse_arrival_mode("closed-loop"), ArrivalMode::kClosedLoop);
  EXPECT_EQ(parse_arrival_mode("closed"), ArrivalMode::kClosedLoop);
  EXPECT_FALSE(parse_arrival_mode("uniform").has_value());
}

TEST(Admission, AdmitQueueShedLifecycle) {
  AdmissionController admission({.max_jobs_in_flight = 1, .max_queue_depth = 1},
                                {10, 10, 10, 10});
  EXPECT_EQ(admission.submit(0, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.submit(1, 0), AdmissionController::Decision::kQueue);
  EXPECT_EQ(admission.submit(2, 0), AdmissionController::Decision::kShed);
  EXPECT_EQ(admission.jobs_in_flight(), 1u);
  EXPECT_EQ(admission.queue_depth(), 1u);

  admission.on_job_retired(0);
  EXPECT_EQ(admission.jobs_in_flight(), 0u);
  const auto next = admission.try_admit_queued();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 1u);
  EXPECT_FALSE(admission.try_admit_queued().has_value());
}

TEST(Admission, QueuePopsByPriorityThenFifo) {
  AdmissionController admission({.max_jobs_in_flight = 1}, {10, 10, 10, 10});
  EXPECT_EQ(admission.submit(0, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.submit(1, 0), AdmissionController::Decision::kQueue);
  EXPECT_EQ(admission.submit(2, 5), AdmissionController::Decision::kQueue);
  EXPECT_EQ(admission.submit(3, 5), AdmissionController::Decision::kQueue);

  std::vector<std::uint32_t> order;
  for (std::uint32_t retired : {0u, 2u, 3u}) {
    admission.on_job_retired(retired);
    const auto next = admission.try_admit_queued();
    ASSERT_TRUE(next.has_value());
    order.push_back(*next);
  }
  EXPECT_EQ(order, (std::vector<std::uint32_t>{2, 3, 1}));
}

TEST(Admission, OversizedJobAdmittedIntoEmptySystem) {
  // A job larger than the byte budget must not wedge the run: it is
  // admitted whenever nothing else is in flight.
  AdmissionController admission({.max_bytes_in_flight = 50}, {100, 100});
  EXPECT_EQ(admission.submit(0, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.submit(1, 0), AdmissionController::Decision::kQueue);
  admission.on_job_retired(0);
  EXPECT_EQ(admission.try_admit_queued(), 1u);
}

TEST(Admission, ByteBudgetBoundsConcurrentFootprint) {
  AdmissionController admission({.max_bytes_in_flight = 25}, {10, 10, 10});
  EXPECT_EQ(admission.submit(0, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.submit(1, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.submit(2, 0), AdmissionController::Decision::kQueue);
  EXPECT_EQ(admission.bytes_in_flight(), 20u);
  admission.on_job_retired(0);
  EXPECT_EQ(admission.try_admit_queued(), 2u);
  EXPECT_EQ(admission.bytes_in_flight(), 20u);
}

/// Streams `num_jobs` template instances and returns the result; asserts
/// the InvariantChecker saw a clean run.
ServeResult stream_jobs(core::Scheduler& scheduler, ServeConfig config,
                        std::uint32_t num_jobs, double deadline_us = 0.0,
                        sim::FaultInjector* injector = nullptr) {
  const std::vector<core::TaskGraph> templates = {make_template()};
  std::vector<JobSpec> jobs(num_jobs);
  for (JobSpec& job : jobs) job.deadline_us = deadline_us;
  ServeEngine engine(templates, jobs, test_platform(2, 100), scheduler,
                     config);
  if (injector != nullptr) engine.set_fault_injector(injector);
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  ServeResult result = engine.run();
  EXPECT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  return result;
}

TEST(ServeEngine, EverySchedulerStreamsCleanlyUnderBothArrivalModes) {
  for (const auto& [name, factory] : schedulers()) {
    for (const ArrivalMode mode :
         {ArrivalMode::kPoisson, ArrivalMode::kClosedLoop}) {
      ServeConfig config;
      config.arrival.mode = mode;
      config.arrival.rate_jobs_per_s = 2e4;  // mean gap 50 us: overlap
      config.arrival.concurrency = 3;
      auto scheduler = factory();
      const ServeResult result = stream_jobs(*scheduler, config, 20);
      EXPECT_EQ(result.serving.jobs_submitted, 20u)
          << name << " " << arrival_mode_name(mode);
      EXPECT_EQ(result.serving.jobs_completed, 20u)
          << name << " " << arrival_mode_name(mode);
      EXPECT_EQ(result.serving.jobs_shed, 0u);
      EXPECT_GT(result.serving.throughput_jobs_per_s, 0.0);
      EXPECT_LE(result.serving.latency_p50_us, result.serving.latency_p95_us);
      EXPECT_LE(result.serving.latency_p95_us, result.serving.latency_p99_us);
      EXPECT_LE(result.serving.latency_p99_us, result.serving.latency_max_us);
    }
  }
}

TEST(ServeEngine, HundredJobStreamIsInvariantCleanFaultedAndFaultFree) {
  for (const auto& [name, factory] : schedulers()) {
    for (const bool faulted : {false, true}) {
      ServeConfig config;
      config.arrival.mode = ArrivalMode::kClosedLoop;
      config.arrival.concurrency = 4;
      sim::FaultPlan plan;
      plan.gpu_losses.push_back({200.0, 1});
      sim::FaultInjector injector(plan);
      auto scheduler = factory();
      const ServeResult result =
          stream_jobs(*scheduler, config, 120, 0.0,
                      faulted ? &injector : nullptr);
      EXPECT_EQ(result.serving.jobs_completed, 120u)
          << name << (faulted ? " faulted" : "");
      if (faulted) EXPECT_EQ(result.metrics.faults.gpu_losses, 1u);
    }
  }
}

TEST(ServeEngine, ClosedLoopNeverExceedsConcurrency) {
  ServeConfig config;
  config.arrival.mode = ArrivalMode::kClosedLoop;
  config.arrival.concurrency = 3;
  core::DartsScheduler scheduler;
  const ServeResult result = stream_jobs(scheduler, config, 30);
  EXPECT_LE(result.serving.peak_jobs_in_flight, 3u);
  EXPECT_GT(result.serving.peak_jobs_in_flight, 0u);
}

TEST(ServeEngine, CrossJobReuseRequiresSharing) {
  ServeConfig config;
  config.arrival.mode = ArrivalMode::kClosedLoop;
  config.arrival.concurrency = 2;

  core::DartsScheduler shared_scheduler;
  config.share_data = true;
  const ServeResult shared = stream_jobs(shared_scheduler, config, 12);
  EXPECT_GT(shared.serving.cross_job_reuse_hits, 0u);
  EXPECT_GT(shared.serving.cross_job_reuse_bytes, 0u);

  core::DartsScheduler private_scheduler;
  config.share_data = false;
  const ServeResult ablated = stream_jobs(private_scheduler, config, 12);
  EXPECT_EQ(ablated.serving.cross_job_reuse_hits, 0u);
  EXPECT_EQ(ablated.serving.cross_job_reuse_bytes, 0u);
  // Same work without sharing must pay for more host-bus loads.
  EXPECT_GT(ablated.metrics.total_loads(), shared.metrics.total_loads());
}

TEST(ServeEngine, DeadlinesScoreAgainstSubmissionTime) {
  ServeConfig config;
  config.arrival.mode = ArrivalMode::kClosedLoop;
  config.arrival.concurrency = 2;

  sched::EagerScheduler strict;
  const ServeResult missed = stream_jobs(strict, config, 10, /*deadline=*/1.0);
  EXPECT_EQ(missed.serving.deadline_misses, 10u);
  EXPECT_EQ(missed.serving.deadline_hits, 0u);
  EXPECT_DOUBLE_EQ(missed.serving.deadline_miss_rate, 1.0);

  sched::EagerScheduler lax;
  const ServeResult hit = stream_jobs(lax, config, 10, /*deadline=*/1e9);
  EXPECT_EQ(hit.serving.deadline_hits, 10u);
  EXPECT_EQ(hit.serving.deadline_misses, 0u);
  EXPECT_DOUBLE_EQ(hit.serving.deadline_miss_rate, 0.0);
}

TEST(ServeEngine, BoundedQueueShedsOverload) {
  ServeConfig config;
  config.arrival.mode = ArrivalMode::kPoisson;
  config.arrival.rate_jobs_per_s = 1e6;  // everything arrives at once
  config.admission.max_jobs_in_flight = 1;
  config.admission.max_queue_depth = 2;
  sched::EagerScheduler scheduler;
  const ServeResult result =
      stream_jobs(scheduler, config, 10, /*deadline=*/100.0);
  EXPECT_GT(result.serving.jobs_shed, 0u);
  EXPECT_EQ(result.serving.jobs_completed + result.serving.jobs_shed, 10u);
  // A shed job with an SLO counts as a deadline miss.
  EXPECT_GE(result.serving.deadline_misses, result.serving.jobs_shed);
}

TEST(ServeEngine, IdenticalLatenciesCollapseEveryPercentile) {
  // Sequential private jobs (no sharing, one at a time) are bit-for-bit the
  // same workload, so every percentile must equal the one latency value.
  ServeConfig config;
  config.arrival.mode = ArrivalMode::kClosedLoop;
  config.arrival.concurrency = 1;
  config.share_data = false;
  sched::EagerScheduler scheduler;
  const ServeResult result = stream_jobs(scheduler, config, 8);
  EXPECT_GT(result.serving.latency_p50_us, 0.0);
  EXPECT_DOUBLE_EQ(result.serving.latency_p50_us,
                   result.serving.latency_p99_us);
  EXPECT_DOUBLE_EQ(result.serving.latency_p50_us,
                   result.serving.latency_max_us);
  EXPECT_DOUBLE_EQ(result.serving.latency_p50_us,
                   result.serving.latency_mean_us);
}

/// One streamed run with a report collector; returns the full JSON document
/// with the serving section patched in — the artifact the determinism
/// guarantee is stated over.
std::string streamed_report_json(ArrivalMode mode, bool with_faults) {
  const std::vector<core::TaskGraph> templates = {make_template()};
  const std::vector<JobSpec> jobs(15);
  ServeConfig config;
  config.arrival.mode = mode;
  config.arrival.rate_jobs_per_s = 2e4;
  config.arrival.concurrency = 3;
  core::DartsScheduler scheduler;
  ServeEngine engine(templates, jobs, test_platform(2, 100), scheduler,
                     config);
  sim::FaultPlan plan;
  plan.gpu_losses.push_back({150.0, 1});
  sim::FaultInjector injector(plan);
  if (with_faults) engine.set_fault_injector(&injector);
  sim::RunReportCollector collector({.context = "determinism"});
  engine.add_inspector(&collector);
  const ServeResult result = engine.run();
  sim::RunReport report = collector.report();
  report.serving = result.serving;
  return sim::run_report_to_json(report);
}

TEST(ServeEngine, ReportsAreBitIdenticalAcrossRuns) {
  for (const ArrivalMode mode :
       {ArrivalMode::kPoisson, ArrivalMode::kClosedLoop}) {
    for (const bool with_faults : {false, true}) {
      const std::string first = streamed_report_json(mode, with_faults);
      const std::string second = streamed_report_json(mode, with_faults);
      EXPECT_EQ(first, second)
          << arrival_mode_name(mode) << (with_faults ? " faulted" : "");
      EXPECT_NE(first.find("\"serving\""), std::string::npos);
    }
  }
}

/// Streamed run under a permanent GPU loss with checkpointing and hot-data
/// replication armed — serialized report for the determinism guarantee.
std::string checkpointed_loss_report_json(const SchedulerFactory& factory) {
  const std::vector<core::TaskGraph> templates = {make_template()};
  const std::vector<JobSpec> jobs(15);
  ServeConfig config;
  config.arrival.mode = ArrivalMode::kClosedLoop;
  config.arrival.concurrency = 3;
  config.engine.checkpoint_interval_us = 2.0;
  config.engine.replicate_hot = true;
  const std::unique_ptr<core::Scheduler> scheduler = factory();
  ServeEngine engine(templates, jobs, test_platform(2, 100), *scheduler,
                     config);
  sim::FaultPlan plan;
  plan.gpu_losses.push_back({150.0, 1});
  sim::FaultInjector injector(plan);
  engine.set_fault_injector(&injector);
  sim::InvariantChecker checker({.fail_fast = false});
  sim::RunReportCollector collector({.context = "checkpointed-loss"});
  engine.add_inspector(&checker);
  engine.add_inspector(&collector);
  const ServeResult result = engine.run();
  EXPECT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  sim::RunReport report = collector.report();
  report.serving = result.serving;
  return sim::run_report_to_json(report);
}

TEST(ServeEngine, CheckpointedGpuLossIsBitIdenticalAndCheckerClean) {
  for (const auto& [name, factory] : schedulers()) {
    const std::string first = checkpointed_loss_report_json(factory);
    const std::string second = checkpointed_loss_report_json(factory);
    EXPECT_EQ(first, second) << name;
    EXPECT_NE(first.find("\"checkpoints\""), std::string::npos) << name;
    EXPECT_NE(first.find("\"replicas\""), std::string::npos) << name;
  }
}

TEST(ServeEngine, WatchdogDiagnosticNamesInFlightJobs) {
  const std::vector<core::TaskGraph> templates = {make_template()};
  const std::vector<JobSpec> jobs(10);
  ServeConfig config;
  config.arrival.mode = ArrivalMode::kClosedLoop;
  config.arrival.concurrency = 4;
  config.engine.max_events = 25;
  sched::EagerScheduler scheduler;
  ServeEngine engine(templates, jobs, test_platform(2, 100), scheduler,
                     config);
  try {
    (void)engine.run();
    FAIL() << "expected BudgetExceededError";
  } catch (const sim::BudgetExceededError& error) {
    EXPECT_NE(std::string(error.what()).find("jobs in flight"),
              std::string::npos)
        << error.what();
  }
}

TEST(ServeEngine, SimTimeBudgetDiagnosticNamesInFlightJobs) {
  const std::vector<core::TaskGraph> templates = {make_template()};
  const std::vector<JobSpec> jobs(10);
  ServeConfig config;
  config.arrival.mode = ArrivalMode::kClosedLoop;
  config.arrival.concurrency = 4;
  config.engine.max_sim_time_us = 40.0;
  sched::EagerScheduler scheduler;
  ServeEngine engine(templates, jobs, test_platform(2, 100), scheduler,
                     config);
  try {
    (void)engine.run();
    FAIL() << "expected BudgetExceededError";
  } catch (const sim::BudgetExceededError& error) {
    EXPECT_NE(std::string(error.what()).find("jobs in flight"),
              std::string::npos)
        << error.what();
  }
}

TEST(ServeEngine, GpuLossAdoptionsAttributeEveryReclaimedTask) {
  const std::vector<core::TaskGraph> templates = {make_template()};
  const std::vector<JobSpec> jobs(20);
  ServeConfig config;
  config.arrival.mode = ArrivalMode::kClosedLoop;
  config.arrival.concurrency = 3;
  sched::EagerScheduler scheduler;
  ServeEngine engine(templates, jobs, test_platform(2, 100), scheduler,
                     config);
  sim::FaultPlan plan;
  plan.gpu_losses.push_back({120.0, 1});
  sim::FaultInjector injector(plan);
  engine.set_fault_injector(&injector);
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  sim::RunReportCollector collector({.context = "adoption"});
  engine.add_inspector(&collector);

  const ServeResult result = engine.run();
  ASSERT_TRUE(checker.ok()) << checker.report().error;
  EXPECT_EQ(result.serving.jobs_completed, 20u);

  const sim::RunReport report = collector.report();
  ASSERT_GT(result.metrics.faults.tasks_reclaimed, 0u);
  // Every reclaimed task that re-ran names the survivor that absorbed it.
  EXPECT_EQ(report.faults.adoptions.size(),
            result.metrics.faults.tasks_reclaimed);
  for (const auto& adoption : report.faults.adoptions) {
    EXPECT_EQ(adoption.from_gpu, 1u);
    EXPECT_EQ(adoption.to_gpu, 0u);
    EXPECT_LT(adoption.task, templates[0].num_tasks() * 20);
  }
}

}  // namespace
}  // namespace mg::serve
