// Heterogeneous-GPU extension: per-device speeds (the general StarPU
// setting; the paper's model notes heterogeneous tasks/data as easy
// extensions, and DMDA's completion-time model is exactly the piece that
// handles unequal processing units).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "analysis/validate.hpp"
#include "core/darts.hpp"
#include "core/task_graph.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/fixed_order.hpp"
#include "sched/hfp.hpp"
#include "sched/hmetis_r.hpp"
#include "sim/engine.hpp"
#include "workloads/matmul2d.hpp"

namespace mg {
namespace {

using core::DataId;
using core::TaskId;

core::Platform hetero_platform(std::vector<double> gflops,
                               std::uint64_t memory = 1000) {
  core::Platform platform;
  platform.num_gpus = static_cast<std::uint32_t>(gflops.size());
  platform.gpu_memory_bytes = memory;
  platform.gpu_gflops_per_device = std::move(gflops);
  platform.bus_bandwidth_bytes_per_s = 1e6;  // 1 byte = 1 us
  platform.bus_latency_us = 0.0;
  return platform;
}

TEST(HeteroPlatform, SpeedAccessorsAndPeak) {
  const core::Platform platform = hetero_platform({2e-3, 1e-3});
  EXPECT_TRUE(platform.is_heterogeneous());
  EXPECT_DOUBLE_EQ(platform.gflops_of(0), 2e-3);
  EXPECT_DOUBLE_EQ(platform.gflops_of(1), 1e-3);
  EXPECT_DOUBLE_EQ(platform.peak_gflops(), 3e-3);
  // 10 flops: 5 us on the fast device, 10 us on the slow one.
  EXPECT_DOUBLE_EQ(platform.compute_time_us(10.0, 0), 5.0);
  EXPECT_DOUBLE_EQ(platform.compute_time_us(10.0, 1), 10.0);
}

TEST(HeteroEngine, TaskDurationDependsOnDevice) {
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(10);
  builder.add_task(100.0, {d0});  // gpu0 (fast): 50 us
  builder.add_task(100.0, {d1});  // gpu1 (slow): 100 us
  const core::TaskGraph graph = builder.build();

  std::vector<std::vector<TaskId>> orders{{0}, {1}};
  sched::FixedOrderScheduler scheduler(orders);
  sim::RuntimeEngine engine(graph, hetero_platform({2e-3, 1e-3}), scheduler);
  const core::RunMetrics metrics = engine.run();
  // Loads serialize on the bus: d0 [0,10], d1 [10,20]; fast task [10,60],
  // slow task [20,120].
  EXPECT_DOUBLE_EQ(metrics.per_gpu[0].busy_time_us, 50.0);
  EXPECT_DOUBLE_EQ(metrics.per_gpu[1].busy_time_us, 100.0);
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 120.0);
}

TEST(HeteroEngine, RejectsMismatchedSpeedVector) {
  core::TaskGraphBuilder builder;
  builder.add_task(1.0, {builder.add_data(10)});
  const core::TaskGraph graph = builder.build();
  core::Platform platform = hetero_platform({1e-3, 1e-3});
  platform.num_gpus = 3;  // speeds only cover 2
  sched::EagerScheduler scheduler;
  EXPECT_DEATH(sim::RuntimeEngine(graph, platform, scheduler),
               "per-device speeds");
}

TEST(HeteroDmda, AllocatesProportionallyToSpeed) {
  // Independent equal tasks on a 3x-faster gpu0: DMDA's completion-time
  // model must give it about three quarters of the tasks.
  core::TaskGraphBuilder builder;
  for (int i = 0; i < 40; ++i) {
    builder.add_task(100.0, {builder.add_data(1)});
  }
  const core::TaskGraph graph = builder.build();
  sched::DmdaScheduler dmda(false);
  dmda.prepare(graph, hetero_platform({3e-3, 1e-3}), 0);
  EXPECT_NEAR(static_cast<double>(dmda.queue(0).size()), 30.0, 2.0);
  EXPECT_NEAR(static_cast<double>(dmda.queue(1).size()), 10.0, 2.0);
}

TEST(HeteroHfp, BalancesDurationsNotFlops) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  for (int i = 0; i < 30; ++i) builder.add_task(1.0, {d});
  const core::TaskGraph graph = builder.build();

  std::vector<std::vector<TaskId>> packages(2);
  for (TaskId task = 0; task < 30; ++task) packages[0].push_back(task);
  const std::vector<double> speeds{2.0, 1.0};
  sched::hfp_balance_loads(graph, packages, nullptr, speeds);
  // Duration balance: 20 tasks on the 2x device (10 units) vs 10 on the
  // 1x device (10 units).
  EXPECT_NEAR(static_cast<double>(packages[0].size()), 20.0, 1.0);
  EXPECT_NEAR(static_cast<double>(packages[1].size()), 10.0, 1.0);
}

TEST(HeteroHmetis, PartSizesFollowTargetShares) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 10, .data_bytes = 10});
  const hyper::Hypergraph hypergraph =
      hyper::hypergraph_from_task_graph(graph);
  hyper::PartitionerConfig config;
  config.num_parts = 2;
  config.seed = 4;
  config.imbalance = 0.05;
  config.target_share = {3.0, 1.0};
  const auto part = hyper::partition_hypergraph(hypergraph, config);
  std::array<std::uint64_t, 2> weights{0, 0};
  for (hyper::VertexId v = 0; v < hypergraph.num_vertices(); ++v) {
    weights[part[v]] += hypergraph.vertex_weight(v);
  }
  const double share0 = static_cast<double>(weights[0]) /
                        static_cast<double>(weights[0] + weights[1]);
  EXPECT_NEAR(share0, 0.75, 0.08);
}

class HeteroEndToEnd : public testing::TestWithParam<int> {};

TEST_P(HeteroEndToEnd, FasterGpuDoesMoreWork) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 10, .data_bytes = 10,
                            .flops_per_byte = 10.0});
  // gpu0 is 3x faster; memory roomy so compute dominates.
  const core::Platform platform = hetero_platform({3e-3, 1e-3}, 500);

  std::unique_ptr<core::Scheduler> scheduler;
  switch (GetParam()) {
    case 0: scheduler = std::make_unique<sched::DmdaScheduler>(); break;
    case 1: scheduler = std::make_unique<core::DartsScheduler>(); break;
    case 2: scheduler = std::make_unique<sched::HfpScheduler>(); break;
    default: scheduler = std::make_unique<sched::HmetisScheduler>(); break;
  }

  sim::EngineConfig config;
  config.record_trace = true;
  sim::RuntimeEngine engine(graph, platform, *scheduler, config);
  const core::RunMetrics metrics = engine.run();

  EXPECT_EQ(metrics.per_gpu[0].tasks_executed +
                metrics.per_gpu[1].tasks_executed,
            graph.num_tasks());
  // The 3x device must clearly out-execute the slow one (dynamic behaviour
  // — stealing, pull rate, or DMDA's model — should all get there).
  EXPECT_GT(metrics.per_gpu[0].tasks_executed,
            metrics.per_gpu[1].tasks_executed * 3 / 2);
  const auto validation =
      analysis::validate_trace(graph, platform, engine.trace());
  EXPECT_TRUE(validation.ok) << validation.error;
}

INSTANTIATE_TEST_SUITE_P(Schedulers, HeteroEndToEnd, testing::Range(0, 4));

}  // namespace
}  // namespace mg
