// Fault-injection subsystem tests: FaultPlan parsing/validation (with
// line/column and file-name diagnostics), the engine's recovery paths (GPU
// loss, transfer retry with backoff, capacity shocks), proactive fault
// tolerance (task-progress checkpointing, replication-aware placement,
// fixed-order replay degradation), the degraded-model invariants, and the
// zero-cost guarantee when no plan is armed.
#include "sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/darts.hpp"
#include "core/task_graph.hpp"
#include "sched/eager.hpp"
#include "sched/fixed_order.hpp"
#include "sched/hfp.hpp"
#include "sim/engine.hpp"
#include "sim/errors.hpp"
#include "sim/fault_injector.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"

namespace mg::sim {
namespace {

using core::DataId;
using core::GpuId;
using core::TaskId;

/// Test platform with trivial arithmetic: 1 byte transfers in 1 us (zero
/// latency), 1 flop computes in 1 us.
core::Platform test_platform(std::uint32_t gpus, std::uint64_t memory) {
  core::Platform platform;
  platform.num_gpus = gpus;
  platform.gpu_memory_bytes = memory;
  platform.gpu_gflops = 1e-3;
  platform.bus_bandwidth_bytes_per_s = 1e6;
  platform.bus_latency_us = 0.0;
  return platform;
}

/// Fixed per-GPU task lists with fault-aware hand-off: on a GPU loss the
/// dead GPU's unpopped remainder moves to a survivor, while the already
/// popped orphans are left to the engine's default requeue (return false).
class ListScheduler final : public core::Scheduler {
 public:
  explicit ListScheduler(std::vector<std::deque<TaskId>> queues)
      : queues_(std::move(queues)) {}

  [[nodiscard]] std::string_view name() const override { return "list"; }
  void prepare(const core::TaskGraph&, const core::Platform& platform,
               std::uint64_t) override {
    dead_.assign(platform.num_gpus, 0);
  }
  [[nodiscard]] TaskId pop_task(GpuId gpu, const core::MemoryView&) override {
    if (queues_[gpu].empty()) return core::kInvalidTask;
    const TaskId task = queues_[gpu].front();
    queues_[gpu].pop_front();
    return task;
  }
  [[nodiscard]] bool notify_gpu_lost(
      GpuId gpu, std::span<const TaskId> orphaned) override {
    (void)orphaned;
    dead_[gpu] = 1;
    for (GpuId other = 0; other < queues_.size(); ++other) {
      if (other == gpu || dead_[other] != 0) continue;
      queues_[other].insert(queues_[other].end(), queues_[gpu].begin(),
                            queues_[gpu].end());
      break;
    }
    queues_[gpu].clear();
    return false;  // engine requeues the popped orphans
  }

 private:
  std::vector<std::deque<TaskId>> queues_;
  std::vector<std::uint8_t> dead_;
};

TEST(FaultPlan, JsonRoundTrip) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.gpu_losses.push_back({250.0, 1});
  FaultPlan::TransferFault fault;
  fault.start_us = 10.0;
  fault.end_us = 500.0;
  fault.scope = FaultPlan::TransferScope::kNvlink;
  fault.probability = 0.25;
  fault.max_failures_per_transfer = 2;
  plan.transfer_faults.push_back(fault);
  plan.capacity_shocks.push_back({100.0, 0, 4096});

  const std::string json = fault_plan_to_json(plan);
  std::string error;
  const auto parsed = parse_fault_plan(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->seed, 1234u);
  ASSERT_EQ(parsed->gpu_losses.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->gpu_losses[0].time_us, 250.0);
  EXPECT_EQ(parsed->gpu_losses[0].gpu, 1u);
  ASSERT_EQ(parsed->transfer_faults.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->transfer_faults[0].start_us, 10.0);
  EXPECT_DOUBLE_EQ(parsed->transfer_faults[0].end_us, 500.0);
  EXPECT_EQ(parsed->transfer_faults[0].scope,
            FaultPlan::TransferScope::kNvlink);
  EXPECT_DOUBLE_EQ(parsed->transfer_faults[0].probability, 0.25);
  EXPECT_EQ(parsed->transfer_faults[0].max_failures_per_transfer, 2u);
  ASSERT_EQ(parsed->capacity_shocks.size(), 1u);
  EXPECT_EQ(parsed->capacity_shocks[0].capacity_bytes, 4096u);
}

TEST(FaultPlan, UnboundedWindowRoundTripsAsInfinity) {
  FaultPlan plan;
  plan.transfer_faults.push_back({});  // default end_us = infinity
  plan.transfer_faults[0].probability = 0.5;
  const auto parsed = parse_fault_plan(fault_plan_to_json(plan));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(std::isinf(parsed->transfer_faults[0].end_us));
}

TEST(FaultPlan, ParseRejectsGarbageAndWrongSchema) {
  std::string error;
  EXPECT_FALSE(parse_fault_plan("not json", &error).has_value());
  EXPECT_FALSE(parse_fault_plan("{\"schema_version\":99}", &error).has_value());
  EXPECT_FALSE(parse_fault_plan("{}", &error).has_value());
  EXPECT_TRUE(parse_fault_plan("{\"schema_version\":1}").has_value());
}

TEST(FaultPlan, ValidateCatchesBadPlans) {
  FaultPlan plan;
  plan.gpu_losses.push_back({10.0, 5});
  EXPECT_FALSE(plan.validate(2).empty()) << "gpu id out of range";

  plan.gpu_losses.clear();
  plan.gpu_losses.push_back({10.0, 0});
  plan.gpu_losses.push_back({20.0, 1});
  EXPECT_FALSE(plan.validate(2).empty()) << "whole platform lost";

  plan.gpu_losses.clear();
  plan.gpu_losses.push_back({-1.0, 0});
  EXPECT_FALSE(plan.validate(2).empty()) << "negative time";

  plan.gpu_losses.clear();
  FaultPlan::TransferFault fault;
  fault.probability = 1.5;
  plan.transfer_faults.push_back(fault);
  EXPECT_FALSE(plan.validate(2).empty()) << "probability out of range";

  plan.transfer_faults.clear();
  plan.gpu_losses.push_back({10.0, 1});
  EXPECT_TRUE(plan.validate(2).empty());
}

TEST(FaultPlan, RandomPlansAreValidAndSpareOneGpu) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    RandomFaultOptions options;
    options.num_gpus = 2 + static_cast<std::uint32_t>(seed % 3);
    options.gpu_memory_bytes = 1000;
    const FaultPlan plan = make_random_fault_plan(seed, options);
    EXPECT_TRUE(plan.validate(options.num_gpus).empty())
        << plan.validate(options.num_gpus) << " (seed " << seed << ")";
    EXPECT_LT(plan.gpu_losses.size(), options.num_gpus);
  }
}

TEST(FaultInjector, EngineRejectsInvalidPlanUpFront) {
  core::TaskGraphBuilder builder;
  builder.add_task(5.0, {builder.add_data(10)});
  const core::TaskGraph graph = builder.build();
  sched::EagerScheduler scheduler;
  FaultPlan plan;
  plan.gpu_losses.push_back({10.0, 7});  // no such GPU
  FaultInjector injector(plan);
  RuntimeEngine engine(graph, test_platform(1, 100), scheduler);
  engine.set_fault_injector(&injector);
  EXPECT_THROW((void)engine.run(), EngineError);
}

TEST(FaultInjector, GpuLossMidRunRerunsOrphansOnSurvivor) {
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < 8; ++i) data.push_back(builder.add_data(10));
  for (int i = 0; i < 8; ++i) builder.add_task(5.0, {data[i]});
  const core::TaskGraph graph = builder.build();

  sched::EagerScheduler scheduler;
  FaultPlan plan;
  plan.gpu_losses.push_back({22.0, 1});
  FaultInjector injector(plan);
  RuntimeEngine engine(graph, test_platform(2, 100), scheduler);
  engine.set_fault_injector(&injector);
  InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();

  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(metrics.faults.gpu_losses, 1u);
  EXPECT_GT(metrics.faults.tasks_reclaimed, 0u);
  std::uint64_t executed = 0;
  for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
  EXPECT_EQ(executed, graph.num_tasks());
  // Everything after the loss ran on gpu0; gpu1 stopped mid-run.
  EXPECT_LT(metrics.per_gpu[1].tasks_executed, 4u);
}

TEST(FaultInjector, GpuLossMidAssemblyWithPinnedInputs) {
  // gpu1 is assembling t1: input `a` landed (pinned for assembly), `b` still
  // on the wire when the GPU dies. The orphan must re-run on gpu0 and the
  // stale delivery of `b` must be dropped, not double-counted.
  core::TaskGraphBuilder builder;
  const DataId c = builder.add_data(10);
  const DataId a = builder.add_data(10);
  const DataId b = builder.add_data(10);
  builder.add_task(5.0, {c});     // t0 -> gpu0
  builder.add_task(5.0, {a, b});  // t1 -> gpu1
  const core::TaskGraph graph = builder.build();

  ListScheduler scheduler({{0}, {1}});
  FaultPlan plan;
  plan.gpu_losses.push_back({25.0, 1});  // c [0,10], a [10,20], b [20,30]
  FaultInjector injector(plan);
  EngineConfig config;
  config.pipeline_depth = 1;
  RuntimeEngine engine(graph, test_platform(2, 100), scheduler, config);
  engine.set_fault_injector(&injector);
  InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();

  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(metrics.faults.tasks_reclaimed, 1u);
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, 2u);
  EXPECT_EQ(metrics.per_gpu[1].tasks_executed, 0u);
  // t1's inputs re-land on gpu0 after the in-flight b->gpu1 wire frees:
  // a [30,40], b [40,50], compute [50,55].
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 55.0);
}

TEST(FaultInjector, CapacityShockBelowPinnedSetClampsAndRecovers) {
  // Three tasks, each with its own input. The shock to 1 byte lands while
  // t1 runs with `b` pinned; it is clamped to the largest task footprint
  // (10 bytes), the unpinned `a` is emergency-evicted, and the run still
  // completes.
  core::TaskGraphBuilder builder;
  const DataId a = builder.add_data(10);
  const DataId b = builder.add_data(10);
  const DataId c = builder.add_data(10);
  builder.add_task(5.0, {a});
  builder.add_task(5.0, {b});
  builder.add_task(5.0, {c});
  const core::TaskGraph graph = builder.build();

  ListScheduler scheduler({{0, 1, 2}});
  FaultPlan plan;
  plan.capacity_shocks.push_back({27.0, 0, 1});
  FaultInjector injector(plan);
  EngineConfig config;
  config.pipeline_depth = 1;
  RuntimeEngine engine(graph, test_platform(1, 100), scheduler, config);
  engine.set_fault_injector(&injector);
  InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();

  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(metrics.faults.capacity_shocks, 1u);
  EXPECT_GE(metrics.faults.emergency_evictions, 1u);
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, 3u);
}

TEST(FaultInjector, TransferDeliveredAfterLastAllowedFailure) {
  // probability 1.0 with max_failures_per_transfer = 3: attempts 1-3 all
  // fail, attempt 4 must deliver unconditionally.
  core::TaskGraphBuilder builder;
  builder.add_task(5.0, {builder.add_data(10)});
  const core::TaskGraph graph = builder.build();

  sched::EagerScheduler scheduler;
  FaultPlan plan;
  plan.seed = 9;
  FaultPlan::TransferFault fault;
  fault.probability = 1.0;
  fault.max_failures_per_transfer = 3;
  plan.transfer_faults.push_back(fault);
  FaultInjector injector(plan);
  RuntimeEngine engine(graph, test_platform(1, 100), scheduler);
  engine.set_fault_injector(&injector);
  InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();

  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(metrics.faults.transfer_retries, 3u);
  EXPECT_EQ(metrics.faults.wasted_transfer_bytes, 30u);
  EXPECT_EQ(metrics.total_loads(), 1u);  // retries never double-deliver
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, 1u);
  // Three wasted 10us wire occupations plus exponential backoff push the
  // single load well past its fault-free 10us.
  EXPECT_GT(metrics.makespan_us, 40.0);
}

TEST(FaultInjector, SoleNvlinkReplicaHolderDiesMidPeerCopy) {
  // d lands on gpu0, then gpu1's fetch of d is rerouted onto NVLink (the
  // second-chance filter sees the fresh replica). gpu0 — the only holder —
  // dies while the peer copy is on the wire; the engine must re-route the
  // fetch to the host bus and complete t1 on gpu1.
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  builder.add_task(5.0, {d});  // t0 -> gpu0
  builder.add_task(5.0, {d});  // t1 -> gpu1
  const core::TaskGraph graph = builder.build();

  core::Platform platform = test_platform(2, 100);
  platform.nvlink_enabled = true;
  platform.nvlink_bandwidth_bytes_per_s = 1e6;  // 1 byte = 1 us
  platform.nvlink_latency_us = 0.0;

  ListScheduler scheduler({{0}, {1}});
  FaultPlan plan;
  // d -> gpu0 on the host bus [0,10]; the peer copy d -> gpu1 starts at 10.
  plan.gpu_losses.push_back({16.0, 0});
  FaultInjector injector(plan);
  EngineConfig config;
  config.pipeline_depth = 1;
  RuntimeEngine engine(graph, platform, scheduler, config);
  engine.set_fault_injector(&injector);
  InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();

  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(metrics.faults.gpu_losses, 1u);
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, 1u);  // t0 finished at 15
  EXPECT_EQ(metrics.per_gpu[1].tasks_executed, 1u);
  // The dead peer copy resolves at 20, re-routes to the host bus [20,30],
  // t1 computes [30,35].
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 35.0);
  EXPECT_EQ(metrics.per_gpu[1].loads, 1u);  // host-bus fallback, not peer
}

TEST(FaultInjector, SchedulerAdoptionPathsCompleteEveryTask) {
  // The schedulers with notify_gpu_lost overrides (DARTS re-pools, the
  // work-queue family splices) each absorb a mid-run loss.
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < 6; ++i) data.push_back(builder.add_data(10));
  for (int t = 0; t < 24; ++t) {
    builder.add_task(5.0, {data[t % 6], data[(t + 1) % 6]});
  }
  const core::TaskGraph graph = builder.build();

  for (const bool use_darts : {true, false}) {
    core::DartsScheduler darts;
    sched::HfpScheduler hfp;
    core::Scheduler& scheduler =
        use_darts ? static_cast<core::Scheduler&>(darts)
                  : static_cast<core::Scheduler&>(hfp);
    FaultPlan plan;
    plan.gpu_losses.push_back({30.0, 0});
    FaultInjector injector(plan);
    RuntimeEngine engine(graph, test_platform(2, 100), scheduler);
    engine.set_fault_injector(&injector);
    InvariantChecker checker({.fail_fast = false});
    engine.add_inspector(&checker);
    const core::RunMetrics metrics = engine.run();

    ASSERT_TRUE(checker.ok())
        << (use_darts ? "DARTS" : "HFP") << ": " << checker.report().error
        << "\n" << checker.report().excerpt;
    std::uint64_t executed = 0;
    for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
    EXPECT_EQ(executed, graph.num_tasks());
    EXPECT_EQ(metrics.faults.gpu_losses, 1u);
  }
}

TEST(FaultPlan, SyntaxErrorsNameLineAndColumn) {
  std::string error;
  EXPECT_FALSE(
      parse_fault_plan("{\n  \"schema_version\": 1,\n  oops\n}", &error)
          .has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("column"), std::string::npos) << error;
}

TEST(FaultPlan, FileErrorsArePrefixedWithTheFileName) {
  const std::string path = ::testing::TempDir() + "/bad_plan.json";
  { std::ofstream(path) << "{ \"schema_version\":\n"; }
  std::string error;
  EXPECT_FALSE(load_fault_plan_file(path, &error).has_value());
  EXPECT_NE(error.find("bad_plan.json"), std::string::npos) << error;
  EXPECT_NE(error.find("line"), std::string::npos) << error;
}

TEST(Checkpointing, RestoreSkipsCheckpointedPrefix) {
  // One 100-us task on gpu0, checkpointed every 25 us (descriptor-only
  // snapshots: no declared outputs, zero latency). Boundaries commit at 35
  // (25%) and 60 (50%); the 75% boundary would commit at 85, after the
  // loss at 70. The re-run on gpu1 resumes from 50%: fetch [70,80],
  // compute the remaining 50 us [80,130], snapshotting 75% on the way.
  core::TaskGraphBuilder builder;
  builder.add_task(100.0, {builder.add_data(10)});
  const core::TaskGraph graph = builder.build();

  ListScheduler scheduler({{0}, {}});
  FaultPlan plan;
  plan.gpu_losses.push_back({70.0, 0});
  FaultInjector injector(plan);
  EngineConfig config;
  config.pipeline_depth = 1;
  config.checkpoint_interval_us = 25.0;
  RuntimeEngine engine(graph, test_platform(2, 100), scheduler, config);
  engine.set_fault_injector(&injector);
  InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();

  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(metrics.faults.checkpoints_taken, 3u);
  EXPECT_EQ(metrics.faults.tasks_restored, 1u);
  EXPECT_DOUBLE_EQ(metrics.faults.compute_saved_us, 50.0);
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 130.0);
  EXPECT_EQ(metrics.per_gpu[1].tasks_executed, 1u);
}

TEST(Checkpointing, ProgressIsDurableOnlyWhenTheDrainCompletes) {
  // The task declares 20 bytes of output, so the 50% snapshot's drain
  // occupies the write-back channel for 20 us: initiated at 60, committed
  // at 80. A loss at 70 lands mid-drain — the snapshot is discarded with
  // the dead GPU and the re-run starts from scratch. A loss at 90 lands
  // after the commit and the re-run resumes from 50%.
  core::TaskGraphBuilder builder;
  const TaskId t0 = builder.add_task(100.0, {builder.add_data(10)});
  builder.set_task_output(t0, 20);
  const core::TaskGraph graph = builder.build();

  auto run = [&](double loss_us) {
    ListScheduler scheduler({{0}, {}});
    FaultPlan plan;
    plan.gpu_losses.push_back({loss_us, 0});
    FaultInjector injector(plan);
    EngineConfig config;
    config.pipeline_depth = 1;
    config.checkpoint_fraction = 0.5;
    RuntimeEngine engine(graph, test_platform(2, 100), scheduler, config);
    engine.set_fault_injector(&injector);
    InvariantChecker checker({.fail_fast = false});
    engine.add_inspector(&checker);
    const core::RunMetrics metrics = engine.run();
    EXPECT_TRUE(checker.ok()) << checker.report().error << "\n"
                              << checker.report().excerpt;
    return metrics;
  };

  // Loss at 70: the snapshot dies with the GPU; the only committed
  // checkpoint is the one the from-scratch re-run takes for itself.
  const core::RunMetrics mid_drain = run(70.0);
  EXPECT_EQ(mid_drain.faults.checkpoints_taken, 1u);
  EXPECT_EQ(mid_drain.faults.tasks_restored, 0u);
  EXPECT_DOUBLE_EQ(mid_drain.faults.compute_saved_us, 0.0);

  // Loss at 90: the 50% snapshot committed at 80; the re-run resumes there
  // (and skips the already-committed boundary, so no second snapshot).
  const core::RunMetrics after_commit = run(90.0);
  EXPECT_EQ(after_commit.faults.checkpoints_taken, 1u);
  EXPECT_EQ(after_commit.faults.tasks_restored, 1u);
  EXPECT_DOUBLE_EQ(after_commit.faults.compute_saved_us, 50.0);
  EXPECT_EQ(after_commit.faults.checkpoint_payload_bytes, 20u);
  EXPECT_DOUBLE_EQ(after_commit.faults.checkpoint_overhead_us, 20.0);
}

TEST(Replication, HotSoleCopyIsReplicatedAndProtectedAfterLoss) {
  // h feeds all four gpu0 tasks; gpu1 works off p. Both are hot sole-copy
  // inputs, so each gets a proactive replica on the other device. When
  // gpu0 dies mid-run, h's replica on gpu1 becomes the sole surviving
  // copy: it is promoted to eviction-protected (p's surviving copy is an
  // original, not a replica) and the orphans re-run on gpu1 without
  // touching the host bus again.
  core::TaskGraphBuilder builder;
  const DataId h = builder.add_data(10);
  const DataId p = builder.add_data(10);
  for (int i = 0; i < 4; ++i) builder.add_task(50.0, {h});
  for (int i = 0; i < 4; ++i) builder.add_task(50.0, {p});
  const core::TaskGraph graph = builder.build();

  ListScheduler scheduler({{0, 1, 2, 3}, {4, 5, 6, 7}});
  FaultPlan plan;
  plan.gpu_losses.push_back({130.0, 0});
  FaultInjector injector(plan);
  EngineConfig config;
  config.pipeline_depth = 1;
  config.replicate_hot = true;
  RuntimeEngine engine(graph, test_platform(2, 100), scheduler, config);
  engine.set_fault_injector(&injector);
  InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();

  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(metrics.faults.replicas_created, 2u);
  EXPECT_EQ(metrics.faults.replica_bytes, 20u);
  EXPECT_EQ(metrics.faults.replicas_protected, 1u);
  EXPECT_EQ(metrics.faults.post_loss_host_loads, 0u);
  std::uint64_t executed = 0;
  for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
  EXPECT_EQ(executed, graph.num_tasks());
}

TEST(Replication, ReplicasAreShedFirstUnderMemoryPressure) {
  // gpu1 (25 bytes) holds p plus the proactive replica of h. When t4
  // demands q there is no free room: the replica is shed ahead of any
  // policy-chosen eviction, even though p is also evictable. The planned
  // loss sits past the makespan, so the replica is never protected.
  core::TaskGraphBuilder builder;
  const DataId h = builder.add_data(10);
  const DataId p = builder.add_data(10);
  const DataId q = builder.add_data(10);
  for (int i = 0; i < 3; ++i) builder.add_task(50.0, {h});
  builder.add_task(50.0, {p});
  builder.add_task(50.0, {q});
  const core::TaskGraph graph = builder.build();

  ListScheduler scheduler({{0, 1, 2}, {3, 4}});
  FaultPlan plan;
  plan.gpu_losses.push_back({10000.0, 0});  // armed but past the makespan
  FaultInjector injector(plan);
  EngineConfig config;
  config.pipeline_depth = 1;
  config.replicate_hot = true;
  RuntimeEngine engine(graph, test_platform(2, 25), scheduler, config);
  engine.set_fault_injector(&injector);
  InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();

  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(metrics.faults.replicas_created, 1u);
  EXPECT_EQ(metrics.faults.replicas_shed, 1u);
  EXPECT_EQ(metrics.faults.replicas_protected, 0u);
  std::uint64_t executed = 0;
  for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
  EXPECT_EQ(executed, graph.num_tasks());
}

TEST(ReplayDegradation, FixedOrderLossReassignsTheRecordedSuffix) {
  // A recorded two-GPU schedule loses gpu0 mid-replay. The scheduler must
  // absorb the orphans and gpu0's unexecuted recorded suffix onto gpu1 and
  // report the divergence point instead of rejecting the run.
  core::TaskGraphBuilder builder;
  for (int i = 0; i < 8; ++i) builder.add_task(10.0, {builder.add_data(10)});
  const core::TaskGraph graph = builder.build();

  sched::FixedOrderScheduler scheduler({{0, 1, 2, 3}, {4, 5, 6, 7}});
  FaultPlan plan;
  plan.gpu_losses.push_back({35.0, 0});
  FaultInjector injector(plan);
  RuntimeEngine engine(graph, test_platform(2, 100), scheduler);
  engine.set_fault_injector(&injector);
  InvariantChecker checker({.fail_fast = false});
  RunReportCollector collector;
  engine.add_inspector(&checker);
  engine.add_inspector(&collector);
  const core::RunMetrics metrics = engine.run();

  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(metrics.faults.replay_divergences, 1u);
  EXPECT_GE(metrics.faults.replay_reassigned_tasks, 1u);
  std::uint64_t executed = 0;
  for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
  EXPECT_EQ(executed, graph.num_tasks());

  const auto divergence = scheduler.replay_divergence(0);
  ASSERT_TRUE(divergence.has_value());
  EXPECT_LT(divergence->divergence_index, 4u);
  ASSERT_EQ(collector.report().faults.replay_divergence.size(), 1u);
  EXPECT_EQ(collector.report().faults.replay_divergence[0].gpu, 0u);
}

TEST(FaultInjector, EmptyPlanIsBitIdenticalToNoInjector) {
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < 4; ++i) data.push_back(builder.add_data(10));
  for (int t = 0; t < 12; ++t) builder.add_task(5.0, {data[t % 4]});
  const core::TaskGraph graph = builder.build();

  auto run = [&](bool with_empty_injector) {
    sched::EagerScheduler scheduler;
    RuntimeEngine engine(graph, test_platform(2, 40), scheduler);
    FaultInjector injector{FaultPlan{}};
    if (with_empty_injector) engine.set_fault_injector(&injector);
    return engine.run();
  };

  const core::RunMetrics base = run(false);
  const core::RunMetrics armed = run(true);
  EXPECT_DOUBLE_EQ(base.makespan_us, armed.makespan_us);
  EXPECT_EQ(base.total_loads(), armed.total_loads());
  EXPECT_EQ(base.total_evictions(), armed.total_evictions());
  ASSERT_EQ(base.per_gpu.size(), armed.per_gpu.size());
  for (std::size_t gpu = 0; gpu < base.per_gpu.size(); ++gpu) {
    EXPECT_EQ(base.per_gpu[gpu].tasks_executed,
              armed.per_gpu[gpu].tasks_executed);
    EXPECT_DOUBLE_EQ(base.per_gpu[gpu].busy_time_us,
                     armed.per_gpu[gpu].busy_time_us);
  }
  EXPECT_EQ(armed.faults.gpu_losses, 0u);
  EXPECT_EQ(armed.faults.transfer_retries, 0u);
}

TEST(FaultDependencies, CheckpointedOrphanWaitsForUnretiredPredecessor) {
  // Regression: a checkpointed orphan whose predecessor later dies
  // un-checkpointed must wait for the predecessor's re-run. Before the
  // revoked-successor ejection this deadlocked — the revoked orphan sat at a
  // survivor's buffer head (stalled by the dependency gate) while the
  // re-running predecessor queued *behind* it, and only a head can start.
  //
  // One GPU per node so each node has its own host link and write-back
  // channel: S's zero-byte snapshot commits on node 2's idle channel while
  // P's 100-byte drain still occupies node 1's (on a shared channel the
  // snapshot would queue behind the drain and only ever commit after P had
  // already become durable). Each input is homed on its consumer's node
  // (data id % nodes), so first fetches are node-local.
  //
  // Timeline (1 flop = 1 us, 1 byte = 1 us on each node's host link):
  //   gpu0 runs filler F [1,501] and stays alive throughout.
  //   gpu1 runs P: fetch d0 [0,10], compute [10,40]. P's own 50% snapshot
  //     drags its 100-byte payload over node 1's write-back channel from
  //     t=25 but aborts (P finishes first), queueing the real drain behind
  //     it: P retires optimistically at 40, durable only at 225.
  //   gpu2 pops S at 40 (explicit edge P -> S): fetch d1 [40,45], compute
  //     starts at 45; the 50% snapshot (no declared output) commits
  //     instantly at 70 on node 2's idle channel.
  //   t=72: gpu2 dies. S is an orphan with durable 50% progress; the replay
  //     scheduler reassigns it to gpu0, where it buffers behind running F.
  //   t=85: gpu1 dies with P's drain still queued. P un-retires and revokes
  //     S's enablement while S sits popped in gpu0's pipeline: S is ejected
  //     and parked, P re-runs from scratch on gpu0 after F [501,531],
  //     re-retires at 531, and S resumes from its checkpoint [531,556] —
  //     everything finishes on gpu0.
  core::TaskGraphBuilder builder;
  const DataId df = builder.add_data(1);   // id 0 -> node 0
  const DataId d0 = builder.add_data(10);  // id 1 -> node 1
  const DataId d1 = builder.add_data(5);   // id 2 -> node 2
  const TaskId filler = builder.add_task(500.0, {df});
  const TaskId pred = builder.add_task(30.0, {d0});
  builder.set_task_output(pred, 100);
  const TaskId succ = builder.add_task(50.0, {d1});
  builder.add_dependency(pred, succ);
  const core::TaskGraph graph = builder.build();
  ASSERT_TRUE(graph.has_dependencies());

  sched::FixedOrderScheduler scheduler({{filler}, {pred}, {succ}});
  FaultPlan plan;
  plan.gpu_losses.push_back({72.0, 2});
  plan.gpu_losses.push_back({85.0, 1});
  FaultInjector injector(plan);
  EngineConfig config;
  config.pipeline_depth = 2;
  config.checkpoint_fraction = 0.5;
  core::Platform platform = test_platform(3, 1000);
  platform.num_nodes = 3;
  RuntimeEngine engine(graph, platform, scheduler, config);
  engine.set_fault_injector(&injector);
  InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();

  ASSERT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(metrics.faults.gpu_losses, 2u);
  // Reclaims: S orphaned at the first loss, P un-retired at the second, S
  // ejected from gpu0's pipeline by the revocation.
  EXPECT_EQ(metrics.faults.tasks_reclaimed, 3u);
  // S's re-run resumed from the committed 50% snapshot: 25 us skipped. P's
  // snapshots never committed, so its re-run starts from scratch.
  EXPECT_EQ(metrics.faults.tasks_restored, 1u);
  EXPECT_DOUBLE_EQ(metrics.faults.compute_saved_us, 25.0);
  // Committed snapshots: S at 70 and the filler's 50% at 251.
  EXPECT_EQ(metrics.faults.checkpoints_taken, 2u);
  // The survivor executed everything: F, P's re-run, S's resumed re-run.
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, 3u);
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 556.0);
}

}  // namespace
}  // namespace mg::sim
