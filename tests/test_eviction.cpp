#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/darts.hpp"
#include "core/memory_view.hpp"
#include "core/task_graph.hpp"
#include "sched/fixed_order.hpp"
#include "sim/lru_eviction.hpp"
#include "util/rng.hpp"
#include "workloads/random_bipartite.hpp"

namespace mg {
namespace {

using core::DataId;
using core::TaskId;

TEST(LruEviction, PicksOldestStamp) {
  sim::LruEviction lru(1, 4);
  lru.on_load(0, 0);
  lru.on_load(0, 1);
  lru.on_load(0, 2);
  const std::vector<DataId> candidates{0, 1, 2};
  EXPECT_EQ(lru.choose_victim(0, candidates), 0u);
  lru.on_use(0, 0);
  EXPECT_EQ(lru.choose_victim(0, candidates), 1u);
}

TEST(LruEviction, NeverLoadedCountsAsOldest) {
  sim::LruEviction lru(1, 4);
  lru.on_load(0, 1);
  const std::vector<DataId> candidates{1, 3};
  EXPECT_EQ(lru.choose_victim(0, candidates), 3u);
}

TEST(LruEviction, GpusAreIndependent) {
  sim::LruEviction lru(2, 4);
  lru.on_load(0, 0);
  lru.on_load(0, 1);
  lru.on_load(1, 1);
  lru.on_load(1, 0);
  const std::vector<DataId> candidates{0, 1};
  EXPECT_EQ(lru.choose_victim(0, candidates), 0u);
  EXPECT_EQ(lru.choose_victim(1, candidates), 1u);
}

TEST(LruEviction, RespectsCandidateSet) {
  sim::LruEviction lru(1, 8);
  for (DataId data = 0; data < 8; ++data) lru.on_load(0, data);
  const std::vector<DataId> candidates{5, 6};
  EXPECT_EQ(lru.choose_victim(0, candidates), 5u);
}

/// Graph where task i reads data i (plus a shared data for some tests).
core::TaskGraph chain_graph(int tasks) {
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < tasks; ++i) data.push_back(builder.add_data(10));
  for (int i = 0; i < tasks; ++i) builder.add_task(1.0, {data[static_cast<size_t>(i)]});
  return builder.build();
}

TEST(BeladyReplayEviction, EvictsDataWithFurthestNextUse) {
  // Order: t0(d0) t1(d1) t2(d0) t3(d2): after t1, d0 is used again at
  // position 2 while d1 never again -> d1 must go first.
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(10);
  const DataId d2 = builder.add_data(10);
  builder.add_task(1.0, {d0});
  builder.add_task(1.0, {d1});
  builder.add_task(1.0, {d0});
  builder.add_task(1.0, {d2});
  const core::TaskGraph graph = builder.build();

  std::vector<std::vector<TaskId>> orders{{0, 1, 2, 3}};
  sched::BeladyReplayEviction belady(graph, orders);
  // No task completed yet.
  const std::vector<DataId> candidates{d0, d1};
  EXPECT_EQ(belady.choose_victim(0, candidates), d1);

  belady.advance(0);  // t0 done
  belady.advance(0);  // t1 done
  // Next uses now: d0 at position 2, d1 never.
  EXPECT_EQ(belady.choose_victim(0, candidates), d1);
  belady.advance(0);  // t2 done
  // Both never used again; either is acceptable — must return a candidate.
  const DataId victim = belady.choose_victim(0, candidates);
  EXPECT_TRUE(victim == d0 || victim == d1);
}

TEST(BeladyReplayEviction, MultiGpuOrdersAreSeparate) {
  const core::TaskGraph graph = chain_graph(4);
  std::vector<std::vector<TaskId>> orders{{0, 1}, {2, 3}};
  sched::BeladyReplayEviction belady(graph, orders);
  // On gpu1, data 2 is used at position 0 and data 3 at position 1:
  // data 3 is the furthest.
  const std::vector<DataId> candidates{2, 3};
  EXPECT_EQ(belady.choose_victim(1, candidates), 3u);
}

// --- LUF (Algorithm 6) property tests -------------------------------------
//
// The DARTS scheduler is driven through its public API (pop_task + the
// notify hooks); the tests maintain an independent record of the taskBuffer
// and planned lists and check choose_victim against the algorithm's spec:
//   line 5: among candidates unused by the pipeline, evict one minimizing
//           planned uses — pipeline-used data must never be chosen while an
//           unused alternative exists;
//   line 7: with every candidate used by the pipeline, apply Belady's rule
//           over the buffered order (furthest first-next-use wins).

/// MemoryView mirroring an explicit resident set.
class LufMirrorMemory final : public core::MemoryView {
 public:
  explicit LufMirrorMemory(std::uint32_t num_data)
      : present_(num_data, false) {}
  [[nodiscard]] bool is_present(DataId data) const override {
    return present_[data];
  }
  [[nodiscard]] bool is_present_or_fetching(DataId data) const override {
    return present_[data];
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return 1'000'000;
  }
  [[nodiscard]] std::uint64_t used_bytes() const override { return 0; }
  std::vector<bool> present_;
};

struct LufDrive {
  core::DartsScheduler darts{core::DartsOptions{.use_luf = true}};
  std::vector<TaskId> buffered;  ///< pop order, none completed
  LufMirrorMemory memory;
  const core::TaskGraph& graph;

  LufDrive(const core::TaskGraph& graph_in, std::uint64_t seed)
      : memory(graph_in.num_data()), graph(graph_in) {
    core::Platform platform;
    platform.num_gpus = 1;
    platform.gpu_memory_bytes = 1'000'000;
    darts.prepare(graph, platform, seed);
  }

  /// Pops up to `count` tasks, announcing their inputs as loaded; tasks are
  /// left uncompleted so they stay in the taskBuffer.
  void pop_tasks(int count) {
    for (int i = 0; i < count; ++i) {
      const TaskId task = darts.pop_task(0, memory);
      if (task == core::kInvalidTask) break;
      buffered.push_back(task);
      for (DataId data : graph.inputs(task)) {
        if (!memory.present_[data]) {
          memory.present_[data] = true;
          darts.on_load(0, data);
          darts.notify_data_loaded(0, data);
        }
      }
    }
  }

  [[nodiscard]] std::uint32_t uses_by(const auto& tasks, DataId data) const {
    std::uint32_t uses = 0;
    for (TaskId task : tasks) {
      const auto inputs = graph.inputs(task);
      if (std::find(inputs.begin(), inputs.end(), data) != inputs.end()) {
        ++uses;
      }
    }
    return uses;
  }

  [[nodiscard]] std::uint32_t buffered_uses(DataId data) const {
    return uses_by(buffered, data);
  }
  [[nodiscard]] std::uint32_t planned_uses(DataId data) const {
    return uses_by(darts.planned_tasks(0), data);
  }

  /// First position in the buffered (pop) order using `data`, or
  /// buffered.size() when never used again — Belady's metric.
  [[nodiscard]] std::size_t first_next_use(DataId data) const {
    for (std::size_t i = 0; i < buffered.size(); ++i) {
      const auto inputs = graph.inputs(buffered[i]);
      if (std::find(inputs.begin(), inputs.end(), data) != inputs.end()) {
        return i;
      }
    }
    return buffered.size();
  }
};

TEST(LufEviction, NeverEvictsPipelineUsedDataWhenAlternativeExists) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const core::TaskGraph graph = work::make_random_bipartite(
        {.num_tasks = 30, .num_data = 14, .min_inputs = 1, .max_inputs = 3,
         .data_bytes = 10, .seed = 500 + seed});
    LufDrive drive(graph, seed);
    drive.pop_tasks(3);
    if (drive.buffered.empty()) continue;

    std::vector<DataId> candidates;
    for (DataId data = 0; data < graph.num_data(); ++data) {
      if (drive.memory.present_[data]) candidates.push_back(data);
    }
    if (candidates.empty()) continue;

    const DataId victim = drive.darts.choose_victim(0, candidates);
    ASSERT_NE(victim, core::kInvalidData);
    ASSERT_NE(std::find(candidates.begin(), candidates.end(), victim),
              candidates.end())
        << "victim must come from the candidate set";

    const bool unused_alternative_exists =
        std::any_of(candidates.begin(), candidates.end(), [&](DataId data) {
          return drive.buffered_uses(data) == 0;
        });
    if (unused_alternative_exists) {
      EXPECT_EQ(drive.buffered_uses(victim), 0u)
          << "seed " << seed << ": evicted d" << victim
          << " although the pipeline still reads it";
      // Line 5: among unused candidates, planned uses must be minimal.
      std::uint32_t min_np = ~std::uint32_t{0};
      for (DataId data : candidates) {
        if (drive.buffered_uses(data) == 0) {
          min_np = std::min(min_np, drive.planned_uses(data));
        }
      }
      EXPECT_EQ(drive.planned_uses(victim), min_np) << "seed " << seed;
    }
  }
}

TEST(LufEviction, DegradesToBeladyExactlyWhenAllCandidatesAreInUse) {
  int exercised = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const core::TaskGraph graph = work::make_random_bipartite(
        {.num_tasks = 24, .num_data = 8, .min_inputs = 1, .max_inputs = 3,
         .data_bytes = 10, .seed = 900 + seed});
    LufDrive drive(graph, seed);
    drive.pop_tasks(4);

    // Candidate set restricted to pipeline-used data: the line-5 scan finds
    // nothing and the Belady fallback must decide.
    std::vector<DataId> candidates;
    for (DataId data = 0; data < graph.num_data(); ++data) {
      if (drive.memory.present_[data] && drive.buffered_uses(data) > 0) {
        candidates.push_back(data);
      }
    }
    if (candidates.size() < 2) continue;
    ++exercised;

    // Independent Belady: first candidate whose first next-use is furthest
    // in the buffered order (ties keep the earliest candidate, like the
    // implementation's strict comparison).
    DataId expected = candidates[0];
    std::size_t furthest = drive.first_next_use(candidates[0]);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      const std::size_t next_use = drive.first_next_use(candidates[i]);
      if (next_use > furthest) {
        furthest = next_use;
        expected = candidates[i];
      }
    }

    EXPECT_EQ(drive.darts.choose_victim(0, candidates), expected)
        << "seed " << seed;
  }
  EXPECT_GT(exercised, 5) << "the generator must produce all-in-use rounds";
}

}  // namespace
}  // namespace mg
