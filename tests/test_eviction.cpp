#include <gtest/gtest.h>

#include <vector>

#include "core/task_graph.hpp"
#include "sched/fixed_order.hpp"
#include "sim/lru_eviction.hpp"

namespace mg {
namespace {

using core::DataId;
using core::TaskId;

TEST(LruEviction, PicksOldestStamp) {
  sim::LruEviction lru(1, 4);
  lru.on_load(0, 0);
  lru.on_load(0, 1);
  lru.on_load(0, 2);
  const std::vector<DataId> candidates{0, 1, 2};
  EXPECT_EQ(lru.choose_victim(0, candidates), 0u);
  lru.on_use(0, 0);
  EXPECT_EQ(lru.choose_victim(0, candidates), 1u);
}

TEST(LruEviction, NeverLoadedCountsAsOldest) {
  sim::LruEviction lru(1, 4);
  lru.on_load(0, 1);
  const std::vector<DataId> candidates{1, 3};
  EXPECT_EQ(lru.choose_victim(0, candidates), 3u);
}

TEST(LruEviction, GpusAreIndependent) {
  sim::LruEviction lru(2, 4);
  lru.on_load(0, 0);
  lru.on_load(0, 1);
  lru.on_load(1, 1);
  lru.on_load(1, 0);
  const std::vector<DataId> candidates{0, 1};
  EXPECT_EQ(lru.choose_victim(0, candidates), 0u);
  EXPECT_EQ(lru.choose_victim(1, candidates), 1u);
}

TEST(LruEviction, RespectsCandidateSet) {
  sim::LruEviction lru(1, 8);
  for (DataId data = 0; data < 8; ++data) lru.on_load(0, data);
  const std::vector<DataId> candidates{5, 6};
  EXPECT_EQ(lru.choose_victim(0, candidates), 5u);
}

/// Graph where task i reads data i (plus a shared data for some tests).
core::TaskGraph chain_graph(int tasks) {
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < tasks; ++i) data.push_back(builder.add_data(10));
  for (int i = 0; i < tasks; ++i) builder.add_task(1.0, {data[static_cast<size_t>(i)]});
  return builder.build();
}

TEST(BeladyReplayEviction, EvictsDataWithFurthestNextUse) {
  // Order: t0(d0) t1(d1) t2(d0) t3(d2): after t1, d0 is used again at
  // position 2 while d1 never again -> d1 must go first.
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(10);
  const DataId d2 = builder.add_data(10);
  builder.add_task(1.0, {d0});
  builder.add_task(1.0, {d1});
  builder.add_task(1.0, {d0});
  builder.add_task(1.0, {d2});
  const core::TaskGraph graph = builder.build();

  std::vector<std::vector<TaskId>> orders{{0, 1, 2, 3}};
  sched::BeladyReplayEviction belady(graph, orders);
  // No task completed yet.
  const std::vector<DataId> candidates{d0, d1};
  EXPECT_EQ(belady.choose_victim(0, candidates), d1);

  belady.advance(0);  // t0 done
  belady.advance(0);  // t1 done
  // Next uses now: d0 at position 2, d1 never.
  EXPECT_EQ(belady.choose_victim(0, candidates), d1);
  belady.advance(0);  // t2 done
  // Both never used again; either is acceptable — must return a candidate.
  const DataId victim = belady.choose_victim(0, candidates);
  EXPECT_TRUE(victim == d0 || victim == d1);
}

TEST(BeladyReplayEviction, MultiGpuOrdersAreSeparate) {
  const core::TaskGraph graph = chain_graph(4);
  std::vector<std::vector<TaskId>> orders{{0, 1}, {2, 3}};
  sched::BeladyReplayEviction belady(graph, orders);
  // On gpu1, data 2 is used at position 0 and data 3 at position 1:
  // data 3 is the furthest.
  const std::vector<DataId> candidates{2, 3};
  EXPECT_EQ(belady.choose_victim(1, candidates), 3u);
}

}  // namespace
}  // namespace mg
