// Output-data extension: tasks may declare output bytes, which occupy GPU
// memory from task start until their write-back to the host completes (the
// extension the paper's model section sketches and excludes by default).
#include <gtest/gtest.h>

#include <vector>

#include "analysis/validate.hpp"
#include "core/darts.hpp"
#include "core/task_graph.hpp"
#include "sched/eager.hpp"
#include "sched/fixed_order.hpp"
#include "sim/engine.hpp"
#include "workloads/cholesky.hpp"
#include "workloads/matmul2d.hpp"

namespace mg::sim {
namespace {

using core::DataId;
using core::TaskId;

core::Platform unit_platform(std::uint32_t gpus, std::uint64_t memory) {
  core::Platform platform;
  platform.num_gpus = gpus;
  platform.gpu_memory_bytes = memory;
  platform.gpu_gflops = 1e-3;                 // 1 flop = 1 us
  platform.bus_bandwidth_bytes_per_s = 1e6;   // 1 byte = 1 us
  platform.bus_latency_us = 0.0;
  return platform;
}

TEST(Outputs, BuilderStoresAndDefaultsToZero) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  const TaskId t0 = builder.add_task(1.0, {d});
  const TaskId t1 = builder.add_task(1.0, {d});
  builder.set_task_output(t1, 42);
  const core::TaskGraph graph = builder.build();
  EXPECT_TRUE(graph.has_outputs());
  EXPECT_EQ(graph.task_output_bytes(t0), 0u);
  EXPECT_EQ(graph.task_output_bytes(t1), 42u);

  core::TaskGraphBuilder plain;
  plain.add_task(1.0, {plain.add_data(10)});
  EXPECT_FALSE(plain.build().has_outputs());
}

TEST(Outputs, FootprintIncludesOutput) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  const TaskId t = builder.add_task(1.0, {d});
  builder.set_task_output(t, 25);
  EXPECT_EQ(builder.build().max_task_footprint(), 35u);
}

TEST(Outputs, WriteBackOverlapsAndDoesNotDelayCompletion) {
  // One task: load [0,10], compute [10,30]; the 50-byte write-back runs
  // after completion and must not extend the makespan.
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  const TaskId t = builder.add_task(20.0, {d});
  builder.set_task_output(t, 50);
  const core::TaskGraph graph = builder.build();

  std::vector<std::vector<TaskId>> order{{0}};
  sched::FixedOrderScheduler scheduler(order);
  EngineConfig config;
  config.record_trace = true;
  RuntimeEngine engine(graph, unit_platform(1, 100), scheduler, config);
  const core::RunMetrics metrics = engine.run();

  EXPECT_DOUBLE_EQ(metrics.makespan_us, 30.0);
  EXPECT_EQ(metrics.total_bytes_written_back(), 0u);  // still in flight
}

TEST(Outputs, WriteBackBytesAreAccountedWhenItCompletes) {
  // Two tasks: the second one's completion gives the first write-back time
  // to finish inside the simulated horizon.
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  const TaskId t0 = builder.add_task(20.0, {d});
  builder.add_task(200.0, {d});
  builder.set_task_output(t0, 50);
  const core::TaskGraph graph = builder.build();

  std::vector<std::vector<TaskId>> order{{0, 1}};
  sched::FixedOrderScheduler scheduler(order);
  RuntimeEngine engine(graph, unit_platform(1, 100), scheduler);
  const core::RunMetrics metrics = engine.run();
  // t0 ends at 30, write-back [30,80]; t1 ends at 230.
  EXPECT_EQ(metrics.total_bytes_written_back(), 50u);
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 230.0);
}

TEST(Outputs, ScratchBlocksStartUnderMemoryPressure) {
  // Memory of 100 bytes; both tasks read distinct 40-byte inputs and write
  // 60 bytes. Task 2 cannot hold input+scratch while task 1's write-back
  // still occupies its scratch, so it starts only after the write-back.
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(40);
  const DataId d1 = builder.add_data(40);
  const TaskId t0 = builder.add_task(10.0, {d0});
  const TaskId t1 = builder.add_task(10.0, {d1});
  builder.set_task_output(t0, 60);
  builder.set_task_output(t1, 60);
  const core::TaskGraph graph = builder.build();

  std::vector<std::vector<TaskId>> order{{0, 1}};
  sched::FixedOrderScheduler scheduler(order);
  EngineConfig config;
  config.record_trace = true;
  RuntimeEngine engine(graph, unit_platform(1, 100), scheduler, config);
  const core::RunMetrics metrics = engine.run();

  // Realized timeline (a genuine prefetch/eviction conflict, the very
  // phenomenon the paper discusses for DMDAR):
  //   d0 loads [0,40]; d1 prefetches [40,80]; t0's scratch does not fit
  //   until d1 lands and is evicted for it at 80 -> t0 runs [80,90], its
  //   write-back occupies scratch [90,150]; d1 is re-fetched [90,130] but
  //   t1's scratch must wait for the write-back -> t1 runs [150,160].
  EXPECT_DOUBLE_EQ(metrics.makespan_us, 160.0);
  EXPECT_GE(metrics.total_evictions(), 2u);   // d1 (for scratch), then d0
  EXPECT_EQ(metrics.total_loads(), 3u);       // d0, d1, d1 again
  EXPECT_EQ(metrics.total_bytes_written_back(), 60u);  // t1's wb in flight
}

TEST(Outputs, MatmulWorkloadCarriesOutputs) {
  const core::TaskGraph graph = work::make_matmul_2d(
      {.n = 4, .data_bytes = 100, .output_bytes = 25});
  EXPECT_TRUE(graph.has_outputs());
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    EXPECT_EQ(graph.task_output_bytes(task), 25u);
  }
  EXPECT_EQ(graph.max_task_footprint(), 225u);
}

TEST(Outputs, CholeskyWorkloadCarriesOutputs) {
  const core::TaskGraph with = work::make_cholesky_tasks(
      {.n = 4, .with_outputs = true});
  const core::TaskGraph without = work::make_cholesky_tasks({.n = 4});
  EXPECT_TRUE(with.has_outputs());
  EXPECT_FALSE(without.has_outputs());
  EXPECT_EQ(with.task_output_bytes(0), 960ull * 960 * 4);
}

TEST(Outputs, EndToEndWithEvictionAndValidation) {
  const core::TaskGraph graph = work::make_matmul_2d(
      {.n = 8, .data_bytes = 14 * core::kMB,
       .output_bytes = 3'686'400});
  const core::Platform platform = core::make_v100_platform(2, 120 * core::kMB);

  for (int kind = 0; kind < 2; ++kind) {
    std::unique_ptr<core::Scheduler> scheduler;
    if (kind == 0) {
      scheduler = std::make_unique<sched::EagerScheduler>();
    } else {
      scheduler = std::make_unique<core::DartsScheduler>();
    }
    EngineConfig config;
    config.record_trace = true;
    RuntimeEngine engine(graph, platform, *scheduler, config);
    const core::RunMetrics metrics = engine.run();
    std::uint64_t executed = 0;
    for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
    EXPECT_EQ(executed, graph.num_tasks());
    EXPECT_GT(metrics.total_bytes_written_back(), 0u);
    const auto validation =
        analysis::validate_trace(graph, platform, engine.trace());
    EXPECT_TRUE(validation.ok) << validation.error;
  }
}

}  // namespace
}  // namespace mg::sim
